#include "baselines/one_mem_bf.h"

#include <gtest/gtest.h>

#include "analysis/membership_theory.h"
#include "baselines/bloom_filter.h"
#include "trace/workload.h"

namespace shbf {
namespace {

TEST(OneMemBfTest, ParamsValidation) {
  OneMemBloomFilter::Params p{.num_bits = 1024, .num_hashes = 6};
  EXPECT_TRUE(p.Validate().ok());
  p.word_bits = 48;  // not a power of two
  EXPECT_FALSE(p.Validate().ok());
  p.word_bits = 128;  // too wide
  EXPECT_FALSE(p.Validate().ok());
  p = {.num_bits = 0, .num_hashes = 6};
  EXPECT_FALSE(p.Validate().ok());
}

TEST(OneMemBfTest, RoundsSizeUpToWords) {
  OneMemBloomFilter bf({.num_bits = 1000, .num_hashes = 4});
  EXPECT_EQ(bf.num_words(), 16u);  // ceil(1000/64)
  EXPECT_EQ(bf.num_bits(), 1024u);
}

TEST(OneMemBfTest, NoFalseNegatives) {
  auto w = MakeMembershipWorkload(1500, 0, 31);
  OneMemBloomFilter bf({.num_bits = 22008, .num_hashes = 8});
  for (const auto& key : w.members) bf.Add(key);
  for (const auto& key : w.members) ASSERT_TRUE(bf.Contains(key));
}

TEST(OneMemBfTest, ExactlyOneMemoryAccessPerQuery) {
  auto w = MakeMembershipWorkload(500, 500, 5);
  OneMemBloomFilter bf({.num_bits = 22008, .num_hashes = 8});
  for (const auto& key : w.members) bf.Add(key);
  QueryStats stats;
  for (const auto& key : w.members) bf.ContainsWithStats(key, &stats);
  for (const auto& key : w.non_members) bf.ContainsWithStats(key, &stats);
  EXPECT_DOUBLE_EQ(stats.AvgMemoryAccesses(), 1.0);  // the scheme's raison d'être
  EXPECT_DOUBLE_EQ(stats.AvgHashComputations(), 9.0);  // k + 1
}

TEST(OneMemBfTest, FprHigherThanStandardBloomAtEqualMemory) {
  // §6.2.1: confining k bits to one word skews the 1s distribution and
  // costs FPR. Same m, n, k for both filters.
  const size_t m = 22008;
  const size_t n = 1400;
  const uint32_t k = 8;
  auto w = MakeMembershipWorkload(n, 300000, 77);
  OneMemBloomFilter one_mem({.num_bits = m, .num_hashes = k});
  BloomFilter bloom({.num_bits = m, .num_hashes = k});
  for (const auto& key : w.members) {
    one_mem.Add(key);
    bloom.Add(key);
  }
  size_t fp_one_mem = 0;
  size_t fp_bloom = 0;
  for (const auto& key : w.non_members) {
    fp_one_mem += one_mem.Contains(key);
    fp_bloom += bloom.Contains(key);
  }
  EXPECT_GT(fp_one_mem, fp_bloom)
      << "1MemBF should pay FPR for its single access (paper Fig 7)";
}

TEST(OneMemBfTest, ClearEmptiesFilter) {
  OneMemBloomFilter bf({.num_bits = 1024, .num_hashes = 4});
  bf.Add("x");
  ASSERT_TRUE(bf.Contains("x"));
  bf.Clear();
  EXPECT_FALSE(bf.Contains("x"));
}

TEST(OneMemBfTest, SmallerWordsRaiseFpr) {
  // Narrower words concentrate the k bits more → worse FPR.
  const size_t n = 1000;
  auto w = MakeMembershipWorkload(n, 100000, 13);
  OneMemBloomFilter wide({.num_bits = 16384, .num_hashes = 6, .word_bits = 64});
  OneMemBloomFilter narrow(
      {.num_bits = 16384, .num_hashes = 6, .word_bits = 16});
  for (const auto& key : w.members) {
    wide.Add(key);
    narrow.Add(key);
  }
  size_t fp_wide = 0;
  size_t fp_narrow = 0;
  for (const auto& key : w.non_members) {
    fp_wide += wide.Contains(key);
    fp_narrow += narrow.Contains(key);
  }
  EXPECT_GT(fp_narrow, fp_wide);
}

}  // namespace
}  // namespace shbf
