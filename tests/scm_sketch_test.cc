#include "shbf/scm_sketch.h"

#include <gtest/gtest.h>

#include "baselines/cm_sketch.h"
#include "trace/workload.h"

namespace shbf {
namespace {

ScmSketch::Params BaseParams() {
  return {.depth = 4, .width = 4000, .counter_bits = 8};
}

TEST(ScmSketchTest, ParamsValidation) {
  EXPECT_TRUE(BaseParams().Validate().ok());
  ScmSketch::Params p = BaseParams();
  p.depth = 3;  // odd depth cannot halve
  EXPECT_FALSE(p.Validate().ok());
  p = BaseParams();
  p.width = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = BaseParams();
  p.counter_bits = 32;  // (64−7)/32 = 1 < 2: offsets impossible (§5.5)
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ScmSketchTest, OffsetSpanFollowsSection55) {
  // w̄_c = (w − 7) / z.
  ScmSketch::Params eight_bit{.depth = 4, .width = 10, .counter_bits = 8};
  EXPECT_EQ(eight_bit.OffsetSpan(), 7u);
  ScmSketch::Params six_bit{.depth = 4, .width = 10, .counter_bits = 6};
  EXPECT_EQ(six_bit.OffsetSpan(), 9u);
}

TEST(ScmSketchTest, GeometryHalvesRowsDoublesWidth) {
  ScmSketch scm(BaseParams());
  EXPECT_EQ(scm.rows(), 2u);          // d/2
  EXPECT_EQ(scm.row_width(), 8000u);  // 2r
}

TEST(ScmSketchTest, SingleKeyExact) {
  ScmSketch scm(BaseParams());
  for (int i = 0; i < 12; ++i) scm.Insert("flow");
  EXPECT_EQ(scm.QueryCount("flow"), 12u);
  EXPECT_EQ(scm.QueryCount("other"), 0u);
}

TEST(ScmSketchTest, NeverUnderestimates) {
  auto w = MakeMultiplicityWorkload(5000, 20, 0, 41);
  ScmSketch scm(BaseParams());
  for (size_t i = 0; i < w.keys.size(); ++i) {
    for (uint32_t r = 0; r < w.counts[i]; ++r) scm.Insert(w.keys[i]);
  }
  for (size_t i = 0; i < w.keys.size(); ++i) {
    ASSERT_GE(scm.QueryCount(w.keys[i]), w.counts[i]);
  }
}

TEST(ScmSketchTest, HalfTheAccessesOfCmAtEqualMemory) {
  // §5.5's claim: same total memory (d·r counters), half the accesses and
  // nearly half the hashes per query.
  ScmSketch scm(BaseParams());
  CmSketch cm({.depth = 4, .width = 4000, .counter_bits = 8});
  scm.Insert("member");
  cm.Insert("member");
  QueryStats scm_stats;
  QueryStats cm_stats;
  scm.QueryCountWithStats("member", &scm_stats);
  cm.QueryCountWithStats("member", &cm_stats);
  EXPECT_EQ(scm_stats.memory_accesses, 2u);  // d/2
  EXPECT_EQ(cm_stats.memory_accesses, 4u);   // d
  EXPECT_EQ(scm_stats.hash_computations, 3u);  // d/2 + 1
  EXPECT_EQ(cm_stats.hash_computations, 4u);   // d
}

TEST(ScmSketchTest, AccuracyComparableToCmAtEqualMemory) {
  auto w = MakeMultiplicityWorkload(20000, 10, 0, 43);
  ScmSketch scm(BaseParams());
  CmSketch cm({.depth = 4, .width = 4000, .counter_bits = 8});
  for (size_t i = 0; i < w.keys.size(); ++i) {
    for (uint32_t r = 0; r < w.counts[i]; ++r) {
      scm.Insert(w.keys[i]);
      cm.Insert(w.keys[i]);
    }
  }
  double scm_error = 0;
  double cm_error = 0;
  for (size_t i = 0; i < w.keys.size(); ++i) {
    scm_error += static_cast<double>(scm.QueryCount(w.keys[i]) - w.counts[i]);
    cm_error += static_cast<double>(cm.QueryCount(w.keys[i]) - w.counts[i]);
  }
  // The shifted pairs are slightly correlated, so allow SCM up to 2x CM's
  // average overestimate — the trade documented in DESIGN.md.
  EXPECT_LE(scm_error, 2.0 * cm_error + 0.02 * w.keys.size());
}

TEST(ScmSketchTest, ClearResets) {
  ScmSketch scm(BaseParams());
  scm.Insert("x");
  scm.Clear();
  EXPECT_EQ(scm.QueryCount("x"), 0u);
}

TEST(ScmSketchTest, MemoryAccountingIncludesSlack) {
  ScmSketch scm(BaseParams());
  // 2 rows × (8000 + w̄_c) counters × 8 bits.
  EXPECT_EQ(scm.memory_bits(), 2u * (8000u + 7u) * 8u);
}

}  // namespace
}  // namespace shbf
