#include "core/bit_array.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace shbf {
namespace {

TEST(BitArrayTest, StartsAllZero) {
  BitArray bits(1000);
  for (size_t i = 0; i < bits.total_bits(); ++i) {
    EXPECT_FALSE(bits.GetBit(i)) << "bit " << i;
  }
  EXPECT_EQ(bits.CountOnes(), 0u);
  EXPECT_DOUBLE_EQ(bits.FillRatio(), 0.0);
}

TEST(BitArrayTest, SetGetClearSingleBit) {
  BitArray bits(128, /*slack_bits=*/0);
  bits.SetBit(77);
  EXPECT_TRUE(bits.GetBit(77));
  EXPECT_FALSE(bits.GetBit(76));
  EXPECT_FALSE(bits.GetBit(78));
  bits.ClearBit(77);
  EXPECT_FALSE(bits.GetBit(77));
}

TEST(BitArrayTest, SetBitIsIdempotent) {
  BitArray bits(64, 0);
  bits.SetBit(10);
  bits.SetBit(10);
  EXPECT_EQ(bits.CountOnes(), 1u);
}

TEST(BitArrayTest, GeometryAccessors) {
  BitArray bits(1000, 57);
  EXPECT_EQ(bits.num_bits(), 1000u);
  EXPECT_EQ(bits.total_bits(), 1057u);
  // ceil(1057 / 8) + 8 guard bytes.
  EXPECT_EQ(bits.allocated_bytes(), 133u + 8u);
}

TEST(BitArrayTest, SlackBitsAreWritable) {
  BitArray bits(100, 57);
  // The shifted-write region beyond the logical size must accept bits.
  bits.SetBit(100 + 56);
  EXPECT_TRUE(bits.GetBit(156));
  EXPECT_EQ(bits.CountOnes(), 1u);
}

TEST(BitArrayTest, CountOnesAndFillRatio) {
  BitArray bits(100, 0);
  for (size_t i = 0; i < 100; i += 2) bits.SetBit(i);
  EXPECT_EQ(bits.CountOnes(), 50u);
  EXPECT_DOUBLE_EQ(bits.FillRatio(), 0.5);
}

TEST(BitArrayTest, ClearZeroesEverything) {
  BitArray bits(500);
  for (size_t i = 0; i < 500; i += 7) bits.SetBit(i);
  ASSERT_GT(bits.CountOnes(), 0u);
  bits.Clear();
  EXPECT_EQ(bits.CountOnes(), 0u);
}

TEST(BitArrayTest, WindowConstantsMatchPaper) {
  // w̄ = w − 7 (§3.1): the window must deliver at least 57 bits on 64-bit
  // machines regardless of starting alignment.
  EXPECT_EQ(BitArray::kWindowBits, 57u);
  EXPECT_EQ(kDefaultMaxOffsetSpan, 57u);
}

TEST(BitArrayTest, LoadWindowMatchesGetBitAtEveryAlignment) {
  // Property: for any start position (all 8 byte-alignments covered), bit i
  // of LoadWindow(pos) equals GetBit(pos + i) for i < kWindowBits.
  BitArray bits(512, 64);
  Rng rng(42);
  for (int setbits = 0; setbits < 200; ++setbits) {
    bits.SetBit(rng.NextBelow(512 + 57));
  }
  for (size_t pos = 0; pos < 512; ++pos) {
    uint64_t window = bits.LoadWindow(pos);
    for (uint32_t i = 0; i < BitArray::kWindowBits; ++i) {
      ASSERT_EQ((window >> i) & 1u, bits.GetBit(pos + i) ? 1u : 0u)
          << "pos=" << pos << " i=" << i;
    }
  }
}

TEST(BitArrayTest, LoadWindowAtFinalBitIsSafe) {
  BitArray bits(64, 0);
  bits.SetBit(63);
  // Reading a window at the very last logical bit must not crash (guard
  // bytes) and must report the bit.
  EXPECT_EQ(bits.LoadWindow(63) & 1u, 1u);
}

TEST(BitArrayTest, PairReadWithinOneWindow) {
  // The paper's core trick: base and base+o visible in one load for o <= 56.
  BitArray bits(10000, 57);
  size_t base = 4321;
  for (uint64_t offset = 1; offset <= 56; ++offset) {
    bits.Clear();
    bits.SetBit(base);
    bits.SetBit(base + offset);
    uint64_t need = 1ull | (1ull << offset);
    EXPECT_EQ(bits.LoadWindow(base) & need, need) << "offset " << offset;
  }
}

class BitArraySizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BitArraySizeTest, RandomSetThenVerifyAll) {
  size_t num_bits = GetParam();
  BitArray bits(num_bits, 57);
  Rng rng(1234 + num_bits);
  std::vector<bool> shadow(bits.total_bits(), false);
  for (size_t i = 0; i < num_bits / 2; ++i) {
    size_t pos = rng.NextBelow(bits.total_bits());
    bits.SetBit(pos);
    shadow[pos] = true;
  }
  size_t expected_ones = 0;
  for (size_t pos = 0; pos < bits.total_bits(); ++pos) {
    ASSERT_EQ(bits.GetBit(pos), shadow[pos]) << "pos " << pos;
    expected_ones += shadow[pos] ? 1 : 0;
  }
  EXPECT_EQ(bits.CountOnes(), expected_ones);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitArraySizeTest,
                         ::testing::Values(1, 7, 8, 9, 63, 64, 65, 1000, 4096,
                                           100003));

}  // namespace
}  // namespace shbf
