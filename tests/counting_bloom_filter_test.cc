#include "baselines/counting_bloom_filter.h"

#include <gtest/gtest.h>

#include "trace/workload.h"

namespace shbf {
namespace {

CountingBloomFilter::Params SmallParams() {
  return {.num_counters = 10000, .num_hashes = 5, .counter_bits = 8};
}

TEST(CountingBloomFilterTest, ParamsValidation) {
  CountingBloomFilter::Params p = SmallParams();
  EXPECT_TRUE(p.Validate().ok());
  p.counter_bits = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = SmallParams();
  p.num_counters = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = SmallParams();
  p.num_hashes = 0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(CountingBloomFilterTest, InsertThenContains) {
  CountingBloomFilter cbf(SmallParams());
  auto w = MakeMembershipWorkload(500, 500, 17);
  for (const auto& key : w.members) cbf.Insert(key);
  for (const auto& key : w.members) ASSERT_TRUE(cbf.Contains(key));
}

TEST(CountingBloomFilterTest, DeleteRestoresEmptyState) {
  CountingBloomFilter cbf(SmallParams());
  auto w = MakeMembershipWorkload(500, 0, 23);
  for (const auto& key : w.members) cbf.Insert(key);
  for (const auto& key : w.members) cbf.Delete(key);
  // Back to all-zero counters ⇒ everything reads absent.
  for (const auto& key : w.members) EXPECT_FALSE(cbf.Contains(key));
  EXPECT_EQ(cbf.counters().CountZero(), cbf.num_counters());
}

TEST(CountingBloomFilterTest, DeleteOneKeepsOthers) {
  CountingBloomFilter cbf(SmallParams());
  cbf.Insert("keep");
  cbf.Insert("drop");
  cbf.Delete("drop");
  EXPECT_TRUE(cbf.Contains("keep"));
}

TEST(CountingBloomFilterTest, MultisetSemantics) {
  CountingBloomFilter cbf(SmallParams());
  cbf.Insert("dup");
  cbf.Insert("dup");
  cbf.Delete("dup");
  EXPECT_TRUE(cbf.Contains("dup"));  // one copy remains
  cbf.Delete("dup");
  EXPECT_FALSE(cbf.Contains("dup"));
}

TEST(CountingBloomFilterDeathTest, DeletingAbsentKeyUnderflows) {
  CountingBloomFilter cbf(SmallParams());
  EXPECT_DEATH(cbf.Delete("never-inserted"), "underflow");
}

TEST(CountingBloomFilterTest, StatsMatchBloomCostModel) {
  CountingBloomFilter cbf(SmallParams());
  cbf.Insert("member");
  QueryStats stats;
  cbf.ContainsWithStats("member", &stats);
  EXPECT_EQ(stats.memory_accesses, 5u);  // k counter probes
  EXPECT_EQ(stats.hash_computations, 5u);
}

TEST(CountingBloomFilterTest, FourBitCountersSaturateGracefully) {
  CountingBloomFilter cbf(
      {.num_counters = 64, .num_hashes = 2, .counter_bits = 4});
  // 20 inserts of the same key drive its counters past 15.
  for (int i = 0; i < 20; ++i) cbf.Insert("hot");
  EXPECT_TRUE(cbf.Contains("hot"));
  // Deletes never underflow a stuck counter; the key stays visible — the
  // standard CBF overflow caveat, preferred over false negatives.
  for (int i = 0; i < 20; ++i) cbf.Delete("hot");
  EXPECT_TRUE(cbf.Contains("hot"));
}

}  // namespace
}  // namespace shbf
