#include "shbf/counting_shbf_membership.h"

#include <gtest/gtest.h>

#include "shbf/shbf_membership.h"
#include "trace/workload.h"

namespace shbf {
namespace {

CountingShbfM::Params BaseParams() {
  return {.num_bits = 20000, .num_hashes = 8, .counter_bits = 8};
}

TEST(CountingShbfMTest, ParamsValidation) {
  auto p = BaseParams();
  EXPECT_TRUE(p.Validate().ok());
  p.num_hashes = 5;
  EXPECT_FALSE(p.Validate().ok());
  p = BaseParams();
  p.counter_bits = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = BaseParams();
  p.max_offset_span = 100;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(CountingShbfMTest, InsertThenContains) {
  CountingShbfM filter(BaseParams());
  auto w = MakeMembershipWorkload(1000, 0, 3);
  for (const auto& key : w.members) filter.Insert(key);
  for (const auto& key : w.members) ASSERT_TRUE(filter.Contains(key));
}

TEST(CountingShbfMTest, DeleteRestoresEmptyState) {
  CountingShbfM filter(BaseParams());
  auto w = MakeMembershipWorkload(1000, 0, 5);
  for (const auto& key : w.members) filter.Insert(key);
  for (const auto& key : w.members) filter.Delete(key);
  for (const auto& key : w.members) EXPECT_FALSE(filter.Contains(key));
  EXPECT_EQ(filter.bits().CountOnes(), 0u);
  EXPECT_EQ(filter.counters().CountZero(), filter.counters().num_counters());
}

TEST(CountingShbfMTest, DeleteOneKeepsOthers) {
  CountingShbfM filter(BaseParams());
  filter.Insert("keep");
  filter.Insert("drop");
  filter.Delete("drop");
  EXPECT_TRUE(filter.Contains("keep"));
  EXPECT_FALSE(filter.Contains("drop"));
}

TEST(CountingShbfMTest, MultisetInsertDeleteSequence) {
  CountingShbfM filter(BaseParams());
  filter.Insert("dup");
  filter.Insert("dup");
  filter.Delete("dup");
  EXPECT_TRUE(filter.Contains("dup"));
  filter.Delete("dup");
  EXPECT_FALSE(filter.Contains("dup"));
}

TEST(CountingShbfMTest, BitArrayStaysSynchronizedUnderChurn) {
  // §3.3: "after each update, we synchronize array C with array B". The
  // invariant must hold at every point of an insert/delete storm.
  CountingShbfM filter(BaseParams());
  auto w = MakeMembershipWorkload(300, 0, 7);
  for (size_t round = 0; round < 3; ++round) {
    for (const auto& key : w.members) filter.Insert(key);
    ASSERT_TRUE(filter.SynchronizedWithCounters());
    for (size_t i = 0; i < w.members.size(); i += 2) {
      filter.Delete(w.members[i]);
    }
    ASSERT_TRUE(filter.SynchronizedWithCounters());
    for (size_t i = 0; i < w.members.size(); i += 2) {
      filter.Insert(w.members[i]);
    }
    for (const auto& key : w.members) filter.Delete(key);
    ASSERT_TRUE(filter.SynchronizedWithCounters());
  }
}

TEST(CountingShbfMTest, MatchesPlainShbfMAfterSameInserts) {
  // With identical seed/geometry, the projected bit array must equal the
  // plain filter's, so queries agree bit-for-bit.
  auto w = MakeMembershipWorkload(1000, 20000, 9);
  ShbfM plain({.num_bits = 20000, .num_hashes = 8, .seed = 99});
  CountingShbfM counting(
      {.num_bits = 20000, .num_hashes = 8, .counter_bits = 8, .seed = 99});
  for (const auto& key : w.members) {
    plain.Add(key);
    counting.Insert(key);
  }
  for (const auto& key : w.members) {
    ASSERT_EQ(plain.Contains(key), counting.Contains(key));
  }
  for (const auto& key : w.non_members) {
    ASSERT_EQ(plain.Contains(key), counting.Contains(key)) << "FP mismatch";
  }
}

TEST(CountingShbfMTest, QueryCostMatchesShbfM) {
  CountingShbfM filter(BaseParams());
  filter.Insert("member");
  QueryStats stats;
  filter.ContainsWithStats("member", &stats);
  EXPECT_EQ(stats.memory_accesses, 4u);      // k/2
  EXPECT_EQ(stats.hash_computations, 5u);    // k/2 + 1
}

TEST(CountingShbfMTest, OneAccessUpdateSpanFollowsSection33) {
  // w̄ <= (w − 7)/z: 4-bit counters → 14, 8-bit → 7, 1-bit → 57.
  EXPECT_EQ(CountingShbfM::OneAccessUpdateOffsetSpan(4), 14u);
  EXPECT_EQ(CountingShbfM::OneAccessUpdateOffsetSpan(8), 7u);
  EXPECT_EQ(CountingShbfM::OneAccessUpdateOffsetSpan(1), 57u);
  // Extremely wide counters still yield a usable (nonzero-offset) span.
  EXPECT_EQ(CountingShbfM::OneAccessUpdateOffsetSpan(32), 2u);
}

TEST(CountingShbfMTest, UpdateOptimizedSpanStillRoundTrips) {
  CountingShbfM filter(
      {.num_bits = 20000,
       .num_hashes = 8,
       .counter_bits = 4,
       .max_offset_span = CountingShbfM::OneAccessUpdateOffsetSpan(4)});
  auto w = MakeMembershipWorkload(800, 0, 11);
  for (const auto& key : w.members) filter.Insert(key);
  for (const auto& key : w.members) ASSERT_TRUE(filter.Contains(key));
  for (const auto& key : w.members) filter.Delete(key);
  EXPECT_EQ(filter.bits().CountOnes(), 0u);
}

TEST(CountingShbfMDeathTest, DeletingAbsentKeyUnderflows) {
  CountingShbfM filter(BaseParams());
  EXPECT_DEATH(filter.Delete("never"), "underflow");
}

}  // namespace
}  // namespace shbf
