// Cross-module integration tests: scaled-down versions of the paper's
// headline experiments, asserting the qualitative results (who wins, and by
// roughly what factor) that EXPERIMENTS.md reproduces at full size.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>

#include "analysis/association_theory.h"
#include "api/filter_registry.h"
#include "analysis/membership_theory.h"
#include "analysis/multiplicity_theory.h"
#include "baselines/bloom_filter.h"
#include "baselines/cm_sketch.h"
#include "baselines/ibf.h"
#include "baselines/one_mem_bf.h"
#include "baselines/spectral_bloom_filter.h"
#include "shbf/counting_shbf_membership.h"
#include "shbf/shbf_association.h"
#include "shbf/shbf_membership.h"
#include "shbf/shbf_multiplicity.h"
#include "trace/workload.h"

namespace shbf {
namespace {

// --- Fig 7 story: ShBF_M ≈ BF « 1MemBF on FPR ----------------------------------

TEST(IntegrationTest, MembershipFprOrdering) {
  // Registry-driven: one spec, one driver loop, three schemes — the
  // framework view of the paper's Fig 7 comparison.
  const size_t m = 22008;
  const size_t n = 1200;
  const uint32_t k = 8;
  auto w = MakeMembershipWorkload(n, 400000, 1001);
  FilterSpec spec;
  spec.num_cells = m;
  spec.num_hashes = k;
  std::map<std::string, size_t> false_positives;
  for (const char* name : {"shbf_m", "bloom", "one_mem_bf"}) {
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(
        FilterRegistry::Global().Create(name, spec, &filter).ok())
        << name;
    for (const auto& key : w.members) filter->Add(key);
    size_t fp = 0;
    for (const auto& key : w.non_members) fp += filter->Contains(key);
    false_positives[name] = fp;
  }
  size_t fp_shbf = false_positives["shbf_m"];
  size_t fp_bloom = false_positives["bloom"];
  size_t fp_one_mem = false_positives["one_mem_bf"];
  // §6.2.1: "the FPR of 1MemBF is over 5 ∼ 10 times that of ShBF_M".
  EXPECT_GT(fp_one_mem, 3 * fp_shbf);
  // ShBF_M within a whisker of BF.
  EXPECT_LT(std::abs(static_cast<double>(fp_shbf) - fp_bloom),
            0.35 * fp_bloom + 30);
}

TEST(IntegrationTest, RegistryServesAllThreeQueryFamilies) {
  // The framework claim end to end: one registry, one spec, membership +
  // association + multiplicity answers from their paper-side structures.
  const auto& registry = FilterRegistry::Global();
  FilterSpec spec;
  spec.num_cells = 30000;
  spec.num_hashes = 8;
  spec.expected_keys = 1000;
  spec.max_count = 8;
  auto w = MakeMembershipWorkload(1000, 0, 1013);

  std::unique_ptr<MembershipFilter> membership;
  ASSERT_TRUE(registry.Create("shbf_m", spec, &membership).ok());
  std::unique_ptr<AssociationFilter> association;
  ASSERT_TRUE(
      registry.CreateAssociation("counting_shbf_a", spec, &association).ok());
  std::unique_ptr<MultiplicityFilter> multiplicity;
  ASSERT_TRUE(
      registry.CreateMultiplicity("counting_shbf_x", spec, &multiplicity)
          .ok());

  for (const auto& key : w.members) {
    membership->Add(key);
    association->AddToS1(key);
    multiplicity->Add(key);
    multiplicity->Add(key);
  }
  for (const auto& key : w.members) {
    ASSERT_TRUE(membership->Contains(key));
    ASSERT_EQ(association->Query(key), AssociationOutcome::kS1Only);
    ASSERT_GE(multiplicity->QueryCount(key), 2u);
  }
}

// --- Fig 8 story: ShBF_M halves memory accesses --------------------------------

TEST(IntegrationTest, MembershipAccessRatioIsHalfForMembers) {
  const uint32_t k = 12;
  auto w = MakeMembershipWorkload(1000, 1000, 1003);
  ShbfM shbf({.num_bits = 33024, .num_hashes = k});
  BloomFilter bloom({.num_bits = 33024, .num_hashes = k});
  for (const auto& key : w.members) {
    shbf.Add(key);
    bloom.Add(key);
  }
  QueryStats shbf_stats;
  QueryStats bloom_stats;
  // The paper queries 2n elements, half members (§6.2.2).
  for (const auto& key : w.members) {
    shbf.ContainsWithStats(key, &shbf_stats);
    bloom.ContainsWithStats(key, &bloom_stats);
  }
  for (const auto& key : w.non_members) {
    shbf.ContainsWithStats(key, &shbf_stats);
    bloom.ContainsWithStats(key, &bloom_stats);
  }
  double ratio =
      shbf_stats.AvgMemoryAccesses() / bloom_stats.AvgMemoryAccesses();
  EXPECT_LT(ratio, 0.65);  // ≈ 0.5 for members, slightly above with misses
  EXPECT_GT(ratio, 0.35);
}

// --- Table 2 / Fig 10 story: ShBF_A beats iBF on clarity and cost --------------

TEST(IntegrationTest, AssociationClearAnswerAndCostComparison) {
  const uint32_t k = 8;
  const size_t n1 = 20000;
  const size_t n2 = 20000;
  const size_t n3 = 5000;
  auto w = MakeAssociationWorkload(n1, n2, n3, 40000, 1005);

  ShbfA shbf(ShbfAParams::Optimal(n1, n2, n3, k));
  shbf.Build(w.s1, w.s2);
  IndividualBloomFilters ibf(
      IndividualBloomFilters::OptimalParams(n1, n2, k));
  for (const auto& key : w.s1) ibf.AddToS1(key);
  for (const auto& key : w.s2) ibf.AddToS2(key);

  size_t clear_shbf = 0;
  size_t clear_ibf = 0;
  QueryStats stats_shbf;
  QueryStats stats_ibf;
  for (const auto& q : w.queries) {
    clear_shbf += IsClearAnswer(shbf.QueryWithStats(q.key, &stats_shbf));
    clear_ibf += IndividualBloomFilters::OutcomeIsClear(
        ibf.QueryWithStats(q.key, &stats_ibf));
  }
  double p_clear_shbf = static_cast<double>(clear_shbf) / w.queries.size();
  double p_clear_ibf = static_cast<double>(clear_ibf) / w.queries.size();
  // Paper: 1.47x higher clear-answer probability at k = 8.
  EXPECT_NEAR(p_clear_shbf / p_clear_ibf, 1.47, 0.12);
  // Paper: ShBF_A memory accesses ≈ 0.66x of iBF.
  double access_ratio =
      stats_shbf.AvgMemoryAccesses() / stats_ibf.AvgMemoryAccesses();
  EXPECT_LT(access_ratio, 0.8);
  // Table 2: k + 2 vs 2k hash computations.
  EXPECT_DOUBLE_EQ(stats_shbf.AvgHashComputations(), k + 2.0);
  EXPECT_LE(stats_ibf.AvgHashComputations(), 2.0 * k);
  // And ShBF_A uses less memory: (n1+n2−n3) vs (n1+n2) sized arrays.
  EXPECT_LT(shbf.num_bits(), ibf.total_bits());
}

// --- Fig 11 story: ShBF_X beats Spectral BF / CM on correctness ----------------

TEST(IntegrationTest, MultiplicityCorrectnessComparison) {
  const uint32_t k = 10;
  const uint32_t c = 57;
  const size_t n = 20000;
  // §6.4.1 memory discipline: 1.5x optimal bits for every structure; the
  // counter-based baselines split theirs into 6-bit counters.
  const size_t memory_bits =
      static_cast<size_t>(1.5 * n * k / std::log(2.0));
  auto w = MakeMultiplicityWorkload(n, c, 0, 1007);

  ShbfX shbf({.num_bits = memory_bits, .num_hashes = k, .max_count = c});
  SpectralBloomFilter spectral({.num_counters = memory_bits / 6,
                                .num_hashes = k,
                                .counter_bits = 6});
  CmSketch cm({.depth = k,
               .width = memory_bits / 6 / k,
               .counter_bits = 6});
  for (size_t i = 0; i < w.keys.size(); ++i) {
    shbf.InsertWithCount(w.keys[i], w.counts[i]);
    for (uint32_t r = 0; r < w.counts[i]; ++r) {
      spectral.Insert(w.keys[i]);
      cm.Insert(w.keys[i]);
    }
  }
  size_t correct_shbf = 0;
  size_t correct_spectral = 0;
  size_t correct_cm = 0;
  for (size_t i = 0; i < w.keys.size(); ++i) {
    correct_shbf +=
        (shbf.QueryCount(w.keys[i], MultiplicityReportPolicy::kSmallest) ==
         w.counts[i]);
    correct_spectral += (spectral.QueryCount(w.keys[i]) == w.counts[i]);
    correct_cm += (cm.QueryCount(w.keys[i]) == w.counts[i]);
  }
  double cr_shbf = static_cast<double>(correct_shbf) / n;
  double cr_spectral = static_cast<double>(correct_spectral) / n;
  double cr_cm = static_cast<double>(correct_cm) / n;
  // §6.4.1: CR of ShBF_X ≈ 1.6x Spectral, ≈ 1.79x CM (ranges 1.45–1.62).
  EXPECT_GT(cr_shbf, 1.2 * cr_spectral);
  EXPECT_GT(cr_shbf, 1.2 * cr_cm);
  EXPECT_GT(cr_shbf, 0.5);
}

// --- theory ↔ simulation round trips at paper parameters -----------------------

TEST(IntegrationTest, Fig7aTheorySimulationAgreement) {
  // One Fig 7(a) point: k=8, m=22008, n=1400.
  const size_t m = 22008;
  const size_t n = 1400;
  const uint32_t k = 8;
  auto w = MakeMembershipWorkload(n, 700000, 1009);
  ShbfM filter({.num_bits = m, .num_hashes = k});
  for (const auto& key : w.members) filter.Add(key);
  size_t fp = 0;
  for (const auto& key : w.non_members) fp += filter.Contains(key);
  double simulated = static_cast<double>(fp) / w.non_members.size();
  double predicted = theory::ShbfMFpr(m, n, k, 57);
  double relative_error = std::abs(simulated - predicted) / predicted;
  // §6.2.1 reports < 3%; allow 3x sampling headroom.
  EXPECT_LT(relative_error, 0.09)
      << "sim=" << simulated << " theory=" << predicted;
}

TEST(IntegrationTest, CountingTwinsSupportFullLifecycle) {
  // One combined churn pass across all three counting structures.
  CountingShbfM membership(
      {.num_bits = 30000, .num_hashes = 8, .counter_bits = 8});
  CountingShbfA association(
      {.filter = {.num_bits = 30000, .num_hashes = 8}, .counter_bits = 8});
  CountingShbfX multiplicity({.filter = {.num_bits = 30000,
                                         .num_hashes = 8,
                                         .max_count = 16},
                              .counter_bits = 8});
  auto w = MakeMembershipWorkload(500, 0, 1011);
  for (const auto& key : w.members) {
    membership.Insert(key);
    association.InsertS1(key);
    multiplicity.Insert(key);
    multiplicity.Insert(key);
  }
  for (const auto& key : w.members) {
    ASSERT_TRUE(membership.Contains(key));
    ASSERT_EQ(association.Query(key), AssociationOutcome::kS1Only);
    ASSERT_EQ(multiplicity.QueryCount(key), 2u);
  }
  for (const auto& key : w.members) {
    membership.Delete(key);
    ASSERT_TRUE(association.DeleteS1(key));
    ASSERT_TRUE(multiplicity.Delete(key));
    ASSERT_TRUE(multiplicity.Delete(key));
  }
  EXPECT_TRUE(membership.SynchronizedWithCounters());
  EXPECT_TRUE(association.SynchronizedWithCounters());
  EXPECT_TRUE(multiplicity.SynchronizedWithCounters());
  for (const auto& key : w.members) {
    EXPECT_FALSE(membership.Contains(key));
    EXPECT_EQ(multiplicity.QueryCount(key), 0u);
  }
}

}  // namespace
}  // namespace shbf
