#include "hash/randomness.h"

#include <gtest/gtest.h>

#include "trace/trace_generator.h"

namespace shbf {
namespace {

std::vector<std::string> FlowCorpus(size_t count) {
  TraceGenerator gen(0xace0fbaceull);
  return gen.DistinctFlowKeys(count);
}

TEST(RandomnessTest, ReportShapeIsConsistent) {
  HashFamily family(HashAlgorithm::kMurmur3, 1, 1);
  auto report = TestBitRandomness(family, 0, FlowCorpus(1000), 64);
  EXPECT_EQ(report.num_keys, 1000u);
  EXPECT_EQ(report.bits_tested, 64u);
  EXPECT_EQ(report.bit_frequency.size(), 64u);
  EXPECT_GE(report.max_bias, report.mean_bias);
  for (double freq : report.bit_frequency) {
    EXPECT_GE(freq, 0.0);
    EXPECT_LE(freq, 1.0);
  }
}

// The paper's §6.1 selection criterion: every output bit is 1 with
// probability ≈ 0.5 over the trace corpus. With 50k keys, a fair bit
// deviates by more than 0.01 with probability < 10^-5 (per bit).
class HashRandomnessTest : public ::testing::TestWithParam<HashAlgorithm> {};

TEST_P(HashRandomnessTest, PassesPaperBitBalanceCriterion) {
  HashFamily family(GetParam(), 2, 0x1234);
  auto corpus = FlowCorpus(50000);
  uint32_t bits = HashAlgorithmBits(GetParam());
  for (uint32_t func = 0; func < 2; ++func) {
    auto report = TestBitRandomness(family, func, corpus, bits);
    EXPECT_TRUE(report.Passes(0.012))
        << HashAlgorithmName(GetParam()) << " func " << func
        << " max_bias=" << report.max_bias;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, HashRandomnessTest,
    ::testing::Values(HashAlgorithm::kMurmur3, HashAlgorithm::kBobLookup3,
                      HashAlgorithm::kBobLookup2, HashAlgorithm::kFnv1a),
    [](const auto& info) { return HashAlgorithmName(info.param); });

TEST(RandomnessTest, DetectsABiasedFunction) {
  // lookup2 yields a 32-bit value; testing 64 bits means bits 32..63 are
  // constant zero — the report must flag that as maximal bias.
  HashFamily family(HashAlgorithm::kBobLookup2, 1, 7);
  auto report = TestBitRandomness(family, 0, FlowCorpus(2000), 64);
  EXPECT_FALSE(report.Passes(0.012));
  EXPECT_DOUBLE_EQ(report.bit_frequency[63], 0.0);
  EXPECT_DOUBLE_EQ(report.max_bias, 0.5);
}

TEST(RandomnessTest, MeanBiasShrinksWithCorpusSize) {
  HashFamily family(HashAlgorithm::kMurmur3, 1, 3);
  auto small = TestBitRandomness(family, 0, FlowCorpus(500), 64);
  auto large = TestBitRandomness(family, 0, FlowCorpus(50000), 64);
  EXPECT_LT(large.mean_bias, small.mean_bias);
}

}  // namespace
}  // namespace shbf
