#include "core/status.h"

#include <gtest/gtest.h>

namespace shbf {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllCodesRoundTripThroughToString) {
  EXPECT_EQ(Status::OutOfRange("x").ToString(), "OUT_OF_RANGE: x");
  EXPECT_EQ(Status::NotFound("x").ToString(), "NOT_FOUND: x");
  EXPECT_EQ(Status::AlreadyExists("x").ToString(), "ALREADY_EXISTS: x");
  EXPECT_EQ(Status::ResourceExhausted("x").ToString(),
            "RESOURCE_EXHAUSTED: x");
  EXPECT_EQ(Status::FailedPrecondition("x").ToString(),
            "FAILED_PRECONDITION: x");
  EXPECT_EQ(Status::Internal("x").ToString(), "INTERNAL: x");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::NotFound("key");
  Status t = s;
  EXPECT_EQ(t.code(), Status::Code::kNotFound);
  EXPECT_EQ(t.message(), "key");
}

TEST(StatusTest, CheckOkPassesOnOk) { CheckOk(Status::Ok()); }

TEST(StatusDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(CheckOk(Status::Internal("boom")), "INTERNAL: boom");
}

TEST(CheckDeathTest, CheckStreamsContext) {
  EXPECT_DEATH(SHBF_CHECK(1 == 2) << "context " << 42, "context 42");
}

TEST(CheckTest, PassingCheckHasNoSideEffects) {
  int touched = 0;
  SHBF_CHECK(true) << ++touched;  // must not evaluate the stream
  EXPECT_EQ(touched, 0);
}

}  // namespace
}  // namespace shbf
