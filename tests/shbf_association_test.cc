#include "shbf/shbf_association.h"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/association_theory.h"
#include "trace/trace_generator.h"
#include "trace/workload.h"

namespace shbf {
namespace {

ShbfA BuildFromWorkload(const AssociationWorkload& w, uint32_t k,
                        size_t n_intersection) {
  // |S1 ∩ S2| is needed for Table 2 sizing.
  auto params = ShbfAParams::Optimal(w.s1.size(), w.s2.size(), n_intersection, k);
  ShbfA filter(params);
  filter.Build(w.s1, w.s2);
  return filter;
}

TEST(ShbfAParamsTest, Validation) {
  ShbfAParams p{.num_bits = 1000, .num_hashes = 8};
  EXPECT_TRUE(p.Validate().ok());
  p.max_offset_span = 56;  // even span has no exact half
  EXPECT_FALSE(p.Validate().ok());
  p = {.num_bits = 0, .num_hashes = 8};
  EXPECT_FALSE(p.Validate().ok());
  p = {.num_bits = 1000, .num_hashes = 0};
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ShbfAParamsTest, OptimalSizingMatchesTable2) {
  auto p = ShbfAParams::Optimal(1000, 800, 300, 10);
  // m = (n1 + n2 − n3)·k/ln2 = 1500·10/0.6931 ≈ 21640.
  EXPECT_NEAR(static_cast<double>(p.num_bits), 1500 * 10 / std::log(2.0), 2);
}

TEST(ShbfATest, OffsetRangesMatchSection41) {
  ShbfA filter({.num_bits = 10000, .num_hashes = 8});
  auto w = MakeAssociationWorkload(2000, 2000, 500, 0, 3);
  for (const auto& key : w.s1) {
    auto off = filter.OffsetsOf(key);
    ASSERT_GE(off.o1, 1u);
    ASSERT_LE(off.o1, 28u);  // (w̄−1)/2
    ASSERT_GE(off.o2, off.o1 + 1);
    ASSERT_LE(off.o2, 56u);  // o1 + (w̄−1)/2
  }
}

TEST(ShbfATest, CleanSeparationWithoutOverlap) {
  auto w = MakeAssociationWorkload(1000, 1000, 0, 3000, 5);
  ShbfA filter = BuildFromWorkload(w, 10, 0);
  for (const auto& q : w.queries) {
    AssociationOutcome outcome = filter.Query(q.key);
    EXPECT_TRUE(OutcomeConsistentWithTruth(outcome, q.truth))
        << AssociationOutcomeName(outcome);
  }
}

TEST(ShbfATest, ClearAnswersAreNeverWrong) {
  // The paper's central accuracy claim (§4.2): "for all these seven
  // outcomes, the decisions of ShBF_A do not suffer from false positives or
  // false negatives" — clear answers must match the ground truth exactly.
  auto w = MakeAssociationWorkload(5000, 5000, 1250, 30000, 7);
  ShbfA filter = BuildFromWorkload(w, 8, 1250);
  for (const auto& q : w.queries) {
    AssociationOutcome outcome = filter.Query(q.key);
    ASSERT_NE(outcome, AssociationOutcome::kNotFound)
        << "no false negatives for union elements";
    ASSERT_TRUE(OutcomeConsistentWithTruth(outcome, q.truth))
        << AssociationOutcomeName(outcome) << " truth "
        << static_cast<int>(q.truth);
  }
}

TEST(ShbfATest, NonUnionElementsMostlyReportNotFound) {
  auto w = MakeAssociationWorkload(2000, 2000, 500, 0, 9);
  ShbfA filter = BuildFromWorkload(w, 10, 500);
  TraceGenerator outsider_gen(777777);
  size_t not_found = 0;
  auto outsiders = outsider_gen.DistinctKeys(5000, 16);  // distinct key space
  for (const auto& key : outsiders) {
    not_found += (filter.Query(key) == AssociationOutcome::kNotFound);
  }
  EXPECT_GT(not_found, 4900u);  // k=10 ⇒ FPR per pattern ~0.1%
}

TEST(ShbfATest, BuildIgnoresDuplicateKeysWithinASet) {
  ShbfA once({.num_bits = 4096, .num_hashes = 6, .seed = 5});
  ShbfA twice({.num_bits = 4096, .num_hashes = 6, .seed = 5});
  std::vector<std::string> s1{"a", "b", "c"};
  std::vector<std::string> s1_dup{"a", "a", "b", "b", "c", "c"};
  std::vector<std::string> s2{"b", "d"};
  once.Build(s1, s2);
  twice.Build(s1_dup, s2);
  EXPECT_EQ(once.bits().CountOnes(), twice.bits().CountOnes());
}

TEST(ShbfATest, OutcomeDistributionMatchesEq25) {
  const uint32_t k = 6;  // small k so partial outcomes actually occur
  auto w = MakeAssociationWorkload(20000, 20000, 5000, 120000, 11);
  ShbfA filter = BuildFromWorkload(w, k, 5000);
  size_t clear = 0;
  size_t partial = 0;
  size_t unknown = 0;
  for (const auto& q : w.queries) {
    AssociationOutcome outcome = filter.Query(q.key);
    if (IsClearAnswer(outcome)) {
      ++clear;
    } else if (outcome == AssociationOutcome::kUnknown) {
      ++unknown;
    } else {
      ++partial;
    }
  }
  double n = static_cast<double>(w.queries.size());
  // Eq (25): P(clear) = (1−0.5^k)², P(partial) = 2·0.5^k(1−0.5^k)... per
  // true part exactly two of the six partial outcomes are reachable.
  double x = std::pow(0.5, k);
  EXPECT_NEAR(clear / n, (1 - x) * (1 - x), 0.01);
  EXPECT_NEAR(partial / n, 2 * x * (1 - x), 0.01);
  EXPECT_NEAR(unknown / n, x * x, 0.002);
}

TEST(ShbfATest, ClearAnswerProbabilityTracksTable2) {
  const uint32_t k = 8;
  auto w = MakeAssociationWorkload(30000, 30000, 7500, 60000, 13);
  ShbfA filter = BuildFromWorkload(w, k, 7500);
  size_t clear = 0;
  for (const auto& q : w.queries) clear += IsClearAnswer(filter.Query(q.key));
  double simulated = static_cast<double>(clear) / w.queries.size();
  double predicted = theory::ShbfAClearAnswerProb(k);  // (1−0.5^k)²
  EXPECT_NEAR(simulated, predicted, 0.01);
}

TEST(ShbfATest, QueryCostsKAccessesAndKPlus2Hashes) {
  auto w = MakeAssociationWorkload(1000, 1000, 250, 5000, 15);
  ShbfA filter = BuildFromWorkload(w, 8, 250);
  QueryStats stats;
  for (const auto& q : w.queries) filter.QueryWithStats(q.key, &stats);
  // Union elements keep at least one pattern alive through all k rounds.
  EXPECT_DOUBLE_EQ(stats.AvgMemoryAccesses(), 8.0);
  EXPECT_DOUBLE_EQ(stats.AvgHashComputations(), 10.0);
}

TEST(ShbfATest, StatsShowEarlyExitForNonUnionElements) {
  // Elements outside S1 ∪ S2 usually kill all three patterns within the
  // first couple of rounds; the access count must reflect the early break.
  auto w = MakeAssociationWorkload(2000, 2000, 500, 0, 21);
  ShbfA filter = BuildFromWorkload(w, 12, 500);
  TraceGenerator outsiders(31415);
  QueryStats stats;
  for (const auto& key : outsiders.DistinctKeys(2000, 16)) {
    filter.QueryWithStats(key, &stats);
  }
  EXPECT_LT(stats.AvgMemoryAccesses(), 4.0);
  EXPECT_GE(stats.AvgMemoryAccesses(), 1.0);
}

TEST(ShbfATest, SmallerOffsetSpansStillGiveExactClearAnswers) {
  // The zero-FP property of clear answers is structural, not a consequence
  // of w̄ = 57; verify at the 32-bit machine setting w̄ = 25 (§3.4.2).
  auto w = MakeAssociationWorkload(2000, 2000, 500, 10000, 23);
  ShbfAParams params = ShbfAParams::Optimal(2000, 2000, 500, 8);
  params.max_offset_span = 25;
  ShbfA filter(params);
  filter.Build(w.s1, w.s2);
  for (const auto& q : w.queries) {
    AssociationOutcome outcome = filter.Query(q.key);
    ASSERT_NE(outcome, AssociationOutcome::kNotFound);
    ASSERT_TRUE(OutcomeConsistentWithTruth(outcome, q.truth));
  }
}

// --- CountingShbfA ------------------------------------------------------------

CountingShbfA::Params CountingParams() {
  return {.filter = {.num_bits = 20000, .num_hashes = 8}, .counter_bits = 8};
}

TEST(CountingShbfATest, InsertBothWaysYieldsIntersection) {
  CountingShbfA filter(CountingParams());
  filter.InsertS1("shared");
  EXPECT_EQ(filter.Query("shared"), AssociationOutcome::kS1Only);
  filter.InsertS2("shared");
  EXPECT_EQ(filter.Query("shared"), AssociationOutcome::kIntersection);
  EXPECT_TRUE(filter.InS1("shared"));
  EXPECT_TRUE(filter.InS2("shared"));
}

TEST(CountingShbfATest, InsertOrderDoesNotMatter) {
  CountingShbfA a(CountingParams());
  CountingShbfA b(CountingParams());
  a.InsertS1("e");
  a.InsertS2("e");
  b.InsertS2("e");
  b.InsertS1("e");
  EXPECT_EQ(a.Query("e"), b.Query("e"));
}

TEST(CountingShbfATest, DeleteMigratesBackToExclusive) {
  CountingShbfA filter(CountingParams());
  filter.InsertS1("e");
  filter.InsertS2("e");
  ASSERT_EQ(filter.Query("e"), AssociationOutcome::kIntersection);
  EXPECT_TRUE(filter.DeleteS2("e"));
  EXPECT_EQ(filter.Query("e"), AssociationOutcome::kS1Only);
  EXPECT_TRUE(filter.DeleteS1("e"));
  EXPECT_EQ(filter.Query("e"), AssociationOutcome::kNotFound);
}

TEST(CountingShbfATest, DeleteFromWrongSetFails) {
  CountingShbfA filter(CountingParams());
  filter.InsertS1("only-s1");
  EXPECT_FALSE(filter.DeleteS2("only-s1"));
  EXPECT_FALSE(filter.DeleteS1("never-seen"));
  EXPECT_TRUE(filter.DeleteS1("only-s1"));
}

TEST(CountingShbfATest, ReinsertionIsIdempotent) {
  CountingShbfA filter(CountingParams());
  filter.InsertS1("e");
  filter.InsertS1("e");
  EXPECT_EQ(filter.size_s1(), 1u);
  EXPECT_TRUE(filter.DeleteS1("e"));
  EXPECT_EQ(filter.Query("e"), AssociationOutcome::kNotFound);
}

TEST(CountingShbfATest, ChurnKeepsBitsSynchronized) {
  CountingShbfA filter(CountingParams());
  auto w = MakeAssociationWorkload(400, 400, 100, 0, 17);
  for (const auto& key : w.s1) filter.InsertS1(key);
  ASSERT_TRUE(filter.SynchronizedWithCounters());
  for (const auto& key : w.s2) filter.InsertS2(key);
  ASSERT_TRUE(filter.SynchronizedWithCounters());
  for (const auto& key : w.s1) filter.DeleteS1(key);
  ASSERT_TRUE(filter.SynchronizedWithCounters());
  for (const auto& key : w.s2) filter.DeleteS2(key);
  ASSERT_TRUE(filter.SynchronizedWithCounters());
  EXPECT_EQ(filter.size_s1(), 0u);
  EXPECT_EQ(filter.size_s2(), 0u);
}

TEST(CountingShbfATest, IncrementalMatchesBulkBuild) {
  auto w = MakeAssociationWorkload(2000, 2000, 500, 10000, 19);
  ShbfAParams params{.num_bits = 60000, .num_hashes = 8, .seed = 4242};
  ShbfA bulk(params);
  bulk.Build(w.s1, w.s2);
  CountingShbfA incremental({.filter = params, .counter_bits = 8});
  for (const auto& key : w.s1) incremental.InsertS1(key);
  for (const auto& key : w.s2) incremental.InsertS2(key);
  for (const auto& q : w.queries) {
    ASSERT_EQ(bulk.Query(q.key), incremental.Query(q.key));
  }
}

}  // namespace
}  // namespace shbf
