// MultiSetIndex: the tree index must answer WhichSets bit-identically to a
// brute-force Contains loop over the catalog (same false positives, no
// false negatives) for mixed mergeable/non-mergeable backends, stay correct
// under incremental AddKey/RemoveSet maintenance, and degrade (not fail)
// when geometries refuse to merge.

#include "multiset/multi_set_index.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/filter_registry.h"
#include "api/set_catalog.h"

namespace shbf {
namespace {

/// Indexable sets are built SPARSE (64 bits/key, k = 4): a summary node is
/// the bitwise union of its children, so leaves need headroom for their
/// union to stay discriminative (docs/multiset.md, "tree vs scan").
std::unique_ptr<MembershipFilter> MakeFilter(const std::string& name,
                                             size_t keys = 300,
                                             double bits_per_key = 64.0) {
  FilterSpec spec = FilterSpec::ForKeys(keys, bits_per_key, 4);
  spec.max_count = 8;
  std::unique_ptr<MembershipFilter> filter;
  CheckOk(FilterRegistry::Global().Create(name, spec, &filter));
  return filter;
}

/// `num_sets` sets named "set-<i>" with `keys_per_set` keys each; set i uses
/// backends[i % backends.size()].
SetCatalog MakeCatalog(const std::vector<std::string>& backends,
                       size_t num_sets, size_t keys_per_set) {
  SetCatalog catalog;
  for (size_t i = 0; i < num_sets; ++i) {
    auto filter = MakeFilter(backends[i % backends.size()], keys_per_set);
    for (size_t k = 0; k < keys_per_set; ++k) {
      filter->Add("set-" + std::to_string(i) + "-key-" + std::to_string(k));
    }
    CheckOk(catalog.AddSet("set-" + std::to_string(i), std::move(filter)));
  }
  return catalog;
}

std::vector<std::string> MakeQueries(size_t num_sets, size_t keys_per_set) {
  std::vector<std::string> queries;
  for (size_t i = 0; i < num_sets; i += 3) {
    queries.push_back("set-" + std::to_string(i) + "-key-0");
    queries.push_back("set-" + std::to_string(i) + "-key-" +
                      std::to_string(keys_per_set - 1));
  }
  for (int i = 0; i < 500; ++i) {
    queries.push_back("absent-" + std::to_string(i));
  }
  return queries;
}

/// The ground-truth which-sets loop: every live catalog filter, per key.
SetIdBitmap BruteForce(const SetCatalog& catalog, std::string_view key) {
  SetIdBitmap bitmap(catalog.id_bound());
  for (const SetCatalog::SetEntry* entry : catalog.Entries()) {
    if (entry->filter->Contains(key)) bitmap.Set(entry->id);
  }
  return bitmap;
}

TEST(MultiSetIndexTest, BitIdenticalToBruteForceOverMixedBackends) {
  // Mergeable (shbf_m, bloom — two tree groups) interleaved with
  // non-mergeable (cuckoo, shbf_x — scan fallback).
  SetCatalog catalog =
      MakeCatalog({"shbf_m", "shbf_m", "bloom", "cuckoo", "shbf_x"}, 20, 80);
  std::unique_ptr<MultiSetIndex> index;
  ASSERT_TRUE(MultiSetIndex::Build(&catalog, {}, &index).ok());

  const MultiSetIndex::Stats stats = index->stats();
  EXPECT_EQ(stats.sets, 20u);
  EXPECT_GT(stats.summary_nodes, 0u);
  EXPECT_EQ(stats.trees, 2u) << "one tree per mergeable backend";
  EXPECT_EQ(stats.scan_leaves, 8u) << "cuckoo + shbf_x sets scan";
  EXPECT_EQ(stats.tree_leaves, 12u);

  const std::vector<std::string> queries = MakeQueries(20, 80);
  std::vector<SetIdBitmap> batched;
  index->WhichSetsBatch(queries, &batched);
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    const SetIdBitmap want = BruteForce(catalog, queries[q]);
    EXPECT_EQ(batched[q], want) << "batch diverges at query " << q;
    SetIdBitmap single;
    index->WhichSets(queries[q], &single);
    EXPECT_EQ(single, want) << "single-key diverges at query " << q;
  }
}

TEST(MultiSetIndexTest, ForceScanMatchesTreeAnswers) {
  SetCatalog catalog = MakeCatalog({"shbf_m"}, 32, 60);
  std::unique_ptr<MultiSetIndex> tree;
  ASSERT_TRUE(MultiSetIndex::Build(&catalog, {}, &tree).ok());
  MultiSetIndexOptions scan_options;
  scan_options.force_scan = true;
  std::unique_ptr<MultiSetIndex> scan;
  ASSERT_TRUE(MultiSetIndex::Build(&catalog, scan_options, &scan).ok());
  EXPECT_EQ(scan->stats().summary_nodes, 0u);

  const std::vector<std::string> queries = MakeQueries(32, 60);
  std::vector<SetIdBitmap> tree_answers;
  std::vector<SetIdBitmap> scan_answers;
  tree->WhichSetsBatch(queries, &tree_answers);
  scan->WhichSetsBatch(queries, &scan_answers);
  EXPECT_EQ(tree_answers, scan_answers);

  // The whole point: the tree consults far fewer filters on this
  // absent-heavy stream than the scan does.
  EXPECT_LT(tree->stats().probes, scan->stats().probes / 2);
}

TEST(MultiSetIndexTest, DeepTreeStaysCorrect) {
  // branching 2 over 33 sets: 6+ levels, lone-tail promotions included.
  SetCatalog catalog = MakeCatalog({"shbf_m"}, 33, 40);
  MultiSetIndexOptions options;
  options.branching = 2;
  std::unique_ptr<MultiSetIndex> index;
  ASSERT_TRUE(MultiSetIndex::Build(&catalog, options, &index).ok());
  EXPECT_GE(index->stats().levels, 6u);
  for (const auto& key : MakeQueries(33, 40)) {
    SetIdBitmap got;
    index->WhichSets(key, &got);
    EXPECT_EQ(got, BruteForce(catalog, key));
  }
}

TEST(MultiSetIndexTest, IncrementalAddKeyMaintainsSummaries) {
  SetCatalog catalog = MakeCatalog({"shbf_m", "cuckoo"}, 16, 50);
  std::unique_ptr<MultiSetIndex> index;
  ASSERT_TRUE(MultiSetIndex::Build(&catalog, {}, &index).ok());

  // New keys added through the index must be reported immediately — for a
  // tree leaf that means every summary on the root path absorbed them.
  for (uint32_t id : {0u, 1u, 7u}) {  // shbf_m and cuckoo leaves
    const std::string key = "added-later-" + std::to_string(id);
    ASSERT_TRUE(index->AddKey(id, key).ok());
    index->PrepareForConstReads();
    SetIdBitmap got;
    index->WhichSets(key, &got);
    EXPECT_TRUE(got.Test(id)) << "set " << id << " lost an incremental add";
    EXPECT_EQ(got, BruteForce(catalog, key));
  }
  EXPECT_EQ(index->AddKey(999, "x").code(), Status::Code::kNotFound);

  // Batch maintenance entry point.
  ASSERT_TRUE(index->AddKeys(3, {"bulk-1", "bulk-2"}).ok());
  index->PrepareForConstReads();
  SetIdBitmap got;
  index->WhichSets("bulk-2", &got);
  EXPECT_TRUE(got.Test(3));
}

TEST(MultiSetIndexTest, RemoveSetStopsReportingWithoutDisturbingOthers) {
  SetCatalog catalog = MakeCatalog({"shbf_m", "cuckoo"}, 12, 50);
  std::unique_ptr<MultiSetIndex> index;
  ASSERT_TRUE(MultiSetIndex::Build(&catalog, {}, &index).ok());

  // Drop one tree leaf (id 2) and one scan leaf (id 5): index first, then
  // the catalog frees the filters.
  ASSERT_TRUE(index->RemoveSet(2).ok());
  ASSERT_TRUE(index->RemoveSet(5).ok());
  ASSERT_TRUE(catalog.DropSet("set-2").ok());
  ASSERT_TRUE(catalog.DropSet("set-5").ok());
  EXPECT_EQ(index->RemoveSet(2).code(), Status::Code::kNotFound);
  EXPECT_EQ(index->stats().sets, 10u);

  for (const auto& key : MakeQueries(12, 50)) {
    SetIdBitmap got;
    index->WhichSets(key, &got);
    EXPECT_FALSE(got.Test(2));
    EXPECT_FALSE(got.Test(5));
    EXPECT_EQ(got, BruteForce(catalog, key)) << key;
  }
}

TEST(MultiSetIndexTest, MismatchedGeometrySetsDemoteToScan) {
  // Same backend name, incompatible geometry: MergeFrom refuses, the index
  // demotes the odd ones out to the scan list and stays bit-identical.
  SetCatalog catalog;
  for (int i = 0; i < 6; ++i) {
    const bool big = i >= 4;
    auto filter = MakeFilter("shbf_m", big ? 5000 : 200);
    for (int k = 0; k < 100; ++k) {
      filter->Add("set-" + std::to_string(i) + "-key-" + std::to_string(k));
    }
    CheckOk(catalog.AddSet("set-" + std::to_string(i), std::move(filter)));
  }
  std::unique_ptr<MultiSetIndex> index;
  ASSERT_TRUE(MultiSetIndex::Build(&catalog, {}, &index).ok());
  EXPECT_GT(index->stats().scan_leaves, 0u);
  for (int i = 0; i < 6; ++i) {
    for (int k : {0, 99}) {
      const std::string key =
          "set-" + std::to_string(i) + "-key-" + std::to_string(k);
      SetIdBitmap got;
      index->WhichSets(key, &got);
      EXPECT_EQ(got, BruteForce(catalog, key)) << key;
    }
  }
}

TEST(MultiSetIndexTest, GeometryClustersThatCannotMergeBecomeSeparateRoots) {
  // One backend name, two geometry clusters big enough that EACH builds
  // its own summary; the summaries refuse to merge at the next level and
  // must be finalized as separate roots — build succeeds, answers stay
  // bit-identical (regression: this used to fail the whole Build with
  // kInternal).
  SetCatalog catalog;
  for (int i = 0; i < 6; ++i) {
    const bool big = i >= 4;
    auto filter = MakeFilter("shbf_m", big ? 5000 : 200);
    for (int k = 0; k < 100; ++k) {
      filter->Add("set-" + std::to_string(i) + "-key-" + std::to_string(k));
    }
    CheckOk(catalog.AddSet("set-" + std::to_string(i), std::move(filter)));
  }
  MultiSetIndexOptions options;
  options.branching = 2;  // both clusters aggregate before they collide
  std::unique_ptr<MultiSetIndex> index;
  ASSERT_TRUE(MultiSetIndex::Build(&catalog, options, &index).ok());
  const MultiSetIndex::Stats stats = index->stats();
  EXPECT_GE(stats.trees, 2u) << "the clusters must index independently";
  EXPECT_EQ(stats.scan_leaves, 0u) << "no set should fall back to scan";
  for (int i = 0; i < 6; ++i) {
    for (int k : {0, 99}) {
      const std::string key =
          "set-" + std::to_string(i) + "-key-" + std::to_string(k);
      SetIdBitmap got;
      index->WhichSets(key, &got);
      EXPECT_EQ(got, BruteForce(catalog, key)) << key;
    }
  }
}

TEST(MultiSetIndexTest, BuildRejectsBadInputs) {
  SetCatalog empty;
  std::unique_ptr<MultiSetIndex> index;
  EXPECT_EQ(MultiSetIndex::Build(&empty, {}, &index).code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(MultiSetIndex::Build(nullptr, {}, &index).code(),
            Status::Code::kFailedPrecondition);
  SetCatalog catalog = MakeCatalog({"shbf_m"}, 4, 20);
  MultiSetIndexOptions options;
  options.branching = 1;
  EXPECT_EQ(MultiSetIndex::Build(&catalog, options, &index).code(),
            Status::Code::kInvalidArgument);
}

TEST(MultiSetIndexTest, SetIdBitmapBasics) {
  SetIdBitmap bitmap(130);
  EXPECT_EQ(bitmap.Count(), 0u);
  bitmap.Set(0);
  bitmap.Set(64);
  bitmap.Set(129);
  EXPECT_TRUE(bitmap.Test(64));
  EXPECT_FALSE(bitmap.Test(63));
  EXPECT_FALSE(bitmap.Test(500));  // out of universe = absent, not UB
  EXPECT_EQ(bitmap.Count(), 3u);
  EXPECT_EQ(bitmap.ToIds(), (std::vector<uint32_t>{0, 64, 129}));
  SetIdBitmap other(130);
  EXPECT_NE(bitmap, other);
  other.Set(0);
  other.Set(64);
  other.Set(129);
  EXPECT_EQ(bitmap, other);
  bitmap.ClearAll();
  EXPECT_EQ(bitmap.Count(), 0u);
}

}  // namespace
}  // namespace shbf
