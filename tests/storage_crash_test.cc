// Crash-consistency harness for the flat-image writer: a child process is
// SIGKILLed at randomized points while it overwrites a generation-1 image
// with generation 2; the survivor on disk must ALWAYS reopen clean
// (checksums verified) as exactly one of the two generations, answering
// exactly that generation's key set. A torn header, a half-written region
// or a renamed-but-unsynced file each fail this loudly.
//
// The protocol under test (storage::WriteImageFile): write to a temp file,
// msync(MS_SYNC) + fsync, rename(2) over the target, fsync the directory.
// rename is the atomic commit point — the kill can land anywhere around it.

#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "api/filter_registry.h"
#include "storage/mapped_filter.h"
#include "trace/trace_generator.h"

namespace shbf {
namespace {

constexpr int kIterations = 220;

FilterSpec SmallSpec() {
  FilterSpec spec;
  spec.num_cells = 60000;  // ~7.5 KB image payload: fast enough to rewrite
  spec.num_hashes = 4;     // hundreds of times, big enough to span pages.
  spec.expected_keys = 400;
  spec.seed = 0xc4a5;
  return spec;
}

std::unique_ptr<MembershipFilter> BuildGeneration(
    const std::vector<std::string>& keys) {
  std::unique_ptr<MembershipFilter> filter;
  Status s = FilterRegistry::Global().Create("shbf_m", SmallSpec(), &filter);
  EXPECT_TRUE(s.ok()) << s.ToString();
  for (const auto& key : keys) filter->Add(key);
  return filter;
}

/// Removes any writer temp files (path + ".tmp.<pid>") a killed child left
/// behind, so 200 iterations don't litter the temp dir.
void RemoveStrayTempFiles(const std::string& dir, const std::string& stem) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return;
  while (struct dirent* entry = readdir(d)) {
    std::string name = entry->d_name;
    if (name.rfind(stem + ".tmp.", 0) == 0) {
      std::remove((dir + "/" + name).c_str());
    }
  }
  closedir(d);
}

TEST(StorageCrashTest, KilledWriterAlwaysLeavesOldOrNewNeverTorn) {
  TraceGenerator gen(0xdead);
  auto keys = gen.DistinctFlowKeys(1200);
  std::vector<std::string> gen1_keys(keys.begin(), keys.begin() + 400);
  std::vector<std::string> gen2_keys(keys.begin() + 400, keys.begin() + 800);
  std::vector<std::string> probes(keys.begin() + 800, keys.end());

  auto filter1 = BuildGeneration(gen1_keys);
  auto filter2 = BuildGeneration(gen2_keys);
  ASSERT_NE(filter1, nullptr);
  ASSERT_NE(filter2, nullptr);

  // Reference answers per generation over one shared probe list.
  std::vector<std::string> all = gen1_keys;
  all.insert(all.end(), gen2_keys.begin(), gen2_keys.end());
  all.insert(all.end(), probes.begin(), probes.end());
  std::vector<uint8_t> expect1(all.size()), expect2(all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    expect1[i] = filter1->Contains(all[i]) ? 1 : 0;
    expect2[i] = filter2->Contains(all[i]) ? 1 : 0;
  }

  const std::string dir = ::testing::TempDir();
  const std::string stem = "crash_harness.shbi";
  const std::string path = dir + "/" + stem;
  const auto& registry = FilterRegistry::Global();

  // Calibrate the kill window: one full uncontested write, in microseconds.
  auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(registry.SaveMapped(*filter2, path, 2).ok());
  auto write_us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  if (write_us < 50) write_us = 50;

  std::mt19937_64 rng(0x5eed);
  std::uniform_int_distribution<long> delay(0, 2 * write_us);
  int survived_old = 0;
  int survived_new = 0;

  for (int iteration = 0; iteration < kIterations; ++iteration) {
    SCOPED_TRACE(iteration);
    // Reset to a known generation-1 image.
    ASSERT_TRUE(registry.SaveMapped(*filter1, path, 1).ok());

    const long kill_after_us = delay(rng);
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: overwrite with generation 2, then spin so the parent's
      // SIGKILL always finds us (never exit the parent's gtest state).
      Status s = registry.SaveMapped(*filter2, path, 2);
      (void)s;
      for (;;) pause();
    }
    if (kill_after_us > 0) usleep(static_cast<useconds_t>(kill_after_us));
    kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));

    // The survivor must open clean — full payload verification — and be
    // exactly generation 1 or generation 2.
    std::unique_ptr<MembershipFilter> survivor;
    Status s = registry.OpenMapped(
        path, &survivor, storage::OpenOptions{.verify_payload = true});
    ASSERT_TRUE(s.ok()) << "torn image after kill at " << kill_after_us
                        << "us: " << s.ToString();
    auto* mapped = dynamic_cast<storage::MappedFilter*>(survivor.get());
    ASSERT_NE(mapped, nullptr);
    const uint64_t generation = mapped->generation();
    ASSERT_TRUE(generation == 1 || generation == 2) << generation;

    const std::vector<uint8_t>& expect = generation == 1 ? expect1 : expect2;
    for (size_t i = 0; i < all.size(); ++i) {
      ASSERT_EQ(survivor->Contains(all[i]), expect[i] != 0)
          << "generation " << generation << " answered wrong for key " << i;
    }
    (generation == 1 ? survived_old : survived_new)++;
    RemoveStrayTempFiles(dir, stem);
  }

  // The harness is only meaningful if the kill window straddles the commit
  // point: both outcomes must actually occur across 220 samples.
  EXPECT_GT(survived_old, 0) << "every kill landed after the rename; "
                                "shrink the image or widen the window";
  EXPECT_GT(survived_new, 0) << "every kill landed before the rename";
  std::remove(path.c_str());
}

TEST(StorageCrashTest, WriterTempFilesNeverShadowTheCommittedImage) {
  // A killed writer may leave "<path>.tmp.<pid>" behind; reopening the
  // committed path must be unaffected by any such stray, and the stray
  // itself — a complete or partial image that was never renamed — must
  // never be picked up by OpenMapped of the real path.
  TraceGenerator gen(0xbeef);
  auto keys = gen.DistinctFlowKeys(400);
  auto filter = BuildGeneration(keys);
  const std::string path = ::testing::TempDir() + "/crash_stray.shbi";
  const auto& registry = FilterRegistry::Global();
  ASSERT_TRUE(registry.SaveMapped(*filter, path, 5).ok());

  // Plant a stray temp that looks like a half-finished generation 6.
  std::string stray = path + ".tmp.12345";
  ASSERT_TRUE(registry.SaveMapped(*filter, stray, 6).ok());
  ASSERT_EQ(truncate(stray.c_str(), 4096), 0);  // header only, no payload

  std::unique_ptr<MembershipFilter> reopened;
  Status s = registry.OpenMapped(path, &reopened,
                                 storage::OpenOptions{.verify_payload = true});
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(dynamic_cast<storage::MappedFilter*>(reopened.get())->generation(),
            5u);
  std::remove(stray.c_str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace shbf
