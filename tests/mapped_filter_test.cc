// Mapped-image differential suite: for every filter the registry can lay
// out flat, a filter opened off its mmap image must answer bit-identically
// to the heap original — per key, through BatchQueryEngine (both the SIMD
// and the forced-scalar dispatch), and from concurrently forked reader
// processes sharing one image.

#include <gtest/gtest.h>

#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/filter_registry.h"
#include "core/cpu_features.h"
#include "engine/batch_query_engine.h"
#include "storage/filter_image.h"
#include "storage/mapped_filter.h"
#include "trace/trace_generator.h"

namespace shbf {
namespace {

FilterSpec TestSpec() {
  FilterSpec spec;
  spec.num_cells = 40000;
  spec.num_hashes = 6;
  spec.expected_keys = 1200;
  spec.seed = 0xfeedf00d;
  return spec;
}

struct Workload {
  std::vector<std::string> members;  // inserted
  std::vector<std::string> probes;   // never inserted
  std::vector<std::string> all;      // members + probes interleaved
};

Workload MakeWorkload() {
  TraceGenerator gen(0x3a99);
  auto keys = gen.DistinctFlowKeys(4000);
  Workload w;
  w.members.assign(keys.begin(), keys.begin() + 1200);
  w.probes.assign(keys.begin() + 1200, keys.end());
  w.all = keys;
  return w;
}

std::vector<std::string> MappedNames() {
  std::vector<std::string> names;
  const auto& registry = FilterRegistry::Global();
  for (const auto& name : registry.Names()) {
    if (registry.SupportsMapped(name)) names.push_back(name);
  }
  return names;
}

std::string ImagePath(const std::string& name, const char* tag) {
  return ::testing::TempDir() + "/mapped_" + tag + "_" + name + ".shbi";
}

/// Builds and populates the heap original for `name`.
std::unique_ptr<MembershipFilter> BuildOriginal(const std::string& name,
                                                const Workload& w) {
  std::unique_ptr<MembershipFilter> filter;
  Status s = FilterRegistry::Global().Create(name, TestSpec(), &filter);
  EXPECT_TRUE(s.ok()) << s.ToString();
  if (filter == nullptr) return nullptr;
  for (const auto& key : w.members) filter->Add(key);
  return filter;
}

TEST(MappedFilterTest, RegistryAdvertisesTheFourFlatLayouts) {
  const auto names = MappedNames();
  EXPECT_EQ(names.size(), 4u);
  for (const char* expected :
       {"bloom", "shbf_m", "split_block_bloom", "split_block_shbf_m"}) {
    EXPECT_TRUE(FilterRegistry::Global().SupportsMapped(expected)) << expected;
  }
  EXPECT_FALSE(FilterRegistry::Global().SupportsMapped("cuckoo"));
}

TEST(MappedFilterTest, MappedAnswersMatchHeapPerKeyAndBatched) {
  const auto& registry = FilterRegistry::Global();
  const Workload w = MakeWorkload();
  BatchQueryEngine engine;

  for (const auto& name : MappedNames()) {
    SCOPED_TRACE(name);
    auto original = BuildOriginal(name, w);
    ASSERT_NE(original, nullptr);

    const std::string path = ImagePath(name, "diff");
    ASSERT_TRUE(registry.SaveMapped(*original, path, /*generation=*/7).ok());

    for (bool verify_payload : {false, true}) {
      SCOPED_TRACE(verify_payload ? "verify_payload" : "header_only");
      std::unique_ptr<MembershipFilter> mapped;
      Status s = registry.OpenMapped(
          path, &mapped, storage::OpenOptions{.verify_payload =
                                                  verify_payload});
      ASSERT_TRUE(s.ok()) << s.ToString();

      auto* as_mapped = dynamic_cast<storage::MappedFilter*>(mapped.get());
      ASSERT_NE(as_mapped, nullptr);
      EXPECT_EQ(as_mapped->generation(), 7u);
      EXPECT_EQ(mapped->name(), name);
      EXPECT_EQ(mapped->num_elements(), original->num_elements());

      // Both dispatch modes: the mapped view must be bit-identical to the
      // heap twin under the SIMD kernels AND the scalar fallback.
      for (bool scalar : {false, true}) {
        SCOPED_TRACE(scalar ? "scalar" : "native");
        simd::ForceScalar(scalar);
        for (const auto& key : w.all) {
          ASSERT_EQ(mapped->Contains(key), original->Contains(key)) << key;
        }
        std::vector<uint8_t> want, got;
        engine.ContainsBatch(*original, w.all, &want);
        engine.ContainsBatch(*mapped, w.all, &got);
        EXPECT_EQ(got, want);
      }
      simd::ForceScalar(false);

      // No false negatives off the mapping, ever.
      for (const auto& key : w.members) EXPECT_TRUE(mapped->Contains(key));
    }
    std::remove(path.c_str());
  }
}

TEST(MappedFilterTest, EngineFastPathKindSurvivesTheMapping) {
  // The engine dispatches on batch_fast_path(): the mapped wrapper must
  // forward the inner filter's kind so mapped queries take the same
  // non-virtual probe protocol as heap queries.
  const Workload w = MakeWorkload();
  for (const auto& name : MappedNames()) {
    SCOPED_TRACE(name);
    auto original = BuildOriginal(name, w);
    ASSERT_NE(original, nullptr);
    const std::string path = ImagePath(name, "fastpath");
    ASSERT_TRUE(FilterRegistry::Global().SaveMapped(*original, path).ok());
    std::unique_ptr<MembershipFilter> mapped;
    ASSERT_TRUE(FilterRegistry::Global().OpenMapped(path, &mapped).ok());
    EXPECT_EQ(static_cast<int>(mapped->batch_fast_path().kind),
              static_cast<int>(original->batch_fast_path().kind));
    EXPECT_NE(mapped->batch_fast_path().kind, BatchFastPath::Kind::kNone);
    std::remove(path.c_str());
  }
}

TEST(MappedFilterTest, MappedFilterIsReadOnlyButReserializes) {
  const Workload w = MakeWorkload();
  auto original = BuildOriginal("shbf_m", w);
  ASSERT_NE(original, nullptr);
  const std::string path = ImagePath("shbf_m", "readonly");
  ASSERT_TRUE(FilterRegistry::Global().SaveMapped(*original, path).ok());
  std::unique_ptr<MembershipFilter> mapped;
  ASSERT_TRUE(FilterRegistry::Global().OpenMapped(path, &mapped).ok());

  EXPECT_EQ(mapped->capabilities(), 0u);
  EXPECT_FALSE(mapped->IncrementalAdd());

  // ToBytes off the mapping must produce the same envelope as the heap
  // original — SNAPSHOT of a mapped serve yields a normal heap blob.
  EXPECT_EQ(FilterRegistry::Serialize(*mapped),
            FilterRegistry::Serialize(*original));

  // And SaveMapped of a mapped filter round-trips (unwraps transparently).
  const std::string resaved = ImagePath("shbf_m", "resaved");
  ASSERT_TRUE(
      FilterRegistry::Global().SaveMapped(*mapped, resaved, 99).ok());
  std::unique_ptr<MembershipFilter> reopened;
  ASSERT_TRUE(FilterRegistry::Global()
                  .OpenMapped(resaved, &reopened,
                              storage::OpenOptions{.verify_payload = true})
                  .ok());
  for (const auto& key : w.all) {
    ASSERT_EQ(reopened->Contains(key), original->Contains(key));
  }
  std::remove(path.c_str());
  std::remove(resaved.c_str());
}

TEST(MappedFilterTest, WrappedFiltersHaveNoFlatLayout) {
  // Engine wrappers (sharded/dynamic/scaling) carry state a flat image
  // cannot express; SaveMapped must refuse them with a Status, not write
  // a bogus image.
  FilterSpec spec = TestSpec();
  spec.shards = 4;
  std::unique_ptr<MembershipFilter> sharded;
  ASSERT_TRUE(FilterRegistry::Global().Create("bloom", spec, &sharded).ok());
  const std::string path = ImagePath("bloom", "wrapped");
  Status s = FilterRegistry::Global().SaveMapped(*sharded, path);
  EXPECT_FALSE(s.ok());
}

// ---------------------------------------------------------------------
// Multi-process readers: N forked children map ONE image read-only and
// must all see answers identical to the parent's heap original, while the
// parent queries its own mapping concurrently. Exercises the kernel
// sharing one physical copy and proves the open path has no hidden
// mutable state. A child exits nonzero on the first mismatch.
// ---------------------------------------------------------------------

TEST(MappedFilterTest, ForkedReadersShareOneImageWithIdenticalAnswers) {
  const Workload w = MakeWorkload();
  auto original = BuildOriginal("split_block_shbf_m", w);
  ASSERT_NE(original, nullptr);
  const std::string path = ImagePath("split_block_shbf_m", "fork");
  ASSERT_TRUE(FilterRegistry::Global().SaveMapped(*original, path).ok());

  // Expected answers, computed before forking so every child inherits the
  // same reference via copy-on-write.
  std::vector<uint8_t> expected(w.all.size());
  for (size_t i = 0; i < w.all.size(); ++i) {
    expected[i] = original->Contains(w.all[i]) ? 1 : 0;
  }

  constexpr int kReaders = 4;
  std::vector<pid_t> children;
  for (int child = 0; child < kReaders; ++child) {
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: open its own mapping and compare every answer. _exit, not
      // exit — never run the parent's gtest teardown twice.
      std::unique_ptr<MembershipFilter> mapped;
      Status s = FilterRegistry::Global().OpenMapped(
          path, &mapped, storage::OpenOptions{.verify_payload = true});
      if (!s.ok()) _exit(10);
      BatchQueryEngine engine;
      std::vector<uint8_t> got;
      engine.ContainsBatch(*mapped, w.all, &got);
      for (size_t i = 0; i < w.all.size(); ++i) {
        if (got[i] != expected[i]) _exit(11);
        if (mapped->Contains(w.all[i]) != (expected[i] != 0)) _exit(12);
      }
      _exit(0);
    }
    children.push_back(pid);
  }

  // Parent queries its own mapping concurrently with the children.
  std::unique_ptr<MembershipFilter> mapped;
  ASSERT_TRUE(FilterRegistry::Global().OpenMapped(path, &mapped).ok());
  for (size_t i = 0; i < w.all.size(); ++i) {
    ASSERT_EQ(mapped->Contains(w.all[i]), expected[i] != 0);
  }

  for (pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }

  // Replacing the image on disk (atomic rename inside SaveMapped) must not
  // disturb the already-open mapping: the old pages stay alive until the
  // last unmap. This is the no-TOCTOU property the open contract promises.
  auto refreshed = BuildOriginal("split_block_shbf_m", w);
  for (const auto& key : w.probes) refreshed->Add(key);  // different bits
  ASSERT_TRUE(FilterRegistry::Global().SaveMapped(*refreshed, path, 2).ok());
  for (size_t i = 0; i < w.all.size(); ++i) {
    ASSERT_EQ(mapped->Contains(w.all[i]), expected[i] != 0);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace shbf
