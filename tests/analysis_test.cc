#include <gtest/gtest.h>

#include <cmath>

#include "analysis/association_theory.h"
#include "analysis/generalized_theory.h"
#include "analysis/membership_theory.h"
#include "analysis/multiplicity_theory.h"
#include "analysis/numeric.h"

namespace shbf {
namespace {

using namespace shbf::theory;  // NOLINT

// --- numeric -------------------------------------------------------------------

TEST(NumericTest, GoldenSectionFindsParabolaMinimum) {
  double argmin = MinimizeGoldenSection(
      [](double x) { return (x - 3.7) * (x - 3.7) + 2; }, -10, 10);
  EXPECT_NEAR(argmin, 3.7, 1e-6);
}

TEST(NumericTest, GoldenSectionHandlesEdgeMinimum) {
  double argmin = MinimizeGoldenSection([](double x) { return x; }, 0, 5);
  EXPECT_NEAR(argmin, 0.0, 1e-6);
}

// --- membership (Eqs 1, 7, 8, 9) -------------------------------------------------

TEST(MembershipTheoryTest, ZeroBitProbBasics) {
  EXPECT_NEAR(ZeroBitProb(1000, 0, 5), 1.0, 1e-12);  // empty filter
  EXPECT_NEAR(ZeroBitProb(1000, 1000, 1), std::exp(-1.0), 1e-12);
}

TEST(MembershipTheoryTest, BloomFprMatchesHandComputedValues) {
  // m=100000, n=10000, k=7: p=e^{-0.7}, f=(1−p)^7 ≈ 0.00819.
  EXPECT_NEAR(BloomFpr(100000, 10000, 7), 0.00819, 0.0001);
}

TEST(MembershipTheoryTest, BloomOptimalKAndMinFpr) {
  EXPECT_NEAR(BloomOptimalK(100000, 10000), 6.931, 0.001);
  // Eq (9): 0.6185^{m/n}.
  EXPECT_NEAR(BloomMinFpr(100000, 10000), std::pow(0.6185, 10.0), 2e-5);
  EXPECT_NEAR(BloomMinFprBase(), 0.6185, 0.0001);
}

TEST(MembershipTheoryTest, ShbfMFprApproachesBloomAsSpanGrows) {
  // Fig 3: beyond w̄ ≈ 20 the curves coincide; in the limit they are equal.
  double bloom = BloomFpr(100000, 10000, 8);
  EXPECT_NEAR(ShbfMFpr(100000, 10000, 8, 1000000), bloom, 1e-6);
  // At w̄ = 57 the excess is negligible (paper: "almost the same"; the
  // measured gap at these parameters is ~2.6%).
  EXPECT_NEAR(ShbfMFpr(100000, 10000, 8, 57), bloom, 0.04 * bloom);
  // At tiny w̄ the penalty is visible.
  EXPECT_GT(ShbfMFpr(100000, 10000, 8, 4), bloom);
}

TEST(MembershipTheoryTest, ShbfMFprDecreasesInSpan) {
  double prev = ShbfMFpr(100000, 10000, 8, 3);
  for (uint32_t span : {5u, 9u, 17u, 33u, 57u}) {
    double f = ShbfMFpr(100000, 10000, 8, span);
    EXPECT_LT(f, prev) << "span " << span;
    prev = f;
  }
}

TEST(MembershipTheoryTest, OptimalKMatchesPaperConstant) {
  // §3.4.2: for w̄ = 57, k_opt = 0.7009·(m/n).
  double k_opt = ShbfMOptimalK(100000, 10000, 57);
  EXPECT_NEAR(k_opt, 0.7009 * 10.0, 0.01);
}

TEST(MembershipTheoryTest, MinFprBaseMatchesEq7) {
  // Eq (7): f_min = 0.6204^{m/n} for w̄ = 57.
  EXPECT_NEAR(ShbfMMinFprBase(57), 0.6204, 0.0005);
  // And the ShBF_M minimum is (slightly) above the BF minimum: the paper's
  // "negligible sacrifice".
  double shbf_min = ShbfMMinFpr(100000, 10000, 57);
  double bloom_min = BloomMinFpr(100000, 10000);
  EXPECT_GT(shbf_min, bloom_min);
  EXPECT_LT(shbf_min, 1.1 * bloom_min);
}

TEST(MembershipTheoryTest, FprIsUnimodalInK) {
  // Sanity for the golden-section use: decreasing then increasing around
  // the optimum.
  double k_opt = ShbfMOptimalK(100000, 10000, 57);
  double at_opt = ShbfMFpr(100000, 10000, k_opt, 57);
  EXPECT_LT(at_opt, ShbfMFpr(100000, 10000, k_opt - 2, 57));
  EXPECT_LT(at_opt, ShbfMFpr(100000, 10000, k_opt + 2, 57));
}

// --- generalized (Eqs 11/12) ----------------------------------------------------

TEST(GeneralizedTheoryTest, TEquals1ReducesToEq1) {
  for (double k : {4.0, 8.0, 12.0}) {
    EXPECT_NEAR(GeneralizedShbfFpr(100000, 10000, k, 57, 1),
                ShbfMFpr(100000, 10000, k, 57), 1e-12)
        << "k=" << k;
  }
}

TEST(GeneralizedTheoryTest, LargeSpanReducesToBloom) {
  for (uint32_t t : {1u, 2u, 4u}) {
    EXPECT_NEAR(GeneralizedShbfFpr(100000, 10000, 8, 10000000, t),
                BloomFpr(100000, 10000, 8), 1e-5)
        << "t=" << t;
  }
}

TEST(GeneralizedTheoryTest, FprGrowsWithT) {
  // More shifts pack more correlated bits into one window: FPR rises in t
  // at fixed k, m, n, w̄.
  double prev = GeneralizedShbfFpr(50000, 5000, 8, 57, 1);
  for (uint32_t t : {2u, 4u, 7u}) {
    double f = GeneralizedShbfFpr(50000, 5000, 8, 57, t);
    EXPECT_GE(f, prev) << "t=" << t;
    prev = f;
  }
}

// --- association (Eq 25, Table 2) ----------------------------------------------

TEST(AssociationTheoryTest, OutcomeProbabilitiesMatchPaperExample) {
  // §4.4's worked example at k = 10.
  EXPECT_NEAR(ShbfAOutcomeProb(1, 10), 0.998, 0.001);
  EXPECT_NEAR(ShbfAOutcomeProb(4, 10), 9.756e-4, 1e-5);
  EXPECT_NEAR(ShbfAOutcomeProb(7, 10), 9.54e-7, 1e-8);
}

TEST(AssociationTheoryTest, TotalProbabilityIsOne) {
  // §4.4: P1 + 2·P4 + P7 = 1 (one combination each for the exclusive parts,
  // two for the intersection).
  for (double k : {2.0, 6.0, 10.0, 16.0}) {
    double total = ShbfAOutcomeProb(1, k) + 2 * ShbfAOutcomeProb(4, k) +
                   ShbfAOutcomeProb(7, k);
    EXPECT_NEAR(total, 1.0, 1e-12) << "k=" << k;
  }
}

TEST(AssociationTheoryTest, ClearAnswerComparisonMatchesTable2) {
  // Table 2 / Fig 10(a): at k = 8, ShBF_A ≈ 99%, iBF ≈ 66%.
  EXPECT_NEAR(ShbfAClearAnswerProb(8), 0.992, 0.001);
  EXPECT_NEAR(IbfClearAnswerProb(8), 0.664, 0.001);
  // The paper's headline: 1.47x higher probability of a clear answer.
  EXPECT_NEAR(ShbfAClearAnswerProb(8) / IbfClearAnswerProb(8), 1.49, 0.05);
}

TEST(AssociationTheoryTest, GeneralFormConvergesToOptimalForm) {
  // With m = n'·k/ln2 the general expression approaches (1 − 0.5^k)².
  size_t n_union = 100000;
  uint32_t k = 8;
  size_t m = static_cast<size_t>(n_union * k / std::log(2.0));
  EXPECT_NEAR(ShbfAClearAnswerProbGeneral(m, n_union, k),
              ShbfAClearAnswerProb(k), 0.002);
}

TEST(AssociationTheoryTest, IbfGeneralFormUsesBothFprs) {
  EXPECT_NEAR(IbfClearAnswerProbGeneral(0.0, 0.0), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(IbfClearAnswerProbGeneral(1.0, 1.0), 0.0, 1e-12);
}

// --- multiplicity (Eqs 26–28) ----------------------------------------------------

TEST(MultiplicityTheoryTest, FalseCandidateProbMatchesBloomForm) {
  EXPECT_NEAR(FalseCandidateProb(100000, 10000, 7),
              BloomFpr(100000, 10000, 7), 1e-12);
}

TEST(MultiplicityTheoryTest, NonMemberCorrectnessDecaysWithC) {
  double cr10 = CorrectnessRateNonMember(200000, 10000, 8, 10);
  double cr57 = CorrectnessRateNonMember(200000, 10000, 8, 57);
  EXPECT_GT(cr10, cr57);
  EXPECT_GT(cr57, 0.0);
  EXPECT_LT(cr57, 1.0);
}

TEST(MultiplicityTheoryTest, MemberCorrectnessBoundaries) {
  // j = 1: no positions below the truth can be spurious ⇒ CR' = 1.
  EXPECT_DOUBLE_EQ(CorrectnessRateMember(100000, 10000, 8, 1), 1.0);
  // Largest-policy mirror: j = c ⇒ CR = 1.
  EXPECT_DOUBLE_EQ(CorrectnessRateMemberLargest(100000, 10000, 8, 57, 57),
                   1.0);
  // Monotone in j (for the smallest policy: larger true count exposes more
  // spurious slots below it).
  EXPECT_GT(CorrectnessRateMember(100000, 10000, 8, 2),
            CorrectnessRateMember(100000, 10000, 8, 30));
}

TEST(MultiplicityTheoryTest, UniformAverageLiesBetweenExtremes) {
  double avg = ExpectedCorrectnessRateUniform(200000, 10000, 8, 57);
  EXPECT_LT(avg, CorrectnessRateMember(200000, 10000, 8, 1));
  EXPECT_GT(avg, CorrectnessRateMember(200000, 10000, 8, 57));
}

TEST(MultiplicityTheoryTest, MoreMemoryImprovesCorrectness) {
  double tight = ExpectedCorrectnessRateUniform(100000, 10000, 8, 57);
  double roomy = ExpectedCorrectnessRateUniform(400000, 10000, 8, 57);
  EXPECT_GT(roomy, tight);
}

}  // namespace
}  // namespace shbf
