#include "shbf/shbf_membership.h"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/membership_theory.h"
#include "baselines/bloom_filter.h"
#include "trace/workload.h"

namespace shbf {
namespace {

ShbfM::Params BaseParams() {
  return {.num_bits = 22008, .num_hashes = 8};
}

TEST(ShbfMTest, ParamsValidation) {
  auto p = BaseParams();
  EXPECT_TRUE(p.Validate().ok());
  p.num_hashes = 7;  // odd k has no pairing
  EXPECT_FALSE(p.Validate().ok());
  p = BaseParams();
  p.num_hashes = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = BaseParams();
  p.max_offset_span = 1;  // offsets would all be zero
  EXPECT_FALSE(p.Validate().ok());
  p = BaseParams();
  p.max_offset_span = 58;  // breaks the one-access window guarantee
  EXPECT_FALSE(p.Validate().ok());
  p = BaseParams();
  p.num_bits = 0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ShbfMTest, GeometryAccessors) {
  ShbfM filter(BaseParams());
  EXPECT_EQ(filter.num_bits(), 22008u);
  EXPECT_EQ(filter.num_hashes(), 8u);
  EXPECT_EQ(filter.num_pairs(), 4u);
  EXPECT_EQ(filter.max_offset_span(), 57u);
}

TEST(ShbfMTest, OffsetIsNeverZeroAndWithinSpan) {
  // §3.1: o(e) = h%(w̄−1)+1 must lie in [1, w̄−1]; o = 0 would collapse the
  // pair into a single bit.
  ShbfM filter(BaseParams());
  auto w = MakeMembershipWorkload(5000, 0, 7);
  for (const auto& key : w.members) {
    uint64_t offset = filter.OffsetOf(key);
    ASSERT_GE(offset, 1u);
    ASSERT_LE(offset, 56u);
  }
}

TEST(ShbfMTest, OffsetsAreSpreadAcrossTheSpan) {
  ShbfM filter(BaseParams());
  auto w = MakeMembershipWorkload(20000, 0, 9);
  std::vector<size_t> histogram(57, 0);
  for (const auto& key : w.members) ++histogram[filter.OffsetOf(key)];
  EXPECT_EQ(histogram[0], 0u);
  for (int o = 1; o <= 56; ++o) {
    // 20000/56 ≈ 357 expected; 5σ ≈ 94.
    EXPECT_NEAR(histogram[o], 357, 120) << "offset " << o;
  }
}

TEST(ShbfMTest, NoFalseNegatives) {
  auto w = MakeMembershipWorkload(1500, 0, 42);
  ShbfM filter(BaseParams());
  for (const auto& key : w.members) filter.Add(key);
  for (const auto& key : w.members) ASSERT_TRUE(filter.Contains(key));
}

TEST(ShbfMTest, EmptyFilterRejectsEverything) {
  ShbfM filter(BaseParams());
  auto w = MakeMembershipWorkload(0, 1000, 43);
  for (const auto& key : w.non_members) EXPECT_FALSE(filter.Contains(key));
}

TEST(ShbfMTest, SetsExactlyKBitsPerElementModuloCollisions) {
  ShbfM filter(BaseParams());
  filter.Add("one-element");
  // k/2 bases + k/2 shifted bits; collisions can only reduce the count.
  EXPECT_LE(filter.bits().CountOnes(), 8u);
  EXPECT_GE(filter.bits().CountOnes(), 4u);
}

TEST(ShbfMTest, ClearEmptiesFilter) {
  ShbfM filter(BaseParams());
  filter.Add("x");
  filter.Clear();
  EXPECT_FALSE(filter.Contains("x"));
  EXPECT_EQ(filter.num_elements(), 0u);
}

TEST(ShbfMTest, HalfTheAccessesAndHalfTheHashesOfBloom) {
  // The paper's headline cost claim (§3.2): k/2 memory accesses and
  // k/2 + 1 hash computations per query vs k and k for BF.
  const uint32_t k = 8;
  auto w = MakeMembershipWorkload(1000, 1000, 45);
  ShbfM shbf({.num_bits = 22008, .num_hashes = k});
  BloomFilter bloom({.num_bits = 22008, .num_hashes = k});
  for (const auto& key : w.members) {
    shbf.Add(key);
    bloom.Add(key);
  }
  QueryStats shbf_members;
  QueryStats bloom_members;
  for (const auto& key : w.members) {
    shbf.ContainsWithStats(key, &shbf_members);
    bloom.ContainsWithStats(key, &bloom_members);
  }
  EXPECT_DOUBLE_EQ(shbf_members.AvgMemoryAccesses(), k / 2.0);
  EXPECT_DOUBLE_EQ(bloom_members.AvgMemoryAccesses(), k);
  EXPECT_DOUBLE_EQ(shbf_members.AvgHashComputations(), k / 2.0 + 1);
  EXPECT_DOUBLE_EQ(bloom_members.AvgHashComputations(), k);
}

TEST(ShbfMTest, EarlyExitOnNonMembers) {
  auto w = MakeMembershipWorkload(1000, 2000, 47);
  ShbfM filter(BaseParams());
  for (const auto& key : w.members) filter.Add(key);
  QueryStats stats;
  for (const auto& key : w.non_members) filter.ContainsWithStats(key, &stats);
  EXPECT_LT(stats.AvgMemoryAccesses(), 2.0);  // most rejects on pair 1
}

struct FprCase {
  size_t num_bits;
  size_t num_elements;
  uint32_t num_hashes;
};

class ShbfMFprTest : public ::testing::TestWithParam<FprCase> {};

TEST_P(ShbfMFprTest, EmpiricalFprTracksEq1) {
  const auto& c = GetParam();
  auto w = MakeMembershipWorkload(c.num_elements, 300000, 7000 + c.num_hashes);
  ShbfM filter({.num_bits = c.num_bits, .num_hashes = c.num_hashes});
  for (const auto& key : w.members) filter.Add(key);
  size_t fp = 0;
  for (const auto& key : w.non_members) fp += filter.Contains(key);
  double simulated = static_cast<double>(fp) / w.non_members.size();
  double predicted =
      theory::ShbfMFpr(c.num_bits, c.num_elements, c.num_hashes, 57);
  // §6.2.1 reports < 3% relative error at these sizes; allow sampling slack.
  EXPECT_NEAR(simulated, predicted, std::max(0.12 * predicted, 8e-4))
      << "sim=" << simulated << " theory=" << predicted;
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, ShbfMFprTest,
    ::testing::Values(FprCase{22008, 1000, 8},   // Fig 7(a) left edge
                      FprCase{22008, 1400, 8},   // Fig 7(a) right region
                      FprCase{22976, 2000, 6},   // Fig 7(b)
                      FprCase{22976, 2000, 10},  // Fig 7(b)
                      FprCase{32000, 4000, 6},   // Fig 7(c)
                      FprCase{44000, 4000, 6},   // Fig 7(c)
                      FprCase{100000, 10000, 8}));

TEST(ShbfMTest, FprComparableToBloomAtSameParameters) {
  // Fig 4 / §3.5: the FPR sacrifice vs BF is negligible.
  const size_t m = 40000;
  const size_t n = 4000;
  const uint32_t k = 6;
  auto w = MakeMembershipWorkload(n, 300000, 51);
  ShbfM shbf({.num_bits = m, .num_hashes = k});
  BloomFilter bloom({.num_bits = m, .num_hashes = k});
  for (const auto& key : w.members) {
    shbf.Add(key);
    bloom.Add(key);
  }
  size_t fp_shbf = 0;
  size_t fp_bloom = 0;
  for (const auto& key : w.non_members) {
    fp_shbf += shbf.Contains(key);
    fp_bloom += bloom.Contains(key);
  }
  double fpr_shbf = static_cast<double>(fp_shbf) / w.non_members.size();
  double fpr_bloom = static_cast<double>(fp_bloom) / w.non_members.size();
  EXPECT_LT(fpr_shbf, fpr_bloom * 1.25 + 5e-4);
}

class ShbfMSpanTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ShbfMSpanTest, NoFalseNegativesForEverySpan) {
  ShbfM filter(
      {.num_bits = 20000, .num_hashes = 6, .max_offset_span = GetParam()});
  auto w = MakeMembershipWorkload(1000, 0, GetParam());
  for (const auto& key : w.members) filter.Add(key);
  for (const auto& key : w.members) ASSERT_TRUE(filter.Contains(key));
}

INSTANTIATE_TEST_SUITE_P(Spans, ShbfMSpanTest,
                         ::testing::Values(2, 3, 8, 16, 21, 25, 33, 48, 57));

TEST(ShbfMTest, DifferentSeedsProduceDifferentFilters) {
  ShbfM a({.num_bits = 10000, .num_hashes = 8, .seed = 1});
  ShbfM b({.num_bits = 10000, .num_hashes = 8, .seed = 2});
  // Load the filters enough (~0.8% FPR) that each sees dozens of FPs.
  auto w = MakeMembershipWorkload(1000, 20000, 55);
  for (const auto& key : w.members) {
    a.Add(key);
    b.Add(key);
  }
  size_t disagreements = 0;
  for (const auto& key : w.non_members) {
    disagreements += (a.Contains(key) != b.Contains(key));
  }
  // FPs land on different keys under different hash families.
  EXPECT_GT(disagreements, 0u);
}

TEST(ShbfMTest, BatchQueryMatchesScalarQuery) {
  auto w = MakeMembershipWorkload(2000, 2000, 61);
  ShbfM filter(BaseParams());
  for (const auto& key : w.members) filter.Add(key);
  std::vector<std::string> queries = w.members;
  queries.insert(queries.end(), w.non_members.begin(), w.non_members.end());
  std::vector<uint8_t> batch(queries.size());
  filter.ContainsBatch(queries, &batch);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(batch[i] != 0, filter.Contains(queries[i])) << "index " << i;
  }
}

TEST(ShbfMTest, BatchQueryHandlesOddSizes) {
  ShbfM filter(BaseParams());
  filter.Add("present");
  for (size_t size : {size_t{0}, size_t{1}, size_t{15}, size_t{16},
                      size_t{17}, size_t{33}}) {
    std::vector<std::string> queries(size, "present");
    std::vector<uint8_t> batch(size);
    filter.ContainsBatch(queries, &batch);
    for (size_t i = 0; i < size; ++i) EXPECT_EQ(batch[i], 1) << size;
  }
}

TEST(ShbfMTest, BatchResizesShortResultsBuffer) {
  // A short (or empty) results vector is resized to keys.size() internally.
  ShbfM filter(BaseParams());
  filter.Add("x");
  std::vector<std::string> queries(10, "x");
  std::vector<uint8_t> too_small(5);
  filter.ContainsBatch(queries, &too_small);
  ASSERT_EQ(too_small.size(), queries.size());
  for (uint8_t hit : too_small) EXPECT_EQ(hit, 1);
}

TEST(ShbfMTest, BatchShrinksOversizedResultsBuffer) {
  ShbfM filter(BaseParams());
  std::vector<std::string> queries(4, "absent");
  std::vector<uint8_t> oversized(64, 0xaa);
  filter.ContainsBatch(queries, &oversized);
  ASSERT_EQ(oversized.size(), queries.size());
  for (uint8_t hit : oversized) EXPECT_EQ(hit, 0);
}

TEST(ShbfMTest, BatchHandlesEmptyKeyList) {
  ShbfM filter(BaseParams());
  std::vector<std::string> no_queries;
  std::vector<uint8_t> results(7, 1);
  filter.ContainsBatch(no_queries, &results);
  EXPECT_TRUE(results.empty());
}

TEST(ShbfMTest, WorksWithEveryHashAlgorithm) {
  for (HashAlgorithm alg :
       {HashAlgorithm::kMurmur3, HashAlgorithm::kBobLookup3,
        HashAlgorithm::kBobLookup2, HashAlgorithm::kFnv1a}) {
    ShbfM filter(
        {.num_bits = 20000, .num_hashes = 8, .hash_algorithm = alg});
    auto w = MakeMembershipWorkload(800, 0, 57);
    for (const auto& key : w.members) filter.Add(key);
    for (const auto& key : w.members) {
      ASSERT_TRUE(filter.Contains(key)) << HashAlgorithmName(alg);
    }
  }
}

}  // namespace
}  // namespace shbf
