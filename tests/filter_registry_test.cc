// Registry + FilterSpec + unified-interface behaviour: every registered
// filter must be constructible by name from one spec, usable through the
// MembershipFilter interface, and clearable back to empty.

#include "api/filter_registry.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "trace/trace_generator.h"

namespace shbf {
namespace {

FilterSpec TestSpec() {
  FilterSpec spec;
  spec.num_cells = 40000;
  spec.num_hashes = 8;
  spec.expected_keys = 2000;
  return spec;
}

std::vector<std::string> TestKeys(size_t count, uint64_t seed = 0x9e3e) {
  TraceGenerator gen(seed);
  return gen.DistinctFlowKeys(count);
}

TEST(FilterRegistryTest, HasAtLeastTwelveFilters) {
  const auto names = FilterRegistry::Global().Names();
  EXPECT_GE(names.size(), 12u);
  for (const char* expected :
       {"bloom", "km_bloom", "one_mem_bf", "cuckoo", "counting_bloom",
        "shbf_m", "shbf_g", "counting_shbf_m", "spectral", "cm", "scm",
        "dynamic_count", "shbf_x", "counting_shbf_x", "shbf_a",
        "counting_shbf_a", "ibf"}) {
    EXPECT_TRUE(FilterRegistry::Global().Has(expected))
        << "missing registry entry: " << expected;
  }
}

TEST(FilterRegistryTest, NamesAreSortedAndPartitionedByFamily) {
  const auto& registry = FilterRegistry::Global();
  auto names = registry.Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  size_t total = registry.Names(FilterFamily::kMembership).size() +
                 registry.Names(FilterFamily::kMultiplicity).size() +
                 registry.Names(FilterFamily::kAssociation).size();
  EXPECT_EQ(total, names.size());
}

TEST(FilterRegistryTest, EveryEntryHasDescriptionAndDeserializer) {
  const auto& registry = FilterRegistry::Global();
  for (const auto& name : registry.Names()) {
    const auto* entry = registry.Find(name);
    ASSERT_NE(entry, nullptr) << name;
    EXPECT_FALSE(entry->description.empty()) << name;
    EXPECT_NE(entry->deserializer, nullptr) << name;
  }
}

TEST(FilterRegistryTest, EntryCapabilitiesMatchInstanceCapabilities) {
  // The static bits `shbf_cli list` prints must be exactly what a built
  // instance reports — scripts rely on the listing to pick remove-capable
  // filters without instantiating them.
  const auto& registry = FilterRegistry::Global();
  size_t remove_capable = 0;
  for (const auto& name : registry.Names()) {
    SCOPED_TRACE(name);
    const auto* entry = registry.Find(name);
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(registry.Create(name, TestSpec(), &filter).ok());
    EXPECT_EQ(filter->capabilities(), entry->capabilities);
    // kIncrementalAdd must agree with the older IncrementalAdd() hook.
    EXPECT_EQ((entry->capabilities & kIncrementalAdd) != 0,
              filter->IncrementalAdd());
    remove_capable += (entry->capabilities & kRemove) != 0;
  }
  // The paper's §3.2 deletion story: at least the counting ShBF trio,
  // counting_bloom, spectral, cuckoo, dynamic_count and the two buffered
  // bulk filters can remove.
  EXPECT_GE(remove_capable, 7u);
}

TEST(FilterRegistryTest, CapabilitiesToStringIsStable) {
  EXPECT_EQ(CapabilitiesToString(kIncrementalAdd), "add");
  EXPECT_EQ(CapabilitiesToString(kIncrementalAdd | kRemove), "add,remove");
  EXPECT_EQ(CapabilitiesToString(kRemove), "bulk,remove");
  EXPECT_EQ(CapabilitiesToString(kIncrementalAdd | kRemove | kMergeable),
            "add,remove,merge");
}

TEST(FilterRegistryTest, UnknownNameIsNotFound) {
  std::unique_ptr<MembershipFilter> filter;
  Status s =
      FilterRegistry::Global().Create("no_such_filter", TestSpec(), &filter);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(filter, nullptr);
}

TEST(FilterRegistryTest, InvalidSpecIsRejected) {
  std::unique_ptr<MembershipFilter> filter;
  FilterSpec empty;
  empty.num_cells = 0;
  EXPECT_FALSE(FilterRegistry::Global().Create("bloom", empty, &filter).ok());
}

TEST(FilterRegistryTest, EveryFilterConstructsAddsAndAnswers) {
  const auto& registry = FilterRegistry::Global();
  const auto keys = TestKeys(500);
  for (const auto& name : registry.Names()) {
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(registry.Create(name, TestSpec(), &filter).ok()) << name;
    ASSERT_NE(filter, nullptr) << name;
    EXPECT_EQ(filter->name(), name);
    for (const auto& key : keys) filter->Add(key);
    EXPECT_EQ(filter->num_elements(), keys.size()) << name;
    EXPECT_GT(filter->memory_bytes(), 0u) << name;
    for (const auto& key : keys) {
      ASSERT_TRUE(filter->Contains(key)) << name << ": false negative";
    }
  }
}

TEST(FilterRegistryTest, ClearRestoresEmptiness) {
  const auto& registry = FilterRegistry::Global();
  const auto keys = TestKeys(200);
  for (const auto& name : registry.Names()) {
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(registry.Create(name, TestSpec(), &filter).ok()) << name;
    for (const auto& key : keys) filter->Add(key);
    filter->Clear();
    EXPECT_EQ(filter->num_elements(), 0u) << name;
    size_t still_present = 0;
    for (const auto& key : keys) still_present += filter->Contains(key);
    EXPECT_EQ(still_present, 0u) << name << ": clear left residue";
  }
}

TEST(FilterRegistryTest, ContainsWithStatsAgreesWithContains) {
  const auto& registry = FilterRegistry::Global();
  const auto keys = TestKeys(300);
  for (const auto& name : registry.Names()) {
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(registry.Create(name, TestSpec(), &filter).ok()) << name;
    for (size_t i = 0; i < keys.size() / 2; ++i) filter->Add(keys[i]);
    QueryStats stats;
    for (const auto& key : keys) {
      EXPECT_EQ(filter->ContainsWithStats(key, &stats), filter->Contains(key))
          << name;
    }
    EXPECT_EQ(stats.queries, keys.size()) << name;
  }
}

TEST(FilterRegistryTest, ContainsBatchAgreesWithScalarQueries) {
  const auto& registry = FilterRegistry::Global();
  const auto keys = TestKeys(300);
  for (const auto& name : registry.Names()) {
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(registry.Create(name, TestSpec(), &filter).ok()) << name;
    for (size_t i = 0; i < keys.size() / 2; ++i) filter->Add(keys[i]);
    std::vector<uint8_t> results;
    filter->ContainsBatch(keys, &results);
    ASSERT_EQ(results.size(), keys.size()) << name;
    for (size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(results[i] != 0, filter->Contains(keys[i])) << name;
    }
  }
}

TEST(FilterRegistryTest, MultiplicityInterfaceCountsOccurrences) {
  const auto& registry = FilterRegistry::Global();
  const auto keys = TestKeys(200);
  for (const auto& name : registry.Names(FilterFamily::kMultiplicity)) {
    std::unique_ptr<MultiplicityFilter> filter;
    ASSERT_TRUE(
        registry.CreateMultiplicity(name, TestSpec(), &filter).ok())
        << name;
    for (const auto& key : keys) {
      filter->Add(key);
      filter->Add(key);
    }
    for (const auto& key : keys) {
      // Estimates never underestimate (§5.2; min-selection for sketches).
      EXPECT_GE(filter->QueryCount(key), 2u) << name;
    }
  }
}

TEST(FilterRegistryTest, AssociationInterfaceSeparatesSets) {
  const auto& registry = FilterRegistry::Global();
  const auto keys = TestKeys(300);
  for (const auto& name : registry.Names(FilterFamily::kAssociation)) {
    std::unique_ptr<AssociationFilter> filter;
    ASSERT_TRUE(registry.CreateAssociation(name, TestSpec(), &filter).ok())
        << name;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (i % 2 == 0) {
        filter->AddToS1(keys[i]);
      } else {
        filter->AddToS2(keys[i]);
      }
    }
    for (size_t i = 0; i < keys.size(); ++i) {
      AssociationOutcome outcome = filter->Query(keys[i]);
      ASSERT_NE(outcome, AssociationOutcome::kNotFound)
          << name << ": false negative in the union";
      AssociationTruth truth = i % 2 == 0 ? AssociationTruth::kS1Only
                                          : AssociationTruth::kS2Only;
      EXPECT_TRUE(OutcomeConsistentWithTruth(outcome, truth))
          << name << ": " << AssociationOutcomeName(outcome);
    }
  }
}

TEST(FilterRegistryTest, FamilyMismatchIsRejected) {
  const auto& registry = FilterRegistry::Global();
  std::unique_ptr<MultiplicityFilter> mult;
  EXPECT_FALSE(registry.CreateMultiplicity("bloom", TestSpec(), &mult).ok());
  std::unique_ptr<AssociationFilter> assoc;
  EXPECT_FALSE(registry.CreateAssociation("shbf_m", TestSpec(), &assoc).ok());
}

TEST(FilterSpecTest, ValidationCatchesBadFields) {
  FilterSpec spec = TestSpec();
  EXPECT_TRUE(spec.Validate().ok());
  spec.num_cells = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec = TestSpec();
  spec.num_hashes = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec = TestSpec();
  spec.counter_bits = 0;
  EXPECT_FALSE(spec.Validate().ok());
  spec = TestSpec();
  spec.max_count = 0;
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(FilterSpecTest, ForKeysSizesTheSpec) {
  FilterSpec spec = FilterSpec::ForKeys(1000, 12.0, 8);
  EXPECT_EQ(spec.num_cells, 12000u);
  EXPECT_EQ(spec.num_hashes, 8u);
  EXPECT_EQ(spec.expected_keys, 1000u);
  EXPECT_TRUE(spec.Validate().ok());
}

TEST(FilterRegistryTest, PrivateRegistryRejectsDuplicates) {
  FilterRegistry registry;
  RegisterBuiltinFilters(&registry);
  Status dup = registry.Register(
      {.name = "bloom",
       .family = FilterFamily::kMembership,
       .description = "dup",
       .factory = [](const FilterSpec&, std::unique_ptr<MembershipFilter>*) {
         return Status::Ok();
       }});
  EXPECT_FALSE(dup.ok());
}

}  // namespace
}  // namespace shbf
