// Registry-driven remove-churn testing (the §3.2 update story, stated as
// invariants): every remove-capable filter, driven through the uniform
// Remove interface with randomized add/remove sequences, must keep
//   * no false negatives for surviving keys,
//   * correct answers for removed-then-readded keys,
//   * a non-OK Status for removing a key it can prove absent.
// Runs each entry both bare and behind the dynamic wrapper (delta_capacity
// set), which defers removes to the epoch fold — the invariants above are
// exactly the ones deferral must preserve.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "api/filter_registry.h"
#include "core/rng.h"
#include "trace/trace_generator.h"

namespace shbf {
namespace {

constexpr size_t kUniverse = 3000;
constexpr size_t kOps = 20000;

FilterSpec ChurnSpec(uint64_t seed, bool dynamic) {
  FilterSpec spec;
  spec.num_cells = 14 * kUniverse;
  spec.num_hashes = 8;
  spec.expected_keys = kUniverse;
  spec.max_count = 8;
  spec.seed = seed;
  if (dynamic) spec.delta_capacity = 128;
  return spec;
}

std::vector<std::string> RemoveCapableNames() {
  std::vector<std::string> names;
  const auto& registry = FilterRegistry::Global();
  for (const auto& name : registry.Names()) {
    if (registry.Find(name)->capabilities & kRemove) names.push_back(name);
  }
  return names;
}

/// One churn run: set-semantic ops (add only when absent, remove only when
/// live) so the invariants hold uniformly across set- and multiset-
/// semantic schemes.
void RunChurn(const std::string& name, uint64_t seed, bool dynamic) {
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(FilterRegistry::Global()
                  .Create(name, ChurnSpec(seed, dynamic), &filter)
                  .ok());
  ASSERT_TRUE(filter->capabilities() & kRemove)
      << "instance capabilities disagree with the registry entry";

  TraceGenerator gen(seed);
  const auto universe = gen.DistinctFlowKeys(kUniverse);
  std::unordered_set<size_t> live;
  std::unordered_set<size_t> readded;  // removed at least once, now live
  std::unordered_set<size_t> ever_removed;
  Rng rng(seed ^ 0xc0de);

  for (size_t op = 0; op < kOps; ++op) {
    const size_t index = rng.NextBelow(universe.size());
    const std::string& key = universe[index];
    const bool is_live = live.count(index) > 0;
    switch (rng.NextBelow(4)) {
      case 0:  // add (only when absent → uniform set/multiset semantics)
        if (!is_live) {
          filter->Add(key);
          live.insert(index);
          if (ever_removed.count(index) > 0) readded.insert(index);
        }
        break;
      case 1:  // remove (only live keys → never an underflow)
        if (is_live) {
          Status s = filter->Remove(key);
          ASSERT_TRUE(s.ok())
              << "remove of a live key failed at op " << op << ": "
              << s.ToString();
          live.erase(index);
          readded.erase(index);
          ever_removed.insert(index);
        }
        break;
      default:  // query
        if (is_live) {
          ASSERT_TRUE(filter->Contains(key))
              << "false negative for a live key at op " << op;
        }
        break;
    }
  }

  // End-state sweep: every survivor answers, and in particular every
  // removed-then-readded key answers (the resurrection case counting
  // structures get wrong when deletes under-clear).
  size_t checked_readded = 0;
  for (size_t index : live) {
    ASSERT_TRUE(filter->Contains(universe[index]))
        << "surviving key lost: " << universe[index];
  }
  for (size_t index : readded) {
    ASSERT_TRUE(filter->Contains(universe[index]))
        << "removed-then-readded key lost: " << universe[index];
    ++checked_readded;
  }
  EXPECT_GT(checked_readded, 0u) << "churn never exercised re-adds";

  // Removing a key the filter can prove absent is an error, not a silent
  // corruption. (A false positive may legitimately slip past the guard, so
  // only keys the filter itself denies are asserted on.)
  size_t provable_absences = 0;
  for (size_t index = 0; index < universe.size() && provable_absences < 50;
       ++index) {
    if (live.count(index) > 0) continue;
    if (filter->Contains(universe[index])) continue;  // false positive
    Status s = filter->Remove(universe[index]);
    EXPECT_FALSE(s.ok()) << "Remove of a provably-absent key returned OK";
    ++provable_absences;
  }
  EXPECT_GT(provable_absences, 0u);
}

class MutationChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationChurnTest, RemoveCapableFiltersSurviveChurn) {
  for (const auto& name : RemoveCapableNames()) {
    SCOPED_TRACE(name);
    RunChurn(name, GetParam(), /*dynamic=*/false);
  }
}

TEST_P(MutationChurnTest, DynamicWrapperPreservesChurnInvariants) {
  for (const auto& name : RemoveCapableNames()) {
    SCOPED_TRACE("dynamic/" + name);
    RunChurn(name, GetParam() ^ 0xd11a, /*dynamic=*/true);
  }
}

TEST(MutationChurnTest, CuckooReAddsBalanceWithRemoves) {
  // Multiset semantics on the cuckoo adapter: N adds of one key need N
  // removes, the overfull side table absorbs copies past the two buckets
  // with one counter per distinct key (bounded memory under idempotent
  // re-add patterns), and the state round-trips through serde.
  const auto& registry = FilterRegistry::Global();
  FilterSpec spec;
  spec.num_cells = 96;  // 2 buckets × 4 slots of 12-bit fingerprints
  spec.num_hashes = 8;
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(registry.Create("cuckoo", spec, &filter).ok());

  constexpr size_t kCopies = 100;
  for (size_t i = 0; i < kCopies; ++i) filter->Add("hot-key");
  EXPECT_EQ(filter->num_elements(), kCopies);
  EXPECT_TRUE(filter->Contains("hot-key"));

  std::unique_ptr<MembershipFilter> restored;
  ASSERT_TRUE(
      registry.Deserialize(FilterRegistry::Serialize(*filter), &restored)
          .ok());
  EXPECT_EQ(restored->num_elements(), kCopies);

  for (size_t i = 0; i < kCopies; ++i) {
    ASSERT_TRUE(restored->Remove("hot-key").ok()) << "copy " << i;
  }
  EXPECT_FALSE(restored->Contains("hot-key"));
  EXPECT_FALSE(restored->Remove("hot-key").ok());
  EXPECT_EQ(restored->num_elements(), 0u);
}

TEST(MutationChurnTest, NonRemovableFiltersRefuseRemove) {
  const auto& registry = FilterRegistry::Global();
  for (const auto& name : registry.Names()) {
    const auto* entry = registry.Find(name);
    if (entry->capabilities & kRemove) continue;
    SCOPED_TRACE(name);
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(registry.Create(name, ChurnSpec(1, false), &filter).ok());
    filter->Add("present");
    Status s = filter->Remove("present");
    EXPECT_EQ(s.code(), Status::Code::kFailedPrecondition)
        << "a non-remove-capable filter must refuse, got: " << s.ToString();
    EXPECT_TRUE(filter->Contains("present"));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationChurnTest,
                         ::testing::Values(42ull, 0xfeedbeefull));

}  // namespace
}  // namespace shbf
