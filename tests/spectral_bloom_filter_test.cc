#include "baselines/spectral_bloom_filter.h"

#include <gtest/gtest.h>

#include "trace/workload.h"

namespace shbf {
namespace {

SpectralBloomFilter::Params BaseParams(
    SpectralBloomFilter::InsertPolicy policy =
        SpectralBloomFilter::InsertPolicy::kIncrementAll) {
  return {.num_counters = 20000,
          .num_hashes = 5,
          .counter_bits = 8,
          .policy = policy};
}

TEST(SpectralBloomFilterTest, ParamsValidation) {
  auto p = BaseParams();
  EXPECT_TRUE(p.Validate().ok());
  p.num_counters = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = BaseParams();
  p.counter_bits = 33;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(SpectralBloomFilterTest, AbsentKeyReportsZero) {
  SpectralBloomFilter sbf(BaseParams());
  EXPECT_EQ(sbf.QueryCount("ghost"), 0u);
}

TEST(SpectralBloomFilterTest, CountsSingleKeyExactlyWhenAlone) {
  SpectralBloomFilter sbf(BaseParams());
  for (int i = 0; i < 7; ++i) sbf.Insert("flow");
  EXPECT_EQ(sbf.QueryCount("flow"), 7u);
}

class SpectralPolicyTest
    : public ::testing::TestWithParam<SpectralBloomFilter::InsertPolicy> {};

TEST_P(SpectralPolicyTest, NeverUnderestimates) {
  auto w = MakeMultiplicityWorkload(3000, 20, 500, 47);
  SpectralBloomFilter sbf(BaseParams(GetParam()));
  for (size_t i = 0; i < w.keys.size(); ++i) {
    for (uint32_t r = 0; r < w.counts[i]; ++r) sbf.Insert(w.keys[i]);
  }
  for (size_t i = 0; i < w.keys.size(); ++i) {
    ASSERT_GE(sbf.QueryCount(w.keys[i]), w.counts[i])
        << "minimal selection must not underestimate";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SpectralPolicyTest,
    ::testing::Values(SpectralBloomFilter::InsertPolicy::kIncrementAll,
                      SpectralBloomFilter::InsertPolicy::kMinimumIncrease));

TEST(SpectralBloomFilterTest, MinimumIncreaseIsAtLeastAsAccurate) {
  // §2.3: the second spectral version reduces FPR at the cost of updates.
  auto w = MakeMultiplicityWorkload(6000, 15, 0, 53);
  SpectralBloomFilter plain(BaseParams());
  SpectralBloomFilter mi(
      BaseParams(SpectralBloomFilter::InsertPolicy::kMinimumIncrease));
  for (size_t i = 0; i < w.keys.size(); ++i) {
    for (uint32_t r = 0; r < w.counts[i]; ++r) {
      plain.Insert(w.keys[i]);
      mi.Insert(w.keys[i]);
    }
  }
  uint64_t error_plain = 0;
  uint64_t error_mi = 0;
  for (size_t i = 0; i < w.keys.size(); ++i) {
    error_plain += plain.QueryCount(w.keys[i]) - w.counts[i];
    error_mi += mi.QueryCount(w.keys[i]) - w.counts[i];
  }
  EXPECT_LE(error_mi, error_plain);
}

TEST(SpectralBloomFilterTest, DeleteUndoesInsertUnderIncrementAll) {
  SpectralBloomFilter sbf(BaseParams());
  for (int i = 0; i < 3; ++i) sbf.Insert("x");
  sbf.Delete("x");
  EXPECT_EQ(sbf.QueryCount("x"), 2u);
  sbf.Delete("x");
  sbf.Delete("x");
  EXPECT_EQ(sbf.QueryCount("x"), 0u);
}

TEST(SpectralBloomFilterDeathTest, DeleteForbiddenUnderMinimumIncrease) {
  SpectralBloomFilter sbf(
      BaseParams(SpectralBloomFilter::InsertPolicy::kMinimumIncrease));
  sbf.Insert("x");
  EXPECT_DEATH(sbf.Delete("x"), "kIncrementAll");
}

TEST(SpectralBloomFilterTest, StatsCountOneAccessPerCounter) {
  SpectralBloomFilter sbf(BaseParams());
  sbf.Insert("member");
  QueryStats stats;
  sbf.QueryCountWithStats("member", &stats);
  EXPECT_EQ(stats.memory_accesses, 5u);  // k probes, no early exit (min > 0)
  QueryStats miss_stats;
  sbf.QueryCountWithStats("definitely-a-miss", &miss_stats);
  EXPECT_LE(miss_stats.memory_accesses, 5u);  // early exit on a zero counter
}

TEST(SpectralBloomFilterTest, SixBitCountersSaturateAtPaperSetting) {
  SpectralBloomFilter sbf({.num_counters = 1000,
                           .num_hashes = 4,
                           .counter_bits = 6});
  for (int i = 0; i < 100; ++i) sbf.Insert("elephant");
  EXPECT_EQ(sbf.QueryCount("elephant"), 63u);  // 2^6 − 1 ceiling
}

TEST(SpectralBloomFilterTest, MemoryBitsAccountsCounterWidth) {
  SpectralBloomFilter sbf(
      {.num_counters = 1000, .num_hashes = 4, .counter_bits = 6});
  EXPECT_EQ(sbf.memory_bits(), 6000u);
}

}  // namespace
}  // namespace shbf
