// Differential tests: every membership structure is driven with the same
// randomized operation streams across many seeds and checked against an
// exact reference set. This is the strongest no-false-negative guarantee in
// the suite — whatever the op interleaving, a present element is never
// denied — plus FPR sanity at the end of each stream.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "api/filter_registry.h"
#include "baselines/counting_bloom_filter.h"
#include "baselines/cuckoo_filter.h"
#include "core/chained_hash_table.h"
#include "core/rng.h"
#include "shbf/counting_shbf_membership.h"
#include "shbf/shbf_association.h"
#include "shbf/shbf_multiplicity.h"
#include "trace/trace_generator.h"

namespace shbf {
namespace {

constexpr size_t kUniverse = 4000;
constexpr size_t kOps = 20000;

std::vector<std::string> Universe(uint64_t seed) {
  TraceGenerator gen(seed);
  return gen.DistinctFlowKeys(kUniverse);
}

class DifferentialSeedTest : public ::testing::TestWithParam<uint64_t> {};

// Insert-only differential, registry-driven: one loop covers every
// registered filter (the per-scheme copies this file used to carry now live
// behind the MembershipFilter interface). Incremental filters interleave
// adds and queries; bulk-built ones run the same stream without
// interleaving to avoid quadratic rebuild costs.
TEST_P(DifferentialSeedTest, RegistryInsertOnly) {
  const uint64_t seed = GetParam();
  auto universe = Universe(seed);
  const auto& registry = FilterRegistry::Global();
  for (const auto& name : registry.Names()) {
    SCOPED_TRACE(name);
    FilterSpec spec;
    spec.num_cells = 40000;
    spec.num_hashes = 8;
    spec.expected_keys = kUniverse;
    spec.max_count = 16;
    spec.seed = seed;
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(registry.Create(name, spec, &filter).ok());
    const bool interleave = filter->IncrementalAdd();

    std::set<std::string> reference;
    Rng rng(seed ^ 0xd1ff);
    for (size_t op = 0; op < kOps; ++op) {
      const std::string& key = universe[rng.NextBelow(kUniverse)];
      if (rng.NextBelow(3) == 0) {
        if (reference.insert(key).second) filter->Add(key);
      } else if (interleave && reference.count(key)) {
        // Present elements must always be reported present.
        ASSERT_TRUE(filter->Contains(key)) << "false negative at op " << op;
      }
    }
    // End-of-stream: full no-false-negative sweep plus FPR sanity.
    size_t false_positives = 0;
    size_t absent = 0;
    for (const auto& key : universe) {
      if (reference.count(key)) {
        ASSERT_TRUE(filter->Contains(key)) << "false negative at end";
      } else {
        ++absent;
        false_positives += filter->Contains(key);
      }
    }
    ASSERT_GT(absent, 0u);
    EXPECT_LT(static_cast<double>(false_positives) / absent, 0.10);
  }
}

// Deletion-capable structures: full insert/delete churn against a multiset
// reference; no false negatives at any point and exact emptiness at the end.
template <typename Filter, typename InsertFn, typename DeleteFn>
void RunChurnDifferential(Filter& filter, InsertFn insert, DeleteFn del,
                          uint64_t seed) {
  auto universe = Universe(seed);
  std::multiset<std::string> reference;
  Rng rng(seed ^ 0xc4u);
  for (size_t op = 0; op < kOps; ++op) {
    const std::string& key = universe[rng.NextBelow(kUniverse)];
    uint64_t dice = rng.NextBelow(4);
    if (dice == 0) {
      insert(filter, key);
      reference.insert(key);
    } else if (dice == 1 && reference.count(key) > 0) {
      del(filter, key);
      reference.erase(reference.find(key));
    } else if (reference.count(key) > 0) {
      ASSERT_TRUE(filter.Contains(key)) << "false negative at op " << op;
    }
  }
  // Drain and verify emptiness.
  for (const auto& key : reference) del(filter, key);
  size_t still_present = 0;
  for (const auto& key : universe) still_present += filter.Contains(key);
  EXPECT_EQ(still_present, 0u) << "drained filter must read empty";
}

TEST_P(DifferentialSeedTest, CountingBloomChurn) {
  CountingBloomFilter filter({.num_counters = 40000, .num_hashes = 8,
                              .counter_bits = 8, .seed = GetParam()});
  RunChurnDifferential(
      filter,
      [](CountingBloomFilter& f, const std::string& k) { f.Insert(k); },
      [](CountingBloomFilter& f, const std::string& k) { f.Delete(k); },
      GetParam());
}

TEST_P(DifferentialSeedTest, CountingShbfMChurn) {
  CountingShbfM filter({.num_bits = 40000, .num_hashes = 8,
                        .counter_bits = 8, .seed = GetParam()});
  RunChurnDifferential(
      filter, [](CountingShbfM& f, const std::string& k) { f.Insert(k); },
      [](CountingShbfM& f, const std::string& k) { f.Delete(k); },
      GetParam());
}

TEST_P(DifferentialSeedTest, CuckooChurn) {
  // Generous sizing so inserts never fail; cuckoo Delete requires the key to
  // be present, which the reference guarantees.
  CuckooFilter filter({.num_buckets = 4096, .bucket_size = 4,
                       .fingerprint_bits = 16, .seed = GetParam()});
  auto universe = Universe(GetParam());
  std::multiset<std::string> reference;
  Rng rng(GetParam() ^ 0xcc);
  for (size_t op = 0; op < kOps; ++op) {
    const std::string& key = universe[rng.NextBelow(kUniverse)];
    uint64_t dice = rng.NextBelow(4);
    if (dice == 0) {
      if (filter.Insert(key)) reference.insert(key);
    } else if (dice == 1 && reference.count(key) > 0) {
      ASSERT_TRUE(filter.Delete(key));
      reference.erase(reference.find(key));
    } else if (reference.count(key) > 0) {
      ASSERT_TRUE(filter.Contains(key)) << "false negative at op " << op;
    }
  }
}

TEST_P(DifferentialSeedTest, CountingShbfAChurn) {
  // Random InsertS1/InsertS2/DeleteS1/DeleteS2 program against two exact
  // reference sets: at every query the filter's outcome must be consistent
  // with the reference truth for elements in the union, and clear answers
  // must be exactly right (the §4.2 zero-FP guarantee, under churn).
  CountingShbfA filter({.filter = {.num_bits = 60000, .num_hashes = 8,
                                   .seed = GetParam()},
                        .counter_bits = 8});
  auto universe = Universe(GetParam());
  std::set<std::string> s1;
  std::set<std::string> s2;
  Rng rng(GetParam() ^ 0xa550c1a7e);
  for (size_t op = 0; op < kOps; ++op) {
    const std::string& key = universe[rng.NextBelow(kUniverse)];
    switch (rng.NextBelow(6)) {
      case 0:
        filter.InsertS1(key);
        s1.insert(key);
        break;
      case 1:
        filter.InsertS2(key);
        s2.insert(key);
        break;
      case 2:
        ASSERT_EQ(filter.DeleteS1(key), s1.erase(key) > 0);
        break;
      case 3:
        ASSERT_EQ(filter.DeleteS2(key), s2.erase(key) > 0);
        break;
      default: {
        bool in1 = s1.count(key) > 0;
        bool in2 = s2.count(key) > 0;
        if (!in1 && !in2) break;  // outside the union: no contract
        AssociationTruth truth =
            in1 && in2 ? AssociationTruth::kIntersection
                       : (in1 ? AssociationTruth::kS1Only
                              : AssociationTruth::kS2Only);
        AssociationOutcome outcome = filter.Query(key);
        ASSERT_NE(outcome, AssociationOutcome::kNotFound)
            << "false negative at op " << op;
        ASSERT_TRUE(OutcomeConsistentWithTruth(outcome, truth))
            << AssociationOutcomeName(outcome) << " at op " << op;
        break;
      }
    }
  }
  // Exact-membership side tables must mirror the references.
  for (const auto& key : s1) ASSERT_TRUE(filter.InS1(key));
  for (const auto& key : s2) ASSERT_TRUE(filter.InS2(key));
  EXPECT_EQ(filter.size_s1(), s1.size());
  EXPECT_EQ(filter.size_s2(), s2.size());
  EXPECT_TRUE(filter.SynchronizedWithCounters());
}

TEST_P(DifferentialSeedTest, CountingShbfXChurn) {
  // Random multiset program in the exact (table-backed) mode: the reported
  // count must never undershoot the reference, candidates must contain it,
  // and draining must restore emptiness.
  CountingShbfX filter({.filter = {.num_bits = 60000, .num_hashes = 6,
                                   .max_count = 32, .seed = GetParam()},
                        .counter_bits = 8,
                        .mode = CountingShbfX::UpdateMode::kTableBacked});
  auto universe = Universe(GetParam());
  ChainedHashTable reference;
  Rng rng(GetParam() ^ 0x5eedu);
  for (size_t op = 0; op < kOps; ++op) {
    const std::string& key = universe[rng.NextBelow(kUniverse)];
    uint64_t dice = rng.NextBelow(4);
    const uint64_t* current = reference.Find(key);
    uint64_t count = current == nullptr ? 0 : *current;
    if (dice == 0 && count < 32) {
      filter.Insert(key);
      reference.AddTo(key, 1);
    } else if (dice == 1 && count > 0) {
      ASSERT_TRUE(filter.Delete(key));
      if (count == 1) {
        reference.Erase(key);
      } else {
        reference.Upsert(key, count - 1);
      }
    } else if (count > 0) {
      ASSERT_EQ(filter.ExactCount(key), count);
      ASSERT_GE(filter.QueryCount(key), count) << "undershoot at op " << op;
    }
  }
  std::vector<std::pair<std::string, uint64_t>> to_drain;
  reference.ForEach([&](std::string_view key, uint64_t count) {
    to_drain.emplace_back(std::string(key), count);
  });
  for (const auto& [key, count] : to_drain) {
    for (uint64_t i = 0; i < count; ++i) ASSERT_TRUE(filter.Delete(key));
  }
  EXPECT_TRUE(filter.SynchronizedWithCounters());
  for (const auto& key : universe) EXPECT_EQ(filter.QueryCount(key), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialSeedTest,
                         ::testing::Values(1ull, 42ull, 0xdeadbeefull,
                                           0x123456789abcdefull, 77777ull));

}  // namespace
}  // namespace shbf
