#include "baselines/dynamic_count_filter.h"

#include <gtest/gtest.h>

#include "trace/workload.h"

namespace shbf {
namespace {

DynamicCountFilter::Params BaseParams() {
  return {.num_counters = 10000, .num_hashes = 5, .base_bits = 4};
}

TEST(DynamicCountFilterTest, ParamsValidation) {
  EXPECT_TRUE(BaseParams().Validate().ok());
  DynamicCountFilter::Params p = BaseParams();
  p.num_counters = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = BaseParams();
  p.num_hashes = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = BaseParams();
  p.base_bits = 0;
  EXPECT_FALSE(p.Validate().ok());
  p.base_bits = 17;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(DynamicCountFilterTest, StartsEmptyWithNoOverflowVector) {
  DynamicCountFilter dcf(BaseParams());
  EXPECT_EQ(dcf.QueryCount("anything"), 0u);
  EXPECT_EQ(dcf.overflow_bits(), 0u);
  EXPECT_EQ(dcf.memory_bits(), 10000u * 4u);
}

TEST(DynamicCountFilterTest, CountsSingleKeyExactly) {
  DynamicCountFilter dcf(BaseParams());
  for (int i = 0; i < 9; ++i) dcf.Insert("flow");
  EXPECT_EQ(dcf.QueryCount("flow"), 9u);
  EXPECT_TRUE(dcf.Contains("flow"));
}

TEST(DynamicCountFilterTest, OverflowVectorGrowsOnDemand) {
  // base_bits = 4 holds counts up to 15; count 16 must spill into OFV.
  DynamicCountFilter dcf(BaseParams());
  for (int i = 0; i < 15; ++i) dcf.Insert("hot");
  EXPECT_EQ(dcf.overflow_bits(), 0u);
  dcf.Insert("hot");
  EXPECT_EQ(dcf.QueryCount("hot"), 16u);
  EXPECT_GE(dcf.overflow_bits(), 1u);
  EXPECT_GE(dcf.rebuilds(), 1u);
  // Counts far past the base width keep working (OFV widens as needed).
  for (int i = 0; i < 200; ++i) dcf.Insert("hot");
  EXPECT_EQ(dcf.QueryCount("hot"), 216u);
}

TEST(DynamicCountFilterTest, DeleteBorrowsAcrossTheVectors) {
  DynamicCountFilter dcf(BaseParams());
  for (int i = 0; i < 20; ++i) dcf.Insert("x");  // 20 = OFV 1, CBFV 4
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(dcf.QueryCount("x"), static_cast<uint64_t>(20 - i));
    dcf.Delete("x");
  }
  EXPECT_EQ(dcf.QueryCount("x"), 0u);
}

TEST(DynamicCountFilterDeathTest, UnderflowIsACallerBug) {
  DynamicCountFilter dcf(BaseParams());
  EXPECT_DEATH(dcf.Delete("never"), "underflow");
}

TEST(DynamicCountFilterTest, NeverUnderestimates) {
  auto w = MakeMultiplicityWorkload(3000, 30, 500, 71);
  DynamicCountFilter dcf(BaseParams());
  for (size_t i = 0; i < w.keys.size(); ++i) {
    for (uint32_t r = 0; r < w.counts[i]; ++r) dcf.Insert(w.keys[i]);
  }
  for (size_t i = 0; i < w.keys.size(); ++i) {
    ASSERT_GE(dcf.QueryCount(w.keys[i]), w.counts[i]);
  }
}

TEST(DynamicCountFilterTest, MatchesSpectralSemanticsOnSharedWorkload) {
  // DCF is a CBF-with-dynamic-width; at identical (m, k, seed) its combined
  // counters equal a plain wide-counter CBF's, so min-selection answers
  // match counter-for-counter.
  auto w = MakeMultiplicityWorkload(2000, 20, 0, 73);
  DynamicCountFilter dcf(BaseParams());
  for (size_t i = 0; i < w.keys.size(); ++i) {
    for (uint32_t r = 0; r < w.counts[i]; ++r) dcf.Insert(w.keys[i]);
  }
  // Drain everything: structure must return to empty (and eventually shed
  // its overflow vector via the shrink scan).
  for (size_t i = 0; i < w.keys.size(); ++i) {
    for (uint32_t r = 0; r < w.counts[i]; ++r) dcf.Delete(w.keys[i]);
  }
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(dcf.QueryCount(w.keys[i]), 0u);
  }
}

TEST(DynamicCountFilterTest, ShrinkEventuallyDropsTheOverflowVector) {
  DynamicCountFilter dcf(
      {.num_counters = 64, .num_hashes = 2, .base_bits = 2});
  for (int i = 0; i < 10; ++i) dcf.Insert("spike");
  ASSERT_GE(dcf.overflow_bits(), 1u);
  for (int i = 0; i < 10; ++i) dcf.Delete("spike");
  // The shrink check runs every m deletions; trigger it via churn.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 8; ++i) dcf.Insert("churn" + std::to_string(i));
    for (int i = 0; i < 8; ++i) dcf.Delete("churn" + std::to_string(i));
  }
  EXPECT_EQ(dcf.overflow_bits(), 0u);
  EXPECT_EQ(dcf.memory_bits(), 64u * 2u);
}

TEST(DynamicCountFilterTest, StatsChargeTwoAccessesWithOverflowPresent) {
  DynamicCountFilter dcf(BaseParams());
  dcf.Insert("member");
  QueryStats before;
  dcf.QueryCountWithStats("member", &before);
  EXPECT_EQ(before.memory_accesses, 5u);  // no OFV yet: 1 access per probe
  for (int i = 0; i < 30; ++i) dcf.Insert("heavy");
  QueryStats after;
  dcf.QueryCountWithStats("member", &after);
  EXPECT_EQ(after.memory_accesses, 10u);  // the "two filters" penalty
}

}  // namespace
}  // namespace shbf
