#include "core/serde.h"

#include <gtest/gtest.h>

#include "baselines/bloom_filter.h"
#include "shbf/shbf_association.h"
#include "shbf/shbf_membership.h"
#include "shbf/shbf_multiplicity.h"
#include "trace/workload.h"

namespace shbf {
namespace {

// --- primitives -----------------------------------------------------------------

TEST(ByteWriterReaderTest, RoundTripAllWidths) {
  ByteWriter writer;
  writer.PutU8(0xab);
  writer.PutU32(0xdeadbeef);
  writer.PutU64(0x0123456789abcdefull);
  writer.PutBytes("xyz", 3);
  std::string blob = writer.Take();
  EXPECT_EQ(blob.size(), 1u + 4u + 8u + 3u);

  ByteReader reader(blob);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  char buf[3];
  EXPECT_TRUE(reader.GetU8(&u8));
  EXPECT_TRUE(reader.GetU32(&u32));
  EXPECT_TRUE(reader.GetU64(&u64));
  EXPECT_TRUE(reader.GetBytes(buf, 3));
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(std::string_view(buf, 3), "xyz");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteReaderTest, TruncationFailsAndSticks) {
  ByteReader reader("ab");
  uint32_t v = 0;
  EXPECT_FALSE(reader.GetU32(&v));
  EXPECT_TRUE(reader.failed());
  uint8_t b = 0;
  EXPECT_FALSE(reader.GetU8(&b));  // failure is sticky
  EXPECT_FALSE(reader.AtEnd());
}

TEST(ByteReaderTest, TakeLeavesWriterEmpty) {
  ByteWriter writer;
  writer.PutU8(1);
  EXPECT_EQ(writer.Take().size(), 1u);
  EXPECT_EQ(writer.size(), 0u);
}

TEST(SerdeHeaderTest, RoundTripAndMismatches) {
  ByteWriter writer;
  serde::WriteHeader(&writer, serde::StructureTag::kShbfM);
  std::string blob = writer.Take();
  {
    ByteReader reader(blob);
    EXPECT_TRUE(serde::ReadHeader(&reader, serde::StructureTag::kShbfM).ok());
  }
  {
    ByteReader reader(blob);
    Status s = serde::ReadHeader(&reader, serde::StructureTag::kShbfX);
    EXPECT_FALSE(s.ok());
    EXPECT_NE(s.message().find("tag mismatch"), std::string::npos);
  }
  {
    std::string corrupt = blob;
    corrupt[0] = 'X';
    ByteReader reader(corrupt);
    EXPECT_FALSE(serde::ReadHeader(&reader, serde::StructureTag::kShbfM).ok());
  }
}

// --- filter round trips -----------------------------------------------------------

TEST(FilterSerdeTest, BloomFilterRoundTripAnswersIdentically) {
  auto w = MakeMembershipWorkload(1000, 20000, 81);
  BloomFilter original({.num_bits = 12000, .num_hashes = 6, .seed = 77});
  for (const auto& key : w.members) original.Add(key);

  std::optional<BloomFilter> restored;
  ASSERT_TRUE(BloomFilter::FromBytes(original.ToBytes(), &restored).ok());
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->num_bits(), original.num_bits());
  EXPECT_EQ(restored->num_elements(), original.num_elements());
  for (const auto& key : w.members) ASSERT_TRUE(restored->Contains(key));
  for (const auto& key : w.non_members) {
    ASSERT_EQ(restored->Contains(key), original.Contains(key));
  }
}

TEST(FilterSerdeTest, ShbfMRoundTripAnswersIdentically) {
  auto w = MakeMembershipWorkload(1000, 20000, 83);
  ShbfM original({.num_bits = 12000, .num_hashes = 8, .seed = 99});
  for (const auto& key : w.members) original.Add(key);

  std::optional<ShbfM> restored;
  ASSERT_TRUE(ShbfM::FromBytes(original.ToBytes(), &restored).ok());
  ASSERT_TRUE(restored.has_value());
  for (const auto& key : w.members) ASSERT_TRUE(restored->Contains(key));
  for (const auto& key : w.non_members) {
    ASSERT_EQ(restored->Contains(key), original.Contains(key));
  }
  // The restored filter remains usable for further inserts.
  restored->Add("new-element");
  EXPECT_TRUE(restored->Contains("new-element"));
}

TEST(FilterSerdeTest, ShbfARoundTripPreservesOutcomes) {
  auto w = MakeAssociationWorkload(2000, 2000, 500, 8000, 85);
  ShbfA original(ShbfAParams::Optimal(2000, 2000, 500, 8));
  original.Build(w.s1, w.s2);

  std::optional<ShbfA> restored;
  ASSERT_TRUE(ShbfA::FromBytes(original.ToBytes(), &restored).ok());
  ASSERT_TRUE(restored.has_value());
  for (const auto& q : w.queries) {
    ASSERT_EQ(restored->Query(q.key), original.Query(q.key));
  }
}

TEST(FilterSerdeTest, ShbfXRoundTripPreservesCounts) {
  auto w = MakeMultiplicityWorkload(2000, 40, 2000, 87);
  ShbfX original({.num_bits = 40000, .num_hashes = 8, .max_count = 40});
  for (size_t i = 0; i < w.keys.size(); ++i) {
    original.InsertWithCount(w.keys[i], w.counts[i]);
  }

  std::optional<ShbfX> restored;
  ASSERT_TRUE(ShbfX::FromBytes(original.ToBytes(), &restored).ok());
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->num_distinct(), original.num_distinct());
  for (size_t i = 0; i < w.keys.size(); ++i) {
    ASSERT_EQ(restored->QueryCount(w.keys[i]), original.QueryCount(w.keys[i]));
  }
  for (const auto& key : w.non_members) {
    ASSERT_EQ(restored->QueryCandidates(key), original.QueryCandidates(key));
  }
}

// --- corruption handling ------------------------------------------------------------

TEST(FilterSerdeTest, RejectsTruncatedBlob) {
  ShbfM original({.num_bits = 4096, .num_hashes = 4});
  original.Add("x");
  std::string blob = original.ToBytes();
  std::optional<ShbfM> restored;
  for (size_t cut : {size_t{0}, size_t{5}, size_t{20}, blob.size() - 1}) {
    EXPECT_FALSE(
        ShbfM::FromBytes(std::string_view(blob).substr(0, cut), &restored)
            .ok())
        << "cut at " << cut;
    EXPECT_FALSE(restored.has_value());
  }
}

TEST(FilterSerdeTest, RejectsTrailingGarbage) {
  ShbfM original({.num_bits = 4096, .num_hashes = 4});
  std::string blob = original.ToBytes() + "extra";
  std::optional<ShbfM> restored;
  EXPECT_FALSE(ShbfM::FromBytes(blob, &restored).ok());
}

TEST(FilterSerdeTest, RejectsCrossStructureBlobs) {
  BloomFilter bloom({.num_bits = 4096, .num_hashes = 4});
  std::optional<ShbfM> restored;
  EXPECT_FALSE(ShbfM::FromBytes(bloom.ToBytes(), &restored).ok());
}

TEST(FilterSerdeTest, RejectsInvalidParameters) {
  // Corrupt num_hashes to an odd value — ShbfM validation must refuse it.
  ShbfM original({.num_bits = 4096, .num_hashes = 4});
  std::string blob = original.ToBytes();
  // Layout: magic(4) version(1) tag(1) num_bits(8) num_hashes(4) ...
  blob[4 + 1 + 1 + 8] = 3;
  std::optional<ShbfM> restored;
  Status s = ShbfM::FromBytes(blob, &restored);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
}

TEST(FilterSerdeTest, BlobSizeIsParamsPlusPayload) {
  ShbfM filter({.num_bits = 8000, .num_hashes = 4});
  // header 6 + params (8+4+4+1+8+8) + ceil((8000+57)/8) payload.
  EXPECT_EQ(filter.ToBytes().size(), 6u + 33u + 1008u);
}

}  // namespace
}  // namespace shbf
