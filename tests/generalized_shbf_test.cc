#include "shbf/generalized_shbf.h"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/generalized_theory.h"
#include "analysis/membership_theory.h"
#include "shbf/shbf_membership.h"
#include "trace/workload.h"

namespace shbf {
namespace {

TEST(GeneralizedShbfTest, ParamsValidation) {
  GeneralizedShbfM::Params p{
      .num_bits = 10000, .num_hashes = 8, .num_shifts = 1};
  EXPECT_TRUE(p.Validate().ok());
  p = {.num_bits = 10000, .num_hashes = 9, .num_shifts = 1};  // 9 % 2 != 0
  EXPECT_FALSE(p.Validate().ok());
  p = {.num_bits = 10000, .num_hashes = 9, .num_shifts = 2};  // 9 % 3 == 0 ok
  EXPECT_TRUE(p.Validate().ok());
  p = {.num_bits = 10000, .num_hashes = 12, .num_shifts = 3};  // 56 % 3 != 0
  EXPECT_FALSE(p.Validate().ok());
  p = {.num_bits = 10000, .num_hashes = 12, .num_shifts = 0};
  EXPECT_FALSE(p.Validate().ok());
}

TEST(GeneralizedShbfTest, OffsetsLandInDisjointPartitions) {
  // Partitioned construction (§3.6): offset j lies in slice j of the window.
  GeneralizedShbfM filter(
      {.num_bits = 10000, .num_hashes = 10, .num_shifts = 4});
  auto w = MakeMembershipWorkload(2000, 0, 3);
  const uint32_t width = 56 / 4;  // 14
  for (const auto& key : w.members) {
    auto offsets = filter.OffsetsOf(key);
    ASSERT_EQ(offsets.size(), 4u);
    for (uint32_t j = 0; j < 4; ++j) {
      ASSERT_GT(offsets[j], static_cast<uint64_t>(j) * width);
      ASSERT_LE(offsets[j], static_cast<uint64_t>(j + 1) * width);
    }
  }
}

class GeneralizedShiftTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(GeneralizedShiftTest, NoFalseNegatives) {
  const uint32_t t = GetParam();
  const uint32_t k = (t + 1) * 2;  // smallest even multiple of t+1 groups
  GeneralizedShbfM filter(
      {.num_bits = 30000, .num_hashes = k, .num_shifts = t});
  auto w = MakeMembershipWorkload(1500, 0, 100 + t);
  for (const auto& key : w.members) filter.Add(key);
  for (const auto& key : w.members) ASSERT_TRUE(filter.Contains(key));
}

TEST_P(GeneralizedShiftTest, CostDropsWithT) {
  const uint32_t t = GetParam();
  const uint32_t hashes = (t + 1) * 2;
  GeneralizedShbfM filter(
      {.num_bits = 30000, .num_hashes = hashes, .num_shifts = t});
  filter.Add("member");
  QueryStats stats;
  filter.ContainsWithStats("member", &stats);
  EXPECT_EQ(stats.memory_accesses, hashes / (t + 1));       // groups
  EXPECT_EQ(stats.hash_computations, hashes / (t + 1) + t); // + offsets
}

TEST_P(GeneralizedShiftTest, EmpiricalFprTracksEq11) {
  const uint32_t t = GetParam();
  // Pick k as the multiple of (t+1) nearest 8 for a realistic load.
  uint32_t k = ((8 + t) / (t + 1)) * (t + 1);
  const size_t m = 30000;
  const size_t n = 2500;
  auto w = MakeMembershipWorkload(n, 300000, 200 + t);
  GeneralizedShbfM filter({.num_bits = m, .num_hashes = k, .num_shifts = t});
  for (const auto& key : w.members) filter.Add(key);
  size_t fp = 0;
  for (const auto& key : w.non_members) fp += filter.Contains(key);
  double simulated = static_cast<double>(fp) / w.non_members.size();
  double predicted = theory::GeneralizedShbfFpr(m, n, k, 57, t);
  // Eq (11)/(12) rests on Bloom-style independence assumptions that weaken
  // as more correlated bits share one window: tight at t <= 4, and a ~1.5x
  // underestimate by t = 7 (measured; the paper never simulates t > 1).
  // See EXPERIMENTS.md ablation A2.
  double tolerance =
      t <= 4 ? std::max(0.15 * predicted, 1e-3) : 0.8 * predicted;
  EXPECT_NEAR(simulated, predicted, tolerance)
      << "t=" << t << " k=" << k << " sim=" << simulated
      << " theory=" << predicted;
}

INSTANTIATE_TEST_SUITE_P(Shifts, GeneralizedShiftTest,
                         ::testing::Values(1, 2, 4, 7));

TEST(GeneralizedShbfTest, TEquals1IsExactlyShbfM) {
  // Same seed ⇒ identical hash family ⇒ identical bit placement: the t = 1
  // generalization degenerates to ShBF_M bit-for-bit.
  const uint64_t seed = 0xfeedbeef;
  ShbfM classic({.num_bits = 20000, .num_hashes = 8, .seed = seed});
  GeneralizedShbfM general({.num_bits = 20000,
                            .num_hashes = 8,
                            .num_shifts = 1,
                            .seed = seed});
  auto w = MakeMembershipWorkload(1200, 50000, 31);
  for (const auto& key : w.members) {
    classic.Add(key);
    general.Add(key);
  }
  for (const auto& key : w.members) {
    ASSERT_TRUE(general.Contains(key));
  }
  for (const auto& key : w.non_members) {
    ASSERT_EQ(classic.Contains(key), general.Contains(key));
  }
}

TEST(GeneralizedShbfTest, LargerTTradesFprForFewerAccesses) {
  // §3.6's design space: at fixed m, n, k, growing t cuts per-query cost;
  // the theory quantifies the FPR drift. Verify the cost monotonicity and
  // that the theory ranks the variants the same way simulation does.
  const size_t m = 30000;
  const size_t n = 2500;
  const uint32_t k = 8;
  double fpr_t1 = theory::GeneralizedShbfFpr(m, n, k, 57, 1);
  EXPECT_NEAR(fpr_t1, theory::ShbfMFpr(m, n, k, 57), 1e-12);
  // Access count: k/(t+1) strictly decreases in t.
  EXPECT_GT(k / 2, k / (7 + 1));
}

}  // namespace
}  // namespace shbf
