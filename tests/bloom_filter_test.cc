#include "baselines/bloom_filter.h"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/membership_theory.h"
#include "trace/workload.h"

namespace shbf {
namespace {

TEST(BloomFilterTest, ParamsValidation) {
  BloomFilter::Params no_bits{.num_bits = 0, .num_hashes = 4};
  EXPECT_FALSE(no_bits.Validate().ok());
  BloomFilter::Params no_hashes{.num_bits = 100, .num_hashes = 0};
  EXPECT_FALSE(no_hashes.Validate().ok());
  BloomFilter::Params good{.num_bits = 100, .num_hashes = 4};
  EXPECT_TRUE(good.Validate().ok());
}

TEST(BloomFilterTest, OptimalSizing) {
  // m = −n ln f / (ln 2)²; for n = 1000, f = 0.01 → 9586 bits.
  EXPECT_EQ(BloomFilter::OptimalNumBits(1000, 0.01), 9586u);
  // k = (m/n) ln 2; 9586/1000·0.693 ≈ 6.6 → 7.
  EXPECT_EQ(BloomFilter::OptimalNumHashes(9586, 1000), 7u);
  EXPECT_GE(BloomFilter::OptimalNumHashes(10, 1000), 1u);  // never zero
}

TEST(BloomFilterTest, NoFalseNegatives) {
  auto w = MakeMembershipWorkload(2000, 0, 42);
  BloomFilter bf({.num_bits = 20000, .num_hashes = 7});
  for (const auto& key : w.members) bf.Add(key);
  for (const auto& key : w.members) {
    ASSERT_TRUE(bf.Contains(key));
  }
}

TEST(BloomFilterTest, EmptyFilterRejectsEverything) {
  BloomFilter bf({.num_bits = 1000, .num_hashes = 4});
  auto w = MakeMembershipWorkload(0, 100, 7);
  for (const auto& key : w.non_members) EXPECT_FALSE(bf.Contains(key));
}

TEST(BloomFilterTest, ClearEmptiesFilter) {
  BloomFilter bf({.num_bits = 1000, .num_hashes = 4});
  bf.Add("element");
  ASSERT_TRUE(bf.Contains("element"));
  bf.Clear();
  EXPECT_FALSE(bf.Contains("element"));
  EXPECT_EQ(bf.num_elements(), 0u);
}

TEST(BloomFilterTest, RawBytesAndStringViewAgree) {
  BloomFilter bf({.num_bits = 1000, .num_hashes = 4});
  const char bytes[] = {1, 2, 3, 4};
  bf.Add(bytes, sizeof(bytes));
  EXPECT_TRUE(bf.Contains(std::string_view(bytes, sizeof(bytes))));
}

TEST(BloomFilterTest, StatsCountKAccessesForMembers) {
  auto w = MakeMembershipWorkload(100, 0, 3);
  BloomFilter bf({.num_bits = 10000, .num_hashes = 8});
  for (const auto& key : w.members) bf.Add(key);
  QueryStats stats;
  for (const auto& key : w.members) bf.ContainsWithStats(key, &stats);
  // Members always probe all k bits.
  EXPECT_DOUBLE_EQ(stats.AvgMemoryAccesses(), 8.0);
  EXPECT_DOUBLE_EQ(stats.AvgHashComputations(), 8.0);
  EXPECT_EQ(stats.queries, 100u);
}

TEST(BloomFilterTest, StatsShowEarlyExitForNonMembers) {
  auto w = MakeMembershipWorkload(1000, 1000, 5);
  // Half-full filter: non-members should bail after ~2 probes on average.
  BloomFilter bf(
      {.num_bits = 1000 * 10,
       .num_hashes = BloomFilter::OptimalNumHashes(1000 * 10, 1000)});
  for (const auto& key : w.members) bf.Add(key);
  QueryStats stats;
  for (const auto& key : w.non_members) bf.ContainsWithStats(key, &stats);
  EXPECT_LT(stats.AvgMemoryAccesses(), 3.0);
  EXPECT_GT(stats.AvgMemoryAccesses(), 1.0);
}

TEST(BloomFilterTest, BatchQueryMatchesScalarQuery) {
  auto w = MakeMembershipWorkload(2000, 2000, 63);
  BloomFilter bf({.num_bits = 20000, .num_hashes = 7});
  for (const auto& key : w.members) bf.Add(key);
  std::vector<std::string> queries = w.members;
  queries.insert(queries.end(), w.non_members.begin(), w.non_members.end());
  std::vector<uint8_t> batch(queries.size());
  bf.ContainsBatch(queries, &batch);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(batch[i] != 0, bf.Contains(queries[i])) << "index " << i;
  }
}

struct FprCase {
  size_t num_bits;
  size_t num_elements;
  uint32_t num_hashes;
};

class BloomFprTest : public ::testing::TestWithParam<FprCase> {};

TEST_P(BloomFprTest, EmpiricalFprTracksEq8) {
  const auto& c = GetParam();
  auto w = MakeMembershipWorkload(c.num_elements, 200000, 99 + c.num_hashes);
  BloomFilter bf({.num_bits = c.num_bits, .num_hashes = c.num_hashes});
  for (const auto& key : w.members) bf.Add(key);
  size_t false_positives = 0;
  for (const auto& key : w.non_members) false_positives += bf.Contains(key);
  double simulated = static_cast<double>(false_positives) / w.non_members.size();
  double predicted =
      theory::BloomFpr(c.num_bits, c.num_elements, c.num_hashes);
  // The paper reports ~3% relative error between Bloom theory and
  // simulation; allow wider slack for the smaller predicted rates.
  EXPECT_NEAR(simulated, predicted, std::max(0.10 * predicted, 8e-4))
      << "sim=" << simulated << " theory=" << predicted;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BloomFprTest,
    ::testing::Values(FprCase{10000, 1000, 4}, FprCase{10000, 1000, 7},
                      FprCase{22008, 1400, 8}, FprCase{32000, 4000, 6},
                      FprCase{100000, 10000, 7}, FprCase{20000, 4000, 3}));

}  // namespace
}  // namespace shbf
