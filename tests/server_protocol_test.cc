// Robustness tests for the shbf_server wire protocol: truncated frames,
// oversized length prefixes, unknown opcodes, garbage payloads and
// mid-frame disconnects must each produce a structured error or a dropped
// connection — never a crash, hang or leak (the ASan+UBSan CI job runs
// this suite too). The well-formed path is covered through ShbfClient.

#include "server/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/filter_registry.h"
#include "server/client.h"
#include "server/net.h"
#include "server/protocol.h"

namespace shbf {
namespace {

std::unique_ptr<MembershipFilter> BuildFilter(const std::string& name,
                                              size_t keys) {
  FilterSpec spec = FilterSpec::ForKeys(keys, 12.0, 8);
  spec.max_count = 8;
  std::unique_ptr<MembershipFilter> filter;
  CheckOk(FilterRegistry::Global().Create(name, spec, &filter));
  for (size_t i = 0; i < keys; ++i) filter->Add("key-" + std::to_string(i));
  return filter;
}

class ServerProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<ShbfServer>();
    CheckOk(server_->RegisterFilter("members", BuildFilter("shbf_m", 2000)));
    CheckOk(server_->RegisterFilter("counts", BuildFilter("shbf_x", 2000)));
    CheckOk(
        server_->RegisterFilter("counting", BuildFilter("counting_bloom",
                                                        2000)));
    CheckOk(server_->Start());
  }

  void TearDown() override { server_->Stop(); }

  int RawConnect() {
    Status s;
    int fd = net::ConnectTcp("127.0.0.1", server_->port(), &s);
    EXPECT_GE(fd, 0) << s.ToString();
    return fd;
  }

  /// Sends raw bytes and reads one response body; returns false if the
  /// server closed instead of answering.
  bool SendRaw(int fd, std::string_view bytes, std::string* response) {
    if (!net::SendAll(fd, bytes.data(), bytes.size())) return false;
    return net::ReadFrame(fd, wire::kMaxFrameBytes, response) ==
           net::FrameRead::kOk;
  }

  /// Expects `frame` (sent after a valid HELLO) to draw the given error
  /// status. Returns the connection fd (still open) for follow-ups.
  int ExpectError(const std::string& frame, wire::WireStatus expected) {
    int fd = RawConnect();
    std::string response;
    EXPECT_TRUE(SendRaw(fd, wire::BuildHello(), &response));
    EXPECT_TRUE(SendRaw(fd, frame, &response));
    wire::WireStatus status;
    std::string_view payload;
    std::string message;
    EXPECT_TRUE(wire::ParseResponse(response, &status, &payload, &message));
    EXPECT_EQ(status, expected) << wire::WireStatusName(status) << ": "
                                << message;
    return fd;
  }

  /// The liveness probe: a fresh client connection must still work.
  void ExpectServerAlive() {
    ShbfClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    std::vector<uint8_t> results;
    ASSERT_TRUE(client.Query("members", {"key-1", "nope"}, &results).ok());
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0], 1);
  }

  std::unique_ptr<ShbfServer> server_;
};

TEST_F(ServerProtocolTest, ClientRoundTrip) {
  ShbfClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  EXPECT_NE(client.server_version().find("shbf_server"), std::string::npos);

  std::vector<std::string> keys;
  for (int i = 0; i < 100; ++i) keys.push_back("key-" + std::to_string(i));
  std::vector<uint8_t> results;
  ASSERT_TRUE(client.Query("members", keys, &results).ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(results[i], 1) << "false negative at " << i;
  }

  std::vector<uint64_t> counts;
  ASSERT_TRUE(client.QueryCount("counts", keys, &counts).ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_GE(counts[i], 1u) << "count false negative at " << i;
  }

  uint64_t added = 0;
  ASSERT_TRUE(client.Add("members", {"fresh-1", "fresh-2"}, &added).ok());
  EXPECT_EQ(added, 2u);
  ASSERT_TRUE(client.Query("members", {"fresh-1", "fresh-2"}, &results).ok());
  EXPECT_EQ(results[0], 1);
  EXPECT_EQ(results[1], 1);

  ShbfClient::FilterInfo info;
  ASSERT_TRUE(client.Stats("members", &info).ok());
  EXPECT_EQ(info.registry_name, "shbf_m");
  EXPECT_EQ(info.elements, 2002u);

  std::vector<ShbfClient::FilterInfo> filters;
  ASSERT_TRUE(client.List(&filters).ok());
  EXPECT_EQ(filters.size(), 3u);
}

TEST_F(ServerProtocolTest, RemoveGatedOnCapabilities) {
  ShbfClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  // shbf_m is not deletable: structured failure, connection stays usable.
  Status s = client.Remove("members", {"key-1"});
  EXPECT_EQ(s.code(), Status::Code::kFailedPrecondition);
  // counting_bloom is: the key really disappears.
  std::vector<uint8_t> removed;
  ASSERT_TRUE(client.Remove("counting", {"key-1", "absent"}, &removed).ok());
  EXPECT_EQ(removed[0], 1);
  EXPECT_EQ(removed[1], 0);
  std::vector<uint8_t> results;
  ASSERT_TRUE(client.Query("counting", {"key-1"}, &results).ok());
  EXPECT_EQ(results[0], 0);
}

TEST_F(ServerProtocolTest, SnapshotAndReloadRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/server_protocol_snapshot.shbf";
  ShbfClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  uint64_t bytes = 0;
  std::string path_used;
  ASSERT_TRUE(client.Snapshot("members", path, &bytes, &path_used).ok());
  EXPECT_GT(bytes, 0u);
  EXPECT_EQ(path_used, path);
  // Mutate, then reload the snapshot: the mutation is rolled back.
  ASSERT_TRUE(client.Add("members", {"post-snapshot"}, nullptr).ok());
  uint64_t elements = 0;
  ASSERT_TRUE(client.Reload("members", "", &elements).ok());  // remembered
  EXPECT_EQ(elements, 2000u);
  // Reload from a path that does not exist: IO error, connection usable.
  Status s = client.Reload("members", path + ".missing");
  EXPECT_FALSE(s.ok());
  // A FAILED snapshot must not move the remembered path: snapshot to an
  // unwritable target, then an empty-path reload still finds the last
  // successful snapshot.
  EXPECT_FALSE(
      client.Snapshot("members", "/nonexistent-dir/broken.shbf").ok());
  ASSERT_TRUE(client.Reload("members", "", &elements).ok());
  EXPECT_EQ(elements, 2000u);
  ExpectServerAlive();
  std::remove(path.c_str());
}

TEST_F(ServerProtocolTest, HelloRequired) {
  int fd = RawConnect();
  std::string response;
  // A QUERY before HELLO is a structured error followed by a close.
  ASSERT_TRUE(SendRaw(
      fd, wire::BuildQuery("members", wire::QueryMode::kMembership, {"k"}),
      &response));
  wire::WireStatus status;
  std::string_view payload;
  std::string message;
  ASSERT_TRUE(wire::ParseResponse(response, &status, &payload, &message));
  EXPECT_EQ(status, wire::WireStatus::kBadFrame);
  EXPECT_FALSE(SendRaw(fd, wire::BuildList(), &response));  // closed
  net::CloseFd(fd);
  ExpectServerAlive();
}

TEST_F(ServerProtocolTest, HelloBadMagicOrVersion) {
  {
    int fd = RawConnect();
    ByteWriter writer;
    writer.PutU8(static_cast<uint8_t>(wire::Opcode::kHello));
    writer.PutU32(0xdeadbeef);
    writer.PutU8(wire::kProtocolVersion);
    std::string response;
    ASSERT_TRUE(SendRaw(fd, wire::Frame(writer.Take()), &response));
    EXPECT_EQ(static_cast<wire::WireStatus>(response[0]),
              wire::WireStatus::kBadFrame);
    net::CloseFd(fd);
  }
  {
    int fd = RawConnect();
    ByteWriter writer;
    writer.PutU8(static_cast<uint8_t>(wire::Opcode::kHello));
    writer.PutU32(wire::kMagic);
    writer.PutU8(99);  // a protocol from the future
    std::string response;
    ASSERT_TRUE(SendRaw(fd, wire::Frame(writer.Take()), &response));
    EXPECT_EQ(static_cast<wire::WireStatus>(response[0]),
              wire::WireStatus::kVersionMismatch);
    net::CloseFd(fd);
  }
  ExpectServerAlive();
}

TEST_F(ServerProtocolTest, TruncatedLengthPrefix) {
  int fd = RawConnect();
  const char partial[2] = {0x10, 0x00};  // 2 of the 4 prefix bytes
  ASSERT_TRUE(net::SendAll(fd, partial, sizeof(partial)));
  net::CloseFd(fd);  // hang up mid-prefix
  ExpectServerAlive();
}

TEST_F(ServerProtocolTest, MidFrameDisconnect) {
  int fd = RawConnect();
  std::string hello_response;
  ASSERT_TRUE(SendRaw(fd, wire::BuildHello(), &hello_response));
  ByteWriter writer;
  writer.PutU32(100);           // promise a 100-byte body
  writer.PutU8(0x02);           // ... deliver 3 bytes of it
  writer.PutU8(0x00);
  writer.PutU8(0x00);
  const std::string bytes = writer.Take();
  ASSERT_TRUE(net::SendAll(fd, bytes.data(), bytes.size()));
  net::CloseFd(fd);
  ExpectServerAlive();
}

TEST_F(ServerProtocolTest, OversizedLengthPrefix) {
  int fd = RawConnect();
  std::string hello_response;
  ASSERT_TRUE(SendRaw(fd, wire::BuildHello(), &hello_response));
  ByteWriter writer;
  writer.PutU32(0x7fffffff);  // a 2 GB frame: rejected before allocation
  const std::string bytes = writer.Take();
  std::string response;
  ASSERT_TRUE(SendRaw(fd, bytes, &response));
  EXPECT_EQ(static_cast<wire::WireStatus>(response[0]),
            wire::WireStatus::kTooLarge);
  EXPECT_FALSE(SendRaw(fd, wire::BuildList(), &response));  // closed
  net::CloseFd(fd);
  ExpectServerAlive();
}

TEST_F(ServerProtocolTest, ZeroLengthFrame) {
  int fd = RawConnect();
  std::string hello_response;
  ASSERT_TRUE(SendRaw(fd, wire::BuildHello(), &hello_response));
  ByteWriter writer;
  writer.PutU32(0);
  const std::string bytes = writer.Take();
  std::string response;
  ASSERT_TRUE(SendRaw(fd, bytes, &response));
  EXPECT_EQ(static_cast<wire::WireStatus>(response[0]),
            wire::WireStatus::kBadFrame);
  net::CloseFd(fd);
  ExpectServerAlive();
}

TEST_F(ServerProtocolTest, UnknownOpcode) {
  ByteWriter writer;
  writer.PutU8(0x77);
  int fd = ExpectError(wire::Frame(writer.Take()),
                       wire::WireStatus::kUnknownOpcode);
  // Opcode-level error: the connection keeps serving.
  std::string response;
  EXPECT_TRUE(SendRaw(fd, wire::BuildList(), &response));
  EXPECT_EQ(static_cast<wire::WireStatus>(response[0]),
            wire::WireStatus::kOk);
  net::CloseFd(fd);
}

TEST_F(ServerProtocolTest, UnknownFilter) {
  int fd = ExpectError(
      wire::BuildQuery("no-such", wire::QueryMode::kMembership, {"k"}),
      wire::WireStatus::kUnknownFilter);
  net::CloseFd(fd);
  ExpectServerAlive();
}

TEST_F(ServerProtocolTest, CountModeOnMembershipFilter) {
  int fd =
      ExpectError(wire::BuildQuery("members", wire::QueryMode::kCount, {"k"}),
                  wire::WireStatus::kUnsupported);
  net::CloseFd(fd);
}

TEST_F(ServerProtocolTest, GarbagePayloads) {
  // QUERY with a truncated name length.
  {
    ByteWriter writer;
    writer.PutU8(static_cast<uint8_t>(wire::Opcode::kQuery));
    writer.PutU8(0xff);  // half a u32
    int fd =
        ExpectError(wire::Frame(writer.Take()), wire::WireStatus::kBadFrame);
    net::CloseFd(fd);
  }
  // QUERY whose key list claims more keys than the body carries (the
  // count-bomb shape: must fail before any allocation amplifies it).
  {
    ByteWriter writer;
    writer.PutU8(static_cast<uint8_t>(wire::Opcode::kQuery));
    wire::WriteString(&writer, "members");
    writer.PutU8(static_cast<uint8_t>(wire::QueryMode::kMembership));
    writer.PutU64(uint64_t{1} << 40);  // "a trillion keys follow"
    int fd =
        ExpectError(wire::Frame(writer.Take()), wire::WireStatus::kBadFrame);
    net::CloseFd(fd);
  }
  // STATS with trailing garbage after a valid name.
  {
    ByteWriter writer;
    writer.PutU8(static_cast<uint8_t>(wire::Opcode::kStats));
    wire::WriteString(&writer, "members");
    writer.PutU32(0xabad1dea);
    int fd =
        ExpectError(wire::Frame(writer.Take()), wire::WireStatus::kBadFrame);
    net::CloseFd(fd);
  }
  ExpectServerAlive();
}

TEST_F(ServerProtocolTest, ConcurrentReadersAndOneWriter) {
  constexpr int kReaders = 4;
  constexpr int kRounds = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      ShbfClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        ++failures;
        return;
      }
      std::vector<std::string> keys;
      for (int i = 0; i < 64; ++i) keys.push_back("key-" + std::to_string(i));
      std::vector<uint8_t> results;
      for (int round = 0; round < kRounds; ++round) {
        if (!client.Query("members", keys, &results).ok() ||
            results[0] != 1) {
          ++failures;
          return;
        }
      }
    });
  }
  threads.emplace_back([&] {
    ShbfClient client;
    if (!client.Connect("127.0.0.1", server_->port()).ok()) {
      ++failures;
      return;
    }
    for (int round = 0; round < kRounds; ++round) {
      if (!client.Add("members", {"writer-" + std::to_string(round)}).ok()) {
        ++failures;
        return;
      }
    }
  });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  ExpectServerAlive();
}

TEST_F(ServerProtocolTest, StopWithConnectionsOpen) {
  // Stop() must unblock and join connection threads parked in recv.
  ShbfClient idle1, idle2;
  ASSERT_TRUE(idle1.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(idle2.Connect("127.0.0.1", server_->port()).ok());
  server_->Stop();
  EXPECT_FALSE(server_->running());
  // A post-stop request fails instead of hanging.
  std::vector<uint8_t> results;
  EXPECT_FALSE(idle1.Query("members", {"key-1"}, &results).ok());
}

TEST_F(ServerProtocolTest, MultisetOpcodesWithoutCatalogAreUnsupported) {
  // The base fixture serves filters but no catalog: every multiset opcode
  // answers UNSUPPORTED (an op-level error — the connection keeps serving),
  // and a malformed WHICH_SETS payload is still a BAD_FRAME.
  ShbfClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  std::vector<std::vector<uint32_t>> which;
  EXPECT_EQ(client.WhichSets({"key-1"}, &which).code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(client.IndexAdd("s", {"k"}).code(),
            Status::Code::kFailedPrecondition);
  EXPECT_EQ(client.IndexDrop("s").code(), Status::Code::kFailedPrecondition);
  ShbfClient::MultisetInfo info;
  EXPECT_EQ(client.MultisetList(&info).code(),
            Status::Code::kFailedPrecondition);
  EXPECT_TRUE(client.connected());

  ByteWriter garbage;
  garbage.PutU8(static_cast<uint8_t>(wire::Opcode::kWhichSets));
  garbage.PutU64(uint64_t{1} << 60);  // key-count bomb
  net::CloseFd(
      ExpectError(wire::Frame(garbage.Take()), wire::WireStatus::kBadFrame));
  ExpectServerAlive();
}

/// Builds the deterministic multiset catalog the wire tests serve: sparse
/// shbf_m sets (tree-indexable) with every 8th set a cuckoo (scan
/// fallback). Construction is seed-stable, so building it twice yields
/// bit-identical filters — the local copy is the brute-force reference.
SetCatalog BuildTestCatalog(size_t num_sets, size_t keys_per_set) {
  SetCatalog catalog;
  for (size_t i = 0; i < num_sets; ++i) {
    FilterSpec spec = FilterSpec::ForKeys(keys_per_set, 64.0, 4);
    spec.max_count = 8;
    std::unique_ptr<MembershipFilter> filter;
    CheckOk(FilterRegistry::Global().Create(
        i % 8 == 7 ? "cuckoo" : "shbf_m", spec, &filter));
    for (size_t k = 0; k < keys_per_set; ++k) {
      filter->Add("s" + std::to_string(i) + "-k" + std::to_string(k));
    }
    CheckOk(catalog.AddSet("s" + std::to_string(i), std::move(filter)));
  }
  return catalog;
}

TEST(MultisetServerTest, WhichSetsBitIdenticalToLocalBruteForce) {
  ShbfServer server;
  ASSERT_TRUE(server.ServeCatalog(BuildTestCatalog(24, 60)).ok());
  ASSERT_TRUE(server.Start().ok())
      << "no filters needed when a catalog is served";

  SetCatalog reference = BuildTestCatalog(24, 60);
  std::vector<std::string> keys;
  for (size_t i = 0; i < 24; i += 2) {
    keys.push_back("s" + std::to_string(i) + "-k0");
  }
  for (int i = 0; i < 300; ++i) keys.push_back("absent-" + std::to_string(i));

  ShbfClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  std::vector<std::vector<uint32_t>> which;
  ASSERT_TRUE(client.WhichSets(keys, &which).ok());
  ASSERT_EQ(which.size(), keys.size());
  for (size_t q = 0; q < keys.size(); ++q) {
    std::vector<uint32_t> want;
    for (const SetCatalog::SetEntry* entry : reference.Entries()) {
      if (entry->filter->Contains(keys[q])) want.push_back(entry->id);
    }
    EXPECT_EQ(which[q], want) << "wire answer diverges at key " << q;
  }

  ShbfClient::MultisetInfo info;
  ASSERT_TRUE(client.MultisetList(&info).ok());
  EXPECT_EQ(info.sets.size(), 24u);
  EXPECT_EQ(info.scan_leaves, 3u);  // the cuckoo sets
  EXPECT_GT(info.trees, 0u);
  EXPECT_GT(info.summary_memory_bytes, 0u);
  EXPECT_EQ(info.sets[0].name, "s0");
  EXPECT_EQ(info.sets[0].elements, 60u);
}

TEST(MultisetServerTest, IndexAddAndDropMaintainTheIndexIncrementally) {
  ShbfServer server;
  ASSERT_TRUE(server.ServeCatalog(BuildTestCatalog(16, 40)).ok());
  ASSERT_TRUE(server.Start().ok());
  ShbfClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Incremental adds are visible to the very next WHICH_SETS, through the
  // summaries (s2 is a tree leaf) and on the scan path (s7 is a cuckoo).
  uint64_t added = 0;
  ASSERT_TRUE(client.IndexAdd("s2", {"fresh-a", "fresh-b"}, &added).ok());
  EXPECT_EQ(added, 2u);
  ASSERT_TRUE(client.IndexAdd("s7", {"fresh-a"}).ok());
  std::vector<std::vector<uint32_t>> which;
  ASSERT_TRUE(client.WhichSets({"fresh-a", "fresh-b"}, &which).ok());
  EXPECT_NE(std::find(which[0].begin(), which[0].end(), 2u), which[0].end());
  EXPECT_NE(std::find(which[0].begin(), which[0].end(), 7u), which[0].end());
  EXPECT_NE(std::find(which[1].begin(), which[1].end(), 2u), which[1].end());

  EXPECT_EQ(client.IndexAdd("nope", {"k"}).code(), Status::Code::kNotFound);

  // Drops detach the set at once; its id is never reported again.
  uint64_t remaining = 0;
  ASSERT_TRUE(client.IndexDrop("s2", &remaining).ok());
  EXPECT_EQ(remaining, 15u);
  EXPECT_EQ(client.IndexDrop("s2").code(), Status::Code::kNotFound);
  ASSERT_TRUE(client.WhichSets({"fresh-a", "s2-k0"}, &which).ok());
  for (const auto& ids : which) {
    EXPECT_EQ(std::find(ids.begin(), ids.end(), 2u), ids.end());
  }
  ShbfClient::MultisetInfo info;
  ASSERT_TRUE(client.MultisetList(&info).ok());
  EXPECT_EQ(info.sets.size(), 15u);
}

TEST(MultisetServerTest, WhichSetsRespectsTheKeysPerFrameLimit) {
  ServerOptions options;
  options.max_keys_per_frame = 4;
  ShbfServer server(options);
  ASSERT_TRUE(server.ServeCatalog(BuildTestCatalog(4, 20)).ok());
  ASSERT_TRUE(server.Start().ok());
  ShbfClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  std::vector<std::vector<uint32_t>> which;
  EXPECT_EQ(client.WhichSets({"a", "b", "c", "d", "e"}, &which).code(),
            Status::Code::kOutOfRange);
}

TEST(MultisetServerTest, OversizedWhichSetsResponseIsRefusedNotCorrupted) {
  // The WHICH_SETS response scales with keys × MATCHING ids — heavily
  // overlapping sets make the answer far larger than the request. A frame
  // whose answer would blow the frame limit draws TOO_LARGE instead of an
  // oversized (or, past 4 GiB, length-wrapped) response.
  SetCatalog catalog;
  for (int i = 0; i < 16; ++i) {
    FilterSpec spec = FilterSpec::ForKeys(30, 64.0, 4);
    std::unique_ptr<MembershipFilter> filter;
    CheckOk(FilterRegistry::Global().Create("shbf_m", spec, &filter));
    for (int k = 0; k < 30; ++k) filter->Add("shared-" + std::to_string(k));
    CheckOk(catalog.AddSet("o" + std::to_string(i), std::move(filter)));
  }
  ServerOptions options;
  options.max_frame_bytes = 512;  // request ~300 B, answer ~2 KB
  ShbfServer server(options);
  ASSERT_TRUE(server.ServeCatalog(std::move(catalog)).ok());
  ASSERT_TRUE(server.Start().ok());
  ShbfClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  std::vector<std::string> keys;
  for (int k = 0; k < 20; ++k) keys.push_back("shared-" + std::to_string(k));
  std::vector<std::vector<uint32_t>> which;
  EXPECT_EQ(client.WhichSets(keys, &which).code(),
            Status::Code::kOutOfRange);
  // TOO_LARGE is fatal: the server closed the connection.
  EXPECT_EQ(client.WhichSets({"x"}, &which).code(),
            Status::Code::kFailedPrecondition);  // "not connected"
}

TEST(MultisetServerTest, OlderProtocolVersionStillServes) {
  // v2 only added opcodes: a v1 HELLO must be accepted (echoing v1) and
  // the v1 opcodes must serve; only unknown versions draw the loud
  // mismatch (covered by HelloBadMagicOrVersion).
  ShbfServer server;
  ASSERT_TRUE(server.ServeCatalog(BuildTestCatalog(4, 20)).ok());
  ASSERT_TRUE(server.Start().ok());
  Status status;
  int fd = net::ConnectTcp("127.0.0.1", server.port(), &status);
  ASSERT_GE(fd, 0) << status.ToString();
  ByteWriter hello;
  hello.PutU8(static_cast<uint8_t>(wire::Opcode::kHello));
  hello.PutU32(wire::kMagic);
  hello.PutU8(1);  // yesterday's client
  const std::string hello_frame = wire::Frame(hello.Take());
  std::string response;
  ASSERT_TRUE(net::SendAll(fd, hello_frame.data(), hello_frame.size()));
  ASSERT_EQ(net::ReadFrame(fd, wire::kMaxFrameBytes, &response),
            net::FrameRead::kOk);
  ASSERT_GE(response.size(), 2u);
  EXPECT_EQ(static_cast<wire::WireStatus>(response[0]), wire::WireStatus::kOk);
  EXPECT_EQ(static_cast<uint8_t>(response[1]), 1)
      << "server must echo the version this connection speaks";
  // A v1 opcode still works on the same connection.
  std::string list = wire::BuildList();
  ASSERT_TRUE(net::SendAll(fd, list.data(), list.size()));
  ASSERT_EQ(net::ReadFrame(fd, wire::kMaxFrameBytes, &response),
            net::FrameRead::kOk);
  EXPECT_EQ(static_cast<wire::WireStatus>(response[0]), wire::WireStatus::kOk);
  net::CloseFd(fd);
}

TEST(MultisetServerTest, ConcurrentWhichSetsReadersAndOneMaintainer) {
  ShbfServer server;
  ASSERT_TRUE(server.ServeCatalog(BuildTestCatalog(16, 40)).ok());
  ASSERT_TRUE(server.Start().ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      ShbfClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        ++failures;
        return;
      }
      std::vector<std::string> keys;
      for (int i = 0; i < 64; ++i) keys.push_back("s1-k" + std::to_string(i));
      for (int round = 0; round < 30; ++round) {
        std::vector<std::vector<uint32_t>> which;
        if (!client.WhichSets(keys, &which).ok()) {
          ++failures;
          return;
        }
        // s1's own keys must always report s1 (no false negatives, even
        // mid-maintenance).
        for (int i = 0; i < 40; ++i) {
          if (std::find(which[i].begin(), which[i].end(), 1u) ==
              which[i].end()) {
            ++failures;
            return;
          }
        }
      }
    });
  }
  std::thread maintainer([&] {
    ShbfClient client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) {
      ++failures;
      return;
    }
    for (int round = 0; round < 30; ++round) {
      if (!client.IndexAdd("s3", {"churn-" + std::to_string(round)}).ok()) {
        ++failures;
        return;
      }
    }
  });
  for (auto& reader : readers) reader.join();
  maintainer.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---- METRICS opcode parity (protocol v3) ----------------------------------
// The acceptance contract: the wire snapshot's four core "server.*_total"
// counters must be bit-identical to the in-process counters() accessor, in
// BOTH serving modes. The snapshot includes its own METRICS frame (frames
// are counted before handling), so a quiesced counters() read taken right
// after the response must agree exactly.
class ServerMetricsParityTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.legacy_threads = GetParam();
    server_ = std::make_unique<ShbfServer>(options);
    CheckOk(server_->RegisterFilter("members", BuildFilter("shbf_m", 2000)));
    CheckOk(server_->Start());
  }

  void TearDown() override { server_->Stop(); }

  std::unique_ptr<ShbfServer> server_;
};

TEST_P(ServerMetricsParityTest, SnapshotMatchesCountersBitForBit) {
  ShbfClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) keys.push_back("key-" + std::to_string(i));
  std::vector<uint8_t> results;
  ASSERT_TRUE(client.Query("members", keys, &results).ok());
  // A deliberate protocol error, so the error counter is nonzero too.
  ASSERT_FALSE(client.Query("no-such-filter", keys, &results).ok());

  ShbfClient::ServerMetrics metrics;
  ASSERT_TRUE(client.Metrics(&metrics).ok());
  const ShbfServer::Counters counters = server_->counters();

  EXPECT_EQ(metrics.snapshot.CounterValue("server.frames_total"),
            counters.frames);
  EXPECT_EQ(metrics.snapshot.CounterValue("server.connections_total"),
            counters.connections);
  EXPECT_EQ(metrics.snapshot.CounterValue("server.keys_queried_total"),
            counters.keys_queried);
  EXPECT_EQ(metrics.snapshot.CounterValue("server.protocol_errors_total"),
            counters.protocol_errors);
  EXPECT_GE(counters.keys_queried, keys.size());
  EXPECT_GE(counters.protocol_errors, 1u);

  EXPECT_EQ(metrics.version, counters.version);
  EXPECT_FALSE(metrics.version.empty());
  EXPECT_FALSE(metrics.dispatch.empty());

  if (obs::kCompiledIn && obs::Enabled()) {
    // Per-opcode instrumentation saw the QUERY frames and the METRICS
    // frame itself (global registry: >=, not ==, across tests).
    EXPECT_GE(metrics.snapshot.CounterValue("server.op.query.frames_total"),
              1u);
    EXPECT_GE(
        metrics.snapshot.CounterValue("server.op.metrics.frames_total"), 1u);
    const obs::HistogramSnapshot* queue_wait =
        metrics.snapshot.FindHistogram("server.queue_wait_us");
    ASSERT_NE(queue_wait, nullptr);
    EXPECT_GE(queue_wait->count, 1u);
  }
}

TEST_P(ServerMetricsParityTest, SecondSnapshotCountsTheFirst) {
  ShbfClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ShbfClient::ServerMetrics first;
  ASSERT_TRUE(client.Metrics(&first).ok());
  ShbfClient::ServerMetrics second;
  ASSERT_TRUE(client.Metrics(&second).ok());
  EXPECT_EQ(second.snapshot.CounterValue("server.frames_total"),
            first.snapshot.CounterValue("server.frames_total") + 1);
}

INSTANTIATE_TEST_SUITE_P(Modes, ServerMetricsParityTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "legacy" : "epoll";
                         });

}  // namespace
}  // namespace shbf
