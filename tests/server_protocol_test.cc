// Robustness tests for the shbf_server wire protocol: truncated frames,
// oversized length prefixes, unknown opcodes, garbage payloads and
// mid-frame disconnects must each produce a structured error or a dropped
// connection — never a crash, hang or leak (the ASan+UBSan CI job runs
// this suite too). The well-formed path is covered through ShbfClient.

#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/filter_registry.h"
#include "server/client.h"
#include "server/net.h"
#include "server/protocol.h"

namespace shbf {
namespace {

std::unique_ptr<MembershipFilter> BuildFilter(const std::string& name,
                                              size_t keys) {
  FilterSpec spec = FilterSpec::ForKeys(keys, 12.0, 8);
  spec.max_count = 8;
  std::unique_ptr<MembershipFilter> filter;
  CheckOk(FilterRegistry::Global().Create(name, spec, &filter));
  for (size_t i = 0; i < keys; ++i) filter->Add("key-" + std::to_string(i));
  return filter;
}

class ServerProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<ShbfServer>();
    CheckOk(server_->RegisterFilter("members", BuildFilter("shbf_m", 2000)));
    CheckOk(server_->RegisterFilter("counts", BuildFilter("shbf_x", 2000)));
    CheckOk(
        server_->RegisterFilter("counting", BuildFilter("counting_bloom",
                                                        2000)));
    CheckOk(server_->Start());
  }

  void TearDown() override { server_->Stop(); }

  int RawConnect() {
    Status s;
    int fd = net::ConnectTcp("127.0.0.1", server_->port(), &s);
    EXPECT_GE(fd, 0) << s.ToString();
    return fd;
  }

  /// Sends raw bytes and reads one response body; returns false if the
  /// server closed instead of answering.
  bool SendRaw(int fd, std::string_view bytes, std::string* response) {
    if (!net::SendAll(fd, bytes.data(), bytes.size())) return false;
    return net::ReadFrame(fd, wire::kMaxFrameBytes, response) ==
           net::FrameRead::kOk;
  }

  /// Expects `frame` (sent after a valid HELLO) to draw the given error
  /// status. Returns the connection fd (still open) for follow-ups.
  int ExpectError(const std::string& frame, wire::WireStatus expected) {
    int fd = RawConnect();
    std::string response;
    EXPECT_TRUE(SendRaw(fd, wire::BuildHello(), &response));
    EXPECT_TRUE(SendRaw(fd, frame, &response));
    wire::WireStatus status;
    std::string_view payload;
    std::string message;
    EXPECT_TRUE(wire::ParseResponse(response, &status, &payload, &message));
    EXPECT_EQ(status, expected) << wire::WireStatusName(status) << ": "
                                << message;
    return fd;
  }

  /// The liveness probe: a fresh client connection must still work.
  void ExpectServerAlive() {
    ShbfClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    std::vector<uint8_t> results;
    ASSERT_TRUE(client.Query("members", {"key-1", "nope"}, &results).ok());
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0], 1);
  }

  std::unique_ptr<ShbfServer> server_;
};

TEST_F(ServerProtocolTest, ClientRoundTrip) {
  ShbfClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  EXPECT_NE(client.server_version().find("shbf_server"), std::string::npos);

  std::vector<std::string> keys;
  for (int i = 0; i < 100; ++i) keys.push_back("key-" + std::to_string(i));
  std::vector<uint8_t> results;
  ASSERT_TRUE(client.Query("members", keys, &results).ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(results[i], 1) << "false negative at " << i;
  }

  std::vector<uint64_t> counts;
  ASSERT_TRUE(client.QueryCount("counts", keys, &counts).ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_GE(counts[i], 1u) << "count false negative at " << i;
  }

  uint64_t added = 0;
  ASSERT_TRUE(client.Add("members", {"fresh-1", "fresh-2"}, &added).ok());
  EXPECT_EQ(added, 2u);
  ASSERT_TRUE(client.Query("members", {"fresh-1", "fresh-2"}, &results).ok());
  EXPECT_EQ(results[0], 1);
  EXPECT_EQ(results[1], 1);

  ShbfClient::FilterInfo info;
  ASSERT_TRUE(client.Stats("members", &info).ok());
  EXPECT_EQ(info.registry_name, "shbf_m");
  EXPECT_EQ(info.elements, 2002u);

  std::vector<ShbfClient::FilterInfo> filters;
  ASSERT_TRUE(client.List(&filters).ok());
  EXPECT_EQ(filters.size(), 3u);
}

TEST_F(ServerProtocolTest, RemoveGatedOnCapabilities) {
  ShbfClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  // shbf_m is not deletable: structured failure, connection stays usable.
  Status s = client.Remove("members", {"key-1"});
  EXPECT_EQ(s.code(), Status::Code::kFailedPrecondition);
  // counting_bloom is: the key really disappears.
  std::vector<uint8_t> removed;
  ASSERT_TRUE(client.Remove("counting", {"key-1", "absent"}, &removed).ok());
  EXPECT_EQ(removed[0], 1);
  EXPECT_EQ(removed[1], 0);
  std::vector<uint8_t> results;
  ASSERT_TRUE(client.Query("counting", {"key-1"}, &results).ok());
  EXPECT_EQ(results[0], 0);
}

TEST_F(ServerProtocolTest, SnapshotAndReloadRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/server_protocol_snapshot.shbf";
  ShbfClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  uint64_t bytes = 0;
  std::string path_used;
  ASSERT_TRUE(client.Snapshot("members", path, &bytes, &path_used).ok());
  EXPECT_GT(bytes, 0u);
  EXPECT_EQ(path_used, path);
  // Mutate, then reload the snapshot: the mutation is rolled back.
  ASSERT_TRUE(client.Add("members", {"post-snapshot"}, nullptr).ok());
  uint64_t elements = 0;
  ASSERT_TRUE(client.Reload("members", "", &elements).ok());  // remembered
  EXPECT_EQ(elements, 2000u);
  // Reload from a path that does not exist: IO error, connection usable.
  Status s = client.Reload("members", path + ".missing");
  EXPECT_FALSE(s.ok());
  // A FAILED snapshot must not move the remembered path: snapshot to an
  // unwritable target, then an empty-path reload still finds the last
  // successful snapshot.
  EXPECT_FALSE(
      client.Snapshot("members", "/nonexistent-dir/broken.shbf").ok());
  ASSERT_TRUE(client.Reload("members", "", &elements).ok());
  EXPECT_EQ(elements, 2000u);
  ExpectServerAlive();
  std::remove(path.c_str());
}

TEST_F(ServerProtocolTest, HelloRequired) {
  int fd = RawConnect();
  std::string response;
  // A QUERY before HELLO is a structured error followed by a close.
  ASSERT_TRUE(SendRaw(
      fd, wire::BuildQuery("members", wire::QueryMode::kMembership, {"k"}),
      &response));
  wire::WireStatus status;
  std::string_view payload;
  std::string message;
  ASSERT_TRUE(wire::ParseResponse(response, &status, &payload, &message));
  EXPECT_EQ(status, wire::WireStatus::kBadFrame);
  EXPECT_FALSE(SendRaw(fd, wire::BuildList(), &response));  // closed
  net::CloseFd(fd);
  ExpectServerAlive();
}

TEST_F(ServerProtocolTest, HelloBadMagicOrVersion) {
  {
    int fd = RawConnect();
    ByteWriter writer;
    writer.PutU8(static_cast<uint8_t>(wire::Opcode::kHello));
    writer.PutU32(0xdeadbeef);
    writer.PutU8(wire::kProtocolVersion);
    std::string response;
    ASSERT_TRUE(SendRaw(fd, wire::Frame(writer.Take()), &response));
    EXPECT_EQ(static_cast<wire::WireStatus>(response[0]),
              wire::WireStatus::kBadFrame);
    net::CloseFd(fd);
  }
  {
    int fd = RawConnect();
    ByteWriter writer;
    writer.PutU8(static_cast<uint8_t>(wire::Opcode::kHello));
    writer.PutU32(wire::kMagic);
    writer.PutU8(99);  // a protocol from the future
    std::string response;
    ASSERT_TRUE(SendRaw(fd, wire::Frame(writer.Take()), &response));
    EXPECT_EQ(static_cast<wire::WireStatus>(response[0]),
              wire::WireStatus::kVersionMismatch);
    net::CloseFd(fd);
  }
  ExpectServerAlive();
}

TEST_F(ServerProtocolTest, TruncatedLengthPrefix) {
  int fd = RawConnect();
  const char partial[2] = {0x10, 0x00};  // 2 of the 4 prefix bytes
  ASSERT_TRUE(net::SendAll(fd, partial, sizeof(partial)));
  net::CloseFd(fd);  // hang up mid-prefix
  ExpectServerAlive();
}

TEST_F(ServerProtocolTest, MidFrameDisconnect) {
  int fd = RawConnect();
  std::string hello_response;
  ASSERT_TRUE(SendRaw(fd, wire::BuildHello(), &hello_response));
  ByteWriter writer;
  writer.PutU32(100);           // promise a 100-byte body
  writer.PutU8(0x02);           // ... deliver 3 bytes of it
  writer.PutU8(0x00);
  writer.PutU8(0x00);
  const std::string bytes = writer.Take();
  ASSERT_TRUE(net::SendAll(fd, bytes.data(), bytes.size()));
  net::CloseFd(fd);
  ExpectServerAlive();
}

TEST_F(ServerProtocolTest, OversizedLengthPrefix) {
  int fd = RawConnect();
  std::string hello_response;
  ASSERT_TRUE(SendRaw(fd, wire::BuildHello(), &hello_response));
  ByteWriter writer;
  writer.PutU32(0x7fffffff);  // a 2 GB frame: rejected before allocation
  const std::string bytes = writer.Take();
  std::string response;
  ASSERT_TRUE(SendRaw(fd, bytes, &response));
  EXPECT_EQ(static_cast<wire::WireStatus>(response[0]),
            wire::WireStatus::kTooLarge);
  EXPECT_FALSE(SendRaw(fd, wire::BuildList(), &response));  // closed
  net::CloseFd(fd);
  ExpectServerAlive();
}

TEST_F(ServerProtocolTest, ZeroLengthFrame) {
  int fd = RawConnect();
  std::string hello_response;
  ASSERT_TRUE(SendRaw(fd, wire::BuildHello(), &hello_response));
  ByteWriter writer;
  writer.PutU32(0);
  const std::string bytes = writer.Take();
  std::string response;
  ASSERT_TRUE(SendRaw(fd, bytes, &response));
  EXPECT_EQ(static_cast<wire::WireStatus>(response[0]),
            wire::WireStatus::kBadFrame);
  net::CloseFd(fd);
  ExpectServerAlive();
}

TEST_F(ServerProtocolTest, UnknownOpcode) {
  ByteWriter writer;
  writer.PutU8(0x77);
  int fd = ExpectError(wire::Frame(writer.Take()),
                       wire::WireStatus::kUnknownOpcode);
  // Opcode-level error: the connection keeps serving.
  std::string response;
  EXPECT_TRUE(SendRaw(fd, wire::BuildList(), &response));
  EXPECT_EQ(static_cast<wire::WireStatus>(response[0]),
            wire::WireStatus::kOk);
  net::CloseFd(fd);
}

TEST_F(ServerProtocolTest, UnknownFilter) {
  int fd = ExpectError(
      wire::BuildQuery("no-such", wire::QueryMode::kMembership, {"k"}),
      wire::WireStatus::kUnknownFilter);
  net::CloseFd(fd);
  ExpectServerAlive();
}

TEST_F(ServerProtocolTest, CountModeOnMembershipFilter) {
  int fd =
      ExpectError(wire::BuildQuery("members", wire::QueryMode::kCount, {"k"}),
                  wire::WireStatus::kUnsupported);
  net::CloseFd(fd);
}

TEST_F(ServerProtocolTest, GarbagePayloads) {
  // QUERY with a truncated name length.
  {
    ByteWriter writer;
    writer.PutU8(static_cast<uint8_t>(wire::Opcode::kQuery));
    writer.PutU8(0xff);  // half a u32
    int fd =
        ExpectError(wire::Frame(writer.Take()), wire::WireStatus::kBadFrame);
    net::CloseFd(fd);
  }
  // QUERY whose key list claims more keys than the body carries (the
  // count-bomb shape: must fail before any allocation amplifies it).
  {
    ByteWriter writer;
    writer.PutU8(static_cast<uint8_t>(wire::Opcode::kQuery));
    wire::WriteString(&writer, "members");
    writer.PutU8(static_cast<uint8_t>(wire::QueryMode::kMembership));
    writer.PutU64(uint64_t{1} << 40);  // "a trillion keys follow"
    int fd =
        ExpectError(wire::Frame(writer.Take()), wire::WireStatus::kBadFrame);
    net::CloseFd(fd);
  }
  // STATS with trailing garbage after a valid name.
  {
    ByteWriter writer;
    writer.PutU8(static_cast<uint8_t>(wire::Opcode::kStats));
    wire::WriteString(&writer, "members");
    writer.PutU32(0xabad1dea);
    int fd =
        ExpectError(wire::Frame(writer.Take()), wire::WireStatus::kBadFrame);
    net::CloseFd(fd);
  }
  ExpectServerAlive();
}

TEST_F(ServerProtocolTest, ConcurrentReadersAndOneWriter) {
  constexpr int kReaders = 4;
  constexpr int kRounds = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      ShbfClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        ++failures;
        return;
      }
      std::vector<std::string> keys;
      for (int i = 0; i < 64; ++i) keys.push_back("key-" + std::to_string(i));
      std::vector<uint8_t> results;
      for (int round = 0; round < kRounds; ++round) {
        if (!client.Query("members", keys, &results).ok() ||
            results[0] != 1) {
          ++failures;
          return;
        }
      }
    });
  }
  threads.emplace_back([&] {
    ShbfClient client;
    if (!client.Connect("127.0.0.1", server_->port()).ok()) {
      ++failures;
      return;
    }
    for (int round = 0; round < kRounds; ++round) {
      if (!client.Add("members", {"writer-" + std::to_string(round)}).ok()) {
        ++failures;
        return;
      }
    }
  });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  ExpectServerAlive();
}

TEST_F(ServerProtocolTest, StopWithConnectionsOpen) {
  // Stop() must unblock and join connection threads parked in recv.
  ShbfClient idle1, idle2;
  ASSERT_TRUE(idle1.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(idle2.Connect("127.0.0.1", server_->port()).ok());
  server_->Stop();
  EXPECT_FALSE(server_->running());
  // A post-stop request fails instead of hanging.
  std::vector<uint8_t> results;
  EXPECT_FALSE(idle1.Query("members", {"key-1"}, &results).ok());
}

}  // namespace
}  // namespace shbf
