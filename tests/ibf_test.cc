#include "baselines/ibf.h"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/association_theory.h"
#include "trace/workload.h"

namespace shbf {
namespace {

IndividualBloomFilters BuildFromWorkload(const AssociationWorkload& w,
                                         uint32_t k) {
  auto params =
      IndividualBloomFilters::OptimalParams(w.s1.size(), w.s2.size(), k);
  IndividualBloomFilters ibf(params);
  for (const auto& key : w.s1) ibf.AddToS1(key);
  for (const auto& key : w.s2) ibf.AddToS2(key);
  return ibf;
}

TEST(IbfTest, ParamsValidation) {
  IndividualBloomFilters::Params p{
      .num_bits_s1 = 100, .num_bits_s2 = 100, .num_hashes = 4};
  EXPECT_TRUE(p.Validate().ok());
  p.num_bits_s1 = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = {.num_bits_s1 = 100, .num_bits_s2 = 100, .num_hashes = 0};
  EXPECT_FALSE(p.Validate().ok());
}

TEST(IbfTest, OptimalParamsMatchTable2) {
  auto p = IndividualBloomFilters::OptimalParams(1000, 2000, 10);
  // m_i = n_i · k / ln 2.
  EXPECT_NEAR(static_cast<double>(p.num_bits_s1), 1000 * 10 / std::log(2.0), 2);
  EXPECT_NEAR(static_cast<double>(p.num_bits_s2), 2000 * 10 / std::log(2.0), 2);
}

TEST(IbfTest, ClearAnswersAreAlwaysCorrect) {
  auto w = MakeAssociationWorkload(4000, 4000, 1000, 20000, 11);
  auto ibf = BuildFromWorkload(w, 8);
  for (const auto& q : w.queries) {
    AssociationOutcome outcome = ibf.Query(q.key);
    if (IndividualBloomFilters::OutcomeIsClear(outcome)) {
      // (1,0)/(0,1) answers are authoritative.
      EXPECT_TRUE(OutcomeConsistentWithTruth(outcome, q.truth))
          << AssociationOutcomeName(outcome);
    }
  }
}

TEST(IbfTest, NoFalseNegativesForUnionElements) {
  auto w = MakeAssociationWorkload(2000, 2000, 500, 10000, 13);
  auto ibf = BuildFromWorkload(w, 8);
  for (const auto& q : w.queries) {
    EXPECT_NE(ibf.Query(q.key), AssociationOutcome::kUnknown)
        << "a union element must fire at least its own filter";
  }
}

TEST(IbfTest, IntersectionElementsAlwaysAnswerIntersection) {
  auto w = MakeAssociationWorkload(2000, 2000, 1000, 0, 17);
  auto ibf = BuildFromWorkload(w, 8);
  // True intersection members set both filters; no FNs ⇒ always (1,1).
  for (size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(ibf.Query(w.s1[i]), AssociationOutcome::kIntersection);
  }
}

TEST(IbfTest, DeclaredIntersectionIsSometimesWrong) {
  // The paper's criticism: iBF "is prone to false positives whenever it
  // declares an element to be in S1 ∩ S2". With small k the FP rate is
  // large enough to observe on exclusive elements.
  auto w = MakeAssociationWorkload(3000, 3000, 0, 0, 19);
  auto ibf = BuildFromWorkload(w, 3);
  size_t wrong_intersections = 0;
  for (const auto& key : w.s1) {
    wrong_intersections += (ibf.Query(key) == AssociationOutcome::kIntersection);
  }
  EXPECT_GT(wrong_intersections, 0u);
}

TEST(IbfTest, QueryCosts2kAccessesAnd2kHashes) {
  auto w = MakeAssociationWorkload(500, 500, 100, 1000, 23);
  auto ibf = BuildFromWorkload(w, 6);
  QueryStats stats;
  for (const auto& q : w.queries) ibf.QueryWithStats(q.key, &stats);
  // Both filters are always evaluated; positives probe all k bits, and at
  // least one side is a true member, so the average sits in (k, 2k].
  EXPECT_GT(stats.AvgMemoryAccesses(), 6.0);
  EXPECT_LE(stats.AvgMemoryAccesses(), 12.0);
  EXPECT_LE(stats.AvgHashComputations(), 12.0);
}

TEST(IbfTest, ClearAnswerProbabilityTracksTheory) {
  const uint32_t k = 8;
  auto w = MakeAssociationWorkload(30000, 30000, 7500, 60000, 29);
  auto ibf = BuildFromWorkload(w, k);
  size_t clear = 0;
  for (const auto& q : w.queries) {
    clear += IndividualBloomFilters::OutcomeIsClear(ibf.Query(q.key));
  }
  double simulated = static_cast<double>(clear) / w.queries.size();
  double predicted = theory::IbfClearAnswerProb(k);  // (2/3)(1 − 0.5^k)
  EXPECT_NEAR(simulated, predicted, 0.02);
}

}  // namespace
}  // namespace shbf
