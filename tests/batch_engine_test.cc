// Engine-vs-per-key differential: BatchQueryEngine must be bit-identical to
// the scalar interface for every registered filter — the fast paths are an
// execution strategy, never a semantic change. Also pins down that the six
// probe-protocol structures actually expose their fast path (a silently
// dropped fast path would keep answers right and throughput wrong).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/filter_registry.h"
#include "engine/batch_query_engine.h"
#include "shbf/shbf_multiplicity.h"
#include "trace/trace_generator.h"

namespace shbf {
namespace {

constexpr size_t kNumKeys = 3000;

FilterSpec EngineSpec(uint64_t seed) {
  FilterSpec spec;
  spec.num_cells = 12 * kNumKeys;
  spec.num_hashes = 8;
  spec.expected_keys = kNumKeys;
  spec.max_count = 8;
  spec.seed = seed;
  return spec;
}

std::vector<std::string> Universe(uint64_t seed) {
  TraceGenerator gen(seed);
  return gen.DistinctFlowKeys(2 * kNumKeys);  // half members, half absent
}

TEST(BatchEngineTest, ContainsBatchMatchesPerKeyForEveryRegisteredFilter) {
  const auto universe = Universe(0xba7c4);
  const auto& registry = FilterRegistry::Global();
  for (const auto& name : registry.Names()) {
    SCOPED_TRACE(name);
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(registry.Create(name, EngineSpec(0xba7c4), &filter).ok());
    for (size_t i = 0; i < kNumKeys; ++i) filter->Add(universe[i]);

    // Three group sizes: degenerate, odd, and larger than most groups.
    for (size_t batch_size : {size_t{1}, size_t{7}, size_t{64}}) {
      SCOPED_TRACE(batch_size);
      BatchQueryEngine engine({.batch_size = batch_size});
      std::vector<uint8_t> batched;
      engine.ContainsBatch(*filter, universe, &batched);
      ASSERT_EQ(batched.size(), universe.size());
      for (size_t i = 0; i < universe.size(); ++i) {
        ASSERT_EQ(batched[i] != 0, filter->Contains(universe[i]))
            << "divergence at key " << i;
      }
    }
  }
}

TEST(BatchEngineTest, ProbeProtocolFiltersExposeTheirFastPath) {
  const auto& registry = FilterRegistry::Global();
  const struct {
    const char* name;
    BatchFastPath::Kind kind;
  } expected[] = {
      {"shbf_m", BatchFastPath::Kind::kShbfM},
      {"bloom", BatchFastPath::Kind::kBloom},
      {"shbf_x", BatchFastPath::Kind::kShbfX},
      {"shbf_a", BatchFastPath::Kind::kShbfA},
      {"blocked_bloom", BatchFastPath::Kind::kBlockedBloom},
      {"blocked_shbf_m", BatchFastPath::Kind::kBlockedShbfM},
  };
  for (const auto& [name, kind] : expected) {
    SCOPED_TRACE(name);
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(registry.Create(name, EngineSpec(1), &filter).ok());
    const BatchFastPath fp = filter->batch_fast_path();
    EXPECT_EQ(fp.kind, kind);
    EXPECT_NE(fp.impl, nullptr);
  }
}

TEST(BatchEngineTest, QueryCountBatchMatchesPerKeyForMultiplicityFilters) {
  const auto universe = Universe(0xc0117);
  const auto& registry = FilterRegistry::Global();
  for (const auto& name :
       registry.Names(FilterFamily::kMultiplicity)) {
    SCOPED_TRACE(name);
    std::unique_ptr<MultiplicityFilter> filter;
    ASSERT_TRUE(
        registry.CreateMultiplicity(name, EngineSpec(0xc0117), &filter).ok());
    for (size_t i = 0; i < kNumKeys; ++i) {
      const uint32_t count = 1 + i % 8;  // multiplicities 1..8
      for (uint32_t c = 0; c < count; ++c) filter->Add(universe[i]);
    }
    BatchQueryEngine engine({.batch_size = 16});
    std::vector<uint64_t> batched;
    engine.QueryCountBatch(*filter, universe, &batched);
    ASSERT_EQ(batched.size(), universe.size());
    for (size_t i = 0; i < universe.size(); ++i) {
      ASSERT_EQ(batched[i], filter->QueryCount(universe[i]))
          << "divergence at key " << i;
    }
  }
}

TEST(BatchEngineTest, QueryBatchMatchesPerKeyForAssociationFilters) {
  const auto universe = Universe(0xa550c);
  const auto& registry = FilterRegistry::Global();
  for (const auto& name : registry.Names(FilterFamily::kAssociation)) {
    SCOPED_TRACE(name);
    std::unique_ptr<AssociationFilter> filter;
    ASSERT_TRUE(
        registry.CreateAssociation(name, EngineSpec(0xa550c), &filter).ok());
    // Overlapping thirds: S1-only, intersection, S2-only.
    for (size_t i = 0; i < kNumKeys; ++i) {
      if (i % 3 != 2) filter->AddToS1(universe[i]);
      if (i % 3 != 0) filter->AddToS2(universe[i]);
    }
    BatchQueryEngine engine({.batch_size = 16});
    std::vector<AssociationOutcome> batched;
    engine.QueryBatch(*filter, universe, &batched);
    ASSERT_EQ(batched.size(), universe.size());
    for (size_t i = 0; i < universe.size(); ++i) {
      ASSERT_EQ(batched[i], filter->Query(universe[i]))
          << "divergence at key " << i;
    }
  }
}

TEST(BatchEngineTest, ConcreteShbfXOverloadHonoursReportPolicy) {
  const auto universe = Universe(0x5bf01);
  ShbfX filter({.num_bits = 12 * kNumKeys, .num_hashes = 8, .max_count = 8});
  for (size_t i = 0; i < kNumKeys; ++i) {
    filter.InsertWithCount(universe[i], 1 + i % 8);
  }
  BatchQueryEngine engine({.batch_size = 32});
  for (auto policy : {MultiplicityReportPolicy::kLargest,
                      MultiplicityReportPolicy::kSmallest}) {
    std::vector<uint32_t> batched;
    engine.QueryCountBatch(filter, universe, policy, &batched);
    ASSERT_EQ(batched.size(), universe.size());
    for (size_t i = 0; i < universe.size(); ++i) {
      ASSERT_EQ(batched[i], filter.QueryCount(universe[i], policy));
    }
  }
}

TEST(BatchEngineTest, EmptyKeysAndStaleResultsAreHandled) {
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(
      FilterRegistry::Global().Create("shbf_m", EngineSpec(9), &filter).ok());
  filter->Add("present");
  BatchQueryEngine engine;
  std::vector<uint8_t> results(17, 255);  // stale, oversized
  engine.ContainsBatch(*filter, std::vector<std::string>{}, &results);
  EXPECT_TRUE(results.empty());
  std::vector<std::string> keys = {"present", "absent-xyzzy"};
  engine.ContainsBatch(*filter, keys, &results);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0], 1);
}

}  // namespace
}  // namespace shbf
