// DynamicFilter + AutoScalingFilter: the mutation pipeline's engine layer.
// Covers epoch folding (bit-identical to a scratch-built base at every
// boundary), removes (pending-cancel and post-fold), the auto-scaling
// generation chain, wrapper composition through FilterRegistry::Create
// (dynamic / scaling / sharded in every combination the spec can ask for),
// and full nested serde round trips including mid-epoch pending state.

#include "engine/dynamic_filter.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/filter_registry.h"
#include "core/rng.h"
#include "engine/auto_scaling_filter.h"
#include "engine/batch_query_engine.h"
#include "engine/sharded_filter.h"
#include "trace/trace_generator.h"

namespace shbf {
namespace {

FilterSpec BaseSpec() {
  FilterSpec spec;
  spec.num_cells = 60000;
  spec.num_hashes = 6;
  spec.expected_keys = 4000;
  spec.max_count = 16;
  spec.seed = 0xd1a2f11e;
  return spec;
}

std::vector<std::string> TestKeys(size_t count, uint64_t seed = 0xd14a) {
  TraceGenerator gen(seed);
  return gen.DistinctFlowKeys(count);
}

TEST(DynamicFilterTest, WrapsWhenSpecAsksForDelta) {
  FilterSpec spec = BaseSpec();
  spec.delta_capacity = 64;
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(FilterRegistry::Global().Create("shbf_x", spec, &filter).ok());
  EXPECT_EQ(filter->name(), "dynamic/shbf_x");
  auto* dynamic = dynamic_cast<DynamicFilter*>(filter.get());
  ASSERT_NE(dynamic, nullptr);
  EXPECT_TRUE(dynamic->IncrementalAdd());
  EXPECT_EQ(dynamic->delta_capacity(), 64u);
  EXPECT_EQ(dynamic->active().name(), "shbf_x");
}

TEST(DynamicFilterTest, InterleavedAddQueryHasNoFalseNegatives) {
  FilterSpec spec = BaseSpec();
  spec.delta_capacity = 128;
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(FilterRegistry::Global().Create("shbf_x", spec, &filter).ok());
  auto* dynamic = dynamic_cast<DynamicFilter*>(filter.get());
  ASSERT_NE(dynamic, nullptr);

  const auto keys = TestKeys(2000);
  for (size_t i = 0; i < keys.size(); ++i) {
    filter->Add(keys[i]);
    // Query after every add — the exact interleave the naive lazy adapter
    // pays a rebuild for; here it must be cheap AND correct at all times.
    ASSERT_TRUE(filter->Contains(keys[i])) << "false negative at " << i;
    if (i % 97 == 0 && i > 0) {
      ASSERT_TRUE(filter->Contains(keys[i / 2])) << "lost an older key";
    }
  }
  // 2000 adds at delta 128 → several epochs must have completed.
  EXPECT_GE(dynamic->epoch(), 10u);
  EXPECT_EQ(filter->num_elements(), keys.size());
}

TEST(DynamicFilterTest, EpochBoundaryAnswersBitIdenticalToScratchBuild) {
  FilterSpec spec = BaseSpec();
  spec.delta_capacity = 256;
  const auto& registry = FilterRegistry::Global();
  std::unique_ptr<MembershipFilter> dynamic_filter;
  ASSERT_TRUE(registry.Create("shbf_x", spec, &dynamic_filter).ok());
  auto* dynamic = dynamic_cast<DynamicFilter*>(dynamic_filter.get());
  ASSERT_NE(dynamic, nullptr);

  FilterSpec plain = BaseSpec();
  std::unique_ptr<MembershipFilter> reference;
  ASSERT_TRUE(registry.Create("shbf_x", plain, &reference).ok());

  const auto keys = TestKeys(3000);
  for (size_t i = 0; i < 2000; ++i) {
    dynamic_filter->Add(keys[i]);
    reference->Add(keys[i]);
  }
  dynamic->Flush();
  ASSERT_EQ(dynamic->pending_mutations(), 0u);
  // Same multiset, same spec, same seed → the folded active filter must be
  // the same bit array, so every answer (false positives included) agrees.
  for (const auto& key : keys) {
    ASSERT_EQ(dynamic_filter->Contains(key), reference->Contains(key));
  }
}

TEST(DynamicFilterTest, RemoveCancelsPendingAddExactly) {
  FilterSpec spec = BaseSpec();
  spec.delta_capacity = 1024;  // large: everything stays pending
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(FilterRegistry::Global().Create("shbf_x", spec, &filter).ok());
  auto* dynamic = dynamic_cast<DynamicFilter*>(filter.get());
  ASSERT_NE(dynamic, nullptr);

  filter->Add("transient");
  EXPECT_EQ(filter->num_elements(), 1u);
  ASSERT_TRUE(filter->Remove("transient").ok());
  EXPECT_EQ(filter->num_elements(), 0u);
  EXPECT_EQ(dynamic->pending_mutations(), 0u);
  // Fold and confirm the cancelled key never reached the active side.
  dynamic->Flush();
  EXPECT_EQ(dynamic->active().num_elements(), 0u);
}

TEST(DynamicFilterTest, CancelledAddKeepsAllQueryPathsConsistent) {
  // A cancelled pending add leaves residual bits in the delta until the
  // fold. Scalar Contains, the filter's ContainsBatch and the engine
  // (which consults batch_fast_path) must all answer identically anyway —
  // the engine-vs-per-key bit-identity invariant the whole repo enforces.
  FilterSpec spec = BaseSpec();
  spec.delta_capacity = 1024;
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(FilterRegistry::Global().Create("shbf_x", spec, &filter).ok());
  auto* dynamic = dynamic_cast<DynamicFilter*>(filter.get());
  ASSERT_NE(dynamic, nullptr);

  auto keys = TestKeys(300);
  for (const auto& key : keys) filter->Add(key);
  ASSERT_TRUE(filter->Remove(keys[0]).ok());  // cancel: residual delta bits
  ASSERT_TRUE(filter->Remove(keys[1]).ok());

  const auto probes = TestKeys(500, 0xabcd);
  std::vector<std::string> all = keys;
  all.insert(all.end(), probes.begin(), probes.end());
  BatchQueryEngine engine;
  std::vector<uint8_t> batched;
  engine.ContainsBatch(*filter, all, &batched);
  std::vector<uint8_t> direct;
  filter->ContainsBatch(all, &direct);
  for (size_t i = 0; i < all.size(); ++i) {
    const bool scalar = filter->Contains(all[i]);
    ASSERT_EQ(scalar, batched[i] != 0) << "engine diverges at " << i;
    ASSERT_EQ(scalar, direct[i] != 0) << "ContainsBatch diverges at " << i;
  }

  // After a flush the residual bits are gone: the filter answers exactly
  // like a scratch-built reference over the surviving multiset.
  dynamic->Flush();
  std::unique_ptr<MembershipFilter> reference;
  ASSERT_TRUE(
      FilterRegistry::Global().Create("shbf_x", BaseSpec(), &reference).ok());
  for (size_t i = 2; i < keys.size(); ++i) reference->Add(keys[i]);
  for (const auto& key : all) {
    ASSERT_EQ(filter->Contains(key), reference->Contains(key));
  }
}

TEST(DynamicFilterTest, AddAfterQueuedRemoveOfNeverAddedKeyIsNotLost) {
  // Remove gates on the ACTIVE side, so a remove of a never-added key is
  // rejected and a subsequent Add of that key must land normally — the
  // add-swallowed-by-bogus-queued-remove false-negative chain.
  FilterSpec spec = BaseSpec();
  spec.delta_capacity = 64;
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(
      FilterRegistry::Global().Create("counting_shbf_m", spec, &filter).ok());
  auto* dynamic = dynamic_cast<DynamicFilter*>(filter.get());
  ASSERT_NE(dynamic, nullptr);

  const auto keys = TestKeys(200);
  for (size_t i = 0; i < 100; ++i) filter->Add(keys[i]);
  for (size_t i = 100; i < 200; ++i) {
    Status s = filter->Remove(keys[i]);  // never added
    if (s.ok()) continue;  // legitimate active-side false positive
    EXPECT_EQ(s.code(), Status::Code::kNotFound);
    filter->Add(keys[i]);
    ASSERT_TRUE(filter->Contains(keys[i]));
  }
  dynamic->Flush();
  for (size_t i = 0; i < 100; ++i) ASSERT_TRUE(filter->Contains(keys[i]));
}

TEST(DynamicFilterTest, TransientAddRemovePairsStillFoldAndBoundFpr) {
  // A workload of short-lived keys (add, then remove while still pending)
  // keeps pending_mutations() near zero, but every cancelled add spends
  // delta bits — those must count toward the epoch budget, or the delta
  // saturates and FPR climbs toward 100% with no fold ever firing.
  FilterSpec spec = BaseSpec();
  spec.delta_capacity = 64;
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(FilterRegistry::Global().Create("shbf_x", spec, &filter).ok());
  auto* dynamic = dynamic_cast<DynamicFilter*>(filter.get());
  ASSERT_NE(dynamic, nullptr);

  const auto transients = TestKeys(800);
  for (const auto& key : transients) {
    filter->Add(key);
    ASSERT_TRUE(filter->Remove(key).ok());
  }
  EXPECT_GE(dynamic->epoch(), 5u) << "cancelled adds never folded";
  const auto probes = TestKeys(2000, 0xfff1);
  size_t false_positives = 0;
  for (const auto& key : probes) false_positives += filter->Contains(key);
  EXPECT_LT(false_positives, probes.size() / 10)
      << "residual delta bits accumulated without bound";
}

TEST(DynamicFilterTest, SerdePreservesResidualCancelledBits) {
  // Cancelled pending adds leave bits in the delta until the fold; a
  // round-tripped filter must reproduce them — answers identical, residual
  // false positives included.
  FilterSpec spec = BaseSpec();
  spec.delta_capacity = 1024;
  const auto& registry = FilterRegistry::Global();
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(registry.Create("shbf_x", spec, &filter).ok());

  const auto keys = TestKeys(200);
  for (const auto& key : keys) filter->Add(key);
  for (size_t i = 0; i < 50; ++i) ASSERT_TRUE(filter->Remove(keys[i]).ok());

  std::unique_ptr<MembershipFilter> restored;
  Status s =
      registry.Deserialize(FilterRegistry::Serialize(*filter), &restored);
  ASSERT_TRUE(s.ok()) << s.ToString();
  auto* restored_dynamic = dynamic_cast<DynamicFilter*>(restored.get());
  ASSERT_NE(restored_dynamic, nullptr);
  EXPECT_EQ(restored_dynamic->cancelled_adds(), 50u);
  // The cancelled keys themselves are the acid test: their delta bits are
  // residual noise, and both sides must agree on them.
  for (const auto& key : keys) {
    ASSERT_EQ(filter->Contains(key), restored->Contains(key));
  }
  const auto probes = TestKeys(1000, 0xfff2);
  for (const auto& key : probes) {
    ASSERT_EQ(filter->Contains(key), restored->Contains(key))
        << "answer drift on probe key";
  }
}

TEST(DynamicFilterTest, DeserializeRejectsCountBombInPendingLogs) {
  // ReadKeyCountList bounds entry counts, not count VALUES; the replay
  // loop must reject totals past delta_capacity before spinning.
  FilterSpec spec = BaseSpec();
  std::unique_ptr<MembershipFilter> base;
  ASSERT_TRUE(FilterRegistry::Global().Create("shbf_m", spec, &base).ok());
  const std::string active_blob = FilterRegistry::Serialize(*base);
  ByteWriter writer;
  writer.PutU64(512);  // delta_capacity
  writer.PutU64(0);    // epoch
  spec_serde::WriteSpec(&writer, spec);
  serde::WriteKeyCountList(&writer, {{"key", uint64_t{1} << 40}});  // bomb
  serde::WriteKeyCountList(&writer, {});
  serde::WriteKeyCountList(&writer, {});
  writer.PutU64(active_blob.size());
  writer.PutBytes(active_blob.data(), active_blob.size());
  std::unique_ptr<MembershipFilter> out;
  Status s = DynamicFilter::Deserialize("dynamic/shbf_m", writer.Take(),
                                        FilterRegistry::Global(), &out);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("exceed delta_capacity"), std::string::npos)
      << s.ToString();
}

TEST(DynamicFilterTest, DeserializeRejectsAbsurdDeltaCapacity) {
  // The delta's geometry derives from delta_capacity; a crafted blob must
  // not be able to demand an exabyte allocation.
  FilterSpec spec = BaseSpec();
  spec.delta_capacity = FilterSpec::kMaxDeltaCapacity + 1;
  std::unique_ptr<MembershipFilter> filter;
  EXPECT_FALSE(
      FilterRegistry::Global().Create("shbf_m", spec, &filter).ok());

  spec.delta_capacity = 64;
  ASSERT_TRUE(FilterRegistry::Global().Create("shbf_m", spec, &filter).ok());
  std::string blob = FilterRegistry::Serialize(*filter);
  // Payload starts right after the envelope (magic u32, version u8, name
  // length u32, name); its first field is delta_capacity as u64.
  const size_t payload_at = 4 + 1 + 4 + filter->name().size();
  ASSERT_LE(payload_at + 8, blob.size());
  for (size_t i = 0; i < 8; ++i) blob[payload_at + i] = '\xff';
  std::unique_ptr<MembershipFilter> out;
  Status s = FilterRegistry::Global().Deserialize(blob, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("delta_capacity"), std::string::npos)
      << s.ToString();
}

TEST(DynamicFilterTest, RemoveAfterFoldReachesActiveSide) {
  // counting_shbf_m supports Remove, so the dynamic wrapper advertises and
  // forwards it even for keys already folded into the active filter.
  FilterSpec spec = BaseSpec();
  spec.delta_capacity = 8;
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(
      FilterRegistry::Global().Create("counting_shbf_m", spec, &filter).ok());
  auto* dynamic = dynamic_cast<DynamicFilter*>(filter.get());
  ASSERT_NE(dynamic, nullptr);
  EXPECT_TRUE(dynamic->capabilities() & kRemove);

  const auto keys = TestKeys(64);
  for (const auto& key : keys) filter->Add(key);
  ASSERT_GE(dynamic->epoch(), 1u) << "folds should have happened";

  Status s = filter->Remove(keys[0]);  // folded long ago
  ASSERT_TRUE(s.ok()) << s.ToString();
  dynamic->Flush();
  // After the fold the queued remove took effect on the counting base.
  EXPECT_EQ(filter->num_elements(), keys.size() - 1);
  // The rest must still answer (no-false-negative for survivors).
  for (size_t i = 1; i < keys.size(); ++i) {
    ASSERT_TRUE(filter->Contains(keys[i]));
  }
}

TEST(DynamicFilterTest, RemoveOnNonRemovableActiveFailsCleanly) {
  FilterSpec spec = BaseSpec();
  spec.delta_capacity = 4;
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(FilterRegistry::Global().Create("bloom", spec, &filter).ok());
  EXPECT_FALSE(filter->capabilities() & kRemove);

  // A still-pending add can always be cancelled (it never touched the
  // active bloom)...
  filter->Add("pending");
  EXPECT_TRUE(filter->Remove("pending").ok());
  // ...but once folded, the bloom base cannot delete.
  for (int i = 0; i < 8; ++i) filter->Add("folded-" + std::to_string(i));
  Status s = filter->Remove("folded-0");
  EXPECT_EQ(s.code(), Status::Code::kFailedPrecondition) << s.ToString();
  // And removing a definitely-absent key reports NotFound... unless the
  // active side cannot remove at all, which dominates.
  EXPECT_FALSE(filter->Remove("never-added-xyzzy").ok());
}

TEST(DynamicFilterTest, SerdeRoundTripsMidEpochPendingState) {
  FilterSpec spec = BaseSpec();
  spec.delta_capacity = 512;
  const auto& registry = FilterRegistry::Global();
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(registry.Create("shbf_x", spec, &filter).ok());
  auto* dynamic = dynamic_cast<DynamicFilter*>(filter.get());
  ASSERT_NE(dynamic, nullptr);

  const auto keys = TestKeys(700);  // 512 fold + 188 pending
  for (const auto& key : keys) filter->Add(key);
  ASSERT_GT(dynamic->pending_mutations(), 0u) << "test needs pending state";
  const uint64_t epoch_before = dynamic->epoch();

  std::string blob = FilterRegistry::Serialize(*filter);
  std::unique_ptr<MembershipFilter> restored;
  Status s = registry.Deserialize(blob, &restored);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(restored->name(), "dynamic/shbf_x");
  auto* restored_dynamic = dynamic_cast<DynamicFilter*>(restored.get());
  ASSERT_NE(restored_dynamic, nullptr);
  EXPECT_EQ(restored_dynamic->epoch(), epoch_before);
  EXPECT_EQ(restored_dynamic->pending_mutations(),
            dynamic->pending_mutations());
  EXPECT_EQ(restored->num_elements(), filter->num_elements());

  const auto probes = TestKeys(2000, 0x9999);
  for (const auto& key : keys) {
    ASSERT_TRUE(restored->Contains(key)) << "false negative after reload";
  }
  for (const auto& key : probes) {
    ASSERT_EQ(filter->Contains(key), restored->Contains(key))
        << "answer drift on probe key";
  }
  // The restored wrapper keeps folding correctly.
  for (const auto& key : probes) restored->Add(key);
  for (const auto& key : probes) ASSERT_TRUE(restored->Contains(key));
}

TEST(AutoScalingFilterTest, GrowsGenerationsPastCapacity) {
  FilterSpec spec = BaseSpec();
  spec.expected_keys = 500;  // generation 0 budget
  spec.num_cells = 6000;
  spec.auto_scale = true;
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(FilterRegistry::Global().Create("shbf_m", spec, &filter).ok());
  EXPECT_EQ(filter->name(), "scaling/shbf_m");
  auto* scaling = dynamic_cast<AutoScalingFilter*>(filter.get());
  ASSERT_NE(scaling, nullptr);
  EXPECT_EQ(scaling->num_generations(), 1u);

  // 4000 keys into a 500-key budget: 500 + 1000 + 2000 seals three
  // generations, the fourth absorbs the rest.
  const auto keys = TestKeys(4000);
  const size_t memory_before = filter->memory_bytes();
  for (const auto& key : keys) filter->Add(key);
  EXPECT_EQ(scaling->num_generations(), 4u);
  EXPECT_GT(filter->memory_bytes(), memory_before);
  EXPECT_EQ(filter->num_elements(), keys.size());
  for (const auto& key : keys) {
    ASSERT_TRUE(filter->Contains(key)) << "false negative across generations";
  }

  // FPR stays sane even at 8x the generation-0 design point (fixed
  // bits-per-key per generation is the whole point).
  const auto probes = TestKeys(4000, 0xab5e);
  size_t false_positives = 0;
  for (const auto& key : probes) false_positives += filter->Contains(key);
  EXPECT_LT(false_positives, probes.size() / 10);
}

TEST(AutoScalingFilterTest, RemoveSearchesGenerationsNewestFirst) {
  FilterSpec spec = BaseSpec();
  spec.expected_keys = 200;
  spec.num_cells = 2400;
  spec.auto_scale = true;
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(
      FilterRegistry::Global().Create("counting_bloom", spec, &filter).ok());
  auto* scaling = dynamic_cast<AutoScalingFilter*>(filter.get());
  ASSERT_NE(scaling, nullptr);
  EXPECT_TRUE(filter->capabilities() & kRemove);

  const auto keys = TestKeys(600);
  for (const auto& key : keys) filter->Add(key);
  ASSERT_GT(scaling->num_generations(), 1u);
  // Remove keys from both the oldest and the newest generation.
  ASSERT_TRUE(filter->Remove(keys.front()).ok());
  ASSERT_TRUE(filter->Remove(keys.back()).ok());
  EXPECT_EQ(filter->num_elements(), keys.size() - 2);
  for (size_t i = 1; i + 1 < keys.size(); ++i) {
    ASSERT_TRUE(filter->Contains(keys[i])) << "survivor lost at " << i;
  }
}

TEST(AutoScalingFilterTest, SerdeRoundTripsGenerationChain) {
  FilterSpec spec = BaseSpec();
  spec.expected_keys = 300;
  spec.num_cells = 3600;
  spec.auto_scale = true;
  const auto& registry = FilterRegistry::Global();
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(registry.Create("shbf_m", spec, &filter).ok());
  const auto keys = TestKeys(1500);
  for (const auto& key : keys) filter->Add(key);
  auto* scaling = dynamic_cast<AutoScalingFilter*>(filter.get());
  ASSERT_NE(scaling, nullptr);
  ASSERT_GT(scaling->num_generations(), 2u);

  std::unique_ptr<MembershipFilter> restored;
  Status s =
      registry.Deserialize(FilterRegistry::Serialize(*filter), &restored);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(restored->name(), "scaling/shbf_m");
  auto* restored_scaling = dynamic_cast<AutoScalingFilter*>(restored.get());
  ASSERT_NE(restored_scaling, nullptr);
  EXPECT_EQ(restored_scaling->num_generations(), scaling->num_generations());

  const auto probes = TestKeys(2000, 0x7777);
  for (const auto& key : keys) ASSERT_TRUE(restored->Contains(key));
  for (const auto& key : probes) {
    ASSERT_EQ(filter->Contains(key), restored->Contains(key));
  }
  // The restored chain keeps scaling: push it past the next seal point.
  for (const auto& key : probes) restored->Add(key);
  EXPECT_GT(restored_scaling->num_generations(), scaling->num_generations());
  for (const auto& key : probes) ASSERT_TRUE(restored->Contains(key));
}

TEST(WrapperCompositionTest, DynamicOverScalingOverBase) {
  FilterSpec spec = BaseSpec();
  spec.expected_keys = 400;
  spec.num_cells = 4800;
  spec.auto_scale = true;
  spec.delta_capacity = 128;
  const auto& registry = FilterRegistry::Global();
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(registry.Create("shbf_m", spec, &filter).ok());
  EXPECT_EQ(filter->name(), "dynamic/scaling/shbf_m");

  const auto keys = TestKeys(2000);
  for (const auto& key : keys) {
    filter->Add(key);
  }
  for (const auto& key : keys) ASSERT_TRUE(filter->Contains(key));

  // Full nested serde: dynamic → scaling → per-generation shbf_m blobs.
  std::unique_ptr<MembershipFilter> restored;
  Status s =
      registry.Deserialize(FilterRegistry::Serialize(*filter), &restored);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(restored->name(), "dynamic/scaling/shbf_m");
  for (const auto& key : keys) ASSERT_TRUE(restored->Contains(key));
  const auto probes = TestKeys(1000, 0x3333);
  for (const auto& key : probes) {
    ASSERT_EQ(filter->Contains(key), restored->Contains(key));
  }
}

TEST(WrapperCompositionTest, ShardedShardsGetTheDynamicWrapper) {
  FilterSpec spec = BaseSpec();
  spec.shards = 4;
  spec.delta_capacity = 256;  // 64 per shard
  const auto& registry = FilterRegistry::Global();
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(registry.Create("shbf_x", spec, &filter).ok());
  EXPECT_EQ(filter->name(), "sharded/dynamic/shbf_x");
  auto* sharded = dynamic_cast<ShardedMembershipFilter*>(filter.get());
  ASSERT_NE(sharded, nullptr);
  // Dynamic shards make the ensemble incremental → shared-lock reads.
  EXPECT_TRUE(filter->IncrementalAdd());

  const auto keys = TestKeys(3000);
  for (size_t i = 0; i < keys.size(); ++i) {
    filter->Add(keys[i]);
    if (i % 7 == 0) {
      // Interleaved queries against the sharded dynamic ensemble.
      ASSERT_TRUE(filter->Contains(keys[i]));
    }
  }
  for (const auto& key : keys) ASSERT_TRUE(filter->Contains(key));
  std::vector<uint8_t> results;
  filter->ContainsBatch(keys, &results);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(results[i]) << "batched false negative at " << i;
  }

  // Nested serde: sharded → per-shard dynamic → shbf_x replay blobs.
  std::unique_ptr<MembershipFilter> restored;
  Status s =
      registry.Deserialize(FilterRegistry::Serialize(*filter), &restored);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(restored->name(), "sharded/dynamic/shbf_x");
  for (const auto& key : keys) ASSERT_TRUE(restored->Contains(key));
}

TEST(WrapperCompositionTest, ShardedDynamicRemoveRoutesToOwningShard) {
  FilterSpec spec = BaseSpec();
  spec.shards = 4;
  spec.delta_capacity = 64;
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(
      FilterRegistry::Global().Create("counting_shbf_m", spec, &filter).ok());
  EXPECT_TRUE(filter->capabilities() & kRemove);
  EXPECT_FALSE(filter->capabilities() & kMergeable);

  const auto keys = TestKeys(800);
  for (const auto& key : keys) filter->Add(key);
  for (size_t i = 0; i < 100; ++i) {
    Status s = filter->Remove(keys[i]);
    ASSERT_TRUE(s.ok()) << i << ": " << s.ToString();
  }
  for (size_t i = 100; i < keys.size(); ++i) {
    ASSERT_TRUE(filter->Contains(keys[i])) << "survivor lost at " << i;
  }
}

TEST(WrapperCompositionTest, StripWrapperPrefixesPeelsAllLayers) {
  EXPECT_EQ(StripWrapperPrefixes("shbf_m"), "shbf_m");
  EXPECT_EQ(StripWrapperPrefixes("dynamic/shbf_x"), "shbf_x");
  EXPECT_EQ(StripWrapperPrefixes("scaling/bloom"), "bloom");
  EXPECT_EQ(StripWrapperPrefixes("sharded/dynamic/scaling/cuckoo"),
            "cuckoo");
}

TEST(MergeTest, MergeableFiltersUnionTheirKeySets) {
  const auto& registry = FilterRegistry::Global();
  for (const char* name : {"bloom", "shbf_m"}) {
    SCOPED_TRACE(name);
    std::unique_ptr<MembershipFilter> left;
    std::unique_ptr<MembershipFilter> right;
    ASSERT_TRUE(registry.Create(name, BaseSpec(), &left).ok());
    ASSERT_TRUE(registry.Create(name, BaseSpec(), &right).ok());
    EXPECT_TRUE(left->capabilities() & kMergeable);

    const auto keys = TestKeys(2000);
    for (size_t i = 0; i < 1000; ++i) left->Add(keys[i]);
    for (size_t i = 1000; i < 2000; ++i) right->Add(keys[i]);
    Status s = left->MergeFrom(*right);
    ASSERT_TRUE(s.ok()) << s.ToString();
    for (const auto& key : keys) {
      ASSERT_TRUE(left->Contains(key)) << "merge lost a key";
    }

    // Geometry mismatches must be rejected, not silently corrupt.
    FilterSpec other_spec = BaseSpec();
    other_spec.num_cells *= 2;
    std::unique_ptr<MembershipFilter> mismatched;
    ASSERT_TRUE(registry.Create(name, other_spec, &mismatched).ok());
    EXPECT_FALSE(left->MergeFrom(*mismatched).ok());
    // And merging across schemes is an error.
    std::unique_ptr<MembershipFilter> alien;
    ASSERT_TRUE(registry
                    .Create(std::string(name) == "bloom" ? "shbf_m" : "bloom",
                            BaseSpec(), &alien)
                    .ok());
    EXPECT_FALSE(left->MergeFrom(*alien).ok());
  }
}

}  // namespace
}  // namespace shbf
