// Torture tests for the serving stack's connection handling, run against
// BOTH serving modes (the epoll event loop and the legacy
// thread-per-connection fallback), which must behave identically on the
// wire: dribbled byte-at-a-time frames, several frames per send(),
// pipelined requests answered strictly in order, mid-frame disconnects,
// slow-loris stalls that must not block other connections, mutation under
// a crowd of live readers, and the Stop()-vs-in-flight-write race (a
// large response must arrive complete even when Stop lands mid-send).

#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/filter_registry.h"
#include "core/file_io.h"
#include "server/client.h"
#include "server/net.h"
#include "server/protocol.h"

namespace shbf {
namespace {

std::unique_ptr<MembershipFilter> BuildFilter(const std::string& name,
                                              size_t keys) {
  FilterSpec spec = FilterSpec::ForKeys(keys, 12.0, 8);
  spec.max_count = 8;
  std::unique_ptr<MembershipFilter> filter;
  CheckOk(FilterRegistry::Global().Create(name, spec, &filter));
  for (size_t i = 0; i < keys; ++i) filter->Add("key-" + std::to_string(i));
  return filter;
}

/// Param: true = legacy thread-per-connection, false = epoll event loop.
class ServerTortureTest : public ::testing::TestWithParam<bool> {
 protected:
  void StartServer(ServerOptions options = {}) {
    options.legacy_threads = GetParam();
    // Deterministic parallelism regardless of the host's core count.
    options.num_workers = 4;
    server_ = std::make_unique<ShbfServer>(options);
    CheckOk(server_->RegisterFilter("members", BuildFilter("shbf_m", 2000)));
    CheckOk(server_->RegisterFilter("counting",
                                    BuildFilter("counting_bloom", 2000)));
    CheckOk(server_->Start());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  int RawConnect() {
    Status s;
    int fd = net::ConnectTcp("127.0.0.1", server_->port(), &s);
    EXPECT_GE(fd, 0) << s.ToString();
    return fd;
  }

  /// HELLO on a raw fd, expecting the OK response.
  void Handshake(int fd) {
    const std::string hello = wire::BuildHello();
    ASSERT_TRUE(net::SendAll(fd, hello.data(), hello.size()));
    std::string response;
    ASSERT_EQ(net::ReadFrame(fd, wire::kMaxFrameBytes, &response),
              net::FrameRead::kOk);
    ASSERT_FALSE(response.empty());
    ASSERT_EQ(response[0], 0);  // kOk
  }

  /// Reads one response and returns its OK payload.
  std::string ReadOkPayload(int fd) {
    std::string response;
    EXPECT_EQ(net::ReadFrame(fd, wire::kMaxFrameBytes, &response),
              net::FrameRead::kOk);
    wire::WireStatus status;
    std::string_view payload;
    std::string message;
    EXPECT_TRUE(wire::ParseResponse(response, &status, &payload, &message));
    EXPECT_EQ(status, wire::WireStatus::kOk) << message;
    return std::string(payload);
  }

  /// A fresh client connection must still round-trip — the liveness probe
  /// after every abuse.
  void ExpectServerAlive() {
    ShbfClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    std::vector<uint8_t> results;
    ASSERT_TRUE(client.Query("members", {"key-1", "nope"}, &results).ok());
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0], 1);
  }

  /// Closed sockets take a moment to unwind on the server side.
  void WaitForActiveConnections(uint64_t want) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server_->active_connections() != want &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(server_->active_connections(), want);
  }

  std::unique_ptr<ShbfServer> server_;
};

// A peer that trickles one byte per send() must be served exactly like one
// that sends whole frames: framing is a stream property, not a recv one.
TEST_P(ServerTortureTest, DribbledBytesOneAtATime) {
  StartServer();
  int fd = RawConnect();
  std::string stream = wire::BuildHello();
  stream += wire::BuildQuery("members", wire::QueryMode::kMembership,
                             {"key-7", "absent-key"});
  for (char byte : stream) {
    ASSERT_TRUE(net::SendAll(fd, &byte, 1));
  }
  ReadOkPayload(fd);  // HELLO
  const std::string payload = ReadOkPayload(fd);
  // mode u8 + count u64 + one result byte per key.
  ASSERT_EQ(payload.size(), 1 + 8 + 2u);
  EXPECT_EQ(payload[9], 1);   // key-7 present
  net::CloseFd(fd);
  ExpectServerAlive();
}

// Two frames in one send(): both must be answered from a single read burst.
TEST_P(ServerTortureTest, TwoFramesInOneSend) {
  StartServer();
  int fd = RawConnect();
  std::string stream = wire::BuildHello();
  stream += wire::BuildQuery("members", wire::QueryMode::kMembership,
                             {"key-1", "key-2", "key-3"});
  ASSERT_TRUE(net::SendAll(fd, stream.data(), stream.size()));
  ReadOkPayload(fd);
  const std::string payload = ReadOkPayload(fd);
  ASSERT_EQ(payload.size(), 1 + 8 + 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(payload[9 + i], 1);
  net::CloseFd(fd);
}

// 64 pipelined QUERYs in one write; query i carries i+1 keys, so each
// response's length proves the answers come back in request order.
TEST_P(ServerTortureTest, PipelinedQueriesAnsweredInOrder) {
  StartServer();
  int fd = RawConnect();
  Handshake(fd);
  std::string stream;
  for (size_t i = 0; i < 64; ++i) {
    std::vector<std::string> keys;
    for (size_t j = 0; j <= i; ++j) {
      keys.push_back("key-" + std::to_string(j));
    }
    stream +=
        wire::BuildQuery("members", wire::QueryMode::kMembership, keys);
  }
  ASSERT_TRUE(net::SendAll(fd, stream.data(), stream.size()));
  for (size_t i = 0; i < 64; ++i) {
    const std::string payload = ReadOkPayload(fd);
    ASSERT_EQ(payload.size(), 1 + 8 + (i + 1)) << "response " << i;
    for (size_t j = 0; j <= i; ++j) {
      EXPECT_EQ(payload[9 + j], 1) << "response " << i << " key " << j;
    }
  }
  net::CloseFd(fd);
  ExpectServerAlive();
}

// A framing violation pipelined behind a valid request: the valid request
// is answered first, then the error, then the connection closes — wire
// order survives the violation.
TEST_P(ServerTortureTest, ViolationKeepsPipelineOrder) {
  StartServer();
  int fd = RawConnect();
  Handshake(fd);
  std::string stream = wire::BuildQuery(
      "members", wire::QueryMode::kMembership, {"key-1"});
  stream += std::string(4, '\0');  // zero-length frame: kBadFrame, fatal
  ASSERT_TRUE(net::SendAll(fd, stream.data(), stream.size()));
  ReadOkPayload(fd);  // the valid QUERY
  std::string response;
  ASSERT_EQ(net::ReadFrame(fd, wire::kMaxFrameBytes, &response),
            net::FrameRead::kOk);
  wire::WireStatus status;
  std::string_view payload;
  std::string message;
  ASSERT_TRUE(wire::ParseResponse(response, &status, &payload, &message));
  EXPECT_EQ(status, wire::WireStatus::kBadFrame) << message;
  // Fatal: the server closes; nothing further arrives.
  EXPECT_EQ(net::ReadFrame(fd, wire::kMaxFrameBytes, &response),
            net::FrameRead::kClosed);
  net::CloseFd(fd);
  ExpectServerAlive();
}

// Disconnecting mid-frame (prefix promised more than was sent) must not
// wedge the server or leak the connection slot.
TEST_P(ServerTortureTest, MidFrameDisconnect) {
  StartServer();
  int fd = RawConnect();
  Handshake(fd);
  const uint8_t partial[] = {100, 0, 0, 0, 1, 2, 3};  // claims 100 bytes
  ASSERT_TRUE(net::SendAll(fd, partial, sizeof(partial)));
  net::CloseFd(fd);
  ExpectServerAlive();
  WaitForActiveConnections(0);
}

// A slow loris sends a length prefix and stalls. Other connections must
// keep being served at full function while it sits there.
TEST_P(ServerTortureTest, SlowLorisDoesNotBlockOthers) {
  StartServer();
  int loris = RawConnect();
  Handshake(loris);
  const uint8_t prefix[] = {50, 0, 0, 0};  // 50-byte frame, body withheld
  ASSERT_TRUE(net::SendAll(loris, prefix, sizeof(prefix)));
  // The stalled connection must not absorb a worker or the loop: a crowd
  // of round-trips on other connections completes promptly.
  for (int i = 0; i < 20; ++i) ExpectServerAlive();
  // And the loris is still welcome to finish its frame afterwards.
  std::string body(50, '\0');
  body[0] = static_cast<char>(99);  // unknown opcode — a structured error
  ASSERT_TRUE(net::SendAll(loris, body.data(), body.size()));
  std::string response;
  ASSERT_EQ(net::ReadFrame(loris, wire::kMaxFrameBytes, &response),
            net::FrameRead::kOk);
  wire::WireStatus status;
  std::string_view payload;
  std::string message;
  ASSERT_TRUE(wire::ParseResponse(response, &status, &payload, &message));
  EXPECT_EQ(status, wire::WireStatus::kUnknownOpcode);
  net::CloseFd(loris);
}

// ADD and RELOAD racing a crowd of live readers: every query must return a
// structured answer (the per-filter lock discipline), and the server must
// come out healthy.
TEST_P(ServerTortureTest, ConcurrentMutationUnderManyReaders) {
  StartServer();
  const std::string snapshot_path =
      ::testing::TempDir() + "/event_loop_reload.shbf";
  {
    ShbfClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    ASSERT_TRUE(client.Snapshot("counting", snapshot_path).ok());
  }
  constexpr int kReaders = 100;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      ShbfClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      std::vector<std::string> keys = {"key-" + std::to_string(r % 2000),
                                       "absent-" + std::to_string(r)};
      std::vector<uint8_t> results;
      while (!stop.load(std::memory_order_relaxed)) {
        if (!client.Query("counting", keys, &results).ok() ||
            results.size() != 2 || results[0] != 1) {
          failures.fetch_add(1);
          return;
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  {
    ShbfClient writer;
    ASSERT_TRUE(writer.Connect("127.0.0.1", server_->port()).ok());
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
    int cycle = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      uint64_t added = 0;
      ASSERT_TRUE(
          writer.Add("counting", {"hot-" + std::to_string(cycle)}, &added)
              .ok());
      ASSERT_TRUE(writer.Reload("counting", snapshot_path).ok());
      ++cycle;
    }
    EXPECT_GT(cycle, 0);
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(reads.load(), 0u);
  ExpectServerAlive();
}

// The Stop()-vs-in-flight-write race: a client reading a large response
// must receive it COMPLETE even when Stop lands mid-send. (The legacy mode
// used to SHUT_RDWR live fds in Stop, cutting responses off mid-frame.)
TEST_P(ServerTortureTest, StopDrainsInFlightWrites) {
  StartServer();
  int fd = RawConnect();
  Handshake(fd);
  // ~1 MiB of response: far beyond the socket buffers, so the server is
  // still mid-send when Stop arrives.
  constexpr size_t kKeys = 1u << 20;
  std::vector<std::string> keys;
  keys.reserve(kKeys);
  for (size_t i = 0; i < kKeys; ++i) {
    keys.push_back("key-" + std::to_string(i & 1023));
  }
  const std::string query =
      wire::BuildQuery("members", wire::QueryMode::kMembership, keys);
  ASSERT_TRUE(net::SendAll(fd, query.data(), query.size()));
  // Give the handler time to start writing, then Stop concurrently while
  // this thread is the only reader draining the response.
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server_->Stop();
  });
  const std::string payload = ReadOkPayload(fd);
  stopper.join();
  ASSERT_EQ(payload.size(), 1 + 8 + kKeys);
  for (size_t i = 0; i < kKeys; i += 4096) {
    ASSERT_EQ(payload[9 + i], 1) << "result " << i;
  }
  net::CloseFd(fd);
}

// A stalled peer must not hold Stop() hostage: past drain_timeout_ms the
// connection is aborted and Stop returns.
TEST_P(ServerTortureTest, StopAbortsStalledPeer) {
  ServerOptions options;
  options.drain_timeout_ms = 200;
  StartServer(options);
  int fd = RawConnect();
  Handshake(fd);
  constexpr size_t kKeys = 1u << 20;
  std::vector<std::string> keys;
  keys.reserve(kKeys);
  for (size_t i = 0; i < kKeys; ++i) {
    keys.push_back("key-" + std::to_string(i & 1023));
  }
  const std::string query =
      wire::BuildQuery("members", wire::QueryMode::kMembership, keys);
  ASSERT_TRUE(net::SendAll(fd, query.data(), query.size()));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Never read the response; Stop must still return promptly.
  const auto start = std::chrono::steady_clock::now();
  server_->Stop();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
  EXPECT_EQ(server_->active_connections(), 0u);
  net::CloseFd(fd);
}

// A few hundred concurrent live connections, all answering correctly.
TEST_P(ServerTortureTest, ManyConcurrentConnections) {
  StartServer();
  constexpr int kConns = 200;
  std::vector<std::unique_ptr<ShbfClient>> clients;
  clients.reserve(kConns);
  for (int i = 0; i < kConns; ++i) {
    auto client = std::make_unique<ShbfClient>();
    ASSERT_TRUE(client->Connect("127.0.0.1", server_->port()).ok())
        << "connection " << i;
    clients.push_back(std::move(client));
  }
  EXPECT_EQ(server_->active_connections(), static_cast<uint64_t>(kConns));
  for (int i = 0; i < kConns; ++i) {
    std::vector<uint8_t> results;
    ASSERT_TRUE(clients[i]
                    ->Query("members",
                            {"key-" + std::to_string(i), "absent"},
                            &results)
                    .ok());
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0], 1) << "connection " << i;
  }
  clients.clear();
  WaitForActiveConnections(0);
}

// The over-limit policy: connections past max_connections are accepted and
// immediately closed; the ones inside the limit keep working.
TEST_P(ServerTortureTest, ConnectionLimitRejectsOverflow) {
  if (GetParam()) GTEST_SKIP() << "max_connections is event-loop-only";
  ServerOptions options;
  options.max_connections = 4;
  StartServer(options);
  std::vector<std::unique_ptr<ShbfClient>> clients;
  for (int i = 0; i < 4; ++i) {
    auto client = std::make_unique<ShbfClient>();
    ASSERT_TRUE(client->Connect("127.0.0.1", server_->port()).ok());
    clients.push_back(std::move(client));
  }
  // The fifth is cut before (or instead of) a HELLO response.
  ShbfClient overflow;
  EXPECT_FALSE(overflow.Connect("127.0.0.1", server_->port()).ok());
  // Limit slots free up when connections close.
  clients.pop_back();
  WaitForActiveConnections(3);
  ShbfClient replacement;
  ASSERT_TRUE(replacement.Connect("127.0.0.1", server_->port()).ok());
  std::vector<uint8_t> results;
  EXPECT_TRUE(replacement.Query("members", {"key-1"}, &results).ok());
}

INSTANTIATE_TEST_SUITE_P(Modes, ServerTortureTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "LegacyThreads" : "EventLoop";
                         });

}  // namespace
}  // namespace shbf
