#include "shbf/shbf_multiplicity.h"

#include <gtest/gtest.h>

#include <cmath>

#include <algorithm>

#include "analysis/multiplicity_theory.h"
#include "trace/workload.h"

namespace shbf {
namespace {

ShbfXParams BaseParams(uint32_t max_count = 57) {
  return {.num_bits = 40000, .num_hashes = 8, .max_count = max_count};
}

TEST(ShbfXParamsTest, Validation) {
  EXPECT_TRUE(BaseParams().Validate().ok());
  ShbfXParams p = BaseParams();
  p.max_count = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = BaseParams();
  p.max_count = 513;
  EXPECT_FALSE(p.Validate().ok());
  p = BaseParams();
  p.num_bits = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = BaseParams();
  p.num_hashes = 0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ShbfXTest, SingleElementRoundTrip) {
  ShbfX filter(BaseParams());
  filter.InsertWithCount("flow", 23);
  auto candidates = filter.QueryCandidates("flow");
  ASSERT_FALSE(candidates.empty());
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), 23u),
            candidates.end());
  EXPECT_EQ(filter.QueryCount("flow"), 23u);
}

TEST(ShbfXTest, AbsentKeyReportsZeroInSparseFilter) {
  ShbfX filter(BaseParams());
  filter.InsertWithCount("present", 5);
  EXPECT_EQ(filter.QueryCount("absent"), 0u);
  EXPECT_TRUE(filter.QueryCandidates("absent").empty());
}

TEST(ShbfXDeathTest, CountOutsideRangeIsACallerBug) {
  ShbfX filter(BaseParams(10));
  EXPECT_DEATH(filter.InsertWithCount("x", 0), "outside");
  EXPECT_DEATH(filter.InsertWithCount("x", 11), "outside");
}

TEST(ShbfXTest, BuildTalliesTheMultiset) {
  ShbfX filter(BaseParams());
  std::vector<std::string> multiset{"a", "b", "a", "c", "a", "b"};
  filter.Build(multiset);
  EXPECT_EQ(filter.num_distinct(), 3u);
  EXPECT_EQ(filter.QueryCount("a"), 3u);
  EXPECT_EQ(filter.QueryCount("b"), 2u);
  EXPECT_EQ(filter.QueryCount("c"), 1u);
}

TEST(ShbfXTest, CandidatesAlwaysContainTheTruth) {
  // §5.2's no-false-negative property: the true multiplicity is always a
  // candidate, so largest-policy answers never underestimate.
  auto w = MakeMultiplicityWorkload(4000, 57, 0, 21);
  ShbfX filter(BaseParams());
  for (size_t i = 0; i < w.keys.size(); ++i) {
    filter.InsertWithCount(w.keys[i], w.counts[i]);
  }
  for (size_t i = 0; i < w.keys.size(); ++i) {
    auto candidates = filter.QueryCandidates(w.keys[i]);
    ASSERT_TRUE(std::find(candidates.begin(), candidates.end(),
                          w.counts[i]) != candidates.end())
        << "true count " << w.counts[i] << " missing";
    ASSERT_GE(filter.QueryCount(w.keys[i], MultiplicityReportPolicy::kLargest),
              w.counts[i]);
    ASSERT_LE(filter.QueryCount(w.keys[i], MultiplicityReportPolicy::kSmallest),
              w.counts[i]);
  }
}

TEST(ShbfXTest, CandidatesAreSortedAndWithinRange) {
  auto w = MakeMultiplicityWorkload(3000, 57, 0, 23);
  ShbfX filter(BaseParams());
  for (size_t i = 0; i < w.keys.size(); ++i) {
    filter.InsertWithCount(w.keys[i], w.counts[i]);
  }
  for (size_t i = 0; i < 200; ++i) {
    auto candidates = filter.QueryCandidates(w.keys[i]);
    ASSERT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
    for (uint32_t c : candidates) {
      ASSERT_GE(c, 1u);
      ASSERT_LE(c, 57u);
    }
  }
}

TEST(ShbfXTest, LargeMaxCountSpansMultipleWindows) {
  // c = 300 > 57 forces multi-window gathers and multi-word masks.
  ShbfXParams p{.num_bits = 60000, .num_hashes = 6, .max_count = 300};
  ShbfX filter(p);
  auto w = MakeMultiplicityWorkload(1000, 300, 0, 27);
  for (size_t i = 0; i < w.keys.size(); ++i) {
    filter.InsertWithCount(w.keys[i], w.counts[i]);
  }
  for (size_t i = 0; i < w.keys.size(); ++i) {
    auto candidates = filter.QueryCandidates(w.keys[i]);
    ASSERT_TRUE(std::find(candidates.begin(), candidates.end(),
                          w.counts[i]) != candidates.end());
  }
  QueryStats stats;
  filter.QueryCountWithStats(w.keys[0], MultiplicityReportPolicy::kLargest,
                             &stats);
  // Each full gather costs ⌈300/57⌉ = 6 loads; once the intersection is a
  // singleton the remaining hashes are verified with one single-bit probe
  // each. Total accesses: 6·(gathers) + (probes), bounded by 6·k.
  EXPECT_GE(stats.memory_accesses, 6u);
  EXPECT_LE(stats.memory_accesses, 6u * filter.num_hashes());
}

TEST(ShbfXTest, AccessCountFlattensWithEarlyTermination) {
  // The Fig 11(b) mechanism: intersection shrinks candidates geometrically,
  // so after a few gathers a member query degenerates to single-bit
  // verification probes. With c = 300 (6 loads per full gather) and k = 16,
  // a naive scan costs 6·16 = 96 accesses; early singleton verification
  // needs a few gathers plus at most k − 1 one-access probes.
  auto w = MakeMultiplicityWorkload(4000, 300, 0, 29);
  ShbfXParams p{.num_bits = static_cast<size_t>(1.5 * 4000 * 16 / std::log(2.0)),
                .num_hashes = 16,
                .max_count = 300};
  ShbfX filter(p);
  for (size_t i = 0; i < w.keys.size(); ++i) {
    filter.InsertWithCount(w.keys[i], w.counts[i]);
  }
  QueryStats stats;
  for (size_t i = 0; i < 2000; ++i) {
    filter.QueryCountWithStats(w.keys[i], MultiplicityReportPolicy::kLargest,
                               &stats);
  }
  EXPECT_LT(stats.AvgMemoryAccesses(), 64.0)
      << "singleton verification should stay well below the naive 96";
  EXPECT_GE(stats.AvgMemoryAccesses(), 6.0);
  // The answers still never undershoot the true count.
  for (size_t i = 0; i < 2000; ++i) {
    ASSERT_GE(filter.QueryCount(w.keys[i]), w.counts[i]);
  }
}

TEST(ShbfXTest, CorrectnessRateTracksEq27ForNonMembers) {
  const size_t n = 20000;
  const uint32_t k = 10;
  const uint32_t c = 57;
  size_t m = static_cast<size_t>(1.5 * n * k / std::log(2.0));
  auto w = MakeMultiplicityWorkload(n, c, 100000, 31);
  ShbfX filter({.num_bits = m, .num_hashes = k, .max_count = c});
  for (size_t i = 0; i < w.keys.size(); ++i) {
    filter.InsertWithCount(w.keys[i], w.counts[i]);
  }
  size_t correct = 0;
  for (const auto& key : w.non_members) {
    correct += filter.QueryCandidates(key).empty();
  }
  double simulated = static_cast<double>(correct) / w.non_members.size();
  double predicted = theory::CorrectnessRateNonMember(m, n, k, c);
  EXPECT_NEAR(simulated, predicted, 0.01);
}

TEST(ShbfXTest, MemberCorrectnessTracksEq28UnderSmallestPolicy) {
  // Eq (28) counts spurious candidates below the true count (DESIGN.md);
  // verify against the matching (smallest-candidate) policy, full scan.
  const size_t n = 20000;
  const uint32_t k = 8;
  const uint32_t c = 57;
  size_t m = static_cast<size_t>(1.5 * n * k / std::log(2.0));
  auto w = MakeMultiplicityWorkload(n, c, 0, 33);
  ShbfX filter({.num_bits = m, .num_hashes = k, .max_count = c});
  for (size_t i = 0; i < w.keys.size(); ++i) {
    filter.InsertWithCount(w.keys[i], w.counts[i]);
  }
  size_t correct = 0;
  for (size_t i = 0; i < w.keys.size(); ++i) {
    auto candidates = filter.QueryCandidates(w.keys[i]);
    correct += (!candidates.empty() && candidates.front() == w.counts[i]);
  }
  double simulated = static_cast<double>(correct) / w.keys.size();
  double predicted =
      theory::ExpectedCorrectnessRateUniform(m, n, k, c);
  EXPECT_NEAR(simulated, predicted, 0.015);
}

// --- CountingShbfX ------------------------------------------------------------

CountingShbfX::Params CountingParams(
    CountingShbfX::UpdateMode mode = CountingShbfX::UpdateMode::kTableBacked) {
  return {.filter = BaseParams(), .counter_bits = 8, .mode = mode};
}

TEST(CountingShbfXTest, InsertIncrementsMultiplicity) {
  CountingShbfX filter(CountingParams());
  for (int i = 1; i <= 5; ++i) {
    filter.Insert("flow");
    EXPECT_EQ(filter.ExactCount("flow"), static_cast<uint64_t>(i));
    EXPECT_EQ(filter.QueryCount("flow"), static_cast<uint32_t>(i));
  }
}

TEST(CountingShbfXTest, DeleteDecrementsMultiplicity) {
  CountingShbfX filter(CountingParams());
  for (int i = 0; i < 4; ++i) filter.Insert("flow");
  EXPECT_TRUE(filter.Delete("flow"));
  EXPECT_EQ(filter.QueryCount("flow"), 3u);
  EXPECT_TRUE(filter.Delete("flow"));
  EXPECT_TRUE(filter.Delete("flow"));
  EXPECT_TRUE(filter.Delete("flow"));
  EXPECT_EQ(filter.QueryCount("flow"), 0u);
  EXPECT_FALSE(filter.Delete("flow"));  // nothing left
}

TEST(CountingShbfXTest, TableBackedModeIsExactUnderChurn) {
  CountingShbfX filter(CountingParams());
  auto w = MakeMultiplicityWorkload(500, 10, 0, 35);
  for (size_t i = 0; i < w.keys.size(); ++i) {
    for (uint32_t r = 0; r < w.counts[i]; ++r) filter.Insert(w.keys[i]);
  }
  ASSERT_TRUE(filter.SynchronizedWithCounters());
  for (size_t i = 0; i < w.keys.size(); ++i) {
    ASSERT_EQ(filter.ExactCount(w.keys[i]), w.counts[i]);
    // Largest-policy never underestimates; candidates contain the truth.
    ASSERT_GE(filter.QueryCount(w.keys[i]), w.counts[i]);
  }
  // Drain everything; the structure must return to empty.
  for (size_t i = 0; i < w.keys.size(); ++i) {
    for (uint32_t r = 0; r < w.counts[i]; ++r) {
      ASSERT_TRUE(filter.Delete(w.keys[i]));
    }
  }
  ASSERT_TRUE(filter.SynchronizedWithCounters());
  for (const auto& key : w.keys) EXPECT_EQ(filter.QueryCount(key), 0u);
}

TEST(CountingShbfXTest, FilterQueriedModeWorksWhenSparse) {
  // With a nearly-empty filter the §5.3.1 mode sees no false positives and
  // behaves exactly.
  CountingShbfX filter(
      CountingParams(CountingShbfX::UpdateMode::kFilterQueried));
  for (int i = 0; i < 3; ++i) filter.Insert("solo");
  EXPECT_EQ(filter.QueryCount("solo"), 3u);
  EXPECT_TRUE(filter.Delete("solo"));
  EXPECT_EQ(filter.QueryCount("solo"), 2u);
}

TEST(CountingShbfXDeathTest, ExactCountRequiresTableBackedMode) {
  CountingShbfX filter(
      CountingParams(CountingShbfX::UpdateMode::kFilterQueried));
  EXPECT_DEATH(filter.ExactCount("x"), "kTableBacked");
}

TEST(CountingShbfXDeathTest, InsertPastMaxCountIsACallerBug) {
  CountingShbfX::Params p = CountingParams();
  p.filter.max_count = 3;
  CountingShbfX filter(p);
  filter.Insert("x");
  filter.Insert("x");
  filter.Insert("x");
  EXPECT_DEATH(filter.Insert("x"), "max_count");
}

TEST(CountingShbfXTest, FilterQueriedModeLeaksFalseNegativesUnderLoad) {
  // §5.3.1's documented failure mode, demonstrated: when the current
  // multiplicity is read from the filter itself, a false positive in that
  // read decrements cells belonging to OTHER elements, which can clear
  // their bits — false negatives. Drive a small, heavily loaded filter and
  // count them; the table-backed mode on the same stream stays exact.
  ShbfXParams tight{.num_bits = 3000, .num_hashes = 4, .max_count = 16};
  CountingShbfX fn_prone(
      {.filter = tight, .counter_bits = 8,
       .mode = CountingShbfX::UpdateMode::kFilterQueried});
  CountingShbfX fn_free(
      {.filter = tight, .counter_bits = 8,
       .mode = CountingShbfX::UpdateMode::kTableBacked});
  auto w = MakeMultiplicityWorkload(600, 8, 0, 39);
  for (size_t i = 0; i < w.keys.size(); ++i) {
    for (uint32_t r = 0; r < w.counts[i]; ++r) {
      fn_prone.Insert(w.keys[i]);
      fn_free.Insert(w.keys[i]);
    }
  }
  size_t missing_prone = 0;
  size_t missing_free = 0;
  for (size_t i = 0; i < w.keys.size(); ++i) {
    missing_prone += (fn_prone.QueryCount(w.keys[i]) < w.counts[i]);
    missing_free += (fn_free.QueryCount(w.keys[i]) < w.counts[i]);
  }
  EXPECT_GT(missing_prone, 0u)
      << "expected §5.3.1 false negatives at this load";
  EXPECT_EQ(missing_free, 0u) << "table-backed mode must stay FN-free";
}

TEST(CountingShbfXTest, UpdateMovesTheElementNotCopiesIt) {
  // §5.3's key discipline: "one element with multiple multiplicities is
  // always inserted into the filter one time" — after an update only the
  // new count survives as a candidate; the old one is fully erased.
  CountingShbfX filter(CountingParams());
  filter.Insert("e");  // count 1: k cells at offset 0
  filter.Insert("e");  // count 2: offset-0 cells removed, offset-1 cells set
  EXPECT_EQ(filter.QueryCount("e"), 2u);
  auto candidates = filter.QueryCandidates("e");
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates.front(), 2u);
}

}  // namespace
}  // namespace shbf
