// Reference-model tests: each shifting query algorithm is re-implemented
// here in the most naive way possible — per-bit GetBit() probes, no window
// loads, no masks, no early exits — and the production fast paths must agree
// with it on every query, across randomized parameters. This pins down the
// unaligned-window arithmetic (LoadWindow shifts, multi-word candidate
// masks) against an implementation too simple to be wrong.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/rng.h"
#include "hash/hash_family.h"
#include "shbf/shbf_association.h"
#include "shbf/shbf_membership.h"
#include "shbf/shbf_multiplicity.h"
#include "trace/trace_generator.h"
#include "trace/workload.h"

namespace shbf {
namespace {

// --- ShbfM ----------------------------------------------------------------------

// Naive ShBF_M membership: probes the 2·(k/2) bits one by one.
bool NaiveShbfMContains(const ShbfM& filter, std::string_view key,
                        const HashFamily& family) {
  const size_t m = filter.num_bits();
  uint64_t offset = filter.OffsetOf(key);
  for (uint32_t i = 0; i < filter.num_pairs(); ++i) {
    size_t base = family.Hash(i, key) % m;
    if (!filter.bits().GetBit(base)) return false;
    if (!filter.bits().GetBit(base + offset)) return false;
  }
  return true;
}

struct MembershipCase {
  size_t num_bits;
  uint32_t num_hashes;
  uint32_t max_offset_span;
};

class ShbfMReferenceTest : public ::testing::TestWithParam<MembershipCase> {};

TEST_P(ShbfMReferenceTest, FastPathMatchesNaiveBitProbes) {
  const auto& c = GetParam();
  ShbfM::Params params{.num_bits = c.num_bits,
                       .num_hashes = c.num_hashes,
                       .max_offset_span = c.max_offset_span,
                       .seed = 0xfeed + c.num_bits};
  ShbfM filter(params);
  // The same family the filter uses internally (same algorithm/count/seed).
  HashFamily family(params.hash_algorithm, c.num_hashes / 2 + 1, params.seed);

  TraceGenerator gen(c.num_bits * 31 + c.num_hashes);
  auto keys = gen.DistinctFlowKeys(3000);
  for (size_t i = 0; i < 1000; ++i) filter.Add(keys[i]);
  for (const auto& key : keys) {
    ASSERT_EQ(filter.Contains(key), NaiveShbfMContains(filter, key, family))
        << "window fast path diverged from per-bit reference";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShbfMReferenceTest,
    ::testing::Values(MembershipCase{8191, 2, 57},    // non-power geometry
                      MembershipCase{10000, 8, 57},
                      MembershipCase{10007, 8, 25},   // prime m, 32-bit span
                      MembershipCase{4096, 12, 9},    // tiny span
                      MembershipCase{65536, 6, 2}));  // degenerate span (o=1)

// --- ShbfA ----------------------------------------------------------------------

// Naive ShBF_A: evaluates the three patterns with per-bit probes.
AssociationOutcome NaiveShbfAQuery(const ShbfA& filter, std::string_view key,
                                   const HashFamily& family) {
  const size_t m = filter.num_bits();
  auto off = filter.OffsetsOf(key);
  bool s1_only = true;
  bool both = true;
  bool s2_only = true;
  for (uint32_t i = 0; i < filter.num_hashes(); ++i) {
    size_t base = family.Hash(i, key) % m;
    s1_only = s1_only && filter.bits().GetBit(base);
    both = both && filter.bits().GetBit(base + off.o1);
    s2_only = s2_only && filter.bits().GetBit(base + off.o2);
  }
  if (s1_only && !both && !s2_only) return AssociationOutcome::kS1Only;
  if (!s1_only && both && !s2_only) return AssociationOutcome::kIntersection;
  if (!s1_only && !both && s2_only) return AssociationOutcome::kS2Only;
  if (s1_only && both && !s2_only) return AssociationOutcome::kS1UnsureS2;
  if (!s1_only && both && s2_only) return AssociationOutcome::kS2UnsureS1;
  if (s1_only && !both && s2_only) return AssociationOutcome::kExclusiveEither;
  if (s1_only && both && s2_only) return AssociationOutcome::kUnknown;
  return AssociationOutcome::kNotFound;
}

class ShbfAReferenceTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ShbfAReferenceTest, FastPathMatchesNaiveBitProbes) {
  const uint32_t span = GetParam();
  ShbfAParams params{.num_bits = 30000,
                     .num_hashes = 6,  // small k: plenty of partial outcomes
                     .max_offset_span = span,
                     .seed = 0xabcd00 + span};
  auto w = MakeAssociationWorkload(1200, 1200, 300, 0, 91 + span);
  ShbfA filter(params);
  filter.Build(w.s1, w.s2);
  HashFamily family(params.hash_algorithm, params.num_hashes + 2, params.seed);

  TraceGenerator gen(span * 7919);
  std::vector<std::string> probes = w.s1;
  auto outsiders = gen.DistinctKeys(2000, 16);
  probes.insert(probes.end(), outsiders.begin(), outsiders.end());
  for (const auto& key : probes) {
    ASSERT_EQ(filter.Query(key), NaiveShbfAQuery(filter, key, family))
        << "triple-pattern fast path diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(Spans, ShbfAReferenceTest,
                         ::testing::Values(5, 9, 25, 41, 57));

// --- ShbfX ----------------------------------------------------------------------

// Naive ShBF_X: for each j, probes the k bits at offset j−1 one by one.
std::vector<uint32_t> NaiveShbfXCandidates(const ShbfX& filter,
                                           std::string_view key,
                                           const HashFamily& family) {
  const size_t m = filter.num_bits();
  std::vector<uint32_t> candidates;
  for (uint32_t j = 1; j <= filter.max_count(); ++j) {
    bool all_set = true;
    for (uint32_t i = 0; i < filter.num_hashes() && all_set; ++i) {
      all_set = filter.bits().GetBit(family.Hash(i, key) % m + j - 1);
    }
    if (all_set) candidates.push_back(j);
  }
  return candidates;
}

class ShbfXReferenceTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ShbfXReferenceTest, CandidateMasksMatchNaiveBitProbes) {
  const uint32_t max_count = GetParam();
  ShbfXParams params{.num_bits = 20000,
                     .num_hashes = 4,  // small k + tight m: many candidates
                     .max_count = max_count,
                     .seed = 0xc0de00 + max_count};
  ShbfX filter(params);
  HashFamily family(params.hash_algorithm, params.num_hashes, params.seed);

  auto w = MakeMultiplicityWorkload(2500, max_count, 1500, 17 + max_count);
  for (size_t i = 0; i < w.keys.size(); ++i) {
    filter.InsertWithCount(w.keys[i], w.counts[i]);
  }
  std::vector<std::string> probes = w.keys;
  probes.insert(probes.end(), w.non_members.begin(), w.non_members.end());
  for (const auto& key : probes) {
    ASSERT_EQ(filter.QueryCandidates(key),
              NaiveShbfXCandidates(filter, key, family))
        << "multi-window candidate mask diverged (c=" << max_count << ")";
  }
}

// Window-boundary geometry: c below/at/above one 57-bit window, at the
// 64-bit mask-word boundary, and spanning several of both.
INSTANTIATE_TEST_SUITE_P(Counts, ShbfXReferenceTest,
                         ::testing::Values(1, 2, 56, 57, 58, 63, 64, 65, 113,
                                           114, 115, 128, 300, 511, 512));

}  // namespace
}  // namespace shbf
