// Unit tests for the src/obs/ metrics subsystem: bucket boundaries,
// quantile estimation, sharded-cell merging under concurrency, registry
// pointer stability, the runtime enable toggle, snapshot rendering (JSON +
// Prometheus), and the request-trace ring with its slow-request log.
//
// Everything here uses private registries and histograms, not
// MetricsRegistry::Global(), so the assertions stay exact no matter what
// other instrumentation ran in this process.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace_ring.h"

namespace shbf {
namespace obs {
namespace {

// Restores the runtime toggle even when an assertion aborts the test body.
class EnabledGuard {
 public:
  EnabledGuard() : was_(Enabled()) { SetEnabled(true); }
  ~EnabledGuard() { SetEnabled(was_); }

 private:
  bool was_;
};

TEST(HistogramBuckets, BoundariesMatchTheDocumentedScheme) {
  // Bucket 0 holds 0 and 1; bucket i holds (2^(i-1), 2^i].
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 0u);
  EXPECT_EQ(Histogram::BucketIndex(2), 1u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 2u);
  EXPECT_EQ(Histogram::BucketIndex(5), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 3u);
  EXPECT_EQ(Histogram::BucketIndex(9), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1025), 11u);
  // Everything past the last bound collapses into the final bucket.
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), kNumBuckets - 1);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(0), 1u);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(10), 1024u);
}

TEST(HistogramBuckets, EveryValueLandsInsideItsBucketBounds) {
  for (uint64_t value : {0ull, 1ull, 2ull, 3ull, 7ull, 63ull, 64ull, 65ull,
                         999ull, 4096ull, 123456789ull}) {
    const size_t i = Histogram::BucketIndex(value);
    EXPECT_LE(value, HistogramSnapshot::BucketUpperBound(i)) << value;
    if (i > 0) {
      EXPECT_GT(value, HistogramSnapshot::BucketUpperBound(i - 1)) << value;
    }
  }
}

TEST(Histogram, SnapshotMergesCountSumAndBuckets) {
  if (!kCompiledIn) GTEST_SKIP() << "metrics compiled out";
  EnabledGuard guard;
  Histogram histogram;
  histogram.Record(0);
  histogram.Record(1);
  histogram.Record(100);   // bucket 7 (64, 128]
  histogram.Record(128);   // bucket 7
  histogram.Record(5000);  // bucket 13 (4096, 8192]
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 5u);
  EXPECT_EQ(snapshot.sum, 0u + 1u + 100u + 128u + 5000u);
  EXPECT_EQ(snapshot.buckets[0], 2u);
  EXPECT_EQ(snapshot.buckets[7], 2u);
  EXPECT_EQ(snapshot.buckets[13], 1u);
}

TEST(Histogram, QuantilesBracketTheRecordedValues) {
  if (!kCompiledIn) GTEST_SKIP() << "metrics compiled out";
  EnabledGuard guard;
  Histogram histogram;
  // 90 fast requests around 100us, 10 slow ones around 10000us.
  for (int i = 0; i < 90; ++i) histogram.Record(100);
  for (int i = 0; i < 10; ++i) histogram.Record(10000);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  // The p50 must land in 100's bucket (64, 128]; the p99 in 10000's
  // (8192, 16384]. Log buckets bound the estimate within 2x.
  EXPECT_GT(snapshot.Quantile(0.50), 64.0);
  EXPECT_LE(snapshot.Quantile(0.50), 128.0);
  EXPECT_GT(snapshot.Quantile(0.99), 8192.0);
  EXPECT_LE(snapshot.Quantile(0.99), 16384.0);
  // Monotone in q.
  EXPECT_LE(snapshot.Quantile(0.50), snapshot.Quantile(0.90));
  EXPECT_LE(snapshot.Quantile(0.90), snapshot.Quantile(0.999));
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram histogram;
  EXPECT_EQ(histogram.Snapshot().count, 0u);
  EXPECT_EQ(histogram.Snapshot().Quantile(0.99), 0.0);
}

TEST(Counter, ConcurrentIncrementsMergeExactly) {
  if (!kCompiledIn) GTEST_SKIP() << "metrics compiled out";
  EnabledGuard guard;
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), uint64_t{kThreads} * kPerThread);
}

TEST(Counter, DeltaIncrements) {
  if (!kCompiledIn) GTEST_SKIP() << "metrics compiled out";
  EnabledGuard guard;
  Counter counter;
  counter.Increment(41);
  counter.Increment();
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  if (!kCompiledIn) GTEST_SKIP() << "metrics compiled out";
  EnabledGuard guard;
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Set(-5);
  EXPECT_EQ(gauge.Value(), -5);
}

TEST(EnableToggle, DisabledPrimitivesRecordNothing) {
  if (!kCompiledIn) GTEST_SKIP() << "metrics compiled out";
  EnabledGuard guard;
  Counter counter;
  Histogram histogram;
  Gauge gauge;
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
  counter.Increment();
  histogram.Record(100);
  gauge.Set(9);
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(histogram.Snapshot().count, 0u);
  EXPECT_EQ(gauge.Value(), 0);
  SetEnabled(true);
  counter.Increment();
  EXPECT_EQ(counter.Value(), 1u);
}

TEST(Registry, PointersAreStableAndPerName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("test.a_total");
  Counter* b = registry.GetCounter("test.b_total");
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.GetCounter("test.a_total"), a);
  Histogram* h = registry.GetHistogram("test.latency_us");
  EXPECT_EQ(registry.GetHistogram("test.latency_us"), h);
  EXPECT_NE(registry.GetGauge("test.depth"), nullptr);
  // Same name, different kind: distinct maps, no collision.
  EXPECT_NE(static_cast<void*>(registry.GetCounter("test.same")),
            static_cast<void*>(registry.GetGauge("test.same")));
}

TEST(Registry, SnapshotCarriesEverythingSorted) {
  if (!kCompiledIn) GTEST_SKIP() << "metrics compiled out";
  EnabledGuard guard;
  MetricsRegistry registry;
  registry.GetCounter("test.z_total")->Increment(3);
  registry.GetCounter("test.a_total")->Increment(1);
  registry.GetGauge("test.depth")->Set(4);
  registry.GetHistogram("test.latency_us")->Record(100);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "test.a_total");  // sorted
  EXPECT_EQ(snapshot.CounterValue("test.z_total"), 3u);
  EXPECT_EQ(snapshot.CounterValue("absent", 77), 77u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].second, 4);
  const HistogramSnapshot* h = snapshot.FindHistogram("test.latency_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_EQ(snapshot.FindHistogram("absent"), nullptr);
}

TEST(Registry, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(Rendering, JsonCarriesCountersAndQuantiles) {
  if (!kCompiledIn) GTEST_SKIP() << "metrics compiled out";
  EnabledGuard guard;
  MetricsRegistry registry;
  registry.GetCounter("test.frames_total")->Increment(7);
  registry.GetHistogram("test.latency_us")->Record(100);
  MetricsSnapshot snapshot = registry.Snapshot();
  snapshot.version = "1.2.3";
  snapshot.dispatch = "avx2";
  snapshot.uptime_seconds = 5;
  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"test.frames_total\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"version\": \"1.2.3\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"test.latency_us\""), std::string::npos);
}

TEST(Rendering, PrometheusFlattensNamesAndEmitsCumulativeBuckets) {
  if (!kCompiledIn) GTEST_SKIP() << "metrics compiled out";
  EnabledGuard guard;
  MetricsRegistry registry;
  registry.GetCounter("test.frames_total")->Increment(7);
  Histogram* histogram = registry.GetHistogram("test.latency_us");
  histogram->Record(100);
  histogram->Record(100);
  histogram->Record(5000);
  MetricsSnapshot snapshot = registry.Snapshot();
  const std::string prom = snapshot.ToPrometheus();
  EXPECT_NE(prom.find("shbf_test_frames_total 7"), std::string::npos) << prom;
  // Cumulative: the 128 bound already covers both 100us samples; +Inf all.
  EXPECT_NE(prom.find("shbf_test_latency_us_bucket{le=\"128\"} 2"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("shbf_test_latency_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("shbf_test_latency_us_count 3"), std::string::npos);
}

// ---- trace ring -----------------------------------------------------------

RequestTrace MakeTrace(uint64_t handle_us) {
  RequestTrace trace;
  trace.connection_id = 7;
  trace.opcode = 3;
  trace.opcode_name = "QUERY";
  trace.key_count = 16;
  trace.bytes_in = 100;
  trace.bytes_out = 50;
  trace.queue_wait_us = 2;
  trace.handle_us = handle_us;
  return trace;
}

TEST(TraceRing, RecordsInOrderAndWrapsOldestFirst) {
  RequestTraceRing ring(4);
  for (uint64_t i = 0; i < 6; ++i) {
    RequestTrace trace = MakeTrace(i);
    ring.Record(trace);
  }
  EXPECT_EQ(ring.recorded(), 6u);
  const std::vector<RequestTrace> recent = ring.Recent();
  ASSERT_EQ(recent.size(), 4u);  // capacity bounds retention
  EXPECT_EQ(recent.front().handle_us, 2u);  // oldest surviving
  EXPECT_EQ(recent.back().handle_us, 5u);   // newest
  EXPECT_EQ(recent.back().seq, 5u);
  const std::vector<RequestTrace> last_two = ring.Recent(2);
  ASSERT_EQ(last_two.size(), 2u);
  EXPECT_EQ(last_two.front().handle_us, 4u);
}

TEST(TraceRing, SlowThresholdCountsAndLogs) {
  RequestTraceRing ring;
  ring.set_slow_threshold_us(1000);
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  ring.set_slow_sink(sink);
  ring.Record(MakeTrace(10));     // fast: no line
  ring.Record(MakeTrace(5000));   // slow: one line
  EXPECT_EQ(ring.slow_count(), 1u);
  EXPECT_EQ(ring.recorded(), 2u);
  std::rewind(sink);
  char line[256] = {0};
  ASSERT_NE(std::fgets(line, sizeof(line), sink), nullptr);
  EXPECT_NE(std::strstr(line, "[shbf slow]"), nullptr) << line;
  EXPECT_NE(std::strstr(line, "op=QUERY"), nullptr) << line;
  EXPECT_NE(std::strstr(line, "handle_us=5000"), nullptr) << line;
  EXPECT_EQ(std::fgets(line, sizeof(line), sink), nullptr);  // only one
  std::fclose(sink);
}

TEST(TraceRing, ZeroThresholdNeverLogs) {
  RequestTraceRing ring;
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  ring.set_slow_sink(sink);
  ring.Record(MakeTrace(1000000));
  EXPECT_EQ(ring.slow_count(), 0u);
  std::rewind(sink);
  char line[8];
  EXPECT_EQ(std::fgets(line, sizeof(line), sink), nullptr);
  std::fclose(sink);
}

}  // namespace
}  // namespace obs
}  // namespace shbf
