#include "core/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace shbf {
namespace {

TEST(SplitMix64Test, KnownSequenceFromSeedZero) {
  // Reference values of the canonical SplitMix64 for state = 0.
  uint64_t state = 0;
  EXPECT_EQ(SplitMix64(state), 0xe220a8397b1dcdafull);
  EXPECT_EQ(SplitMix64(state), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(SplitMix64(state), 0x06c45d188009454full);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng rng(99);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextBelowIsRoughlyUniform) {
  Rng rng(31337);
  constexpr uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> histogram(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.NextBelow(kBuckets)];
  for (uint64_t b = 0; b < kBuckets; ++b) {
    // Expected 10000 per bucket; 5σ ≈ 475.
    EXPECT_NEAR(histogram[b], kDraws / kBuckets, 500) << "bucket " << b;
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(555);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextBytesLengthAndDeterminism) {
  Rng a(4242);
  Rng b(4242);
  for (size_t len : {0u, 1u, 7u, 8u, 13u, 64u, 100u}) {
    std::string bytes_a = a.NextBytes(len);
    std::string bytes_b = b.NextBytes(len);
    EXPECT_EQ(bytes_a.size(), len);
    EXPECT_EQ(bytes_a, bytes_b);
  }
}

TEST(RngTest, BitBalance) {
  // Each output bit of xoshiro256** should be ~50% ones.
  Rng rng(777);
  constexpr int kDraws = 20000;
  std::vector<int> ones(64, 0);
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = rng.Next();
    for (int b = 0; b < 64; ++b) ones[b] += (v >> b) & 1;
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(ones[b], kDraws / 2, 700) << "bit " << b;
  }
}

}  // namespace
}  // namespace shbf
