// Registry-driven differential testing: every registered filter, driven
// through the uniform MembershipFilter interface, must agree with an exact
// std::unordered_set reference on no-false-negatives over 10k random keys,
// and keep its false-positive rate sane. Incremental filters additionally
// run an interleaved add/query stream.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "api/filter_registry.h"
#include "core/rng.h"
#include "trace/trace_generator.h"

namespace shbf {
namespace {

constexpr size_t kNumKeys = 10000;

FilterSpec DifferentialSpec(uint64_t seed) {
  FilterSpec spec;
  spec.num_cells = 12 * kNumKeys;  // 12 cells per key
  spec.num_hashes = 8;
  spec.expected_keys = kNumKeys;
  // ShBF_X's FPR grows linearly in the count cap (a non-member matches if
  // ANY of the c candidate offsets survives; §5.2), so cap it to the
  // workload's actual multiplicities instead of the generous default.
  spec.max_count = 8;
  spec.seed = seed;
  return spec;
}

class RegistryDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RegistryDifferentialTest, NoFalseNegativesVsUnorderedSet) {
  const uint64_t seed = GetParam();
  TraceGenerator gen(seed);
  const auto universe = gen.DistinctFlowKeys(2 * kNumKeys);

  const auto& registry = FilterRegistry::Global();
  for (const auto& name : registry.Names()) {
    SCOPED_TRACE(name);
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(registry.Create(name, DifferentialSpec(seed), &filter).ok());

    std::unordered_set<std::string> reference;
    for (size_t i = 0; i < kNumKeys; ++i) {
      filter->Add(universe[i]);
      reference.insert(universe[i]);
    }
    // The no-false-negative contract, checked key by key against the
    // reference — the registry-level restatement of the paper's guarantee.
    for (const auto& key : universe) {
      if (reference.count(key) > 0) {
        ASSERT_TRUE(filter->Contains(key)) << "false negative";
      }
    }
    // FPR sanity on the 10k absent keys at 12 cells/key.
    size_t false_positives = 0;
    for (size_t i = kNumKeys; i < universe.size(); ++i) {
      false_positives += filter->Contains(universe[i]);
    }
    double fpr =
        static_cast<double>(false_positives) / static_cast<double>(kNumKeys);
    EXPECT_LT(fpr, 0.10) << "implausible false-positive rate " << fpr;
  }
}

TEST_P(RegistryDifferentialTest, InterleavedStreamForIncrementalFilters) {
  const uint64_t seed = GetParam();
  TraceGenerator gen(seed ^ 0x17e4);
  const auto universe = gen.DistinctFlowKeys(4000);
  const auto& registry = FilterRegistry::Global();

  for (const auto& name : registry.Names()) {
    SCOPED_TRACE(name);
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(registry.Create(name, DifferentialSpec(seed), &filter).ok());
    if (!filter->IncrementalAdd()) continue;  // bulk-built: covered above

    std::unordered_set<std::string> reference;
    Rng rng(seed ^ 0xd1ff);
    for (size_t op = 0; op < 20000; ++op) {
      const std::string& key = universe[rng.NextBelow(universe.size())];
      if (rng.NextBelow(3) == 0) {
        filter->Add(key);
        reference.insert(key);
      } else if (reference.count(key) > 0) {
        ASSERT_TRUE(filter->Contains(key)) << "false negative at op " << op;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegistryDifferentialTest,
                         ::testing::Values(1ull, 0xdeadbeefull, 77777ull));

}  // namespace
}  // namespace shbf
