#include "core/chained_hash_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/rng.h"

namespace shbf {
namespace {

TEST(ChainedHashTableTest, EmptyTable) {
  ChainedHashTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.Contains("missing"));
  EXPECT_EQ(table.Find("missing"), nullptr);
}

TEST(ChainedHashTableTest, InsertAndFind) {
  ChainedHashTable table;
  EXPECT_TRUE(table.Insert("alpha", 1));
  EXPECT_TRUE(table.Insert("beta", 2));
  EXPECT_EQ(table.size(), 2u);
  ASSERT_NE(table.Find("alpha"), nullptr);
  EXPECT_EQ(*table.Find("alpha"), 1u);
  EXPECT_EQ(*table.Find("beta"), 2u);
}

TEST(ChainedHashTableTest, InsertDuplicateKeepsOriginal) {
  ChainedHashTable table;
  EXPECT_TRUE(table.Insert("key", 10));
  EXPECT_FALSE(table.Insert("key", 99));
  EXPECT_EQ(*table.Find("key"), 10u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(ChainedHashTableTest, UpsertOverwrites) {
  ChainedHashTable table;
  table.Upsert("key", 10);
  table.Upsert("key", 99);
  EXPECT_EQ(*table.Find("key"), 99u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(ChainedHashTableTest, AddToAccumulates) {
  ChainedHashTable table;
  EXPECT_EQ(table.AddTo("flow", 1), 1u);
  EXPECT_EQ(table.AddTo("flow", 1), 2u);
  EXPECT_EQ(table.AddTo("flow", 5), 7u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(ChainedHashTableTest, EraseRemoves) {
  ChainedHashTable table;
  table.Insert("a", 1);
  table.Insert("b", 2);
  EXPECT_TRUE(table.Erase("a"));
  EXPECT_FALSE(table.Contains("a"));
  EXPECT_TRUE(table.Contains("b"));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_FALSE(table.Erase("a"));  // already gone
}

TEST(ChainedHashTableTest, BinaryKeysWithEmbeddedNulAndEmptyKey) {
  ChainedHashTable table;
  std::string key1("\0\0x", 3);
  std::string key2("\0\0y", 3);
  table.Insert(key1, 1);
  table.Insert(key2, 2);
  table.Insert("", 3);
  EXPECT_EQ(*table.Find(key1), 1u);
  EXPECT_EQ(*table.Find(key2), 2u);
  EXPECT_EQ(*table.Find(""), 3u);
}

TEST(ChainedHashTableTest, GrowsPastInitialBuckets) {
  ChainedHashTable table(4);
  for (int i = 0; i < 1000; ++i) {
    table.Insert("key" + std::to_string(i), static_cast<uint64_t>(i));
  }
  EXPECT_EQ(table.size(), 1000u);
  EXPECT_GT(table.bucket_count(), 4u);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_NE(table.Find("key" + std::to_string(i)), nullptr) << i;
    EXPECT_EQ(*table.Find("key" + std::to_string(i)),
              static_cast<uint64_t>(i));
  }
  // Resize at load factor 1 keeps chains short.
  EXPECT_LE(table.MaxChainLength(), 8u);
}

TEST(ChainedHashTableTest, ForEachVisitsEveryEntryOnce) {
  ChainedHashTable table;
  for (int i = 0; i < 100; ++i) {
    table.Insert("k" + std::to_string(i), static_cast<uint64_t>(i));
  }
  std::set<std::string> seen;
  uint64_t value_sum = 0;
  table.ForEach([&](std::string_view key, uint64_t value) {
    EXPECT_TRUE(seen.insert(std::string(key)).second) << "duplicate " << key;
    value_sum += value;
  });
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(value_sum, 99u * 100u / 2);
}

TEST(ChainedHashTableTest, MoveConstructionTransfersEntries) {
  ChainedHashTable source;
  source.Insert("x", 7);
  ChainedHashTable dest(std::move(source));
  EXPECT_EQ(*dest.Find("x"), 7u);
  EXPECT_EQ(dest.size(), 1u);
  EXPECT_EQ(source.size(), 0u);  // NOLINT(bugprone-use-after-move)
}

TEST(ChainedHashTableTest, MoveAssignmentReplacesContents) {
  ChainedHashTable a;
  a.Insert("old", 1);
  ChainedHashTable b;
  b.Insert("new", 2);
  a = std::move(b);
  EXPECT_FALSE(a.Contains("old"));
  EXPECT_EQ(*a.Find("new"), 2u);
}

TEST(ChainedHashTableTest, RandomInsertEraseAgainstReference) {
  ChainedHashTable table;
  std::set<std::string> reference;
  Rng rng(2024);
  for (int step = 0; step < 20000; ++step) {
    std::string key = "k" + std::to_string(rng.NextBelow(500));
    if (rng.Next() & 1) {
      EXPECT_EQ(table.Insert(key, 0), reference.insert(key).second);
    } else {
      EXPECT_EQ(table.Erase(key), reference.erase(key) > 0);
    }
  }
  EXPECT_EQ(table.size(), reference.size());
  for (const std::string& key : reference) {
    EXPECT_TRUE(table.Contains(key)) << key;
  }
}

}  // namespace
}  // namespace shbf
