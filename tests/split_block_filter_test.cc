// The split-block variants (split_block_bloom, split_block_shbf_m) buy a
// one-vector-op resolve by pinning every probe/pair to its own sub-word;
// nothing else about them may drift from the catalog's contracts. Pinned
// here: sub-word confinement at every legal sub_block_bits x k geometry
// (including the block-edge shifts), probe masks bit-identical under native
// and forced-scalar dispatch, no false negatives, FPR within 2x of the
// unblocked base at a 100k absent-key sample, engine fast path identical to
// the per-key loop on both sides of the cache-resident batch-size bypass,
// native + registry serde round trips, merge-as-union, and the v5 envelope
// still accepting hand-crafted v4 blobs (the sub_block_bits field is a v5
// spec-record extension).

#include <bit>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "api/filter_registry.h"
#include "baselines/split_block_bloom_filter.h"
#include "core/bits.h"
#include "core/simd.h"
#include "engine/batch_query_engine.h"
#include "shbf/split_block_shbf_membership.h"
#include "trace/trace_generator.h"

namespace shbf {
namespace {

constexpr size_t kNumKeys = 3000;

FilterSpec TestSpec(uint64_t seed) {
  FilterSpec spec;
  spec.num_cells = 12 * kNumKeys;
  spec.num_hashes = 8;
  spec.expected_keys = kNumKeys;
  spec.max_count = 8;
  spec.seed = seed;
  return spec;
}

std::vector<std::string> Universe(uint64_t seed) {
  TraceGenerator gen(seed);
  return gen.DistinctFlowKeys(2 * kNumKeys);  // half members, half absent
}

/// Popcount of a whole-block mask restricted to one sub-word.
uint32_t SubWordPopcount(const uint64_t* mask, uint32_t sub,
                         uint32_t sub_block_bits) {
  const uint32_t first_bit = sub * sub_block_bits;
  const uint64_t word = mask[first_bit / 64];
  const uint64_t lane_mask = sub_block_bits == 64
                                 ? ~uint64_t{0}
                                 : ((uint64_t{1} << sub_block_bits) - 1)
                                       << (first_bit % 64);
  return static_cast<uint32_t>(std::popcount(word & lane_mask));
}

// Every geometry the factory can produce keeps each probe inside its
// round-robin sub-word: summing the per-sub-word popcounts must account for
// every mask bit, and no sub-word may hold more bits than the probes mapped
// to it. Sweeps every sub_block_bits including 8 (the Bloom floor) and both
// block-edge sub-words.
TEST(SplitBlockBloomTest, ProbesStayInsideTheirSubWords) {
  for (uint32_t sub_bits : {8u, 16u, 32u, 64u}) {
    for (uint32_t k : {1u, 3u, 8u, 16u}) {
      const uint32_t block_bits =
          std::min(512u, std::max(64u, static_cast<uint32_t>(RoundUp(k * sub_bits, 64))));
      SplitBlockBloomFilter filter({.num_bits = 1 << 18,
                                    .num_hashes = k,
                                    .block_bits = block_bits,
                                    .sub_block_bits = sub_bits});
      const uint32_t num_sub = filter.num_sub_blocks();
      std::vector<uint32_t> probes_of_sub(num_sub, 0);
      for (uint32_t i = 0; i < k; ++i) ++probes_of_sub[i % num_sub];
      for (int t = 0; t < 500; ++t) {
        const std::string key = "key-" + std::to_string(t);
        SplitBlockBloomFilter::Probe probe;
        filter.PrepareProbe(key, &probe);
        uint32_t total = 0;
        for (uint32_t sub = 0; sub < num_sub; ++sub) {
          const uint32_t bits = SubWordPopcount(probe.mask, sub, sub_bits);
          ASSERT_LE(bits, probes_of_sub[sub])
              << "sub " << sub << " s=" << sub_bits << " k=" << k;
          total += bits;
        }
        // Every set bit was accounted for by some sub-word: nothing leaked
        // into the gaps or out of the block.
        uint32_t mask_bits = 0;
        for (uint32_t w = 0; w < filter.block_words(); ++w) {
          mask_bits += static_cast<uint32_t>(std::popcount(probe.mask[w]));
        }
        ASSERT_EQ(total, mask_bits) << "s=" << sub_bits << " k=" << k;
        ASSERT_GE(total, 1u);
      }
    }
  }
}

// The ShBF_M layout: pair i owns sub-word i % num_sub and always contributes
// exactly two distinct bits there (the circular placement cannot collide —
// offsets are nonzero mod sub_block_bits).
TEST(SplitBlockShbfMTest, PairsStayInsideTheirSubWordsWithTwoBits) {
  for (uint32_t sub_bits : {16u, 32u, 64u}) {
    for (uint32_t k : {2u, 6u, 8u, 16u}) {
      const uint32_t pairs = k / 2;
      const uint32_t block_bits =
          std::min(512u, std::max(64u, static_cast<uint32_t>(
                                           RoundUp(pairs * sub_bits, 64))));
      SplitBlockShbfM filter({.num_bits = 1 << 18,
                              .num_hashes = k,
                              .block_bits = block_bits,
                              .sub_block_bits = sub_bits,
                              .max_offset_span = sub_bits / 2});
      const uint32_t num_sub = filter.num_sub_blocks();
      std::vector<uint32_t> pairs_of_sub(num_sub, 0);
      for (uint32_t i = 0; i < pairs; ++i) ++pairs_of_sub[i % num_sub];
      for (int t = 0; t < 500; ++t) {
        const std::string key = "pair-key-" + std::to_string(t);
        SplitBlockShbfM::Probe probe;
        filter.PrepareProbe(key, &probe);
        const uint64_t offset = filter.OffsetOf(key);
        ASSERT_GE(offset, 1u);
        ASSERT_LT(offset, filter.max_offset_span());
        uint32_t total = 0;
        for (uint32_t sub = 0; sub < num_sub; ++sub) {
          const uint32_t bits = SubWordPopcount(probe.mask, sub, sub_bits);
          // Distinct pairs in one sub-word may overlap, but a lone pair
          // sets exactly two bits.
          ASSERT_LE(bits, 2 * pairs_of_sub[sub]);
          if (pairs_of_sub[sub] == 1) {
            ASSERT_EQ(bits, 2u) << "sub " << sub << " s=" << sub_bits;
          }
          total += bits;
        }
        uint32_t mask_bits = 0;
        for (uint32_t w = 0; w < filter.block_words(); ++w) {
          mask_bits += static_cast<uint32_t>(std::popcount(probe.mask[w]));
        }
        ASSERT_EQ(total, mask_bits) << "s=" << sub_bits << " k=" << k;
      }
    }
  }
}

// The mask-construction kernel feeds Add and Contains alike, so a dispatch
// divergence would be invisible to a same-mode differential test. Pin the
// raw probe masks: native and forced-scalar dispatch must produce identical
// bytes at every sub-word width and k, including shifts that land a probe
// on bit 63 of a word (the in-word edge).
TEST(SplitBlockFilterTest, ProbeMasksIdenticalUnderBothDispatchModes) {
  const auto universe = Universe(0x5b17);
  for (uint32_t sub_bits : {8u, 16u, 32u, 64u}) {
    for (uint32_t k : {1u, 7u, 8u, 24u}) {
      SplitBlockBloomFilter filter({.num_bits = 1 << 18,
                                    .num_hashes = k,
                                    .block_bits = 512,
                                    .sub_block_bits = sub_bits});
      for (size_t t = 0; t < 300; ++t) {
        SplitBlockBloomFilter::Probe native, scalar;
        simd::ForceScalar(false);
        filter.PrepareProbe(universe[t], &native);
        simd::ForceScalar(true);
        filter.PrepareProbe(universe[t], &scalar);
        simd::ForceScalar(false);
        ASSERT_EQ(native.block_word, scalar.block_word);
        ASSERT_EQ(std::memcmp(native.mask, scalar.mask, sizeof(native.mask)),
                  0)
            << "s=" << sub_bits << " k=" << k << " key " << t;
      }
    }
  }
  for (uint32_t sub_bits : {16u, 32u, 64u}) {
    for (uint32_t k : {2u, 8u, 30u}) {
      SplitBlockShbfM filter({.num_bits = 1 << 18,
                              .num_hashes = k,
                              .block_bits = 512,
                              .sub_block_bits = sub_bits,
                              .max_offset_span = sub_bits / 2});
      for (size_t t = 0; t < 300; ++t) {
        SplitBlockShbfM::Probe native, scalar;
        simd::ForceScalar(false);
        filter.PrepareProbe(universe[t], &native);
        simd::ForceScalar(true);
        filter.PrepareProbe(universe[t], &scalar);
        simd::ForceScalar(false);
        ASSERT_EQ(native.block_word, scalar.block_word);
        ASSERT_EQ(std::memcmp(native.mask, scalar.mask, sizeof(native.mask)),
                  0)
            << "s=" << sub_bits << " k=" << k << " key " << t;
      }
    }
  }
}

// Differential check against the exact set: no false negatives ever, and a
// sane false-positive count at 12 bits/key.
TEST(SplitBlockFilterTest, DifferentialAgainstExactSet) {
  const auto universe = Universe(0x5bd1f);
  for (const char* name : {"split_block_bloom", "split_block_shbf_m"}) {
    SCOPED_TRACE(name);
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(
        FilterRegistry::Global().Create(name, TestSpec(0x5bd1f), &filter)
            .ok());
    std::unordered_set<std::string> exact;
    for (size_t i = 0; i < kNumKeys; ++i) {
      filter->Add(universe[i]);
      exact.insert(universe[i]);
    }
    size_t false_positives = 0;
    for (const auto& key : universe) {
      const bool in_filter = filter->Contains(key);
      if (exact.count(key)) {
        ASSERT_TRUE(in_filter) << "false negative: " << key;
      } else if (in_filter) {
        ++false_positives;
      }
    }
    EXPECT_LT(false_positives, kNumKeys / 20) << "FPR collapsed";
  }
}

/// Measured FPR of registry filter `name` over 100k absent keys after
/// building from `members`.
double MeasuredFpr(const std::string& name, const FilterSpec& spec,
                   const std::vector<std::string>& members) {
  std::unique_ptr<MembershipFilter> filter;
  Status s = FilterRegistry::Global().Create(name, spec, &filter);
  EXPECT_TRUE(s.ok()) << s.ToString();
  if (!s.ok()) return 1.0;
  for (const auto& key : members) filter->Add(key);
  constexpr size_t kAbsent = 100000;
  size_t positives = 0;
  for (size_t i = 0; i < kAbsent; ++i) {
    positives += filter->Contains("fpr-absent-" + std::to_string(i));
  }
  return static_cast<double>(positives) / kAbsent;
}

// The acceptance bound at test scale: each split-block variant's FPR stays
// within 2x its unblocked base at equal bits/key, measured over 100k absent
// keys (plus a small-sample noise floor, as in the bench gate).
TEST(SplitBlockFilterTest, FprWithinTwiceTheUnblockedBase) {
  TraceGenerator gen(0xfb10);
  const auto members = gen.DistinctFlowKeys(20000);
  FilterSpec spec = FilterSpec::ForKeys(members.size(), 12.0, 8);
  spec.max_count = 8;
  const double noise_floor = 8.0 / 100000;
  {
    const double base = MeasuredFpr("bloom", spec, members);
    const double split = MeasuredFpr("split_block_bloom", spec, members);
    EXPECT_LE(split, 2.0 * base + noise_floor)
        << "split_block_bloom " << split << " vs bloom " << base;
  }
  {
    const double base = MeasuredFpr("shbf_m", spec, members);
    const double split = MeasuredFpr("split_block_shbf_m", spec, members);
    EXPECT_LE(split, 2.0 * base + noise_floor)
        << "split_block_shbf_m " << split << " vs shbf_m " << base;
  }
}

// The engine's split-block fast path must answer exactly like the per-key
// loop under both dispatch modes, on BOTH sides of the cache-resident
// batch-size bypass — a small filter (group degraded to 1, no staging) and
// one sized past the 4 MiB threshold (staged prefetch groups) — and at
// both loop shapes: k = 8 stages probes (SplitBlockProbeLoop), k = 16
// reaches kFuseLanes and takes the fused MaskFromShifts group kernel
// (SplitBlockGroupLoop), which no other test selects.
TEST(SplitBlockFilterTest, EngineFastPathMatchesPerKeyAcrossBatchSizing) {
  const auto universe = Universe(0xe9f1);
  const auto& registry = FilterRegistry::Global();
  for (const char* name : {"split_block_bloom", "split_block_shbf_m"}) {
    for (uint32_t k : {8u, 16u}) {
      for (size_t num_cells : {size_t{12} * kNumKeys, size_t{48} << 20}) {
        SCOPED_TRACE(std::string(name) + " k=" + std::to_string(k) +
                     " cells=" + std::to_string(num_cells));
        FilterSpec spec = TestSpec(0xe9f1);
        spec.num_hashes = k;
        spec.num_cells = num_cells;  // 48 Mbit = 6 MB: past the bypass
        std::unique_ptr<MembershipFilter> filter;
        ASSERT_TRUE(registry.Create(name, spec, &filter).ok());
        for (size_t i = 0; i < kNumKeys; ++i) filter->Add(universe[i]);
        std::vector<uint8_t> expected(universe.size());
        for (size_t i = 0; i < universe.size(); ++i) {
          expected[i] = filter->Contains(universe[i]) ? 1 : 0;
        }
        BatchQueryEngine engine({.batch_size = 32});
        for (bool scalar : {false, true}) {
          SCOPED_TRACE(scalar ? "scalar" : "native");
          simd::ForceScalar(scalar);
          std::vector<uint8_t> batched;
          engine.ContainsBatch(*filter, universe, &batched);
          ASSERT_EQ(batched, expected);
        }
        simd::ForceScalar(false);
      }
    }
  }
}

TEST(SplitBlockFilterTest, NativeSerdeRoundTripsAnswerIdentically) {
  const auto universe = Universe(0x5e4de);
  {
    SplitBlockBloomFilter original({.num_bits = 1 << 16,
                                    .num_hashes = 6,
                                    .block_bits = 512,
                                    .sub_block_bits = 32});
    for (size_t i = 0; i < 1000; ++i) original.Add(universe[i]);
    std::optional<SplitBlockBloomFilter> restored;
    ASSERT_TRUE(
        SplitBlockBloomFilter::FromBytes(original.ToBytes(), &restored).ok());
    for (const auto& key : universe) {
      ASSERT_EQ(restored->Contains(key), original.Contains(key)) << key;
    }
  }
  {
    SplitBlockShbfM original({.num_bits = 1 << 16,
                              .num_hashes = 6,
                              .block_bits = 256,
                              .sub_block_bits = 64});
    for (size_t i = 0; i < 1000; ++i) original.Add(universe[i]);
    std::optional<SplitBlockShbfM> restored;
    ASSERT_TRUE(SplitBlockShbfM::FromBytes(original.ToBytes(), &restored)
                    .ok());
    for (const auto& key : universe) {
      ASSERT_EQ(restored->Contains(key), original.Contains(key)) << key;
    }
  }
}

TEST(SplitBlockFilterTest, RegistryEnvelopeRoundTripsAnswerIdentically) {
  const auto universe = Universe(0xe15e);
  const auto& registry = FilterRegistry::Global();
  for (const char* name : {"split_block_bloom", "split_block_shbf_m"}) {
    SCOPED_TRACE(name);
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(registry.Create(name, TestSpec(0xe15e), &filter).ok());
    for (size_t i = 0; i < kNumKeys; ++i) filter->Add(universe[i]);
    std::unique_ptr<MembershipFilter> restored;
    ASSERT_TRUE(
        registry.Deserialize(FilterRegistry::Serialize(*filter), &restored)
            .ok());
    for (const auto& key : universe) {
      ASSERT_EQ(restored->Contains(key), filter->Contains(key)) << key;
    }
  }
}

TEST(SplitBlockFilterTest, MergeIsSetUnion) {
  SplitBlockShbfM a({.num_bits = 1 << 16, .num_hashes = 6});
  SplitBlockShbfM b({.num_bits = 1 << 16, .num_hashes = 6});
  a.Add("only-a");
  b.Add("only-b");
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_TRUE(a.Contains("only-a"));
  EXPECT_TRUE(a.Contains("only-b"));

  SplitBlockShbfM mismatched({.num_bits = 1 << 16,
                              .num_hashes = 6,
                              .sub_block_bits = 32,
                              .max_offset_span = 16});
  EXPECT_FALSE(a.MergeFrom(mismatched).ok());

  SplitBlockBloomFilter c({.num_bits = 1 << 16, .num_hashes = 5});
  SplitBlockBloomFilter d({.num_bits = 1 << 16, .num_hashes = 5});
  c.Add("only-c");
  d.Add("only-d");
  ASSERT_TRUE(c.MergeFrom(d).ok());
  EXPECT_TRUE(c.Contains("only-c"));
  EXPECT_TRUE(c.Contains("only-d"));
}

// Envelope compatibility: a v4 blob (no sub_block_bits in its spec records)
// must still deserialize under the v5 reader. Crafted from a v5 replay
// blob of a spec-bearing adapter (shbf_x) by patching the version byte and
// excising the 4-byte sub_block_bits field the v4 writer never emitted.
TEST(SplitBlockFilterTest, V4EnvelopeWithoutSubBlockBitsStillLoads) {
  const auto& registry = FilterRegistry::Global();
  FilterSpec spec = TestSpec(0x4e4e);
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(registry.Create("shbf_x", spec, &filter).ok());
  std::vector<std::string> keys;
  for (int i = 0; i < 200; ++i) keys.push_back("v4-key-" + std::to_string(i));
  for (const auto& key : keys) filter->Add(key);
  filter->PrepareForConstReads();

  std::string blob = FilterRegistry::Serialize(*filter);
  // Envelope: U32 magic, U8 version, U32 name length, name, payload. The
  // payload opens with the spec record, whose sub_block_bits field sits 74
  // bytes in (after U64 + 7xU32 + U64 + 2xU32 + U64 + 2xU8 + U64 + U32).
  ASSERT_EQ(blob[4], 5);
  const size_t name_length = 6;  // "shbf_x"
  const size_t spec_start = 4 + 1 + 4 + name_length;
  const size_t sub_block_bits_offset = spec_start + 74;
  ASSERT_LE(sub_block_bits_offset + 4, blob.size());
  blob[4] = 4;
  blob.erase(sub_block_bits_offset, 4);

  std::unique_ptr<MembershipFilter> restored;
  Status s = registry.Deserialize(blob, &restored);
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (const auto& key : keys) {
    EXPECT_TRUE(restored->Contains(key)) << key;
  }
  EXPECT_FALSE(restored->Contains("v4-definitely-absent"));

  // Sanity: a version byte below the readable floor still fails cleanly.
  std::string ancient = FilterRegistry::Serialize(*filter);
  ancient[4] = 3;
  std::unique_ptr<MembershipFilter> rejected;
  EXPECT_FALSE(registry.Deserialize(ancient, &rejected).ok());
}

}  // namespace
}  // namespace shbf
