// The cache-blocked variants (blocked_bloom, blocked_shbf_m) trade a little
// FPR for one-cache-line queries; everything else about them must behave
// exactly like the rest of the catalog. Pinned here: block confinement (the
// one-access claim), no false negatives, registry + native serde round
// trips, engine answers identical under forced-scalar and native SIMD
// dispatch for EVERY registered filter, and the string_view batch overloads
// (engine, sharded wrapper, multi-set index) answering bit-identically to
// the string paths they shadow.

#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "api/filter_registry.h"
#include "api/set_catalog.h"
#include "baselines/blocked_bloom_filter.h"
#include "core/cpu_features.h"
#include "engine/batch_query_engine.h"
#include "engine/sharded_filter.h"
#include "multiset/multi_set_index.h"
#include "shbf/blocked_shbf_membership.h"
#include "trace/trace_generator.h"

namespace shbf {
namespace {

constexpr size_t kNumKeys = 3000;

FilterSpec TestSpec(uint64_t seed) {
  FilterSpec spec;
  spec.num_cells = 12 * kNumKeys;
  spec.num_hashes = 8;
  spec.expected_keys = kNumKeys;
  spec.max_count = 8;
  spec.seed = seed;
  return spec;
}

std::vector<std::string> Universe(uint64_t seed) {
  TraceGenerator gen(seed);
  return gen.DistinctFlowKeys(2 * kNumKeys);  // half members, half absent
}

TEST(BlockedShbfMTest, AllProbesStayInsideOneBlock) {
  for (uint32_t block_bits : {128u, 256u, 512u}) {
    BlockedShbfM filter({.num_bits = 1 << 20,
                         .num_hashes = 8,
                         .block_bits = block_bits});
    for (int i = 0; i < 2000; ++i) {
      const std::string key = "key-" + std::to_string(i);
      BlockedShbfM::Probe probe;
      filter.PrepareProbe(key, &probe);
      const size_t block_start =
          probe.bases[0] / block_bits * block_bits;
      for (uint32_t p = 0; p < filter.num_pairs(); ++p) {
        ASSERT_GE(probe.bases[p], block_start) << key;
        // The window read at a base spans max_offset_span bits; all of it
        // must land inside the block (the one-cache-line guarantee).
        ASSERT_LE(probe.bases[p] + filter.max_offset_span(),
                  block_start + block_bits)
            << key << " pair " << p;
      }
    }
  }
}

TEST(BlockedShbfMTest, StatsReportOneMemoryAccessPerQuery) {
  BlockedShbfM filter({.num_bits = 1 << 18, .num_hashes = 8});
  filter.Add("present");
  QueryStats stats;
  filter.ContainsWithStats("present", &stats);
  filter.ContainsWithStats("absent", &stats);
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.memory_accesses, 2u);  // one block per query
}

TEST(BlockedBloomTest, StatsReportOneMemoryAccessPerQuery) {
  BlockedBloomFilter filter({.num_bits = 1 << 18, .num_hashes = 8});
  filter.Add("present");
  QueryStats stats;
  filter.ContainsWithStats("present", &stats);
  filter.ContainsWithStats("absent", &stats);
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.memory_accesses, 2u);
}

// Differential check against the exact set: every member answers yes (no
// false negatives — the hard guarantee) and absent keys answer yes rarely
// (FPR sanity at 12 bits/key; generous bound, not the 2x acceptance gate,
// which the bench measures at scale).
TEST(BlockedFilterTest, DifferentialAgainstExactSet) {
  const auto universe = Universe(0xd1ff);
  for (const char* name : {"blocked_bloom", "blocked_shbf_m"}) {
    SCOPED_TRACE(name);
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(
        FilterRegistry::Global().Create(name, TestSpec(0xd1ff), &filter).ok());
    std::unordered_set<std::string> exact;
    for (size_t i = 0; i < kNumKeys; ++i) {
      filter->Add(universe[i]);
      exact.insert(universe[i]);
    }
    size_t false_positives = 0;
    for (const auto& key : universe) {
      const bool in_filter = filter->Contains(key);
      if (exact.count(key)) {
        ASSERT_TRUE(in_filter) << "false negative: " << key;
      } else if (in_filter) {
        ++false_positives;
      }
    }
    // 12 bits/key puts classic filters near 0.1–0.5% FPR; blocking costs
    // at most a small factor. 5% of the absent half = two orders of slack.
    EXPECT_LT(false_positives, kNumKeys / 20) << "FPR collapsed";
  }
}

TEST(BlockedFilterTest, NativeSerdeRoundTripsAnswerIdentically) {
  const auto universe = Universe(0x5e7de);
  {
    BlockedShbfM original({.num_bits = 1 << 16,
                           .num_hashes = 6,
                           .block_bits = 256});
    for (size_t i = 0; i < 1000; ++i) original.Add(universe[i]);
    std::optional<BlockedShbfM> restored;
    ASSERT_TRUE(BlockedShbfM::FromBytes(original.ToBytes(), &restored).ok());
    for (const auto& key : universe) {
      ASSERT_EQ(restored->Contains(key), original.Contains(key)) << key;
    }
  }
  {
    BlockedBloomFilter original({.num_bits = 1 << 16,
                                 .num_hashes = 5,
                                 .block_bits = 256});
    for (size_t i = 0; i < 1000; ++i) original.Add(universe[i]);
    std::optional<BlockedBloomFilter> restored;
    ASSERT_TRUE(
        BlockedBloomFilter::FromBytes(original.ToBytes(), &restored).ok());
    for (const auto& key : universe) {
      ASSERT_EQ(restored->Contains(key), original.Contains(key)) << key;
    }
  }
}

TEST(BlockedFilterTest, RegistryEnvelopeRoundTripsAnswerIdentically) {
  const auto universe = Universe(0xe14e);
  const auto& registry = FilterRegistry::Global();
  for (const char* name : {"blocked_bloom", "blocked_shbf_m"}) {
    SCOPED_TRACE(name);
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(registry.Create(name, TestSpec(0xe14e), &filter).ok());
    for (size_t i = 0; i < kNumKeys; ++i) filter->Add(universe[i]);
    std::unique_ptr<MembershipFilter> restored;
    ASSERT_TRUE(
        registry.Deserialize(FilterRegistry::Serialize(*filter), &restored)
            .ok());
    for (const auto& key : universe) {
      ASSERT_EQ(restored->Contains(key), filter->Contains(key)) << key;
    }
  }
}

TEST(BlockedFilterTest, MergeIsSetUnion) {
  BlockedShbfM a({.num_bits = 1 << 16, .num_hashes = 6});
  BlockedShbfM b({.num_bits = 1 << 16, .num_hashes = 6});
  a.Add("only-a");
  b.Add("only-b");
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_TRUE(a.Contains("only-a"));
  EXPECT_TRUE(a.Contains("only-b"));

  BlockedShbfM mismatched({.num_bits = 1 << 16,
                           .num_hashes = 6,
                           .block_bits = 256});
  EXPECT_FALSE(a.MergeFrom(mismatched).ok());
}

// The bit-identity acceptance gate: for every registered filter, the
// engine's batched answers must equal the per-key loop under BOTH dispatch
// modes — native SIMD and SHBF_FORCE_SCALAR-equivalent scalar demotion.
TEST(BlockedFilterTest, EngineMatchesPerKeyUnderBothDispatchModes) {
  const auto universe = Universe(0x51ca1);
  const auto& registry = FilterRegistry::Global();
  for (const auto& name : registry.Names()) {
    SCOPED_TRACE(name);
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(registry.Create(name, TestSpec(0x51ca1), &filter).ok());
    for (size_t i = 0; i < kNumKeys; ++i) filter->Add(universe[i]);
    std::vector<uint8_t> expected(universe.size());
    for (size_t i = 0; i < universe.size(); ++i) {
      expected[i] = filter->Contains(universe[i]) ? 1 : 0;
    }
    BatchQueryEngine engine({.batch_size = 32});
    for (bool scalar : {false, true}) {
      SCOPED_TRACE(scalar ? "scalar" : "native");
      simd::ForceScalar(scalar);
      std::vector<uint8_t> batched;
      engine.ContainsBatch(*filter, universe, &batched);
      ASSERT_EQ(batched, expected);
    }
    simd::ForceScalar(false);
  }
}

// The view overloads exist to kill survivor-key copies; they must not be
// able to change a single answer. One sweep pins engine, sharded wrapper
// and multi-set index view paths against their string counterparts.
TEST(BlockedFilterTest, StringViewBatchOverloadsMatchStringPaths) {
  const auto universe = Universe(0x71e11);
  std::vector<std::string_view> views(universe.begin(), universe.end());
  const auto& registry = FilterRegistry::Global();

  // Engine: every registered filter, both key containers.
  BatchQueryEngine engine({.batch_size = 32});
  for (const auto& name : registry.Names()) {
    SCOPED_TRACE(name);
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(registry.Create(name, TestSpec(0x71e11), &filter).ok());
    for (size_t i = 0; i < kNumKeys; ++i) filter->Add(universe[i]);
    std::vector<uint8_t> by_string, by_view;
    engine.ContainsBatch(*filter, universe, &by_string);
    engine.ContainsBatch(*filter, views, &by_view);
    ASSERT_EQ(by_view, by_string);
  }

  // Sharded wrapper: the view overload partitions and scatters like the
  // string one.
  FilterSpec sharded_spec = TestSpec(0x71e11);
  sharded_spec.shards = 4;
  std::unique_ptr<MembershipFilter> sharded;
  ASSERT_TRUE(registry.Create("blocked_shbf_m", sharded_spec, &sharded).ok());
  for (size_t i = 0; i < kNumKeys; ++i) sharded->Add(universe[i]);
  std::vector<uint8_t> by_string, by_view;
  sharded->ContainsBatch(universe, &by_string);
  sharded->ContainsBatch(views, &by_view);
  ASSERT_EQ(by_view, by_string);

  // Multi-set index: the view descent must produce the same bitmaps.
  SetCatalog catalog;
  for (int s = 0; s < 6; ++s) {
    std::unique_ptr<MembershipFilter> member;
    FilterSpec spec = FilterSpec::ForKeys(500, 64.0, 4);
    spec.max_count = 8;
    ASSERT_TRUE(registry.Create(s % 2 ? "bloom" : "shbf_m", spec, &member)
                    .ok());
    for (int k = 0; k < 500; ++k) {
      member->Add(universe[(s * 500 + k) % universe.size()]);
    }
    ASSERT_TRUE(
        catalog.AddSet("set-" + std::to_string(s), std::move(member)).ok());
  }
  std::unique_ptr<MultiSetIndex> index;
  ASSERT_TRUE(MultiSetIndex::Build(&catalog, {}, &index).ok());
  std::vector<SetIdBitmap> string_maps, view_maps;
  index->WhichSetsBatch(universe, &string_maps);
  index->WhichSetsBatch(views, &view_maps);
  ASSERT_EQ(view_maps.size(), string_maps.size());
  for (size_t i = 0; i < string_maps.size(); ++i) {
    ASSERT_EQ(view_maps[i], string_maps[i]) << "key " << i;
  }
}

}  // namespace
}  // namespace shbf
