// SetCatalog: stable ids across add/drop/rename, envelope round trips with
// nested registry blobs, and hostile-input rejection (truncations, count
// bombs, aliased ids) — the serde half of the multiset subsystem's
// robustness story (the index half lives in multi_set_index_test.cc).

#include "api/set_catalog.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/filter_registry.h"
#include "api/filter_spec.h"

namespace shbf {
namespace {

std::unique_ptr<MembershipFilter> MakeFilter(const std::string& name,
                                             size_t keys = 200) {
  FilterSpec spec = FilterSpec::ForKeys(keys, 12.0, 8);
  spec.max_count = 8;
  std::unique_ptr<MembershipFilter> filter;
  CheckOk(FilterRegistry::Global().Create(name, spec, &filter));
  return filter;
}

SetCatalog MakeCatalog(const std::vector<std::string>& names) {
  SetCatalog catalog;
  for (size_t i = 0; i < names.size(); ++i) {
    auto filter = MakeFilter("shbf_m");
    for (int k = 0; k < 50; ++k) {
      filter->Add(names[i] + "-key-" + std::to_string(k));
    }
    CheckOk(catalog.AddSet(names[i], std::move(filter)));
  }
  return catalog;
}

TEST(SetCatalogTest, IdsAreStableAndNeverReused) {
  SetCatalog catalog = MakeCatalog({"a", "b", "c"});
  EXPECT_EQ(catalog.Find("a")->id, 0u);
  EXPECT_EQ(catalog.Find("b")->id, 1u);
  EXPECT_EQ(catalog.Find("c")->id, 2u);
  EXPECT_EQ(catalog.id_bound(), 3u);

  ASSERT_TRUE(catalog.DropSet("b").ok());
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog.FindById(1), nullptr);

  uint32_t id = 0;
  ASSERT_TRUE(catalog.AddSet("d", MakeFilter("bloom"), &id).ok());
  EXPECT_EQ(id, 3u) << "dropped ids must stay dead";
  EXPECT_EQ(catalog.id_bound(), 4u);

  // Duplicate and missing names are surfaced as Status, not crashes.
  EXPECT_EQ(catalog.AddSet("a", MakeFilter("bloom")).code(),
            Status::Code::kAlreadyExists);
  EXPECT_EQ(catalog.DropSet("nope").code(), Status::Code::kNotFound);
  EXPECT_EQ(catalog.AddSet("", MakeFilter("bloom")).code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(catalog.AddSet("x", nullptr).code(),
            Status::Code::kInvalidArgument);
}

TEST(SetCatalogTest, RenameKeepsIdAndFilter) {
  SetCatalog catalog = MakeCatalog({"a", "b"});
  const MembershipFilter* filter = catalog.Find("a")->filter.get();
  ASSERT_TRUE(catalog.RenameSet("a", "alpha").ok());
  EXPECT_EQ(catalog.Find("a"), nullptr);
  ASSERT_NE(catalog.Find("alpha"), nullptr);
  EXPECT_EQ(catalog.Find("alpha")->id, 0u);
  EXPECT_EQ(catalog.Find("alpha")->filter.get(), filter);
  EXPECT_EQ(catalog.RenameSet("alpha", "b").code(),
            Status::Code::kAlreadyExists);
  EXPECT_EQ(catalog.RenameSet("nope", "x").code(), Status::Code::kNotFound);
  EXPECT_TRUE(catalog.RenameSet("b", "b").ok());
}

TEST(SetCatalogTest, RoundTripsThroughBytesWithMixedBackends) {
  SetCatalog catalog;
  for (const char* spec : {"shbf_m", "bloom", "cuckoo", "shbf_x"}) {
    auto filter = MakeFilter(spec);
    for (int k = 0; k < 100; ++k) {
      filter->Add(std::string(spec) + "-key-" + std::to_string(k));
    }
    CheckOk(catalog.AddSet(spec, std::move(filter)));
  }
  CheckOk(catalog.DropSet("bloom"));  // a hole in the id space round trips

  const std::string blob = catalog.Serialize();
  SetCatalog restored;
  ASSERT_TRUE(
      SetCatalog::Deserialize(blob, FilterRegistry::Global(), &restored)
          .ok());
  EXPECT_EQ(restored.size(), 3u);
  EXPECT_EQ(restored.id_bound(), catalog.id_bound());
  for (const char* spec : {"shbf_m", "cuckoo", "shbf_x"}) {
    const auto* entry = restored.Find(spec);
    ASSERT_NE(entry, nullptr) << spec;
    EXPECT_EQ(entry->id, catalog.Find(spec)->id);
    for (int k = 0; k < 100; ++k) {
      EXPECT_TRUE(entry->filter->Contains(std::string(spec) + "-key-" +
                                          std::to_string(k)))
          << spec << " lost key " << k;
    }
  }
  // New ids continue past the restored bound.
  uint32_t id = 0;
  ASSERT_TRUE(restored.AddSet("new", MakeFilter("bloom"), &id).ok());
  EXPECT_EQ(id, 4u);
}

TEST(SetCatalogTest, HostileBlobsReturnStatusNeverCrash) {
  SetCatalog catalog = MakeCatalog({"a", "b", "c"});
  const std::string blob = catalog.Serialize();
  const FilterRegistry& registry = FilterRegistry::Global();
  SetCatalog out;

  // Truncation at every prefix length must fail cleanly (the full blob is
  // the only valid prefix).
  for (size_t len = 0; len < blob.size(); ++len) {
    EXPECT_FALSE(SetCatalog::Deserialize(std::string_view(blob).substr(0, len),
                                         registry, &out)
                     .ok())
        << "prefix of " << len << " bytes was accepted";
  }

  // Trailing garbage is rejected too.
  EXPECT_FALSE(SetCatalog::Deserialize(blob + "x", registry, &out).ok());

  // Wrong magic / version byte.
  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  EXPECT_FALSE(SetCatalog::Deserialize(bad_magic, registry, &out).ok());
  std::string bad_version = blob;
  bad_version[4] = 99;
  Status s = SetCatalog::Deserialize(bad_version, registry, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("version"), std::string::npos);

  // Count bomb: a forged set count the input cannot satisfy must be
  // rejected before any allocation loop runs.
  std::string bombed = blob;
  for (int i = 0; i < 4; ++i) bombed[9 + i] = static_cast<char>(0xff);
  s = SetCatalog::Deserialize(bombed, registry, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("impossible"), std::string::npos);

  // Corrupting a nested filter envelope surfaces the registry's own
  // diagnosis wrapped in the set's name.
  std::string bad_nested = blob;
  // First record starts at offset 13: id u32 + name length u32 + "a" +
  // blob length u32; the nested envelope magic sits right after.
  const size_t nested_magic = 13 + 4 + 4 + 1 + 4;
  bad_nested[nested_magic] = 'Z';
  s = SetCatalog::Deserialize(bad_nested, registry, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("'a'"), std::string::npos);
}

TEST(SetCatalogTest, ForgedIdBoundIsRejected) {
  // id_bound() sizes every SetIdBitmap the index allocates per answer, so
  // a blob forging a huge next_id (with otherwise-valid records) is a
  // memory-amplification bomb and must be rejected outright.
  SetCatalog catalog = MakeCatalog({"a"});
  std::string blob = catalog.Serialize();
  for (int i = 0; i < 4; ++i) blob[5 + i] = static_cast<char>(0xfe);
  SetCatalog out;
  Status s = SetCatalog::Deserialize(blob, FilterRegistry::Global(), &out);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("id-space limit"), std::string::npos)
      << s.ToString();
}

TEST(SetCatalogTest, AliasedOrOutOfOrderIdsAreRejected) {
  SetCatalog catalog = MakeCatalog({"a", "b"});
  std::string blob = catalog.Serialize();
  // Record 0's id field (offset 13): forge it to 1 so it collides with
  // record 1 / breaks the strictly-increasing invariant.
  blob[13] = 1;
  SetCatalog out;
  Status s = SetCatalog::Deserialize(blob, FilterRegistry::Global(), &out);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("out-of-order"), std::string::npos);
}

}  // namespace
}  // namespace shbf
