#include "baselines/cuckoo_filter.h"

#include <gtest/gtest.h>

#include "trace/workload.h"

namespace shbf {
namespace {

CuckooFilter::Params BaseParams(size_t buckets = 4096) {
  return {.num_buckets = buckets, .fingerprint_bits = 12};
}

TEST(CuckooFilterTest, ParamsValidation) {
  auto p = BaseParams();
  EXPECT_TRUE(p.Validate().ok());
  p.bucket_size = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = BaseParams();
  p.fingerprint_bits = 2;
  EXPECT_FALSE(p.Validate().ok());
  p = BaseParams();
  p.num_buckets = 0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(CuckooFilterTest, RoundsBucketsToPowerOfTwo) {
  CuckooFilter cf(BaseParams(1000));
  EXPECT_EQ(cf.num_buckets(), 1024u);
}

TEST(CuckooFilterTest, InsertContainsDelete) {
  CuckooFilter cf(BaseParams());
  EXPECT_TRUE(cf.Insert("alpha"));
  EXPECT_TRUE(cf.Contains("alpha"));
  EXPECT_FALSE(cf.Contains("beta"));
  EXPECT_TRUE(cf.Delete("alpha"));
  EXPECT_FALSE(cf.Contains("alpha"));
  EXPECT_FALSE(cf.Delete("alpha"));  // already gone
}

TEST(CuckooFilterTest, NoFalseNegativesAtModerateLoad) {
  auto w = MakeMembershipWorkload(12000, 0, 83);  // ~73% load at 4096×4
  CuckooFilter cf(BaseParams());
  for (const auto& key : w.members) ASSERT_TRUE(cf.Insert(key)) << "unexpected full";
  for (const auto& key : w.members) ASSERT_TRUE(cf.Contains(key));
}

TEST(CuckooFilterTest, LowFalsePositiveRateWith12BitFingerprints) {
  auto w = MakeMembershipWorkload(12000, 100000, 89);
  CuckooFilter cf(BaseParams());
  for (const auto& key : w.members) cf.Insert(key);
  size_t fp = 0;
  for (const auto& key : w.non_members) fp += cf.Contains(key);
  // ε ≈ 2b/2^f = 8/4096 ≈ 0.002 at this load.
  EXPECT_LT(static_cast<double>(fp) / w.non_members.size(), 0.01);
}

TEST(CuckooFilterTest, FillToFailureThenVictimStaysVisible) {
  // The paper (§2.1) flags the "non-negligible probability of failing when
  // inserting"; drive a tiny filter to that failure.
  CuckooFilter cf({.num_buckets = 16, .bucket_size = 4, .fingerprint_bits = 8});
  auto w = MakeMembershipWorkload(200, 0, 97);
  std::vector<std::string> inserted;
  bool failed = false;
  for (const auto& key : w.members) {
    if (cf.Insert(key)) {
      inserted.push_back(key);
    } else {
      failed = true;
      break;
    }
  }
  ASSERT_TRUE(failed) << "a 64-slot filter must reject 200 inserts";
  EXPECT_TRUE(cf.HasVictim());
  // Every successfully inserted key must still be visible (stash included).
  for (const auto& key : inserted) {
    EXPECT_TRUE(cf.Contains(key)) << "false negative after failed insert";
  }
  // Once full, further inserts keep failing...
  EXPECT_FALSE(cf.Insert("one-more"));
  // ...until deletes make room again. The victim stash empties only when a
  // freed slot lands in one of its two buckets, so drain a few keys.
  bool inserted_again = false;
  for (size_t i = 0; i < inserted.size() && !inserted_again; ++i) {
    ASSERT_TRUE(cf.Delete(inserted[i]));
    inserted_again = cf.Insert("one-more");
  }
  EXPECT_TRUE(inserted_again);
}

TEST(CuckooFilterTest, HighLoadFactorAchievable) {
  // (2,4)-cuckoo with 500 kicks sustains ~95% occupancy.
  CuckooFilter cf(BaseParams(1024));
  auto w = MakeMembershipWorkload(4096, 0, 101);
  size_t inserted = 0;
  for (const auto& key : w.members) {
    if (!cf.Insert(key)) break;
    ++inserted;
  }
  EXPECT_GT(cf.LoadFactor(), 0.90) << "inserted " << inserted;
}

TEST(CuckooFilterTest, DeleteOnlyRemovesOneCopy) {
  CuckooFilter cf(BaseParams());
  cf.Insert("dup");
  cf.Insert("dup");
  EXPECT_TRUE(cf.Delete("dup"));
  EXPECT_TRUE(cf.Contains("dup"));
  EXPECT_TRUE(cf.Delete("dup"));
  EXPECT_FALSE(cf.Contains("dup"));
}

TEST(CuckooFilterTest, StatsAtMostTwoBucketAccesses) {
  CuckooFilter cf(BaseParams());
  cf.Insert("member");
  QueryStats stats;
  cf.ContainsWithStats("member", &stats);
  cf.ContainsWithStats("missing", &stats);
  EXPECT_LE(stats.memory_accesses, 4u);
  EXPECT_GE(stats.memory_accesses, 3u);  // hit may stop at 1; miss reads 2
}

TEST(CuckooFilterTest, NumItemsTracksInsertsAndDeletes) {
  CuckooFilter cf(BaseParams());
  cf.Insert("a");
  cf.Insert("b");
  EXPECT_EQ(cf.num_items(), 2u);
  cf.Delete("a");
  EXPECT_EQ(cf.num_items(), 1u);
}

TEST(CuckooFilterTest, SerdeRoundTripPreservesAnswers) {
  CuckooFilter cf({.num_buckets = 256, .fingerprint_bits = 12});
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(cf.Insert("key-" + std::to_string(i)));
  }
  std::optional<CuckooFilter> restored;
  ASSERT_TRUE(CuckooFilter::FromBytes(cf.ToBytes(), &restored).ok());
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(restored->Contains("key-" + std::to_string(i)));
  }
  for (int i = 0; i < 2000; ++i) {
    std::string probe = "absent-" + std::to_string(i);
    EXPECT_EQ(cf.Contains(probe), restored->Contains(probe));
  }
  EXPECT_EQ(restored->num_items(), cf.num_items());
}

TEST(CuckooFilterTest, FromBytesRejectsOutOfRangeVictim) {
  CuckooFilter cf({.num_buckets = 256, .fingerprint_bits = 12});
  cf.Insert("payload");
  std::string blob = cf.ToBytes();
  // Blob layout: 6-byte header, num_buckets u64, bucket_size u32,
  // fingerprint_bits u32, max_kicks u32, alg u8, seed u64, num_items u64
  // → victim_used at offset 43, victim_index at 44..51.
  ASSERT_GT(blob.size(), 60u);
  blob[43] = 1;                                      // victim_used = true
  for (int i = 44; i < 52; ++i) blob[i] = '\xff';    // index = 2^64 − 1
  blob[52] = 1;                                      // fingerprint = 1
  std::optional<CuckooFilter> restored;
  EXPECT_FALSE(CuckooFilter::FromBytes(blob, &restored).ok())
      << "accepted a victim index far past the bucket array";
}

}  // namespace
}  // namespace shbf
