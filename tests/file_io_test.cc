// core/file_io contract tests: round trips, error Statuses that name the
// path, and — the part that only shows up when a disk fills — short writes
// surfacing as kResourceExhausted instead of a silently truncated file.
// ENOSPC is injected two ways: RLIMIT_FSIZE (a size-capped process makes
// write(2) past the cap fail with EFBIG, same Status family) and /dev/full
// where the platform provides it.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "core/file_io.h"

namespace shbf {
namespace {

TEST(FileIoTest, RoundTripsBinaryBytes) {
  const std::string path = ::testing::TempDir() + "/file_io_roundtrip.bin";
  std::string bytes;
  for (int i = 0; i < 4096; ++i) bytes.push_back(static_cast<char>(i * 31));
  bytes[100] = '\0';  // embedded NUL must survive
  ASSERT_TRUE(WriteStringToFile(path, bytes).ok());
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, bytes);
  std::remove(path.c_str());
}

TEST(FileIoTest, OverwriteReplacesNotAppends) {
  const std::string path = ::testing::TempDir() + "/file_io_overwrite.bin";
  ASSERT_TRUE(WriteStringToFile(path, std::string(1000, 'a')).ok());
  ASSERT_TRUE(WriteStringToFile(path, "short").ok());
  std::string back;
  ASSERT_TRUE(ReadFileToString(path, &back).ok());
  EXPECT_EQ(back, "short");
  std::remove(path.c_str());
}

TEST(FileIoTest, MissingFileNamesThePath) {
  std::string out;
  Status s = ReadFileToString("/nonexistent/dir/nothing.bin", &out);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("/nonexistent/dir/nothing.bin"),
            std::string::npos);
}

TEST(FileIoTest, UnwritableTargetNamesThePath) {
  Status s = WriteStringToFile("/nonexistent/dir/out.bin", "bytes");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("/nonexistent/dir/out.bin"), std::string::npos);
}

TEST(FileIoTest, DirectoryOfSplitsPaths) {
  EXPECT_EQ(DirectoryOf("/a/b/c.bin"), "/a/b");
  EXPECT_EQ(DirectoryOf("/c.bin"), "/");
  EXPECT_EQ(DirectoryOf("c.bin"), ".");
}

TEST(FileIoTest, SyncDirectoryAcceptsRealDirectoriesOnly) {
  EXPECT_TRUE(SyncDirectory(::testing::TempDir()).ok());
  EXPECT_FALSE(SyncDirectory("/nonexistent/dir").ok());
}

TEST(FileIoTest, SizeCappedProcessReportsResourceExhaustion) {
  // RLIMIT_FSIZE injection, in a child so the parent's own file I/O stays
  // uncapped: cap file size at 8 KB, attempt a 64 KB write, and require a
  // kResourceExhausted-family failure that names the path — NOT an OK with
  // a truncated file on disk.
  const std::string path = ::testing::TempDir() + "/file_io_capped.bin";
  std::remove(path.c_str());
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // write(2) past the cap delivers SIGXFSZ before failing with EFBIG;
    // ignore the signal so the error surfaces through errno.
    signal(SIGXFSZ, SIG_IGN);
    struct rlimit cap{.rlim_cur = 8192, .rlim_max = 8192};
    if (setrlimit(RLIMIT_FSIZE, &cap) != 0) _exit(20);
    Status s = WriteStringToFile(path, std::string(65536, 'x'));
    if (s.ok()) _exit(21);  // silent truncation: the bug this test exists for
    if (s.code() != Status::Code::kResourceExhausted) _exit(22);
    if (s.message().find(path) == std::string::npos) _exit(23);
    _exit(0);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0)
      << "child exit " << WEXITSTATUS(status)
      << " (21 = silent truncation, 22 = wrong code, 23 = path missing)";
  std::remove(path.c_str());
}

TEST(FileIoTest, DevFullReportsResourceExhaustion) {
  // /dev/full fails every write with ENOSPC; skip on platforms without it.
  if (access("/dev/full", W_OK) != 0) {
    GTEST_SKIP() << "/dev/full not available";
  }
  Status s = WriteStringToFile("/dev/full", "bytes");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kResourceExhausted) << s.ToString();
}

}  // namespace
}  // namespace shbf
