#include "core/set_query_types.h"

#include <gtest/gtest.h>

namespace shbf {
namespace {

TEST(AssociationOutcomeTest, ClearAnswersAreExactlyOutcomes1To3) {
  EXPECT_TRUE(IsClearAnswer(AssociationOutcome::kS1Only));
  EXPECT_TRUE(IsClearAnswer(AssociationOutcome::kIntersection));
  EXPECT_TRUE(IsClearAnswer(AssociationOutcome::kS2Only));
  EXPECT_FALSE(IsClearAnswer(AssociationOutcome::kS1UnsureS2));
  EXPECT_FALSE(IsClearAnswer(AssociationOutcome::kS2UnsureS1));
  EXPECT_FALSE(IsClearAnswer(AssociationOutcome::kExclusiveEither));
  EXPECT_FALSE(IsClearAnswer(AssociationOutcome::kUnknown));
  EXPECT_FALSE(IsClearAnswer(AssociationOutcome::kNotFound));
}

TEST(AssociationOutcomeTest, ClearOutcomesMatchOnlyTheirTruth) {
  for (auto truth :
       {AssociationTruth::kS1Only, AssociationTruth::kIntersection,
        AssociationTruth::kS2Only}) {
    EXPECT_EQ(
        OutcomeConsistentWithTruth(AssociationOutcome::kS1Only, truth),
        truth == AssociationTruth::kS1Only);
    EXPECT_EQ(
        OutcomeConsistentWithTruth(AssociationOutcome::kIntersection, truth),
        truth == AssociationTruth::kIntersection);
    EXPECT_EQ(
        OutcomeConsistentWithTruth(AssociationOutcome::kS2Only, truth),
        truth == AssociationTruth::kS2Only);
  }
}

TEST(AssociationOutcomeTest, PartialOutcomesCoverTheirTwoCases) {
  // Outcome 4: "in S1, unsure about S2" — consistent with S1-only and both.
  EXPECT_TRUE(OutcomeConsistentWithTruth(AssociationOutcome::kS1UnsureS2,
                                         AssociationTruth::kS1Only));
  EXPECT_TRUE(OutcomeConsistentWithTruth(AssociationOutcome::kS1UnsureS2,
                                         AssociationTruth::kIntersection));
  EXPECT_FALSE(OutcomeConsistentWithTruth(AssociationOutcome::kS1UnsureS2,
                                          AssociationTruth::kS2Only));
  // Outcome 6: "one of the exclusive parts".
  EXPECT_TRUE(OutcomeConsistentWithTruth(AssociationOutcome::kExclusiveEither,
                                         AssociationTruth::kS1Only));
  EXPECT_FALSE(OutcomeConsistentWithTruth(
      AssociationOutcome::kExclusiveEither, AssociationTruth::kIntersection));
}

TEST(AssociationOutcomeTest, UnknownConsistentWithEverythingNotFoundWithNothing) {
  for (auto truth :
       {AssociationTruth::kS1Only, AssociationTruth::kIntersection,
        AssociationTruth::kS2Only}) {
    EXPECT_TRUE(
        OutcomeConsistentWithTruth(AssociationOutcome::kUnknown, truth));
    EXPECT_FALSE(
        OutcomeConsistentWithTruth(AssociationOutcome::kNotFound, truth));
  }
}

TEST(AssociationOutcomeTest, NamesAreStableAndDistinct) {
  EXPECT_STREQ(AssociationOutcomeName(AssociationOutcome::kS1Only),
               "S1-only");
  EXPECT_STREQ(AssociationOutcomeName(AssociationOutcome::kIntersection),
               "intersection");
  EXPECT_STREQ(AssociationOutcomeName(AssociationOutcome::kNotFound),
               "not-found");
  EXPECT_STRNE(AssociationOutcomeName(AssociationOutcome::kS1UnsureS2),
               AssociationOutcomeName(AssociationOutcome::kS2UnsureS1));
}

TEST(AssociationOutcomeTest, EnumValuesFollowThePapersNumbering) {
  // §4.2 numbers the outcomes 1..7; the enum must track that for reports.
  EXPECT_EQ(static_cast<int>(AssociationOutcome::kS1Only), 1);
  EXPECT_EQ(static_cast<int>(AssociationOutcome::kIntersection), 2);
  EXPECT_EQ(static_cast<int>(AssociationOutcome::kS2Only), 3);
  EXPECT_EQ(static_cast<int>(AssociationOutcome::kS1UnsureS2), 4);
  EXPECT_EQ(static_cast<int>(AssociationOutcome::kS2UnsureS1), 5);
  EXPECT_EQ(static_cast<int>(AssociationOutcome::kExclusiveEither), 6);
  EXPECT_EQ(static_cast<int>(AssociationOutcome::kUnknown), 7);
}

}  // namespace
}  // namespace shbf
