#include "core/packed_counter_array.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace shbf {
namespace {

TEST(PackedCounterArrayTest, StartsZero) {
  PackedCounterArray counters(100, 4);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(counters.Get(i), 0u);
  EXPECT_EQ(counters.CountZero(), 100u);
}

TEST(PackedCounterArrayTest, MaxValueByWidth) {
  EXPECT_EQ(PackedCounterArray(10, 1).max_value(), 1u);
  EXPECT_EQ(PackedCounterArray(10, 4).max_value(), 15u);
  EXPECT_EQ(PackedCounterArray(10, 6).max_value(), 63u);
  EXPECT_EQ(PackedCounterArray(10, 32).max_value(), 0xffffffffull);
}

TEST(PackedCounterArrayTest, SetGetRoundTrip) {
  PackedCounterArray counters(64, 6);
  counters.Set(0, 63);
  counters.Set(1, 1);
  counters.Set(63, 42);
  EXPECT_EQ(counters.Get(0), 63u);
  EXPECT_EQ(counters.Get(1), 1u);
  EXPECT_EQ(counters.Get(63), 42u);
  // Neighbors untouched.
  EXPECT_EQ(counters.Get(2), 0u);
  EXPECT_EQ(counters.Get(62), 0u);
}

TEST(PackedCounterArrayTest, IncrementAndDecrement) {
  PackedCounterArray counters(8, 4);
  EXPECT_TRUE(counters.Increment(3));
  EXPECT_TRUE(counters.Increment(3));
  EXPECT_EQ(counters.Get(3), 2u);
  counters.Decrement(3);
  EXPECT_EQ(counters.Get(3), 1u);
  counters.Decrement(3);
  EXPECT_EQ(counters.Get(3), 0u);
}

TEST(PackedCounterArrayTest, SaturationSticksAndDecrementIgnoresStuck) {
  PackedCounterArray counters(4, 2);  // max value 3
  EXPECT_TRUE(counters.Increment(0));
  EXPECT_TRUE(counters.Increment(0));
  EXPECT_FALSE(counters.Increment(0));  // reaches 3 = saturated
  EXPECT_EQ(counters.Get(0), 3u);
  EXPECT_FALSE(counters.Increment(0));  // still stuck
  EXPECT_EQ(counters.Get(0), 3u);
  counters.Decrement(0);  // stuck counters are never decremented
  EXPECT_EQ(counters.Get(0), 3u);
  EXPECT_GE(counters.saturation_events(), 2u);
}

TEST(PackedCounterArrayDeathTest, UnderflowIsACallerBug) {
  PackedCounterArray counters(4, 4);
  EXPECT_DEATH(counters.Decrement(0), "underflow");
}

TEST(PackedCounterArrayTest, ClearResets) {
  PackedCounterArray counters(16, 5);
  counters.Set(7, 31);
  counters.Clear();
  EXPECT_EQ(counters.Get(7), 0u);
  EXPECT_EQ(counters.saturation_events(), 0u);
}

// Counters whose bit ranges straddle 64-bit word boundaries must still
// read/write exactly.
TEST(PackedCounterArrayTest, WordStraddlingCounters) {
  // 6-bit counters: counter 10 occupies bits [60, 66) — straddles words.
  PackedCounterArray counters(24, 6);
  counters.Set(10, 0x2a);
  EXPECT_EQ(counters.Get(10), 0x2au);
  EXPECT_EQ(counters.Get(9), 0u);
  EXPECT_EQ(counters.Get(11), 0u);
  counters.Set(9, 63);
  counters.Set(11, 63);
  EXPECT_EQ(counters.Get(10), 0x2au);
}

class PackedCounterWidthTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PackedCounterWidthTest, RandomRoundTripAgainstShadow) {
  const uint32_t bits = GetParam();
  const size_t n = 257;  // odd size exercises the final partial word
  PackedCounterArray counters(n, bits);
  std::vector<uint64_t> shadow(n, 0);
  Rng rng(bits * 7919);
  for (int step = 0; step < 5000; ++step) {
    size_t i = rng.NextBelow(n);
    uint64_t v = rng.NextBelow(counters.max_value() + 1);
    counters.Set(i, v);
    shadow[i] = v;
  }
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(counters.Get(i), shadow[i]) << "counter " << i;
  }
}

TEST_P(PackedCounterWidthTest, IncrementMatchesShadow) {
  const uint32_t bits = GetParam();
  const size_t n = 100;
  PackedCounterArray counters(n, bits);
  std::vector<uint64_t> shadow(n, 0);
  Rng rng(bits * 104729);
  for (int step = 0; step < 3000; ++step) {
    size_t i = rng.NextBelow(n);
    counters.Increment(i);
    if (shadow[i] < counters.max_value()) ++shadow[i];
  }
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(counters.Get(i), shadow[i]) << "counter " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, PackedCounterWidthTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 17,
                                           24, 31, 32));

}  // namespace
}  // namespace shbf
