#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/rng.h"
#include "hash/bob_hash.h"
#include "hash/fnv.h"
#include "hash/hash_family.h"
#include "hash/murmur3.h"

namespace shbf {
namespace {

std::vector<std::string> SampleKeys(size_t count, size_t len, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) keys.push_back(rng.NextBytes(len));
  return keys;
}

// --- determinism / seed sensitivity, one suite per algorithm -----------------

class HashAlgorithmTest : public ::testing::TestWithParam<HashAlgorithm> {};

TEST_P(HashAlgorithmTest, DeterministicForSameInput) {
  HashFamily family(GetParam(), 4, 99);
  for (const std::string& key : SampleKeys(50, 13, 7)) {
    EXPECT_EQ(family.Hash(0, key), family.Hash(0, key));
  }
}

TEST_P(HashAlgorithmTest, FunctionIndicesAreIndependent) {
  HashFamily family(GetParam(), 8, 99);
  std::string key = "independence-check";
  std::set<uint64_t> values;
  for (uint32_t i = 0; i < 8; ++i) values.insert(family.Hash(i, key));
  // All 8 functions should produce distinct values on one key.
  EXPECT_EQ(values.size(), 8u);
}

TEST_P(HashAlgorithmTest, SeedChangesOutput) {
  HashFamily a(GetParam(), 1, 1);
  HashFamily b(GetParam(), 1, 2);
  int collisions = 0;
  for (const std::string& key : SampleKeys(100, 13, 11)) {
    collisions += (a.Hash(0, key) == b.Hash(0, key));
  }
  EXPECT_LE(collisions, 1);
}

TEST_P(HashAlgorithmTest, AllKeyLengthsHashWithoutCrashing) {
  HashFamily family(GetParam(), 1, 5);
  Rng rng(3);
  for (size_t len = 0; len <= 64; ++len) {
    std::string key = rng.NextBytes(len);
    family.Hash(0, key);  // must not over-read; ASAN-able
  }
}

TEST_P(HashAlgorithmTest, SingleBitFlipChangesHash) {
  HashFamily family(GetParam(), 1, 5);
  std::string key(13, '\0');
  uint64_t base = family.Hash(0, key);
  int unchanged = 0;
  for (size_t byte = 0; byte < key.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = key;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      unchanged += (family.Hash(0, flipped) == base);
    }
  }
  EXPECT_EQ(unchanged, 0);
}

TEST_P(HashAlgorithmTest, FewCollisionsOnDistinctKeys) {
  HashFamily family(GetParam(), 1, 77);
  std::set<uint64_t> values;
  auto keys = SampleKeys(20000, 13, 13);
  for (const std::string& key : keys) values.insert(family.Hash(0, key));
  // 32-bit algorithms may see a handful of birthday collisions at 20k keys;
  // 64-bit ones essentially none.
  size_t min_distinct =
      HashAlgorithmBits(GetParam()) == 32 ? keys.size() - 10 : keys.size();
  EXPECT_GE(values.size(), min_distinct);
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, HashAlgorithmTest,
    ::testing::Values(HashAlgorithm::kMurmur3, HashAlgorithm::kBobLookup3,
                      HashAlgorithm::kBobLookup2, HashAlgorithm::kFnv1a),
    [](const auto& info) { return HashAlgorithmName(info.param); });

// --- algorithm-specific checks ------------------------------------------------

TEST(HashFamilyTest, NamesAndBits) {
  EXPECT_STREQ(HashAlgorithmName(HashAlgorithm::kMurmur3), "murmur3");
  EXPECT_STREQ(HashAlgorithmName(HashAlgorithm::kBobLookup2), "lookup2");
  EXPECT_STREQ(HashAlgorithmName(HashAlgorithm::kBobLookup3), "lookup3");
  EXPECT_STREQ(HashAlgorithmName(HashAlgorithm::kFnv1a), "fnv1a");
  EXPECT_EQ(HashAlgorithmBits(HashAlgorithm::kBobLookup2), 32u);
  EXPECT_EQ(HashAlgorithmBits(HashAlgorithm::kMurmur3), 64u);
}

TEST(HashFamilyTest, MasterSeedExpansionIsStable) {
  HashFamily a(HashAlgorithm::kMurmur3, 3, 42);
  HashFamily b(HashAlgorithm::kMurmur3, 3, 42);
  EXPECT_EQ(a.Hash(2, "stable"), b.Hash(2, "stable"));
  EXPECT_EQ(a.master_seed(), 42u);
  EXPECT_EQ(a.num_functions(), 3u);
}

TEST(Murmur3Test, MatchesReferenceVector) {
  // Reference: MurmurHash3_x64_128("hello", seed=0) =
  // cbd8a7b341bd9b02 5b1e906a48ae1d19 (high/low from Appleby's smhasher).
  auto [low, high] = Murmur3_128("hello", 5, 0);
  EXPECT_EQ(low, 0xcbd8a7b341bd9b02ull);
  EXPECT_EQ(high, 0x5b1e906a48ae1d19ull);
}

TEST(Murmur3Test, EmptyInputSeedZero) {
  auto [low, high] = Murmur3_128("", 0, 0);
  EXPECT_EQ(low, 0u);
  EXPECT_EQ(high, 0u);
}

TEST(Murmur3Test, HalvesAreIndependent) {
  Rng rng(8);
  size_t equal = 0;
  for (int i = 0; i < 2000; ++i) {
    std::string key = rng.NextBytes(13);
    auto [low, high] = Murmur3_128(key.data(), key.size(), 7);
    equal += (low == high);
  }
  EXPECT_EQ(equal, 0u);
}

TEST(Murmur3Test, AllTailLengthsChangeTheHash) {
  // The 15-way tail switch: appending one byte must change the result for
  // every residue of len mod 16.
  std::string key;
  uint64_t prev = Murmur3_64(key.data(), key.size(), 1);
  for (int i = 1; i <= 33; ++i) {
    key.push_back('a');
    uint64_t h = Murmur3_64(key.data(), key.size(), 1);
    EXPECT_NE(h, prev) << "length " << i;
    prev = h;
  }
}

TEST(BobHashTest, Lookup2MatchesSelfAcrossChunkBoundaries) {
  // 12-byte blocks: lengths 11, 12, 13 exercise the tail switch.
  for (size_t len : {0u, 1u, 4u, 8u, 11u, 12u, 13u, 23u, 24u, 25u}) {
    std::string key(len, 'x');
    uint32_t h1 = BobLookup2(key, 1);
    uint32_t h2 = BobLookup2(key, 1);
    EXPECT_EQ(h1, h2) << len;
  }
}

TEST(BobHashTest, Lookup3ProducesTwoIndependentHalves) {
  auto keys = SampleKeys(5000, 13, 21);
  size_t equal_halves = 0;
  for (const std::string& key : keys) {
    uint64_t h = BobLookup3(key, 9);
    equal_halves += (static_cast<uint32_t>(h) == static_cast<uint32_t>(h >> 32));
  }
  EXPECT_LE(equal_halves, 2u);
}

TEST(FnvTest, MatchesUnseededFnvPrefixProperty) {
  // Same input, same seed → equal; differing final byte → different.
  EXPECT_EQ(Fnv1a64("abc", 3, 0), Fnv1a64("abc", 3, 0));
  EXPECT_NE(Fnv1a64("abc", 3, 0), Fnv1a64("abd", 3, 0));
}

}  // namespace
}  // namespace shbf
