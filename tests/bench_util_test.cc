#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "bench_util/csv.h"
#include "bench_util/table.h"
#include "bench_util/timer.h"

namespace shbf {
namespace {

// --- TablePrinter --------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumnsAndDrawsRule) {
  TablePrinter table({"k", "value"});
  table.AddRow({"1", "short"});
  table.AddRow({"100", "x"});
  std::string out = table.ToString();
  EXPECT_EQ(out,
            "k    value\n"
            "----------\n"
            "1    short\n"
            "100  x\n");
}

TEST(TablePrinterTest, MissingCellsRenderEmptyExtrasDropped) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1"});
  table.AddRow({"1", "2", "3"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("1  2"), std::string::npos);
  EXPECT_EQ(out.find("3"), std::string::npos);
}

TEST(TablePrinterTest, NumAndSciFormatting) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Sci(0.000123, 2), "1.23e-04");
}

// --- CsvWriter -----------------------------------------------------------------

TEST(CsvWriterTest, WritesHeaderAndEscapedRows) {
  std::string path = ::testing::TempDir() + "/shbf_csv_test.csv";
  {
    CsvWriter csv;
    ASSERT_TRUE(CsvWriter::Open(path, {"k", "name"}, &csv).ok());
    csv.AddRow({"1", "plain"});
    csv.AddRow({"2", "with,comma"});
    csv.AddRow({"3", "with\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,name");
  std::getline(in, line);
  EXPECT_EQ(line, "1,plain");
  std::getline(in, line);
  EXPECT_EQ(line, "2,\"with,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "3,\"with\"\"quote\"");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, OpenFailsOnBadPath) {
  CsvWriter csv;
  EXPECT_FALSE(
      CsvWriter::Open("/nonexistent-dir/x.csv", {"a"}, &csv).ok());
}

// --- timers ---------------------------------------------------------------------

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  volatile uint64_t spin = 0;
  for (int i = 0; i < 2000000; ++i) spin += i;
  double elapsed = timer.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.0);
  EXPECT_LT(elapsed, 10.0);
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), elapsed + 1.0);
}

TEST(MopsTest, ComputesMillionsPerSecond) {
  EXPECT_DOUBLE_EQ(Mops(2000000, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(Mops(500000, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(Mops(100, 0.0), 0.0);  // guards divide-by-zero
}

}  // namespace
}  // namespace shbf
