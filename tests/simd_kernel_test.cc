// The SIMD probe kernels (core/simd.h) are an execution strategy, never a
// semantic change: every dispatched entry point must match its scalar
// reference bit for bit on random inputs, at every length (the vector
// bodies have 4-lane / 2-lane main loops plus scalar tails — odd lengths
// exercise both), and the ForceScalar override must actually demote the
// dispatcher. PackedCounterArray::GetMany is pinned against Get the same
// way, since the sketches' query paths now run through it.

#include "core/simd.h"

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/cpu_features.h"
#include "core/packed_counter_array.h"

namespace shbf {
namespace {

/// Runs `body` twice: once with the dispatcher free to pick the hardware
/// path, once pinned to scalar. Restores the override afterwards.
template <typename Body>
void UnderBothDispatchModes(const Body& body) {
  simd::ForceScalar(false);
  body();
  simd::ForceScalar(true);
  body();
  simd::ForceScalar(false);
}

TEST(SimdKernelTest, ForceScalarDemotesTheDispatcher) {
  simd::ForceScalar(true);
  EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  simd::ForceScalar(false);
  EXPECT_EQ(simd::ActiveLevel(), simd::DetectedLevel());
}

TEST(SimdKernelTest, MaskTestManyMatchesScalarAtEveryLength) {
  std::mt19937_64 rng(0x51bd1);
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{7},
                   size_t{8}, size_t{33}, size_t{257}}) {
    std::vector<uint64_t> words(n), needs(n);
    for (size_t i = 0; i < n; ++i) {
      words[i] = rng();
      // Half the lanes get a guaranteed-subset need (a hit), half a random
      // two-bit pair pattern like the ShBF resolve uses (mostly misses).
      if (i % 2 == 0) {
        needs[i] = words[i] & rng();
      } else {
        needs[i] = 1ull | (1ull << (1 + rng() % 56));
      }
    }
    std::vector<uint8_t> expected(n, 0xcc);
    simd::MaskTestManyScalar(words.data(), needs.data(), n, expected.data());
    UnderBothDispatchModes([&] {
      std::vector<uint8_t> got(n, 0x33);
      simd::MaskTestMany(words.data(), needs.data(), n, got.data());
      ASSERT_EQ(got, expected) << "n=" << n;
    });
  }
}

TEST(SimdKernelTest, BlockSubsetTestMatchesScalarForEveryBlockWidth) {
  std::mt19937_64 rng(0xb10c);
  for (size_t num_words = 1; num_words <= 8; ++num_words) {
    for (int trial = 0; trial < 200; ++trial) {
      alignas(64) uint64_t block[8];
      uint64_t mask[8];
      for (size_t w = 0; w < num_words; ++w) {
        block[w] = rng();
        mask[w] = block[w] & rng();  // subset by construction
      }
      // Half the trials flip one mask bit off the block: a guaranteed miss
      // in a single word, which the early-exit loops must agree on too.
      if (trial % 2 == 1) {
        const size_t w = rng() % num_words;
        mask[w] |= ~block[w] & (1ull << (rng() % 64));
      }
      const uint8_t* bytes = reinterpret_cast<const uint8_t*>(block);
      const bool expected =
          simd::BlockSubsetTestScalar(bytes, mask, num_words);
      UnderBothDispatchModes([&] {
        ASSERT_EQ(simd::BlockSubsetTest(bytes, mask, num_words), expected)
            << "num_words=" << num_words << " trial=" << trial;
      });
    }
  }
}

TEST(SimdKernelTest, ExtractFieldManyMatchesScalarIncludingStraddles) {
  std::mt19937_64 rng(0xf1e1d);
  for (uint32_t field_bits : {1u, 4u, 6u, 17u, 32u}) {
    const uint64_t field_mask = (1ull << field_bits) - 1;
    for (size_t n : {size_t{1}, size_t{4}, size_t{5}, size_t{64}}) {
      std::vector<uint64_t> lo(n), hi(n), shifts(n);
      for (size_t i = 0; i < n; ++i) {
        lo[i] = rng();
        hi[i] = rng();
        // Shift 0 (the scalar guard) and shifts forcing a straddle both
        // appear; all values stay < 64 as the contract requires.
        shifts[i] = (i == 0) ? 0 : rng() % 64;
      }
      std::vector<uint64_t> expected(n);
      simd::ExtractFieldManyScalar(lo.data(), hi.data(), shifts.data(),
                                   field_mask, n, expected.data());
      UnderBothDispatchModes([&] {
        std::vector<uint64_t> got(n, ~0ull);
        simd::ExtractFieldMany(lo.data(), hi.data(), shifts.data(),
                               field_mask, n, got.data());
        ASSERT_EQ(got, expected) << "bits=" << field_bits << " n=" << n;
      });
    }
  }
}

TEST(SimdKernelTest, MaskFromShiftsMatchesScalarAtEveryLength) {
  std::mt19937_64 rng(0x5f1f7);
  // Patterns the split-block filters actually shift: a single bit, the
  // ShBF two-bit pair, and a dense byte. Shift 0 and 63 (the in-word
  // extremes) always appear; lengths cover the 4-lane / 8-lane main loops
  // plus their scalar tails.
  for (uint64_t pattern :
       {uint64_t{1}, uint64_t{1} | (uint64_t{1} << 9), uint64_t{0xff}}) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{7},
                     size_t{8}, size_t{9}, size_t{33}, size_t{64}}) {
      std::vector<uint64_t> shifts(n);
      for (size_t i = 0; i < n; ++i) {
        shifts[i] = (i == 0) ? 0 : (i == 1 ? 63 : rng() % 64);
      }
      std::vector<uint64_t> expected(n);
      simd::MaskFromShiftsScalar(shifts.data(), pattern, n, expected.data());
      UnderBothDispatchModes([&] {
        std::vector<uint64_t> got(n, ~0ull);
        simd::MaskFromShifts(shifts.data(), pattern, n, got.data());
        ASSERT_EQ(got, expected) << "pattern=" << pattern << " n=" << n;
      });
    }
  }
}

TEST(SimdKernelTest, PackedCounterGetManyMatchesGet) {
  std::mt19937_64 rng(0x9e7);
  // 6-bit counters guarantee word straddles (gcd(6, 64) != 64); the last
  // counter exercises the spare-word guarantee.
  for (uint32_t bits : {4u, 6u, 13u}) {
    PackedCounterArray counters(1000, bits);
    for (int i = 0; i < 5000; ++i) counters.Increment(rng() % 1000);
    std::vector<size_t> indices;
    for (int i = 0; i < 300; ++i) indices.push_back(rng() % 1000);
    indices.push_back(999);
    UnderBothDispatchModes([&] {
      std::vector<uint64_t> got(indices.size());
      counters.GetMany(indices.data(), indices.size(), got.data());
      for (size_t i = 0; i < indices.size(); ++i) {
        ASSERT_EQ(got[i], counters.Get(indices[i])) << "index " << indices[i];
      }
    });
  }
}

}  // namespace
}  // namespace shbf
