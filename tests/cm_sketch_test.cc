#include "baselines/cm_sketch.h"

#include <gtest/gtest.h>

#include "trace/workload.h"

namespace shbf {
namespace {

CmSketch::Params BaseParams(bool conservative = false) {
  return {.depth = 4,
          .width = 4000,
          .counter_bits = 16,
          .conservative_update = conservative};
}

TEST(CmSketchTest, ParamsValidation) {
  auto p = BaseParams();
  EXPECT_TRUE(p.Validate().ok());
  p.depth = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = BaseParams();
  p.width = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = BaseParams();
  p.counter_bits = 0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(CmSketchTest, AbsentKeyUsuallyZeroInSparseSketch) {
  CmSketch cm(BaseParams());
  cm.Insert("only-key");
  EXPECT_EQ(cm.QueryCount("some-other-key"), 0u);
}

TEST(CmSketchTest, SingleKeyExact) {
  CmSketch cm(BaseParams());
  for (int i = 0; i < 9; ++i) cm.Insert("flow");
  EXPECT_EQ(cm.QueryCount("flow"), 9u);
}

class CmSketchModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(CmSketchModeTest, NeverUnderestimates) {
  auto w = MakeMultiplicityWorkload(5000, 25, 0, 61);
  CmSketch cm(BaseParams(GetParam()));
  for (size_t i = 0; i < w.keys.size(); ++i) {
    for (uint32_t r = 0; r < w.counts[i]; ++r) cm.Insert(w.keys[i]);
  }
  for (size_t i = 0; i < w.keys.size(); ++i) {
    ASSERT_GE(cm.QueryCount(w.keys[i]), w.counts[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, CmSketchModeTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "conservative" : "plain";
                         });

TEST(CmSketchTest, ConservativeUpdateIsAtLeastAsAccurate) {
  auto w = MakeMultiplicityWorkload(8000, 20, 0, 67);
  CmSketch plain(BaseParams(false));
  CmSketch conservative(BaseParams(true));
  for (size_t i = 0; i < w.keys.size(); ++i) {
    for (uint32_t r = 0; r < w.counts[i]; ++r) {
      plain.Insert(w.keys[i]);
      conservative.Insert(w.keys[i]);
    }
  }
  uint64_t error_plain = 0;
  uint64_t error_cons = 0;
  for (size_t i = 0; i < w.keys.size(); ++i) {
    error_plain += plain.QueryCount(w.keys[i]) - w.counts[i];
    error_cons += conservative.QueryCount(w.keys[i]) - w.counts[i];
  }
  EXPECT_LE(error_cons, error_plain);
}

TEST(CmSketchTest, ErrorBoundedByClassicGuarantee) {
  // CM guarantee: estimate <= true + ε·N w.p. 1 − δ, ε = e/width. Check the
  // aggregate: the average overestimate should be well under e/width · N.
  auto w = MakeMultiplicityWorkload(10000, 10, 0, 71);
  CmSketch cm(BaseParams());
  uint64_t total = 0;
  for (size_t i = 0; i < w.keys.size(); ++i) {
    for (uint32_t r = 0; r < w.counts[i]; ++r) cm.Insert(w.keys[i]);
    total += w.counts[i];
  }
  double over_sum = 0;
  for (size_t i = 0; i < w.keys.size(); ++i) {
    over_sum += static_cast<double>(cm.QueryCount(w.keys[i]) - w.counts[i]);
  }
  double avg_over = over_sum / w.keys.size();
  double epsilon_n = 2.718281828 / BaseParams().width * total;
  EXPECT_LE(avg_over, epsilon_n);
}

TEST(CmSketchTest, StatsCountDepthAccesses) {
  CmSketch cm(BaseParams());
  cm.Insert("member");
  QueryStats stats;
  cm.QueryCountWithStats("member", &stats);
  EXPECT_EQ(stats.memory_accesses, 4u);  // d rows
  EXPECT_EQ(stats.hash_computations, 4u);
}

TEST(CmSketchTest, MemoryBitsReflectsGeometry) {
  CmSketch cm(BaseParams());
  EXPECT_EQ(cm.memory_bits(), 4u * 4000u * 16u);
}

TEST(CmSketchTest, ClearResets) {
  CmSketch cm(BaseParams());
  cm.Insert("x");
  cm.Clear();
  EXPECT_EQ(cm.QueryCount("x"), 0u);
}

}  // namespace
}  // namespace shbf
