// Corruption fuzzer for the flat-image open path. Contract: for ANY
// mutation of the bytes on disk — header flips, payload flips, truncation
// at every page boundary, random truncation, extension — OpenMapped with
// payload verification either fails with a clean Status or serves answers
// bit-identical to the uncorrupted reference. It never crashes and never
// silently answers wrong. The default (header-only) open upholds the same
// contract for the header page, which is always verified.
//
// > 5600 mutated images per run: every one of the 4096 header-page bytes,
// 600 seeded payload flips, truncation at every page boundary plus 200
// random lengths, and appended garbage.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "api/filter_registry.h"
#include "core/file_io.h"
#include "storage/filter_image.h"
#include "storage/mapped_filter.h"
#include "trace/trace_generator.h"

namespace shbf {
namespace {

struct Reference {
  std::string image;                 // pristine bytes
  std::vector<std::string> probes;   // mixed members + non-members
  std::vector<uint8_t> answers;      // pristine filter's answers
  uint64_t region_offset = 0;        // region 0 payload span
  uint64_t region_bytes = 0;
};

Reference MakeReference() {
  FilterSpec spec;
  spec.num_cells = 50000;
  spec.num_hashes = 6;
  spec.expected_keys = 800;
  spec.seed = 0xf422;

  TraceGenerator gen(0x7777);
  auto keys = gen.DistinctFlowKeys(2000);

  std::unique_ptr<MembershipFilter> filter;
  Status s = FilterRegistry::Global().Create("shbf_m", spec, &filter);
  EXPECT_TRUE(s.ok()) << s.ToString();
  for (size_t i = 0; i < 800; ++i) filter->Add(keys[i]);

  const std::string path = ::testing::TempDir() + "/fuzz_reference.shbi";
  EXPECT_TRUE(FilterRegistry::Global().SaveMapped(*filter, path, 3).ok());

  Reference ref;
  EXPECT_TRUE(ReadFileToString(path, &ref.image).ok());
  std::remove(path.c_str());

  storage::ImageHeader header;
  EXPECT_TRUE(storage::DecodeImageHeader(
                  reinterpret_cast<const uint8_t*>(ref.image.data()),
                  ref.image.size(), &header)
                  .ok());
  EXPECT_EQ(header.regions.size(), 1u);
  ref.region_offset = header.regions[0].offset;
  ref.region_bytes = header.regions[0].bytes;

  ref.probes.assign(keys.begin(), keys.end());
  ref.answers.resize(ref.probes.size());
  for (size_t i = 0; i < ref.probes.size(); ++i) {
    ref.answers[i] = filter->Contains(ref.probes[i]) ? 1 : 0;
  }
  return ref;
}

/// Writes `bytes` to the scratch path and opens it. Returns the open
/// Status; when open succeeds, asserts the answers are bit-identical to
/// the reference (the "no silent wrong answer" half of the contract).
Status OpenAndCheck(const Reference& ref, const std::string& bytes,
                    bool verify_payload, bool check_answers) {
  static const std::string path = ::testing::TempDir() + "/fuzz_mutant.shbi";
  EXPECT_TRUE(WriteStringToFile(path, bytes).ok());
  std::unique_ptr<MembershipFilter> mapped;
  Status s = FilterRegistry::Global().OpenMapped(
      path, &mapped, storage::OpenOptions{.verify_payload = verify_payload});
  if (s.ok()) {
    // Touch every probe regardless (any latent out-of-bounds view dies
    // here under ASan), comparing only when the mode guarantees it.
    for (size_t i = 0; i < ref.probes.size(); ++i) {
      bool got = mapped->Contains(ref.probes[i]);
      if (check_answers) {
        EXPECT_EQ(got, ref.answers[i] != 0)
            << "silent wrong answer for probe " << i;
      }
    }
  }
  return s;
}

TEST(StorageFuzzTest, EveryHeaderByteFlipIsCaughtOrHarmless) {
  const Reference ref = MakeReference();
  ASSERT_GE(ref.image.size(), storage::kImagePageBytes);
  int rejected = 0;
  for (size_t offset = 0; offset < storage::kImagePageBytes; ++offset) {
    std::string mutant = ref.image;
    mutant[offset] = static_cast<char>(mutant[offset] ^ 0x5a);
    // Header-page integrity is enforced in BOTH open modes.
    for (bool verify : {false, true}) {
      Status s = OpenAndCheck(ref, mutant, verify, /*check_answers=*/true);
      if (!s.ok()) {
        if (verify) ++rejected;
        EXPECT_FALSE(s.message().empty());
      }
    }
  }
  // The serialized fields (magic through checksum) must all be covered;
  // only flips in the zero pad after the checksum may be accepted.
  EXPECT_GT(rejected, 100) << "header checksum is not actually checked";
}

TEST(StorageFuzzTest, PayloadFlipsNeverProduceSilentWrongAnswers) {
  const Reference ref = MakeReference();
  std::mt19937_64 rng(0x0bad);
  std::uniform_int_distribution<size_t> pick(0, ref.image.size() - 1);
  std::uniform_int_distribution<int> bit(0, 7);
  int payload_rejections = 0;
  for (int i = 0; i < 600; ++i) {
    SCOPED_TRACE(i);
    const size_t offset = pick(rng);
    std::string mutant = ref.image;
    mutant[offset] = static_cast<char>(mutant[offset] ^ (1 << bit(rng)));

    // Verified open: full contract — clean failure or identical answers.
    Status s = OpenAndCheck(ref, mutant, /*verify_payload=*/true,
                            /*check_answers=*/true);
    const bool in_payload = offset >= ref.region_offset &&
                            offset < ref.region_offset + ref.region_bytes;
    if (in_payload) {
      // A flipped payload byte always breaks the region checksum.
      EXPECT_FALSE(s.ok()) << "checksum missed a payload flip at " << offset;
      ++payload_rejections;
    }

    // Default open skips payload checksums by design (that is what makes
    // it O(1)); the guarantee here is clean failure or clean service —
    // never a crash. Answers may legitimately differ.
    (void)OpenAndCheck(ref, mutant, /*verify_payload=*/false,
                       /*check_answers=*/false);
  }
  EXPECT_GT(payload_rejections, 0);
}

TEST(StorageFuzzTest, TruncationAtEveryPageBoundaryFailsCleanly) {
  const Reference ref = MakeReference();
  // Every page boundary, including 0 and the full size (the latter must
  // still open).
  for (size_t len = 0; len <= ref.image.size();
       len += storage::kImagePageBytes) {
    SCOPED_TRACE(len);
    std::string mutant = ref.image.substr(0, len);
    Status s = OpenAndCheck(ref, mutant, /*verify_payload=*/true,
                            /*check_answers=*/true);
    if (len == ref.image.size()) {
      EXPECT_TRUE(s.ok()) << s.ToString();
    } else {
      EXPECT_FALSE(s.ok()) << "accepted an image truncated to " << len;
      EXPECT_FALSE(s.message().empty());
    }
  }
  // And 200 random (non-aligned) truncation lengths.
  std::mt19937_64 rng(0x7ea4);
  std::uniform_int_distribution<size_t> pick(0, ref.image.size() - 1);
  for (int i = 0; i < 200; ++i) {
    const size_t len = pick(rng);
    SCOPED_TRACE(len);
    Status s = OpenAndCheck(ref, ref.image.substr(0, len),
                            /*verify_payload=*/true, /*check_answers=*/true);
    EXPECT_FALSE(s.ok()) << "accepted an image truncated to " << len;
  }
}

TEST(StorageFuzzTest, AppendedGarbageIsRejectedByTheSizeCheck) {
  // A committed image has exactly the size its region table implies (the
  // writer pads to a whole page and commits via rename); extra bytes mean
  // a torn or tampered file and must be named, not guessed around.
  const Reference ref = MakeReference();
  std::mt19937_64 rng(0x9999);
  for (size_t extra : {size_t{1}, size_t{7}, size_t{4096}, size_t{65536}}) {
    SCOPED_TRACE(extra);
    std::string mutant = ref.image;
    for (size_t i = 0; i < extra; ++i) {
      mutant.push_back(static_cast<char>(rng()));
    }
    Status s = OpenAndCheck(ref, mutant, /*verify_payload=*/true,
                            /*check_answers=*/true);
    EXPECT_FALSE(s.ok());
    EXPECT_NE(s.message().find("file_size"), std::string::npos)
        << s.ToString();
  }
}

TEST(StorageFuzzTest, EmptyAndTinyFilesNameTheProblem) {
  const Reference ref = MakeReference();
  for (const char* payload : {"", "S", "SHBI", "not an image at all"}) {
    SCOPED_TRACE(payload);
    Status s = OpenAndCheck(ref, payload, /*verify_payload=*/true,
                            /*check_answers=*/false);
    EXPECT_FALSE(s.ok());
    EXPECT_FALSE(s.message().empty());
  }
}

}  // namespace
}  // namespace shbf
