#include "baselines/km_bloom_filter.h"

#include <gtest/gtest.h>

#include "analysis/membership_theory.h"
#include "trace/workload.h"

namespace shbf {
namespace {

TEST(KmBloomFilterTest, ParamsValidation) {
  KmBloomFilter::Params good{.num_bits = 100, .num_hashes = 4};
  EXPECT_TRUE(good.Validate().ok());
  KmBloomFilter::Params no_bits{.num_bits = 0, .num_hashes = 4};
  EXPECT_FALSE(no_bits.Validate().ok());
  KmBloomFilter::Params no_hashes{.num_bits = 100, .num_hashes = 0};
  EXPECT_FALSE(no_hashes.Validate().ok());
}

TEST(KmBloomFilterTest, NoFalseNegatives) {
  auto w = MakeMembershipWorkload(2000, 0, 3);
  KmBloomFilter bf({.num_bits = 20000, .num_hashes = 7});
  for (const auto& key : w.members) bf.Add(key);
  for (const auto& key : w.members) ASSERT_TRUE(bf.Contains(key));
}

TEST(KmBloomFilterTest, OnlyTwoHashComputationsPerQuery) {
  KmBloomFilter bf({.num_bits = 20000, .num_hashes = 10});
  bf.Add("member");
  QueryStats stats;
  bf.ContainsWithStats("member", &stats);
  EXPECT_EQ(stats.hash_computations, 2u);   // the KM trick
  EXPECT_EQ(stats.memory_accesses, 10u);    // still k probes
}

TEST(KmBloomFilterTest, FprWithinModestFactorOfTheory) {
  // Kirsch–Mitzenmacher: asymptotically the same FPR as k independent
  // hashes; at finite sizes slightly above. Allow a 2x envelope.
  const size_t m = 20000;
  const size_t n = 2000;
  const uint32_t k = 6;
  auto w = MakeMembershipWorkload(n, 200000, 29);
  KmBloomFilter bf({.num_bits = m, .num_hashes = k});
  for (const auto& key : w.members) bf.Add(key);
  size_t fp = 0;
  for (const auto& key : w.non_members) fp += bf.Contains(key);
  double simulated = static_cast<double>(fp) / w.non_members.size();
  double predicted = theory::BloomFpr(m, n, k);
  EXPECT_LT(simulated, 2.0 * predicted);
  EXPECT_GT(simulated, 0.5 * predicted);
}

TEST(KmBloomFilterTest, ClearEmptiesFilter) {
  KmBloomFilter bf({.num_bits = 1000, .num_hashes = 4});
  bf.Add("x");
  bf.Clear();
  EXPECT_FALSE(bf.Contains("x"));
}

}  // namespace
}  // namespace shbf
