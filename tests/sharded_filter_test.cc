// ShardedFilter / ShardedMembershipFilter: partitioning correctness, the
// registry's shards > 1 wiring, serde round trips, and — the point of the
// structure — no lost keys under concurrent mixed add/query traffic.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/filter_registry.h"
#include "engine/sharded_filter.h"
#include "shbf/shbf_membership.h"
#include "trace/trace_generator.h"

namespace shbf {
namespace {

FilterSpec ShardedSpec(uint32_t shards, uint64_t seed = 0x5a4d) {
  FilterSpec spec;
  spec.num_cells = 160000;
  spec.num_hashes = 8;
  spec.shards = shards;
  spec.batch_size = 16;
  spec.seed = seed;
  return spec;
}

std::vector<std::string> Keys(size_t n, uint64_t seed) {
  TraceGenerator gen(seed);
  return gen.DistinctFlowKeys(n);
}

TEST(ShardedFilterTest, ConcreteTemplateShardsAndAnswers) {
  ShardedFilter<ShbfM> sharded(4, [](size_t) {
    return std::make_unique<ShbfM>(
        ShbfM::Params{.num_bits = 40000, .num_hashes = 8});
  });
  EXPECT_EQ(sharded.num_shards(), 4u);
  const auto keys = Keys(2000, 0xc0de);
  sharded.AddBatch(keys);
  EXPECT_EQ(sharded.num_elements(), keys.size());
  for (const auto& key : keys) {
    ASSERT_TRUE(sharded.Contains(key)) << "false negative";
  }
  std::vector<uint8_t> results;
  sharded.ContainsBatch(keys, &results);
  ASSERT_EQ(results.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(results[i], 1) << "batched false negative at " << i;
  }
  // The selector actually spreads keys around.
  size_t populated = 0;
  sharded.ForEachShard([&populated](size_t, const ShbfM& shard) {
    populated += shard.num_elements() > 0;
  });
  EXPECT_EQ(populated, 4u);
  sharded.Clear();
  EXPECT_EQ(sharded.num_elements(), 0u);
}

TEST(ShardedFilterTest, RegistryBuildsShardedWrapperAboveOneShard) {
  const auto& registry = FilterRegistry::Global();
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(registry.Create("shbf_m", ShardedSpec(8), &filter).ok());
  EXPECT_EQ(filter->name(), "sharded/shbf_m");
  auto* sharded = dynamic_cast<ShardedMembershipFilter*>(filter.get());
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->num_shards(), 8u);

  const auto universe = Keys(6000, 0x7e57);
  for (size_t i = 0; i < 3000; ++i) filter->Add(universe[i]);
  EXPECT_EQ(filter->num_elements(), 3000u);
  EXPECT_GT(filter->memory_bytes(), 0u);

  std::vector<uint8_t> batched;
  filter->ContainsBatch(universe, &batched);
  ASSERT_EQ(batched.size(), universe.size());
  size_t false_positives = 0;
  for (size_t i = 0; i < universe.size(); ++i) {
    ASSERT_EQ(batched[i] != 0, filter->Contains(universe[i]));
    if (i < 3000) {
      ASSERT_EQ(batched[i], 1) << "false negative at " << i;
    } else {
      false_positives += batched[i];
    }
  }
  EXPECT_LT(false_positives, 300u) << "implausible FPR";
}

TEST(ShardedFilterTest, ShardedMemoryMatchesSpecBudget) {
  const auto& registry = FilterRegistry::Global();
  std::unique_ptr<MembershipFilter> plain;
  std::unique_ptr<MembershipFilter> sharded;
  ASSERT_TRUE(registry.Create("bloom", ShardedSpec(1), &plain).ok());
  ASSERT_TRUE(registry.Create("bloom", ShardedSpec(8), &sharded).ok());
  // num_cells splits across shards, so the ensemble stays within ~2x of the
  // plain filter (per-shard slack/guard bytes account for the difference).
  EXPECT_LT(sharded->memory_bytes(), 2 * plain->memory_bytes());
  EXPECT_GT(sharded->memory_bytes(), plain->memory_bytes() / 2);
}

TEST(ShardedFilterTest, ShardedSerdeRoundTrips) {
  const auto& registry = FilterRegistry::Global();
  for (const char* base : {"shbf_m", "bloom", "cuckoo", "shbf_x"}) {
    SCOPED_TRACE(base);
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(registry.Create(base, ShardedSpec(4), &filter).ok());
    const auto universe = Keys(2000, 0xd15c);
    for (size_t i = 0; i < 1000; ++i) filter->Add(universe[i]);

    std::string blob = FilterRegistry::Serialize(*filter);
    std::unique_ptr<MembershipFilter> reloaded;
    ASSERT_TRUE(registry.Deserialize(blob, &reloaded).ok());
    EXPECT_EQ(reloaded->name(), filter->name());
    for (const auto& key : universe) {
      ASSERT_EQ(reloaded->Contains(key), filter->Contains(key))
          << "serde divergence for " << key;
    }
  }
}

TEST(ShardedFilterTest, WiderFamiliesRejectShards) {
  const auto& registry = FilterRegistry::Global();
  std::unique_ptr<MultiplicityFilter> multiplicity;
  Status s = registry.CreateMultiplicity("shbf_x", ShardedSpec(4),
                                         &multiplicity);
  EXPECT_EQ(s.code(), Status::Code::kFailedPrecondition) << s.ToString();
  std::unique_ptr<AssociationFilter> association;
  s = registry.CreateAssociation("shbf_a", ShardedSpec(4), &association);
  EXPECT_EQ(s.code(), Status::Code::kFailedPrecondition) << s.ToString();
}

// Concurrent mixed traffic: readers hammer an already-inserted key set while
// writers insert a disjoint one. No reader may ever miss a pre-inserted key
// (no false negatives under concurrency), and after the writers join the
// whole union must be present.
void RunConcurrentStress(const char* base_name, size_t pre_keys,
                         size_t new_keys, int reader_loops) {
  const auto& registry = FilterRegistry::Global();
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(registry.Create(base_name, ShardedSpec(8), &filter).ok());
  auto* sharded = dynamic_cast<ShardedMembershipFilter*>(filter.get());
  ASSERT_NE(sharded, nullptr);

  const auto universe = Keys(pre_keys + new_keys, 0x57e55);
  const std::vector<std::string> pre(universe.begin(),
                                     universe.begin() + pre_keys);
  sharded->AddBatch(pre);

  std::atomic<size_t> reader_misses{0};
  std::vector<std::thread> threads;
  // Two writers insert interleaved halves of the new keys.
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      for (size_t i = pre_keys + w; i < universe.size(); i += 2) {
        filter->Add(universe[i]);
      }
    });
  }
  // Two readers batch-query the pre-inserted set; every miss is a false
  // negative (gtest asserts are not thread-safe, so tally and assert after
  // the join).
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      std::vector<uint8_t> results;
      for (int loop = 0; loop < reader_loops; ++loop) {
        filter->ContainsBatch(pre, &results);
        for (uint8_t hit : results) reader_misses += hit == 0;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(reader_misses.load(), 0u)
      << "false negatives observed under concurrent traffic";
  for (const auto& key : universe) {
    ASSERT_TRUE(filter->Contains(key)) << "lost key after join";
  }
}

TEST(ShardedFilterTest, ConcurrentAddsAndQueriesIncrementalBase) {
  RunConcurrentStress("shbf_m", 4000, 4000, 40);
}

TEST(ShardedFilterTest, ConcurrentAddsAndQueriesLazyRebuiltBase) {
  // shbf_x rebuilds inside const queries; the sharded wrapper must fall back
  // to exclusive reads for it. Small sizes: every query after an add pays a
  // rebuild.
  RunConcurrentStress("shbf_x", 400, 400, 10);
}

}  // namespace
}  // namespace shbf
