// Registry-driven serde round trips: for EVERY registered filter name,
// build → insert → Serialize → Deserialize must reproduce a filter that
// answers identically — membership answers for all entries, counts for
// multiplicity entries, outcomes for association entries.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/filter_registry.h"
#include "core/file_io.h"
#include "storage/filter_image.h"
#include "trace/trace_generator.h"

namespace shbf {
namespace {

FilterSpec TestSpec() {
  FilterSpec spec;
  spec.num_cells = 30000;
  spec.num_hashes = 6;
  spec.expected_keys = 1000;
  spec.seed = 0xfeedf00d;
  return spec;
}

struct Workload {
  std::vector<std::string> members;  // inserted
  std::vector<std::string> probes;   // never inserted
};

Workload MakeWorkload() {
  TraceGenerator gen(0x5e44);
  auto keys = gen.DistinctFlowKeys(3000);
  Workload w;
  w.members.assign(keys.begin(), keys.begin() + 1000);
  w.probes.assign(keys.begin() + 1000, keys.end());
  return w;
}

/// Populates `filter` according to its family: association splits members
/// between S1/S2, multiplicity inserts every third key twice.
void Populate(const FilterRegistry::Entry& entry, MembershipFilter* filter,
              const std::vector<std::string>& members) {
  if (entry.family == FilterFamily::kAssociation) {
    auto* assoc = dynamic_cast<AssociationFilter*>(filter);
    ASSERT_NE(assoc, nullptr);
    for (size_t i = 0; i < members.size(); ++i) {
      if (i % 3 == 0) {
        assoc->AddToS1(members[i]);
      } else if (i % 3 == 1) {
        assoc->AddToS2(members[i]);
      } else {
        assoc->AddToS1(members[i]);
        assoc->AddToS2(members[i]);
      }
    }
    return;
  }
  for (size_t i = 0; i < members.size(); ++i) {
    filter->Add(members[i]);
    if (entry.family == FilterFamily::kMultiplicity && i % 3 == 0) {
      filter->Add(members[i]);
    }
  }
}

TEST(RegistrySerdeTest, EveryFilterRoundTripsThroughBytes) {
  const auto& registry = FilterRegistry::Global();
  const Workload w = MakeWorkload();
  for (const auto& name : registry.Names()) {
    SCOPED_TRACE(name);
    const auto* entry = registry.Find(name);
    ASSERT_NE(entry, nullptr);

    std::unique_ptr<MembershipFilter> original;
    ASSERT_TRUE(registry.Create(name, TestSpec(), &original).ok());
    Populate(*entry, original.get(), w.members);

    std::string blob = FilterRegistry::Serialize(*original);
    ASSERT_FALSE(blob.empty());

    std::unique_ptr<MembershipFilter> restored;
    Status s = registry.Deserialize(blob, &restored);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->name(), name);

    // Identical membership answers on members (all true) and probes
    // (identical false-positive pattern, not merely a similar rate).
    for (const auto& key : w.members) {
      ASSERT_TRUE(restored->Contains(key)) << "false negative after reload";
    }
    for (const auto& key : w.probes) {
      ASSERT_EQ(original->Contains(key), restored->Contains(key))
          << "answer drift on probe key";
    }

    if (entry->family == FilterFamily::kMultiplicity) {
      auto* original_counts = dynamic_cast<MultiplicityFilter*>(original.get());
      auto* restored_counts = dynamic_cast<MultiplicityFilter*>(restored.get());
      ASSERT_NE(original_counts, nullptr);
      ASSERT_NE(restored_counts, nullptr);
      for (const auto& key : w.members) {
        ASSERT_EQ(original_counts->QueryCount(key),
                  restored_counts->QueryCount(key));
      }
    }

    if (entry->family == FilterFamily::kAssociation) {
      auto* original_assoc = dynamic_cast<AssociationFilter*>(original.get());
      auto* restored_assoc = dynamic_cast<AssociationFilter*>(restored.get());
      ASSERT_NE(original_assoc, nullptr);
      ASSERT_NE(restored_assoc, nullptr);
      for (const auto& key : w.members) {
        ASSERT_EQ(original_assoc->Query(key), restored_assoc->Query(key));
      }
    }
  }
}

TEST(RegistrySerdeTest, RestoredFilterKeepsAccepting) {
  // Add-after-reload must keep working for incremental filters.
  const auto& registry = FilterRegistry::Global();
  const Workload w = MakeWorkload();
  for (const auto& name : registry.Names()) {
    SCOPED_TRACE(name);
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(registry.Create(name, TestSpec(), &filter).ok());
    for (size_t i = 0; i < 100; ++i) filter->Add(w.members[i]);

    std::unique_ptr<MembershipFilter> restored;
    ASSERT_TRUE(
        registry.Deserialize(FilterRegistry::Serialize(*filter), &restored)
            .ok());
    for (size_t i = 100; i < 200; ++i) restored->Add(w.members[i]);
    for (size_t i = 0; i < 200; ++i) {
      ASSERT_TRUE(restored->Contains(w.members[i]))
          << "lost key " << i << " after reload+add";
    }
  }
}

TEST(RegistrySerdeTest, GarbageAndTruncationAreRejected) {
  const auto& registry = FilterRegistry::Global();
  std::unique_ptr<MembershipFilter> out;
  EXPECT_FALSE(registry.Deserialize("", &out).ok());
  EXPECT_FALSE(registry.Deserialize("not a filter blob", &out).ok());

  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(registry.Create("shbf_m", TestSpec(), &filter).ok());
  filter->Add("payload");
  std::string blob = FilterRegistry::Serialize(*filter);
  for (size_t cut : {blob.size() / 4, blob.size() / 2, blob.size() - 1}) {
    EXPECT_FALSE(registry.Deserialize(blob.substr(0, cut), &out).ok())
        << "accepted a blob truncated to " << cut << " bytes";
  }
}

TEST(RegistrySerdeTest, NumElementsSurvivesRoundTrip) {
  const auto& registry = FilterRegistry::Global();
  const Workload w = MakeWorkload();
  for (const auto& name : registry.Names()) {
    SCOPED_TRACE(name);
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(registry.Create(name, TestSpec(), &filter).ok());
    for (size_t i = 0; i < 100; ++i) filter->Add(w.members[i]);
    std::unique_ptr<MembershipFilter> restored;
    ASSERT_TRUE(
        registry.Deserialize(FilterRegistry::Serialize(*filter), &restored)
            .ok());
    EXPECT_EQ(restored->num_elements(), filter->num_elements());
  }
}

TEST(RegistrySerdeTest, ReplayPayloadWithOversizedCountIsRejected) {
  // A counting_shbf_x table entry above max_count must yield a Status, not
  // a CHECK abort during replay.
  const auto& registry = FilterRegistry::Global();
  const auto* entry = registry.Find("counting_shbf_x");
  ASSERT_NE(entry, nullptr);
  FilterSpec spec = TestSpec();
  spec.max_count = 8;
  ByteWriter writer;
  spec_serde::WriteSpec(&writer, spec);
  writer.PutU64(1);  // one table entry
  writer.PutU32(3);
  writer.PutBytes("key", 3);
  writer.PutU64(100000);  // way past max_count
  std::unique_ptr<MembershipFilter> out;
  Status s = entry->deserializer(writer.Take(), &out);
  EXPECT_FALSE(s.ok());

  // A shbf_x multiset repeating one key past max_count is legal state (the
  // live adapter saturates at the cap); it must round-trip, not abort.
  const auto* lazy_entry = registry.Find("shbf_x");
  ASSERT_NE(lazy_entry, nullptr);
  ByteWriter lazy_writer;
  spec_serde::WriteSpec(&lazy_writer, spec);
  lazy_writer.PutU64(spec.max_count + 1);
  for (uint32_t i = 0; i <= spec.max_count; ++i) {
    lazy_writer.PutU32(3);
    lazy_writer.PutBytes("key", 3);
  }
  ASSERT_TRUE(lazy_entry->deserializer(lazy_writer.Take(), &out).ok());
  auto* counts = dynamic_cast<MultiplicityFilter*>(out.get());
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(counts->QueryCount("key"), spec.max_count);
}

TEST(RegistrySerdeTest, MultiplicityAddSaturatesAtMaxCount) {
  // Adding one key past max_count through the uniform interface must
  // saturate (like every counting structure here), never abort.
  const auto& registry = FilterRegistry::Global();
  FilterSpec spec = TestSpec();
  spec.max_count = 4;
  for (const char* name : {"counting_shbf_x", "shbf_x"}) {
    SCOPED_TRACE(name);
    std::unique_ptr<MultiplicityFilter> filter;
    ASSERT_TRUE(registry.CreateMultiplicity(name, spec, &filter).ok());
    for (int i = 0; i < 20; ++i) filter->Add("hot-key");
    EXPECT_EQ(filter->QueryCount("hot-key"), 4u);
    // And the saturated state round-trips.
    std::unique_ptr<MembershipFilter> restored;
    ASSERT_TRUE(
        registry.Deserialize(FilterRegistry::Serialize(*filter), &restored)
            .ok());
    auto* restored_counts = dynamic_cast<MultiplicityFilter*>(restored.get());
    ASSERT_NE(restored_counts, nullptr);
    EXPECT_EQ(restored_counts->QueryCount("hot-key"), 4u);
  }
}

TEST(RegistrySerdeTest, OverfullCuckooKeepsNoFalseNegativesAcrossReload) {
  // A cuckoo filter sized far below the key count must spill to the exact
  // side list rather than silently dropping keys, and the spill must
  // survive serialization.
  const auto& registry = FilterRegistry::Global();
  FilterSpec spec;
  spec.num_cells = 96;  // 2 buckets × 4 slots of 12-bit fingerprints
  spec.num_hashes = 8;
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(registry.Create("cuckoo", spec, &filter).ok());
  TraceGenerator gen(0xcafe);
  const auto keys = gen.DistinctFlowKeys(50);
  for (const auto& key : keys) filter->Add(key);
  for (const auto& key : keys) {
    ASSERT_TRUE(filter->Contains(key)) << "overfull cuckoo lost a key";
  }
  std::unique_ptr<MembershipFilter> restored;
  ASSERT_TRUE(
      registry.Deserialize(FilterRegistry::Serialize(*filter), &restored)
          .ok());
  for (const auto& key : keys) {
    ASSERT_TRUE(restored->Contains(key)) << "reload dropped a spilled key";
  }
}

TEST(RegistrySerdeTest, VersionMismatchNamesVersionsAndFilter) {
  // A pre-bump blob must fail loudly: the error names the found and the
  // supported envelope version AND the filter the blob carries, so an
  // operator staring at a failed `shbf_cli query` knows what to rebuild.
  const auto& registry = FilterRegistry::Global();
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(registry.Create("shbf_m", TestSpec(), &filter).ok());
  filter->Add("payload");
  std::string blob = FilterRegistry::Serialize(*filter);
  // Envelope layout: magic u32, version u8, name... — fake an old version.
  blob[4] = 2;
  std::unique_ptr<MembershipFilter> out;
  Status s = registry.Deserialize(blob, &out);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("version 2"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("supported: 4"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.message().find("\"shbf_m\""), std::string::npos)
      << s.ToString();

  // A version byte from the future fails the same way.
  blob[4] = 9;
  s = registry.Deserialize(blob, &out);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("version 9"), std::string::npos) << s.ToString();
}

TEST(RegistrySerdeTest, WrapperEnvelopesRoundTripThroughTheRegistry) {
  // Envelope-level check for every wrapper nesting Create can produce (the
  // behavioural deep-dives live in dynamic_filter_test.cc).
  const auto& registry = FilterRegistry::Global();
  const Workload w = MakeWorkload();
  struct Case {
    uint32_t shards;
    size_t delta;
    bool auto_scale;
    const char* expected_name;
  };
  for (const Case& c : {Case{1, 64, false, "dynamic/shbf_m"},
                        Case{1, 0, true, "scaling/shbf_m"},
                        Case{1, 64, true, "dynamic/scaling/shbf_m"},
                        Case{3, 96, false, "sharded/dynamic/shbf_m"},
                        Case{3, 96, true, "sharded/dynamic/scaling/shbf_m"}}) {
    SCOPED_TRACE(c.expected_name);
    FilterSpec spec = TestSpec();
    spec.shards = c.shards;
    spec.delta_capacity = c.delta;
    spec.auto_scale = c.auto_scale;
    std::unique_ptr<MembershipFilter> filter;
    ASSERT_TRUE(registry.Create("shbf_m", spec, &filter).ok());
    EXPECT_EQ(filter->name(), c.expected_name);
    for (const auto& key : w.members) filter->Add(key);

    std::unique_ptr<MembershipFilter> restored;
    Status s =
        registry.Deserialize(FilterRegistry::Serialize(*filter), &restored);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(restored->name(), c.expected_name);
    EXPECT_EQ(restored->capabilities(), filter->capabilities());
    for (const auto& key : w.members) {
      ASSERT_TRUE(restored->Contains(key)) << "false negative after reload";
    }
    for (const auto& key : w.probes) {
      ASSERT_EQ(filter->Contains(key), restored->Contains(key))
          << "answer drift on probe key";
    }
  }
}

TEST(RegistrySerdeTest, EnvelopeNamesUnknownFilter) {
  // An envelope naming an unregistered filter must fail cleanly, not crash.
  const auto& registry = FilterRegistry::Global();
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(registry.Create("bloom", TestSpec(), &filter).ok());
  std::string blob = FilterRegistry::Serialize(*filter);
  // Rewrite the embedded name "bloom" → "blooz".
  size_t pos = blob.find("bloom");
  ASSERT_NE(pos, std::string::npos);
  blob[pos + 4] = 'z';
  std::unique_ptr<MembershipFilter> out;
  Status s = registry.Deserialize(blob, &out);
  EXPECT_FALSE(s.ok());
}

/// Forges a registry envelope carrying `name` over `payload` (the layout
/// Serialize writes: SHBR magic, version 4, length-prefixed name, payload).
std::string ForgeEnvelope(std::string_view name, std::string_view payload) {
  ByteWriter writer;
  writer.PutU32(0x52424853);  // "SHBR"
  writer.PutU8(4);
  writer.PutU32(static_cast<uint32_t>(name.size()));
  writer.PutBytes(name.data(), name.size());
  writer.PutBytes(payload.data(), payload.size());
  return writer.Take();
}

TEST(RegistrySerdeTest, CorruptWrapperPrefixBlobsReturnStatusNeverCrash) {
  // Wrapper envelopes dispatch structurally on their name prefix; hostile
  // names and garbage payloads must all come back as Status.
  const auto& registry = FilterRegistry::Global();
  std::unique_ptr<MembershipFilter> out;

  // Unknown base behind every wrapper prefix (and nested ones).
  for (const char* name :
       {"sharded/nope", "dynamic/nope", "scaling/nope",
        "sharded/dynamic/scaling/nope", "dynamic/sharded/nope"}) {
    Status s = registry.Deserialize(ForgeEnvelope(name, "junkpayload"), &out);
    EXPECT_FALSE(s.ok()) << name;
    EXPECT_EQ(s.code(), Status::Code::kNotFound) << name;
    EXPECT_NE(s.ToString().find("nope"), std::string::npos)
        << "error must name the unknown base: " << s.ToString();
  }

  // A bare wrapper prefix with no base at all ("sharded/" strips to "").
  EXPECT_FALSE(
      registry.Deserialize(ForgeEnvelope("sharded/", "junk"), &out).ok());

  // Known base, garbage wrapper payload: the structural deserializers must
  // reject it (count bombs, truncated nested envelopes) without crashing.
  for (const char* name :
       {"sharded/shbf_m", "dynamic/shbf_m", "scaling/shbf_m",
        "sharded/dynamic/shbf_m"}) {
    EXPECT_FALSE(
        registry.Deserialize(ForgeEnvelope(name, "garbage"), &out).ok())
        << name;
    EXPECT_FALSE(registry.Deserialize(ForgeEnvelope(name, ""), &out).ok())
        << name;
    // A forged huge count/length prefix must not allocate its way to OOM.
    ByteWriter bomb;
    bomb.PutU32(0xffffffffu);
    bomb.PutU64(0xffffffffffffffffull);
    EXPECT_FALSE(
        registry.Deserialize(ForgeEnvelope(name, bomb.Take()), &out).ok())
        << name;
  }
}

TEST(RegistrySerdeTest, TruncatedWrapperBlobsAreRejectedAtEveryLength) {
  // Every proper prefix of a real nested wrapper blob (sharded over
  // dynamic shards — the deepest envelope nesting Create produces) must
  // fail with a Status, never crash; same for the nested multiset catalog
  // envelope that embeds such blobs (set_catalog_test covers its own
  // layout; here the nested filter blob inside it is the one truncated).
  const auto& registry = FilterRegistry::Global();
  FilterSpec spec = TestSpec();
  spec.shards = 2;
  spec.delta_capacity = 32;
  std::unique_ptr<MembershipFilter> filter;
  ASSERT_TRUE(registry.Create("shbf_m", spec, &filter).ok());
  for (int i = 0; i < 200; ++i) filter->Add("key-" + std::to_string(i));
  const std::string blob = FilterRegistry::Serialize(*filter);
  ASSERT_EQ(filter->name(), "sharded/dynamic/shbf_m");

  std::unique_ptr<MembershipFilter> out;
  for (size_t len = 0; len < blob.size(); ++len) {
    Status s = registry.Deserialize(std::string_view(blob).substr(0, len),
                                    &out);
    EXPECT_FALSE(s.ok()) << "prefix of " << len << " bytes was accepted";
  }
  // The intact blob still round-trips (the sweep didn't test a broken
  // serializer).
  ASSERT_TRUE(registry.Deserialize(blob, &out).ok());
  EXPECT_EQ(out->name(), "sharded/dynamic/shbf_m");
}

// ---------------------------------------------------------------------
// Mapped-image rejection cases: every failure mode an operator will
// actually hit (a stale build, a mismatched geometry record, flipped
// payload bits) must come back as a Status naming the file AND the field —
// the difference between a fixable incident and a mystery.
// ---------------------------------------------------------------------

/// Saves a populated shbf_m image and returns its raw bytes + path.
std::string SaveMappedImage(const std::string& path) {
  FilterSpec spec = TestSpec();
  std::unique_ptr<MembershipFilter> filter;
  EXPECT_TRUE(FilterRegistry::Global().Create("shbf_m", spec, &filter).ok());
  for (int i = 0; i < 500; ++i) filter->Add("key-" + std::to_string(i));
  EXPECT_TRUE(FilterRegistry::Global().SaveMapped(*filter, path, 1).ok());
  std::string image;
  EXPECT_TRUE(ReadFileToString(path, &image).ok());
  return image;
}

TEST(RegistrySerdeTest, MappedImageStaleVersionNamesFileAndField) {
  const std::string path =
      ::testing::TempDir() + "/serde_stale_version.shbi";
  std::string image = SaveMappedImage(path);
  // The version field is the u32 at offset 4 (after the magic); a future
  // build's image must be refused BY VERSION, before the checksum verdict,
  // so the message says "upgrade" rather than "corrupt".
  image[4] = static_cast<char>(storage::kImageVersion + 9);
  ASSERT_TRUE(WriteStringToFile(path, image).ok());

  std::unique_ptr<MembershipFilter> out;
  Status s = FilterRegistry::Global().OpenMapped(path, &out);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find(path), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("field version"), std::string::npos)
      << s.ToString();
  std::remove(path.c_str());
}

TEST(RegistrySerdeTest, MappedImageGeometryMismatchNamesFileAndField) {
  const std::string path = ::testing::TempDir() + "/serde_geometry.shbi";
  std::string image = SaveMappedImage(path);

  // Decode, lie about the geometry, re-encode (recomputing the header
  // checksum — this is a *consistent* header describing the wrong filter),
  // and splice the forged page back in. Only the opener's cross-checks can
  // catch this class of mismatch.
  storage::ImageHeader header;
  ASSERT_TRUE(storage::DecodeImageHeader(
                  reinterpret_cast<const uint8_t*>(image.data()),
                  image.size(), &header)
                  .ok());
  header.geometry.num_bits += 64;  // no longer matches array_total_bits
  const std::string forged = storage::EncodeImageHeader(header);
  ASSERT_EQ(forged.size(), storage::kImagePageBytes);
  image.replace(0, forged.size(), forged);
  ASSERT_TRUE(WriteStringToFile(path, image).ok());

  std::unique_ptr<MembershipFilter> out;
  Status s = FilterRegistry::Global().OpenMapped(path, &out);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find(path), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("field array_total_bits"), std::string::npos)
      << s.ToString();
  std::remove(path.c_str());
}

TEST(RegistrySerdeTest, MappedImageChecksumFlipNamesFileAndField) {
  const std::string path = ::testing::TempDir() + "/serde_checksum.shbi";
  std::string image = SaveMappedImage(path);
  // Flip one payload bit. The default open doesn't read the payload at
  // all; the verifying open must name the region checksum.
  image[storage::kImagePageBytes + 1234] ^= 0x10;
  ASSERT_TRUE(WriteStringToFile(path, image).ok());

  std::unique_ptr<MembershipFilter> out;
  Status s = FilterRegistry::Global().OpenMapped(
      path, &out, storage::OpenOptions{.verify_payload = true});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find(path), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("checksum"), std::string::npos) << s.ToString();

  // Same image, header-only open: succeeds by design (the documented
  // trade-off behind the O(1) open).
  EXPECT_TRUE(FilterRegistry::Global().OpenMapped(path, &out).ok());
  std::remove(path.c_str());
}

TEST(RegistrySerdeTest, MappedImageUnknownFilterNameIsNamed) {
  const std::string path = ::testing::TempDir() + "/serde_unknown.shbi";
  std::string image = SaveMappedImage(path);
  storage::ImageHeader header;
  ASSERT_TRUE(storage::DecodeImageHeader(
                  reinterpret_cast<const uint8_t*>(image.data()),
                  image.size(), &header)
                  .ok());
  header.filter_name = "filter_from_the_future";
  const std::string forged = storage::EncodeImageHeader(header);
  image.replace(0, forged.size(), forged);
  ASSERT_TRUE(WriteStringToFile(path, image).ok());

  std::unique_ptr<MembershipFilter> out;
  Status s = FilterRegistry::Global().OpenMapped(path, &out);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("filter_from_the_future"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.message().find("field name"), std::string::npos)
      << s.ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace shbf
