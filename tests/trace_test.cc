#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/chained_hash_table.h"
#include "trace/flow_id.h"
#include "trace/trace_generator.h"
#include "trace/workload.h"
#include "trace/zipf.h"

namespace shbf {
namespace {

// --- FlowId -------------------------------------------------------------------

TEST(FlowIdTest, KeyRoundTrip) {
  FlowId flow{.src_ip = 0x0a000001,
              .src_port = 443,
              .dst_ip = 0xc0a80102,
              .dst_port = 51724,
              .protocol = 6};
  std::string key = flow.ToKey();
  EXPECT_EQ(key.size(), FlowId::kKeyBytes);
  EXPECT_EQ(FlowId::FromKey(key), flow);
}

TEST(FlowIdTest, KeyIs13BytesLikeThePaperTrace) {
  EXPECT_EQ(FlowId::kKeyBytes, 13u);
  Rng rng(1);
  EXPECT_EQ(FlowId::Random(rng).ToKey().size(), 13u);
}

TEST(FlowIdTest, ToStringIsHumanReadable) {
  FlowId flow{.src_ip = 0x01020304,
              .src_port = 80,
              .dst_ip = 0x05060708,
              .dst_port = 443,
              .protocol = 17};
  EXPECT_EQ(flow.ToString(), "1.2.3.4:80 -> 5.6.7.8:443 proto=17");
}

TEST(FlowIdDeathTest, FromKeyRejectsWrongLength) {
  EXPECT_DEATH(FlowId::FromKey("short"), "13");
}

TEST(FlowIdTest, RandomFlowsUseRealProtocols) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    uint8_t proto = FlowId::Random(rng).protocol;
    EXPECT_TRUE(proto == 6 || proto == 17 || proto == 1) << int{proto};
  }
}

// --- Zipf ---------------------------------------------------------------------

TEST(ZipfTest, AlphaZeroIsUniform) {
  ZipfGenerator zipf(10, 0.0, 33);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 100000; ++i) ++histogram[zipf.Next()];
  for (int r = 0; r < 10; ++r) {
    EXPECT_NEAR(histogram[r], 10000, 500) << "rank " << r;
  }
}

TEST(ZipfTest, PositiveAlphaFavoursLowRanks) {
  ZipfGenerator zipf(1000, 1.0, 35);
  std::vector<int> histogram(1000, 0);
  for (int i = 0; i < 200000; ++i) ++histogram[zipf.Next()];
  EXPECT_GT(histogram[0], histogram[9] * 5);   // ~10x expected
  EXPECT_GT(histogram[0], histogram[99] * 50); // ~100x expected
}

TEST(ZipfTest, RanksStayInBounds) {
  ZipfGenerator zipf(7, 1.2, 37);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(), 7u);
}

TEST(ZipfTest, DeterministicUnderSeed) {
  ZipfGenerator a(100, 0.8, 39);
  ZipfGenerator b(100, 0.8, 39);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

// --- TraceGenerator -----------------------------------------------------------

TEST(TraceGeneratorTest, DistinctFlowKeysAreDistinct) {
  TraceGenerator gen(41);
  auto keys = gen.DistinctFlowKeys(20000);
  EXPECT_EQ(keys.size(), 20000u);
  std::set<std::string> unique(keys.begin(), keys.end());
  EXPECT_EQ(unique.size(), keys.size());
  for (const auto& key : keys) EXPECT_EQ(key.size(), 13u);
}

TEST(TraceGeneratorTest, DistinctKeysHonourLength) {
  TraceGenerator gen(43);
  auto keys = gen.DistinctKeys(1000, 8);
  std::set<std::string> unique(keys.begin(), keys.end());
  EXPECT_EQ(unique.size(), 1000u);
  for (const auto& key : keys) EXPECT_EQ(key.size(), 8u);
}

TEST(TraceGeneratorTest, PacketTraceShape) {
  // Scaled-down version of the paper's capture: every flow appears >= once,
  // total packet count is exact.
  TraceGenerator gen(45);
  auto packets = gen.PacketTrace(50000, 10000, 1.0);
  EXPECT_EQ(packets.size(), 50000u);
  ChainedHashTable counts;
  for (const auto& p : packets) counts.AddTo(p, 1);
  EXPECT_EQ(counts.size(), 10000u);  // all flows present, none extra
}

TEST(TraceGeneratorTest, ZipfTraceIsSkewed) {
  TraceGenerator gen(47);
  auto packets = gen.PacketTrace(100000, 5000, 1.0);
  ChainedHashTable counts;
  for (const auto& p : packets) counts.AddTo(p, 1);
  uint64_t max_count = 0;
  counts.ForEach([&](std::string_view, uint64_t c) {
    max_count = std::max(max_count, c);
  });
  // Uniform would put ~20 packets/flow; Zipf(1) concentrates thousands on
  // the top flow.
  EXPECT_GT(max_count, 200u);
}

TEST(TraceGeneratorTest, DeterministicUnderSeed) {
  TraceGenerator a(49);
  TraceGenerator b(49);
  EXPECT_EQ(a.PacketTrace(1000, 100, 0.5), b.PacketTrace(1000, 100, 0.5));
}

// --- workloads ----------------------------------------------------------------

TEST(WorkloadTest, MembershipPartsAreDisjoint) {
  auto w = MakeMembershipWorkload(1000, 2000, 51);
  EXPECT_EQ(w.members.size(), 1000u);
  EXPECT_EQ(w.non_members.size(), 2000u);
  std::set<std::string> members(w.members.begin(), w.members.end());
  for (const auto& key : w.non_members) {
    ASSERT_FALSE(members.count(key)) << "non-member collides with member";
  }
}

TEST(WorkloadTest, AssociationSetSizesAndOverlap) {
  auto w = MakeAssociationWorkload(1000, 800, 300, 5000, 53);
  EXPECT_EQ(w.s1.size(), 1000u);
  EXPECT_EQ(w.s2.size(), 800u);
  std::set<std::string> s1(w.s1.begin(), w.s1.end());
  std::set<std::string> s2(w.s2.begin(), w.s2.end());
  EXPECT_EQ(s1.size(), 1000u);
  EXPECT_EQ(s2.size(), 800u);
  size_t overlap = 0;
  for (const auto& key : s2) overlap += s1.count(key);
  EXPECT_EQ(overlap, 300u);
}

TEST(WorkloadTest, AssociationQueryTruthLabelsAreCorrect) {
  auto w = MakeAssociationWorkload(500, 500, 100, 3000, 55);
  std::set<std::string> s1(w.s1.begin(), w.s1.end());
  std::set<std::string> s2(w.s2.begin(), w.s2.end());
  for (const auto& q : w.queries) {
    bool in1 = s1.count(q.key) > 0;
    bool in2 = s2.count(q.key) > 0;
    switch (q.truth) {
      case AssociationTruth::kS1Only:
        EXPECT_TRUE(in1 && !in2);
        break;
      case AssociationTruth::kIntersection:
        EXPECT_TRUE(in1 && in2);
        break;
      case AssociationTruth::kS2Only:
        EXPECT_TRUE(!in1 && in2);
        break;
    }
  }
}

TEST(WorkloadTest, AssociationQueriesHitPartsUniformly) {
  auto w = MakeAssociationWorkload(5000, 5000, 1000, 30000, 57);
  std::map<AssociationTruth, int> histogram;
  for (const auto& q : w.queries) ++histogram[q.truth];
  for (const auto& [truth, count] : histogram) {
    EXPECT_NEAR(count, 10000, 450) << static_cast<int>(truth);
  }
}

TEST(WorkloadTest, AssociationHandlesDisjointAndNestedCases) {
  auto disjoint = MakeAssociationWorkload(100, 100, 0, 600, 59);
  for (const auto& q : disjoint.queries) {
    EXPECT_NE(q.truth, AssociationTruth::kIntersection);
  }
  auto nested = MakeAssociationWorkload(100, 100, 100, 600, 61);  // S1 == S2
  for (const auto& q : nested.queries) {
    EXPECT_EQ(q.truth, AssociationTruth::kIntersection);
  }
}

TEST(WorkloadTest, MultiplicityCountsInRangeAndMultisetExpands) {
  auto w = MakeMultiplicityWorkload(1000, 57, 100, 63);
  EXPECT_EQ(w.keys.size(), 1000u);
  EXPECT_EQ(w.counts.size(), 1000u);
  size_t total = 0;
  for (uint32_t c : w.counts) {
    EXPECT_GE(c, 1u);
    EXPECT_LE(c, 57u);
    total += c;
  }
  EXPECT_EQ(w.ToMultiset().size(), total);
}

TEST(WorkloadTest, MultiplicityCountsRoughlyUniform) {
  auto w = MakeMultiplicityWorkload(57000, 57, 0, 65);
  std::vector<int> histogram(58, 0);
  for (uint32_t c : w.counts) ++histogram[c];
  for (int c = 1; c <= 57; ++c) {
    EXPECT_NEAR(histogram[c], 1000, 200) << "count " << c;
  }
}

TEST(WorkloadTest, ChurnEventsKeepRemovesLiveAndLabelsExact) {
  const auto w = MakeChurnWorkload(/*universe_size=*/500,
                                   /*num_events=*/20000,
                                   /*add_fraction=*/0.3,
                                   /*remove_fraction=*/0.15, /*seed=*/77);
  ASSERT_EQ(w.keys.size(), 500u);
  ASSERT_EQ(w.events.size(), 20000u);
  // Replay the stream against an exact multiset: removes must only ever
  // target live keys (the guarantee that lets filters replay blindly), the
  // query `live` labels must match the replay state, and the final counts
  // must equal the replayed multiset.
  std::vector<uint32_t> counts(w.keys.size(), 0);
  size_t adds = 0;
  size_t removes = 0;
  size_t live_queries = 0;
  for (const auto& event : w.events) {
    ASSERT_LT(event.key_index, w.keys.size());
    switch (event.op) {
      case ChurnWorkload::Op::kAdd:
        ++counts[event.key_index];
        ++adds;
        break;
      case ChurnWorkload::Op::kRemove:
        ASSERT_GT(counts[event.key_index], 0u) << "remove of a dead key";
        --counts[event.key_index];
        ++removes;
        break;
      case ChurnWorkload::Op::kQuery:
        EXPECT_EQ(event.live, counts[event.key_index] > 0);
        live_queries += event.live;
        break;
    }
  }
  EXPECT_EQ(counts, w.final_counts);
  // The mix is roughly what was asked for and both sides of the query
  // stream are exercised.
  EXPECT_NEAR(static_cast<double>(adds) / w.events.size(), 0.3, 0.03);
  EXPECT_GT(removes, w.events.size() / 20);
  EXPECT_GT(live_queries, 0u);
}

TEST(WorkloadTest, ChurnWithoutRemovesIsAddQueryOnly) {
  const auto w = MakeChurnWorkload(100, 5000, 0.5, 0.0, 7);
  for (const auto& event : w.events) {
    EXPECT_NE(event.op, ChurnWorkload::Op::kRemove);
  }
}

}  // namespace
}  // namespace shbf
