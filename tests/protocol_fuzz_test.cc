// Deterministic protocol fuzzer: takes one valid frame per opcode, then
// flips, truncates and extends its bytes (length prefix included) under a
// seeded mt19937, and throws each mutant at a live server. The contract
// under arbitrary garbage is narrow: every connection must end with a
// parseable response stream followed by EOF, or a plain close — never a
// crash, a hang (2 s receive timeout = failure) or a leaked connection
// slot. Runs against both serving modes; the ASan+UBSan CI job runs this
// suite too, so "no crash" includes "no silent memory error".

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/time.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/filter_registry.h"
#include "server/client.h"
#include "server/net.h"
#include "server/protocol.h"
#include "server/server.h"

namespace shbf {
namespace {

std::unique_ptr<MembershipFilter> BuildFilter(const std::string& name,
                                              size_t keys) {
  FilterSpec spec = FilterSpec::ForKeys(keys, 12.0, 8);
  spec.max_count = 8;
  std::unique_ptr<MembershipFilter> filter;
  CheckOk(FilterRegistry::Global().Create(name, spec, &filter));
  for (size_t i = 0; i < keys; ++i) filter->Add("key-" + std::to_string(i));
  return filter;
}

/// One valid frame per opcode — the fuzz corpus. SNAPSHOT is left out on
/// purpose: a mutated path could make the server write a stray file, and
/// the path-parsing code it would exercise is identical to RELOAD's.
std::vector<std::string> BuildCorpus() {
  const std::vector<std::string> keys = {"key-1", "key-2", "absent"};
  std::vector<std::string> corpus;
  corpus.push_back(wire::BuildHello());
  corpus.push_back(
      wire::BuildQuery("members", wire::QueryMode::kMembership, keys));
  corpus.push_back(
      wire::BuildQuery("counting", wire::QueryMode::kCount, keys));
  corpus.push_back(
      wire::BuildKeysRequest(wire::Opcode::kAdd, "counting", keys));
  corpus.push_back(
      wire::BuildKeysRequest(wire::Opcode::kRemove, "counting", keys));
  corpus.push_back(wire::BuildNameRequest(wire::Opcode::kStats, "members"));
  corpus.push_back(wire::BuildList());
  corpus.push_back(wire::BuildPathRequest(wire::Opcode::kReload, "members",
                                          "/nonexistent/fuzz.shbf"));
  corpus.push_back(wire::BuildWhichSets(keys));
  corpus.push_back(
      wire::BuildKeysRequest(wire::Opcode::kIndexAdd, "members", keys));
  corpus.push_back(
      wire::BuildNameRequest(wire::Opcode::kIndexDrop, "members"));
  corpus.push_back(wire::BuildEmptyRequest(wire::Opcode::kMultisetList));
  corpus.push_back(wire::BuildMetrics());
  return corpus;
}

class ProtocolFuzzTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.legacy_threads = GetParam();
    options.num_workers = 4;
    server_ = std::make_unique<ShbfServer>(options);
    CheckOk(server_->RegisterFilter("members", BuildFilter("shbf_m", 500)));
    CheckOk(
        server_->RegisterFilter("counting", BuildFilter("shbf_x", 500)));
    CheckOk(server_->Start());
  }

  void TearDown() override { server_->Stop(); }

  /// Connects with a 2 s receive timeout — the hang detector.
  int Connect() {
    Status s;
    int fd = net::ConnectTcp("127.0.0.1", server_->port(), &s);
    EXPECT_GE(fd, 0) << s.ToString();
    timeval timeout{2, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    return fd;
  }

  /// Reads until EOF. Returns false on a receive timeout (= server hang);
  /// an RST from an aborted connection counts as a close, not a hang.
  bool DrainToEof(int fd, std::string* bytes) {
    char buffer[4096];
    while (true) {
      const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
      if (got == 0) return true;
      if (got < 0) {
        if (errno == EINTR) continue;
        if (errno == ECONNRESET) return true;
        return false;  // EAGAIN: the 2 s timeout fired
      }
      bytes->append(buffer, static_cast<size_t>(got));
    }
  }

  /// The response stream must be whole frames, each starting with a known
  /// status byte — garbage in, structure out.
  void CheckResponseStream(const std::string& bytes,
                           const std::string& context) {
    size_t cursor = 0;
    while (cursor < bytes.size()) {
      ASSERT_GE(bytes.size() - cursor, 4u)
          << context << ": trailing partial length prefix";
      uint32_t length = 0;
      for (int i = 0; i < 4; ++i) {
        length |= static_cast<uint32_t>(
                      static_cast<uint8_t>(bytes[cursor + i]))
                  << (8 * i);
      }
      cursor += 4;
      ASSERT_GE(length, 1u) << context << ": empty response frame";
      ASSERT_LE(length, wire::kMaxFrameBytes)
          << context << ": oversized response frame";
      ASSERT_GE(bytes.size() - cursor, length)
          << context << ": truncated response frame";
      const auto status = static_cast<uint8_t>(bytes[cursor]);
      ASSERT_LE(status,
                static_cast<uint8_t>(wire::WireStatus::kInternal))
          << context << ": unknown status byte " << int{status};
      cursor += length;
    }
  }

  /// One fuzz shot: optionally handshake, send the mutant, half-close,
  /// drain. Everything the server sends back must be structured.
  void Throw(const std::string& mutant, bool mutant_is_first_frame,
             const std::string& context) {
    int fd = Connect();
    std::string stream;
    if (!mutant_is_first_frame) stream = wire::BuildHello();
    stream += mutant;
    // The peer may have closed already (fatal response in flight):
    // a failed send is an acceptable outcome, not a test failure.
    (void)net::SendAll(fd, stream.data(), stream.size());
    ::shutdown(fd, SHUT_WR);
    std::string bytes;
    ASSERT_TRUE(DrainToEof(fd, &bytes)) << context << ": server hung";
    CheckResponseStream(bytes, context);
    net::CloseFd(fd);
  }

  std::unique_ptr<ShbfServer> server_;
};

TEST_P(ProtocolFuzzTest, MutatedFramesNeverCrashHangOrLeak) {
  const std::vector<std::string> corpus = BuildCorpus();
  std::mt19937 rng(0x5eedu);  // fixed seed: failures replay exactly
  constexpr int kMutationsPerKind = 24;
  for (size_t c = 0; c < corpus.size(); ++c) {
    const std::string& seed_frame = corpus[c];
    const bool is_hello = c == 0;
    for (int kind = 0; kind < 3; ++kind) {
      for (int iteration = 0; iteration < kMutationsPerKind; ++iteration) {
        std::string mutant = seed_frame;
        switch (kind) {
          case 0: {  // flip 1..4 bytes anywhere (length prefix included)
            const int flips = 1 + static_cast<int>(rng() % 4);
            for (int f = 0; f < flips; ++f) {
              mutant[rng() % mutant.size()] ^=
                  static_cast<char>(1 + rng() % 255);
            }
            break;
          }
          case 1:  // truncate to a strict prefix (possibly empty)
            mutant.resize(rng() % mutant.size());
            break;
          default: {  // extend with 1..64 random bytes
            const size_t extra = 1 + rng() % 64;
            for (size_t e = 0; e < extra; ++e) {
              mutant.push_back(static_cast<char>(rng() % 256));
            }
            break;
          }
        }
        Throw(mutant, is_hello,
              "corpus " + std::to_string(c) + " kind " +
                  std::to_string(kind) + " iteration " +
                  std::to_string(iteration));
        if (HasFatalFailure()) return;
      }
    }
  }
  // No connection slot may leak from any of the ~860 abuse rounds.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server_->active_connections() != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server_->active_connections(), 0u);
  // And the server must still serve a well-formed client.
  ShbfClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  std::vector<uint8_t> results;
  ASSERT_TRUE(client.Query("members", {"key-1"}, &results).ok());
  EXPECT_EQ(results[0], 1);
}

INSTANTIATE_TEST_SUITE_P(Modes, ProtocolFuzzTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "LegacyThreads" : "EventLoop";
                         });

}  // namespace
}  // namespace shbf
