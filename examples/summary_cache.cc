// summary_cache — the protocol that made Bloom filters famous in networking
// (Fan et al., the paper's reference [11], cited in §2.2): cooperating web
// proxies periodically exchange compact summaries of their cache contents so
// a miss can be forwarded to a sibling that (probably) has the object,
// instead of the origin server.
//
// This demo upgrades the summary from a standard BF to a ShbfM — same false
// positive rate, half the lookup cost — and uses the wire format
// (ToBytes/FromBytes) to actually ship it between the two "nodes".

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/chained_hash_table.h"
#include "core/rng.h"
#include "shbf/shbf_membership.h"
#include "trace/trace_generator.h"

namespace {

struct Proxy {
  std::string name;
  std::vector<std::string> cache;             // objects held locally
  std::optional<shbf::ShbfM> sibling_summary; // what the other proxy claims
};

// Builds the summary a proxy advertises: ~12 bits per cached object.
std::string AdvertiseSummary(const Proxy& proxy) {
  shbf::ShbfM summary({.num_bits = proxy.cache.size() * 12, .num_hashes = 8});
  for (const auto& object : proxy.cache) summary.Add(object);
  return summary.ToBytes();
}

}  // namespace

int main() {
  // Two proxies, 40k objects each, 10% shared (both fetched popular pages).
  shbf::TraceGenerator gen(19991207);  // Summary Cache's publication era :-)
  auto objects = gen.DistinctKeys(76000, 16);
  Proxy a{"proxy-A", {objects.begin(), objects.begin() + 40000}, {}};
  Proxy b{"proxy-B", {objects.begin() + 36000, objects.begin() + 76000}, {}};

  // 1) Exchange summaries as byte blobs (here: a string; in ICP: a UDP blast).
  std::string blob_a = AdvertiseSummary(a);
  std::string blob_b = AdvertiseSummary(b);
  std::printf("summary sizes on the wire: %zu and %zu bytes "
              "(vs ~%zu KB for the full key lists)\n",
              blob_a.size(), blob_b.size(), 40000 * 16 / 1024);

  shbf::CheckOk(shbf::ShbfM::FromBytes(blob_b, &a.sibling_summary));
  shbf::CheckOk(shbf::ShbfM::FromBytes(blob_a, &b.sibling_summary));

  // 2) Proxy A suffers local misses and consults B's summary before going to
  //    the origin. Three outcomes per miss:
  //      forwarded + sibling has it   -> saved an origin fetch (win)
  //      forwarded + sibling lacks it -> wasted hop (summary false positive)
  //      not forwarded                -> origin fetch (sibling never claims
  //                                      to lack what it has: no FNs)
  size_t saved = 0;
  size_t wasted = 0;
  size_t origin = 0;
  shbf::Rng pick(5);
  shbf::ChainedHashTable b_contents(2 * b.cache.size());
  for (const auto& object : b.cache) b_contents.Insert(object, 0);

  const size_t kMisses = 50000;
  for (size_t i = 0; i < kMisses; ++i) {
    // Requests skew towards objects someone has cached; 20% are cold.
    std::string want = (pick.NextBelow(10) < 8)
                           ? objects[pick.NextBelow(objects.size())]
                           : pick.NextBytes(16);
    if (a.sibling_summary->Contains(want)) {
      if (b_contents.Contains(want)) {
        ++saved;
      } else {
        ++wasted;
      }
    } else {
      ++origin;
    }
  }
  std::printf("\n%s handled %zu local misses:\n", a.name.c_str(), kMisses);
  std::printf("   forwarded to %s and served there: %zu\n", b.name.c_str(),
              saved);
  std::printf("   forwarded but wasted (summary FP): %zu (%.3f%%)\n", wasted,
              100.0 * wasted / kMisses);
  std::printf("   sent to origin:                    %zu\n", origin);
  std::printf(
      "\neach summary lookup costs k/2 = 4 memory accesses and 5 hashes — "
      "half of what the original BF-based Summary Cache paid per sibling\n");
  return 0;
}
