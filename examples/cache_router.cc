// cache_router — the paper's motivating association-query scenario (§1.1):
// a gateway fronting two content servers. Unpopular content lives on exactly
// one server; popular content is replicated on both for load balancing. For
// each incoming request the gateway must decide which server(s) can serve it
// — an association query over two OVERLAPPING sets, which one ShbfA answers
// with a single filter and zero-FP clear answers.
//
// The demo builds a catalog, routes a request stream, and contrasts ShbfA
// with the classic iBF (one Bloom filter per server).

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/ibf.h"
#include "core/rng.h"
#include "shbf/shbf_association.h"
#include "trace/workload.h"

namespace {

// Requests that only one server can serve go there; replicated content is
// load-balanced on a coin flip; unsure answers must fall back to a broadcast
// (query both servers) — the cost we want to minimize.
struct RoutingStats {
  size_t to_a = 0;
  size_t to_b = 0;
  size_t balanced = 0;
  size_t broadcast = 0;

  void Print(const char* name, size_t total) const {
    std::printf(
        "   %-6s  server A: %5zu   server B: %5zu   load-balanced: %5zu   "
        "broadcast (unsure): %zu (%.2f%%)\n",
        name, to_a, to_b, balanced, broadcast, 100.0 * broadcast / total);
  }
};

}  // namespace

int main() {
  // Catalog: 20k objects per server, 5k replicated (the "popular" tier).
  const size_t kPerServer = 20000;
  const size_t kReplicated = 5000;
  const uint32_t kHashes = 10;
  auto catalog = shbf::MakeAssociationWorkload(
      kPerServer, kPerServer, kReplicated, /*num_queries=*/100000,
      /*seed=*/2026);
  std::printf("catalog: %zu objects on A, %zu on B, %zu replicated\n",
              catalog.s1.size(), catalog.s2.size(), kReplicated);

  // Gateway structures: one ShbfA vs two per-server Bloom filters.
  shbf::ShbfA shbf_router(shbf::ShbfAParams::Optimal(
      kPerServer, kPerServer, kReplicated, kHashes));
  shbf_router.Build(catalog.s1, catalog.s2);
  shbf::IndividualBloomFilters ibf_router(
      shbf::IndividualBloomFilters::OptimalParams(kPerServer, kPerServer,
                                                  kHashes));
  for (const auto& key : catalog.s1) ibf_router.AddToS1(key);
  for (const auto& key : catalog.s2) ibf_router.AddToS2(key);
  std::printf("gateway memory: ShbfA %zu bits, iBF %zu bits\n\n",
              shbf_router.num_bits(), ibf_router.total_bits());

  shbf::Rng coin(7);
  RoutingStats shbf_stats;
  RoutingStats ibf_stats;
  size_t ibf_misroutes = 0;
  for (const auto& request : catalog.queries) {
    // --- route via ShbfA: clear answers are authoritative (§4.2).
    switch (shbf_router.Query(request.key)) {
      case shbf::AssociationOutcome::kS1Only:
        ++shbf_stats.to_a;
        break;
      case shbf::AssociationOutcome::kS2Only:
        ++shbf_stats.to_b;
        break;
      case shbf::AssociationOutcome::kIntersection:
        ++shbf_stats.balanced;
        (coin.Next() & 1) ? ++shbf_stats.to_a : ++shbf_stats.to_b;
        break;
      default:  // partial information: broadcast to be safe
        ++shbf_stats.broadcast;
        break;
    }
    // --- route via iBF: a double positive *might* be a false positive, so
    // treating it as "replicated" occasionally load-balances a request to a
    // server that cannot serve it.
    auto ibf_outcome = ibf_router.Query(request.key);
    if (ibf_outcome == shbf::AssociationOutcome::kS1Only) {
      ++ibf_stats.to_a;
    } else if (ibf_outcome == shbf::AssociationOutcome::kS2Only) {
      ++ibf_stats.to_b;
    } else {
      ++ibf_stats.balanced;
      bool pick_a = coin.Next() & 1;
      pick_a ? ++ibf_stats.to_a : ++ibf_stats.to_b;
      // Ground truth check: did the coin land on a server lacking the object?
      if ((pick_a && request.truth == shbf::AssociationTruth::kS2Only) ||
          (!pick_a && request.truth == shbf::AssociationTruth::kS1Only)) {
        ++ibf_misroutes;
      }
    }
  }

  std::printf("routing %zu requests:\n", catalog.queries.size());
  shbf_stats.Print("ShbfA", catalog.queries.size());
  ibf_stats.Print("iBF", catalog.queries.size());
  std::printf(
      "\nShbfA misroutes: 0 by construction (clear answers are never "
      "wrong; unsure -> broadcast)\niBF misroutes: %zu requests sent to a "
      "server that does not hold the object\n",
      ibf_misroutes);
  return 0;
}
