// dedup_stream — membership with deletions: a sliding-window duplicate
// suppressor, the kind of front-end an alert pipeline or crawler frontier
// uses. The counting twin CShbfM (§3.3) absorbs inserts and expirations in
// its counter array while queries run against the bit array at ShbfM speed —
// the paper's SRAM/DRAM split in miniature.

#include <cstdio>
#include <deque>
#include <string>

#include "core/chained_hash_table.h"
#include "core/rng.h"
#include "shbf/counting_shbf_membership.h"
#include "trace/trace_generator.h"

int main() {
  // A window of the last 20k events; ~12 bits per live element.
  const size_t kWindow = 20000;
  shbf::CountingShbfM seen({.num_bits = 240000,
                            .num_hashes = 8,
                            .counter_bits = 4});  // §3.3: 4-bit counters
  std::deque<std::string> window;

  // Event stream: 200k events drawn from a 60k-ID universe, so genuine
  // repeats arrive both inside and outside the window.
  const size_t kEvents = 200000;
  shbf::TraceGenerator gen(424242);
  auto universe = gen.DistinctFlowKeys(60000);
  shbf::Rng pick(99);

  size_t suppressed = 0;
  size_t emitted = 0;
  size_t false_suppressions = 0;  // suppressed but NOT actually in window
  shbf::ChainedHashTable truth(2 * kWindow);  // exact window contents

  for (size_t i = 0; i < kEvents; ++i) {
    const std::string& event = universe[pick.NextBelow(universe.size())];

    if (seen.Contains(event)) {
      ++suppressed;
      // The only possible error is a false positive (never a miss).
      if (!truth.Contains(event)) ++false_suppressions;
    } else {
      ++emitted;
    }

    // Slide the window: insert the new event, expire the oldest.
    window.push_back(event);
    seen.Insert(event);
    truth.AddTo(event, 1);
    if (window.size() > kWindow) {
      const std::string& oldest = window.front();
      seen.Delete(oldest);  // counters make deletion safe
      uint64_t* c = truth.Find(oldest);
      if (--*c == 0) truth.Erase(oldest);
      window.pop_front();
    }
  }

  std::printf("processed %zu events over a %zu-event window\n", kEvents,
              kWindow);
  std::printf("   emitted:            %zu\n", emitted);
  std::printf("   suppressed:         %zu\n", suppressed);
  std::printf("   false suppressions: %zu (%.4f%% of queries; Bloom-style "
              "FPs, never misses)\n",
              false_suppressions, 100.0 * false_suppressions / kEvents);
  std::printf("   filter still consistent with its counters: %s\n",
              seen.SynchronizedWithCounters() ? "yes" : "NO");
  std::printf(
      "\nthe counting array costs 4x the bits but lives off the query path; "
      "queries touch only the %zu-bit array at k/2 = 4 accesses each\n",
      seen.num_bits());
  return 0;
}
