// flow_monitor — the paper's multiplicity-query scenario (§1.1): network
// measurement of per-flow packet counts at a router. A synthetic backbone
// trace (13-byte 5-tuple flow IDs, Zipf-distributed flow sizes — the
// substitute for the paper's proprietary 10 Gbps capture, see DESIGN.md) is
// summarized three ways:
//   * ShbfX      — counts encoded as offsets; k bits per flow, any size
//   * Spectral BF — 6-bit counters, minimum selection
//   * SCM sketch — the shifting Count-Min variant (§5.5)
// and the demo reports how often each structure returns the exact flow size.
// ShbfX answers through the BatchQueryEngine: all flows are resolved in one
// batched call (hash pre-compute + prefetch), the way a measurement epoch
// would drain at line rate.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/spectral_bloom_filter.h"
#include "core/chained_hash_table.h"
#include "engine/batch_query_engine.h"
#include "shbf/scm_sketch.h"
#include "shbf/shbf_multiplicity.h"
#include "trace/trace_generator.h"

int main() {
  // 1) Capture: 400k packets over 50k flows, Zipf(0.9) sizes, capped at 57
  //    packets per flow (the paper's c) for the ShbfX encoding.
  const size_t kPackets = 400000;
  const size_t kFlows = 50000;
  const uint32_t kMaxCount = 57;
  const uint32_t kHashes = 10;
  shbf::TraceGenerator capture(20260611);
  std::vector<std::string> trace = capture.PacketTrace(kPackets, kFlows, 0.9);

  // Ground truth (and the ShbfX build input): flow -> packet count, capped.
  shbf::ChainedHashTable true_counts(2 * kFlows);
  for (const auto& packet : trace) {
    uint64_t* count = true_counts.Find(packet);
    if (count == nullptr) {
      true_counts.Insert(packet, 1);
    } else if (*count < kMaxCount) {
      ++*count;
    }
  }
  std::printf("trace: %zu packets, %zu distinct flows (sizes capped at %u)\n",
              trace.size(), true_counts.size(), kMaxCount);

  // 2) Summaries at the paper's memory discipline: 1.5x optimal bits each.
  const size_t memory_bits =
      static_cast<size_t>(1.5 * kFlows * kHashes / std::log(2.0));
  shbf::ShbfX shbf_counts(
      {.num_bits = memory_bits, .num_hashes = kHashes, .max_count = kMaxCount});
  shbf::SpectralBloomFilter spectral({.num_counters = memory_bits / 6,
                                      .num_hashes = kHashes,
                                      .counter_bits = 6});
  shbf::ScmSketch scm({.depth = kHashes,
                       .width = memory_bits / 8 / kHashes,
                       .counter_bits = 8});
  true_counts.ForEach([&](std::string_view flow, uint64_t count) {
    shbf_counts.InsertWithCount(flow, static_cast<uint32_t>(count));
  });
  for (const auto& packet : trace) {
    spectral.Insert(packet);
    scm.Insert(packet);
  }
  std::printf("summaries: %zu bits each (1.5x optimal; flow table is %zux "
              "larger)\n\n",
              memory_bits, true_counts.size() * 21 * 8 / memory_bits);

  // 3) Query every flow's size and compare against the truth. The ShbfX
  //    answers come from one engine-batched call over all flows; Spectral/
  //    SCM saw every packet (not the capped counts), so compare those
  //    against the uncapped count where it matters.
  std::vector<std::string> flows;
  std::vector<uint64_t> truth;
  flows.reserve(true_counts.size());
  true_counts.ForEach([&](std::string_view flow, uint64_t count) {
    flows.emplace_back(flow);
    truth.push_back(count);
  });
  shbf::BatchQueryEngine engine({.batch_size = 32});
  std::vector<uint32_t> from_shbf;
  engine.QueryCountBatch(shbf_counts, flows,
                         shbf::MultiplicityReportPolicy::kSmallest,
                         &from_shbf);

  size_t exact_shbf = 0;
  size_t exact_spectral = 0;
  size_t exact_scm = 0;
  size_t over_shbf = 0;
  const size_t considered = flows.size();
  for (size_t i = 0; i < flows.size(); ++i) {
    exact_shbf += (from_shbf[i] == truth[i]);
    over_shbf += (from_shbf[i] > truth[i]);
    exact_spectral += (spectral.QueryCount(flows[i]) == truth[i]);
    exact_scm += (scm.QueryCount(flows[i]) == truth[i]);
  }
  std::printf("exact flow-size answers over %zu flows:\n", considered);
  std::printf("   ShbfX        %6.2f%%   (overestimates: %.2f%%)\n",
              100.0 * exact_shbf / considered, 100.0 * over_shbf / considered);
  std::printf("   Spectral BF  %6.2f%%\n", 100.0 * exact_spectral / considered);
  std::printf("   SCM sketch   %6.2f%%\n", 100.0 * exact_scm / considered);

  // 4) The measurement question the intro motivates: elephant flows —
  //    again one engine-batched sweep, under the never-underestimating
  //    largest-candidate policy.
  std::printf("\nflows with >= 40 packets according to ShbfX:\n");
  std::vector<uint32_t> estimates;
  engine.QueryCountBatch(shbf_counts, flows,
                         shbf::MultiplicityReportPolicy::kLargest,
                         &estimates);
  size_t elephants = 0;
  size_t confirmed = 0;
  for (size_t i = 0; i < flows.size(); ++i) {
    if (estimates[i] >= 40) {
      ++elephants;
      confirmed += (truth[i] >= 40);
    }
  }
  std::printf("   flagged %zu, of which %zu truly >= 40 "
              "(largest-candidate policy never misses one)\n",
              elephants, confirmed);
  return 0;
}
