// Quickstart: the 60-second tour of the Shifting Bloom Filter library.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Covers the three query families on small, printable data:
//   1. membership  (ShbfM)        — "have we seen this key?"
//   2. association (ShbfA)        — "which of two sets holds this key?"
//   3. multiplicity (ShbfX)       — "how many times did this key occur?"

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/membership_theory.h"
#include "shbf/shbf_association.h"
#include "shbf/shbf_membership.h"
#include "shbf/shbf_multiplicity.h"

int main() {
  // ---------------------------------------------------------------- membership
  std::printf("1) membership: ShbfM\n");
  // Size the filter: ~10 bits/element gives ~1% FPR at the optimal k.
  shbf::ShbfM::Params params;
  params.num_bits = 10000;
  params.num_hashes = 8;  // k; the filter computes only k/2 + 1 = 5 hashes
  shbf::ShbfM members(params);

  for (const char* user : {"alice", "bob", "carol"}) members.Add(user);
  for (const char* probe : {"alice", "mallory"}) {
    std::printf("   contains(%-7s) = %s\n", probe,
                members.Contains(probe) ? "true" : "false");
  }
  std::printf("   predicted FPR at n=1000: %.4f (Eq 1)\n",
              shbf::theory::ShbfMFpr(params.num_bits, 1000, params.num_hashes,
                                     params.max_offset_span));

  // ---------------------------------------------------------------- association
  std::printf("\n2) association: ShbfA (one filter for two sets)\n");
  std::vector<std::string> server_a{"/index.html", "/logo.png", "/hot.mp4"};
  std::vector<std::string> server_b{"/about.html", "/logo.png", "/hot.mp4"};
  shbf::ShbfA router(shbf::ShbfAParams::Optimal(
      server_a.size(), server_b.size(), /*n_intersection=*/2,
      /*num_hashes=*/10));
  router.Build(server_a, server_b);
  for (const char* url : {"/index.html", "/about.html", "/hot.mp4"}) {
    std::printf("   %-12s -> %s\n", url,
                shbf::AssociationOutcomeName(router.Query(url)));
  }

  // ---------------------------------------------------------------- multiplicity
  std::printf("\n3) multiplicity: ShbfX (counts in offsets, not counters)\n");
  shbf::ShbfXParams multi_params;
  multi_params.num_bits = 4096;
  multi_params.num_hashes = 8;
  multi_params.max_count = 57;  // the paper's c
  shbf::ShbfX counts(multi_params);
  counts.Build({"tcp", "udp", "tcp", "icmp", "tcp", "udp"});
  for (const char* proto : {"tcp", "udp", "icmp", "sctp"}) {
    std::printf("   count(%-4s) = %u\n", proto, counts.QueryCount(proto));
  }

  std::printf(
      "\nWhy it is fast: each base bit and its shifted partner(s) live in "
      "one unaligned 64-bit window,\nso every pair/triple of probes costs "
      "one memory access and the offset hash replaces k/2 hash calls.\n");
  return 0;
}
