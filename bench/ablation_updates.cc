// Ablation A5 — update-path economics across the counting structures. The
// paper's §2.3 dismisses DCF because "the use of two filters degrades query
// performance" and spectral BF's third version because updating gets "time
// consuming and more complex"; CShBF twins claim k/2-access updates (§3.3).
// This bench puts numbers on those claims: insert/delete throughput, query
// throughput after churn, and live memory for CBF, CShbfM, Spectral BF,
// DCF, and the two CountingShbfX modes.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baselines/counting_bloom_filter.h"
#include "baselines/dynamic_count_filter.h"
#include "baselines/spectral_bloom_filter.h"
#include "bench_util/table.h"
#include "bench_util/timer.h"
#include "shbf/counting_shbf_membership.h"
#include "shbf/shbf_multiplicity.h"
#include "trace/workload.h"

namespace shbf {
namespace {

constexpr size_t kN = 20000;
constexpr uint32_t kK = 8;
constexpr size_t kCells = 240000;  // ~12 cells per element

struct Result {
  const char* name;
  double insert_mops;
  double delete_mops;
  double query_mqps;
  size_t memory_bits;
};

template <typename InsertFn, typename DeleteFn, typename QueryFn>
Result Measure(const char* name, const std::vector<std::string>& keys,
               size_t rounds, InsertFn insert, DeleteFn del, QueryFn query,
               size_t memory_bits) {
  WallTimer timer;
  for (size_t r = 0; r < rounds; ++r) {
    for (const auto& key : keys) insert(key);
    if (r + 1 < rounds) {
      for (const auto& key : keys) del(key);
    }
  }
  double insert_seconds = timer.ElapsedSeconds() / (2 * rounds - 1) * rounds;
  // Approximation: inserts and deletes interleave above; time them apart.
  timer.Reset();
  uint64_t sink = 0;
  for (int rep = 0; rep < 10; ++rep) {
    for (const auto& key : keys) sink += query(key);
  }
  double query_seconds = timer.ElapsedSeconds();
  timer.Reset();
  for (const auto& key : keys) del(key);
  double delete_seconds = timer.ElapsedSeconds();
  DoNotOptimize(sink);
  return {name, Mops(rounds * keys.size(), insert_seconds),
          Mops(keys.size(), delete_seconds),
          Mops(10 * keys.size(), query_seconds), memory_bits};
}

void Run(size_t rounds) {
  auto w = MakeMembershipWorkload(kN, 0, 5150);

  std::vector<Result> results;

  CountingBloomFilter cbf(
      {.num_counters = kCells, .num_hashes = kK, .counter_bits = 8});
  results.push_back(Measure(
      "CBF (8-bit)", w.members, rounds,
      [&](const std::string& k) { cbf.Insert(k); },
      [&](const std::string& k) { cbf.Delete(k); },
      [&](const std::string& k) { return cbf.Contains(k) ? 1u : 0u; },
      kCells * 8));

  CountingShbfM cshbf(
      {.num_bits = kCells, .num_hashes = kK, .counter_bits = 8});
  results.push_back(Measure(
      "CShBF_M (8-bit + bits)", w.members, rounds,
      [&](const std::string& k) { cshbf.Insert(k); },
      [&](const std::string& k) { cshbf.Delete(k); },
      [&](const std::string& k) { return cshbf.Contains(k) ? 1u : 0u; },
      kCells * 9));

  SpectralBloomFilter spectral(
      {.num_counters = kCells, .num_hashes = kK, .counter_bits = 8});
  results.push_back(Measure(
      "Spectral BF (8-bit)", w.members, rounds,
      [&](const std::string& k) { spectral.Insert(k); },
      [&](const std::string& k) { spectral.Delete(k); },
      [&](const std::string& k) { return spectral.QueryCount(k); },
      kCells * 8));

  DynamicCountFilter dcf(
      {.num_counters = kCells, .num_hashes = kK, .base_bits = 4});
  results.push_back(Measure(
      "DCF (4-bit + OFV)", w.members, rounds,
      [&](const std::string& k) { dcf.Insert(k); },
      [&](const std::string& k) { dcf.Delete(k); },
      [&](const std::string& k) { return dcf.QueryCount(k); },
      dcf.memory_bits()));

  CountingShbfX::Params xp{.filter = {.num_bits = kCells,
                                      .num_hashes = kK,
                                      .max_count = 57},
                           .counter_bits = 8,
                           .mode = CountingShbfX::UpdateMode::kTableBacked};
  CountingShbfX cshbfx(xp);
  results.push_back(Measure(
      "CShBF_X (table-backed)", w.members, rounds,
      [&](const std::string& k) { cshbfx.Insert(k); },
      [&](const std::string& k) { cshbfx.Delete(k); },
      [&](const std::string& k) { return cshbfx.QueryCount(k); },
      kCells * 9));

  PrintBanner("Ablation A5: update-path costs (n=20000, k=8, 240k cells)");
  TablePrinter table({"structure", "insert Mops", "delete Mops", "query Mqps",
                      "live bits"});
  for (const Result& r : results) {
    table.AddRow({r.name, TablePrinter::Num(r.insert_mops, 2),
                  TablePrinter::Num(r.delete_mops, 2),
                  TablePrinter::Num(r.query_mqps, 2),
                  std::to_string(r.memory_bits)});
  }
  table.Print();
  std::printf(
      "finding    : CShBF_M queries at ShBF speed while paying CBF-like "
      "update costs; DCF's two-vector reads and rebuilds (%llu here) are "
      "the slowdown the paper cites; CShBF_X pays for the move-the-offset "
      "discipline on every update but keeps multiplicity queries cheap\n",
      static_cast<unsigned long long>(dcf.rebuilds()));
}

}  // namespace
}  // namespace shbf

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  shbf::PrintBanner("Ablation: update paths of the counting structures");
  shbf::Run(std::max<size_t>(1, static_cast<size_t>(3 * scale)));
  return 0;
}
