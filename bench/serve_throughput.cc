// serve_throughput — multi-connection load generator for shbf_server:
// queries/sec and p50/p99 frame latency through the full wire path
// (client → TCP loopback → server → BatchQueryEngine → response), with
// frame pipelining (--pipeline=N keeps N request frames in flight per
// connection) and C1K-scale connection counts against the epoll serving
// mode.
//
// Two ways to point it at a server:
//   default              spins up an in-process ShbfServer on an ephemeral
//                        loopback port, loads it, and tears it down — the
//                        self-contained acceptance bench
//   --connect=host:port  drives an external shbf_server; the target must
//                        serve a filter named by --serve-name (queries are
//                        member keys "key-0".."key-N")
//
// usage: bench_serve_throughput [--connect=host:port] [--filter=shbf_m]
//          [--serve-name=bench] [--build-keys=N] [--query-keys=N]
//          [--bits-per-key=B] [--k=K] [--shards=S] [--connections=C]
//          [--frame-keys=N] [--pipeline=N] [--server-mode=epoll|legacy]
//          [--workers=N] [--compare] [--json=PATH] [--smoke]
//          [--compare-metrics] [--metrics-overhead-bound=PCT]
//
// CSV on stdout: filter,mode,connections,pipeline,frame_keys,queries,
// seconds,qps,p50_us,p99_us,p999_us — latency is per frame (one batched
// request/response; under pipelining it includes queue time in the
// window). --compare runs the epoll AND legacy modes over the identical
// workload and prints one row each. --json appends the same rows to a
// JSON report (CI archives BENCH_serve.json); each row also carries the
// SERVER-side queue-wait quantiles (server_queue_p50_us/p99/p999),
// fetched over the wire with the METRICS opcode after the timed run.
//
// --compare-metrics is the observability overhead gate: it drives the
// identical workload with metrics recording ON and then OFF (the runtime
// obs::SetEnabled toggle; best of three passes each) and fails if the
// instrumented build is more than --metrics-overhead-bound percent
// (default 3) slower. CI runs it against the default (compiled-in) build,
// so the bound also holds transitively against -DSHBF_DISABLE_METRICS=ON.
//
// --smoke is the CI mode: 256 pipelined connections over small sizes, and
// instead of chasing qps it verifies the remote answers are bit-identical
// to a local BatchQueryEngine over an identical filter — membership on
// the main filter AND counts on a multiplicity filter — then checks the
// server shuts down cleanly with zero protocol errors and prints
// "# smoke OK". Exits nonzero on any divergence.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/filter_registry.h"
#include "bench_util/json_report.h"
#include "bench_util/timer.h"
#include "core/serde.h"
#include "engine/batch_query_engine.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/net.h"
#include "server/protocol.h"
#include "server/server.h"

namespace shbf {
namespace {

struct Config {
  std::string connect;  // empty = in-process server
  std::string filter_name = "shbf_m";
  std::string serve_name = "bench";
  size_t build_keys = 2000000;
  size_t query_keys = 1000000;
  double bits_per_key = 12.0;
  uint32_t num_hashes = 8;
  uint32_t shards = 4;
  uint32_t connections = 4;
  size_t frame_keys = 512;
  size_t pipeline = 1;        // request frames in flight per connection
  size_t driver_threads = 0;  // 0 = min(connections, 8)
  bool legacy_mode = false;   // --server-mode=legacy
  bool compare = false;       // run epoll AND legacy, one row each
  size_t workers = 0;         // event-loop workers (0 = auto)
  std::string json_path;
  bool smoke = false;
  bool compare_metrics = false;       // metrics on vs off overhead gate
  double metrics_overhead_bound = 3;  // max % slowdown tolerated
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

double Percentile(std::vector<double>* sorted_into, double fraction) {
  if (sorted_into->empty()) return 0.0;
  std::sort(sorted_into->begin(), sorted_into->end());
  const size_t index = std::min(
      sorted_into->size() - 1,
      static_cast<size_t>(fraction * static_cast<double>(sorted_into->size())));
  return (*sorted_into)[index];
}

/// One pipelined connection's driver-side state.
struct ConnState {
  int fd = -1;
  size_t cursor = 0;  // next query index to send
  size_t end = 0;     // one past the slice
  struct InFlight {
    size_t cursor;  // first query index of the frame
    size_t count;   // keys in the frame
    WallTimer timer;
  };
  std::deque<InFlight> in_flight;

  bool finished() const { return cursor >= end && in_flight.empty(); }
};

/// Round-robins one driver thread over MANY pipelined connections: fill
/// each connection's window (up to `window` request frames in flight),
/// then retire one response per visit — so a thousand connections cost a
/// handful of driver threads, not a thousand. Responses are validated and
/// (optionally) collected; frame latencies (send → response, including
/// window queue time) append to `latencies_us`. Returns false on any wire
/// error.
bool DriveConnections(const std::string& host, uint16_t port,
                      const std::string& serve_name,
                      const std::vector<std::string>& queries,
                      std::vector<ConnState>* conns, size_t frame_keys,
                      size_t window, std::vector<double>* latencies_us,
                      std::vector<uint8_t>* answers) {
  const std::string hello = wire::BuildHello();
  std::string response;
  bool ok = true;
  for (ConnState& conn : *conns) {
    Status status;
    conn.fd = net::ConnectTcp(host, port, &status);
    if (conn.fd < 0 ||
        !net::SendAll(conn.fd, hello.data(), hello.size()) ||
        net::ReadFrame(conn.fd, wire::kMaxFrameBytes, &response) !=
            net::FrameRead::kOk ||
        response.empty() || response[0] != 0) {
      ok = false;
      break;
    }
  }
  std::vector<std::string> frame;
  size_t live = conns->size();
  while (ok && live > 0) {
    live = 0;
    for (ConnState& conn : *conns) {
      if (conn.finished()) continue;
      ++live;
      while (conn.cursor < conn.end && conn.in_flight.size() < window) {
        const size_t stop = std::min(conn.cursor + frame_keys, conn.end);
        frame.assign(queries.begin() + static_cast<ptrdiff_t>(conn.cursor),
                     queries.begin() + static_cast<ptrdiff_t>(stop));
        const std::string request = wire::BuildQuery(
            serve_name, wire::QueryMode::kMembership, frame);
        conn.in_flight.push_back(
            {conn.cursor, stop - conn.cursor, WallTimer()});
        if (!net::SendAll(conn.fd, request.data(), request.size())) {
          ok = false;
          break;
        }
        conn.cursor = stop;
      }
      if (!ok || conn.in_flight.empty()) break;
      // Retire the oldest response (they arrive in request order).
      if (net::ReadFrame(conn.fd, wire::kMaxFrameBytes, &response) !=
          net::FrameRead::kOk) {
        ok = false;
        break;
      }
      ConnState::InFlight done = conn.in_flight.front();
      conn.in_flight.pop_front();
      latencies_us->push_back(done.timer.ElapsedSeconds() * 1e6);
      wire::WireStatus wire_status;
      std::string_view payload;
      std::string message;
      if (!wire::ParseResponse(response, &wire_status, &payload, &message) ||
          wire_status != wire::WireStatus::kOk) {
        ok = false;
        break;
      }
      ByteReader reader(payload);
      uint8_t mode = 0;
      uint64_t count = 0;
      if (!reader.GetU8(&mode) || !reader.GetU64(&count) ||
          count != done.count || reader.remaining() != count) {
        ok = false;
        break;
      }
      if (answers != nullptr) {
        for (size_t i = 0; i < count; ++i) {
          uint8_t bit = 0;
          reader.GetU8(&bit);
          (*answers)[done.cursor + i] = bit;
        }
      }
    }
  }
  for (ConnState& conn : *conns) net::CloseFd(conn.fd);
  return ok;
}

int Fail(const char* what) {
  std::fprintf(stderr, "SMOKE FAILED: %s\n", what);
  return 1;
}

/// One measured (or verified) pass against one serving mode. Prints a CSV
/// row (and appends a JSON row); in smoke mode also runs the bit-identical
/// and clean-shutdown checks. Returns a process exit code.
int RunMode(const Config& config, bool legacy, const std::string& host_in,
            uint16_t port_in, const std::string& served_blob,
            const std::vector<std::string>& build_keys,
            const std::vector<std::string>& queries,
            const MembershipFilter* local, const FilterSpec& spec,
            JsonReport* report, double* qps_out = nullptr) {
  const auto& registry = FilterRegistry::Global();
  std::unique_ptr<ShbfServer> server;
  std::string host = host_in;
  uint16_t port = port_in;
  const char* mode_name = legacy ? "legacy" : "epoll";
  if (config.connect.empty()) {
    std::unique_ptr<MembershipFilter> served;
    Status s = registry.Deserialize(served_blob, &served);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    ServerOptions options;
    options.legacy_threads = legacy;
    options.num_workers = config.workers;
    server = std::make_unique<ShbfServer>(options);
    CheckOk(server->RegisterFilter(config.serve_name, std::move(served)));
    if (config.smoke) {
      // Count-mode twin: a bare multiplicity filter with duplicate adds.
      FilterSpec count_spec = spec;
      count_spec.shards = 1;
      std::unique_ptr<MembershipFilter> counting;
      CheckOk(registry.Create("shbf_x", count_spec, &counting));
      for (const auto& key : build_keys) counting->Add(key);
      for (size_t i = 0; i < build_keys.size(); i += 3) {
        counting->Add(build_keys[i]);  // every third key has count 2
      }
      CheckOk(server->RegisterFilter("bench_counts", std::move(counting)));
    }
    s = server->Start();
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    port = server->port();
  } else {
    mode_name = "external";
  }

  // Each driver thread round-robins a shard of the connections, so the
  // load generator itself stays cheap at C1K (a thousand blocking driver
  // threads would measure the driver's scheduler, not the server).
  const size_t driver_threads =
      config.driver_threads != 0
          ? std::min<size_t>(config.driver_threads, config.connections)
          : std::min<size_t>(config.connections, 8);
  std::vector<uint8_t> remote_answers(config.query_keys, 0);
  std::vector<std::vector<double>> latencies(driver_threads);
  std::vector<uint8_t> ok(driver_threads, 0);
  const size_t slice =
      (config.query_keys + config.connections - 1) / config.connections;
  std::vector<std::vector<ConnState>> shards(driver_threads);
  for (uint32_t c = 0; c < config.connections; ++c) {
    ConnState conn;
    conn.cursor = std::min<size_t>(c * slice, config.query_keys);
    conn.end = std::min(conn.cursor + slice, config.query_keys);
    shards[c % driver_threads].push_back(conn);
  }
  WallTimer timer;
  std::vector<std::thread> drivers;
  for (size_t t = 0; t < driver_threads; ++t) {
    drivers.emplace_back([&, t] {
      ok[t] = DriveConnections(host, port, config.serve_name, queries,
                               &shards[t], config.frame_keys,
                               config.pipeline, &latencies[t],
                               config.smoke ? &remote_answers : nullptr)
                  ? 1
                  : 0;
    });
  }
  for (auto& driver : drivers) driver.join();
  const double seconds = timer.ElapsedSeconds();
  for (size_t t = 0; t < driver_threads; ++t) {
    if (!ok[t]) {
      std::fprintf(stderr, "error: driver thread %zu failed (%s)\n", t,
                   mode_name);
      return 1;
    }
  }

  std::vector<double> all_latencies;
  for (auto& thread_latencies : latencies) {
    all_latencies.insert(all_latencies.end(), thread_latencies.begin(),
                         thread_latencies.end());
  }
  std::vector<double> p99_copy = all_latencies;
  std::vector<double> p999_copy = all_latencies;
  const double p50 = Percentile(&all_latencies, 0.50);
  const double p99 = Percentile(&p99_copy, 0.99);
  const double p999 = Percentile(&p999_copy, 0.999);
  const double qps = static_cast<double>(config.query_keys) / seconds;
  if (qps_out != nullptr) *qps_out = qps;
  std::printf("%s,%s,%u,%zu,%zu,%zu,%.4f,%.0f,%.1f,%.1f,%.1f\n",
              config.filter_name.c_str(), mode_name, config.connections,
              config.pipeline, config.frame_keys, config.query_keys, seconds,
              qps, p50, p99, p999);
  if (report != nullptr) {
    JsonRow& row = report->AddRow();
    row.Set("filter", config.filter_name)
        .Set("mode", mode_name)
        .Set("connections", uint64_t{config.connections})
        .Set("pipeline", uint64_t{config.pipeline})
        .Set("frame_keys", uint64_t{config.frame_keys})
        .Set("queries", uint64_t{config.query_keys})
        .Set("seconds", seconds)
        .Set("keys_per_sec", qps)
        .Set("p50_us", p50)
        .Set("p99_us", p99)
        .Set("p999_us", p999);
    // The server's own view of the run: queue-wait quantiles over the
    // METRICS opcode, splitting client-observed latency into waiting vs
    // handling. Best effort — a pre-v3 --connect target just lacks the
    // fields (legacy mode reports zeros: frames are handled inline).
    ShbfClient metrics_client;
    ShbfClient::ServerMetrics server_metrics;
    if (metrics_client.Connect(host, port).ok() &&
        metrics_client.Metrics(&server_metrics).ok()) {
      if (const obs::HistogramSnapshot* queue_wait =
              server_metrics.snapshot.FindHistogram("server.queue_wait_us")) {
        row.Set("server_queue_p50_us", queue_wait->Quantile(0.50))
            .Set("server_queue_p99_us", queue_wait->Quantile(0.99))
            .Set("server_queue_p999_us", queue_wait->Quantile(0.999));
      }
    }
    metrics_client.Close();
  }

  // ---- smoke verification ------------------------------------------------
  if (config.smoke) {
    // Membership: remote answers must be bit-identical to a local engine
    // pass over the identical filter.
    BatchQueryEngine engine;
    std::vector<uint8_t> local_answers;
    engine.ContainsBatch(*local, queries, &local_answers);
    for (size_t i = 0; i < queries.size(); ++i) {
      if ((remote_answers[i] != 0) != (local_answers[i] != 0)) {
        std::fprintf(stderr,
                     "SMOKE FAILED: membership divergence at %zu (%s)\n", i,
                     mode_name);
        return 1;
      }
    }
    // Counts: same check in COUNT mode against the multiplicity twin.
    FilterSpec count_spec = spec;
    count_spec.shards = 1;
    std::unique_ptr<MultiplicityFilter> local_counts;
    CheckOk(registry.CreateMultiplicity("shbf_x", count_spec, &local_counts));
    for (const auto& key : build_keys) local_counts->Add(key);
    for (size_t i = 0; i < build_keys.size(); i += 3) {
      local_counts->Add(build_keys[i]);
    }
    std::vector<uint64_t> local_count_answers;
    engine.QueryCountBatch(*local_counts, queries, &local_count_answers);
    ShbfClient client;
    if (!client.Connect(host, port).ok()) return Fail("count connect");
    for (size_t begin = 0; begin < queries.size();
         begin += config.frame_keys) {
      const size_t end =
          std::min(begin + config.frame_keys, queries.size());
      const std::vector<std::string> frame(queries.begin() + begin,
                                           queries.begin() + end);
      std::vector<uint64_t> counts;
      if (!client.QueryCount("bench_counts", frame, &counts).ok()) {
        return Fail("count query");
      }
      for (size_t i = 0; i < frame.size(); ++i) {
        if (counts[i] != local_count_answers[begin + i]) {
          return Fail("count divergence");
        }
      }
    }
    client.Close();
    const ShbfServer::Counters counters = server->counters();
    server->Stop();
    if (server->running()) return Fail("server still running after Stop");
    if (server->active_connections() != 0) {
      return Fail("connections leaked past Stop");
    }
    if (counters.protocol_errors != 0) return Fail("protocol errors");
    if (counters.keys_queried < config.query_keys) {
      return Fail("server undercounted queries");
    }
    std::printf("# smoke OK (%s: %llu frames, %llu keys, clean shutdown)\n",
                mode_name, static_cast<unsigned long long>(counters.frames),
                static_cast<unsigned long long>(counters.keys_queried));
  }
  return 0;
}

int Main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--smoke") == 0) {
      config.smoke = true;
    } else if (std::strcmp(argv[i], "--compare") == 0) {
      config.compare = true;
    } else if (std::strcmp(argv[i], "--compare-metrics") == 0) {
      config.compare_metrics = true;
    } else if (ParseFlag(argv[i], "metrics-overhead-bound", &value)) {
      config.metrics_overhead_bound = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "connect", &value)) {
      config.connect = value;
    } else if (ParseFlag(argv[i], "filter", &value)) {
      config.filter_name = value;
    } else if (ParseFlag(argv[i], "serve-name", &value)) {
      config.serve_name = value;
    } else if (ParseFlag(argv[i], "build-keys", &value)) {
      config.build_keys = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "query-keys", &value)) {
      config.query_keys = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "bits-per-key", &value)) {
      config.bits_per_key = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "k", &value)) {
      config.num_hashes = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "shards", &value)) {
      config.shards = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "connections", &value)) {
      config.connections = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "frame-keys", &value)) {
      config.frame_keys = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "pipeline", &value)) {
      config.pipeline = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "driver-threads", &value)) {
      config.driver_threads = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "workers", &value)) {
      config.workers = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "json", &value)) {
      config.json_path = value;
    } else if (ParseFlag(argv[i], "server-mode", &value)) {
      if (value == "legacy") {
        config.legacy_mode = true;
      } else if (value != "epoll") {
        std::fprintf(stderr, "error: --server-mode=epoll|legacy\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve_throughput [--connect=host:port] "
                   "[--filter=<name>] [--serve-name=bench] [--build-keys=N] "
                   "[--query-keys=N] [--bits-per-key=B] [--k=K] [--shards=S] "
                   "[--connections=C] [--frame-keys=N] [--pipeline=N] "
                   "[--driver-threads=T] [--server-mode=epoll|legacy] "
                   "[--workers=N] [--compare] [--json=PATH] [--smoke] "
                   "[--compare-metrics] [--metrics-overhead-bound=PCT]\n");
      return 2;
    }
  }
  if (config.smoke) {
    // C256 with pipelining: the event-loop acceptance shape, small enough
    // for sanitizer CI. 65536 queries / 256 connections = 16 frames of 16
    // keys per connection, window 4.
    config.build_keys = 20000;
    config.query_keys = 65536;
    config.connections = 256;
    config.frame_keys = 16;
    config.pipeline = 4;
  }
  if (config.build_keys == 0 || config.query_keys == 0 ||
      config.connections == 0 || config.frame_keys == 0 ||
      config.pipeline == 0) {
    std::fprintf(stderr, "error: all sizes must be positive\n");
    return 2;
  }
  if (config.smoke && !config.connect.empty()) {
    std::fprintf(stderr,
                 "error: --smoke needs the in-process server "
                 "(drop --connect)\n");
    return 2;
  }
  if (config.compare && !config.connect.empty()) {
    std::fprintf(stderr, "error: --compare needs the in-process server\n");
    return 2;
  }
  if (config.compare_metrics && !config.connect.empty()) {
    std::fprintf(stderr,
                 "error: --compare-metrics needs the in-process server\n");
    return 2;
  }

  std::vector<std::string> build_keys(config.build_keys);
  for (size_t i = 0; i < config.build_keys; ++i) {
    build_keys[i] = "key-" + std::to_string(i);
  }
  std::vector<std::string> queries(config.query_keys);
  std::mt19937_64 rng(0xbe9c4);
  for (size_t i = 0; i < config.query_keys; ++i) {
    queries[i] = build_keys[rng() % build_keys.size()];
  }

  // ---- the local twin (feeds the in-process server + smoke compare) ------
  const auto& registry = FilterRegistry::Global();
  FilterSpec spec = FilterSpec::ForKeys(config.build_keys,
                                        config.bits_per_key,
                                        config.num_hashes);
  spec.max_count = 8;
  spec.shards = config.shards;
  std::unique_ptr<MembershipFilter> local;
  std::string served_blob;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  if (config.connect.empty()) {
    Status s = registry.Create(config.filter_name, spec, &local);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    for (const auto& key : build_keys) local->Add(key);
    local->PrepareForConstReads();
    // The served copy travels through the registry envelope, exactly as a
    // production blob would — serde divergence fails the smoke too.
    served_blob = FilterRegistry::Serialize(*local);
  } else {
    const size_t colon = config.connect.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "error: --connect needs host:port\n");
      return 2;
    }
    host = config.connect.substr(0, colon);
    port = static_cast<uint16_t>(
        std::strtoul(config.connect.c_str() + colon + 1, nullptr, 10));
  }

  JsonReport report("serve_throughput");
  std::printf("filter,mode,connections,pipeline,frame_keys,queries,seconds,"
              "qps,p50_us,p99_us,p999_us\n");
  int rc;
  if (config.compare_metrics) {
    // The overhead gate: identical workload, metrics recording on vs off
    // (the runtime toggle every increment and call-site clock read checks).
    // Best of three passes each side irons out scheduler noise; the ratio
    // of the bests is what the bound judges.
    const bool was_enabled = obs::Enabled();
    double best_on = 0.0;
    double best_off = 0.0;
    rc = 0;
    for (int pass = 0; pass < 3 && rc == 0; ++pass) {
      double qps = 0.0;
      obs::SetEnabled(true);
      rc = RunMode(config, config.legacy_mode, host, port, served_blob,
                   build_keys, queries, local.get(), spec, nullptr, &qps);
      best_on = std::max(best_on, qps);
      if (rc != 0) break;
      obs::SetEnabled(false);
      rc = RunMode(config, config.legacy_mode, host, port, served_blob,
                   build_keys, queries, local.get(), spec, nullptr, &qps);
      best_off = std::max(best_off, qps);
    }
    obs::SetEnabled(was_enabled);
    if (rc != 0) return rc;
    const double overhead_pct =
        best_off > 0.0 ? (best_off - best_on) / best_off * 100.0 : 0.0;
    std::printf("# metrics overhead: %.2f%% (on %.0f qps, off %.0f qps, "
                "bound %.1f%%)\n",
                overhead_pct, best_on, best_off,
                config.metrics_overhead_bound);
    if (overhead_pct > config.metrics_overhead_bound) {
      std::fprintf(stderr,
                   "METRICS OVERHEAD GATE FAILED: %.2f%% > %.1f%%\n",
                   overhead_pct, config.metrics_overhead_bound);
      return 1;
    }
    return 0;
  }
  if (config.compare) {
    rc = RunMode(config, /*legacy=*/false, host, port, served_blob,
                 build_keys, queries, local.get(), spec, &report);
    if (rc == 0) {
      rc = RunMode(config, /*legacy=*/true, host, port, served_blob,
                   build_keys, queries, local.get(), spec, &report);
    }
  } else {
    rc = RunMode(config, config.legacy_mode, host, port, served_blob,
                 build_keys, queries, local.get(), spec, &report);
  }
  if (rc != 0) return rc;
  Status s = report.WriteToFile(config.json_path);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace shbf

int main(int argc, char** argv) { return shbf::Main(argc, argv); }
