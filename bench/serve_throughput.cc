// serve_throughput — multi-connection load generator for shbf_server:
// queries/sec and p50/p99 frame latency through the full wire path
// (client → TCP loopback → server → BatchQueryEngine → response).
//
// Two ways to point it at a server:
//   default              spins up an in-process ShbfServer on an ephemeral
//                        loopback port, loads it, and tears it down — the
//                        self-contained acceptance bench
//   --connect=host:port  drives an external shbf_server; the target must
//                        serve a filter named by --serve-name (queries are
//                        member keys "key-0".."key-N" unless --query-file)
//
// usage: bench_serve_throughput [--connect=host:port] [--filter=shbf_m]
//          [--serve-name=bench] [--build-keys=N] [--query-keys=N]
//          [--bits-per-key=B] [--k=K] [--shards=S] [--connections=C]
//          [--frame-keys=N] [--smoke]
//
// CSV on stdout: filter,connections,frame_keys,queries,seconds,qps,
// p50_us,p99_us — latency is per frame (one batched request/response).
//
// --smoke is the CI mode: small sizes, and instead of chasing qps it
// verifies the remote answers are bit-identical to a local
// BatchQueryEngine over an identical filter — membership on the main
// filter AND counts on a multiplicity filter — then checks the server
// shuts down cleanly (all connection threads joined, no protocol errors)
// and prints "# smoke OK". Exits nonzero on any divergence.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/filter_registry.h"
#include "bench_util/timer.h"
#include "engine/batch_query_engine.h"
#include "server/client.h"
#include "server/server.h"

namespace shbf {
namespace {

struct Config {
  std::string connect;  // empty = in-process server
  std::string filter_name = "shbf_m";
  std::string serve_name = "bench";
  size_t build_keys = 2000000;
  size_t query_keys = 1000000;
  double bits_per_key = 12.0;
  uint32_t num_hashes = 8;
  uint32_t shards = 4;
  uint32_t connections = 4;
  size_t frame_keys = 512;
  bool smoke = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

double Percentile(std::vector<double>* sorted_into, double fraction) {
  if (sorted_into->empty()) return 0.0;
  std::sort(sorted_into->begin(), sorted_into->end());
  const size_t index = std::min(
      sorted_into->size() - 1,
      static_cast<size_t>(fraction * static_cast<double>(sorted_into->size())));
  return (*sorted_into)[index];
}

/// One connection's work: its slice of the query stream, framed; returns
/// false on any client error. Frame latencies append to `latencies_us`.
bool DriveConnection(const std::string& host, uint16_t port,
                     const std::string& serve_name,
                     const std::vector<std::string>& queries, size_t begin,
                     size_t end, size_t frame_keys,
                     std::vector<double>* latencies_us,
                     std::vector<uint8_t>* answers) {
  ShbfClient client;
  if (!client.Connect(host, port).ok()) return false;
  std::vector<std::string> frame;
  std::vector<uint8_t> results;
  for (size_t cursor = begin; cursor < end; cursor += frame_keys) {
    const size_t stop = std::min(cursor + frame_keys, end);
    frame.assign(queries.begin() + cursor, queries.begin() + stop);
    WallTimer timer;
    if (!client.Query(serve_name, frame, &results).ok()) return false;
    latencies_us->push_back(timer.ElapsedSeconds() * 1e6);
    if (answers != nullptr) {
      std::copy(results.begin(), results.end(),
                answers->begin() + static_cast<ptrdiff_t>(cursor));
    }
  }
  return true;
}

int Fail(const char* what) {
  std::fprintf(stderr, "SMOKE FAILED: %s\n", what);
  return 1;
}

int Main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--smoke") == 0) {
      config.smoke = true;
    } else if (ParseFlag(argv[i], "connect", &value)) {
      config.connect = value;
    } else if (ParseFlag(argv[i], "filter", &value)) {
      config.filter_name = value;
    } else if (ParseFlag(argv[i], "serve-name", &value)) {
      config.serve_name = value;
    } else if (ParseFlag(argv[i], "build-keys", &value)) {
      config.build_keys = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "query-keys", &value)) {
      config.query_keys = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "bits-per-key", &value)) {
      config.bits_per_key = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "k", &value)) {
      config.num_hashes = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "shards", &value)) {
      config.shards = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "connections", &value)) {
      config.connections = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "frame-keys", &value)) {
      config.frame_keys = std::strtoull(value.c_str(), nullptr, 0);
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve_throughput [--connect=host:port] "
                   "[--filter=<name>] [--serve-name=bench] [--build-keys=N] "
                   "[--query-keys=N] [--bits-per-key=B] [--k=K] [--shards=S] "
                   "[--connections=C] [--frame-keys=N] [--smoke]\n");
      return 2;
    }
  }
  if (config.smoke) {
    config.build_keys = 20000;
    config.query_keys = 10000;
    config.connections = 2;
    config.frame_keys = 256;
  }
  if (config.build_keys == 0 || config.query_keys == 0 ||
      config.connections == 0 || config.frame_keys == 0) {
    std::fprintf(stderr, "error: all sizes must be positive\n");
    return 2;
  }

  std::vector<std::string> build_keys(config.build_keys);
  for (size_t i = 0; i < config.build_keys; ++i) {
    build_keys[i] = "key-" + std::to_string(i);
  }
  std::vector<std::string> queries(config.query_keys);
  std::mt19937_64 rng(0xbe9c4);
  for (size_t i = 0; i < config.query_keys; ++i) {
    queries[i] = build_keys[rng() % build_keys.size()];
  }

  if (config.smoke && !config.connect.empty()) {
    std::fprintf(stderr,
                 "error: --smoke needs the in-process server "
                 "(drop --connect)\n");
    return 2;
  }

  // ---- the server (in-process unless --connect) and the local twin ------
  const auto& registry = FilterRegistry::Global();
  FilterSpec spec = FilterSpec::ForKeys(config.build_keys,
                                        config.bits_per_key,
                                        config.num_hashes);
  spec.max_count = 8;
  spec.shards = config.shards;
  std::unique_ptr<MembershipFilter> local;
  Status s;
  std::unique_ptr<ShbfServer> server;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  if (config.connect.empty()) {
    // The local twin exists only to feed the in-process server and the
    // smoke comparison; an external-server run skips it entirely.
    s = registry.Create(config.filter_name, spec, &local);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    for (const auto& key : build_keys) local->Add(key);
    local->PrepareForConstReads();
    // The served copy travels through the registry envelope, exactly as a
    // production blob would — serde divergence fails the smoke too.
    std::unique_ptr<MembershipFilter> served;
    s = registry.Deserialize(FilterRegistry::Serialize(*local), &served);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    server = std::make_unique<ShbfServer>();
    CheckOk(server->RegisterFilter(config.serve_name, std::move(served)));
    if (config.smoke) {
      // Count-mode twin: a bare multiplicity filter with duplicate adds.
      FilterSpec count_spec = spec;
      count_spec.shards = 1;
      std::unique_ptr<MembershipFilter> counting;
      CheckOk(registry.Create("shbf_x", count_spec, &counting));
      for (const auto& key : build_keys) counting->Add(key);
      for (size_t i = 0; i < config.build_keys; i += 3) {
        counting->Add(build_keys[i]);  // every third key has count 2
      }
      CheckOk(server->RegisterFilter("bench_counts", std::move(counting)));
    }
    s = server->Start();
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    port = server->port();
  } else {
    const size_t colon = config.connect.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "error: --connect needs host:port\n");
      return 2;
    }
    host = config.connect.substr(0, colon);
    port = static_cast<uint16_t>(
        std::strtoul(config.connect.c_str() + colon + 1, nullptr, 10));
  }

  // ---- the measured (or verified) run -----------------------------------
  std::vector<uint8_t> remote_answers(config.query_keys, 0);
  std::vector<std::vector<double>> latencies(config.connections);
  std::vector<uint8_t> ok(config.connections, 0);
  const size_t slice =
      (config.query_keys + config.connections - 1) / config.connections;
  WallTimer timer;
  std::vector<std::thread> workers;
  for (uint32_t c = 0; c < config.connections; ++c) {
    workers.emplace_back([&, c] {
      const size_t begin = std::min<size_t>(c * slice, config.query_keys);
      const size_t end = std::min(begin + slice, config.query_keys);
      ok[c] = DriveConnection(host, port, config.serve_name, queries, begin,
                              end, config.frame_keys, &latencies[c],
                              config.smoke ? &remote_answers : nullptr)
                  ? 1
                  : 0;
    });
  }
  for (auto& worker : workers) worker.join();
  const double seconds = timer.ElapsedSeconds();
  for (uint32_t c = 0; c < config.connections; ++c) {
    if (!ok[c]) {
      std::fprintf(stderr, "error: connection %u failed\n", c);
      return 1;
    }
  }

  std::vector<double> all_latencies;
  for (auto& thread_latencies : latencies) {
    all_latencies.insert(all_latencies.end(), thread_latencies.begin(),
                         thread_latencies.end());
  }
  std::vector<double> p99_copy = all_latencies;
  const double p50 = Percentile(&all_latencies, 0.50);
  const double p99 = Percentile(&p99_copy, 0.99);
  std::printf("filter,connections,frame_keys,queries,seconds,qps,"
              "p50_us,p99_us\n");
  std::printf("%s,%u,%zu,%zu,%.4f,%.0f,%.1f,%.1f\n",
              config.filter_name.c_str(), config.connections,
              config.frame_keys, config.query_keys, seconds,
              config.query_keys / seconds, p50, p99);

  // ---- smoke verification ------------------------------------------------
  if (config.smoke) {
    // Membership: remote answers must be bit-identical to a local engine
    // pass over the identical filter.
    BatchQueryEngine engine;
    std::vector<uint8_t> local_answers;
    engine.ContainsBatch(*local, queries, &local_answers);
    for (size_t i = 0; i < queries.size(); ++i) {
      if ((remote_answers[i] != 0) != (local_answers[i] != 0)) {
        std::fprintf(stderr, "SMOKE FAILED: membership divergence at %zu\n",
                     i);
        return 1;
      }
    }
    // Counts: same check in COUNT mode against the multiplicity twin.
    FilterSpec count_spec = spec;
    count_spec.shards = 1;
    std::unique_ptr<MultiplicityFilter> local_counts;
    CheckOk(registry.CreateMultiplicity("shbf_x", count_spec, &local_counts));
    for (const auto& key : build_keys) local_counts->Add(key);
    for (size_t i = 0; i < config.build_keys; i += 3) {
      local_counts->Add(build_keys[i]);
    }
    std::vector<uint64_t> local_count_answers;
    engine.QueryCountBatch(*local_counts, queries, &local_count_answers);
    ShbfClient client;
    if (!client.Connect(host, port).ok()) return Fail("count connect");
    for (size_t begin = 0; begin < queries.size();
         begin += config.frame_keys) {
      const size_t end =
          std::min(begin + config.frame_keys, queries.size());
      const std::vector<std::string> frame(queries.begin() + begin,
                                           queries.begin() + end);
      std::vector<uint64_t> counts;
      if (!client.QueryCount("bench_counts", frame, &counts).ok()) {
        return Fail("count query");
      }
      for (size_t i = 0; i < frame.size(); ++i) {
        if (counts[i] != local_count_answers[begin + i]) {
          return Fail("count divergence");
        }
      }
    }
    client.Close();
    const ShbfServer::Counters counters = server->counters();
    server->Stop();
    if (server->running()) return Fail("server still running after Stop");
    if (counters.protocol_errors != 0) return Fail("protocol errors");
    if (counters.keys_queried < config.query_keys) {
      return Fail("server undercounted queries");
    }
    std::printf("# smoke OK (%llu frames, %llu keys, clean shutdown)\n",
                static_cast<unsigned long long>(counters.frames),
                static_cast<unsigned long long>(counters.keys_queried));
  }
  return 0;
}

}  // namespace
}  // namespace shbf

int main(int argc, char** argv) { return shbf::Main(argc, argv); }
