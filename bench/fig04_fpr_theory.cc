// Figure 4 — ShBF_M FPR vs BF FPR across k (theory), m = 100000,
// n ∈ {4000, 6000, 8000, 10000, 12000}, w̄ = 57.
//
// Paper's finding: the dashed (ShBF_M, Eq 1) and solid (BF, Eq 8) curves
// nearly coincide for every n — "the sacrificed FPR of ShBF_M ... is
// negligible, while the number of memory accesses and hash computations are
// half".

#include <cstdio>

#include "analysis/membership_theory.h"
#include "bench_util/table.h"

namespace shbf {
namespace {

void Fig4() {
  const size_t m = 100000;
  const uint32_t w_bar = 57;
  for (size_t n : {4000u, 6000u, 8000u, 10000u, 12000u}) {
    PrintBanner("Fig 4: FPR vs k  (m=100000, n=" + std::to_string(n) + ")");
    TablePrinter table({"k", "ShBF_M (Eq 1)", "BF (Eq 8)", "ratio"});
    double worst_ratio = 1.0;
    for (uint32_t k = 2; k <= 20; k += 2) {
      double shbf = theory::ShbfMFpr(m, n, k, w_bar);
      double bloom = theory::BloomFpr(m, n, k);
      worst_ratio = std::max(worst_ratio, shbf / bloom);
      table.AddRow({std::to_string(k), TablePrinter::Sci(shbf),
                    TablePrinter::Sci(bloom),
                    TablePrinter::Num(shbf / bloom, 4)});
    }
    double k_opt_shbf = theory::ShbfMOptimalK(m, n, w_bar);
    double k_opt_bf = theory::BloomOptimalK(m, n);
    table.AddRow({"k_opt", TablePrinter::Num(k_opt_shbf, 3),
                  TablePrinter::Num(k_opt_bf, 3), ""});
    table.Print();
    std::printf("worst ShBF/BF FPR ratio over k: %.4f\n", worst_ratio);
  }

  PrintBanner("Minimum-FPR constants (Eq 7 vs Eq 9)");
  std::printf(
      "paper says : f_min(ShBF_M) = 0.6204^(m/n), f_min(BF) = 0.6185^(m/n), "
      "k_opt(ShBF_M) = 0.7009 m/n\n"
      "we measured: base(ShBF_M) = %.4f, base(BF) = %.4f, "
      "k_opt(ShBF_M)*n/m = %.4f\n",
      theory::ShbfMMinFprBase(57), theory::BloomMinFprBase(),
      theory::ShbfMOptimalK(100000, 10000, 57) / 10.0);
}

}  // namespace
}  // namespace shbf

int main() {
  shbf::PrintBanner(
      "Reproduction of Fig 4 (Yang et al., VLDB 2016) -- analytical");
  shbf::Fig4();
  return 0;
}
