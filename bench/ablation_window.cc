// Ablation A1 — offset-span (w̄) sensitivity, by SIMULATION. Fig 3 in the
// paper is analytical only; this bench validates the same curve empirically:
// how small can the shift window get before the pair correlation hurts FPR?
// m = 100000, n = 10000, k = 8, 300k·scale negative queries per point.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "analysis/membership_theory.h"
#include "bench_util/table.h"
#include "shbf/shbf_membership.h"
#include "trace/workload.h"

namespace shbf {
namespace {

void Run(size_t num_negatives) {
  const size_t m = 100000;
  const size_t n = 10000;
  const uint32_t k = 8;
  auto w = MakeMembershipWorkload(n, num_negatives, 3100);
  double bloom = theory::BloomFpr(m, n, k);

  PrintBanner("Ablation A1: simulated FPR vs w_bar  (m=100000, n=10000, k=8)");
  TablePrinter table({"w_bar", "theory (Eq 1)", "simulated", "vs BF limit"});
  for (uint32_t span : {2u, 4u, 8u, 12u, 16u, 20u, 24u, 32u, 41u, 49u, 57u}) {
    ShbfM filter({.num_bits = m, .num_hashes = k, .max_offset_span = span});
    for (const auto& key : w.members) filter.Add(key);
    size_t fp = 0;
    for (const auto& key : w.non_members) fp += filter.Contains(key);
    double sim = static_cast<double>(fp) / w.non_members.size();
    table.AddRow({std::to_string(span),
                  TablePrinter::Sci(theory::ShbfMFpr(m, n, k, span)),
                  TablePrinter::Sci(sim),
                  TablePrinter::Num(sim / bloom, 3) + "x"});
  }
  table.AddRow({"BF", TablePrinter::Sci(bloom), "", "1.000x"});
  table.Print();
  std::printf(
      "paper says : (Fig 3, theory) the FPR penalty vanishes for w_bar > 20\n"
      "we measured: the simulated curve matches Eq 1 and flattens onto the "
      "BF line in the same region\n");
}

}  // namespace
}  // namespace shbf

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  shbf::PrintBanner("Ablation: offset-span window (validates Fig 3 by simulation)");
  shbf::Run(static_cast<size_t>(300000 * scale));
  return 0;
}
