// batch_throughput — single-key vs engine-batched vs sharded-multithreaded
// membership throughput (Mops/s), the acceptance bench for the batched
// query engine (docs/benchmarks.md describes the output).
//
// Four modes per filter:
//   per_key        one virtual Contains call per key — what registry-driven
//                  code did before the engine existed
//   batched        BatchQueryEngine::ContainsBatch — hash pre-compute +
//                  software prefetch + two-pass resolve, SIMD kernels at
//                  whatever level the hardware offers
//   batched_scalar the same engine path with simd::ForceScalar(true) — the
//                  SIMD contribution isolated from the batching one
//   sharded_mt     a shards-way ShardedMembershipFilter queried from
//                  `threads` threads, each batching its slice
//
// After the throughput modes, each blocked variant's FPR is measured
// against its unblocked base at equal bits/key (fpr rows), and two
// acceptance gates run:
//   - FPR gate: blocked/split-block FPR <= 2x the base FPR (+ sampling
//     noise floor)
//   - speed gates, enforced when the run is at gate scale (>= 1M queries,
//     >= 8 MB filter); --no-speed-gate disables them (sanitizer builds time
//     nothing fairly):
//       blocked_shbf_m batched >= 1.35x shbf_m batched
//       split_block_shbf_m batched >= 1.3x blocked_shbf_m batched
//       split_block_shbf_m per_key > blocked_shbf_m per_key
//
// usage: bench_batch_throughput [--filter=<name>] [--build-keys=N]
//          [--query-keys=N] [--bits-per-key=B] [--k=K] [--batch=N]
//          [--shards=S] [--threads=T] [--chunk=N] [--json=<path>] [--smoke]
//          [--no-speed-gate]
//
// Defaults (8M build keys at 12 bits/key ≈ 12 MB of filter) size the filter
// past L2 so the memory-level parallelism the engine extracts is visible;
// --smoke shrinks everything for CI, widens the sweep to EVERY registered
// filter, and verifies the batched answers against the per-key path
// (under both SIMD and forced-scalar dispatch) instead of chasing Mops.
//
// CSV on stdout: filter,mode,threads,batch_size,keys,seconds,mops,speedup.
// --json=<path> writes machine-readable rows (workload, keys/s, p50/p99
// latency per `chunk`-key slice) via bench_util/json_report.h.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/filter_registry.h"
#include "bench_util/json_report.h"
#include "bench_util/timer.h"
#include "core/cpu_features.h"
#include "engine/batch_query_engine.h"
#include "engine/sharded_filter.h"

namespace shbf {
namespace {

struct Config {
  std::string filter_name;  // empty = the default pair {shbf_m, bloom}
  size_t build_keys = 8000000;
  size_t query_keys = 1000000;
  double bits_per_key = 12.0;
  uint32_t num_hashes = 8;
  uint32_t batch_size = 32;
  uint32_t shards = 8;
  uint32_t threads = 4;
  /// Keys per latency sample for the --json report.
  size_t chunk = 4096;
  std::string json_path;
  bool smoke = false;
  /// Disables the throughput gates (sanitizer CI times nothing fairly).
  bool no_speed_gate = false;
};

/// What Main needs back from a filter's run to evaluate the cross-filter
/// gates.
struct FilterRun {
  double per_key_mops = 0;
  double batched_mops = 0;
  size_t filter_bytes = 0;
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

FilterSpec SpecFor(const Config& config) {
  FilterSpec spec = FilterSpec::ForKeys(config.build_keys,
                                        config.bits_per_key,
                                        config.num_hashes);
  spec.max_count = 8;
  spec.batch_size = config.batch_size;
  return spec;
}

void EmitRow(const std::string& filter, const char* mode, uint32_t threads,
             uint32_t batch, size_t keys, double seconds, double per_key_mops,
             const Config& config, const LatencyRecorder& latencies,
             JsonReport* report) {
  const double mops = Mops(keys, seconds);
  std::printf("%s,%s,%u,%u,%zu,%.4f,%.2f,%.2f\n", filter.c_str(), mode,
              threads, batch, keys, seconds, mops,
              per_key_mops > 0 ? mops / per_key_mops : 1.0);
  report->AddRow()
      .Set("workload", "membership/" + filter)
      .Set("mode", mode)
      .Set("threads", uint64_t{threads})
      .Set("batch_size", uint64_t{batch})
      .Set("keys", uint64_t{keys})
      .Set("chunk_keys", uint64_t{config.chunk})
      .Set("keys_per_s", seconds > 0 ? keys / seconds : 0.0)
      .Set("p50_us", latencies.PercentileSeconds(50) * 1e6)
      .Set("p99_us", latencies.PercentileSeconds(99) * 1e6);
}

/// Benchmarks one registered filter through the three modes. Returns false
/// on a smoke-mode correctness divergence.
bool RunFilter(const std::string& name, const Config& config,
               const std::vector<std::string>& build_keys,
               const std::vector<std::string>& query_keys,
               JsonReport* report, FilterRun* run) {
  const auto& registry = FilterRegistry::Global();
  std::unique_ptr<MembershipFilter> filter;
  Status s = registry.Create(name, SpecFor(config), &filter);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return false;
  }
  for (const auto& key : build_keys) filter->Add(key);
  filter->Contains(query_keys.front());  // force lazy builds out of the loop

  // Pre-sliced query stream: the timed loops below run slice by slice, so
  // one WallTimer read per `chunk` keys doubles as the latency sample.
  std::vector<std::vector<std::string>> slices_by_chunk;
  for (size_t begin = 0; begin < query_keys.size(); begin += config.chunk) {
    const size_t end = std::min(begin + config.chunk, query_keys.size());
    slices_by_chunk.emplace_back(query_keys.begin() + begin,
                                 query_keys.begin() + end);
  }

  // The timed modes below run best-of-kTimingReps (min wall time): on a
  // shared host a single pass can be stretched 2-3x by outside interference,
  // and the gates compare RATIOS of single passes — one stretched pass flips
  // a gate that the hardware passes. The minimum over a few passes is the
  // standard estimator for the interference-free cost. Smoke mode keeps one
  // pass: it checks identities, not speed.
  const int reps = config.smoke ? 1 : 3;

  // -- per_key: the scalar virtual baseline --------------------------------
  double per_key_seconds = 0;
  LatencyRecorder per_key_latencies;
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer rep_timer;
    LatencyRecorder rep_latencies;
    uint64_t hits = 0;
    for (const auto& slice : slices_by_chunk) {
      WallTimer chunk_timer;
      for (const auto& key : slice) hits += filter->Contains(key);
      rep_latencies.Record(chunk_timer.ElapsedSeconds());
    }
    DoNotOptimize(hits);
    const double rep_seconds = rep_timer.ElapsedSeconds();
    if (rep == 0 || rep_seconds < per_key_seconds) {
      per_key_seconds = rep_seconds;
      per_key_latencies = rep_latencies;
    }
  }
  const double per_key_mops = Mops(query_keys.size(), per_key_seconds);
  EmitRow(name, "per_key", 1, 1, query_keys.size(), per_key_seconds, 0,
          config, per_key_latencies, report);

  // -- batched: the engine's two-pass prefetching path ---------------------
  BatchQueryEngine engine({.batch_size = config.batch_size});
  std::vector<uint8_t> results;
  engine.ContainsBatch(*filter, query_keys, &results);  // warm-up
  double batched_seconds = 0;
  LatencyRecorder batched_latencies;
  std::vector<uint8_t> slice_results;
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer rep_timer;
    LatencyRecorder rep_latencies;
    results.clear();
    for (const auto& slice : slices_by_chunk) {
      WallTimer chunk_timer;
      engine.ContainsBatch(*filter, slice, &slice_results);
      rep_latencies.Record(chunk_timer.ElapsedSeconds());
      results.insert(results.end(), slice_results.begin(),
                     slice_results.end());
    }
    const double rep_seconds = rep_timer.ElapsedSeconds();
    if (rep == 0 || rep_seconds < batched_seconds) {
      batched_seconds = rep_seconds;
      batched_latencies = rep_latencies;
    }
  }
  EmitRow(name, "batched", 1, config.batch_size, query_keys.size(),
          batched_seconds, per_key_mops, config, batched_latencies, report);
  run->per_key_mops = per_key_mops;
  run->batched_mops = Mops(query_keys.size(), batched_seconds);
  run->filter_bytes = filter->memory_bytes();

  if (config.smoke) {
    // CI mode: the value of this binary is that the engine still answers
    // exactly like the per-key path; Mops on a shared runner prove nothing.
    for (size_t i = 0; i < query_keys.size(); ++i) {
      if ((results[i] != 0) != filter->Contains(query_keys[i])) {
        std::fprintf(stderr, "SMOKE FAILED (%s): divergence at key %zu\n",
                     name.c_str(), i);
        return false;
      }
    }
  }

  // -- batched_scalar: the same engine path with the SIMD kernels demoted,
  // so the batched/batched_scalar gap isolates the vector contribution ----
  simd::ForceScalar(true);
  double scalar_seconds = 0;
  LatencyRecorder scalar_latencies;
  std::vector<uint8_t> scalar_results;
  scalar_results.reserve(query_keys.size());
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer rep_timer;
    LatencyRecorder rep_latencies;
    scalar_results.clear();
    for (const auto& slice : slices_by_chunk) {
      WallTimer chunk_timer;
      engine.ContainsBatch(*filter, slice, &slice_results);
      rep_latencies.Record(chunk_timer.ElapsedSeconds());
      scalar_results.insert(scalar_results.end(), slice_results.begin(),
                            slice_results.end());
    }
    const double rep_seconds = rep_timer.ElapsedSeconds();
    if (rep == 0 || rep_seconds < scalar_seconds) {
      scalar_seconds = rep_seconds;
      scalar_latencies = rep_latencies;
    }
  }
  simd::ForceScalar(false);
  EmitRow(name, "batched_scalar", 1, config.batch_size, query_keys.size(),
          scalar_seconds, per_key_mops, config, scalar_latencies, report);
  // SIMD is an execution strategy, never a semantic change: the scalar
  // demotion must reproduce the batched answers bit for bit, every run.
  if (scalar_results != results) {
    std::fprintf(stderr,
                 "GATE FAILED (%s): scalar and SIMD batched answers "
                 "diverge\n",
                 name.c_str());
    return false;
  }

  // -- sharded_mt: concurrent batched queries on the sharded wrapper ------
  if (config.shards < 2) {
    std::fprintf(stderr, "note: --shards < 2, skipping sharded_mt\n");
    return true;
  }
  FilterSpec sharded_spec = SpecFor(config);
  sharded_spec.shards = config.shards;
  std::unique_ptr<MembershipFilter> sharded;
  s = registry.Create(name, sharded_spec, &sharded);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return false;
  }
  static_cast<ShardedMembershipFilter*>(sharded.get())->AddBatch(build_keys);
  // Warm every shard (triggers lazy rebuilds) and pre-slice the query
  // stream per thread (chunked for latency samples), so the timed region
  // holds queries only.
  sharded->ContainsBatch(query_keys, &results);
  std::vector<std::vector<std::vector<std::string>>> slices(config.threads);
  const size_t slice = (query_keys.size() + config.threads - 1) /
                       config.threads;
  for (uint32_t t = 0; t < config.threads; ++t) {
    const size_t begin = std::min(t * slice, query_keys.size());
    const size_t end = std::min(begin + slice, query_keys.size());
    for (size_t b = begin; b < end; b += config.chunk) {
      slices[t].emplace_back(query_keys.begin() + b,
                             query_keys.begin() + std::min(b + config.chunk,
                                                           end));
    }
  }
  double sharded_seconds = 0;
  LatencyRecorder sharded_latencies;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<LatencyRecorder> thread_latencies(config.threads);
    WallTimer rep_timer;
    std::vector<std::thread> workers;
    for (uint32_t t = 0; t < config.threads; ++t) {
      workers.emplace_back([&, t] {
        std::vector<uint8_t> thread_results;
        for (const auto& thread_slice : slices[t]) {
          WallTimer chunk_timer;
          sharded->ContainsBatch(thread_slice, &thread_results);
          thread_latencies[t].Record(chunk_timer.ElapsedSeconds());
          DoNotOptimize(thread_results.size());
        }
      });
    }
    for (auto& worker : workers) worker.join();
    const double rep_seconds = rep_timer.ElapsedSeconds();
    if (rep == 0 || rep_seconds < sharded_seconds) {
      sharded_seconds = rep_seconds;
      // Merge the per-thread samples into one distribution.
      sharded_latencies = LatencyRecorder();
      for (const auto& recorder : thread_latencies) {
        for (double sample : recorder.samples()) {
          sharded_latencies.Record(sample);
        }
      }
    }
  }
  EmitRow(name, "sharded_mt", config.threads, config.batch_size,
          query_keys.size(), sharded_seconds, per_key_mops, config,
          sharded_latencies, report);
  return true;
}

/// Measured false-positive rate of `name` at the run's bits/key: builds a
/// fresh filter over `build_keys` and queries `absent_keys` (disjoint by
/// construction). Returns a negative value on a create failure.
double MeasureFpr(const std::string& name, const Config& config,
                  const std::vector<std::string>& build_keys,
                  const std::vector<std::string>& absent_keys) {
  std::unique_ptr<MembershipFilter> filter;
  Status s = FilterRegistry::Global().Create(name, SpecFor(config), &filter);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return -1.0;
  }
  for (const auto& key : build_keys) filter->Add(key);
  size_t positives = 0;
  for (const auto& key : absent_keys) positives += filter->Contains(key);
  return static_cast<double>(positives) / absent_keys.size();
}

/// The blocked-variant FPR gate: measures base and blocked at equal
/// bits/key, emits fpr rows, and fails if the blocked rate exceeds 2x the
/// base rate plus a sampling noise floor (a handful of extra positives must
/// not flunk a tiny --smoke sample).
bool CheckFprPair(const std::string& base, const std::string& blocked,
                  const Config& config,
                  const std::vector<std::string>& build_keys,
                  const std::vector<std::string>& absent_keys,
                  JsonReport* report) {
  const double base_fpr = MeasureFpr(base, config, build_keys, absent_keys);
  const double blocked_fpr =
      MeasureFpr(blocked, config, build_keys, absent_keys);
  if (base_fpr < 0 || blocked_fpr < 0) return false;
  const auto emit = [&](const std::string& name, double fpr) {
    std::printf("# fpr,%s,%.6f\n", name.c_str(), fpr);
    report->AddRow()
        .Set("workload", "fpr/" + name)
        .Set("mode", "fpr")
        .Set("keys", uint64_t{absent_keys.size()})
        .Set("fpr", fpr);
  };
  emit(base, base_fpr);
  emit(blocked, blocked_fpr);
  const double noise_floor = 8.0 / absent_keys.size();
  if (blocked_fpr > 2.0 * base_fpr + noise_floor) {
    std::fprintf(stderr,
                 "GATE FAILED: %s FPR %.6f exceeds 2x %s FPR %.6f\n",
                 blocked.c_str(), blocked_fpr, base.c_str(), base_fpr);
    return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--smoke") == 0) {
      config.smoke = true;
    } else if (std::strcmp(argv[i], "--no-speed-gate") == 0) {
      config.no_speed_gate = true;
    } else if (ParseFlag(argv[i], "filter", &value)) {
      config.filter_name = value;
    } else if (ParseFlag(argv[i], "build-keys", &value)) {
      config.build_keys = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "query-keys", &value)) {
      config.query_keys = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "bits-per-key", &value)) {
      config.bits_per_key = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "k", &value)) {
      config.num_hashes = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "batch", &value)) {
      config.batch_size = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "shards", &value)) {
      config.shards = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "threads", &value)) {
      config.threads = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "chunk", &value)) {
      config.chunk = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "json", &value)) {
      config.json_path = value;
    } else {
      std::fprintf(stderr,
                   "usage: bench_batch_throughput [--filter=<name>] "
                   "[--build-keys=N] [--query-keys=N] [--bits-per-key=B] "
                   "[--k=K] [--batch=N] [--shards=S] [--threads=T] "
                   "[--chunk=N] [--json=<path>] [--smoke] "
                   "[--no-speed-gate]\n");
      return 2;
    }
  }
  if (config.smoke) {
    config.build_keys = 20000;
    config.query_keys = 10000;
    config.threads = 2;
  }
  if (config.build_keys == 0 || config.query_keys == 0 ||
      config.threads == 0 || config.chunk == 0) {
    std::fprintf(stderr,
                 "error: --build-keys, --query-keys, --threads and --chunk "
                 "must be positive\n");
    return 2;
  }

  std::vector<std::string> build_keys(config.build_keys);
  for (size_t i = 0; i < config.build_keys; ++i) {
    build_keys[i] = "key-" + std::to_string(i);
  }
  // Query stream: inserted keys in random order (members exercise every
  // probe; random order defeats the hardware prefetcher, as production
  // traffic does).
  std::vector<std::string> query_keys(config.query_keys);
  std::mt19937_64 rng(0xbe9c4);
  for (size_t i = 0; i < config.query_keys; ++i) {
    query_keys[i] = build_keys[rng() % build_keys.size()];
  }

  std::printf("filter,mode,threads,batch_size,keys,seconds,mops,"
              "speedup_vs_per_key\n");
  std::vector<std::string> names;
  if (!config.filter_name.empty()) {
    names.push_back(config.filter_name);
  } else if (config.smoke) {
    // CI sweeps every registered variant through the identity checks.
    names = FilterRegistry::Global().Names();
  } else {
    names = {"shbf_m",        "bloom",
             "blocked_shbf_m", "blocked_bloom",
             "split_block_shbf_m", "split_block_bloom"};
  }
  bool ok = true;
  JsonReport report("batch_throughput");
  std::map<std::string, FilterRun> runs;
  for (const auto& name : names) {
    ok = RunFilter(name, config, build_keys, query_keys, &report,
                   &runs[name]) &&
         ok;
  }

  // FPR gate: each blocked variant against its unblocked base at equal
  // bits/key, on a key set disjoint from the build keys. The sample stays
  // large even in smoke mode — at ~0.3% FPR a 10k sample's noise swamps
  // the 2x ratio the gate checks.
  const size_t absent_count = config.smoke ? 100000 : 200000;
  std::vector<std::string> absent_keys(absent_count);
  for (size_t i = 0; i < absent_count; ++i) {
    absent_keys[i] = "absent-" + std::to_string(i);
  }
  const auto has = [&](const char* name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  if (has("bloom") && has("blocked_bloom")) {
    ok = CheckFprPair("bloom", "blocked_bloom", config, build_keys,
                      absent_keys, &report) &&
         ok;
  }
  if (has("shbf_m") && has("blocked_shbf_m")) {
    ok = CheckFprPair("shbf_m", "blocked_shbf_m", config, build_keys,
                      absent_keys, &report) &&
         ok;
  }
  // The split-block variants answer to the same FPR budget: confining every
  // probe to one sub-word costs accuracy exactly like blocking does, and
  // the same 2x bound applies.
  if (has("bloom") && has("split_block_bloom")) {
    ok = CheckFprPair("bloom", "split_block_bloom", config, build_keys,
                      absent_keys, &report) &&
         ok;
  }
  if (has("shbf_m") && has("split_block_shbf_m")) {
    ok = CheckFprPair("shbf_m", "split_block_shbf_m", config, build_keys,
                      absent_keys, &report) &&
         ok;
  }

  // Speed gate: at gate scale (>= 1M queries against >= 8 MB of filter,
  // where memory stalls dominate), the blocked + SIMD engine path must
  // beat the plain shbf_m fast path by 1.35x. The bar was 1.5x when the
  // denominator hashed each key twice; inlining the one-pass 128-bit hash
  // sped the UNBLOCKED baseline by ~50% (it pays the hash per probe pair,
  // so it gains the most), which compresses the ratio without the blocked
  // path getting any slower — the pre-inlining binary measures ~1.4x on
  // the same host. The bar tracks the blocking win, not the hash win.
  if (!config.no_speed_gate && has("shbf_m") && has("blocked_shbf_m")) {
    const FilterRun& plain = runs["shbf_m"];
    const FilterRun& blocked = runs["blocked_shbf_m"];
    const bool at_gate_scale = config.query_keys >= 1000000 &&
                               plain.filter_bytes >= 8u << 20;
    if (at_gate_scale && plain.batched_mops > 0) {
      const double ratio = blocked.batched_mops / plain.batched_mops;
      std::printf("# speed_gate,blocked_shbf_m_vs_shbf_m,%.2fx\n", ratio);
      if (ratio < 1.35) {
        std::fprintf(stderr,
                     "GATE FAILED: blocked_shbf_m batched %.2f Mops is only "
                     "%.2fx shbf_m's %.2f Mops (need 1.35x)\n",
                     blocked.batched_mops, ratio, plain.batched_mops);
        ok = false;
      }
    }
  }

  // Split-block gates: the one-vector-op resolve must pay for itself
  // against the gather-based blocked path, both batched (1.3x) and per key
  // (strictly faster — the per-key win is the whole point of baking the
  // mask at probe time). Same gate scale as above.
  if (!config.no_speed_gate && has("blocked_shbf_m") &&
      has("split_block_shbf_m")) {
    const FilterRun& blocked = runs["blocked_shbf_m"];
    const FilterRun& split = runs["split_block_shbf_m"];
    const bool at_gate_scale = config.query_keys >= 1000000 &&
                               blocked.filter_bytes >= 8u << 20;
    if (at_gate_scale && blocked.batched_mops > 0) {
      const double ratio = split.batched_mops / blocked.batched_mops;
      std::printf("# speed_gate,split_block_shbf_m_vs_blocked_shbf_m,%.2fx\n",
                  ratio);
      if (ratio < 1.3) {
        std::fprintf(stderr,
                     "GATE FAILED: split_block_shbf_m batched %.2f Mops is "
                     "only %.2fx blocked_shbf_m's %.2f Mops (need 1.3x)\n",
                     split.batched_mops, ratio, blocked.batched_mops);
        ok = false;
      }
    }
    if (at_gate_scale && blocked.per_key_mops > 0) {
      const double ratio = split.per_key_mops / blocked.per_key_mops;
      std::printf("# speed_gate,split_block_shbf_m_per_key_vs_blocked,"
                  "%.2fx\n",
                  ratio);
      if (ratio <= 1.0) {
        std::fprintf(stderr,
                     "GATE FAILED: split_block_shbf_m per_key %.2f Mops does "
                     "not beat blocked_shbf_m's %.2f Mops\n",
                     split.per_key_mops, blocked.per_key_mops);
        ok = false;
      }
    }
  }

  Status json_status = report.WriteToFile(config.json_path);
  if (!json_status.ok()) {
    std::fprintf(stderr, "error: --json: %s\n",
                 json_status.ToString().c_str());
    ok = false;
  }
  if (config.smoke && ok) std::printf("# smoke OK\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace shbf

int main(int argc, char** argv) { return shbf::Main(argc, argv); }
