// churn_throughput — interleaved add/remove/query throughput: the naive
// rebuild-per-transition path vs the epoch-based dynamic wrapper
// (engine/dynamic_filter.h), the acceptance bench for the mutation
// pipeline (docs/design.md §"The mutation pipeline").
//
// Two modes per filter:
//   naive     the plain registry filter driven through the uniform
//             interface — a bulk-built base (shbf_x, shbf_a) pays a full
//             rebuild on every add→query transition
//   dynamic   the same base behind "dynamic/<name>" (FilterSpec::
//             delta_capacity): adds land in the counting delta, the base
//             rebuilds once per epoch
//
// usage: bench_churn_throughput [--filter=<name>] [--universe=N]
//          [--events=N] [--add-frac=F] [--remove-frac=F] [--delta=N]
//          [--bits-per-key=B] [--k=K] [--chunk=N] [--json=<path>]
//          [--smoke]
//
// --json=<path> writes machine-readable rows (workload, events/s, p50/p99
// latency per `chunk`-event window; windows containing an epoch audit are
// skipped) via bench_util/json_report.h.
//
// --smoke shrinks the workload for CI and turns the run into a gate:
//   * no false negatives for live keys in either mode,
//   * at EVERY epoch boundary (and after the final flush) the dynamic
//     filter's answers over the whole universe are bit-identical to a
//     scratch-built reference filter holding the same surviving multiset,
//   * dynamic sustains >= 5x the naive path on the bulk-built default
//     (the ratio is structural — O(1) amortized vs O(n) per transition —
//     so the gate holds even on noisy shared runners).
//
// CSV on stdout: filter,mode,events,adds,removes,queries,seconds,mops,
// speedup_vs_naive.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "api/filter_registry.h"
#include "bench_util/json_report.h"
#include "bench_util/timer.h"
#include "engine/dynamic_filter.h"
#include "trace/workload.h"

namespace shbf {
namespace {

struct Config {
  std::string filter_name;  // empty = the default pair below
  // Modest defaults: the naive mode's cost is quadratic-ish in the live set
  // (a full rebuild per add→query transition), which is the phenomenon
  // being measured — crank --universe/--events for the dynamic mode only.
  size_t universe = 10000;
  size_t events = 20000;
  double add_frac = 0.3;
  double remove_frac = 0.0;
  size_t delta_capacity = 4096;
  double bits_per_key = 12.0;
  uint32_t num_hashes = 8;
  /// Events per latency sample for the --json report.
  size_t chunk = 2048;
  std::string json_path;
  bool smoke = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

FilterSpec SpecFor(const Config& config, bool dynamic) {
  // Size for the steady-state live set, not the universe: with add/remove
  // churn only a fraction of the universe is live at once.
  FilterSpec spec = FilterSpec::ForKeys(config.universe,
                                        config.bits_per_key,
                                        config.num_hashes);
  spec.max_count = 16;
  spec.seed = 0x5eed0fc4;
  if (dynamic) spec.delta_capacity = config.delta_capacity;
  return spec;
}

struct RunResult {
  bool ok = true;
  double seconds = 0;
  size_t adds = 0;
  size_t removes = 0;
  size_t queries = 0;
  LatencyRecorder latencies;
};

/// Rebuilds the plain base filter from `counts` — the reference the dynamic
/// path must match bit-for-bit at epoch boundaries.
Status BuildReference(const std::string& name, const Config& config,
                      const ChurnWorkload& workload,
                      const std::vector<uint32_t>& counts,
                      std::unique_ptr<MembershipFilter>* out) {
  Status s = FilterRegistry::Global().Create(name, SpecFor(config, false),
                                             out);
  if (!s.ok()) return s;
  for (size_t i = 0; i < counts.size(); ++i) {
    for (uint32_t c = 0; c < counts[i]; ++c) (*out)->Add(workload.keys[i]);
  }
  return Status::Ok();
}

/// Bit-identical comparison over the whole universe (members, removed keys
/// and never-added keys alike — false positives must agree too).
bool AnswersMatchReference(const std::string& name, const Config& config,
                           const ChurnWorkload& workload,
                           const std::vector<uint32_t>& counts,
                           const MembershipFilter& filter, uint64_t epoch) {
  std::unique_ptr<MembershipFilter> reference;
  Status s = BuildReference(name, config, workload, counts, &reference);
  if (!s.ok()) {
    std::fprintf(stderr, "SMOKE FAILED (%s): reference build: %s\n",
                 name.c_str(), s.ToString().c_str());
    return false;
  }
  for (size_t i = 0; i < workload.keys.size(); ++i) {
    const bool got = filter.Contains(workload.keys[i]);
    const bool want = reference->Contains(workload.keys[i]);
    if (got != want) {
      std::fprintf(stderr,
                   "SMOKE FAILED (%s): epoch %llu: key %zu answers %d, "
                   "scratch-built reference answers %d\n",
                   name.c_str(), static_cast<unsigned long long>(epoch), i,
                   got ? 1 : 0, want ? 1 : 0);
      return false;
    }
  }
  return true;
}

/// Replays the event stream through `filter`. In smoke mode, checks the
/// no-false-negative invariant per live query and (for the dynamic mode)
/// bit-identical answers at every epoch boundary.
RunResult Replay(const std::string& name, const Config& config,
                 const ChurnWorkload& workload, MembershipFilter* filter,
                 bool check_epochs) {
  RunResult result;
  auto* dynamic = dynamic_cast<DynamicFilter*>(filter);
  check_epochs = check_epochs && dynamic != nullptr;
  // Live multiset tracked alongside the replay, for reference rebuilds.
  std::vector<uint32_t> counts(workload.keys.size(), 0);
  uint64_t last_epoch = dynamic != nullptr ? dynamic->epoch() : 0;
  uint64_t hits = 0;

  // Latency windows of `chunk` events; a window an epoch audit lands in is
  // discarded (the audit is not part of the workload).
  WallTimer window_timer;
  size_t window_events = 0;
  bool window_dirty = false;

  WallTimer timer;
  for (const auto& event : workload.events) {
    const std::string& key = workload.keys[event.key_index];
    switch (event.op) {
      case ChurnWorkload::Op::kAdd:
        filter->Add(key);
        ++result.adds;
        if (config.smoke) ++counts[event.key_index];
        break;
      case ChurnWorkload::Op::kRemove: {
        Status s = filter->Remove(key);
        ++result.removes;
        if (config.smoke) {
          if (!s.ok()) {
            std::fprintf(stderr,
                         "SMOKE FAILED (%s): Remove of live key: %s\n",
                         name.c_str(), s.ToString().c_str());
            result.ok = false;
            return result;
          }
          --counts[event.key_index];
        }
        break;
      }
      case ChurnWorkload::Op::kQuery: {
        const bool found = filter->Contains(key);
        hits += found;
        ++result.queries;
        if (config.smoke && event.live && !found) {
          std::fprintf(stderr,
                       "SMOKE FAILED (%s): false negative for live key\n",
                       name.c_str());
          result.ok = false;
          return result;
        }
        break;
      }
    }
    if (++window_events == config.chunk) {
      if (!window_dirty) {
        result.latencies.Record(window_timer.ElapsedSeconds());
      }
      window_timer.Reset();
      window_events = 0;
      window_dirty = false;
    }
    if (check_epochs && config.smoke && dynamic->epoch() != last_epoch) {
      // Pause the clock: the equivalence audit is not part of the workload.
      result.seconds += timer.ElapsedSeconds();
      last_epoch = dynamic->epoch();
      if (!AnswersMatchReference(name, config, workload, counts, *filter,
                                 last_epoch)) {
        result.ok = false;
        return result;
      }
      timer.Reset();
      window_dirty = true;
    }
  }
  result.seconds += timer.ElapsedSeconds();
  DoNotOptimize(hits);

  if (check_epochs && config.smoke) {
    dynamic->Flush();
    if (!AnswersMatchReference(name, config, workload, counts, *filter,
                               dynamic->epoch())) {
      result.ok = false;
    }
  }
  return result;
}

void EmitRow(const std::string& filter, const char* mode,
             const RunResult& result, double naive_seconds,
             const Config& config, JsonReport* report) {
  const size_t events = result.adds + result.removes + result.queries;
  std::printf("%s,%s,%zu,%zu,%zu,%zu,%.4f,%.2f,%.2f\n", filter.c_str(), mode,
              events, result.adds, result.removes, result.queries,
              result.seconds, Mops(events, result.seconds),
              result.seconds > 0 ? naive_seconds / result.seconds : 0.0);
  report->AddRow()
      .Set("workload", "churn/" + filter)
      .Set("mode", mode)
      .Set("events", uint64_t{events})
      .Set("chunk_events", uint64_t{config.chunk})
      .Set("keys_per_s", result.seconds > 0 ? events / result.seconds : 0.0)
      .Set("p50_us", result.latencies.PercentileSeconds(50) * 1e6)
      .Set("p99_us", result.latencies.PercentileSeconds(99) * 1e6);
}

/// Runs naive vs dynamic for one filter; returns false on a smoke failure.
bool RunFilter(const std::string& name, const Config& config,
               bool gate_speedup, JsonReport* report) {
  const auto& registry = FilterRegistry::Global();
  const ChurnWorkload workload = MakeChurnWorkload(
      config.universe, config.events, config.add_frac, config.remove_frac,
      /*seed=*/0xc4a7e5eedull);

  std::unique_ptr<MembershipFilter> naive;
  Status s = registry.Create(name, SpecFor(config, false), &naive);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return false;
  }
  RunResult naive_result =
      Replay(name, config, workload, naive.get(), /*check_epochs=*/false);
  if (!naive_result.ok) return false;
  EmitRow(name, "naive", naive_result, naive_result.seconds, config, report);

  std::unique_ptr<MembershipFilter> dynamic;
  s = registry.Create(name, SpecFor(config, true), &dynamic);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return false;
  }
  RunResult dynamic_result =
      Replay(name, config, workload, dynamic.get(), /*check_epochs=*/true);
  if (!dynamic_result.ok) return false;
  EmitRow(name, "dynamic", dynamic_result, naive_result.seconds, config,
          report);

  if (config.smoke && gate_speedup) {
    const double speedup = dynamic_result.seconds > 0
                               ? naive_result.seconds / dynamic_result.seconds
                               : 1e9;
    if (speedup < 5.0) {
      std::fprintf(stderr,
                   "SMOKE FAILED (%s): dynamic %.2fx naive, need >= 5x\n",
                   name.c_str(), speedup);
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--smoke") == 0) {
      config.smoke = true;
    } else if (ParseFlag(argv[i], "filter", &value)) {
      config.filter_name = value;
    } else if (ParseFlag(argv[i], "universe", &value)) {
      config.universe = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "events", &value)) {
      config.events = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "add-frac", &value)) {
      config.add_frac = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "remove-frac", &value)) {
      config.remove_frac = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "delta", &value)) {
      config.delta_capacity = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "bits-per-key", &value)) {
      config.bits_per_key = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "k", &value)) {
      config.num_hashes = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "chunk", &value)) {
      config.chunk = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "json", &value)) {
      config.json_path = value;
    } else {
      std::fprintf(stderr,
                   "usage: bench_churn_throughput [--filter=<name>] "
                   "[--universe=N] [--events=N] [--add-frac=F] "
                   "[--remove-frac=F] [--delta=N] [--bits-per-key=B] "
                   "[--k=K] [--chunk=N] [--json=<path>] [--smoke]\n");
      return 2;
    }
  }
  if (config.smoke) {
    // Small enough that the per-epoch full-universe equivalence audits stay
    // cheap; large enough that the naive path pays hundreds of rebuilds.
    config.universe = 2000;
    config.events = 4000;
    config.delta_capacity = 256;
  }
  if (config.universe == 0 || config.events == 0 ||
      config.delta_capacity == 0 || config.chunk == 0) {
    std::fprintf(stderr,
                 "error: --universe, --events, --delta and --chunk must be "
                 "positive\n");
    return 2;
  }

  std::printf("filter,mode,events,adds,removes,queries,seconds,mops,"
              "speedup_vs_naive\n");
  bool ok = true;
  JsonReport report("churn_throughput");
  if (!config.filter_name.empty()) {
    ok = RunFilter(config.filter_name, config, /*gate_speedup=*/config.smoke,
                   &report);
  } else {
    // Defaults: the bulk-built multiplicity ShBF (the structure the dynamic
    // wrapper exists for — speedup gated in smoke) and the incremental
    // counting ShBF with real remove churn (correctness-gated only: its
    // naive path is already incremental).
    ok = RunFilter("shbf_x", config, /*gate_speedup=*/true, &report) && ok;
    Config churny = config;
    churny.add_frac = 0.25;
    churny.remove_frac = 0.10;
    ok = RunFilter("counting_shbf_m", churny, /*gate_speedup=*/false,
                   &report) &&
         ok;
  }
  Status json_status = report.WriteToFile(config.json_path);
  if (!json_status.ok()) {
    std::fprintf(stderr, "error: --json: %s\n",
                 json_status.ToString().c_str());
    ok = false;
  }
  if (config.smoke && ok) std::printf("# smoke OK\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace shbf

int main(int argc, char** argv) { return shbf::Main(argc, argv); }
