// Micro-benchmarks: per-operation cost of every structure in the library at
// a common operating point (n = 10000 elements, k = 8, optimal-ish memory),
// split into member and non-member queries (early exits differ) and inserts.

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>
#include <vector>

#include "baselines/bloom_filter.h"
#include "baselines/cm_sketch.h"
#include "baselines/counting_bloom_filter.h"
#include "baselines/cuckoo_filter.h"
#include "baselines/km_bloom_filter.h"
#include "baselines/one_mem_bf.h"
#include "baselines/spectral_bloom_filter.h"
#include "shbf/counting_shbf_membership.h"
#include "shbf/scm_sketch.h"
#include "shbf/shbf_membership.h"
#include "shbf/shbf_multiplicity.h"
#include "trace/workload.h"

namespace shbf {
namespace {

constexpr size_t kN = 10000;
constexpr uint32_t kK = 8;
constexpr size_t kM = 115000;  // ~= n·k/ln2

const MembershipWorkload& Workload() {
  static const MembershipWorkload w = MakeMembershipWorkload(kN, kN, 0x51c0);
  return w;
}

template <typename Filter>
void QueryLoop(benchmark::State& state, const Filter& filter,
               const std::vector<std::string>& keys) {
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.Contains(keys[i % keys.size()]));
    ++i;
  }
}

void BM_Bloom_ContainsMember(benchmark::State& state) {
  BloomFilter filter({.num_bits = kM, .num_hashes = kK});
  for (const auto& key : Workload().members) filter.Add(key);
  QueryLoop(state, filter, Workload().members);
}
BENCHMARK(BM_Bloom_ContainsMember);

void BM_Bloom_ContainsNonMember(benchmark::State& state) {
  BloomFilter filter({.num_bits = kM, .num_hashes = kK});
  for (const auto& key : Workload().members) filter.Add(key);
  QueryLoop(state, filter, Workload().non_members);
}
BENCHMARK(BM_Bloom_ContainsNonMember);

void BM_ShbfM_ContainsMember(benchmark::State& state) {
  ShbfM filter({.num_bits = kM, .num_hashes = kK});
  for (const auto& key : Workload().members) filter.Add(key);
  QueryLoop(state, filter, Workload().members);
}
BENCHMARK(BM_ShbfM_ContainsMember);

void BM_ShbfM_ContainsNonMember(benchmark::State& state) {
  ShbfM filter({.num_bits = kM, .num_hashes = kK});
  for (const auto& key : Workload().members) filter.Add(key);
  QueryLoop(state, filter, Workload().non_members);
}
BENCHMARK(BM_ShbfM_ContainsNonMember);

void BM_OneMemBf_ContainsMember(benchmark::State& state) {
  OneMemBloomFilter filter({.num_bits = kM, .num_hashes = kK});
  for (const auto& key : Workload().members) filter.Add(key);
  QueryLoop(state, filter, Workload().members);
}
BENCHMARK(BM_OneMemBf_ContainsMember);

void BM_KmBloom_ContainsMember(benchmark::State& state) {
  KmBloomFilter filter({.num_bits = kM, .num_hashes = kK});
  for (const auto& key : Workload().members) filter.Add(key);
  QueryLoop(state, filter, Workload().members);
}
BENCHMARK(BM_KmBloom_ContainsMember);

void BM_Cuckoo_ContainsMember(benchmark::State& state) {
  CuckooFilter filter({.num_buckets = 4096, .fingerprint_bits = 12});
  for (const auto& key : Workload().members) filter.Insert(key);
  QueryLoop(state, filter, Workload().members);
}
BENCHMARK(BM_Cuckoo_ContainsMember);

// Batch (prefetching) vs scalar queries: the gap widens once the filter
// outgrows the last-level cache; at this size it mainly shows the overhead
// floor of batching.
void BM_ShbfM_ContainsBatch(benchmark::State& state) {
  ShbfM filter({.num_bits = kM, .num_hashes = kK});
  for (const auto& key : Workload().members) filter.Add(key);
  std::vector<uint8_t> results(Workload().members.size());
  for (auto _ : state) {
    filter.ContainsBatch(Workload().members, &results);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(Workload().members.size()));
}
BENCHMARK(BM_ShbfM_ContainsBatch);

void BM_Bloom_ContainsBatch(benchmark::State& state) {
  BloomFilter filter({.num_bits = kM, .num_hashes = kK});
  for (const auto& key : Workload().members) filter.Add(key);
  std::vector<uint8_t> results(Workload().members.size());
  for (auto _ : state) {
    filter.ContainsBatch(Workload().members, &results);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(Workload().members.size()));
}
BENCHMARK(BM_Bloom_ContainsBatch);

void BM_Bloom_Add(benchmark::State& state) {
  BloomFilter filter({.num_bits = kM, .num_hashes = kK});
  size_t i = 0;
  for (auto _ : state) {
    filter.Add(Workload().members[i % kN]);
    ++i;
  }
}
BENCHMARK(BM_Bloom_Add);

void BM_ShbfM_Add(benchmark::State& state) {
  ShbfM filter({.num_bits = kM, .num_hashes = kK});
  size_t i = 0;
  for (auto _ : state) {
    filter.Add(Workload().members[i % kN]);
    ++i;
  }
}
BENCHMARK(BM_ShbfM_Add);

void BM_CountingShbfM_InsertDelete(benchmark::State& state) {
  CountingShbfM filter(
      {.num_bits = kM, .num_hashes = kK, .counter_bits = 8});
  size_t i = 0;
  for (auto _ : state) {
    const std::string& key = Workload().members[i % kN];
    filter.Insert(key);
    filter.Delete(key);
    ++i;
  }
}
BENCHMARK(BM_CountingShbfM_InsertDelete);

void BM_CountingBloom_InsertDelete(benchmark::State& state) {
  CountingBloomFilter filter(
      {.num_counters = kM, .num_hashes = kK, .counter_bits = 8});
  size_t i = 0;
  for (auto _ : state) {
    const std::string& key = Workload().members[i % kN];
    filter.Insert(key);
    filter.Delete(key);
    ++i;
  }
}
BENCHMARK(BM_CountingBloom_InsertDelete);

// --- multiplicity structures ---------------------------------------------------

struct MultiSetup {
  MultiplicityWorkload w = MakeMultiplicityWorkload(kN, 57, kN, 77);
  size_t memory_bits = static_cast<size_t>(1.5 * kN * kK / std::log(2.0));
};

const MultiSetup& Multi() {
  static const MultiSetup setup;
  return setup;
}

void BM_ShbfX_QueryMember(benchmark::State& state) {
  ShbfX filter({.num_bits = Multi().memory_bits,
                .num_hashes = kK,
                .max_count = 57});
  for (size_t i = 0; i < Multi().w.keys.size(); ++i) {
    filter.InsertWithCount(Multi().w.keys[i], Multi().w.counts[i]);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        filter.QueryCount(Multi().w.keys[i % kN]));
    ++i;
  }
}
BENCHMARK(BM_ShbfX_QueryMember);

void BM_Spectral_QueryMember(benchmark::State& state) {
  SpectralBloomFilter filter({.num_counters = Multi().memory_bits / 6,
                              .num_hashes = kK,
                              .counter_bits = 6});
  for (size_t i = 0; i < Multi().w.keys.size(); ++i) {
    for (uint32_t c = 0; c < Multi().w.counts[i]; ++c) {
      filter.Insert(Multi().w.keys[i]);
    }
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.QueryCount(Multi().w.keys[i % kN]));
    ++i;
  }
}
BENCHMARK(BM_Spectral_QueryMember);

void BM_CmSketch_QueryMember(benchmark::State& state) {
  CmSketch filter({.depth = kK,
                   .width = Multi().memory_bits / 6 / kK,
                   .counter_bits = 6});
  for (size_t i = 0; i < Multi().w.keys.size(); ++i) {
    for (uint32_t c = 0; c < Multi().w.counts[i]; ++c) {
      filter.Insert(Multi().w.keys[i]);
    }
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.QueryCount(Multi().w.keys[i % kN]));
    ++i;
  }
}
BENCHMARK(BM_CmSketch_QueryMember);

void BM_ScmSketch_QueryMember(benchmark::State& state) {
  ScmSketch filter(
      {.depth = kK, .width = Multi().memory_bits / 16 / kK, .counter_bits = 16});
  for (size_t i = 0; i < Multi().w.keys.size(); ++i) {
    for (uint32_t c = 0; c < Multi().w.counts[i]; ++c) {
      filter.Insert(Multi().w.keys[i]);
    }
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.QueryCount(Multi().w.keys[i % kN]));
    ++i;
  }
}
BENCHMARK(BM_ScmSketch_QueryMember);

}  // namespace
}  // namespace shbf
