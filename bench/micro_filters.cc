// Micro-benchmarks: per-operation cost of every structure in the library at
// a common operating point (n = 10000 elements, k = 8, optimal-ish memory).
//
// Query benches are registry-driven: every filter registered in the
// FilterRegistry gets a member and a non-member Contains bench through the
// uniform MembershipFilter interface, so new filters are benchmarked the
// moment they register. Two hand-written concrete benches (bloom, shbf_m)
// remain as the inlined baseline — their delta against the registry variants
// is the price of virtual dispatch.

#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "api/filter_registry.h"
#include "baselines/bloom_filter.h"
#include "baselines/counting_bloom_filter.h"
#include "engine/batch_query_engine.h"
#include "shbf/counting_shbf_membership.h"
#include "shbf/shbf_membership.h"
#include "shbf/shbf_multiplicity.h"
#include "trace/workload.h"

namespace shbf {
namespace {

constexpr size_t kN = 10000;
constexpr uint32_t kK = 8;
constexpr size_t kM = 115000;  // ~= n·k/ln2

const MembershipWorkload& Workload() {
  static const MembershipWorkload w = MakeMembershipWorkload(kN, kN, 0x51c0);
  return w;
}

FilterSpec BenchSpec() {
  FilterSpec spec;
  spec.num_cells = kM;
  spec.num_hashes = kK;
  spec.expected_keys = kN;
  spec.max_count = 8;
  return spec;
}

// --- registry-driven query benches: every registered filter ---------------

void RunRegistryQueryBench(benchmark::State& state, const std::string& name,
                           const std::vector<std::string>& queries) {
  std::unique_ptr<MembershipFilter> filter;
  Status s = FilterRegistry::Global().Create(name, BenchSpec(), &filter);
  if (!s.ok()) {
    state.SkipWithError(s.ToString().c_str());
    return;
  }
  for (const auto& key : Workload().members) filter->Add(key);
  filter->Contains(queries.front());  // force lazy builds out of the loop
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter->Contains(queries[i % queries.size()]));
    ++i;
  }
}

int RegisterRegistryBenches() {
  for (const auto& name : FilterRegistry::Global().Names()) {
    benchmark::RegisterBenchmark(
        ("BM_Registry_ContainsMember/" + name).c_str(),
        [name](benchmark::State& state) {
          RunRegistryQueryBench(state, name, Workload().members);
        });
    benchmark::RegisterBenchmark(
        ("BM_Registry_ContainsNonMember/" + name).c_str(),
        [name](benchmark::State& state) {
          RunRegistryQueryBench(state, name, Workload().non_members);
        });
  }
  return 0;
}

[[maybe_unused]] const int kRegistryBenchesRegistered = RegisterRegistryBenches();

// --- engine-batched queries: every registered filter ----------------------
// Delta against BM_Registry_ContainsMember is what the two-pass prefetching
// engine buys (fast-path filters) or costs (fallback filters) per query.

void RunEngineBatchBench(benchmark::State& state, const std::string& name) {
  std::unique_ptr<MembershipFilter> filter;
  Status s = FilterRegistry::Global().Create(name, BenchSpec(), &filter);
  if (!s.ok()) {
    state.SkipWithError(s.ToString().c_str());
    return;
  }
  for (const auto& key : Workload().members) filter->Add(key);
  BatchQueryEngine engine({.batch_size = 32});
  std::vector<uint8_t> results;
  engine.ContainsBatch(*filter, Workload().members, &results);  // warm-up
  for (auto _ : state) {
    engine.ContainsBatch(*filter, Workload().members, &results);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(Workload().members.size()));
}

int RegisterEngineBatchBenches() {
  for (const auto& name : FilterRegistry::Global().Names()) {
    benchmark::RegisterBenchmark(
        ("BM_Registry_EngineContainsBatch/" + name).c_str(),
        [name](benchmark::State& state) {
          RunEngineBatchBench(state, name);
        });
  }
  return 0;
}

[[maybe_unused]] const int kEngineBatchBenchesRegistered =
    RegisterEngineBatchBenches();

// --- inlined concrete baselines (virtual-dispatch overhead reference) -----

void BM_Bloom_ContainsMember_Inlined(benchmark::State& state) {
  BloomFilter filter({.num_bits = kM, .num_hashes = kK});
  for (const auto& key : Workload().members) filter.Add(key);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.Contains(Workload().members[i % kN]));
    ++i;
  }
}
BENCHMARK(BM_Bloom_ContainsMember_Inlined);

void BM_ShbfM_ContainsMember_Inlined(benchmark::State& state) {
  ShbfM filter({.num_bits = kM, .num_hashes = kK});
  for (const auto& key : Workload().members) filter.Add(key);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.Contains(Workload().members[i % kN]));
    ++i;
  }
}
BENCHMARK(BM_ShbfM_ContainsMember_Inlined);

// Batch (prefetching) vs scalar queries: the gap widens once the filter
// outgrows the last-level cache; at this size it mainly shows the overhead
// floor of batching.
void BM_ShbfM_ContainsBatch(benchmark::State& state) {
  ShbfM filter({.num_bits = kM, .num_hashes = kK});
  for (const auto& key : Workload().members) filter.Add(key);
  std::vector<uint8_t> results(Workload().members.size());
  for (auto _ : state) {
    filter.ContainsBatch(Workload().members, &results);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(Workload().members.size()));
}
BENCHMARK(BM_ShbfM_ContainsBatch);

void BM_Bloom_ContainsBatch(benchmark::State& state) {
  BloomFilter filter({.num_bits = kM, .num_hashes = kK});
  for (const auto& key : Workload().members) filter.Add(key);
  std::vector<uint8_t> results(Workload().members.size());
  for (auto _ : state) {
    filter.ContainsBatch(Workload().members, &results);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(Workload().members.size()));
}
BENCHMARK(BM_Bloom_ContainsBatch);

// --- update paths ---------------------------------------------------------

void BM_Bloom_Add(benchmark::State& state) {
  BloomFilter filter({.num_bits = kM, .num_hashes = kK});
  size_t i = 0;
  for (auto _ : state) {
    filter.Add(Workload().members[i % kN]);
    ++i;
  }
}
BENCHMARK(BM_Bloom_Add);

void BM_ShbfM_Add(benchmark::State& state) {
  ShbfM filter({.num_bits = kM, .num_hashes = kK});
  size_t i = 0;
  for (auto _ : state) {
    filter.Add(Workload().members[i % kN]);
    ++i;
  }
}
BENCHMARK(BM_ShbfM_Add);

void BM_CountingShbfM_InsertDelete(benchmark::State& state) {
  CountingShbfM filter(
      {.num_bits = kM, .num_hashes = kK, .counter_bits = 8});
  size_t i = 0;
  for (auto _ : state) {
    const std::string& key = Workload().members[i % kN];
    filter.Insert(key);
    filter.Delete(key);
    ++i;
  }
}
BENCHMARK(BM_CountingShbfM_InsertDelete);

void BM_CountingBloom_InsertDelete(benchmark::State& state) {
  CountingBloomFilter filter(
      {.num_counters = kM, .num_hashes = kK, .counter_bits = 8});
  size_t i = 0;
  for (auto _ : state) {
    const std::string& key = Workload().members[i % kN];
    filter.Insert(key);
    filter.Delete(key);
    ++i;
  }
}
BENCHMARK(BM_CountingBloom_InsertDelete);

// --- multiplicity count queries (registry-driven) -------------------------

void RunRegistryCountBench(benchmark::State& state, const std::string& name) {
  std::unique_ptr<MultiplicityFilter> filter;
  FilterSpec spec = BenchSpec();
  spec.max_count = 57;
  Status s =
      FilterRegistry::Global().CreateMultiplicity(name, spec, &filter);
  if (!s.ok()) {
    state.SkipWithError(s.ToString().c_str());
    return;
  }
  static const MultiplicityWorkload w = MakeMultiplicityWorkload(kN, 8, 0, 77);
  for (size_t i = 0; i < w.keys.size(); ++i) {
    for (uint32_t c = 0; c < w.counts[i]; ++c) filter->Add(w.keys[i]);
  }
  filter->QueryCount(w.keys.front());  // force lazy builds out of the loop
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter->QueryCount(w.keys[i % w.keys.size()]));
    ++i;
  }
}

int RegisterCountBenches() {
  for (const auto& name :
       FilterRegistry::Global().Names(FilterFamily::kMultiplicity)) {
    benchmark::RegisterBenchmark(
        ("BM_Registry_QueryCount/" + name).c_str(),
        [name](benchmark::State& state) {
          RunRegistryCountBench(state, name);
        });
  }
  return 0;
}

[[maybe_unused]] const int kCountBenchesRegistered = RegisterCountBenches();

}  // namespace
}  // namespace shbf
