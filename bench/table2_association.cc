// Table 2 — analytical + measured comparison between ShBF_A and iBF:
// optimal memory, hash computations, memory accesses, probability of a clear
// answer, and susceptibility to false positives.
//
// Setup mirrors §6.3 at reduced scale (scale with argv[1]): |S1| = |S2| = n,
// |S1 ∩ S2| = n/4, queries hit the three parts uniformly, both schemes sized
// optimally for k = 10 (the paper's running example).

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "analysis/association_theory.h"
#include "baselines/ibf.h"
#include "bench_util/table.h"
#include "shbf/shbf_association.h"
#include "trace/workload.h"

namespace shbf {
namespace {

void Run(size_t n, size_t num_queries) {
  const uint32_t k = 10;
  const size_t n3 = n / 4;
  auto w = MakeAssociationWorkload(n, n, n3, num_queries, 222);

  ShbfA shbf(ShbfAParams::Optimal(n, n, n3, k));
  shbf.Build(w.s1, w.s2);
  IndividualBloomFilters ibf(IndividualBloomFilters::OptimalParams(n, n, k));
  for (const auto& key : w.s1) ibf.AddToS1(key);
  for (const auto& key : w.s2) ibf.AddToS2(key);

  size_t clear_shbf = 0;
  size_t clear_ibf = 0;
  size_t wrong_shbf = 0;  // clear answers contradicting ground truth
  size_t wrong_ibf = 0;   // declared intersections that are FPs
  QueryStats stats_shbf;
  QueryStats stats_ibf;
  for (const auto& q : w.queries) {
    AssociationOutcome out_shbf = shbf.QueryWithStats(q.key, &stats_shbf);
    if (IsClearAnswer(out_shbf)) {
      ++clear_shbf;
      wrong_shbf += !OutcomeConsistentWithTruth(out_shbf, q.truth);
    }
    AssociationOutcome out_ibf = ibf.QueryWithStats(q.key, &stats_ibf);
    if (IndividualBloomFilters::OutcomeIsClear(out_ibf)) ++clear_ibf;
    if (out_ibf == AssociationOutcome::kIntersection &&
        q.truth != AssociationTruth::kIntersection) {
      ++wrong_ibf;
    }
  }
  double nq = static_cast<double>(w.queries.size());

  PrintBanner("Table 2: ShBF_A vs iBF  (n1=n2=" + std::to_string(n) +
              ", n3=" + std::to_string(n3) + ", k=10)");
  TablePrinter table({"metric", "iBF", "ShBF_A", "paper (Table 2)"});
  table.AddRow({"memory bits", std::to_string(ibf.total_bits()),
                std::to_string(shbf.num_bits()),
                "(n1+n2)k/ln2 vs (n1+n2-n3)k/ln2"});
  table.AddRow({"hash computations/query",
                TablePrinter::Num(stats_ibf.AvgHashComputations(), 2),
                TablePrinter::Num(stats_shbf.AvgHashComputations(), 2),
                "2k vs k+2"});
  table.AddRow({"memory accesses/query",
                TablePrinter::Num(stats_ibf.AvgMemoryAccesses(), 2),
                TablePrinter::Num(stats_shbf.AvgMemoryAccesses(), 2),
                "2k vs k"});
  table.AddRow({"P(clear answer) sim", TablePrinter::Num(clear_ibf / nq, 4),
                TablePrinter::Num(clear_shbf / nq, 4),
                "2/3(1-0.5^k) vs (1-0.5^k)^2"});
  table.AddRow({"P(clear answer) theory",
                TablePrinter::Num(theory::IbfClearAnswerProb(k), 4),
                TablePrinter::Num(theory::ShbfAClearAnswerProb(k), 4), ""});
  table.AddRow({"false positives observed", std::to_string(wrong_ibf),
                std::to_string(wrong_shbf), "YES vs NO"});
  table.Print();

  std::printf(
      "\npaper says : ShBF_A needs less memory, fewer hashes (k+2 vs 2k), "
      "fewer accesses (k vs 2k), higher clear-answer probability, and its "
      "declared answers are never false positives\n"
      "we measured: memory %.2fx, hashes %.2fx, accesses %.2fx (ShBF_A/iBF); "
      "clear-answer %.4f vs %.4f; wrong clear answers %zu (ShBF_A) vs %zu "
      "wrong declared intersections (iBF)\n",
      static_cast<double>(shbf.num_bits()) / ibf.total_bits(),
      stats_shbf.AvgHashComputations() / stats_ibf.AvgHashComputations(),
      stats_shbf.AvgMemoryAccesses() / stats_ibf.AvgMemoryAccesses(),
      clear_shbf / nq, clear_ibf / nq, wrong_shbf, wrong_ibf);
}

}  // namespace
}  // namespace shbf

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  size_t n = static_cast<size_t>(100000 * scale);
  size_t queries = static_cast<size_t>(200000 * scale);
  shbf::PrintBanner("Reproduction of Table 2 (Yang et al., VLDB 2016)");
  shbf::Run(n, queries);
  return 0;
}
