// Ablation A4 — the shifting Count-Min sketch (§5.5): does the shifting
// framework transfer from bit arrays to counter arrays? SCM (d/2 rows of 2r
// counters) vs CM (d rows of r counters) at identical total memory, across
// depths. Measures point-query accuracy (exact-hit rate and mean
// overestimate), per-query cost, and speed.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "baselines/cm_sketch.h"
#include "bench_util/table.h"
#include "bench_util/timer.h"
#include "shbf/scm_sketch.h"
#include "trace/workload.h"

namespace shbf {
namespace {

void Run(size_t timed_queries) {
  const size_t n = 50000;
  auto w = MakeMultiplicityWorkload(n, 20, 0, 3400);

  PrintBanner("Ablation A4: shifting CM sketch vs CM sketch (equal memory)");
  TablePrinter table({"d", "width r", "scheme", "exact-rate", "mean over",
                      "accesses", "hashes", "Mqps"});
  for (uint32_t d : {4u, 8u}) {
    const size_t r = 60000 / d;  // fixed total of 60000 counters
    CmSketch cm({.depth = d, .width = r, .counter_bits = 16});
    ScmSketch scm({.depth = d, .width = r, .counter_bits = 16});
    for (size_t i = 0; i < w.keys.size(); ++i) {
      for (uint32_t c = 0; c < w.counts[i]; ++c) {
        cm.Insert(w.keys[i]);
        scm.Insert(w.keys[i]);
      }
    }

    auto evaluate = [&](auto& sketch, const char* name) {
      size_t exact = 0;
      double over = 0;
      QueryStats stats;
      for (size_t i = 0; i < w.keys.size(); ++i) {
        uint64_t est = sketch.QueryCountWithStats(w.keys[i], &stats);
        exact += (est == w.counts[i]);
        over += static_cast<double>(est - w.counts[i]);
      }
      size_t rounds = (timed_queries + w.keys.size() - 1) / w.keys.size();
      uint64_t sink = 0;
      WallTimer timer;
      for (size_t rep = 0; rep < rounds; ++rep) {
        for (const auto& key : w.keys) sink += sketch.QueryCount(key);
      }
      double mqps = Mops(rounds * w.keys.size(), timer.ElapsedSeconds());
      DoNotOptimize(sink);
      table.AddRow({std::to_string(d), std::to_string(r), name,
                    TablePrinter::Num(static_cast<double>(exact) / n, 4),
                    TablePrinter::Num(over / n, 3),
                    TablePrinter::Num(stats.AvgMemoryAccesses(), 2),
                    TablePrinter::Num(stats.AvgHashComputations(), 2),
                    TablePrinter::Num(mqps, 2)});
    };
    evaluate(cm, "CM");
    evaluate(scm, "SCM");
  }
  table.Print();
  std::printf(
      "paper says : SCM halves the memory accesses and hash computations of "
      "CM per query (section 5.5; not evaluated there)\n"
      "we measured: the cost halves as predicted; accuracy stays in the same "
      "regime, mildly worse because the two counters of a pair share their "
      "row (correlated collisions)\n");
}

}  // namespace
}  // namespace shbf

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  shbf::PrintBanner("Ablation: shifting Count-Min sketch (paper section 5.5)");
  shbf::Run(static_cast<size_t>(500000 * scale));
  return 0;
}
