// Figure 7 — membership FPR: ShBF_M (theory Eq 1 + simulation) vs 1MemBF at
// equal memory and at 1.5x memory.
//   (a) k = 8, m = 22008, w̄ = 57, n = 1000..1500
//   (b) m = 22976, n = 2000, k = 4..16
//   (c) n = 4000, k = 6, m = 32000..44000
//
// Paper's findings (§6.2.1): theory-vs-simulation relative error < 3%;
// 1MemBF's FPR is 5–10x ShBF_M's at equal memory and still above it at 1.5x
// memory. The paper issues 7M negative queries per point; we default to
// 400k·scale (pass a scale factor as argv[1]; 17.5 reproduces the paper's
// volume).

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "analysis/membership_theory.h"
#include "baselines/one_mem_bf.h"
#include "bench_util/csv.h"
#include "bench_util/table.h"
#include "shbf/shbf_membership.h"
#include "trace/workload.h"

namespace shbf {
namespace {

struct Point {
  double theory_shbf;
  double sim_shbf;
  double sim_one_mem;
  double sim_one_mem_15;  // 1.5x memory
};

Point RunPoint(size_t m, size_t n, uint32_t k, size_t num_negatives,
               uint64_t seed) {
  auto w = MakeMembershipWorkload(n, num_negatives, seed);
  ShbfM shbf({.num_bits = m, .num_hashes = k});
  OneMemBloomFilter one_mem({.num_bits = m, .num_hashes = k});
  OneMemBloomFilter one_mem_15({.num_bits = m * 3 / 2, .num_hashes = k});
  for (const auto& key : w.members) {
    shbf.Add(key);
    one_mem.Add(key);
    one_mem_15.Add(key);
  }
  size_t fp_shbf = 0;
  size_t fp_one_mem = 0;
  size_t fp_one_mem_15 = 0;
  for (const auto& key : w.non_members) {
    fp_shbf += shbf.Contains(key);
    fp_one_mem += one_mem.Contains(key);
    fp_one_mem_15 += one_mem_15.Contains(key);
  }
  double denom = static_cast<double>(w.non_members.size());
  return {theory::ShbfMFpr(m, n, k, 57), fp_shbf / denom, fp_one_mem / denom,
          fp_one_mem_15 / denom};
}

TablePrinter MakeTable() {
  return TablePrinter({"x", "ShBF_M theory", "ShBF_M sim", "1MemBF (m)",
                       "1MemBF (1.5m)", "rel.err thy/sim"});
}

void AddRow(TablePrinter& table, const std::string& x, const Point& p) {
  double rel_err = p.sim_shbf == 0
                       ? 0
                       : std::abs(p.sim_shbf - p.theory_shbf) / p.theory_shbf;
  table.AddRow({x, TablePrinter::Sci(p.theory_shbf),
                TablePrinter::Sci(p.sim_shbf),
                TablePrinter::Sci(p.sim_one_mem),
                TablePrinter::Sci(p.sim_one_mem_15),
                TablePrinter::Num(rel_err * 100, 2) + "%"});
}

void Run(size_t num_negatives) {
  double err_sum = 0;
  double ratio_sum = 0;
  int points = 0;

  // Mirror the Fig 7(a) series to results/fig07a.csv for offline plotting.
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  CsvWriter csv;
  bool csv_ok =
      CsvWriter::Open("results/fig07a.csv",
                      {"n", "shbf_theory", "shbf_sim", "onemem", "onemem_1.5x"},
                      &csv)
          .ok();

  PrintBanner("Fig 7(a): FPR vs n  (k=8, m=22008, w_bar=57)");
  TablePrinter a = MakeTable();
  for (size_t n = 1000; n <= 1500; n += 100) {
    Point p = RunPoint(22008, n, 8, num_negatives, 700 + n);
    AddRow(a, std::to_string(n), p);
    if (csv_ok) {
      csv.AddRow({std::to_string(n), TablePrinter::Sci(p.theory_shbf),
                  TablePrinter::Sci(p.sim_shbf),
                  TablePrinter::Sci(p.sim_one_mem),
                  TablePrinter::Sci(p.sim_one_mem_15)});
    }
    err_sum += std::abs(p.sim_shbf - p.theory_shbf) / p.theory_shbf;
    ratio_sum += p.sim_one_mem / p.sim_shbf;
    ++points;
  }
  a.Print();
  if (csv_ok) std::printf("(series mirrored to results/fig07a.csv)\n");

  PrintBanner("Fig 7(b): FPR vs k  (m=22976, n=2000)");
  TablePrinter b = MakeTable();
  for (uint32_t k = 4; k <= 16; k += 2) {
    Point p = RunPoint(22976, 2000, k, num_negatives, 710 + k);
    AddRow(b, std::to_string(k), p);
  }
  b.Print();

  PrintBanner("Fig 7(c): FPR vs m  (n=4000, k=6)");
  TablePrinter c = MakeTable();
  for (size_t m = 32000; m <= 44000; m += 2000) {
    Point p = RunPoint(m, 4000, 6, num_negatives, 720 + m);
    AddRow(c, std::to_string(m), p);
  }
  c.Print();

  std::printf(
      "\npaper says : theory-vs-sim relative error < 3%%; FPR(1MemBF) is "
      "5-10x FPR(ShBF_M) at equal memory, still higher at 1.5x\n"
      "we measured: mean rel.err %.2f%% over Fig 7(a); mean "
      "FPR(1MemBF)/FPR(ShBF_M) = %.1fx\n",
      err_sum / points * 100, ratio_sum / points);
}

}  // namespace
}  // namespace shbf

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  // Fig 7(a)'s FPRs sit near 1e-4; 2M negatives keep the sampling error in
  // the few-percent range the paper reports (it used 7M; scale 3.5 matches).
  size_t negatives = static_cast<size_t>(2000000 * scale);
  shbf::PrintBanner("Reproduction of Fig 7 (Yang et al., VLDB 2016)");
  std::printf("negative queries per point: %zu (scale %.2f; paper used 7M)\n",
              negatives, scale);
  shbf::Run(negatives);
  return 0;
}
