// Figure 10 — association queries, ShBF_A vs iBF, as k varies with both
// schemes at their optimal memory for each k (§6.3): |S1| = |S2| = 1M,
// |S1 ∩ S2| = 0.25M (scaled by argv[1]; default 0.25 ⇒ 250k/62.5k keeps the
// default full-suite run fast — pass 1.0 for the paper's sizes).
//   (a) probability of a clear answer: sim + theory for both schemes
//   (b) memory accesses per query
//   (c) query speed (Mqps)
//
// Paper's findings: P(clear) reaches 99% (ShBF_A) vs 66% (iBF) at k = 8 with
// average relative error 0.004%/0.7% against theory; accesses ratio ≈ 0.66;
// speed ratio ≈ 1.4x.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analysis/association_theory.h"
#include "baselines/ibf.h"
#include "bench_util/table.h"
#include "bench_util/timer.h"
#include "shbf/shbf_association.h"
#include "trace/workload.h"

namespace shbf {
namespace {

struct Row {
  uint32_t k;
  double clear_shbf_sim, clear_shbf_thy;
  double clear_ibf_sim, clear_ibf_thy;
  double acc_shbf, acc_ibf;
  double mqps_shbf, mqps_ibf;
};

Row RunPoint(const AssociationWorkload& w, size_t n1, size_t n2, size_t n3,
             uint32_t k, size_t timed_queries) {
  ShbfA shbf(ShbfAParams::Optimal(n1, n2, n3, k));
  shbf.Build(w.s1, w.s2);
  IndividualBloomFilters ibf(IndividualBloomFilters::OptimalParams(n1, n2, k));
  for (const auto& key : w.s1) ibf.AddToS1(key);
  for (const auto& key : w.s2) ibf.AddToS2(key);

  Row row{};
  row.k = k;
  size_t clear_shbf = 0;
  size_t clear_ibf = 0;
  QueryStats stats_shbf;
  QueryStats stats_ibf;
  for (const auto& q : w.queries) {
    clear_shbf += IsClearAnswer(shbf.QueryWithStats(q.key, &stats_shbf));
    clear_ibf += IndividualBloomFilters::OutcomeIsClear(
        ibf.QueryWithStats(q.key, &stats_ibf));
  }
  double nq = static_cast<double>(w.queries.size());
  row.clear_shbf_sim = clear_shbf / nq;
  row.clear_ibf_sim = clear_ibf / nq;
  row.clear_shbf_thy = theory::ShbfAClearAnswerProb(k);
  row.clear_ibf_thy = theory::IbfClearAnswerProb(k);
  row.acc_shbf = stats_shbf.AvgMemoryAccesses();
  row.acc_ibf = stats_ibf.AvgMemoryAccesses();

  // Speed: time raw Query() over the stream, repeated to timed_queries.
  size_t rounds = (timed_queries + w.queries.size() - 1) / w.queries.size();
  uint64_t sink = 0;
  WallTimer timer;
  for (size_t r = 0; r < rounds; ++r) {
    for (const auto& q : w.queries) {
      sink += static_cast<uint64_t>(shbf.Query(q.key));
    }
  }
  row.mqps_shbf = Mops(rounds * w.queries.size(), timer.ElapsedSeconds());
  timer.Reset();
  for (size_t r = 0; r < rounds; ++r) {
    for (const auto& q : w.queries) {
      sink += static_cast<uint64_t>(ibf.Query(q.key));
    }
  }
  row.mqps_ibf = Mops(rounds * w.queries.size(), timer.ElapsedSeconds());
  DoNotOptimize(sink);
  return row;
}

void Run(double scale) {
  const size_t n1 = static_cast<size_t>(1000000 * scale);
  const size_t n3 = n1 / 4;
  const size_t num_queries = std::max<size_t>(20000, n1 / 10);
  const size_t timed_queries = 400000;
  auto w = MakeAssociationWorkload(n1, n1, n3, num_queries, 1010);
  std::printf("|S1|=|S2|=%zu, |S1 ^ S2|=%zu, %zu labelled queries "
              "(uniform over the three parts)\n",
              n1, n3, num_queries);

  std::vector<Row> rows;
  for (uint32_t k = 4; k <= 18; k += 2) {
    rows.push_back(RunPoint(w, n1, n1, n3, k, timed_queries));
  }

  PrintBanner("Fig 10(a): probability of a clear answer vs k");
  TablePrinter a({"k", "ShBF_A sim", "ShBF_A theory", "iBF sim",
                  "iBF theory"});
  double err_shbf = 0;
  double err_ibf = 0;
  for (const Row& r : rows) {
    a.AddRow({std::to_string(r.k), TablePrinter::Num(r.clear_shbf_sim, 4),
              TablePrinter::Num(r.clear_shbf_thy, 4),
              TablePrinter::Num(r.clear_ibf_sim, 4),
              TablePrinter::Num(r.clear_ibf_thy, 4)});
    err_shbf += std::abs(r.clear_shbf_sim - r.clear_shbf_thy) / r.clear_shbf_thy;
    err_ibf += std::abs(r.clear_ibf_sim - r.clear_ibf_thy) / r.clear_ibf_thy;
  }
  a.Print();

  PrintBanner("Fig 10(b): memory accesses per query vs k");
  TablePrinter b({"k", "ShBF_A", "iBF", "ratio"});
  double acc_ratio = 0;
  for (const Row& r : rows) {
    b.AddRow({std::to_string(r.k), TablePrinter::Num(r.acc_shbf, 2),
              TablePrinter::Num(r.acc_ibf, 2),
              TablePrinter::Num(r.acc_shbf / r.acc_ibf, 3)});
    acc_ratio += r.acc_shbf / r.acc_ibf;
  }
  b.Print();

  PrintBanner("Fig 10(c): query speed (Mqps) vs k");
  TablePrinter c({"k", "ShBF_A", "iBF", "speedup"});
  double speedup = 0;
  for (const Row& r : rows) {
    c.AddRow({std::to_string(r.k), TablePrinter::Num(r.mqps_shbf, 2),
              TablePrinter::Num(r.mqps_ibf, 2),
              TablePrinter::Num(r.mqps_shbf / r.mqps_ibf, 2)});
    speedup += r.mqps_shbf / r.mqps_ibf;
  }
  c.Print();

  const Row* k8 = nullptr;
  for (const Row& r : rows) {
    if (r.k == 8) k8 = &r;
  }
  std::printf(
      "\npaper says : at k=8 P(clear) reaches 99%% (ShBF_A) vs 66%% (iBF); "
      "accesses ratio ~0.66; speed ~1.4x; avg rel.err vs theory 0.004%% / "
      "0.7%%\n"
      "we measured: at k=8 P(clear) %.1f%% vs %.1f%%; mean accesses ratio "
      "%.2f; mean speedup %.2fx; avg rel.err %.3f%% / %.3f%%\n",
      k8 ? k8->clear_shbf_sim * 100 : 0.0, k8 ? k8->clear_ibf_sim * 100 : 0.0,
      acc_ratio / rows.size(), speedup / rows.size(),
      err_shbf / rows.size() * 100, err_ibf / rows.size() * 100);
}

}  // namespace
}  // namespace shbf

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.25;
  shbf::PrintBanner("Reproduction of Fig 10 (Yang et al., VLDB 2016)");
  shbf::Run(scale);
  return 0;
}
