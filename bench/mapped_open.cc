// mapped_open — the number the storage layer exists for: time-to-first-
// query from a cold process. A heap restart reads the whole envelope and
// rebuilds the filter (O(size)); a mapped open validates one header page
// and serves straight off the mmap (O(1)), leaving the kernel to page bits
// in on demand. Measures both against the SAME ~12 MB filter, best-of-N,
// and verifies the two paths answer identically.
//
// usage: bench_mapped_open [--bits=N] [--keys=N] [--reps=N] [--smoke]
//
// CSV on stdout: path,bytes,reps,best_us,opens_per_sec
//
// --smoke is the CI gate: asserts the mapped open is at least 100x faster
// than the heap deserialize AND that answers match on a key sample, then
// prints "# smoke OK". Exits nonzero otherwise.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "api/filter_registry.h"
#include "bench_util/timer.h"
#include "core/file_io.h"
#include "engine/batch_query_engine.h"
#include "storage/mapped_filter.h"
#include "trace/trace_generator.h"

namespace shbf {
namespace {

struct Config {
  size_t num_bits = 100'000'000;  // 12.5 MB of filter payload
  size_t num_keys = 200'000;
  int reps = 9;
  bool smoke = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

int Run(const Config& config) {
  FilterSpec spec;
  spec.num_cells = config.num_bits;
  spec.num_hashes = 6;
  spec.expected_keys = config.num_keys;
  spec.seed = 0xb16f11e;

  std::fprintf(stderr, "# building shbf_m with %zu bits, %zu keys...\n",
               config.num_bits, config.num_keys);
  TraceGenerator gen(0x10ad);
  auto keys = gen.DistinctFlowKeys(config.num_keys + 10000);
  std::unique_ptr<MembershipFilter> original;
  Status s = FilterRegistry::Global().Create("shbf_m", spec, &original);
  if (!s.ok()) {
    std::fprintf(stderr, "create: %s\n", s.ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < config.num_keys; ++i) original->Add(keys[i]);

  const char* tmp = std::getenv("TMPDIR");
  const std::string dir = tmp != nullptr ? tmp : "/tmp";
  const std::string heap_path = dir + "/bench_mapped_open.shbf";
  const std::string image_path = dir + "/bench_mapped_open.shbi";

  const std::string blob = FilterRegistry::Serialize(*original);
  s = WriteStringToFile(heap_path, blob);
  if (!s.ok()) {
    std::fprintf(stderr, "write: %s\n", s.ToString().c_str());
    return 1;
  }
  s = FilterRegistry::Global().SaveMapped(*original, image_path, 1);
  if (!s.ok()) {
    std::fprintf(stderr, "save mapped: %s\n", s.ToString().c_str());
    return 1;
  }

  // Best-of-N cold opens of each path. "Cold" here means a fresh open +
  // deserialize/map each rep; the page cache is warm for both, which is
  // exactly the restart scenario (the image was just written or fetched).
  double heap_best = 1e18;
  for (int rep = 0; rep < config.reps; ++rep) {
    WallTimer timer;
    std::string bytes;
    std::unique_ptr<MembershipFilter> filter;
    if (!ReadFileToString(heap_path, &bytes).ok() ||
        !FilterRegistry::Global().Deserialize(bytes, &filter).ok()) {
      std::fprintf(stderr, "heap reopen failed\n");
      return 1;
    }
    DoNotOptimize(filter->num_elements());
    heap_best = std::min(heap_best, timer.ElapsedSeconds());
  }

  double mapped_best = 1e18;
  for (int rep = 0; rep < config.reps; ++rep) {
    WallTimer timer;
    std::unique_ptr<MembershipFilter> filter;
    if (!FilterRegistry::Global().OpenMapped(image_path, &filter).ok()) {
      std::fprintf(stderr, "mapped open failed\n");
      return 1;
    }
    DoNotOptimize(filter->num_elements());
    mapped_best = std::min(mapped_best, timer.ElapsedSeconds());
  }

  std::printf("path,bytes,reps,best_us,opens_per_sec\n");
  std::printf("heap,%zu,%d,%.1f,%.1f\n", blob.size(), config.reps,
              heap_best * 1e6, 1.0 / heap_best);
  std::printf("mapped,%zu,%d,%.1f,%.1f\n",
              static_cast<size_t>(original->memory_bytes()), config.reps,
              mapped_best * 1e6, 1.0 / mapped_best);
  const double speedup = heap_best / mapped_best;
  std::printf("# mapped open %.0fx faster than heap deserialize\n", speedup);

  if (config.smoke) {
    if (speedup < 100.0) {
      std::fprintf(stderr,
                   "# smoke FAIL: mapped open only %.1fx faster (need 100x)\n",
                   speedup);
      return 1;
    }
    // Answer parity over members and never-inserted probes, batched.
    std::unique_ptr<MembershipFilter> mapped;
    s = FilterRegistry::Global().OpenMapped(
        image_path, &mapped, storage::OpenOptions{.verify_payload = true});
    if (!s.ok()) {
      std::fprintf(stderr, "# smoke FAIL: %s\n", s.ToString().c_str());
      return 1;
    }
    BatchQueryEngine engine;
    std::vector<std::string> sample(keys.end() - 20000, keys.end());
    sample.insert(sample.end(), keys.begin(), keys.begin() + 20000);
    std::vector<uint8_t> want, got;
    engine.ContainsBatch(*original, sample, &want);
    engine.ContainsBatch(*mapped, sample, &got);
    if (want != got) {
      std::fprintf(stderr, "# smoke FAIL: mapped answers diverge\n");
      return 1;
    }
    std::printf("# smoke OK\n");
  }
  std::remove(heap_path.c_str());
  std::remove(image_path.c_str());
  return 0;
}

}  // namespace
}  // namespace shbf

int main(int argc, char** argv) {
  shbf::Config config;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (shbf::ParseFlag(argv[i], "bits", &value)) {
      config.num_bits = std::strtoull(value.c_str(), nullptr, 0);
    } else if (shbf::ParseFlag(argv[i], "keys", &value)) {
      config.num_keys = std::strtoull(value.c_str(), nullptr, 0);
    } else if (shbf::ParseFlag(argv[i], "reps", &value)) {
      config.reps = std::atoi(value.c_str());
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      config.smoke = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  return shbf::Run(config);
}
