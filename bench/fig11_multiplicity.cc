// Figure 11 — multiplicity queries: ShBF_X vs Spectral BF vs CM sketch.
// Setup (§6.4): c = 57, n = 100000 distinct elements with uniform
// multiplicities in [1, c]; every structure gets 1.5x the optimal memory
// (1.5·nk/ln2 bits); Spectral BF and CM use 6-bit counters.
//   (a) correctness rate vs k (8..16): theory (Eqs 27/28) + simulation
//   (b) memory accesses per query vs k (3..18)
//   (c) query speed (Mqps) vs k (3..18)
//
// Paper's findings: CR(ShBF_X) ≈ 1.6x Spectral and ≈ 1.79x CM, theory-sim
// relative error < 0.08%; accesses lower than the baselines for k > 7
// (early termination flattens the curve); speed higher for k > 11.
//
// Reporting policy: Eq (28) corresponds to the smallest-candidate policy
// (see DESIGN.md §4 item 5), which the CR experiment uses; the largest-candidate
// policy (the paper's stated no-FN rule) is printed alongside.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analysis/multiplicity_theory.h"
#include "baselines/cm_sketch.h"
#include "baselines/spectral_bloom_filter.h"
#include "bench_util/table.h"
#include "bench_util/timer.h"
#include "shbf/shbf_multiplicity.h"
#include "trace/workload.h"

namespace shbf {
namespace {

constexpr uint32_t kMaxCount = 57;
constexpr uint32_t kCounterBits = 6;

struct Structures {
  ShbfX shbf;
  SpectralBloomFilter spectral;
  CmSketch cm;
};

Structures BuildAll(const MultiplicityWorkload& w, size_t n, uint32_t k) {
  size_t memory_bits = static_cast<size_t>(1.5 * n * k / std::log(2.0));
  Structures s{
      ShbfX({.num_bits = memory_bits, .num_hashes = k, .max_count = kMaxCount}),
      SpectralBloomFilter({.num_counters = memory_bits / kCounterBits,
                           .num_hashes = k,
                           .counter_bits = kCounterBits}),
      CmSketch({.depth = k,
                .width = std::max<size_t>(1, memory_bits / kCounterBits / k),
                .counter_bits = kCounterBits})};
  for (size_t i = 0; i < w.keys.size(); ++i) {
    s.shbf.InsertWithCount(w.keys[i], w.counts[i]);
    for (uint32_t r = 0; r < w.counts[i]; ++r) {
      s.spectral.Insert(w.keys[i]);
      s.cm.Insert(w.keys[i]);
    }
  }
  return s;
}

void Fig11a(const MultiplicityWorkload& w, size_t n) {
  PrintBanner("Fig 11(a): correctness rate vs k  (c=57, n=" +
              std::to_string(n) + ", mem=1.5nk/ln2)");
  TablePrinter table({"k", "ShBF_X theory", "ShBF_X sim", "ShBF_X (largest)",
                      "Spectral BF", "CM sketch"});
  double ratio_spectral = 0;
  double ratio_cm = 0;
  double rel_err = 0;
  int points = 0;
  for (uint32_t k = 8; k <= 16; k += 2) {
    Structures s = BuildAll(w, n, k);
    size_t memory_bits = static_cast<size_t>(1.5 * n * k / std::log(2.0));
    size_t right_small = 0;
    size_t right_large = 0;
    size_t right_spectral = 0;
    size_t right_cm = 0;
    for (size_t i = 0; i < w.keys.size(); ++i) {
      right_small += (s.shbf.QueryCount(w.keys[i],
                                        MultiplicityReportPolicy::kSmallest) ==
                      w.counts[i]);
      right_large += (s.shbf.QueryCount(w.keys[i],
                                        MultiplicityReportPolicy::kLargest) ==
                      w.counts[i]);
      right_spectral += (s.spectral.QueryCount(w.keys[i]) == w.counts[i]);
      right_cm += (s.cm.QueryCount(w.keys[i]) == w.counts[i]);
    }
    double nq = static_cast<double>(w.keys.size());
    double cr_theory =
        theory::ExpectedCorrectnessRateUniform(memory_bits, n, k, kMaxCount);
    double cr_small = right_small / nq;
    double cr_spectral = right_spectral / nq;
    double cr_cm = right_cm / nq;
    table.AddRow({std::to_string(k), TablePrinter::Num(cr_theory, 4),
                  TablePrinter::Num(cr_small, 4),
                  TablePrinter::Num(right_large / nq, 4),
                  TablePrinter::Num(cr_spectral, 4),
                  TablePrinter::Num(cr_cm, 4)});
    if (cr_spectral > 0) ratio_spectral += cr_small / cr_spectral;
    if (cr_cm > 0) ratio_cm += cr_small / cr_cm;
    rel_err += std::abs(cr_small - cr_theory) / cr_theory;
    ++points;
  }
  table.Print();
  std::printf(
      "paper says : CR(ShBF_X) ~1.6x Spectral, ~1.79x CM; theory-sim rel.err "
      "< 0.08%%\nwe measured: mean CR ratio %.2fx vs Spectral, %.2fx vs CM; "
      "rel.err %.3f%%\n",
      ratio_spectral / points, ratio_cm / points, rel_err / points * 100);
}

void Fig11bc(const MultiplicityWorkload& w, size_t n, size_t timed_queries) {
  PrintBanner("Fig 11(b): memory accesses per query vs k");
  TablePrinter access_table({"k", "ShBF_X", "Spectral BF", "CM sketch"});
  PrintBanner("(building; Fig 11(c) speed table follows)");
  TablePrinter speed_table({"k", "ShBF_X", "Spectral BF", "CM sketch",
                            "ShBF/Spectral"});
  size_t crossover_access = 0;
  size_t crossover_speed = 0;
  for (uint32_t k = 3; k <= 18; ++k) {
    Structures s = BuildAll(w, n, k);
    QueryStats shbf_stats;
    QueryStats spectral_stats;
    QueryStats cm_stats;
    for (size_t i = 0; i < w.keys.size(); ++i) {
      s.shbf.QueryCountWithStats(w.keys[i], MultiplicityReportPolicy::kLargest,
                                 &shbf_stats);
      s.spectral.QueryCountWithStats(w.keys[i], &spectral_stats);
      s.cm.QueryCountWithStats(w.keys[i], &cm_stats);
    }
    access_table.AddRow({std::to_string(k),
                         TablePrinter::Num(shbf_stats.AvgMemoryAccesses(), 2),
                         TablePrinter::Num(spectral_stats.AvgMemoryAccesses(), 2),
                         TablePrinter::Num(cm_stats.AvgMemoryAccesses(), 2)});
    // "Almost equal" below the crossover (paper): require a clear gap.
    if (crossover_access == 0 &&
        shbf_stats.AvgMemoryAccesses() <
            spectral_stats.AvgMemoryAccesses() - 0.5) {
      crossover_access = k;
    }

    size_t rounds = (timed_queries + w.keys.size() - 1) / w.keys.size();
    uint64_t sink = 0;
    WallTimer timer;
    for (size_t r = 0; r < rounds; ++r) {
      for (const auto& key : w.keys) {
        sink += s.shbf.QueryCount(key, MultiplicityReportPolicy::kLargest);
      }
    }
    double mqps_shbf = Mops(rounds * w.keys.size(), timer.ElapsedSeconds());
    timer.Reset();
    for (size_t r = 0; r < rounds; ++r) {
      for (const auto& key : w.keys) sink += s.spectral.QueryCount(key);
    }
    double mqps_spectral = Mops(rounds * w.keys.size(), timer.ElapsedSeconds());
    timer.Reset();
    for (size_t r = 0; r < rounds; ++r) {
      for (const auto& key : w.keys) sink += s.cm.QueryCount(key);
    }
    double mqps_cm = Mops(rounds * w.keys.size(), timer.ElapsedSeconds());
    DoNotOptimize(sink);
    speed_table.AddRow({std::to_string(k), TablePrinter::Num(mqps_shbf, 2),
                        TablePrinter::Num(mqps_spectral, 2),
                        TablePrinter::Num(mqps_cm, 2),
                        TablePrinter::Num(mqps_shbf / mqps_spectral, 2)});
    if (crossover_speed == 0 && mqps_shbf > mqps_spectral) {
      crossover_speed = k;
    }
  }
  access_table.Print();
  speed_table.Print();
  std::printf(
      "paper says : accesses lower than Spectral/CM for k > 7 (equal below); "
      "speed higher for k > 11 (>3 Mqps)\n"
      "we measured: access crossover at k = %zu; speed crossover at k = %zu\n",
      crossover_access, crossover_speed);
}

}  // namespace
}  // namespace shbf

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  size_t n = static_cast<size_t>(100000 * scale);
  size_t timed_queries = static_cast<size_t>(200000 * scale);
  shbf::PrintBanner("Reproduction of Fig 11 (Yang et al., VLDB 2016)");
  std::printf("n=%zu distinct elements (scale %.2f; paper used 100000)\n", n,
              scale);
  auto w = shbf::MakeMultiplicityWorkload(n, 57, 0, 1111);
  shbf::Fig11a(w, n);
  shbf::Fig11bc(w, n, timed_queries);
  return 0;
}
