// Figure 9 — query processing speed (Mqps): ShBF_M vs BF vs 1MemBF, on a
// 2n query stream (half members), repeated until >= kMinQueries wall-clock
// samples per point.
//   (a) m = 22008, k = 8, n = 1000..2000
//   (b) m = 33024, n = 1000, k = 4..16
//   (c) m = 32000..44000, k = 8, n = 4000
//
// Paper's finding (§6.2.3, i7-3520M): ShBF_M ≈ 1.8x BF and ≈ 1.4x 1MemBF.
// Absolute Mqps depend on the host; the ratios are the reproduced signal.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baselines/bloom_filter.h"
#include "baselines/one_mem_bf.h"
#include "bench_util/table.h"
#include "bench_util/timer.h"
#include "shbf/shbf_membership.h"
#include "trace/workload.h"

namespace shbf {
namespace {

size_t g_min_queries = 2000000;

template <typename Filter>
double MeasureMqps(const Filter& filter, const std::vector<std::string>& keys) {
  size_t rounds = (g_min_queries + keys.size() - 1) / keys.size();
  uint64_t hits = 0;
  WallTimer timer;
  for (size_t r = 0; r < rounds; ++r) {
    for (const auto& key : keys) hits += filter.Contains(key);
  }
  double seconds = timer.ElapsedSeconds();
  DoNotOptimize(hits);
  return Mops(rounds * keys.size(), seconds);
}

struct Point {
  double bf;
  double one_mem;
  double shbf;
};

Point RunPoint(size_t m, size_t n, uint32_t k, uint64_t seed) {
  auto w = MakeMembershipWorkload(n, n, seed);
  std::vector<std::string> queries = w.members;
  queries.insert(queries.end(), w.non_members.begin(), w.non_members.end());

  ShbfM shbf({.num_bits = m, .num_hashes = k});
  BloomFilter bloom({.num_bits = m, .num_hashes = k});
  OneMemBloomFilter one_mem({.num_bits = m, .num_hashes = k});
  for (const auto& key : w.members) {
    shbf.Add(key);
    bloom.Add(key);
    one_mem.Add(key);
  }
  return {MeasureMqps(bloom, queries), MeasureMqps(one_mem, queries),
          MeasureMqps(shbf, queries)};
}

void AddRow(TablePrinter& table, const std::string& x, const Point& p) {
  table.AddRow({x, TablePrinter::Num(p.bf, 2), TablePrinter::Num(p.one_mem, 2),
                TablePrinter::Num(p.shbf, 2),
                TablePrinter::Num(p.shbf / p.bf, 2),
                TablePrinter::Num(p.shbf / p.one_mem, 2)});
}

void Run() {
  double vs_bf_sum = 0;
  double vs_one_mem_sum = 0;
  int points = 0;
  auto note = [&](const Point& p) {
    vs_bf_sum += p.shbf / p.bf;
    vs_one_mem_sum += p.shbf / p.one_mem;
    ++points;
  };

  PrintBanner("Fig 9(a): Mqps vs n  (m=22008, k=8)");
  TablePrinter a({"n", "BF", "1MemBF", "ShBF_M", "ShBF/BF", "ShBF/1Mem"});
  for (size_t n = 1000; n <= 2000; n += 200) {
    Point p = RunPoint(22008, n, 8, 900 + n);
    AddRow(a, std::to_string(n), p);
    note(p);
  }
  a.Print();

  PrintBanner("Fig 9(b): Mqps vs k  (m=33024, n=1000)");
  TablePrinter b({"k", "BF", "1MemBF", "ShBF_M", "ShBF/BF", "ShBF/1Mem"});
  for (uint32_t k = 4; k <= 16; k += 2) {
    Point p = RunPoint(33024, 1000, k, 910 + k);
    AddRow(b, std::to_string(k), p);
    note(p);
  }
  b.Print();

  PrintBanner("Fig 9(c): Mqps vs m  (k=8, n=4000)");
  TablePrinter c({"m", "BF", "1MemBF", "ShBF_M", "ShBF/BF", "ShBF/1Mem"});
  for (size_t m = 32000; m <= 44000; m += 2000) {
    Point p = RunPoint(m, 4000, 8, 920 + m);
    AddRow(c, std::to_string(m), p);
    note(p);
  }
  c.Print();

  std::printf(
      "\npaper says : ShBF_M is ~1.8x faster than BF and ~1.4x faster than "
      "1MemBF (i7-3520M)\n"
      "we measured: mean speedup vs BF = %.2fx, vs 1MemBF = %.2fx "
      "(this host)\n",
      vs_bf_sum / points, vs_one_mem_sum / points);
}

}  // namespace
}  // namespace shbf

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  shbf::g_min_queries = static_cast<size_t>(2000000 * scale);
  shbf::PrintBanner("Reproduction of Fig 9 (Yang et al., VLDB 2016)");
  std::printf("timed queries per point per filter: >=%zu (scale %.2f)\n",
              shbf::g_min_queries, scale);
  shbf::Run();
  return 0;
}
