// Ablation A2 — the t-shift generalization (§3.6): how far can the "replace
// hashes with shifts" idea be pushed? For t ∈ {1, 2, 4, 7} at k = 8 (k = 10
// for t = 4), measures FPR (sim vs Eq 11/12), per-query cost, and speed.
//
// Expected shape: hash computations fall from k/2+1 towards log-like counts,
// accesses fall as k/(t+1), FPR drifts up — and Eq (11)'s independence
// approximation degrades visibly by t = 7 (it never gets simulated in the
// paper; here it does).

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "analysis/generalized_theory.h"
#include "bench_util/table.h"
#include "bench_util/timer.h"
#include "shbf/generalized_shbf.h"
#include "trace/workload.h"

namespace shbf {
namespace {

void Run(size_t num_negatives, size_t timed_queries) {
  const size_t m = 100000;
  const size_t n = 10000;
  auto w = MakeMembershipWorkload(n, num_negatives, 3200);

  PrintBanner("Ablation A2: generalized ShBF_M vs t  (m=100000, n=10000)");
  TablePrinter table({"t", "k", "hashes/query", "accesses/query",
                      "FPR theory", "FPR sim", "thy/sim", "Mqps"});
  for (uint32_t t : {1u, 2u, 4u, 7u}) {
    // k must divide by t+1; stay at ~8 bits/element.
    uint32_t k = ((8 + t) / (t + 1)) * (t + 1);
    GeneralizedShbfM filter({.num_bits = m, .num_hashes = k, .num_shifts = t});
    for (const auto& key : w.members) filter.Add(key);

    size_t fp = 0;
    QueryStats stats;
    for (const auto& key : w.non_members) fp += filter.Contains(key);
    for (const auto& key : w.members) filter.ContainsWithStats(key, &stats);
    double sim = static_cast<double>(fp) / w.non_members.size();
    double thy = theory::GeneralizedShbfFpr(m, n, k, 57, t);

    size_t rounds = (timed_queries + w.members.size() - 1) / w.members.size();
    uint64_t sink = 0;
    WallTimer timer;
    for (size_t r = 0; r < rounds; ++r) {
      for (const auto& key : w.members) sink += filter.Contains(key);
    }
    double mqps = Mops(rounds * w.members.size(), timer.ElapsedSeconds());
    DoNotOptimize(sink);

    table.AddRow({std::to_string(t), std::to_string(k),
                  TablePrinter::Num(stats.AvgHashComputations(), 2),
                  TablePrinter::Num(stats.AvgMemoryAccesses(), 2),
                  TablePrinter::Sci(thy), TablePrinter::Sci(sim),
                  TablePrinter::Num(thy / sim, 3), TablePrinter::Num(mqps, 2)});
  }
  table.Print();
  std::printf(
      "finding    : costs fall as k/(t+1); the FPR penalty grows with t and "
      "Eq (11) underestimates it once many correlated bits share a window "
      "(thy/sim < 1 at t = 7) -- the paper's t = 1 default is the sweet "
      "spot\n");
}

}  // namespace
}  // namespace shbf

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  shbf::PrintBanner("Ablation: t-shift generalization (paper section 3.6)");
  shbf::Run(static_cast<size_t>(300000 * scale),
            static_cast<size_t>(1000000 * scale));
  return 0;
}
