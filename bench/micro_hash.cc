// Micro-benchmarks: raw hash-function throughput on the key lengths the
// experiments use (13-byte flow IDs) plus short and long keys. The hash cost
// is the denominator of every "ShBF halves the hash computations" claim.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/rng.h"
#include "hash/hash_family.h"

namespace shbf {
namespace {

std::vector<std::string> MakeKeys(size_t count, size_t len) {
  Rng rng(0xbeefcafe + len);
  std::vector<std::string> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) keys.push_back(rng.NextBytes(len));
  return keys;
}

void BM_Hash(benchmark::State& state) {
  auto alg = static_cast<HashAlgorithm>(state.range(0));
  size_t len = static_cast<size_t>(state.range(1));
  HashFamily family(alg, 1, 42);
  auto keys = MakeKeys(1024, len);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(family.Hash(0, keys[i & 1023]));
    ++i;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * len);
  state.SetLabel(HashAlgorithmName(alg));
}

BENCHMARK(BM_Hash)
    ->ArgsProduct({{static_cast<long>(HashAlgorithm::kMurmur3),
                    static_cast<long>(HashAlgorithm::kBobLookup3),
                    static_cast<long>(HashAlgorithm::kBobLookup2),
                    static_cast<long>(HashAlgorithm::kFnv1a)},
                   {8, 13, 64}});

void BM_HashFamilyKofN(benchmark::State& state) {
  // The per-query hashing bill: k evaluations on one 13-byte key.
  uint32_t k = static_cast<uint32_t>(state.range(0));
  HashFamily family(HashAlgorithm::kMurmur3, k, 42);
  auto keys = MakeKeys(1024, 13);
  size_t i = 0;
  for (auto _ : state) {
    uint64_t acc = 0;
    for (uint32_t f = 0; f < k; ++f) acc ^= family.Hash(f, keys[i & 1023]);
    benchmark::DoNotOptimize(acc);
    ++i;
  }
}

BENCHMARK(BM_HashFamilyKofN)->Arg(2)->Arg(5)->Arg(8)->Arg(16);

}  // namespace
}  // namespace shbf
