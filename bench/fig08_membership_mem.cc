// Figure 8 — memory accesses per membership query, ShBF_M vs BF, under the
// paper's cost model (one access per probed bit for BF, one per probed PAIR
// for ShBF_M, early exit on failure). The query stream is 2n elements, half
// members (§6.2.2).
//   (a) m = 22008, k = 8, n = 1000..1500
//   (b) m = 33024, n = 1000, k = 4..16
//   (c) k = 6, n = 4000, m = 32000..44000
//
// Paper's finding: ShBF_M answers with about HALF the memory accesses of BF.

#include <cstdio>

#include "baselines/bloom_filter.h"
#include "bench_util/table.h"
#include "shbf/shbf_membership.h"
#include "trace/workload.h"

namespace shbf {
namespace {

struct Point {
  double shbf;
  double bloom;
};

Point RunPoint(size_t m, size_t n, uint32_t k, uint64_t seed) {
  auto w = MakeMembershipWorkload(n, n, seed);  // 2n queries, half members
  ShbfM shbf({.num_bits = m, .num_hashes = k});
  BloomFilter bloom({.num_bits = m, .num_hashes = k});
  for (const auto& key : w.members) {
    shbf.Add(key);
    bloom.Add(key);
  }
  QueryStats shbf_stats;
  QueryStats bloom_stats;
  for (const auto& key : w.members) {
    shbf.ContainsWithStats(key, &shbf_stats);
    bloom.ContainsWithStats(key, &bloom_stats);
  }
  for (const auto& key : w.non_members) {
    shbf.ContainsWithStats(key, &shbf_stats);
    bloom.ContainsWithStats(key, &bloom_stats);
  }
  return {shbf_stats.AvgMemoryAccesses(), bloom_stats.AvgMemoryAccesses()};
}

void AddRow(TablePrinter& table, const std::string& x, const Point& p) {
  table.AddRow({x, TablePrinter::Num(p.shbf, 3), TablePrinter::Num(p.bloom, 3),
                TablePrinter::Num(p.shbf / p.bloom, 3)});
}

void Run() {
  double ratio_sum = 0;
  int points = 0;

  PrintBanner("Fig 8(a): #accesses vs n  (m=22008, k=8)");
  TablePrinter a({"n", "ShBF_M", "BF", "ratio"});
  for (size_t n = 1000; n <= 1500; n += 100) {
    Point p = RunPoint(22008, n, 8, 800 + n);
    AddRow(a, std::to_string(n), p);
    ratio_sum += p.shbf / p.bloom;
    ++points;
  }
  a.Print();

  PrintBanner("Fig 8(b): #accesses vs k  (m=33024, n=1000)");
  TablePrinter b({"k", "ShBF_M", "BF", "ratio"});
  for (uint32_t k = 4; k <= 16; k += 2) {
    Point p = RunPoint(33024, 1000, k, 810 + k);
    AddRow(b, std::to_string(k), p);
    ratio_sum += p.shbf / p.bloom;
    ++points;
  }
  b.Print();

  PrintBanner("Fig 8(c): #accesses vs m  (k=6, n=4000)");
  TablePrinter c({"m", "ShBF_M", "BF", "ratio"});
  for (size_t m = 32000; m <= 44000; m += 2000) {
    Point p = RunPoint(m, 4000, 6, 820 + m);
    AddRow(c, std::to_string(m), p);
    ratio_sum += p.shbf / p.bloom;
    ++points;
  }
  c.Print();

  std::printf(
      "\npaper says : ShBF_M uses about half the memory accesses of BF\n"
      "we measured: mean access ratio ShBF_M/BF = %.3f over all %d points\n",
      ratio_sum / points, points);
}

}  // namespace
}  // namespace shbf

int main() {
  shbf::PrintBanner("Reproduction of Fig 8 (Yang et al., VLDB 2016)");
  shbf::Run();
  return 0;
}
