// Figure 3 — ShBF_M FPR as a function of the offset span w̄ (theory; the
// paper's plot is analytical). Fig 3(a): m = 100000, n = 10000,
// k ∈ {4, 8, 12}. Fig 3(b): k = 10, n = 10000, m ∈ {100k, 110k, 120k}.
// The horizontal "BF" values are the w̄ → ∞ limits (Eq 8).
//
// Paper's finding: for w̄ >= 20 the ShBF_M curve is visually indistinguishable
// from the BF line, so w̄ = 57 (64-bit) and w̄ = 25 (32-bit) are safe choices.

#include <cstdio>

#include "analysis/membership_theory.h"
#include "bench_util/table.h"

namespace shbf {
namespace {

void Fig3a() {
  PrintBanner("Fig 3(a): FPR vs w-bar  (m=100000, n=10000, k in {4,8,12})");
  const size_t m = 100000;
  const size_t n = 10000;
  TablePrinter table({"w_bar", "ShBF_M k=4", "ShBF_M k=8", "ShBF_M k=12"});
  for (uint32_t w = 2; w <= 57; w += (w < 24 ? 2 : 3)) {
    table.AddRow({std::to_string(w),
                  TablePrinter::Sci(theory::ShbfMFpr(m, n, 4, w)),
                  TablePrinter::Sci(theory::ShbfMFpr(m, n, 8, w)),
                  TablePrinter::Sci(theory::ShbfMFpr(m, n, 12, w))});
  }
  table.AddRow({"BF(inf)", TablePrinter::Sci(theory::BloomFpr(m, n, 4)),
                TablePrinter::Sci(theory::BloomFpr(m, n, 8)),
                TablePrinter::Sci(theory::BloomFpr(m, n, 12))});
  table.Print();
}

void Fig3b() {
  PrintBanner("Fig 3(b): FPR vs w-bar  (k=10, n=10000, m in {100k,110k,120k})");
  const size_t n = 10000;
  TablePrinter table({"w_bar", "m=100000", "m=110000", "m=120000"});
  for (uint32_t w = 2; w <= 57; w += (w < 24 ? 2 : 3)) {
    table.AddRow({std::to_string(w),
                  TablePrinter::Sci(theory::ShbfMFpr(100000, n, 10, w)),
                  TablePrinter::Sci(theory::ShbfMFpr(110000, n, 10, w)),
                  TablePrinter::Sci(theory::ShbfMFpr(120000, n, 10, w))});
  }
  table.AddRow({"BF(inf)", TablePrinter::Sci(theory::BloomFpr(100000, n, 10)),
                TablePrinter::Sci(theory::BloomFpr(110000, n, 10)),
                TablePrinter::Sci(theory::BloomFpr(120000, n, 10))});
  table.Print();
}

void Summary() {
  // Quantify the paper's "w̄ > 20 suffices" claim.
  const size_t m = 100000;
  const size_t n = 10000;
  double at20 = theory::ShbfMFpr(m, n, 8, 20);
  double at57 = theory::ShbfMFpr(m, n, 8, 57);
  double bf = theory::BloomFpr(m, n, 8);
  std::printf(
      "\npaper says : FPR(ShBF_M) ~= FPR(BF) once w_bar > 20; use w_bar=57 "
      "on 64-bit\nwe measured: excess over BF at k=8 is %+.1f%% (w_bar=20) "
      "and %+.1f%% (w_bar=57)\n",
      (at20 / bf - 1) * 100, (at57 / bf - 1) * 100);
}

}  // namespace
}  // namespace shbf

int main() {
  shbf::PrintBanner(
      "Reproduction of Fig 3 (Yang et al., VLDB 2016) -- analytical");
  shbf::Fig3a();
  shbf::Fig3b();
  shbf::Summary();
  return 0;
}
