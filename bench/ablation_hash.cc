// Ablation A3 — hash strategy. Two questions the paper touches but does not
// sweep:
//  1. Does ShBF_M's advantage survive cheaper/heavier hash functions? (§6.2.3
//     argues hash cost dominates when the filter is cache-resident.)
//  2. How does ShBF_M's "fewer independent hashes" approach compare with
//     Kirsch–Mitzenmacher double hashing (§2.1), which also cuts hash cost —
//     at FPR instead of architecture cost?

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analysis/membership_theory.h"
#include "baselines/bloom_filter.h"
#include "baselines/km_bloom_filter.h"
#include "bench_util/table.h"
#include "bench_util/timer.h"
#include "shbf/shbf_membership.h"
#include "trace/workload.h"

namespace shbf {
namespace {

template <typename Filter>
double MeasureMqps(const Filter& filter, const std::vector<std::string>& keys,
                   size_t min_queries) {
  size_t rounds = (min_queries + keys.size() - 1) / keys.size();
  uint64_t sink = 0;
  WallTimer timer;
  for (size_t r = 0; r < rounds; ++r) {
    for (const auto& key : keys) sink += filter.Contains(key);
  }
  double s = timer.ElapsedSeconds();
  DoNotOptimize(sink);
  return Mops(rounds * keys.size(), s);
}

void HashAlgorithmSweep(size_t timed_queries) {
  const size_t m = 100000;
  const size_t n = 10000;
  const uint32_t k = 8;
  auto w = MakeMembershipWorkload(n, 100000, 3300);
  std::vector<std::string> queries = w.members;
  queries.insert(queries.end(), w.non_members.begin(),
                 w.non_members.begin() + n);

  PrintBanner("Ablation A3.1: ShBF_M speedup over BF per hash algorithm");
  TablePrinter table({"hash", "BF Mqps", "ShBF_M Mqps", "speedup",
                      "BF FPR", "ShBF_M FPR"});
  for (HashAlgorithm alg :
       {HashAlgorithm::kMurmur3, HashAlgorithm::kBobLookup3,
        HashAlgorithm::kBobLookup2, HashAlgorithm::kFnv1a}) {
    BloomFilter bloom({.num_bits = m, .num_hashes = k, .hash_algorithm = alg});
    ShbfM shbf({.num_bits = m, .num_hashes = k, .hash_algorithm = alg});
    for (const auto& key : w.members) {
      bloom.Add(key);
      shbf.Add(key);
    }
    size_t fp_bloom = 0;
    size_t fp_shbf = 0;
    for (const auto& key : w.non_members) {
      fp_bloom += bloom.Contains(key);
      fp_shbf += shbf.Contains(key);
    }
    double mqps_bloom = MeasureMqps(bloom, queries, timed_queries);
    double mqps_shbf = MeasureMqps(shbf, queries, timed_queries);
    double denom = static_cast<double>(w.non_members.size());
    table.AddRow({HashAlgorithmName(alg), TablePrinter::Num(mqps_bloom, 2),
                  TablePrinter::Num(mqps_shbf, 2),
                  TablePrinter::Num(mqps_shbf / mqps_bloom, 2),
                  TablePrinter::Sci(fp_bloom / denom),
                  TablePrinter::Sci(fp_shbf / denom)});
  }
  table.Print();
  std::printf(
      "finding    : the ~2x advantage holds across hash functions; it is "
      "largest for expensive hashes (the k/2+1 vs k computation gap) and "
      "smaller for cheap ones, where the access savings dominate\n");
}

void KmComparison(size_t timed_queries) {
  const size_t m = 100000;
  const size_t n = 10000;
  const uint32_t k = 8;
  auto w = MakeMembershipWorkload(n, 200000, 3301);
  std::vector<std::string> queries = w.members;
  queries.insert(queries.end(), w.non_members.begin(),
                 w.non_members.begin() + n);

  BloomFilter bloom({.num_bits = m, .num_hashes = k});
  KmBloomFilter km({.num_bits = m, .num_hashes = k});
  ShbfM shbf({.num_bits = m, .num_hashes = k});
  for (const auto& key : w.members) {
    bloom.Add(key);
    km.Add(key);
    shbf.Add(key);
  }
  size_t fp_bloom = 0;
  size_t fp_km = 0;
  size_t fp_shbf = 0;
  for (const auto& key : w.non_members) {
    fp_bloom += bloom.Contains(key);
    fp_km += km.Contains(key);
    fp_shbf += shbf.Contains(key);
  }
  double denom = static_cast<double>(w.non_members.size());

  PrintBanner("Ablation A3.2: hash-reduction strategies at m=100000, n=10000, k=8");
  TablePrinter table({"scheme", "hashes", "accesses", "FPR", "Mqps"});
  table.AddRow({"BF (k independent)", std::to_string(k), std::to_string(k),
                TablePrinter::Sci(fp_bloom / denom),
                TablePrinter::Num(MeasureMqps(bloom, queries, timed_queries), 2)});
  table.AddRow({"KM double hashing", "2", std::to_string(k),
                TablePrinter::Sci(fp_km / denom),
                TablePrinter::Num(MeasureMqps(km, queries, timed_queries), 2)});
  table.AddRow({"ShBF_M", std::to_string(k / 2 + 1), std::to_string(k / 2),
                TablePrinter::Sci(fp_shbf / denom),
                TablePrinter::Num(MeasureMqps(shbf, queries, timed_queries), 2)});
  table.Print();
  std::printf(
      "finding    : KM cuts hashing harder but keeps k accesses; ShBF_M cuts "
      "both and keeps FPR at the BF level — the two optimizations are "
      "complementary, not competing\n");
}

}  // namespace
}  // namespace shbf

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  size_t timed = static_cast<size_t>(1000000 * scale);
  shbf::PrintBanner("Ablation: hash strategies");
  shbf::HashAlgorithmSweep(timed);
  shbf::KmComparison(timed);
  return 0;
}
