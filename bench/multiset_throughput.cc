// multiset_throughput — "which of my N sets contain key k" three ways: the
// Bloofi-style tree index vs the engine-batched linear scan vs the naive
// per-filter virtual loop; the acceptance bench for the multiset subsystem
// (src/multiset/, docs/multiset.md).
//
// Modes over one catalog:
//   per_filter  for every key, Contains() on every catalog filter — what a
//               caller without the subsystem writes
//   linear      MultiSetIndex with force_scan: every set probed, but each
//               through one BatchQueryEngine pass (prefetching fast path)
//   tree        the real MultiSetIndex: summary-tree descent, scan
//               fallback for the non-mergeable sets
//
// The default catalog mixes backends (every `mixed-every`-th set is a
// cuckoo filter — non-mergeable, scan fallback) and sizes the mergeable
// sets sparse (64 bits/key), because a summary is the bitwise union of its
// children: without that headroom the tree adaptively degrades to the scan
// (the tradeoff docs/multiset.md quantifies).
//
// usage: bench_multiset_throughput [--sets=N] [--keys-per-set=N]
//          [--queries=N] [--member-frac=F] [--bits-per-key=B] [--k=K]
//          [--branching=B] [--batch=N] [--mixed-every=M] [--chunk=N]
//          [--json=<path>] [--smoke]
//
// --smoke shrinks the workload for CI and turns the run into a gate:
//   * >= 64 sets over mixed mergeable/non-mergeable backends,
//   * tree WhichSets answers bit-identical to the linear scan AND to the
//     per-filter brute-force loop for every key,
//   * the same keys through an in-process ShbfServer's WHICH_SETS opcode
//     (catalog shipped through its serde envelope) answer bit-identical to
//     the local tree,
//   * the tree beats the linear scan on the (absent-heavy) workload.
//
// CSV on stdout: mode,sets,queries,seconds,kqps,probes,speedup_vs_linear.
// --json=<path> additionally writes rows of
// {workload, mode, keys_per_s, p50_us, p99_us} per `chunk` keys.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "api/filter_registry.h"
#include "api/set_catalog.h"
#include "bench_util/json_report.h"
#include "bench_util/timer.h"
#include "multiset/multi_set_index.h"
#include "server/client.h"
#include "server/server.h"

namespace shbf {
namespace {

struct Config {
  size_t sets = 128;
  size_t keys_per_set = 2000;
  size_t queries = 200000;
  /// Fraction of queries hitting a member key; the rest are absent (the
  /// needle-in-haystack shape which-sets deployments see).
  double member_frac = 0.1;
  double bits_per_key = 64.0;
  uint32_t num_hashes = 4;
  size_t branching = 8;
  size_t batch_size = 32;
  /// Every M-th set is a cuckoo filter (non-mergeable, scan fallback);
  /// 0 = homogeneous.
  size_t mixed_every = 8;
  /// Keys per timed WhichSetsBatch call (the latency-sample unit).
  size_t chunk = 1024;
  std::string json_path;
  bool smoke = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

std::string SetKey(size_t set, size_t key) {
  return "set-" + std::to_string(set) + "-key-" + std::to_string(key);
}

Status BuildCatalog(const Config& config, SetCatalog* catalog) {
  for (size_t i = 0; i < config.sets; ++i) {
    const bool scan_backend =
        config.mixed_every != 0 && (i + 1) % config.mixed_every == 0;
    FilterSpec spec = FilterSpec::ForKeys(config.keys_per_set,
                                          config.bits_per_key,
                                          config.num_hashes);
    spec.max_count = 8;
    std::unique_ptr<MembershipFilter> filter;
    Status s = FilterRegistry::Global().Create(
        scan_backend ? "cuckoo" : "shbf_m", spec, &filter);
    if (!s.ok()) return s;
    for (size_t k = 0; k < config.keys_per_set; ++k) filter->Add(SetKey(i, k));
    s = catalog->AddSet("set-" + std::to_string(i), std::move(filter));
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

std::vector<std::string> MakeQueries(const Config& config) {
  std::vector<std::string> queries(config.queries);
  std::mt19937_64 rng(0x5e7f1e1d);
  for (size_t q = 0; q < config.queries; ++q) {
    if (std::uniform_real_distribution<double>(0, 1)(rng) <
        config.member_frac) {
      queries[q] = SetKey(rng() % config.sets, rng() % config.keys_per_set);
    } else {
      queries[q] = "absent-" + std::to_string(rng());
    }
  }
  return queries;
}

struct RunResult {
  double seconds = 0;
  uint64_t probes = 0;
  LatencyRecorder latencies;
  std::vector<SetIdBitmap> answers;
};

/// Times `index` over `queries` in chunks, collecting per-chunk latencies
/// and the full answer vector (for the smoke equivalence gates).
RunResult RunIndex(const MultiSetIndex& index,
                   const std::vector<std::string>& queries, size_t chunk) {
  RunResult result;
  result.answers.reserve(queries.size());
  const uint64_t probes_before = index.stats().probes;
  std::vector<std::string> slice;
  std::vector<SetIdBitmap> slice_answers;
  WallTimer total;
  for (size_t begin = 0; begin < queries.size(); begin += chunk) {
    const size_t end = std::min(begin + chunk, queries.size());
    slice.assign(queries.begin() + begin, queries.begin() + end);
    WallTimer timer;
    index.WhichSetsBatch(slice, &slice_answers);
    result.latencies.Record(timer.ElapsedSeconds());
    for (auto& bitmap : slice_answers) {
      result.answers.push_back(std::move(bitmap));
    }
  }
  result.seconds = total.ElapsedSeconds();
  result.probes = index.stats().probes - probes_before;
  return result;
}

/// The naive caller: one virtual Contains per (key, filter) pair.
RunResult RunPerFilter(const SetCatalog& catalog,
                       const std::vector<std::string>& queries,
                       size_t chunk) {
  RunResult result;
  result.answers.assign(queries.size(), SetIdBitmap(catalog.id_bound()));
  const std::vector<const SetCatalog::SetEntry*> entries = catalog.Entries();
  WallTimer total;
  WallTimer timer;
  for (size_t q = 0; q < queries.size(); ++q) {
    for (const SetCatalog::SetEntry* entry : entries) {
      if (entry->filter->Contains(queries[q])) {
        result.answers[q].Set(entry->id);
      }
    }
    result.probes += entries.size();
    if ((q + 1) % chunk == 0 || q + 1 == queries.size()) {
      result.latencies.Record(timer.ElapsedSeconds());
      timer.Reset();
    }
  }
  result.seconds = total.ElapsedSeconds();
  return result;
}

void EmitRow(const Config& config, const char* mode, const RunResult& result,
             double linear_seconds, JsonReport* report) {
  const double kqps = result.seconds > 0
                          ? config.queries / result.seconds / 1e3
                          : 0.0;
  std::printf("%s,%zu,%zu,%.4f,%.1f,%llu,%.2f\n", mode, config.sets,
              config.queries, result.seconds, kqps,
              static_cast<unsigned long long>(result.probes),
              result.seconds > 0 ? linear_seconds / result.seconds : 0.0);
  report->AddRow()
      .Set("workload",
           "which-sets/" + std::to_string(config.sets) + "x" +
               std::to_string(config.keys_per_set))
      .Set("mode", mode)
      .Set("sets", static_cast<uint64_t>(config.sets))
      .Set("queries", static_cast<uint64_t>(config.queries))
      .Set("chunk_keys", static_cast<uint64_t>(config.chunk))
      .Set("keys_per_s",
           result.seconds > 0 ? config.queries / result.seconds : 0.0)
      .Set("p50_us", result.latencies.PercentileSeconds(50) * 1e6)
      .Set("p99_us", result.latencies.PercentileSeconds(99) * 1e6)
      .Set("filter_probes", result.probes);
}

/// Ships the catalog through its serde envelope into an in-process server
/// and replays `queries` through the WHICH_SETS opcode; every id list must
/// match the local tree's bitmap exactly.
bool VerifyServerWhichSets(const std::string& catalog_blob,
                           const Config& config,
                           const std::vector<std::string>& queries,
                           const std::vector<SetIdBitmap>& expected) {
  SetCatalog catalog;
  Status s = SetCatalog::Deserialize(catalog_blob, FilterRegistry::Global(),
                                     &catalog);
  if (!s.ok()) {
    std::fprintf(stderr, "SMOKE FAILED: catalog reload: %s\n",
                 s.ToString().c_str());
    return false;
  }
  ShbfServer server;
  MultiSetIndexOptions options;
  options.branching = config.branching;
  options.batch_size = config.batch_size;
  s = server.ServeCatalog(std::move(catalog), options);
  if (s.ok()) s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "SMOKE FAILED: server start: %s\n",
                 s.ToString().c_str());
    return false;
  }
  ShbfClient client;
  s = client.Connect("127.0.0.1", server.port());
  if (!s.ok()) {
    std::fprintf(stderr, "SMOKE FAILED: connect: %s\n", s.ToString().c_str());
    return false;
  }
  constexpr size_t kFrameKeys = 4096;
  size_t verified = 0;
  for (size_t begin = 0; begin < queries.size(); begin += kFrameKeys) {
    const size_t end = std::min(begin + kFrameKeys, queries.size());
    const std::vector<std::string> frame(queries.begin() + begin,
                                         queries.begin() + end);
    std::vector<std::vector<uint32_t>> which;
    s = client.WhichSets(frame, &which);
    if (!s.ok()) {
      std::fprintf(stderr, "SMOKE FAILED: WHICH_SETS: %s\n",
                   s.ToString().c_str());
      return false;
    }
    for (size_t i = 0; i < frame.size(); ++i) {
      if (which[i] != expected[begin + i].ToIds()) {
        std::fprintf(stderr,
                     "SMOKE FAILED: server WHICH_SETS diverges from the "
                     "local tree at key %zu\n",
                     begin + i);
        return false;
      }
      ++verified;
    }
  }
  server.Stop();
  std::fprintf(stderr, "# server WHICH_SETS bit-identical for %zu keys\n",
               verified);
  return true;
}

int Main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--smoke") == 0) {
      config.smoke = true;
    } else if (ParseFlag(argv[i], "sets", &value)) {
      config.sets = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "keys-per-set", &value)) {
      config.keys_per_set = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "queries", &value)) {
      config.queries = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "member-frac", &value)) {
      config.member_frac = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "bits-per-key", &value)) {
      config.bits_per_key = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "k", &value)) {
      config.num_hashes = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "branching", &value)) {
      config.branching = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "batch", &value)) {
      config.batch_size = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "mixed-every", &value)) {
      config.mixed_every = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "chunk", &value)) {
      config.chunk = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "json", &value)) {
      config.json_path = value;
    } else {
      std::fprintf(
          stderr,
          "usage: bench_multiset_throughput [--sets=N] [--keys-per-set=N] "
          "[--queries=N] [--member-frac=F] [--bits-per-key=B] [--k=K] "
          "[--branching=B] [--batch=N] [--mixed-every=M] [--chunk=N] "
          "[--json=<path>] [--smoke]\n");
      return 2;
    }
  }
  if (config.smoke) {
    // Small enough for sanitizer CI, large enough for the acceptance
    // floor: >= 64 mixed sets, tree wins on the absent-heavy stream.
    config.sets = 64;
    config.keys_per_set = 250;
    config.queries = 8000;
    config.chunk = 512;
  }
  if (config.sets == 0 || config.keys_per_set == 0 || config.queries == 0 ||
      config.chunk == 0) {
    std::fprintf(stderr, "error: --sets, --keys-per-set, --queries and "
                         "--chunk must be positive\n");
    return 2;
  }
  if (config.smoke && config.sets < 64) {
    std::fprintf(stderr, "SMOKE FAILED: the gate needs >= 64 sets\n");
    return 1;
  }

  SetCatalog catalog;
  Status s = BuildCatalog(config, &catalog);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  const std::vector<std::string> queries = MakeQueries(config);

  MultiSetIndexOptions tree_options;
  tree_options.branching = config.branching;
  tree_options.batch_size = config.batch_size;
  std::unique_ptr<MultiSetIndex> tree;
  s = MultiSetIndex::Build(&catalog, tree_options, &tree);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  MultiSetIndexOptions scan_options = tree_options;
  scan_options.force_scan = true;
  std::unique_ptr<MultiSetIndex> linear;
  s = MultiSetIndex::Build(&catalog, scan_options, &linear);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  const MultiSetIndex::Stats shape = tree->stats();
  std::fprintf(stderr,
               "# %zu sets (%zu tree leaves, %zu scan leaves), %zu summary "
               "node(s), %zu tree root(s), %zu level(s)\n",
               shape.sets, shape.tree_leaves, shape.scan_leaves,
               shape.summary_nodes, shape.trees, shape.levels);

  std::printf("mode,sets,queries,seconds,kqps,probes,speedup_vs_linear\n");
  JsonReport report("multiset_throughput");

  // Warm-up passes force lazy state out of the timed loops.
  {
    std::vector<SetIdBitmap> warm;
    std::vector<std::string> warm_keys = {queries.front()};
    tree->WhichSetsBatch(warm_keys, &warm);
    linear->WhichSetsBatch(warm_keys, &warm);
  }
  RunResult per_filter = RunPerFilter(catalog, queries, config.chunk);
  RunResult linear_result = RunIndex(*linear, queries, config.chunk);
  RunResult tree_result = RunIndex(*tree, queries, config.chunk);
  EmitRow(config, "per_filter", per_filter, linear_result.seconds, &report);
  EmitRow(config, "linear", linear_result, linear_result.seconds, &report);
  EmitRow(config, "tree", tree_result, linear_result.seconds, &report);

  s = report.WriteToFile(config.json_path);
  if (!s.ok()) {
    std::fprintf(stderr, "error: --json: %s\n", s.ToString().c_str());
    return 1;
  }

  if (!config.smoke) return 0;

  // ---- smoke gates -------------------------------------------------------
  bool ok = true;
  for (size_t q = 0; q < queries.size(); ++q) {
    if (tree_result.answers[q] != linear_result.answers[q] ||
        tree_result.answers[q] != per_filter.answers[q]) {
      std::fprintf(stderr,
                   "SMOKE FAILED: tree/linear/per_filter answers diverge "
                   "at key %zu\n",
                   q);
      ok = false;
      break;
    }
  }
  if (ok && shape.scan_leaves == 0) {
    std::fprintf(stderr, "SMOKE FAILED: the mixed workload must exercise "
                         "the scan fallback\n");
    ok = false;
  }
  if (ok &&
      !VerifyServerWhichSets(catalog.Serialize(), config, queries,
                             tree_result.answers)) {
    ok = false;
  }
  if (ok && tree_result.seconds >= linear_result.seconds) {
    std::fprintf(stderr,
                 "SMOKE FAILED: tree (%.4fs) must beat the linear scan "
                 "(%.4fs) on the default workload\n",
                 tree_result.seconds, linear_result.seconds);
    ok = false;
  }
  if (ok) std::printf("# smoke OK\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace shbf

int main(int argc, char** argv) { return shbf::Main(argc, argv); }
