#!/usr/bin/env python3
"""Fails when a committed benchmark regresses against its previous version.

Usage: check_bench_trend.py BASELINE.json CURRENT.json [--max-regression=0.15]
         [--max-mt-regression=0.50] [--summary[=PATH]]

Both files are bench_util/json_report.h reports: {"bench": ..., "host": ...,
"rows": [...]}.
Rows are matched by their identity fields (everything except measured
metrics); a matched row whose keys/s falls more than --max-regression below
the baseline fails the check. Rows that appear or disappear are reported but
never fail — benches grow new workloads and retire old ones as the catalog
evolves. Rows without a throughput metric (e.g. fpr rows) are ignored.

Reports carry a "host" stamp ({"cpu": ..., "dispatch": ...,
"hw_concurrency": N}) since v0.6. When both files are stamped and the stamps
disagree, the comparison is refused (exit 0 with a note): numbers from a
different machine or SIMD dispatch tier are weather, not a trend. Unstamped
(pre-0.6) baselines still compare.

Rows with threads > 1 use the wider --max-mt-regression bound: oversubscribed
wall clock on a shared runner is scheduler luck as much as code (the same
binary swings 30% run to run), so the tight single-thread envelope would
flag weather. The wide bound still catches collapses.

--summary appends a markdown delta table to PATH (default: the file named by
$GITHUB_STEP_SUMMARY; stdout when unset), so the deltas land on the CI run's
summary page without log spelunking.

Exit codes: 0 ok, 1 regression, 2 usage/parse error.
"""

import json
import os
import sys

# Measured outputs (never part of a row's identity). Throughput is the gated
# metric; latency percentiles and wall seconds are too noisy on shared
# runners to gate.
METRIC_FIELDS = {
    "keys_per_s",
    "keys_per_sec",
    "p50_us",
    "p99_us",
    "p999_us",
    "server_queue_p50_us",
    "server_queue_p99_us",
    "server_queue_p999_us",
    "seconds",
    "fpr",
}
THROUGHPUT_FIELDS = ("keys_per_s", "keys_per_sec")


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    rows = report.get("rows")
    if not isinstance(rows, list):
        print(f"error: {path}: no 'rows' array", file=sys.stderr)
        sys.exit(2)
    keyed = {}
    for row in rows:
        throughput = next(
            (row[f] for f in THROUGHPUT_FIELDS if f in row), None
        )
        if throughput is None:
            continue
        key = tuple(
            sorted(
                (k, v) for k, v in row.items() if k not in METRIC_FIELDS
            )
        )
        # Duplicate identities keep the best run; reruns in one report are
        # warm-up artifacts.
        if key not in keyed or throughput > keyed[key]:
            keyed[key] = throughput
    host = report.get("host")
    return keyed, host if isinstance(host, dict) else None


def describe(key):
    return " ".join(f"{k}={v}" for k, v in key)


def bound_for(key, max_regression, max_mt_regression):
    try:
        threads = int(dict(key).get("threads", 1))
    except (TypeError, ValueError):
        threads = 1
    return max_mt_regression if threads > 1 else max_regression


def write_summary(path, lines):
    text = "\n".join(lines) + "\n"
    if path:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)


def main(argv):
    max_regression = 0.15
    max_mt_regression = 0.50
    summary = False
    summary_path = None
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--max-regression="):
            max_regression = float(arg.split("=", 1)[1])
        elif arg.startswith("--max-mt-regression="):
            max_mt_regression = float(arg.split("=", 1)[1])
        elif arg == "--summary":
            summary = True
            summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
        elif arg.startswith("--summary="):
            summary = True
            summary_path = arg.split("=", 1)[1]
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline, base_host = load_report(paths[0])
    current, cur_host = load_report(paths[1])

    # Cross-host guard: a baseline measured on different hardware (or a
    # different SIMD dispatch tier) cannot gate this run. Refusing is not a
    # failure — the next commit of the report re-baselines on this host.
    if base_host is not None and cur_host is not None and base_host != cur_host:
        print(
            f"note: refusing comparison, host stamps differ\n"
            f"  baseline: {json.dumps(base_host, sort_keys=True)}\n"
            f"  current:  {json.dumps(cur_host, sort_keys=True)}"
        )
        if summary:
            write_summary(
                summary_path,
                [
                    f"### {os.path.basename(paths[1])}",
                    "",
                    "comparison skipped: baseline was measured on a "
                    "different host/dispatch tier.",
                    "",
                ],
            )
        return 0

    failures = 0
    table = []
    for key, base_tput in sorted(baseline.items()):
        if key not in current:
            print(f"note: row retired: {describe(key)}")
            continue
        cur_tput = current[key]
        if base_tput <= 0:
            continue
        bound = bound_for(key, max_regression, max_mt_regression)
        change = cur_tput / base_tput - 1.0
        status = "ok"
        if change < -bound:
            status = "REGRESSION"
            failures += 1
        print(
            f"{status}: {describe(key)}: "
            f"{base_tput:.3g} -> {cur_tput:.3g} keys/s ({change:+.1%})"
        )
        table.append((status, describe(key), base_tput, cur_tput, change))
    for key in sorted(set(current) - set(baseline)):
        print(f"note: new row: {describe(key)}")
        table.append(("new", describe(key), None, current[key], None))

    if summary:
        lines = [
            f"### {os.path.basename(paths[1])}",
            "",
            "| status | workload | baseline keys/s | current keys/s | Δ |",
            "|---|---|---|---|---|",
        ]
        for status, name, base_tput, cur_tput, change in table:
            base_text = f"{base_tput:.3g}" if base_tput is not None else "—"
            delta_text = f"{change:+.1%}" if change is not None else "—"
            marker = "❌ " if status == "REGRESSION" else ""
            lines.append(
                f"| {marker}{status} | {name} | {base_text} "
                f"| {cur_tput:.3g} | {delta_text} |"
            )
        lines.append("")
        write_summary(summary_path, lines)

    if failures:
        print(
            f"FAILED: {failures} row(s) regressed beyond the allowed "
            f"bound ({max_regression:.0%} single-thread, "
            f"{max_mt_regression:.0%} multi-thread) vs {paths[0]}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
