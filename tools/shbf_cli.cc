// shbf_cli — command-line front end for building, shipping and querying any
// filter in the registry from key files (one key per line).
//
//   shbf_cli list
//       prints every registered filter name with family and description.
//   shbf_cli build  <keys.txt> <filter.shbf> [--filter=shbf_m]
//                   [--bits-per-key=12] [--k=8] [--seed=N]
//       builds the named filter over the keys and writes the envelope blob.
//   shbf_cli query  <filter.shbf> <keys.txt>
//       prints "<key>\t<0|1>" per line plus a positives summary.
//   shbf_cli info   <filter.shbf>
//       prints the filter's registry name, family and footprint.
//   shbf_cli selftest [--filter=<name>]
//       end-to-end build → serialize → reload → query round trip through a
//       temp file, for one filter or (default) every registered filter; used
//       by ctest.
//   shbf_cli bench [--filter=shbf_m] [--keys=1000000] [--bits-per-key=12]
//                  [--k=8] [--batch=32] [--shards=8] [--threads=4]
//       in-process membership throughput: per-key virtual Contains vs the
//       batched query engine vs a sharded filter queried from T threads
//       (bench/batch_throughput.cc is the bigger, CSV-emitting sibling).
//   shbf_cli --filter=<name>
//       shorthand for `selftest --filter=<name>`.
//   shbf_cli multiset build <catalog.shbc> <set>=<keys.txt> ...
//   shbf_cli multiset query <catalog.shbc> <keys.txt> [--scan]
//   shbf_cli multiset stats <catalog.shbc>
//       the multi-set subsystem (docs/multiset.md): build a SetCatalog of
//       named sets, answer "which sets contain key k" through the
//       Bloofi-style MultiSetIndex (or the brute-force scan with --scan),
//       and inspect a catalog's index shape.
//   shbf_cli remote <host:port> <op> ...
//       drives a running shbf_server over the wire protocol
//       (docs/serving.md): list, stats, query (--count), add, remove,
//       snapshot, reload, which-sets, index-add, index-drop,
//       multiset-list.
//   shbf_cli --help | --version
//
// Legacy blobs written by older versions (raw ShbfM/BloomFilter wire format,
// no registry envelope) are still readable by query/info.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/filter_registry.h"
#include "api/set_catalog.h"
#include "baselines/bloom_filter.h"
#include "bench_util/timer.h"
#include "core/file_io.h"
#include "core/serde.h"
#include "core/version.h"
#include "engine/batch_query_engine.h"
#include "engine/sharded_filter.h"
#include "multiset/multi_set_index.h"
#include "server/client.h"
#include "shbf/shbf_membership.h"

namespace shbf {
namespace {

struct Options {
  double bits_per_key = 12.0;
  uint32_t num_hashes = 8;
  std::string filter_name = "shbf_m";
  uint64_t seed = kDefaultSeed;
};

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage:\n"
      "  shbf_cli list\n"
      "  shbf_cli build <keys.txt> <filter.shbf> [--filter=<name>] "
      "[--bits-per-key=12] [--k=8] [--seed=N]\n"
      "  shbf_cli query <filter.shbf> <keys.txt>\n"
      "  shbf_cli info  <filter.shbf>\n"
      "  shbf_cli selftest [--filter=<name>]\n"
      "  shbf_cli bench [--filter=<name>] [--keys=N] [--bits-per-key=12] "
      "[--k=8]\n"
      "                 [--batch=32] [--shards=8] [--threads=4]\n"
      "  shbf_cli multiset build <catalog.shbc> <set>=<keys.txt> ...\n"
      "                 [--filter=shbf_m] [--bits-per-key=64] [--k=4] "
      "[--seed=N]\n"
      "  shbf_cli multiset query <catalog.shbc> <keys.txt> [--scan] "
      "[--branching=8]\n"
      "  shbf_cli multiset stats <catalog.shbc> [--branching=8]\n"
      "  shbf_cli remote <host:port> list\n"
      "  shbf_cli remote <host:port> stats <name>\n"
      "  shbf_cli remote <host:port> query <name> <keys.txt> [--count]\n"
      "  shbf_cli remote <host:port> add <name> <keys.txt>\n"
      "  shbf_cli remote <host:port> remove <name> <keys.txt>\n"
      "  shbf_cli remote <host:port> snapshot <name> [<server-path>]\n"
      "  shbf_cli remote <host:port> reload <name> [<server-path>]\n"
      "  shbf_cli remote <host:port> which-sets <keys.txt>\n"
      "  shbf_cli remote <host:port> index-add <set> <keys.txt>\n"
      "  shbf_cli remote <host:port> index-drop <set>\n"
      "  shbf_cli remote <host:port> multiset-list\n"
      "  shbf_cli --filter=<name>        (selftest for one filter)\n"
      "  shbf_cli --help | --version\n"
      "multiset answers \"which of my N sets contain key k\" over a "
      "SetCatalog\n"
      "(docs/multiset.md); remote drives a running shbf_server (wire "
      "protocol:\n"
      "docs/serving.md).\n"
      "filters: ");
  for (const auto& name : FilterRegistry::Global().Names()) {
    std::fprintf(out, "%s ", name.c_str());
  }
  std::fprintf(out, "\n");
}

int Usage() {
  PrintUsage(stderr);
  return 2;
}

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

Status ReadLines(const std::string& path, std::vector<std::string>* lines) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Status::NotFound("cannot open " + path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) lines->push_back(line);
  }
  return Status::Ok();
}

int List() {
  // Names() is sorted, so scripts can diff the listing; the capabilities
  // column ("add,remove,merge" / "bulk") lets them discover remove-capable
  // filters without instantiating each one.
  const auto& registry = FilterRegistry::Global();
  std::printf("%-18s %-13s %-17s %s\n", "name", "family", "capabilities",
              "description");
  for (const auto& name : registry.Names()) {
    const auto* entry = registry.Find(name);
    std::printf("%-18s %-13s %-17s %s\n", name.c_str(),
                FilterFamilyName(entry->family),
                CapabilitiesToString(entry->capabilities).c_str(),
                entry->description.c_str());
  }
  return 0;
}

/// Builds the named filter over `keys` at the requested density.
Status BuildFilter(const std::vector<std::string>& keys,
                   const Options& options,
                   std::unique_ptr<MembershipFilter>* out) {
  FilterSpec spec = FilterSpec::ForKeys(keys.size(), options.bits_per_key,
                                        options.num_hashes);
  spec.seed = options.seed;
  // Key files are sets (each key once), so the multiplicity variants only
  // need a small count cap — ShBF_X's FPR grows linearly in it.
  spec.max_count = 8;
  Status s =
      FilterRegistry::Global().Create(options.filter_name, spec, out);
  if (!s.ok()) return s;
  for (const auto& key : keys) (*out)->Add(key);
  return Status::Ok();
}

int Build(const std::string& keys_path, const std::string& filter_path,
          const Options& options) {
  std::vector<std::string> keys;
  Status s = ReadLines(keys_path, &keys);
  if (!s.ok() || keys.empty()) {
    std::fprintf(stderr, "error: %s\n",
                 s.ok() ? "no keys in input" : s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<MembershipFilter> filter;
  s = BuildFilter(keys, options, &filter);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::string blob = FilterRegistry::Serialize(*filter);
  s = WriteStringToFile(filter_path, blob);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("built %s filter: %zu keys, %zu bytes in memory -> %s "
              "(%zu bytes on disk)\n",
              std::string(filter->name()).c_str(), keys.size(),
              filter->memory_bytes(), filter_path.c_str(), blob.size());
  return 0;
}

/// Loads a registry-envelope blob, falling back to the legacy raw ShbfM /
/// BloomFilter formats older CLI versions wrote.
Status Load(const std::string& path,
            std::unique_ptr<MembershipFilter>* out) {
  std::string blob;
  Status s = ReadFileToString(path, &blob);
  if (!s.ok()) return s;
  s = FilterRegistry::Global().Deserialize(blob, out);
  if (s.ok()) return s;
  // A blob that starts with the registry-envelope magic IS an envelope —
  // surface the registry's own diagnosis (e.g. the found-vs-supported
  // version mismatch naming the filter) instead of burying it under the
  // legacy fallback's generic "not recognized".
  if (blob.size() >= 4 && blob.compare(0, 4, "SHBR") == 0) return s;
  // Legacy fallback: a raw concrete-filter blob is an adapter payload minus
  // the 8-byte add-counter prefix (the concrete classes track their own
  // element counts), so synthesize that prefix and retry.
  ByteWriter writer;
  writer.PutU64(0);
  writer.PutBytes(blob.data(), blob.size());
  std::string adapter_payload = writer.Take();
  for (const char* legacy_name : {"shbf_m", "bloom"}) {
    const auto* entry = FilterRegistry::Global().Find(legacy_name);
    if (entry != nullptr && entry->deserializer(adapter_payload, out).ok()) {
      return Status::Ok();
    }
  }
  return Status::InvalidArgument(path + " is not a recognized filter blob");
}

int Query(const std::string& filter_path, const std::string& keys_path) {
  std::unique_ptr<MembershipFilter> filter;
  Status s = Load(filter_path, &filter);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::vector<std::string> keys;
  s = ReadLines(keys_path, &keys);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  // Route through the batch engine: the non-virtual prefetching path for
  // probe-protocol filters, the filter's own batch for the rest.
  BatchQueryEngine engine;
  std::vector<uint8_t> results;
  engine.ContainsBatch(*filter, keys, &results);
  size_t positives = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    positives += results[i];
    std::printf("%s\t%d\n", keys[i].c_str(), results[i] ? 1 : 0);
  }
  std::fprintf(stderr, "%zu/%zu keys positive\n", positives, keys.size());
  return 0;
}

int Info(const std::string& filter_path) {
  std::unique_ptr<MembershipFilter> filter;
  Status s = Load(filter_path, &filter);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  const auto* entry = FilterRegistry::Global().Find(filter->name());
  std::printf("filter:        %s\n", std::string(filter->name()).c_str());
  if (entry != nullptr) {
    std::printf("family:        %s\n", FilterFamilyName(entry->family));
    std::printf("description:   %s\n", entry->description.c_str());
  }
  std::printf("elements:      %zu\n", filter->num_elements());
  std::printf("memory:        %zu bytes\n", filter->memory_bytes());
  return 0;
}

/// Build → serialize → reload → query round trip for one registry name.
int SelfTestOne(const std::string& name) {
  std::string dir = "/tmp";
  if (const char* env = getenv("TMPDIR"); env != nullptr) dir = env;
  std::string keys_path = dir + "/shbf_cli_selftest_keys.txt";
  std::string filter_path = dir + "/shbf_cli_selftest.shbf";
  {
    std::ofstream keys(keys_path, std::ios::trunc);
    for (int i = 0; i < 1000; ++i) keys << "key-" << i << "\n";
  }
  Options options;
  options.filter_name = name;
  if (Build(keys_path, filter_path, options) != 0) return 1;
  std::unique_ptr<MembershipFilter> filter;
  if (!Load(filter_path, &filter).ok()) {
    std::fprintf(stderr, "selftest FAILED (%s): reload failed\n",
                 name.c_str());
    return 1;
  }
  for (int i = 0; i < 1000; ++i) {
    if (!filter->Contains("key-" + std::to_string(i))) {
      std::fprintf(stderr, "selftest FAILED (%s): false negative at %d\n",
                   name.c_str(), i);
      return 1;
    }
  }
  size_t false_positives = 0;
  for (int i = 0; i < 10000; ++i) {
    false_positives += filter->Contains("absent-" + std::to_string(i));
  }
  // Per-filter bound at 12 bits/key: ~3% for ordinary membership filters;
  // the shbf_x variants trade FPR for count information (FPR scales with
  // max_count), and ibf splits its bit budget across two filters.
  size_t fpr_limit = 300;
  if (name == "shbf_x" || name == "counting_shbf_x") fpr_limit = 600;
  if (name == "ibf") fpr_limit = 1500;
  if (false_positives > fpr_limit) {
    std::fprintf(stderr, "selftest FAILED (%s): FPR too high (%zu/10000)\n",
                 name.c_str(), false_positives);
    return 1;
  }
  std::remove(keys_path.c_str());
  std::remove(filter_path.c_str());
  std::printf("selftest OK (%s, FPR %zu/10000)\n", name.c_str(),
              false_positives);
  return 0;
}

int SelfTest(const std::string& only_name) {
  if (!only_name.empty()) return SelfTestOne(only_name);
  int failures = 0;
  for (const auto& name : FilterRegistry::Global().Names()) {
    failures += SelfTestOne(name) != 0;
  }
  if (failures > 0) {
    std::fprintf(stderr, "selftest FAILED for %d filter(s)\n", failures);
    return 1;
  }
  std::printf("selftest OK for all %zu registered filters\n",
              FilterRegistry::Global().Names().size());
  return 0;
}

struct BenchOptions {
  std::string filter_name = "shbf_m";
  size_t num_keys = 1000000;
  double bits_per_key = 12.0;
  uint32_t num_hashes = 8;
  uint32_t batch = 32;
  uint32_t shards = 8;
  uint32_t threads = 4;
};

/// In-process membership throughput: per-key virtual dispatch vs the batch
/// engine vs a sharded filter under concurrent queries.
int Bench(const BenchOptions& options) {
  if (options.num_keys == 0 || options.threads == 0) {
    std::fprintf(stderr, "error: bench needs --keys > 0 and --threads > 0\n");
    return 1;
  }
  const auto& registry = FilterRegistry::Global();
  FilterSpec spec = FilterSpec::ForKeys(options.num_keys,
                                        options.bits_per_key,
                                        options.num_hashes);
  spec.max_count = 8;
  spec.batch_size = options.batch;
  std::unique_ptr<MembershipFilter> filter;
  Status s = registry.Create(options.filter_name, spec, &filter);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }

  std::vector<std::string> keys(options.num_keys);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = "bench-key-" + std::to_string(i);
  }
  for (const auto& key : keys) filter->Add(key);
  std::vector<std::string> queries = keys;
  std::shuffle(queries.begin(), queries.end(), std::mt19937_64(0xbe9c4));
  filter->Contains(queries.front());  // force lazy builds out of the loop

  std::printf("bench: %s, %zu keys at %.1f bits/key (k = %u)\n",
              options.filter_name.c_str(), options.num_keys,
              options.bits_per_key, options.num_hashes);

  WallTimer timer;
  uint64_t hits = 0;
  for (const auto& key : queries) hits += filter->Contains(key);
  DoNotOptimize(hits);
  const double per_key_seconds = timer.ElapsedSeconds();
  const double per_key_mops = Mops(queries.size(), per_key_seconds);
  std::printf("  per_key               %8.2f Mops/s\n", per_key_mops);

  BatchQueryEngine engine({.batch_size = options.batch});
  std::vector<uint8_t> results;
  engine.ContainsBatch(*filter, queries, &results);  // warm-up
  timer.Reset();
  engine.ContainsBatch(*filter, queries, &results);
  const double batched_mops = Mops(queries.size(), timer.ElapsedSeconds());
  std::printf("  batched (batch=%-3u)   %8.2f Mops/s  (%.2fx)\n",
              options.batch, batched_mops, batched_mops / per_key_mops);

  if (options.shards < 2) {
    std::printf("  sharded               (skipped: --shards < 2)\n");
    return 0;
  }
  FilterSpec sharded_spec = spec;
  sharded_spec.shards = options.shards;
  std::unique_ptr<MembershipFilter> sharded;
  s = registry.Create(options.filter_name, sharded_spec, &sharded);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  static_cast<ShardedMembershipFilter*>(sharded.get())->AddBatch(keys);
  // Warm every shard (triggers lazy rebuilds) and pre-slice the query
  // stream, so the timed region holds queries only.
  sharded->ContainsBatch(queries, &results);
  std::vector<std::vector<std::string>> slices(options.threads);
  const size_t slice = (queries.size() + options.threads - 1) /
                       options.threads;
  for (uint32_t t = 0; t < options.threads; ++t) {
    const size_t begin = std::min(t * slice, queries.size());
    const size_t end = std::min(begin + slice, queries.size());
    slices[t].assign(queries.begin() + begin, queries.begin() + end);
  }
  timer.Reset();
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < options.threads; ++t) {
    workers.emplace_back([&, t] {
      if (slices[t].empty()) return;
      std::vector<uint8_t> thread_results;
      sharded->ContainsBatch(slices[t], &thread_results);
      DoNotOptimize(thread_results.size());
    });
  }
  for (auto& worker : workers) worker.join();
  const double sharded_mops = Mops(queries.size(), timer.ElapsedSeconds());
  std::printf("  sharded (%u x %u thr)  %8.2f Mops/s  (%.2fx)\n",
              options.shards, options.threads, sharded_mops,
              sharded_mops / per_key_mops);
  return 0;
}

// ---------------------------------------------------------------------------
// multiset — SetCatalog + MultiSetIndex front end (docs/multiset.md)
// ---------------------------------------------------------------------------

struct MultisetOptions {
  std::string filter_name = "shbf_m";
  // Indexable catalogs are built SPARSE by default: summary nodes are
  // bitwise unions of their children, so leaves need headroom before the
  // tree can prune (docs/multiset.md, "tree vs scan").
  double bits_per_key = 64.0;
  uint32_t num_hashes = 4;
  uint64_t seed = kDefaultSeed;
  size_t branching = 8;
  bool scan = false;
};

int MultisetBuild(const std::string& catalog_path,
                  const std::vector<std::string>& set_args,
                  const MultisetOptions& options) {
  SetCatalog catalog;
  for (const std::string& arg : set_args) {
    const size_t eq = arg.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == arg.size()) {
      std::fprintf(stderr, "error: multiset build needs <set>=<keys.txt>, "
                           "got '%s'\n", arg.c_str());
      return 2;
    }
    const std::string set_name = arg.substr(0, eq);
    std::vector<std::string> keys;
    Status s = ReadLines(arg.substr(eq + 1), &keys);
    if (!s.ok() || keys.empty()) {
      std::fprintf(stderr, "error: set '%s': %s\n", set_name.c_str(),
                   s.ok() ? "no keys in input" : s.ToString().c_str());
      return 1;
    }
    FilterSpec spec = FilterSpec::ForKeys(keys.size(), options.bits_per_key,
                                          options.num_hashes);
    spec.seed = options.seed;
    spec.max_count = 8;
    std::unique_ptr<MembershipFilter> filter;
    s = FilterRegistry::Global().Create(options.filter_name, spec, &filter);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    for (const auto& key : keys) filter->Add(key);
    uint32_t id = 0;
    s = catalog.AddSet(set_name, std::move(filter), &id);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("set %-3u %-24s %zu keys\n", id, set_name.c_str(),
                keys.size());
  }
  const std::string blob = catalog.Serialize();
  Status s = WriteStringToFile(catalog_path, blob);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("built catalog: %zu set(s), %zu bytes in memory -> %s "
              "(%zu bytes on disk)\n",
              catalog.size(), catalog.memory_bytes(), catalog_path.c_str(),
              blob.size());
  return 0;
}

Status LoadCatalogAndIndex(const std::string& catalog_path,
                           const MultisetOptions& options,
                           SetCatalog* catalog,
                           std::unique_ptr<MultiSetIndex>* index) {
  std::string blob;
  Status s = ReadFileToString(catalog_path, &blob);
  if (!s.ok()) return s;
  s = SetCatalog::Deserialize(blob, FilterRegistry::Global(), catalog);
  if (!s.ok()) return s;
  MultiSetIndexOptions index_options;
  index_options.branching = options.branching;
  index_options.force_scan = options.scan;
  return MultiSetIndex::Build(catalog, index_options, index);
}

int MultisetQuery(const std::string& catalog_path,
                  const std::string& keys_path,
                  const MultisetOptions& options) {
  SetCatalog catalog;
  std::unique_ptr<MultiSetIndex> index;
  Status s = LoadCatalogAndIndex(catalog_path, options, &catalog, &index);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::vector<std::string> keys;
  s = ReadLines(keys_path, &keys);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::vector<SetIdBitmap> answers;
  index->WhichSetsBatch(keys, &answers);
  size_t hits = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    std::string names;
    for (uint32_t id : answers[i].ToIds()) {
      if (!names.empty()) names += ',';
      names += catalog.FindById(id)->name;
    }
    hits += names.empty() ? 0 : 1;
    std::printf("%s\t%s\n", keys[i].c_str(),
                names.empty() ? "-" : names.c_str());
  }
  const MultiSetIndex::Stats stats = index->stats();
  std::fprintf(stderr,
               "%zu/%zu keys in >= 1 set; %llu filter probes over %zu sets "
               "(%s mode)\n",
               hits, keys.size(),
               static_cast<unsigned long long>(stats.probes), stats.sets,
               options.scan ? "scan" : "tree");
  return 0;
}

int MultisetStats(const std::string& catalog_path,
                  const MultisetOptions& options) {
  SetCatalog catalog;
  std::unique_ptr<MultiSetIndex> index;
  Status s = LoadCatalogAndIndex(catalog_path, options, &catalog, &index);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  const MultiSetIndex::Stats stats = index->stats();
  std::printf("catalog:          %s\n", catalog_path.c_str());
  std::printf("sets:             %zu (id bound %u)\n", catalog.size(),
              catalog.id_bound());
  std::printf("member memory:    %zu bytes\n", catalog.memory_bytes());
  std::printf("tree leaves:      %zu\n", stats.tree_leaves);
  std::printf("scan leaves:      %zu\n", stats.scan_leaves);
  std::printf("summary nodes:    %zu (%zu bytes)\n", stats.summary_nodes,
              stats.summary_memory_bytes);
  std::printf("trees (roots):    %zu, deepest %zu level(s)\n", stats.trees,
              stats.levels);
  std::printf("%-4s %-24s %-18s %-17s %s\n", "id", "set", "filter",
              "capabilities", "elements");
  for (const SetCatalog::SetEntry* entry : catalog.Entries()) {
    std::printf("%-4u %-24s %-18s %-17s %zu\n", entry->id,
                entry->name.c_str(), std::string(entry->filter->name()).c_str(),
                CapabilitiesToString(entry->filter->capabilities()).c_str(),
                entry->filter->num_elements());
  }
  return 0;
}

int Multiset(int argc, char** argv) {
  if (argc >= 3 && (std::strcmp(argv[2], "--help") == 0 ||
                    std::strcmp(argv[2], "-h") == 0)) {
    PrintUsage(stdout);
    return 0;
  }
  if (argc < 4) return Usage();
  const std::string op = argv[2];
  const std::string catalog_path = argv[3];
  MultisetOptions options;
  std::vector<std::string> positional;
  for (int i = 4; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--scan") == 0) {
      options.scan = true;
    } else if (ParseFlag(argv[i], "filter", &value)) {
      options.filter_name = value;
    } else if (ParseFlag(argv[i], "bits-per-key", &value)) {
      options.bits_per_key = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "k", &value)) {
      options.num_hashes = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "seed", &value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "branching", &value)) {
      options.branching = std::strtoull(value.c_str(), nullptr, 0);
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      return Usage();
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (op == "build" && !positional.empty()) {
    return MultisetBuild(catalog_path, positional, options);
  }
  if (op == "query" && positional.size() == 1) {
    return MultisetQuery(catalog_path, positional.front(), options);
  }
  if (op == "stats" && positional.empty()) {
    return MultisetStats(catalog_path, options);
  }
  return Usage();
}

void PrintRemoteUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: shbf_cli remote <host:port> <op>\n"
      "  list                          every served filter with stats\n"
      "  stats <name>                  one served filter's stats\n"
      "  query <name> <keys.txt>       batched membership (--count for\n"
      "                                multiplicity counts)\n"
      "  add <name> <keys.txt>         insert keys\n"
      "  remove <name> <keys.txt>      delete keys (kRemove filters only)\n"
      "  snapshot <name> [<path>]      serialize to a file on the SERVER\n"
      "  reload <name> [<path>]        replace from a file on the SERVER\n"
      "  which-sets <keys.txt>         which catalog sets contain each key\n"
      "                                (multiset index, docs/multiset.md)\n"
      "  index-add <set> <keys.txt>    add keys to one catalog set\n"
      "  index-drop <set>              drop one catalog set from the index\n"
      "  multiset-list                 catalog sets + index shape\n"
      "  metrics [--prom]              server metrics snapshot (METRICS\n"
      "                                opcode, v3): counters, gauges, and\n"
      "                                latency quantiles; --prom emits the\n"
      "                                Prometheus exposition format\n"
      "wire protocol: docs/serving.md; server: shbf_server --help\n");
}

/// Splits "host:port" (host defaults to 127.0.0.1 when absent).
bool ParseEndpoint(const std::string& endpoint, std::string* host,
                   uint16_t* port) {
  const size_t colon = endpoint.rfind(':');
  const std::string port_text =
      colon == std::string::npos ? endpoint : endpoint.substr(colon + 1);
  *host = colon == std::string::npos || colon == 0
              ? "127.0.0.1"
              : endpoint.substr(0, colon);
  const unsigned long value = std::strtoul(port_text.c_str(), nullptr, 10);
  if (value == 0 || value > 65535) return false;
  *port = static_cast<uint16_t>(value);
  return true;
}

void PrintFilterInfo(const ShbfClient::FilterInfo& info) {
  std::printf("%-18s %-24s %-17s %12llu elements %12llu bytes\n",
              info.serve_name.c_str(), info.registry_name.c_str(),
              CapabilitiesToString(info.capabilities).c_str(),
              static_cast<unsigned long long>(info.elements),
              static_cast<unsigned long long>(info.memory_bytes));
}

/// Drives a running shbf_server. Key files stream in frames of
/// `kRemoteFrameKeys` keys so arbitrarily large files stay under the
/// per-frame limits.
int Remote(int argc, char** argv) {
  constexpr size_t kRemoteFrameKeys = 8192;
  if (argc >= 3 && (std::strcmp(argv[2], "--help") == 0 ||
                    std::strcmp(argv[2], "-h") == 0)) {
    PrintRemoteUsage(stdout);
    return 0;
  }
  if (argc < 4) {
    PrintRemoteUsage(stderr);
    return 2;
  }
  std::string host;
  uint16_t port = 0;
  if (!ParseEndpoint(argv[2], &host, &port)) {
    std::fprintf(stderr, "error: bad endpoint '%s' (want host:port)\n",
                 argv[2]);
    return 2;
  }
  const std::string op = argv[3];
  ShbfClient client;
  Status s = client.Connect(host, port);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }

  if (op == "list" && argc == 4) {
    std::vector<ShbfClient::FilterInfo> filters;
    s = client.List(&filters);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("%s serving %zu filter(s)\n",
                client.server_version().c_str(), filters.size());
    for (const auto& info : filters) PrintFilterInfo(info);
    return 0;
  }
  if (op == "stats" && argc == 5) {
    ShbfClient::FilterInfo info;
    s = client.Stats(argv[4], &info);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    PrintFilterInfo(info);
    return 0;
  }
  if ((op == "query" || op == "add" || op == "remove") &&
      (argc == 6 || (op == "query" && argc == 7))) {
    const std::string name = argv[4];
    bool count_mode = false;
    if (argc == 7) {
      if (std::strcmp(argv[6], "--count") != 0) {
        std::fprintf(stderr, "error: unknown flag %s\n", argv[6]);
        PrintRemoteUsage(stderr);
        return 2;
      }
      count_mode = true;
    }
    std::vector<std::string> keys;
    s = ReadLines(argv[5], &keys);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    uint64_t positives = 0;
    for (size_t begin = 0; begin < keys.size(); begin += kRemoteFrameKeys) {
      const size_t end = std::min(begin + kRemoteFrameKeys, keys.size());
      const std::vector<std::string> frame(keys.begin() + begin,
                                           keys.begin() + end);
      if (op == "add") {
        s = client.Add(name, frame);
      } else if (op == "remove") {
        std::vector<uint8_t> removed;
        s = client.Remove(name, frame, &removed);
        for (size_t i = 0; s.ok() && i < frame.size(); ++i) {
          positives += removed[i];
          std::printf("%s\t%d\n", frame[i].c_str(), removed[i] ? 1 : 0);
        }
      } else if (count_mode) {
        std::vector<uint64_t> counts;
        s = client.QueryCount(name, frame, &counts);
        for (size_t i = 0; s.ok() && i < frame.size(); ++i) {
          positives += counts[i] > 0;
          std::printf("%s\t%llu\n", frame[i].c_str(),
                      static_cast<unsigned long long>(counts[i]));
        }
      } else {
        std::vector<uint8_t> results;
        s = client.Query(name, frame, &results);
        for (size_t i = 0; s.ok() && i < frame.size(); ++i) {
          positives += results[i];
          std::printf("%s\t%d\n", frame[i].c_str(), results[i] ? 1 : 0);
        }
      }
      if (!s.ok()) {
        std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    if (op == "add") {
      std::fprintf(stderr, "added %zu key(s) to %s\n", keys.size(),
                   name.c_str());
    } else {
      std::fprintf(stderr, "%llu/%zu keys %s\n",
                   static_cast<unsigned long long>(positives), keys.size(),
                   op == "remove" ? "removed" : "positive");
    }
    return 0;
  }
  if (op == "which-sets" && argc == 5) {
    std::vector<std::string> keys;
    s = ReadLines(argv[4], &keys);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    // One MULTISET_LIST up front resolves ids to names for the output.
    ShbfClient::MultisetInfo info;
    s = client.MultisetList(&info);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::map<uint32_t, std::string> names;
    for (const auto& set : info.sets) names.emplace(set.id, set.name);
    uint64_t hits = 0;
    for (size_t begin = 0; begin < keys.size(); begin += kRemoteFrameKeys) {
      const size_t end = std::min(begin + kRemoteFrameKeys, keys.size());
      const std::vector<std::string> frame(keys.begin() + begin,
                                           keys.begin() + end);
      std::vector<std::vector<uint32_t>> which;
      s = client.WhichSets(frame, &which);
      if (!s.ok()) {
        std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
        return 1;
      }
      for (size_t i = 0; i < frame.size(); ++i) {
        std::string row;
        for (uint32_t id : which[i]) {
          if (!row.empty()) row += ',';
          auto it = names.find(id);
          row += it != names.end() ? it->second : std::to_string(id);
        }
        hits += row.empty() ? 0 : 1;
        std::printf("%s\t%s\n", frame[i].c_str(),
                    row.empty() ? "-" : row.c_str());
      }
    }
    std::fprintf(stderr, "%llu/%zu keys in >= 1 of %zu set(s)\n",
                 static_cast<unsigned long long>(hits), keys.size(),
                 info.sets.size());
    return 0;
  }
  if (op == "index-add" && argc == 6) {
    std::vector<std::string> keys;
    s = ReadLines(argv[5], &keys);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    uint64_t total = 0;
    for (size_t begin = 0; begin < keys.size(); begin += kRemoteFrameKeys) {
      const size_t end = std::min(begin + kRemoteFrameKeys, keys.size());
      const std::vector<std::string> frame(keys.begin() + begin,
                                           keys.begin() + end);
      uint64_t added = 0;
      s = client.IndexAdd(argv[4], frame, &added);
      if (!s.ok()) {
        std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
        return 1;
      }
      total += added;
    }
    std::fprintf(stderr, "added %llu key(s) to set '%s'\n",
                 static_cast<unsigned long long>(total), argv[4]);
    return 0;
  }
  if (op == "index-drop" && argc == 5) {
    uint64_t remaining = 0;
    s = client.IndexDrop(argv[4], &remaining);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("dropped set '%s' (%llu set(s) remain)\n", argv[4],
                static_cast<unsigned long long>(remaining));
    return 0;
  }
  if (op == "multiset-list" && argc == 4) {
    ShbfClient::MultisetInfo info;
    s = client.MultisetList(&info);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("%s: %zu set(s), %u tree root(s), %u scan leaf(s), "
                "%u level(s), %llu summary bytes\n",
                client.server_version().c_str(), info.sets.size(), info.trees,
                info.scan_leaves, info.levels,
                static_cast<unsigned long long>(info.summary_memory_bytes));
    for (const auto& set : info.sets) {
      std::printf("%-4u %-24s %-18s %12llu elements\n", set.id,
                  set.name.c_str(), set.registry_name.c_str(),
                  static_cast<unsigned long long>(set.elements));
    }
    return 0;
  }
  if (op == "metrics" && (argc == 4 || argc == 5)) {
    bool prometheus = false;
    if (argc == 5) {
      if (std::strcmp(argv[4], "--prom") != 0) {
        std::fprintf(stderr, "error: unknown flag %s\n", argv[4]);
        PrintRemoteUsage(stderr);
        return 2;
      }
      prometheus = true;
    }
    ShbfClient::ServerMetrics metrics;
    s = client.Metrics(&metrics);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    if (prometheus) {
      std::fputs(metrics.snapshot.ToPrometheus().c_str(), stdout);
      return 0;
    }
    std::printf("%s  dispatch=%s  uptime=%llus\n", metrics.version.c_str(),
                metrics.dispatch.c_str(),
                static_cast<unsigned long long>(metrics.uptime_seconds));
    if (!metrics.snapshot.counters.empty()) {
      std::printf("\n%-40s %20s\n", "counter", "value");
      for (const auto& [name, value] : metrics.snapshot.counters) {
        std::printf("%-40s %20llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      }
    }
    if (!metrics.snapshot.gauges.empty()) {
      std::printf("\n%-40s %20s\n", "gauge", "value");
      for (const auto& [name, value] : metrics.snapshot.gauges) {
        std::printf("%-40s %20lld\n", name.c_str(),
                    static_cast<long long>(value));
      }
    }
    if (!metrics.snapshot.histograms.empty()) {
      std::printf("\n%-32s %12s %10s %10s %10s %10s\n", "histogram", "count",
                  "p50", "p90", "p99", "p99.9");
      for (const auto& h : metrics.snapshot.histograms) {
        std::printf("%-32s %12llu %10.0f %10.0f %10.0f %10.0f\n",
                    h.name.c_str(), static_cast<unsigned long long>(h.count),
                    h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99),
                    h.Quantile(0.999));
      }
    }
    return 0;
  }
  if ((op == "snapshot" || op == "reload") && (argc == 5 || argc == 6)) {
    const std::string name = argv[4];
    const std::string path = argc == 6 ? argv[5] : "";
    if (op == "snapshot") {
      uint64_t bytes = 0;
      std::string path_used;
      s = client.Snapshot(name, path, &bytes, &path_used);
      if (s.ok()) {
        std::printf("snapshot of '%s': %llu bytes -> %s\n", name.c_str(),
                    static_cast<unsigned long long>(bytes),
                    path_used.c_str());
      }
    } else {
      uint64_t elements = 0;
      s = client.Reload(name, path, &elements);
      if (s.ok()) {
        std::printf("reloaded '%s': %llu element(s)\n", name.c_str(),
                    static_cast<unsigned long long>(elements));
      }
    }
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
    return 0;
  }
  PrintRemoteUsage(stderr);
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    PrintUsage(stdout);
    return 0;
  }
  if (command == "--version") {
    std::printf("shbf_cli %s (protocol v%u)\n", kShbfVersion,
                wire::kProtocolVersion);
    return 0;
  }
  if (command == "remote") return Remote(argc, argv);
  if (command == "multiset") return Multiset(argc, argv);
  std::string flag_value;
  if (ParseFlag(command, "filter", &flag_value)) {
    return SelfTest(flag_value);
  }
  if (command == "list") return List();
  if (command == "selftest") {
    std::string name;
    for (int i = 2; i < argc; ++i) {
      if (!ParseFlag(argv[i], "filter", &name)) return Usage();
    }
    return SelfTest(name);
  }
  if (command == "bench") {
    BenchOptions options;
    for (int i = 2; i < argc; ++i) {
      std::string value;
      if (ParseFlag(argv[i], "filter", &value)) {
        options.filter_name = value;
      } else if (ParseFlag(argv[i], "keys", &value)) {
        options.num_keys = std::strtoull(value.c_str(), nullptr, 0);
      } else if (ParseFlag(argv[i], "bits-per-key", &value)) {
        options.bits_per_key = std::atof(value.c_str());
      } else if (ParseFlag(argv[i], "k", &value)) {
        options.num_hashes = static_cast<uint32_t>(std::atoi(value.c_str()));
      } else if (ParseFlag(argv[i], "batch", &value)) {
        options.batch = static_cast<uint32_t>(std::atoi(value.c_str()));
      } else if (ParseFlag(argv[i], "shards", &value)) {
        options.shards = static_cast<uint32_t>(std::atoi(value.c_str()));
      } else if (ParseFlag(argv[i], "threads", &value)) {
        options.threads = static_cast<uint32_t>(std::atoi(value.c_str()));
      } else {
        std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
        return Usage();
      }
    }
    return Bench(options);
  }
  if (command == "info" && argc == 3) return Info(argv[2]);
  if (command == "query" && argc == 4) return Query(argv[2], argv[3]);
  if (command == "build" && argc >= 4) {
    Options options;
    for (int i = 4; i < argc; ++i) {
      std::string value;
      if (ParseFlag(argv[i], "bits-per-key", &value)) {
        options.bits_per_key = std::atof(value.c_str());
      } else if (ParseFlag(argv[i], "k", &value)) {
        options.num_hashes = static_cast<uint32_t>(std::atoi(value.c_str()));
      } else if (ParseFlag(argv[i], "filter", &value) ||
                 ParseFlag(argv[i], "type", &value)) {
        options.filter_name = value == "shbf" ? "shbf_m" : value;
      } else if (ParseFlag(argv[i], "seed", &value)) {
        options.seed = std::strtoull(value.c_str(), nullptr, 0);
      } else {
        std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
        return Usage();
      }
    }
    return Build(argv[2], argv[3], options);
  }
  return Usage();
}

}  // namespace
}  // namespace shbf

int main(int argc, char** argv) { return shbf::Main(argc, argv); }
