// shbf_cli — command-line front end for building, shipping and querying
// shifting Bloom filters from key files (one key per line).
//
//   shbf_cli build  <keys.txt> <filter.shbf> [--bits-per-key=12] [--k=8]
//                   [--type=shbf|bloom] [--seed=N]
//       builds a membership filter over the keys and writes the wire blob.
//   shbf_cli query  <filter.shbf> <keys.txt>
//       prints "<key>\t<0|1>" per line plus a positives summary.
//   shbf_cli info   <filter.shbf>
//       prints the filter's parameters and fill ratio.
//   shbf_cli selftest
//       end-to-end round trip through a temp file (used by ctest).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/bloom_filter.h"
#include "shbf/shbf_membership.h"

namespace shbf {
namespace {

struct Options {
  double bits_per_key = 12.0;
  uint32_t num_hashes = 8;
  std::string type = "shbf";
  uint64_t seed = kDefaultSeed;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  shbf_cli build <keys.txt> <filter.shbf> [--bits-per-key=12] "
      "[--k=8] [--type=shbf|bloom] [--seed=N]\n"
      "  shbf_cli query <filter.shbf> <keys.txt>\n"
      "  shbf_cli info  <filter.shbf>\n"
      "  shbf_cli selftest\n");
  return 2;
}

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

Status ReadLines(const std::string& path, std::vector<std::string>* lines) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Status::NotFound("cannot open " + path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) lines->push_back(line);
  }
  return Status::Ok();
}

Status ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return Status::Ok();
}

Status WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out.good()) return Status::Internal("cannot write " + path);
  return Status::Ok();
}

int Build(const std::string& keys_path, const std::string& filter_path,
          const Options& options) {
  std::vector<std::string> keys;
  Status s = ReadLines(keys_path, &keys);
  if (!s.ok() || keys.empty()) {
    std::fprintf(stderr, "error: %s\n",
                 s.ok() ? "no keys in input" : s.ToString().c_str());
    return 1;
  }
  size_t num_bits =
      static_cast<size_t>(options.bits_per_key * static_cast<double>(keys.size()));
  std::string blob;
  if (options.type == "bloom") {
    BloomFilter filter({.num_bits = num_bits,
                        .num_hashes = options.num_hashes,
                        .seed = options.seed});
    for (const auto& key : keys) filter.Add(key);
    blob = filter.ToBytes();
  } else if (options.type == "shbf") {
    ShbfM filter({.num_bits = num_bits,
                  .num_hashes = options.num_hashes,
                  .seed = options.seed});
    for (const auto& key : keys) filter.Add(key);
    blob = filter.ToBytes();
  } else {
    std::fprintf(stderr, "error: unknown --type=%s\n", options.type.c_str());
    return 2;
  }
  s = WriteFile(filter_path, blob);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("built %s filter: %zu keys, %zu bits, k=%u -> %s (%zu bytes)\n",
              options.type.c_str(), keys.size(), num_bits, options.num_hashes,
              filter_path.c_str(), blob.size());
  return 0;
}

// Loads either filter type from a blob; exactly one optional engages.
struct LoadedFilter {
  std::optional<ShbfM> shbf;
  std::optional<BloomFilter> bloom;

  bool Contains(const std::string& key) const {
    return shbf.has_value() ? shbf->Contains(key) : bloom->Contains(key);
  }
};

Status Load(const std::string& path, LoadedFilter* out) {
  std::string blob;
  Status s = ReadFile(path, &blob);
  if (!s.ok()) return s;
  if (ShbfM::FromBytes(blob, &out->shbf).ok()) return Status::Ok();
  if (BloomFilter::FromBytes(blob, &out->bloom).ok()) return Status::Ok();
  return Status::InvalidArgument(path + " is not a recognized filter blob");
}

int Query(const std::string& filter_path, const std::string& keys_path) {
  LoadedFilter filter;
  Status s = Load(filter_path, &filter);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::vector<std::string> keys;
  s = ReadLines(keys_path, &keys);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  size_t positives = 0;
  for (const auto& key : keys) {
    bool hit = filter.Contains(key);
    positives += hit;
    std::printf("%s\t%d\n", key.c_str(), hit ? 1 : 0);
  }
  std::fprintf(stderr, "%zu/%zu keys positive\n", positives, keys.size());
  return 0;
}

int Info(const std::string& filter_path) {
  LoadedFilter filter;
  Status s = Load(filter_path, &filter);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  if (filter.shbf.has_value()) {
    std::printf("type:          ShBF_M (shifting Bloom filter, membership)\n");
    std::printf("bits (m):      %zu\n", filter.shbf->num_bits());
    std::printf("hashes (k):    %u (computes k/2+1 = %u)\n",
                filter.shbf->num_hashes(), filter.shbf->num_pairs() + 1);
    std::printf("offset span:   %u\n", filter.shbf->max_offset_span());
    std::printf("elements:      %zu\n", filter.shbf->num_elements());
    std::printf("fill ratio:    %.4f\n", filter.shbf->bits().FillRatio());
  } else {
    std::printf("type:          standard Bloom filter\n");
    std::printf("bits (m):      %zu\n", filter.bloom->num_bits());
    std::printf("hashes (k):    %u\n", filter.bloom->num_hashes());
    std::printf("elements:      %zu\n", filter.bloom->num_elements());
    std::printf("fill ratio:    %.4f\n", filter.bloom->bits().FillRatio());
  }
  return 0;
}

int SelfTest() {
  std::string dir = "/tmp";
  if (const char* env = getenv("TMPDIR"); env != nullptr) dir = env;
  std::string keys_path = dir + "/shbf_cli_selftest_keys.txt";
  std::string filter_path = dir + "/shbf_cli_selftest.shbf";
  {
    std::ofstream keys(keys_path, std::ios::trunc);
    for (int i = 0; i < 1000; ++i) keys << "key-" << i << "\n";
  }
  Options options;
  if (Build(keys_path, filter_path, options) != 0) return 1;
  LoadedFilter filter;
  if (!Load(filter_path, &filter).ok()) return 1;
  for (int i = 0; i < 1000; ++i) {
    if (!filter.Contains("key-" + std::to_string(i))) {
      std::fprintf(stderr, "selftest FAILED: false negative at %d\n", i);
      return 1;
    }
  }
  size_t false_positives = 0;
  for (int i = 0; i < 10000; ++i) {
    false_positives += filter.Contains("absent-" + std::to_string(i));
  }
  if (false_positives > 300) {  // expect ~0.5% at 12 bits/key
    std::fprintf(stderr, "selftest FAILED: FPR too high (%zu/10000)\n",
                 false_positives);
    return 1;
  }
  std::remove(keys_path.c_str());
  std::remove(filter_path.c_str());
  std::printf("selftest OK (FPR %zu/10000)\n", false_positives);
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  if (command == "selftest") return SelfTest();
  if (command == "info" && argc == 3) return Info(argv[2]);
  if (command == "query" && argc == 4) return Query(argv[2], argv[3]);
  if (command == "build" && argc >= 4) {
    Options options;
    for (int i = 4; i < argc; ++i) {
      std::string value;
      if (ParseFlag(argv[i], "bits-per-key", &value)) {
        options.bits_per_key = std::atof(value.c_str());
      } else if (ParseFlag(argv[i], "k", &value)) {
        options.num_hashes = static_cast<uint32_t>(std::atoi(value.c_str()));
      } else if (ParseFlag(argv[i], "type", &value)) {
        options.type = value;
      } else if (ParseFlag(argv[i], "seed", &value)) {
        options.seed = std::strtoull(value.c_str(), nullptr, 0);
      } else {
        std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
        return Usage();
      }
    }
    return Build(argv[2], argv[3], options);
  }
  return Usage();
}

}  // namespace
}  // namespace shbf

int main(int argc, char** argv) { return shbf::Main(argc, argv); }
