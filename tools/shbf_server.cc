// shbf_server — the networked front end: serves filters over the wire
// protocol of docs/serving.md (src/server/). Filters come from serialized
// envelopes (--load) or are built empty from a spec (--build) and filled
// remotely via ADD frames.
//
//   shbf_server [--port=7457] [--bind=127.0.0.1] [--batch=32]
//               [--threads=N] [--max-conns=N] [--legacy-threads]
//               --load=<name>=<path>        (repeatable)
//               --build=<name>=<filter>[,keys=N][,bpk=B][,k=K][,shards=S]
//                                          [,delta=N][,scale]  (repeatable)
//
// Serving model: an epoll event loop plus --threads workers by default
// (C10K-ready, pipelined frames); --legacy-threads selects the original
// thread-per-connection model (byte-identical protocol).
//
// Prints one "serving N filter(s) on <addr>:<port>" line once the socket
// is bound (with --port=0 this is where the ephemeral port appears), then
// blocks until SIGINT/SIGTERM and shuts down cleanly — draining and
// joining every connection thread — so supervisors see exit code 0.
//
// Query it with `shbf_cli remote <addr>:<port> ...` or load-test it with
// `bench_serve_throughput --connect=<addr>:<port>`.

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/filter_registry.h"
#include "core/version.h"
#include "server/server.h"

namespace shbf {
namespace {

/// Self-pipe written by the signal handler; main blocks reading it.
int g_shutdown_pipe[2] = {-1, -1};

void HandleSignal(int) {
  const char byte = 1;
  // write() is async-signal-safe; best effort, the pipe never fills.
  [[maybe_unused]] ssize_t ignored = write(g_shutdown_pipe[1], &byte, 1);
}

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: shbf_server [options] --load=<name>=<path> | "
      "--build=<name>=<filter>[,opts]\n"
      "\n"
      "Serves registry filters over TCP (wire protocol: docs/serving.md).\n"
      "\n"
      "options:\n"
      "  --port=N            TCP port (default 7457; 0 = ephemeral,\n"
      "                      printed on the 'serving' line)\n"
      "  --bind=ADDR         IPv4 bind address (default 127.0.0.1)\n"
      "  --batch=N           engine group size per QUERY frame (default 32)\n"
      "  --threads=N         event-loop worker threads (default 0 = one\n"
      "                      per hardware thread, clamped to [1,8])\n"
      "  --max-conns=N       concurrent-connection ceiling; new sockets\n"
      "                      past it are accepted and closed (default 0 =\n"
      "                      unlimited)\n"
      "  --legacy-threads    serve with the original thread-per-connection\n"
      "                      model instead of the epoll event loop\n"
      "  --load=NAME=PATH    serve the envelope blob at PATH as NAME\n"
      "                      (repeatable; PATH becomes the default\n"
      "                      SNAPSHOT/RELOAD target). PATH=mmap:FILE maps\n"
      "                      a flat filter image instead and serves it\n"
      "                      zero-copy, read-only (docs/persistence.md)\n"
      "  --build=NAME=FILTER[,keys=N][,bpk=B][,k=K][,shards=S][,delta=N]"
      "[,scale]\n"
      "                      serve a freshly built (empty) FILTER as NAME;\n"
      "                      fill it remotely with ADD frames. Options:\n"
      "                      keys (capacity hint, default 1000000),\n"
      "                      bpk (bits/key, default 12), k (hashes),\n"
      "                      shards, delta (dynamic-wrapper budget),\n"
      "                      scale (auto-scaling generations)\n"
      "  --catalog=PATH      serve the SetCatalog blob at PATH behind a\n"
      "                      multiset index: WHICH_SETS answers \"which of\n"
      "                      these sets contain key k\", INDEX_ADD /\n"
      "                      INDEX_DROP maintain it (docs/multiset.md;\n"
      "                      build the blob with shbf_cli multiset build)\n"
      "  --branching=N       children per multiset summary node "
      "(default 8)\n"
      "  --metrics-dump=PATH[,SECONDS]\n"
      "                      write the metrics snapshot (the METRICS opcode\n"
      "                      payload, docs/observability.md) as JSON to PATH\n"
      "                      every SECONDS (default 60) and once at\n"
      "                      shutdown; the file is replaced atomically\n"
      "  --slow-request-ms=N log requests whose handle time exceeds N ms to\n"
      "                      stderr ('[shbf slow] ...'; default 0 = off)\n"
      "  --help              this text\n"
      "  --version           print the version and exit\n"
      "\n"
      "example:\n"
      "  shbf_cli build keys.txt edge.shbf --filter=shbf_m\n"
      "  shbf_server --port=7457 --load=edge=edge.shbf &\n"
      "  shbf_cli remote 127.0.0.1:7457 query edge keys.txt\n"
      "\n"
      "multiset example:\n"
      "  shbf_cli multiset build fleet.shbc eu=eu.txt us=us.txt ap=ap.txt\n"
      "  shbf_server --port=7457 --catalog=fleet.shbc &\n"
      "  shbf_cli remote 127.0.0.1:7457 which-sets keys.txt\n");
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

/// Parses "<name>=<filter>[,keys=N][,bpk=B][,k=K][,shards=S][,delta=N]
/// [,scale]" and builds the (empty) filter.
Status BuildFromSpec(const std::string& arg, std::string* name,
                     std::unique_ptr<MembershipFilter>* out) {
  const size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("--build needs <name>=<filter>: " + arg);
  }
  *name = arg.substr(0, eq);
  std::string rest = arg.substr(eq + 1);
  std::string filter_name = rest;
  size_t expected_keys = 1000000;
  double bits_per_key = 12.0;
  uint32_t num_hashes = 8;
  uint32_t shards = 1;
  size_t delta = 0;
  bool scale = false;
  const size_t comma = rest.find(',');
  if (comma != std::string::npos) {
    filter_name = rest.substr(0, comma);
    std::string opts = rest.substr(comma + 1);
    while (!opts.empty()) {
      const size_t next = opts.find(',');
      std::string opt = opts.substr(0, next);
      opts = next == std::string::npos ? "" : opts.substr(next + 1);
      const size_t opt_eq = opt.find('=');
      const std::string key = opt.substr(0, opt_eq);
      const std::string value =
          opt_eq == std::string::npos ? "" : opt.substr(opt_eq + 1);
      if (key == "keys") {
        expected_keys = std::strtoull(value.c_str(), nullptr, 0);
      } else if (key == "bpk") {
        bits_per_key = std::atof(value.c_str());
      } else if (key == "k") {
        num_hashes = static_cast<uint32_t>(std::atoi(value.c_str()));
      } else if (key == "shards") {
        shards = static_cast<uint32_t>(std::atoi(value.c_str()));
      } else if (key == "delta") {
        delta = std::strtoull(value.c_str(), nullptr, 0);
      } else if (key == "scale") {
        scale = true;
      } else {
        return Status::InvalidArgument("--build: unknown option '" + key +
                                       "'");
      }
    }
  }
  FilterSpec spec =
      FilterSpec::ForKeys(expected_keys, bits_per_key, num_hashes);
  spec.max_count = 8;
  spec.shards = shards;
  spec.delta_capacity = delta;
  spec.auto_scale = scale;
  return FilterRegistry::Global().Create(filter_name, spec, out);
}

/// Background writer for --metrics-dump: every `interval_seconds` (and once
/// more at destruction, after the server drained) it serializes
/// CollectMetrics() to JSON and atomically replaces `path` (write-to-temp +
/// rename, so a scraper mid-read never sees a torn file).
class MetricsDumper {
 public:
  MetricsDumper(const ShbfServer& server, std::string path,
                int interval_seconds)
      : server_(server),
        path_(std::move(path)),
        interval_(interval_seconds < 1 ? 1 : interval_seconds) {
    thread_ = std::thread([this] { Run(); });
  }

  ~MetricsDumper() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    // The final snapshot, after Stop() drained, so shutdown-time counters
    // land in the file supervisors collect.
    WriteOnce();
  }

 private:
  void Run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      if (cv_.wait_for(lock, std::chrono::seconds(interval_),
                       [this] { return stop_; })) {
        break;
      }
      lock.unlock();
      WriteOnce();
      lock.lock();
    }
  }

  void WriteOnce() {
    const std::string json = server_.CollectMetrics().ToJson();
    const std::string tmp = path_ + ".tmp";
    std::FILE* file = std::fopen(tmp.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "warning: --metrics-dump: cannot write %s\n",
                   tmp.c_str());
      return;
    }
    std::fwrite(json.data(), 1, json.size(), file);
    std::fclose(file);
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
      std::fprintf(stderr, "warning: --metrics-dump: cannot rename to %s\n",
                   path_.c_str());
    }
  }

  const ShbfServer& server_;
  const std::string path_;
  const int interval_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

int Main(int argc, char** argv) {
  ServerOptions options;
  options.port = 7457;
  std::string metrics_dump_path;
  int metrics_dump_interval = 60;
  std::vector<std::pair<std::string, std::string>> loads;   // name, path
  std::vector<std::string> builds;                          // raw --build args
  std::string catalog_path;
  MultiSetIndexOptions index_options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      PrintUsage(stdout);
      return 0;
    }
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("shbf_server %s (protocol v%u)\n", kShbfVersion,
                  wire::kProtocolVersion);
      return 0;
    }
    if (ParseFlag(argv[i], "port", &value)) {
      const unsigned long port = std::strtoul(value.c_str(), nullptr, 0);
      if (port > 65535) {
        std::fprintf(stderr, "error: --port=%s is out of range (0-65535)\n",
                     value.c_str());
        return 2;
      }
      options.port = static_cast<uint16_t>(port);
    } else if (ParseFlag(argv[i], "bind", &value)) {
      options.bind_address = value;
    } else if (ParseFlag(argv[i], "batch", &value)) {
      options.batch_size = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "threads", &value)) {
      options.num_workers = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "max-conns", &value)) {
      options.max_connections = std::strtoull(value.c_str(), nullptr, 0);
    } else if (std::strcmp(argv[i], "--legacy-threads") == 0) {
      options.legacy_threads = true;
    } else if (ParseFlag(argv[i], "load", &value)) {
      const size_t eq = value.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == value.size()) {
        std::fprintf(stderr, "error: --load needs <name>=<path>\n");
        return 2;
      }
      loads.emplace_back(value.substr(0, eq), value.substr(eq + 1));
    } else if (ParseFlag(argv[i], "build", &value)) {
      builds.push_back(value);
    } else if (ParseFlag(argv[i], "catalog", &value)) {
      if (!catalog_path.empty()) {
        std::fprintf(stderr, "error: --catalog may be given once\n");
        return 2;
      }
      catalog_path = value;
    } else if (ParseFlag(argv[i], "branching", &value)) {
      index_options.branching = std::strtoull(value.c_str(), nullptr, 0);
    } else if (ParseFlag(argv[i], "metrics-dump", &value)) {
      const size_t comma = value.find(',');
      metrics_dump_path = value.substr(0, comma);
      if (comma != std::string::npos) {
        metrics_dump_interval = std::atoi(value.c_str() + comma + 1);
        if (metrics_dump_interval < 1) {
          std::fprintf(stderr,
                       "error: --metrics-dump interval must be >= 1s\n");
          return 2;
        }
      }
      if (metrics_dump_path.empty()) {
        std::fprintf(stderr,
                     "error: --metrics-dump needs PATH[,SECONDS]\n");
        return 2;
      }
    } else if (ParseFlag(argv[i], "slow-request-ms", &value)) {
      options.slow_request_ms = std::atoi(value.c_str());
    } else {
      std::fprintf(stderr, "error: unknown flag %s\n", argv[i]);
      PrintUsage(stderr);
      return 2;
    }
  }
  if (loads.empty() && builds.empty() && catalog_path.empty()) {
    std::fprintf(stderr,
                 "error: nothing to serve (--load, --build or --catalog)\n");
    PrintUsage(stderr);
    return 2;
  }

  ShbfServer server(options);
  for (const auto& [name, path] : loads) {
    Status s = server.LoadFilter(name, path);
    if (!s.ok()) {
      std::fprintf(stderr, "error: --load=%s=%s: %s\n", name.c_str(),
                   path.c_str(), s.ToString().c_str());
      return 1;
    }
    std::printf("loaded '%s' from %s\n", name.c_str(), path.c_str());
  }
  for (const auto& build : builds) {
    std::string name;
    std::unique_ptr<MembershipFilter> filter;
    Status s = BuildFromSpec(build, &name, &filter);
    if (s.ok()) {
      std::printf("built '%s' (%s, %zu bytes)\n", name.c_str(),
                  std::string(filter->name()).c_str(),
                  filter->memory_bytes());
      s = server.RegisterFilter(name, std::move(filter));
    }
    if (!s.ok()) {
      std::fprintf(stderr, "error: --build=%s: %s\n", build.c_str(),
                   s.ToString().c_str());
      return 1;
    }
  }

  if (!catalog_path.empty()) {
    Status s = server.LoadCatalog(catalog_path, index_options);
    if (!s.ok()) {
      std::fprintf(stderr, "error: --catalog=%s: %s\n", catalog_path.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::printf("serving multiset catalog from %s\n", catalog_path.c_str());
  }

  if (pipe(g_shutdown_pipe) != 0) {
    std::fprintf(stderr, "error: cannot create shutdown pipe\n");
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<MetricsDumper> dumper;
  if (!metrics_dump_path.empty()) {
    dumper = std::make_unique<MetricsDumper>(server, metrics_dump_path,
                                             metrics_dump_interval);
    std::printf("dumping metrics to %s every %ds\n",
                metrics_dump_path.c_str(), metrics_dump_interval);
  }
  std::printf(
      "serving %zu filter(s)%s on %s:%u (protocol v%u, %s, pid %d)\n",
      loads.size() + builds.size(),
      catalog_path.empty() ? "" : " + 1 multiset catalog",
      options.bind_address.c_str(), server.port(), wire::kProtocolVersion,
      options.legacy_threads ? "legacy threads" : "epoll", getpid());
  std::fflush(stdout);

  char byte;
  while (read(g_shutdown_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  // Drain first, then read the counters, so frames answered during the
  // drain show up in the summary (and in the dumper's final snapshot).
  server.Stop();
  dumper.reset();
  const ShbfServer::Counters counters = server.counters();
  std::printf("shut down cleanly: %llu connection(s), %llu frame(s), "
              "%llu key(s) queried, %llu protocol error(s)\n",
              static_cast<unsigned long long>(counters.connections),
              static_cast<unsigned long long>(counters.frames),
              static_cast<unsigned long long>(counters.keys_queried),
              static_cast<unsigned long long>(counters.protocol_errors));
  return 0;
}

}  // namespace
}  // namespace shbf

int main(int argc, char** argv) { return shbf::Main(argc, argv); }
