#include "analysis/membership_theory.h"

#include <cmath>

#include "analysis/numeric.h"
#include "core/check.h"

namespace shbf::theory {

double ZeroBitProb(size_t num_bits, size_t num_elements, double num_hashes) {
  SHBF_CHECK(num_bits > 0);
  return std::exp(-static_cast<double>(num_elements) * num_hashes / num_bits);
}

double BloomFpr(size_t num_bits, size_t num_elements, double num_hashes) {
  double p = ZeroBitProb(num_bits, num_elements, num_hashes);
  return std::pow(1.0 - p, num_hashes);
}

double BloomOptimalK(size_t num_bits, size_t num_elements) {
  SHBF_CHECK(num_elements > 0);
  return static_cast<double>(num_bits) / num_elements * std::log(2.0);
}

double BloomMinFpr(size_t num_bits, size_t num_elements) {
  // (1/2)^{(m/n)·ln 2} = 0.6185^{m/n} (Eq (9)).
  double ratio = static_cast<double>(num_bits) / num_elements;
  return std::pow(0.5, ratio * std::log(2.0));
}

double ShbfMFpr(size_t num_bits, size_t num_elements, double num_hashes,
                uint32_t max_offset_span) {
  SHBF_CHECK(max_offset_span >= 2);
  double p = ZeroBitProb(num_bits, num_elements, num_hashes);
  double first = 1.0 - p;                                      // base bit set
  double second = 1.0 - p + p * p / (max_offset_span - 1.0);   // shifted bit
  return std::pow(first, num_hashes / 2.0) *
         std::pow(second, num_hashes / 2.0);
}

double ShbfMOptimalK(size_t num_bits, size_t num_elements,
                     uint32_t max_offset_span) {
  // The FPR is unimodal in k; bracket generously around the BF optimum.
  double k_bloom = BloomOptimalK(num_bits, num_elements);
  double hi = std::max(4.0, 2.5 * k_bloom);
  return MinimizeGoldenSection(
      [&](double k) {
        return ShbfMFpr(num_bits, num_elements, k, max_offset_span);
      },
      0.01, hi);
}

double ShbfMMinFpr(size_t num_bits, size_t num_elements,
                   uint32_t max_offset_span) {
  double k = ShbfMOptimalK(num_bits, num_elements, max_offset_span);
  return ShbfMFpr(num_bits, num_elements, k, max_offset_span);
}

double BloomMinFprBase() {
  // 0.5^{ln 2} ≈ 0.6185.
  return std::pow(0.5, std::log(2.0));
}

double ShbfMMinFprBase(uint32_t max_offset_span) {
  // min FPR = base^{m/n}; recover the base from a reference ratio. The ratio
  // cancels out (the optimum k scales linearly in m/n), so any moderately
  // large reference works; 20 matches the paper's operating range.
  constexpr size_t kRefBits = 20000;
  constexpr size_t kRefElements = 1000;
  double min_fpr = ShbfMMinFpr(kRefBits, kRefElements, max_offset_span);
  return std::pow(min_fpr, static_cast<double>(kRefElements) / kRefBits);
}

}  // namespace shbf::theory
