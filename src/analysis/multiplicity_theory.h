// Closed-form multiplicity-query analysis (paper §5.4, Eqs (26)–(28)).

#ifndef SHBF_ANALYSIS_MULTIPLICITY_THEORY_H_
#define SHBF_ANALYSIS_MULTIPLICITY_THEORY_H_

#include <cstddef>
#include <cstdint>

namespace shbf::theory {

/// Eq (26): f0 = (1 − e^{−kn/m})^k — the probability one *wrong* count value
/// shows up as an all-ones candidate (n = number of DISTINCT elements; each
/// element sets only k bits regardless of multiplicity).
double FalseCandidateProb(size_t num_bits, size_t num_distinct,
                          double num_hashes);

/// Eq (27): correctness rate for a non-member: no candidate may appear at
/// any of the c positions ⇒ (1 − f0)^c.
double CorrectnessRateNonMember(size_t num_bits, size_t num_distinct,
                                double num_hashes, uint32_t max_count);

/// Eq (28): correctness rate for a member with multiplicity j:
/// (1 − f0)^{j−1}. NOTE (DESIGN.md §4 item 5): this counts false candidates at
/// positions BELOW j, i.e. the smallest-candidate policy; the paper's prose
/// says "largest". CorrectnessRateMemberLargest gives the (1 − f0)^{c−j}
/// counterpart for the largest-candidate policy.
double CorrectnessRateMember(size_t num_bits, size_t num_distinct,
                             double num_hashes, uint32_t multiplicity);

double CorrectnessRateMemberLargest(size_t num_bits, size_t num_distinct,
                                    double num_hashes, uint32_t multiplicity,
                                    uint32_t max_count);

/// Average of Eq (28) over multiplicities drawn uniformly from [1, c] — the
/// expected correctness rate of the Fig 11(a) member workload.
double ExpectedCorrectnessRateUniform(size_t num_bits, size_t num_distinct,
                                      double num_hashes, uint32_t max_count);

}  // namespace shbf::theory

#endif  // SHBF_ANALYSIS_MULTIPLICITY_THEORY_H_
