// Small numeric utilities for the closed-form analyses: the paper computes
// optimal k values "using standard numerical methods" (§3.4.2); we use
// golden-section search on the (unimodal) FPR curves.

#ifndef SHBF_ANALYSIS_NUMERIC_H_
#define SHBF_ANALYSIS_NUMERIC_H_

#include <functional>

namespace shbf {

/// Minimizes a unimodal `f` over [lo, hi] by golden-section search; returns
/// the argmin with absolute tolerance `tol`.
double MinimizeGoldenSection(const std::function<double(double)>& f, double lo,
                             double hi, double tol = 1e-9);

}  // namespace shbf

#endif  // SHBF_ANALYSIS_NUMERIC_H_
