#include "analysis/multiplicity_theory.h"

#include <cmath>

#include "analysis/membership_theory.h"
#include "core/check.h"

namespace shbf::theory {

double FalseCandidateProb(size_t num_bits, size_t num_distinct,
                          double num_hashes) {
  double p = ZeroBitProb(num_bits, num_distinct, num_hashes);
  return std::pow(1.0 - p, num_hashes);
}

double CorrectnessRateNonMember(size_t num_bits, size_t num_distinct,
                                double num_hashes, uint32_t max_count) {
  double f0 = FalseCandidateProb(num_bits, num_distinct, num_hashes);
  return std::pow(1.0 - f0, max_count);
}

double CorrectnessRateMember(size_t num_bits, size_t num_distinct,
                             double num_hashes, uint32_t multiplicity) {
  SHBF_CHECK(multiplicity >= 1);
  double f0 = FalseCandidateProb(num_bits, num_distinct, num_hashes);
  return std::pow(1.0 - f0, multiplicity - 1.0);
}

double CorrectnessRateMemberLargest(size_t num_bits, size_t num_distinct,
                                    double num_hashes, uint32_t multiplicity,
                                    uint32_t max_count) {
  SHBF_CHECK(multiplicity >= 1 && multiplicity <= max_count);
  double f0 = FalseCandidateProb(num_bits, num_distinct, num_hashes);
  return std::pow(1.0 - f0, static_cast<double>(max_count - multiplicity));
}

double ExpectedCorrectnessRateUniform(size_t num_bits, size_t num_distinct,
                                      double num_hashes, uint32_t max_count) {
  SHBF_CHECK(max_count >= 1);
  double total = 0.0;
  for (uint32_t j = 1; j <= max_count; ++j) {
    total += CorrectnessRateMember(num_bits, num_distinct, num_hashes, j);
  }
  return total / max_count;
}

}  // namespace shbf::theory
