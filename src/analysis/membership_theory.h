// Closed-form membership-query analysis (paper §3.4–3.5).
//
// All formulas use Bloom's classical independence approximation, as the
// paper does (it argues, citing Bose et al. and Christensen et al., that the
// error is negligible for these parameter ranges). k is treated as a real
// number so the optima can be located by continuous minimization.

#ifndef SHBF_ANALYSIS_MEMBERSHIP_THEORY_H_
#define SHBF_ANALYSIS_MEMBERSHIP_THEORY_H_

#include <cstddef>
#include <cstdint>

namespace shbf::theory {

/// p = e^{−nk/m}: the asymptotic probability a bit stays 0 after n inserts.
double ZeroBitProb(size_t num_bits, size_t num_elements, double num_hashes);

/// Standard BF false-positive rate, Eq (8): (1 − e^{−nk/m})^k.
double BloomFpr(size_t num_bits, size_t num_elements, double num_hashes);

/// k* = (m/n)·ln 2 (continuous).
double BloomOptimalK(size_t num_bits, size_t num_elements);

/// Minimum BF FPR, Eq (9): 0.6185^{m/n}.
double BloomMinFpr(size_t num_bits, size_t num_elements);

/// ShBF_M false-positive rate, Eq (1):
///   (1 − p)^{k/2} · (1 − p + p²/(w̄ − 1))^{k/2},  p = e^{−nk/m}.
/// As w̄ → ∞ this converges to BloomFpr.
double ShbfMFpr(size_t num_bits, size_t num_elements, double num_hashes,
                uint32_t max_offset_span);

/// Continuous k minimizing ShbfMFpr (numerical, §3.4.2; ≈ 0.7009·m/n for
/// w̄ = 57).
double ShbfMOptimalK(size_t num_bits, size_t num_elements,
                     uint32_t max_offset_span);

/// Minimum ShBF_M FPR at the optimal k (Eq (7): ≈ 0.6204^{m/n} for w̄ = 57).
double ShbfMMinFpr(size_t num_bits, size_t num_elements,
                   uint32_t max_offset_span);

/// The constants of Eq (7)/(9): minimum FPR = base^{m/n}. For BF the base is
/// 0.6185; for ShBF_M with w̄ = 57 the paper reports 0.6204. Computed here
/// numerically from the formulas rather than hard-coded.
double BloomMinFprBase();
double ShbfMMinFprBase(uint32_t max_offset_span);

}  // namespace shbf::theory

#endif  // SHBF_ANALYSIS_MEMBERSHIP_THEORY_H_
