// Closed-form association-query analysis (paper §4.4–4.5, Eq (25), Table 2).

#ifndef SHBF_ANALYSIS_ASSOCIATION_THEORY_H_
#define SHBF_ANALYSIS_ASSOCIATION_THEORY_H_

#include <cstddef>
#include <cstdint>

namespace shbf::theory {

/// Probability that a *spurious* k-bit pattern is all ones, given the
/// probability q that any single bit is 1. At the optimal load q = 1/2 and
/// this is 0.5^k.
double SpuriousPatternProb(double one_bit_prob, double num_hashes);

/// Eq (25) at optimal load (q = 1/2), outcome ∈ [1, 7]:
///   P1 = P2 = P3 = (1 − 0.5^k)²,
///   P4 = P5 = P6 = 0.5^k · (1 − 0.5^k),
///   P7 = (0.5^k)².
double ShbfAOutcomeProb(int outcome, double num_hashes);

/// Probability ShBF_A returns a clear answer (outcomes 1–3) for an element
/// of S1 ∪ S2: (1 − 0.5^k)² at optimal load (Table 2).
double ShbfAClearAnswerProb(double num_hashes);

/// Same, with explicit load: q = 1 − (1 − 1/m)^{k·n_union}.
double ShbfAClearAnswerProbGeneral(size_t num_bits, size_t n_union,
                                   double num_hashes);

/// Probability iBF returns a clear answer under uniform hits over the three
/// parts: (2/3)(1 − 0.5^k) at optimal sizing (Table 2) — only the two
/// "exactly one filter positive" answers are authoritative.
double IbfClearAnswerProb(double num_hashes);

/// Same, with explicit per-filter false-positive rates f1, f2.
double IbfClearAnswerProbGeneral(double fpr1, double fpr2);

}  // namespace shbf::theory

#endif  // SHBF_ANALYSIS_ASSOCIATION_THEORY_H_
