#include "analysis/numeric.h"

#include <cmath>

#include "core/check.h"

namespace shbf {

double MinimizeGoldenSection(const std::function<double(double)>& f, double lo,
                             double hi, double tol) {
  SHBF_CHECK(lo < hi);
  const double inv_phi = (std::sqrt(5.0) - 1.0) / 2.0;   // 1/φ
  const double inv_phi2 = (3.0 - std::sqrt(5.0)) / 2.0;  // 1/φ²
  double a = lo;
  double b = hi;
  double h = b - a;
  double c = a + inv_phi2 * h;
  double d = a + inv_phi * h;
  double fc = f(c);
  double fd = f(d);
  while (h > tol) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      h = b - a;
      c = a + inv_phi2 * h;
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      h = b - a;
      d = a + inv_phi * h;
      fd = f(d);
    }
  }
  return (a + b) / 2.0;
}

}  // namespace shbf
