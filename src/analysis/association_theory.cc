#include "analysis/association_theory.h"

#include <cmath>

#include "core/check.h"

namespace shbf::theory {

double SpuriousPatternProb(double one_bit_prob, double num_hashes) {
  return std::pow(one_bit_prob, num_hashes);
}

double ShbfAOutcomeProb(int outcome, double num_hashes) {
  SHBF_CHECK(outcome >= 1 && outcome <= 7);
  double x = std::pow(0.5, num_hashes);  // spurious pattern probability
  if (outcome <= 3) return (1.0 - x) * (1.0 - x);
  if (outcome <= 6) return x * (1.0 - x);
  return x * x;
}

double ShbfAClearAnswerProb(double num_hashes) {
  double x = std::pow(0.5, num_hashes);
  return (1.0 - x) * (1.0 - x);
}

double ShbfAClearAnswerProbGeneral(size_t num_bits, size_t n_union,
                                   double num_hashes) {
  SHBF_CHECK(num_bits > 0);
  // Eq (24): p′ = (1 − 1/m)^{k·n′}; a spurious pattern needs its k bits set.
  double p_zero = std::pow(1.0 - 1.0 / static_cast<double>(num_bits),
                           num_hashes * static_cast<double>(n_union));
  double x = std::pow(1.0 - p_zero, num_hashes);
  return (1.0 - x) * (1.0 - x);
}

double IbfClearAnswerProb(double num_hashes) {
  double f = std::pow(0.5, num_hashes);
  return 2.0 / 3.0 * (1.0 - f);
}

double IbfClearAnswerProbGeneral(double fpr1, double fpr2) {
  // Uniform over the three parts. S1−S2 queries are clear iff BF2 does not
  // fire (1 − f2); S2−S1 symmetric; intersection answers are never clear.
  return ((1.0 - fpr2) + (1.0 - fpr1)) / 3.0;
}

}  // namespace shbf::theory
