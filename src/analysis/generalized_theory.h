// Closed-form analysis of the generalized (t-shift) ShBF_M, paper §3.6–3.7,
// Eqs (10)–(12)/(20)–(21).

#ifndef SHBF_ANALYSIS_GENERALIZED_THEORY_H_
#define SHBF_ANALYSIS_GENERALIZED_THEORY_H_

#include <cstddef>
#include <cstdint>

namespace shbf::theory {

/// FPR of the generalized ShBF_M with t shifting operations:
///   f = (1 − p′)^{k/(t+1)} · f_group^{k/(t+1)}               (Eq 11/21)
/// where p′ = e^{−kn/m} and f_group is Eq (12)/(20):
///   f_group = (1/t)·(1 − p′)²·(A^t − B^t)/(A − B) + p′·B^t,
///   A = 1 − p′,  B = 1 − p′·(w̄ − 1 − t)/(w̄ − 1).
/// For t = 1 this reduces exactly to ShbfMFpr; as w̄ → ∞ it reduces to the
/// standard Bloom formula.
double GeneralizedShbfFpr(size_t num_bits, size_t num_elements,
                          double num_hashes, uint32_t max_offset_span,
                          uint32_t num_shifts);

}  // namespace shbf::theory

#endif  // SHBF_ANALYSIS_GENERALIZED_THEORY_H_
