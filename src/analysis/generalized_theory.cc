#include "analysis/generalized_theory.h"

#include <cmath>

#include "analysis/membership_theory.h"
#include "core/check.h"

namespace shbf::theory {

double GeneralizedShbfFpr(size_t num_bits, size_t num_elements,
                          double num_hashes, uint32_t max_offset_span,
                          uint32_t num_shifts) {
  SHBF_CHECK(num_shifts >= 1);
  SHBF_CHECK(max_offset_span >= num_shifts + 1);
  const double t = num_shifts;
  const double p = ZeroBitProb(num_bits, num_elements, num_hashes);
  const double a = 1.0 - p;  // probability a given bit is 1
  const double b =
      1.0 - p * (max_offset_span - 1.0 - t) / (max_offset_span - 1.0);

  // (A^t − B^t)/(A − B); the difference is tiny, so expand as a geometric
  // sum to avoid catastrophic cancellation: Σ_{i=0}^{t−1} A^i B^{t−1−i}.
  double geometric_sum = 0.0;
  for (uint32_t i = 0; i < num_shifts; ++i) {
    geometric_sum += std::pow(a, i) * std::pow(b, t - 1.0 - i);
  }

  double f_group = (1.0 / t) * a * a * geometric_sum + p * std::pow(b, t);
  double exponent = num_hashes / (t + 1.0);
  return std::pow(a, exponent) * std::pow(f_group, exponent);
}

}  // namespace shbf::theory
