#include "baselines/spectral_bloom_filter.h"

#include <algorithm>

namespace shbf {

Status SpectralBloomFilter::Params::Validate() const {
  if (num_counters == 0) {
    return Status::InvalidArgument("SpectralBF: num_counters must be > 0");
  }
  if (num_hashes == 0) {
    return Status::InvalidArgument("SpectralBF: num_hashes must be > 0");
  }
  if (counter_bits < 1 || counter_bits > 32) {
    return Status::InvalidArgument("SpectralBF: counter_bits must be in [1,32]");
  }
  return Status::Ok();
}

SpectralBloomFilter::SpectralBloomFilter(const Params& params)
    : family_(params.hash_algorithm, params.num_hashes, params.seed),
      counters_(params.num_counters, params.counter_bits),
      policy_(params.policy) {
  CheckOk(params.Validate());
}

void SpectralBloomFilter::Insert(std::string_view key) {
  const size_t m = counters_.num_counters();
  const uint32_t k = family_.num_functions();
  if (policy_ == InsertPolicy::kIncrementAll) {
    for (uint32_t i = 0; i < k; ++i) {
      counters_.Increment(family_.Hash(i, key) % m);
    }
    return;
  }
  // Minimum increase: bump only the counters currently at the minimum.
  uint64_t min_value = ~0ull;
  size_t indices[64];
  SHBF_CHECK(k <= 64) << "SpectralBF: num_hashes too large";
  for (uint32_t i = 0; i < k; ++i) {
    indices[i] = family_.Hash(i, key) % m;
    min_value = std::min(min_value, counters_.Get(indices[i]));
  }
  for (uint32_t i = 0; i < k; ++i) {
    // A position may be shared by two hash functions of the same key; the
    // re-check against min_value keeps the increment idempotent per slot.
    if (counters_.Get(indices[i]) == min_value) {
      counters_.Increment(indices[i]);
    }
  }
}

void SpectralBloomFilter::Delete(std::string_view key) {
  SHBF_CHECK(policy_ == InsertPolicy::kIncrementAll)
      << "SpectralBF: deletes are only supported under kIncrementAll (§2.3)";
  const size_t m = counters_.num_counters();
  for (uint32_t i = 0; i < family_.num_functions(); ++i) {
    counters_.Decrement(family_.Hash(i, key) % m);
  }
}

uint64_t SpectralBloomFilter::QueryCount(std::string_view key) const {
  const size_t m = counters_.num_counters();
  uint64_t min_value = ~0ull;
  for (uint32_t i = 0; i < family_.num_functions(); ++i) {
    min_value = std::min(min_value, counters_.Get(family_.Hash(i, key) % m));
    if (min_value == 0) return 0;  // cannot go lower; early exit
  }
  return min_value;
}

uint64_t SpectralBloomFilter::QueryCountWithStats(std::string_view key,
                                                  QueryStats* stats) const {
  const size_t m = counters_.num_counters();
  ++stats->queries;
  uint64_t min_value = ~0ull;
  for (uint32_t i = 0; i < family_.num_functions(); ++i) {
    ++stats->hash_computations;
    ++stats->memory_accesses;
    min_value = std::min(min_value, counters_.Get(family_.Hash(i, key) % m));
    if (min_value == 0) return 0;
  }
  return min_value;
}

std::string SpectralBloomFilter::ToBytes() const {
  ByteWriter writer;
  serde::WriteHeader(&writer, serde::StructureTag::kSpectralBloomFilter);
  writer.PutU64(counters_.num_counters());
  writer.PutU32(family_.num_functions());
  writer.PutU32(counters_.bits_per_counter());
  writer.PutU8(static_cast<uint8_t>(policy_));
  writer.PutU8(static_cast<uint8_t>(family_.algorithm()));
  writer.PutU64(family_.master_seed());
  counters_.AppendPayload(&writer);
  return writer.Take();
}

Status SpectralBloomFilter::FromBytes(
    std::string_view bytes, std::optional<SpectralBloomFilter>* out) {
  ByteReader reader(bytes);
  Status header =
      serde::ReadHeader(&reader, serde::StructureTag::kSpectralBloomFilter);
  if (!header.ok()) return header;
  uint64_t num_counters = 0;
  uint32_t num_hashes = 0;
  uint32_t counter_bits = 0;
  uint8_t policy = 0;
  uint8_t alg = 0;
  uint64_t seed = 0;
  if (!reader.GetU64(&num_counters) || !reader.GetU32(&num_hashes) ||
      !reader.GetU32(&counter_bits) || !reader.GetU8(&policy) ||
      !reader.GetU8(&alg) || !reader.GetU64(&seed)) {
    return Status::InvalidArgument("SpectralBF: truncated parameter block");
  }
  if (alg > 3) return Status::InvalidArgument("SpectralBF: unknown hash id");
  if (policy > 1) return Status::InvalidArgument("SpectralBF: unknown policy");
  Params params{.num_counters = num_counters,
                .num_hashes = num_hashes,
                .counter_bits = counter_bits,
                .policy = static_cast<InsertPolicy>(policy),
                .hash_algorithm = static_cast<HashAlgorithm>(alg),
                .seed = seed};
  Status valid = params.Validate();
  if (!valid.ok()) return valid;
  out->emplace(params);
  if (!(*out)->counters_.ReadPayload(&reader) || !reader.AtEnd()) {
    out->reset();
    return Status::InvalidArgument("SpectralBF: payload size mismatch");
  }
  return Status::Ok();
}

}  // namespace shbf
