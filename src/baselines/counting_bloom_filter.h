// Counting Bloom filter (Fan et al., ToN 2000) — replaces each bit with a
// small counter so elements can be deleted (§1.1). Used standalone and as the
// "array C in DRAM" half of the paper's SRAM/DRAM update architecture.

#ifndef SHBF_BASELINES_COUNTING_BLOOM_FILTER_H_
#define SHBF_BASELINES_COUNTING_BLOOM_FILTER_H_

#include <optional>
#include <string>
#include <string_view>

#include "core/packed_counter_array.h"
#include "core/query_stats.h"
#include "core/serde.h"
#include "core/status.h"
#include "hash/hash_family.h"

namespace shbf {

class CountingBloomFilter {
 public:
  struct Params {
    size_t num_counters = 0;   ///< m (one counter per Bloom bit)
    uint32_t num_hashes = 0;   ///< k
    uint32_t counter_bits = 4; ///< §3.3: "4 bits for a counter are enough"
    HashAlgorithm hash_algorithm = HashAlgorithm::kMurmur3;
    uint64_t seed = 0x5eed5eed5eed5eedull;

    Status Validate() const;
  };

  explicit CountingBloomFilter(const Params& params);

  /// Increments the k counters of `key`.
  void Insert(std::string_view key);

  /// Decrements the k counters of `key`. Deleting a key that was never
  /// inserted is a caller bug and CHECK-fails on underflow.
  void Delete(std::string_view key);

  /// True iff all k counters are >= 1 (no false negatives while every
  /// inserted element is still present).
  bool Contains(std::string_view key) const;
  bool ContainsWithStats(std::string_view key, QueryStats* stats) const;

  size_t num_counters() const { return counters_.num_counters(); }
  uint32_t num_hashes() const { return family_.num_functions(); }
  const PackedCounterArray& counters() const { return counters_; }
  void Clear() { counters_.Clear(); }

  /// Serializes parameters + counter payload to a versioned byte blob.
  std::string ToBytes() const;

  /// Reconstructs a filter that answers identically to the serialized one.
  static Status FromBytes(std::string_view bytes,
                          std::optional<CountingBloomFilter>* out);

 private:
  HashFamily family_;
  PackedCounterArray counters_;
};

}  // namespace shbf

#endif  // SHBF_BASELINES_COUNTING_BLOOM_FILTER_H_
