#include "baselines/one_mem_bf.h"

#include "core/bits.h"

namespace shbf {

Status OneMemBloomFilter::Params::Validate() const {
  if (num_bits == 0) {
    return Status::InvalidArgument("1MemBF: num_bits must be positive");
  }
  if (num_hashes == 0) {
    return Status::InvalidArgument("1MemBF: num_hashes must be positive");
  }
  if (!IsPowerOfTwo(word_bits) || word_bits > 64 || word_bits < 8) {
    return Status::InvalidArgument(
        "1MemBF: word_bits must be a power of two in [8, 64]");
  }
  return Status::Ok();
}

OneMemBloomFilter::OneMemBloomFilter(const Params& params)
    : family_(params.hash_algorithm, params.num_hashes + 1, params.seed),
      num_hashes_(params.num_hashes),
      word_bits_(params.word_bits),
      num_words_(CeilDiv(params.num_bits, params.word_bits)) {
  CheckOk(params.Validate());
  words_.assign(num_words_, 0);
}

std::pair<size_t, uint64_t> OneMemBloomFilter::WordAndMask(
    std::string_view key) const {
  size_t word = family_.Hash(0, key) % num_words_;
  uint64_t mask = 0;
  for (uint32_t i = 1; i <= num_hashes_; ++i) {
    mask |= 1ull << (family_.Hash(i, key) & (word_bits_ - 1));
  }
  return {word, mask};
}

void OneMemBloomFilter::Add(std::string_view key) {
  auto [word, mask] = WordAndMask(key);
  words_[word] |= mask;
}

bool OneMemBloomFilter::Contains(std::string_view key) const {
  auto [word, mask] = WordAndMask(key);
  return (words_[word] & mask) == mask;
}

bool OneMemBloomFilter::ContainsWithStats(std::string_view key,
                                          QueryStats* stats) const {
  ++stats->queries;
  stats->hash_computations += num_hashes_ + 1;
  ++stats->memory_accesses;  // the scheme's whole point: one word load
  return Contains(key);
}

void OneMemBloomFilter::Clear() {
  std::fill(words_.begin(), words_.end(), 0);
}

std::string OneMemBloomFilter::ToBytes() const {
  ByteWriter writer;
  serde::WriteHeader(&writer, serde::StructureTag::kOneMemBloomFilter);
  writer.PutU64(num_words_ * word_bits_);
  writer.PutU32(num_hashes_);
  writer.PutU32(word_bits_);
  writer.PutU8(static_cast<uint8_t>(family_.algorithm()));
  writer.PutU64(family_.master_seed());
  for (uint64_t word : words_) writer.PutU64(word);
  return writer.Take();
}

Status OneMemBloomFilter::FromBytes(std::string_view bytes,
                                    std::optional<OneMemBloomFilter>* out) {
  ByteReader reader(bytes);
  Status header =
      serde::ReadHeader(&reader, serde::StructureTag::kOneMemBloomFilter);
  if (!header.ok()) return header;
  uint64_t num_bits = 0;
  uint32_t num_hashes = 0;
  uint32_t word_bits = 0;
  uint8_t alg = 0;
  uint64_t seed = 0;
  if (!reader.GetU64(&num_bits) || !reader.GetU32(&num_hashes) ||
      !reader.GetU32(&word_bits) || !reader.GetU8(&alg) ||
      !reader.GetU64(&seed)) {
    return Status::InvalidArgument("1MemBF: truncated parameter block");
  }
  if (alg > 3) return Status::InvalidArgument("1MemBF: unknown hash id");
  Params params{.num_bits = num_bits,
                .num_hashes = num_hashes,
                .word_bits = word_bits,
                .hash_algorithm = static_cast<HashAlgorithm>(alg),
                .seed = seed};
  Status valid = params.Validate();
  if (!valid.ok()) return valid;
  out->emplace(params);
  for (uint64_t& word : (*out)->words_) {
    if (!reader.GetU64(&word)) {
      out->reset();
      return Status::InvalidArgument("1MemBF: truncated word payload");
    }
  }
  if (!reader.AtEnd()) {
    out->reset();
    return Status::InvalidArgument("1MemBF: payload size mismatch");
  }
  return Status::Ok();
}

}  // namespace shbf
