#include "baselines/one_mem_bf.h"

#include "core/bits.h"

namespace shbf {

Status OneMemBloomFilter::Params::Validate() const {
  if (num_bits == 0) {
    return Status::InvalidArgument("1MemBF: num_bits must be positive");
  }
  if (num_hashes == 0) {
    return Status::InvalidArgument("1MemBF: num_hashes must be positive");
  }
  if (!IsPowerOfTwo(word_bits) || word_bits > 64 || word_bits < 8) {
    return Status::InvalidArgument(
        "1MemBF: word_bits must be a power of two in [8, 64]");
  }
  return Status::Ok();
}

OneMemBloomFilter::OneMemBloomFilter(const Params& params)
    : family_(params.hash_algorithm, params.num_hashes + 1, params.seed),
      num_hashes_(params.num_hashes),
      word_bits_(params.word_bits),
      num_words_(CeilDiv(params.num_bits, params.word_bits)) {
  CheckOk(params.Validate());
  words_.assign(num_words_, 0);
}

std::pair<size_t, uint64_t> OneMemBloomFilter::WordAndMask(
    std::string_view key) const {
  size_t word = family_.Hash(0, key) % num_words_;
  uint64_t mask = 0;
  for (uint32_t i = 1; i <= num_hashes_; ++i) {
    mask |= 1ull << (family_.Hash(i, key) & (word_bits_ - 1));
  }
  return {word, mask};
}

void OneMemBloomFilter::Add(std::string_view key) {
  auto [word, mask] = WordAndMask(key);
  words_[word] |= mask;
}

bool OneMemBloomFilter::Contains(std::string_view key) const {
  auto [word, mask] = WordAndMask(key);
  return (words_[word] & mask) == mask;
}

bool OneMemBloomFilter::ContainsWithStats(std::string_view key,
                                          QueryStats* stats) const {
  ++stats->queries;
  stats->hash_computations += num_hashes_ + 1;
  ++stats->memory_accesses;  // the scheme's whole point: one word load
  return Contains(key);
}

void OneMemBloomFilter::Clear() {
  std::fill(words_.begin(), words_.end(), 0);
}

}  // namespace shbf
