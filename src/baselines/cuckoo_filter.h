// Cuckoo filter (Fan, Andersen, Kaminsky, Mitzenmacher) — cited in §2.1 as a
// space/time-competitive membership structure whose cost is a "non-negligible
// probability of failing when inserting". Implemented as a related-work
// comparator for the membership benches and to exercise that failure mode in
// tests.
//
// Partial-key cuckoo hashing: each element stores an f-bit fingerprint in one
// of two buckets, i1 = H(x) and i2 = i1 XOR H(fingerprint); displaced
// fingerprints kick existing ones, up to max_kicks before declaring the
// filter full. Supports deletion (unlike a plain BF).

#ifndef SHBF_BASELINES_CUCKOO_FILTER_H_
#define SHBF_BASELINES_CUCKOO_FILTER_H_

#include <optional>
#include <string>
#include <string_view>

#include "core/packed_counter_array.h"
#include "core/query_stats.h"
#include "core/rng.h"
#include "core/serde.h"
#include "core/status.h"
#include "hash/hash_family.h"

namespace shbf {

class CuckooFilter {
 public:
  struct Params {
    size_t num_buckets = 0;        ///< rounded up to a power of two
    uint32_t bucket_size = 4;      ///< slots per bucket (the paper's "(2,4)")
    uint32_t fingerprint_bits = 12;
    uint32_t max_kicks = 500;
    HashAlgorithm hash_algorithm = HashAlgorithm::kMurmur3;
    uint64_t seed = 0x5eed5eed5eed5eedull;

    Status Validate() const;
  };

  explicit CuckooFilter(const Params& params);

  /// Inserts `key`; returns false iff the filter is full (insertion failure
  /// after max_kicks displacements). The last displaced fingerprint is kept
  /// in a one-entry victim stash so queries stay false-negative-free; once
  /// the stash is occupied all further inserts fail until a delete frees it.
  bool Insert(std::string_view key);

  /// Membership query. No false negatives for successfully inserted keys.
  bool Contains(std::string_view key) const;
  bool ContainsWithStats(std::string_view key, QueryStats* stats) const;

  /// Deletes one copy of `key`'s fingerprint; returns false if absent.
  bool Delete(std::string_view key);

  size_t num_buckets() const { return num_buckets_; }
  uint32_t bucket_size() const { return bucket_size_; }
  size_t num_items() const { return num_items_; }
  double LoadFactor() const {
    return static_cast<double>(num_items_) /
           (static_cast<double>(num_buckets_) * bucket_size_);
  }
  size_t memory_bits() const {
    return slots_.num_counters() * slots_.bits_per_counter();
  }

  /// True iff an insertion failure parked a fingerprint in the stash.
  bool HasVictim() const { return victim_.used; }

  /// Clears to the empty filter (all slots free, stash emptied).
  void Clear();

  /// Serializes parameters + slot payload to a versioned byte blob.
  std::string ToBytes() const;

  /// Reconstructs a filter that answers identically to the serialized one.
  static Status FromBytes(std::string_view bytes,
                          std::optional<CuckooFilter>* out);

 private:
  struct IndexPair {
    size_t i1;
    size_t i2;
    uint64_t fingerprint;
  };

  struct Victim {
    bool used = false;
    size_t index = 0;
    uint64_t fingerprint = 0;
  };

  IndexPair Locate(std::string_view key) const;
  size_t AltIndex(size_t index, uint64_t fingerprint) const;
  bool BucketContains(size_t bucket, uint64_t fingerprint) const;
  bool TryInsertIntoBucket(size_t bucket, uint64_t fingerprint);
  bool RemoveFromBucket(size_t bucket, uint64_t fingerprint);

  HashFamily family_;  // 0: bucket index; 1: fingerprint; 2: fp→offset
  size_t num_buckets_;
  uint32_t bucket_size_;
  uint32_t fingerprint_bits_;
  uint32_t max_kicks_;
  size_t num_items_ = 0;
  mutable Rng kick_rng_;
  Victim victim_;
  PackedCounterArray slots_;  // fingerprint per slot; 0 = empty
};

}  // namespace shbf

#endif  // SHBF_BASELINES_CUCKOO_FILTER_H_
