// Blocked Bloom filter (Putze/Sanders/Singler 2007; cf. Boost.Bloom's
// block<> subfilters) — the cache-line-confined membership baseline.
//
// A classic Bloom filter touches up to k cache lines per query; the blocked
// variant first hashes the key to one `block_bits`-sized block (default 512
// bits = one 64-byte line, aligned by BitArray) and derives all k probe
// positions inside that block. A query thus costs one memory access — the
// same budget ShBF_M reaches via word pairs — at the price of a slightly
// higher FPR (keys sharing a block collide more; the penalty shrinks as
// block_bits grows, and the acceptance gate bounds it at 2x the classic
// filter's rate at equal bits/key).
//
// The resolve is a whole-block subset test: Add ORs a per-word mask into
// the block, Contains checks (block & mask) == mask over block_bits/64
// words — one AVX2 testc per 256 bits through simd::BlockSubsetTest.

#ifndef SHBF_BASELINES_BLOCKED_BLOOM_FILTER_H_
#define SHBF_BASELINES_BLOCKED_BLOOM_FILTER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/bit_array.h"
#include "core/query_stats.h"
#include "core/serde.h"
#include "core/status.h"
#include "hash/hash_family.h"

namespace shbf {

class BlockedBloomFilter {
 public:
  /// Hard bounds on block_bits: at least one word, at most 8 words so a
  /// probe mask fits a fixed-size Probe (512 bits = one cache line is both
  /// the default and the intended setting).
  static constexpr uint32_t kMinBlockBits = 64;
  static constexpr uint32_t kMaxBlockBits = 512;
  static constexpr uint32_t kMaxBlockWords = kMaxBlockBits / 64;

  struct Params {
    size_t num_bits = 0;       ///< m; rounded up to a multiple of block_bits
    uint32_t num_hashes = 0;   ///< k probes, all inside one block
    uint32_t block_bits = 512; ///< power-of-two multiple of 64 in [64, 512]
    HashAlgorithm hash_algorithm = HashAlgorithm::kMurmur3;
    uint64_t seed = 0x5eed5eed5eed5eedull;

    Status Validate() const;
  };

  explicit BlockedBloomFilter(const Params& params);

  /// Inserts `key`: two hash passes over the key bytes (the block and all k
  /// in-block bits derive from them).
  void Add(std::string_view key) { Add(key.data(), key.size()); }
  void Add(const void* data, size_t len);

  /// Membership query; no false negatives. One block read.
  bool Contains(std::string_view key) const {
    return Contains(key.data(), key.size());
  }
  bool Contains(const void* data, size_t len) const;

  /// Query under the paper's cost model: the whole block is one memory
  /// access; two hash computations.
  bool ContainsWithStats(std::string_view key, QueryStats* stats) const;

  /// Batched membership query (two-pass prepare/prefetch/resolve groups).
  void ContainsBatch(const std::vector<std::string>& keys,
                     std::vector<uint8_t>* results) const;

  /// Largest k the probe/batch paths support.
  static constexpr uint32_t kMaxBatchHashes = 64;

  /// Precomputed query state: the block's word offset plus the OR-mask of
  /// every probed bit, laid out per block word. Pure ALU to fill; resolve
  /// is one subset test over the resident block.
  struct Probe {
    size_t block_word;                 ///< first word of the block
    uint64_t mask[kMaxBlockWords];     ///< bits the key needs set
  };

  /// Computes `key`'s block and probe mask (hashes only, no memory access).
  void PrepareProbe(std::string_view key, Probe* probe) const;

  /// Hints the cache to fetch the (single) block `probe` reads.
  void PrefetchProbe(const Probe& probe) const;

  /// Resolves a prepared probe; identical answer to Contains(key).
  bool ResolveProbe(const Probe& probe) const;

  size_t num_bits() const { return bits_.num_bits(); }
  uint32_t num_hashes() const { return num_hashes_; }
  uint32_t block_bits() const { return block_bits_; }
  uint32_t block_words() const { return block_bits_ / 64; }
  size_t num_blocks() const { return num_blocks_; }
  size_t num_elements() const { return num_elements_; }
  const BitArray& bits() const { return bits_; }

  void Clear();

  /// Set-union via bitwise OR; both filters must share geometry, hash
  /// family, seed and block size.
  Status MergeFrom(const BlockedBloomFilter& other);

  /// Serializes parameters + bit payload to a versioned byte blob.
  std::string ToBytes() const;

  /// Reconstructs a filter that answers identically to the serialized one.
  static Status FromBytes(std::string_view bytes,
                          std::optional<BlockedBloomFilter>* out);

 private:
  /// Runs the two key passes and hands back the block's first word plus the
  /// k-bit probe mask (word-sliced within the block).
  void DeriveProbe(const void* data, size_t len, size_t* block_word,
                   uint64_t* mask) const;

  HashFamily family_;  // two functions; probe bits derive via SplitMix64
  uint32_t num_hashes_;
  uint32_t block_bits_;
  size_t num_blocks_;
  BitArray bits_;
  size_t num_elements_ = 0;
};

}  // namespace shbf

#endif  // SHBF_BASELINES_BLOCKED_BLOOM_FILTER_H_
