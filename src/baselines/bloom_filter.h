// Standard Bloom filter (Bloom, CACM 1970) — the membership baseline.
//
// k independent hash functions over an m-bit array; insert sets the k bits
// h_i(e) % m, a query ANDs them. No false negatives; false-positive rate
// f_BF ≈ (1 − e^{−nk/m})^k (paper Eq (8)). Queries terminate early at the
// first zero bit, and under the paper's cost model each bit probe is one
// memory access — which is exactly why ShBF_M halves the query cost.

#ifndef SHBF_BASELINES_BLOOM_FILTER_H_
#define SHBF_BASELINES_BLOOM_FILTER_H_

#include <optional>
#include <string>
#include <string_view>

#include "core/bit_array.h"
#include "core/query_stats.h"
#include "core/serde.h"
#include "core/status.h"
#include "hash/hash_family.h"

namespace shbf {

/// Library-wide default seed; every structure takes an explicit override.
inline constexpr uint64_t kDefaultSeed = 0x5eed5eed5eed5eedull;

class BloomFilter {
 public:
  struct Params {
    size_t num_bits = 0;      ///< m
    uint32_t num_hashes = 0;  ///< k
    HashAlgorithm hash_algorithm = HashAlgorithm::kMurmur3;
    uint64_t seed = kDefaultSeed;

    Status Validate() const;
  };

  /// m minimizing FPR for n elements at false-positive target `fpr`:
  /// m = −n·ln f / (ln 2)². Rounded up.
  static size_t OptimalNumBits(size_t num_elements, double fpr);

  /// k minimizing FPR for given m, n: k = (m/n)·ln 2, at least 1.
  static uint32_t OptimalNumHashes(size_t num_bits, size_t num_elements);

  explicit BloomFilter(const Params& params);

  /// Wraps externally stored bits (a BitArray::View into an mmap'd image
  /// region) without copying: geometry from `params`, storage from `bits`.
  /// The view's num_bits/slack must match what the owning constructor
  /// would build — callers (the registry's mapped opener) validate the
  /// on-disk geometry before constructing. Read-only usage.
  BloomFilter(const Params& params, BitArray bits, size_t num_elements);

  /// Inserts `key`: sets bits h_1(e)%m, ..., h_k(e)%m.
  void Add(std::string_view key) { Add(key.data(), key.size()); }
  void Add(const void* data, size_t len);

  /// Membership query; no false negatives.
  bool Contains(std::string_view key) const {
    return Contains(key.data(), key.size());
  }
  bool Contains(const void* data, size_t len) const;

  /// Same, accumulating the paper's cost model into `stats` (one access per
  /// bit probed, one hash per function evaluated; early exit on a 0 bit).
  bool ContainsWithStats(std::string_view key, QueryStats* stats) const;

  /// Batched membership query with software prefetching (see
  /// ShbfM::ContainsBatch). `results` is resized to keys.size().
  void ContainsBatch(const std::vector<std::string>& keys,
                     std::vector<uint8_t>* results) const;

  /// Largest k the probe/batch paths support.
  static constexpr uint32_t kMaxBatchHashes = 64;

  /// Precomputed query state for one key (hashes only, no memory touched);
  /// see ShbfM::Probe for the two-pass batch protocol.
  struct Probe {
    size_t positions[kMaxBatchHashes];  ///< h_i(e) % m for i < num_hashes()
  };

  /// Computes `key`'s k bit positions. Requires num_hashes() <= 64.
  void PrepareProbe(std::string_view key, Probe* probe) const;

  /// Hints the cache to fetch every line `probe` will read.
  void PrefetchProbe(const Probe& probe) const;

  /// Resolves a prepared probe; identical answer to Contains(key).
  bool ResolveProbe(const Probe& probe) const;

  size_t num_bits() const { return bits_.num_bits(); }
  uint32_t num_hashes() const { return family_.num_functions(); }
  HashAlgorithm hash_algorithm() const { return family_.algorithm(); }
  uint64_t seed() const { return family_.master_seed(); }
  size_t num_elements() const { return num_elements_; }
  const BitArray& bits() const { return bits_; }

  /// Clears to the empty filter.
  void Clear();

  /// Set-union: ORs `other`'s bit array into this one. Both filters must
  /// share geometry, hash family and seed (Summary-Cache proxies merging
  /// peer summaries, shard consolidation). num_elements() becomes the sum —
  /// an upper bound on the union's distinct keys.
  Status MergeFrom(const BloomFilter& other);

  /// Serializes parameters + bit payload to a versioned byte blob. Summary-
  /// Cache-style protocols ship these between nodes (§2.2).
  std::string ToBytes() const;

  /// Reconstructs a filter from ToBytes() output. On success `*out` holds a
  /// filter answering identically to the original.
  static Status FromBytes(std::string_view bytes,
                          std::optional<BloomFilter>* out);

 private:
  HashFamily family_;
  BitArray bits_;
  size_t num_elements_ = 0;
};

}  // namespace shbf

#endif  // SHBF_BASELINES_BLOOM_FILTER_H_
