#include "baselines/counting_bloom_filter.h"

namespace shbf {

Status CountingBloomFilter::Params::Validate() const {
  if (num_counters == 0) {
    return Status::InvalidArgument("CBF: num_counters must be positive");
  }
  if (num_hashes == 0) {
    return Status::InvalidArgument("CBF: num_hashes must be positive");
  }
  if (counter_bits < 1 || counter_bits > 32) {
    return Status::InvalidArgument("CBF: counter_bits must be in [1, 32]");
  }
  return Status::Ok();
}

CountingBloomFilter::CountingBloomFilter(const Params& params)
    : family_(params.hash_algorithm, params.num_hashes, params.seed),
      counters_(params.num_counters, params.counter_bits) {
  CheckOk(params.Validate());
}

void CountingBloomFilter::Insert(std::string_view key) {
  const size_t m = counters_.num_counters();
  for (uint32_t i = 0; i < family_.num_functions(); ++i) {
    counters_.Increment(family_.Hash(i, key) % m);
  }
}

void CountingBloomFilter::Delete(std::string_view key) {
  const size_t m = counters_.num_counters();
  for (uint32_t i = 0; i < family_.num_functions(); ++i) {
    counters_.Decrement(family_.Hash(i, key) % m);
  }
}

bool CountingBloomFilter::Contains(std::string_view key) const {
  const size_t m = counters_.num_counters();
  for (uint32_t i = 0; i < family_.num_functions(); ++i) {
    if (counters_.Get(family_.Hash(i, key) % m) == 0) return false;
  }
  return true;
}

bool CountingBloomFilter::ContainsWithStats(std::string_view key,
                                            QueryStats* stats) const {
  const size_t m = counters_.num_counters();
  ++stats->queries;
  for (uint32_t i = 0; i < family_.num_functions(); ++i) {
    ++stats->hash_computations;
    ++stats->memory_accesses;
    if (counters_.Get(family_.Hash(i, key) % m) == 0) return false;
  }
  return true;
}

}  // namespace shbf
