#include "baselines/counting_bloom_filter.h"

namespace shbf {

Status CountingBloomFilter::Params::Validate() const {
  if (num_counters == 0) {
    return Status::InvalidArgument("CBF: num_counters must be positive");
  }
  if (num_hashes == 0) {
    return Status::InvalidArgument("CBF: num_hashes must be positive");
  }
  if (counter_bits < 1 || counter_bits > 32) {
    return Status::InvalidArgument("CBF: counter_bits must be in [1, 32]");
  }
  return Status::Ok();
}

CountingBloomFilter::CountingBloomFilter(const Params& params)
    : family_(params.hash_algorithm, params.num_hashes, params.seed),
      counters_(params.num_counters, params.counter_bits) {
  CheckOk(params.Validate());
}

void CountingBloomFilter::Insert(std::string_view key) {
  const size_t m = counters_.num_counters();
  for (uint32_t i = 0; i < family_.num_functions(); ++i) {
    counters_.Increment(family_.Hash(i, key) % m);
  }
}

void CountingBloomFilter::Delete(std::string_view key) {
  const size_t m = counters_.num_counters();
  for (uint32_t i = 0; i < family_.num_functions(); ++i) {
    counters_.Decrement(family_.Hash(i, key) % m);
  }
}

bool CountingBloomFilter::Contains(std::string_view key) const {
  const size_t m = counters_.num_counters();
  for (uint32_t i = 0; i < family_.num_functions(); ++i) {
    if (counters_.Get(family_.Hash(i, key) % m) == 0) return false;
  }
  return true;
}

bool CountingBloomFilter::ContainsWithStats(std::string_view key,
                                            QueryStats* stats) const {
  const size_t m = counters_.num_counters();
  ++stats->queries;
  for (uint32_t i = 0; i < family_.num_functions(); ++i) {
    ++stats->hash_computations;
    ++stats->memory_accesses;
    if (counters_.Get(family_.Hash(i, key) % m) == 0) return false;
  }
  return true;
}

std::string CountingBloomFilter::ToBytes() const {
  ByteWriter writer;
  serde::WriteHeader(&writer, serde::StructureTag::kCountingBloomFilter);
  writer.PutU64(counters_.num_counters());
  writer.PutU32(family_.num_functions());
  writer.PutU32(counters_.bits_per_counter());
  writer.PutU8(static_cast<uint8_t>(family_.algorithm()));
  writer.PutU64(family_.master_seed());
  counters_.AppendPayload(&writer);
  return writer.Take();
}

Status CountingBloomFilter::FromBytes(std::string_view bytes,
                                      std::optional<CountingBloomFilter>* out) {
  ByteReader reader(bytes);
  Status header =
      serde::ReadHeader(&reader, serde::StructureTag::kCountingBloomFilter);
  if (!header.ok()) return header;
  uint64_t num_counters = 0;
  uint32_t num_hashes = 0;
  uint32_t counter_bits = 0;
  uint8_t alg = 0;
  uint64_t seed = 0;
  if (!reader.GetU64(&num_counters) || !reader.GetU32(&num_hashes) ||
      !reader.GetU32(&counter_bits) || !reader.GetU8(&alg) ||
      !reader.GetU64(&seed)) {
    return Status::InvalidArgument("CBF: truncated parameter block");
  }
  if (alg > 3) return Status::InvalidArgument("CBF: unknown hash id");
  Params params{.num_counters = num_counters,
                .num_hashes = num_hashes,
                .counter_bits = counter_bits,
                .hash_algorithm = static_cast<HashAlgorithm>(alg),
                .seed = seed};
  Status valid = params.Validate();
  if (!valid.ok()) return valid;
  out->emplace(params);
  if (!(*out)->counters_.ReadPayload(&reader) || !reader.AtEnd()) {
    out->reset();
    return Status::InvalidArgument("CBF: payload size mismatch");
  }
  return Status::Ok();
}

}  // namespace shbf
