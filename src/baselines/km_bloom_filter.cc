#include "baselines/km_bloom_filter.h"

namespace shbf {

Status KmBloomFilter::Params::Validate() const {
  if (num_bits == 0) {
    return Status::InvalidArgument("KmBF: num_bits must be positive");
  }
  if (num_hashes == 0) {
    return Status::InvalidArgument("KmBF: num_hashes must be positive");
  }
  return Status::Ok();
}

KmBloomFilter::KmBloomFilter(const Params& params)
    : family_(params.hash_algorithm, 2, params.seed),
      num_hashes_(params.num_hashes),
      bits_(params.num_bits, /*slack_bits=*/0) {
  CheckOk(params.Validate());
}

void KmBloomFilter::Add(std::string_view key) {
  const size_t m = bits_.num_bits();
  uint64_t h1 = family_.Hash(0, key);
  uint64_t h2 = family_.Hash(1, key);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    bits_.SetBit((h1 + static_cast<uint64_t>(i) * h2) % m);
  }
}

bool KmBloomFilter::Contains(std::string_view key) const {
  const size_t m = bits_.num_bits();
  uint64_t h1 = family_.Hash(0, key);
  uint64_t h2 = family_.Hash(1, key);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    if (!bits_.GetBit((h1 + static_cast<uint64_t>(i) * h2) % m)) return false;
  }
  return true;
}

bool KmBloomFilter::ContainsWithStats(std::string_view key,
                                      QueryStats* stats) const {
  const size_t m = bits_.num_bits();
  ++stats->queries;
  stats->hash_computations += 2;  // h1, h2; the probes are arithmetic
  uint64_t h1 = family_.Hash(0, key);
  uint64_t h2 = family_.Hash(1, key);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    ++stats->memory_accesses;
    if (!bits_.GetBit((h1 + static_cast<uint64_t>(i) * h2) % m)) return false;
  }
  return true;
}

}  // namespace shbf
