#include "baselines/km_bloom_filter.h"

namespace shbf {

Status KmBloomFilter::Params::Validate() const {
  if (num_bits == 0) {
    return Status::InvalidArgument("KmBF: num_bits must be positive");
  }
  if (num_hashes == 0) {
    return Status::InvalidArgument("KmBF: num_hashes must be positive");
  }
  return Status::Ok();
}

KmBloomFilter::KmBloomFilter(const Params& params)
    : family_(params.hash_algorithm, 2, params.seed),
      num_hashes_(params.num_hashes),
      bits_(params.num_bits, /*slack_bits=*/0) {
  CheckOk(params.Validate());
}

void KmBloomFilter::Add(std::string_view key) {
  const size_t m = bits_.num_bits();
  uint64_t h1 = family_.Hash(0, key);
  uint64_t h2 = family_.Hash(1, key);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    bits_.SetBit((h1 + static_cast<uint64_t>(i) * h2) % m);
  }
}

bool KmBloomFilter::Contains(std::string_view key) const {
  const size_t m = bits_.num_bits();
  uint64_t h1 = family_.Hash(0, key);
  uint64_t h2 = family_.Hash(1, key);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    if (!bits_.GetBit((h1 + static_cast<uint64_t>(i) * h2) % m)) return false;
  }
  return true;
}

bool KmBloomFilter::ContainsWithStats(std::string_view key,
                                      QueryStats* stats) const {
  const size_t m = bits_.num_bits();
  ++stats->queries;
  stats->hash_computations += 2;  // h1, h2; the probes are arithmetic
  uint64_t h1 = family_.Hash(0, key);
  uint64_t h2 = family_.Hash(1, key);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    ++stats->memory_accesses;
    if (!bits_.GetBit((h1 + static_cast<uint64_t>(i) * h2) % m)) return false;
  }
  return true;
}

std::string KmBloomFilter::ToBytes() const {
  ByteWriter writer;
  serde::WriteHeader(&writer, serde::StructureTag::kKmBloomFilter);
  writer.PutU64(bits_.num_bits());
  writer.PutU32(num_hashes_);
  writer.PutU8(static_cast<uint8_t>(family_.algorithm()));
  writer.PutU64(family_.master_seed());
  bits_.AppendPayload(&writer);
  return writer.Take();
}

Status KmBloomFilter::FromBytes(std::string_view bytes,
                                std::optional<KmBloomFilter>* out) {
  ByteReader reader(bytes);
  Status header =
      serde::ReadHeader(&reader, serde::StructureTag::kKmBloomFilter);
  if (!header.ok()) return header;
  uint64_t num_bits = 0;
  uint32_t num_hashes = 0;
  uint8_t alg = 0;
  uint64_t seed = 0;
  if (!reader.GetU64(&num_bits) || !reader.GetU32(&num_hashes) ||
      !reader.GetU8(&alg) || !reader.GetU64(&seed)) {
    return Status::InvalidArgument("KmBF: truncated parameter block");
  }
  if (alg > 3) return Status::InvalidArgument("KmBF: unknown hash id");
  Params params{.num_bits = num_bits,
                .num_hashes = num_hashes,
                .hash_algorithm = static_cast<HashAlgorithm>(alg),
                .seed = seed};
  Status valid = params.Validate();
  if (!valid.ok()) return valid;
  out->emplace(params);
  if (!(*out)->bits_.ReadPayload(&reader) || !reader.AtEnd()) {
    out->reset();
    return Status::InvalidArgument("KmBF: payload size mismatch");
  }
  return Status::Ok();
}

}  // namespace shbf
