#include "baselines/cuckoo_filter.h"

#include "core/bits.h"

namespace shbf {

Status CuckooFilter::Params::Validate() const {
  if (num_buckets == 0) {
    return Status::InvalidArgument("CuckooFilter: num_buckets must be > 0");
  }
  if (bucket_size == 0 || bucket_size > 8) {
    return Status::InvalidArgument("CuckooFilter: bucket_size must be in [1,8]");
  }
  if (fingerprint_bits < 4 || fingerprint_bits > 32) {
    return Status::InvalidArgument(
        "CuckooFilter: fingerprint_bits must be in [4,32]");
  }
  return Status::Ok();
}

CuckooFilter::CuckooFilter(const Params& params)
    : family_(params.hash_algorithm, 3, params.seed),
      num_buckets_(NextPowerOfTwo(params.num_buckets)),
      bucket_size_(params.bucket_size),
      fingerprint_bits_(params.fingerprint_bits),
      max_kicks_(params.max_kicks),
      kick_rng_(params.seed ^ 0xc0c0c0c0c0c0c0c0ull),
      slots_(NextPowerOfTwo(params.num_buckets) * params.bucket_size,
             params.fingerprint_bits) {
  CheckOk(params.Validate());
}

CuckooFilter::IndexPair CuckooFilter::Locate(std::string_view key) const {
  uint64_t fp_mask = slots_.max_value();
  uint64_t fingerprint = family_.Hash(1, key) & fp_mask;
  if (fingerprint == 0) fingerprint = 1;  // 0 is the empty-slot marker
  size_t i1 = family_.Hash(0, key) & (num_buckets_ - 1);
  return {i1, AltIndex(i1, fingerprint), fingerprint};
}

size_t CuckooFilter::AltIndex(size_t index, uint64_t fingerprint) const {
  // Standard partial-key trick: XOR with a hash of the fingerprint keeps the
  // pair relation symmetric (AltIndex(AltIndex(i)) == i).
  uint64_t h = family_.Hash(2, &fingerprint, sizeof(fingerprint));
  return (index ^ h) & (num_buckets_ - 1);
}

bool CuckooFilter::BucketContains(size_t bucket, uint64_t fingerprint) const {
  size_t base = bucket * bucket_size_;
  for (uint32_t s = 0; s < bucket_size_; ++s) {
    if (slots_.Get(base + s) == fingerprint) return true;
  }
  return false;
}

bool CuckooFilter::TryInsertIntoBucket(size_t bucket, uint64_t fingerprint) {
  size_t base = bucket * bucket_size_;
  for (uint32_t s = 0; s < bucket_size_; ++s) {
    if (slots_.Get(base + s) == 0) {
      slots_.Set(base + s, fingerprint);
      return true;
    }
  }
  return false;
}

bool CuckooFilter::RemoveFromBucket(size_t bucket, uint64_t fingerprint) {
  size_t base = bucket * bucket_size_;
  for (uint32_t s = 0; s < bucket_size_; ++s) {
    if (slots_.Get(base + s) == fingerprint) {
      slots_.Set(base + s, 0);
      return true;
    }
  }
  return false;
}

bool CuckooFilter::Insert(std::string_view key) {
  if (victim_.used) return false;  // full since the last failure
  IndexPair loc = Locate(key);
  if (TryInsertIntoBucket(loc.i1, loc.fingerprint) ||
      TryInsertIntoBucket(loc.i2, loc.fingerprint)) {
    ++num_items_;
    return true;
  }
  // Kick a random resident and relocate it, up to max_kicks_ times.
  size_t bucket = (kick_rng_.Next() & 1) ? loc.i2 : loc.i1;
  uint64_t fingerprint = loc.fingerprint;
  for (uint32_t kick = 0; kick < max_kicks_; ++kick) {
    size_t slot = bucket * bucket_size_ + kick_rng_.NextBelow(bucket_size_);
    uint64_t victim = slots_.Get(slot);
    slots_.Set(slot, fingerprint);
    fingerprint = victim;
    bucket = AltIndex(bucket, fingerprint);
    if (TryInsertIntoBucket(bucket, fingerprint)) {
      ++num_items_;
      return true;
    }
  }
  // Filter full (the Cuckoo paper's "non-negligible failure"). Park the last
  // displaced fingerprint in the stash so earlier keys keep no-FN semantics.
  victim_ = {true, bucket, fingerprint};
  ++num_items_;
  return false;
}

bool CuckooFilter::Contains(std::string_view key) const {
  IndexPair loc = Locate(key);
  if (victim_.used && victim_.fingerprint == loc.fingerprint &&
      (victim_.index == loc.i1 || victim_.index == loc.i2)) {
    return true;
  }
  return BucketContains(loc.i1, loc.fingerprint) ||
         BucketContains(loc.i2, loc.fingerprint);
}

bool CuckooFilter::ContainsWithStats(std::string_view key,
                                     QueryStats* stats) const {
  ++stats->queries;
  stats->hash_computations += 3;
  IndexPair loc = Locate(key);
  // The victim stash must be consulted exactly as in Contains(): skipping
  // it would let the stats path report a false negative for a key whose
  // fingerprint was displaced into the stash.
  if (victim_.used && victim_.fingerprint == loc.fingerprint &&
      (victim_.index == loc.i1 || victim_.index == loc.i2)) {
    return true;
  }
  ++stats->memory_accesses;  // bucket 1
  if (BucketContains(loc.i1, loc.fingerprint)) return true;
  ++stats->memory_accesses;  // bucket 2
  return BucketContains(loc.i2, loc.fingerprint);
}

bool CuckooFilter::Delete(std::string_view key) {
  IndexPair loc = Locate(key);
  if (victim_.used && victim_.fingerprint == loc.fingerprint &&
      (victim_.index == loc.i1 || victim_.index == loc.i2)) {
    victim_.used = false;
    --num_items_;
    return true;
  }
  if (RemoveFromBucket(loc.i1, loc.fingerprint) ||
      RemoveFromBucket(loc.i2, loc.fingerprint)) {
    --num_items_;
    // A freed slot may let the stashed victim re-enter either of its
    // buckets.
    if (victim_.used &&
        (TryInsertIntoBucket(victim_.index, victim_.fingerprint) ||
         TryInsertIntoBucket(AltIndex(victim_.index, victim_.fingerprint),
                             victim_.fingerprint))) {
      victim_.used = false;
    }
    return true;
  }
  return false;
}

void CuckooFilter::Clear() {
  slots_.Clear();
  victim_ = Victim{};
  num_items_ = 0;
}

std::string CuckooFilter::ToBytes() const {
  ByteWriter writer;
  serde::WriteHeader(&writer, serde::StructureTag::kCuckooFilter);
  writer.PutU64(num_buckets_);
  writer.PutU32(bucket_size_);
  writer.PutU32(fingerprint_bits_);
  writer.PutU32(max_kicks_);
  writer.PutU8(static_cast<uint8_t>(family_.algorithm()));
  writer.PutU64(family_.master_seed());
  writer.PutU64(num_items_);
  writer.PutU8(victim_.used ? 1 : 0);
  writer.PutU64(victim_.index);
  writer.PutU64(victim_.fingerprint);
  slots_.AppendPayload(&writer);
  return writer.Take();
}

Status CuckooFilter::FromBytes(std::string_view bytes,
                               std::optional<CuckooFilter>* out) {
  ByteReader reader(bytes);
  Status header =
      serde::ReadHeader(&reader, serde::StructureTag::kCuckooFilter);
  if (!header.ok()) return header;
  uint64_t num_buckets = 0;
  uint32_t bucket_size = 0;
  uint32_t fingerprint_bits = 0;
  uint32_t max_kicks = 0;
  uint8_t alg = 0;
  uint64_t seed = 0;
  uint64_t num_items = 0;
  uint8_t victim_used = 0;
  uint64_t victim_index = 0;
  uint64_t victim_fingerprint = 0;
  if (!reader.GetU64(&num_buckets) || !reader.GetU32(&bucket_size) ||
      !reader.GetU32(&fingerprint_bits) || !reader.GetU32(&max_kicks) ||
      !reader.GetU8(&alg) || !reader.GetU64(&seed) ||
      !reader.GetU64(&num_items) || !reader.GetU8(&victim_used) ||
      !reader.GetU64(&victim_index) || !reader.GetU64(&victim_fingerprint)) {
    return Status::InvalidArgument("CuckooFilter: truncated parameter block");
  }
  if (alg > 3) return Status::InvalidArgument("CuckooFilter: unknown hash id");
  if (!IsPowerOfTwo(num_buckets)) {
    return Status::InvalidArgument("CuckooFilter: num_buckets not a power of 2");
  }
  Params params{.num_buckets = num_buckets,
                .bucket_size = bucket_size,
                .fingerprint_bits = fingerprint_bits,
                .max_kicks = max_kicks,
                .hash_algorithm = static_cast<HashAlgorithm>(alg),
                .seed = seed};
  Status valid = params.Validate();
  if (!valid.ok()) return valid;
  if (victim_used != 0) {
    uint64_t fingerprint_mask = (1ull << fingerprint_bits) - 1;
    if (victim_index >= num_buckets || victim_fingerprint == 0 ||
        victim_fingerprint > fingerprint_mask) {
      return Status::InvalidArgument("CuckooFilter: victim out of range");
    }
  }
  out->emplace(params);
  (*out)->num_items_ = num_items;
  (*out)->victim_ = {victim_used != 0, static_cast<size_t>(victim_index),
                     victim_fingerprint};
  if (!(*out)->slots_.ReadPayload(&reader) || !reader.AtEnd()) {
    out->reset();
    return Status::InvalidArgument("CuckooFilter: payload size mismatch");
  }
  return Status::Ok();
}

}  // namespace shbf
