// Dynamic Count Filter (Aguilar-Saborit, Trancoso, Muntés-Mulero,
// Larriba-Pey; SIGMOD Record 2006) — the §2.3 comparator that "combines the
// ideas of spectral BF and CBF" using TWO filters:
//   * CBFV — m fixed-width counters (the low `base_bits` bits of each count)
//   * OFV  — m dynamically-resized counters holding the overflow (high bits)
// The value of counter i is OFV[i]·2^base_bits + CBFV[i]. When an increment
// carries out of a saturated OFV, the whole OFV is rebuilt one bit wider;
// deletions trigger a (amortized) shrink scan. The paper's criticism — "the
// use of two filters degrades query performance" — is exactly what the
// update/query ablation measures.

#ifndef SHBF_BASELINES_DYNAMIC_COUNT_FILTER_H_
#define SHBF_BASELINES_DYNAMIC_COUNT_FILTER_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "core/packed_counter_array.h"
#include "core/query_stats.h"
#include "core/serde.h"
#include "core/status.h"
#include "hash/hash_family.h"

namespace shbf {

class DynamicCountFilter {
 public:
  struct Params {
    size_t num_counters = 0;  ///< m
    uint32_t num_hashes = 0;  ///< k
    uint32_t base_bits = 4;   ///< x: width of the fixed CBFV counters
    HashAlgorithm hash_algorithm = HashAlgorithm::kMurmur3;
    uint64_t seed = 0x5eed5eed5eed5eedull;

    Status Validate() const;
  };

  explicit DynamicCountFilter(const Params& params);

  /// Adds one occurrence of `key` (increments its k counters, growing the
  /// overflow vector when a carry no longer fits).
  void Insert(std::string_view key);

  /// Removes one occurrence; CHECK-fails on underflow (deleting a key that
  /// was never inserted). Periodically shrinks the overflow vector.
  void Delete(std::string_view key);

  /// Multiplicity estimate: min over the k combined counters. Never
  /// underestimates. Zero means "not present".
  uint64_t QueryCount(std::string_view key) const;

  /// Cost model: each counter probe touches BOTH vectors (2 accesses) while
  /// the overflow vector exists — the "two filters" penalty.
  uint64_t QueryCountWithStats(std::string_view key, QueryStats* stats) const;

  bool Contains(std::string_view key) const { return QueryCount(key) > 0; }

  size_t num_counters() const { return base_.num_counters(); }
  uint32_t num_hashes() const { return family_.num_functions(); }
  uint32_t base_bits() const { return base_.bits_per_counter(); }

  /// Current width of the overflow counters (0 = no overflow vector yet).
  uint32_t overflow_bits() const {
    return overflow_ == nullptr ? 0 : overflow_->bits_per_counter();
  }

  /// Total rebuilds (grow + shrink) — the structure's hidden update cost.
  uint64_t rebuilds() const { return rebuilds_; }

  /// Live footprint: CBFV plus the current OFV.
  size_t memory_bits() const;

  /// Clears to the empty filter; the overflow vector is released.
  void Clear() {
    base_.Clear();
    overflow_.reset();
    deletes_since_shrink_check_ = 0;
  }

  /// Serializes parameters + both vector payloads to a versioned byte blob.
  std::string ToBytes() const;

  /// Reconstructs a filter that answers identically to the serialized one.
  static Status FromBytes(std::string_view bytes,
                          std::optional<DynamicCountFilter>* out);

 private:
  uint64_t Combined(size_t i) const;
  void IncrementAt(size_t i);
  void DecrementAt(size_t i);
  void GrowOverflow();
  void MaybeShrinkOverflow();

  HashFamily family_;
  PackedCounterArray base_;
  std::unique_ptr<PackedCounterArray> overflow_;
  uint64_t rebuilds_ = 0;
  uint64_t deletes_since_shrink_check_ = 0;
};

}  // namespace shbf

#endif  // SHBF_BASELINES_DYNAMIC_COUNT_FILTER_H_
