// iBF — "individual Bloom filters", the straightforward association-query
// baseline (§4.5, Table 2, Fig 10): one standard BF per set, as used by the
// Summary-Cache Enhanced ICP protocol.
//
// For an element promised to lie in S1 ∪ S2, iBF queries both filters:
//   (1, 0) → definitely S1 − S2 (clear: BF2 negative is authoritative)
//   (0, 1) → definitely S2 − S1 (clear)
//   (1, 1) → declared S1 ∩ S2, but this is exactly where iBF is "prone to
//            false positives" — a false positive in either filter also lands
//            here, so the answer is never clear.
//   (0, 0) → impossible for e ∈ S1 ∪ S2 (no false negatives).
// Optimal sizing (Table 2): m1 + m2 = (n1 + n2)·k / ln 2, and the probability
// of a clear answer under uniform part hits is (2/3)(1 − 0.5^k).

#ifndef SHBF_BASELINES_IBF_H_
#define SHBF_BASELINES_IBF_H_

#include <string_view>
#include <utility>

#include "baselines/bloom_filter.h"
#include "core/set_query_types.h"

namespace shbf {

class IndividualBloomFilters {
 public:
  struct Params {
    size_t num_bits_s1 = 0;   ///< m1
    size_t num_bits_s2 = 0;   ///< m2
    uint32_t num_hashes = 0;  ///< k (per filter; a query costs 2k)
    HashAlgorithm hash_algorithm = HashAlgorithm::kMurmur3;
    uint64_t seed = kDefaultSeed;

    Status Validate() const;
  };

  /// Table 2 sizing: m1 = n1·k/ln2, m2 = n2·k/ln2.
  static Params OptimalParams(size_t n1, size_t n2, uint32_t num_hashes);

  explicit IndividualBloomFilters(const Params& params);

  /// Assembles the pair from two existing filters (deserialization path).
  IndividualBloomFilters(BloomFilter bf1, BloomFilter bf2)
      : bf1_(std::move(bf1)), bf2_(std::move(bf2)) {}

  void AddToS1(std::string_view key) { bf1_.Add(key); }
  void AddToS2(std::string_view key) { bf2_.Add(key); }

  /// Association query for e ∈ S1 ∪ S2. Maps (1,0)→kS1Only, (0,1)→kS2Only,
  /// (1,1)→kUnknown is wrong — iBF *declares* intersection but the answer is
  /// not clear; we surface that as kIntersection with IsClear() == false via
  /// QueryIsClear(). (0,0) would violate the e ∈ S1 ∪ S2 promise and is
  /// reported as kUnknown.
  AssociationOutcome Query(std::string_view key) const;
  AssociationOutcome QueryWithStats(std::string_view key,
                                    QueryStats* stats) const;

  /// True iff the outcome for `key` is authoritative: iBF's declared
  /// intersection is never clear (see header comment).
  static bool OutcomeIsClear(AssociationOutcome outcome) {
    return outcome == AssociationOutcome::kS1Only ||
           outcome == AssociationOutcome::kS2Only;
  }

  size_t total_bits() const { return bf1_.num_bits() + bf2_.num_bits(); }
  uint32_t num_hashes() const { return bf1_.num_hashes(); }

  /// Clears both per-set filters.
  void Clear() {
    bf1_.Clear();
    bf2_.Clear();
  }
  const BloomFilter& filter1() const { return bf1_; }
  const BloomFilter& filter2() const { return bf2_; }

 private:
  BloomFilter bf1_;
  BloomFilter bf2_;
};

}  // namespace shbf

#endif  // SHBF_BASELINES_IBF_H_
