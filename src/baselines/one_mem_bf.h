// One-memory-access Bloom filter ("1MemBF", Qiao et al., INFOCOM 2011) —
// the paper's state-of-the-art membership comparator (§6.2).
//
// The m-bit array is partitioned into machine words. One hash picks the word
// for an element; k further hashes pick bit positions inside that word. A
// query thus costs exactly one memory access and k + 1 hash computations.
// The price is a higher FPR than a standard BF: confining k bits to one word
// "incurs serious unbalance in distributions of 1s and 0s" (§6.2.1).

#ifndef SHBF_BASELINES_ONE_MEM_BF_H_
#define SHBF_BASELINES_ONE_MEM_BF_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/bit_array.h"
#include "core/query_stats.h"
#include "core/serde.h"
#include "core/status.h"
#include "hash/hash_family.h"

namespace shbf {

class OneMemBloomFilter {
 public:
  struct Params {
    size_t num_bits = 0;      ///< m; rounded up to a multiple of word_bits
    uint32_t num_hashes = 0;  ///< k bits set within the chosen word
    uint32_t word_bits = 64;  ///< word size (power of two, <= 64)
    HashAlgorithm hash_algorithm = HashAlgorithm::kMurmur3;
    uint64_t seed = 0x5eed5eed5eed5eedull;

    Status Validate() const;
  };

  explicit OneMemBloomFilter(const Params& params);

  void Add(std::string_view key);

  /// Membership query: one word load, mask compare. No false negatives.
  bool Contains(std::string_view key) const;
  bool ContainsWithStats(std::string_view key, QueryStats* stats) const;

  size_t num_bits() const { return num_words_ * word_bits_; }
  size_t num_words() const { return num_words_; }
  uint32_t num_hashes() const { return num_hashes_; }
  void Clear();

  /// Serializes parameters + word payload to a versioned byte blob.
  std::string ToBytes() const;

  /// Reconstructs a filter that answers identically to the serialized one.
  static Status FromBytes(std::string_view bytes,
                          std::optional<OneMemBloomFilter>* out);

 private:
  /// Word index and the k-bit in-word mask for `key`.
  std::pair<size_t, uint64_t> WordAndMask(std::string_view key) const;

  HashFamily family_;  // function 0 picks the word; 1..k pick in-word bits
  uint32_t num_hashes_;
  uint32_t word_bits_;
  size_t num_words_;
  std::vector<uint64_t> words_;
};

}  // namespace shbf

#endif  // SHBF_BASELINES_ONE_MEM_BF_H_
