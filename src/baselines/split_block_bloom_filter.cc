#include "baselines/split_block_bloom_filter.h"

#include <algorithm>
#include <cstring>

#include "core/bits.h"
#include "core/rng.h"
#include "core/simd.h"

namespace shbf {

Status SplitBlockBloomFilter::Params::Validate() const {
  if (num_bits == 0) {
    return Status::InvalidArgument(
        "SplitBlockBloomFilter: num_bits must be positive");
  }
  if (num_hashes == 0 || num_hashes > kMaxBatchHashes) {
    return Status::InvalidArgument(
        "SplitBlockBloomFilter: num_hashes must be in [1, 64]");
  }
  if (block_bits < kMinBlockBits || block_bits > kMaxBlockBits ||
      block_bits % 64 != 0) {
    return Status::InvalidArgument(
        "SplitBlockBloomFilter: block_bits must be a multiple of 64 in "
        "[64, 512]");
  }
  if (sub_block_bits < 8 || sub_block_bits > 64 ||
      !IsPowerOfTwo(sub_block_bits)) {
    // Powers of two <= 64 divide 64, so a sub-word never straddles a word —
    // the invariant MaskFromShifts relies on.
    return Status::InvalidArgument(
        "SplitBlockBloomFilter: sub_block_bits must be a power of two in "
        "[8, 64]");
  }
  return Status::Ok();
}

SplitBlockBloomFilter::SplitBlockBloomFilter(const Params& params)
    : family_(params.hash_algorithm, 2, params.seed),
      num_hashes_(params.num_hashes),
      block_bits_(params.block_bits),
      sub_block_bits_(params.sub_block_bits),
      num_blocks_(CeilDiv(params.num_bits, size_t{params.block_bits})),
      // Blocks are self-contained, so no slack bits (as blocked_bloom).
      bits_(num_blocks_ * params.block_bits, /*slack_bits=*/0) {
  CheckOk(params.Validate());
  BuildLayout();
}

SplitBlockBloomFilter::SplitBlockBloomFilter(const Params& params,
                                             BitArray bits,
                                             size_t num_elements)
    : family_(params.hash_algorithm, 2, params.seed),
      num_hashes_(params.num_hashes),
      block_bits_(params.block_bits),
      sub_block_bits_(params.sub_block_bits),
      num_blocks_(params.num_bits / params.block_bits),
      bits_(std::move(bits)),
      num_elements_(num_elements) {
  CheckOk(params.Validate());
  SHBF_CHECK(params.num_bits % params.block_bits == 0 &&
             bits_.num_bits() == params.num_bits &&
             bits_.total_bits() == params.num_bits)
      << "split_block_bloom: adopted bits don't match the spec geometry";
  BuildLayout();
}

void SplitBlockBloomFilter::BuildLayout() {
  const uint32_t num_sub = block_bits_ / sub_block_bits_;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    const uint32_t sub = i % num_sub;
    const uint32_t first_bit = sub * sub_block_bits_;
    word_of_[i] = static_cast<uint8_t>(first_bit / 64);
    base_shift_[i] = static_cast<uint8_t>(first_bit % 64);
    rot_word_[i] = static_cast<uint8_t>(i / kFieldsPerWord);
    rot_shift_[i] = static_cast<uint8_t>(6 * (i % kFieldsPerWord));
  }
  num_rot_words_ = (num_hashes_ + kFieldsPerWord - 1) / kFieldsPerWord;
}

// ONE 128-bit pass over the key bytes derives everything: the block from
// h1 (multiply-shift range reduction — high bits), the k in-sub-word
// positions from disjoint 6-bit fields of h2 (low 60 bits), with extra
// position words derived by PARALLEL Mix64 calls when k > 10. Nothing here
// chains — an earlier derivation built the positions from a serial
// SplitMix64 stream plus a per-key MaskFromShifts kernel call, and that
// latency chain (plus per-key vector dispatch) made the split per-key
// query measurably SLOWER than the blocked one it is meant to beat. The
// block prefetch is issued as soon as the block index exists, so the
// position math runs inside the line fetch.
void SplitBlockBloomFilter::DeriveLanes(const void* data, size_t len,
                                        size_t* block_word,
                                        uint64_t* shifts) const {
  const auto [h1, h2] = family_.HashPair(0, data, len);
  *block_word = FastRange64(h1, num_blocks_) * (block_bits_ / 64);
  bits_.Prefetch(*block_word * 64);
  uint64_t pool[kMaxRotWords];
  pool[0] = h2;
  for (uint32_t j = 1; j < num_rot_words_; ++j) {
    pool[j] = Mix64(h1 + 0x9e3779b97f4a7c15ull * j);
  }
  const uint64_t sub_mask = sub_block_bits_ - 1;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    const uint64_t pos = (pool[rot_word_[i]] >> rot_shift_[i]) & sub_mask;
    shifts[i] = base_shift_[i] + pos;
  }
}

void SplitBlockBloomFilter::DeriveProbe(const void* data, size_t len,
                                        size_t* block_word,
                                        uint64_t* mask) const {
  uint64_t shifts[kMaxBatchHashes];
  DeriveLanes(data, len, block_word, shifts);
  const uint32_t words = block_bits_ / 64;
  std::fill(mask, mask + words, 0);
  // Scalar on purpose: k independent shift/ORs pipeline fully, and a
  // per-key kernel call would pay more in dispatch than the vector shift
  // saves at this width. The engine's group path (PrepareShiftLanes) is
  // where MaskFromShifts earns its keep, on whole-group lane arrays.
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    mask[word_of_[i]] |= uint64_t{1} << shifts[i];
  }
}

void SplitBlockBloomFilter::PrepareShiftLanes(std::string_view key,
                                              size_t* block_word,
                                              uint64_t* shifts) const {
  DeriveLanes(key.data(), key.size(), block_word, shifts);
}

bool SplitBlockBloomFilter::ResolveLanes(size_t block_word,
                                         const uint64_t* bit_words) const {
  uint64_t mask[kMaxBlockWords];
  const uint32_t words = block_bits_ / 64;
  std::fill(mask, mask + words, 0);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    mask[word_of_[i]] |= bit_words[i];
  }
  return simd::BlockSubsetTest(bits_.data() + block_word * 8, mask, words);
}

void SplitBlockBloomFilter::Add(const void* data, size_t len) {
  uint64_t mask[kMaxBlockWords];
  size_t block_word;
  DeriveProbe(data, len, &block_word, mask);
  uint8_t* block = bits_.mutable_data() + block_word * 8;
  const uint32_t words = block_bits_ / 64;
  for (uint32_t w = 0; w < words; ++w) {
    uint64_t word;
    std::memcpy(&word, block + w * 8, sizeof(word));
    word |= mask[w];
    std::memcpy(block + w * 8, &word, sizeof(word));
  }
  ++num_elements_;
}

bool SplitBlockBloomFilter::Contains(const void* data, size_t len) const {
  uint64_t mask[kMaxBlockWords];
  size_t block_word;
  DeriveProbe(data, len, &block_word, mask);
  return simd::BlockSubsetTest(bits_.data() + block_word * 8, mask,
                               block_bits_ / 64);
}

bool SplitBlockBloomFilter::ContainsWithStats(std::string_view key,
                                              QueryStats* stats) const {
  ++stats->queries;
  // One block = one memory access regardless of k; ONE 128-bit key pass
  // derives the block and every sub-word probe (non-murmur algorithms fall
  // back to two passes, which this model does not charge for).
  stats->hash_computations += 1;
  ++stats->memory_accesses;
  return Contains(key.data(), key.size());
}

void SplitBlockBloomFilter::PrepareProbe(std::string_view key,
                                         Probe* probe) const {
  DeriveProbe(key.data(), key.size(), &probe->block_word, probe->mask);
}

void SplitBlockBloomFilter::PrefetchProbe(const Probe& probe) const {
  bits_.Prefetch(probe.block_word * 64);
}

bool SplitBlockBloomFilter::ResolveProbe(const Probe& probe) const {
  return simd::BlockSubsetTest(bits_.data() + probe.block_word * 8,
                               probe.mask, block_bits_ / 64);
}

void SplitBlockBloomFilter::ContainsBatch(
    const std::vector<std::string>& keys,
    std::vector<uint8_t>* results) const {
  results->resize(keys.size());
  if (keys.empty()) return;
  constexpr size_t kGroup = 16;
  Probe probes[kGroup];
  for (size_t start = 0; start < keys.size(); start += kGroup) {
    const size_t group = std::min(kGroup, keys.size() - start);
    for (size_t g = 0; g < group; ++g) {
      PrepareProbe(keys[start + g], &probes[g]);
      PrefetchProbe(probes[g]);
    }
    for (size_t g = 0; g < group; ++g) {
      (*results)[start + g] = ResolveProbe(probes[g]) ? 1 : 0;
    }
  }
}

void SplitBlockBloomFilter::Clear() {
  bits_.Clear();
  num_elements_ = 0;
}

Status SplitBlockBloomFilter::MergeFrom(const SplitBlockBloomFilter& other) {
  if (family_.algorithm() != other.family_.algorithm() ||
      family_.master_seed() != other.family_.master_seed() ||
      num_hashes_ != other.num_hashes_ ||
      block_bits_ != other.block_bits_ ||
      sub_block_bits_ != other.sub_block_bits_) {
    return Status::FailedPrecondition(
        "SplitBlockBloomFilter::MergeFrom: hash families differ");
  }
  if (!bits_.OrWith(other.bits_)) {
    return Status::FailedPrecondition(
        "SplitBlockBloomFilter::MergeFrom: geometry differs");
  }
  num_elements_ += other.num_elements_;
  return Status::Ok();
}

std::string SplitBlockBloomFilter::ToBytes() const {
  ByteWriter writer;
  serde::WriteHeader(&writer, serde::StructureTag::kSplitBlockBloomFilter);
  writer.PutU64(bits_.num_bits());
  writer.PutU32(num_hashes_);
  writer.PutU32(block_bits_);
  writer.PutU32(sub_block_bits_);
  writer.PutU8(static_cast<uint8_t>(family_.algorithm()));
  writer.PutU64(family_.master_seed());
  writer.PutU64(num_elements_);
  bits_.AppendPayload(&writer);
  return writer.Take();
}

Status SplitBlockBloomFilter::FromBytes(
    std::string_view bytes, std::optional<SplitBlockBloomFilter>* out) {
  ByteReader reader(bytes);
  Status header =
      serde::ReadHeader(&reader, serde::StructureTag::kSplitBlockBloomFilter);
  if (!header.ok()) return header;
  uint64_t num_bits = 0;
  uint32_t num_hashes = 0;
  uint32_t block_bits = 0;
  uint32_t sub_block_bits = 0;
  uint8_t alg = 0;
  uint64_t seed = 0;
  uint64_t num_elements = 0;
  if (!reader.GetU64(&num_bits) || !reader.GetU32(&num_hashes) ||
      !reader.GetU32(&block_bits) || !reader.GetU32(&sub_block_bits) ||
      !reader.GetU8(&alg) || !reader.GetU64(&seed) ||
      !reader.GetU64(&num_elements)) {
    return Status::InvalidArgument(
        "SplitBlockBloomFilter: truncated parameter block");
  }
  if (alg > 3) {
    return Status::InvalidArgument("SplitBlockBloomFilter: unknown hash id");
  }
  Params params{.num_bits = num_bits,
                .num_hashes = num_hashes,
                .block_bits = block_bits,
                .sub_block_bits = sub_block_bits,
                .hash_algorithm = static_cast<HashAlgorithm>(alg),
                .seed = seed};
  Status valid = params.Validate();
  if (!valid.ok()) return valid;
  if (num_bits % block_bits != 0) {
    return Status::InvalidArgument(
        "SplitBlockBloomFilter: num_bits not block-aligned");
  }
  out->emplace(params);
  (*out)->num_elements_ = num_elements;
  if (!(*out)->bits_.ReadPayload(&reader) || !reader.AtEnd()) {
    out->reset();
    return Status::InvalidArgument("SplitBlockBloomFilter: payload mismatch");
  }
  return Status::Ok();
}

}  // namespace shbf
