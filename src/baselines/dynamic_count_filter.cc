#include "baselines/dynamic_count_filter.h"

#include <algorithm>

namespace shbf {

Status DynamicCountFilter::Params::Validate() const {
  if (num_counters == 0) {
    return Status::InvalidArgument("DCF: num_counters must be positive");
  }
  if (num_hashes == 0) {
    return Status::InvalidArgument("DCF: num_hashes must be positive");
  }
  if (base_bits < 1 || base_bits > 16) {
    return Status::InvalidArgument("DCF: base_bits must be in [1, 16]");
  }
  return Status::Ok();
}

DynamicCountFilter::DynamicCountFilter(const Params& params)
    : family_(params.hash_algorithm, params.num_hashes, params.seed),
      base_(params.num_counters, params.base_bits) {
  CheckOk(params.Validate());
}

uint64_t DynamicCountFilter::Combined(size_t i) const {
  uint64_t value = base_.Get(i);
  if (overflow_ != nullptr) {
    value |= overflow_->Get(i) << base_.bits_per_counter();
  }
  return value;
}

void DynamicCountFilter::GrowOverflow() {
  uint32_t new_bits = overflow_ == nullptr ? 1 : overflow_->bits_per_counter() + 1;
  auto wider = std::make_unique<PackedCounterArray>(base_.num_counters(),
                                                    new_bits);
  if (overflow_ != nullptr) {
    for (size_t i = 0; i < overflow_->num_counters(); ++i) {
      wider->Set(i, overflow_->Get(i));
    }
  }
  overflow_ = std::move(wider);
  ++rebuilds_;
}

void DynamicCountFilter::MaybeShrinkOverflow() {
  if (overflow_ == nullptr) return;
  // Amortize the full scan: only check once per m deletions.
  if (++deletes_since_shrink_check_ < base_.num_counters()) return;
  deletes_since_shrink_check_ = 0;
  uint64_t max_value = 0;
  for (size_t i = 0; i < overflow_->num_counters(); ++i) {
    max_value = std::max(max_value, overflow_->Get(i));
  }
  uint32_t needed_bits = 0;
  while (max_value >> needed_bits) ++needed_bits;
  if (needed_bits >= overflow_->bits_per_counter()) return;
  if (needed_bits == 0) {
    overflow_.reset();
    ++rebuilds_;
    return;
  }
  auto narrower =
      std::make_unique<PackedCounterArray>(base_.num_counters(), needed_bits);
  for (size_t i = 0; i < overflow_->num_counters(); ++i) {
    narrower->Set(i, overflow_->Get(i));
  }
  overflow_ = std::move(narrower);
  ++rebuilds_;
}

void DynamicCountFilter::IncrementAt(size_t i) {
  uint64_t low = base_.Get(i);
  if (low < base_.max_value()) {
    base_.Set(i, low + 1);
    return;
  }
  // Carry into the overflow vector, growing it if the carry does not fit.
  base_.Set(i, 0);
  if (overflow_ == nullptr || overflow_->Get(i) == overflow_->max_value()) {
    GrowOverflow();
  }
  overflow_->Set(i, overflow_->Get(i) + 1);
}

void DynamicCountFilter::DecrementAt(size_t i) {
  uint64_t low = base_.Get(i);
  if (low > 0) {
    base_.Set(i, low - 1);
    return;
  }
  // Borrow from the overflow vector.
  SHBF_CHECK(overflow_ != nullptr && overflow_->Get(i) > 0)
      << "DCF counter underflow at index " << i;
  overflow_->Set(i, overflow_->Get(i) - 1);
  base_.Set(i, base_.max_value());
}

void DynamicCountFilter::Insert(std::string_view key) {
  const size_t m = base_.num_counters();
  for (uint32_t i = 0; i < family_.num_functions(); ++i) {
    IncrementAt(family_.Hash(i, key) % m);
  }
}

void DynamicCountFilter::Delete(std::string_view key) {
  const size_t m = base_.num_counters();
  for (uint32_t i = 0; i < family_.num_functions(); ++i) {
    DecrementAt(family_.Hash(i, key) % m);
  }
  MaybeShrinkOverflow();
}

uint64_t DynamicCountFilter::QueryCount(std::string_view key) const {
  const size_t m = base_.num_counters();
  uint64_t min_value = ~0ull;
  for (uint32_t i = 0; i < family_.num_functions(); ++i) {
    min_value = std::min(min_value, Combined(family_.Hash(i, key) % m));
    if (min_value == 0) return 0;
  }
  return min_value;
}

uint64_t DynamicCountFilter::QueryCountWithStats(std::string_view key,
                                                 QueryStats* stats) const {
  const size_t m = base_.num_counters();
  ++stats->queries;
  uint64_t min_value = ~0ull;
  const uint64_t accesses_per_probe = overflow_ == nullptr ? 1 : 2;
  for (uint32_t i = 0; i < family_.num_functions(); ++i) {
    ++stats->hash_computations;
    stats->memory_accesses += accesses_per_probe;  // CBFV (+ OFV)
    min_value = std::min(min_value, Combined(family_.Hash(i, key) % m));
    if (min_value == 0) return 0;
  }
  return min_value;
}

size_t DynamicCountFilter::memory_bits() const {
  size_t bits = base_.num_counters() * base_.bits_per_counter();
  if (overflow_ != nullptr) {
    bits += overflow_->num_counters() * overflow_->bits_per_counter();
  }
  return bits;
}

std::string DynamicCountFilter::ToBytes() const {
  ByteWriter writer;
  serde::WriteHeader(&writer, serde::StructureTag::kDynamicCountFilter);
  writer.PutU64(base_.num_counters());
  writer.PutU32(family_.num_functions());
  writer.PutU32(base_.bits_per_counter());
  writer.PutU8(static_cast<uint8_t>(family_.algorithm()));
  writer.PutU64(family_.master_seed());
  writer.PutU64(rebuilds_);
  writer.PutU64(deletes_since_shrink_check_);
  // 0 = no overflow vector; otherwise its current counter width.
  writer.PutU32(overflow_ == nullptr ? 0 : overflow_->bits_per_counter());
  base_.AppendPayload(&writer);
  if (overflow_ != nullptr) overflow_->AppendPayload(&writer);
  return writer.Take();
}

Status DynamicCountFilter::FromBytes(std::string_view bytes,
                                     std::optional<DynamicCountFilter>* out) {
  ByteReader reader(bytes);
  Status header =
      serde::ReadHeader(&reader, serde::StructureTag::kDynamicCountFilter);
  if (!header.ok()) return header;
  uint64_t num_counters = 0;
  uint32_t num_hashes = 0;
  uint32_t base_bits = 0;
  uint8_t alg = 0;
  uint64_t seed = 0;
  uint64_t rebuilds = 0;
  uint64_t deletes_since = 0;
  uint32_t overflow_bits = 0;
  if (!reader.GetU64(&num_counters) || !reader.GetU32(&num_hashes) ||
      !reader.GetU32(&base_bits) || !reader.GetU8(&alg) ||
      !reader.GetU64(&seed) || !reader.GetU64(&rebuilds) ||
      !reader.GetU64(&deletes_since) || !reader.GetU32(&overflow_bits)) {
    return Status::InvalidArgument("DCF: truncated parameter block");
  }
  if (alg > 3) return Status::InvalidArgument("DCF: unknown hash id");
  if (overflow_bits > 32) {
    return Status::InvalidArgument("DCF: overflow width out of range");
  }
  Params params{.num_counters = num_counters,
                .num_hashes = num_hashes,
                .base_bits = base_bits,
                .hash_algorithm = static_cast<HashAlgorithm>(alg),
                .seed = seed};
  Status valid = params.Validate();
  if (!valid.ok()) return valid;
  out->emplace(params);
  (*out)->rebuilds_ = rebuilds;
  (*out)->deletes_since_shrink_check_ = deletes_since;
  if (!(*out)->base_.ReadPayload(&reader)) {
    out->reset();
    return Status::InvalidArgument("DCF: truncated base payload");
  }
  if (overflow_bits > 0) {
    (*out)->overflow_ =
        std::make_unique<PackedCounterArray>(num_counters, overflow_bits);
    if (!(*out)->overflow_->ReadPayload(&reader)) {
      out->reset();
      return Status::InvalidArgument("DCF: truncated overflow payload");
    }
  }
  if (!reader.AtEnd()) {
    out->reset();
    return Status::InvalidArgument("DCF: payload size mismatch");
  }
  return Status::Ok();
}

}  // namespace shbf
