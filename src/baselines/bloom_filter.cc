#include "baselines/bloom_filter.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace shbf {

Status BloomFilter::Params::Validate() const {
  if (num_bits == 0) {
    return Status::InvalidArgument("BloomFilter: num_bits must be positive");
  }
  if (num_hashes == 0) {
    return Status::InvalidArgument("BloomFilter: num_hashes must be positive");
  }
  return Status::Ok();
}

size_t BloomFilter::OptimalNumBits(size_t num_elements, double fpr) {
  SHBF_CHECK(num_elements > 0);
  SHBF_CHECK(fpr > 0.0 && fpr < 1.0);
  double ln2 = std::log(2.0);
  double m = -static_cast<double>(num_elements) * std::log(fpr) / (ln2 * ln2);
  return static_cast<size_t>(std::ceil(m));
}

uint32_t BloomFilter::OptimalNumHashes(size_t num_bits, size_t num_elements) {
  SHBF_CHECK(num_elements > 0);
  double k = static_cast<double>(num_bits) / num_elements * std::log(2.0);
  return static_cast<uint32_t>(std::max(1.0, std::round(k)));
}

BloomFilter::BloomFilter(const Params& params)
    : family_(params.hash_algorithm, params.num_hashes, params.seed),
      // No shifting here: slack 0; the BitArray still pads guard bytes.
      bits_(params.num_bits, /*slack_bits=*/0) {
  CheckOk(params.Validate());
}

BloomFilter::BloomFilter(const Params& params, BitArray bits,
                         size_t num_elements)
    : family_(params.hash_algorithm, params.num_hashes, params.seed),
      bits_(std::move(bits)),
      num_elements_(num_elements) {
  CheckOk(params.Validate());
  SHBF_CHECK(bits_.num_bits() == params.num_bits &&
             bits_.total_bits() == params.num_bits)
      << "bloom: adopted bits don't match the spec geometry";
}

void BloomFilter::Add(const void* data, size_t len) {
  const size_t m = bits_.num_bits();
  for (uint32_t i = 0; i < family_.num_functions(); ++i) {
    bits_.SetBit(family_.Hash(i, data, len) % m);
  }
  ++num_elements_;
}

bool BloomFilter::Contains(const void* data, size_t len) const {
  const size_t m = bits_.num_bits();
  for (uint32_t i = 0; i < family_.num_functions(); ++i) {
    if (!bits_.GetBit(family_.Hash(i, data, len) % m)) return false;
  }
  return true;
}

bool BloomFilter::ContainsWithStats(std::string_view key,
                                    QueryStats* stats) const {
  const size_t m = bits_.num_bits();
  ++stats->queries;
  for (uint32_t i = 0; i < family_.num_functions(); ++i) {
    ++stats->hash_computations;
    ++stats->memory_accesses;
    if (!bits_.GetBit(family_.Hash(i, key.data(), key.size()) % m)) {
      return false;
    }
  }
  return true;
}

void BloomFilter::Clear() {
  bits_.Clear();
  num_elements_ = 0;
}

Status BloomFilter::MergeFrom(const BloomFilter& other) {
  if (family_.algorithm() != other.family_.algorithm() ||
      family_.master_seed() != other.family_.master_seed() ||
      num_hashes() != other.num_hashes()) {
    return Status::FailedPrecondition(
        "BloomFilter::MergeFrom: hash families differ");
  }
  if (!bits_.OrWith(other.bits_)) {
    return Status::FailedPrecondition(
        "BloomFilter::MergeFrom: geometry differs");
  }
  num_elements_ += other.num_elements_;
  return Status::Ok();
}

void BloomFilter::PrepareProbe(std::string_view key, Probe* probe) const {
  const size_t m = bits_.num_bits();
  const uint32_t k = family_.num_functions();
  SHBF_DCHECK(k <= kMaxBatchHashes);
  for (uint32_t i = 0; i < k; ++i) {
    probe->positions[i] = family_.Hash(i, key.data(), key.size()) % m;
  }
}

void BloomFilter::PrefetchProbe(const Probe& probe) const {
  const uint32_t k = family_.num_functions();
  for (uint32_t i = 0; i < k; ++i) bits_.Prefetch(probe.positions[i]);
}

bool BloomFilter::ResolveProbe(const Probe& probe) const {
  const uint32_t k = family_.num_functions();
  for (uint32_t i = 0; i < k; ++i) {
    if (!bits_.GetBit(probe.positions[i])) return false;
  }
  return true;
}

void BloomFilter::ContainsBatch(const std::vector<std::string>& keys,
                                std::vector<uint8_t>* results) const {
  results->resize(keys.size());
  if (keys.empty()) return;
  constexpr size_t kGroup = 16;
  SHBF_CHECK(family_.num_functions() <= kMaxBatchHashes)
      << "batch path supports k <= 64";

  Probe probes[kGroup];
  for (size_t start = 0; start < keys.size(); start += kGroup) {
    size_t group = std::min(kGroup, keys.size() - start);
    for (size_t g = 0; g < group; ++g) {
      PrepareProbe(keys[start + g], &probes[g]);
      PrefetchProbe(probes[g]);
    }
    for (size_t g = 0; g < group; ++g) {
      (*results)[start + g] = ResolveProbe(probes[g]) ? 1 : 0;
    }
  }
}

std::string BloomFilter::ToBytes() const {
  ByteWriter writer;
  serde::WriteHeader(&writer, serde::StructureTag::kBloomFilter);
  writer.PutU64(bits_.num_bits());
  writer.PutU32(family_.num_functions());
  writer.PutU8(static_cast<uint8_t>(family_.algorithm()));
  writer.PutU64(family_.master_seed());
  writer.PutU64(num_elements_);
  bits_.AppendPayload(&writer);
  return writer.Take();
}

Status BloomFilter::FromBytes(std::string_view bytes,
                              std::optional<BloomFilter>* out) {
  ByteReader reader(bytes);
  Status header = serde::ReadHeader(&reader, serde::StructureTag::kBloomFilter);
  if (!header.ok()) return header;
  uint64_t num_bits = 0;
  uint32_t num_hashes = 0;
  uint8_t alg = 0;
  uint64_t seed = 0;
  uint64_t num_elements = 0;
  if (!reader.GetU64(&num_bits) || !reader.GetU32(&num_hashes) ||
      !reader.GetU8(&alg) || !reader.GetU64(&seed) ||
      !reader.GetU64(&num_elements)) {
    return Status::InvalidArgument("BloomFilter: truncated parameter block");
  }
  Params params{.num_bits = num_bits,
                .num_hashes = num_hashes,
                .hash_algorithm = static_cast<HashAlgorithm>(alg),
                .seed = seed};
  if (alg > 3) return Status::InvalidArgument("BloomFilter: unknown hash id");
  Status valid = params.Validate();
  if (!valid.ok()) return valid;
  out->emplace(params);
  (*out)->num_elements_ = num_elements;
  if (!(*out)->bits_.ReadPayload(&reader) || !reader.AtEnd()) {
    out->reset();
    return Status::InvalidArgument("BloomFilter: payload size mismatch");
  }
  return Status::Ok();
}

}  // namespace shbf
