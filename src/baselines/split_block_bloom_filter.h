// Split-block Bloom filter (cf. Boost.Bloom's multiblock<> subfilters) —
// the one-vector-op-per-key membership baseline.
//
// The blocked filter (blocked_bloom_filter.h) already confines a key's k
// probes to one cache-line block, but derives each probe position with a
// serial modulo/scatter chain: position bits land anywhere in the block, so
// building the probe mask is k dependent OR-scatters. The split-block
// layout divides the block into `sub_block_bits`-wide sub-words and pins
// probe i to sub-word i % num_sub — the probe-to-word mapping becomes
// key-independent and the whole derivation chain goes wide:
//
//   * ONE 128-bit hash pass (HashFamily::HashPair) replaces the two 64-bit
//     passes the blocked variants pay;
//   * the block index is a multiply-shift range reduction (FastRange64),
//     not a division;
//   * the k in-sub-word positions are disjoint 6-bit FIELDS of h2 (plus
//     parallel Mix64 words when k > 10) — no serial SplitMix64 chain, every
//     position extracts independently;
//   * per key the mask is k independent shift/ORs (the compiler's ILP
//     covers them inside the block fetch latency); across a batch the
//     engine concatenates every key's shift lanes and builds ALL masks of a
//     group with ONE simd::MaskFromShifts call (AVX2 `vpsllvq` / NEON
//     `vshlq` / AVX-512 zmm) — see PrepareShiftLanes/ResolveLanes.
//
// The resolve is the same whole-block subset test as the blocked filter
// (simd::BlockSubsetTest; one 512-bit op on AVX-512F).
//
// Geometry: sub_block_bits ∈ {8, 16, 32, 64} (powers of two dividing 64,
// so a sub-word never straddles a 64-bit word), block_bits a multiple of
// 64 in [64, 512]. When k < num_sub some sub-words go permanently unused
// (wasted bits); the registry factory sizes block_bits = k * sub_block_bits
// (clamped) so the default geometry wastes nothing and probe i owns word i.
//
// FPR: one probe per sub-word is the classic partitioned-Bloom variant of
// the blocked filter — same Poisson block-loading penalty, bounded by the
// bench's acceptance gate at 2x the unblocked base at equal bits/key.

#ifndef SHBF_BASELINES_SPLIT_BLOCK_BLOOM_FILTER_H_
#define SHBF_BASELINES_SPLIT_BLOCK_BLOOM_FILTER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/bit_array.h"
#include "core/query_stats.h"
#include "core/serde.h"
#include "core/status.h"
#include "hash/hash_family.h"

namespace shbf {

class SplitBlockBloomFilter {
 public:
  /// Same block bounds as the blocked filter: a probe mask fits 8 words.
  static constexpr uint32_t kMinBlockBits = 64;
  static constexpr uint32_t kMaxBlockBits = 512;
  static constexpr uint32_t kMaxBlockWords = kMaxBlockBits / 64;

  /// Largest k the probe/batch paths support.
  static constexpr uint32_t kMaxBatchHashes = 64;

  struct Params {
    size_t num_bits = 0;      ///< m; rounded up to a multiple of block_bits
    uint32_t num_hashes = 0;  ///< k probes, one per sub-word (round-robin)
    uint32_t block_bits = 512;      ///< multiple of 64 in [64, 512]
    uint32_t sub_block_bits = 64;   ///< power of two in [8, 64]
    HashAlgorithm hash_algorithm = HashAlgorithm::kMurmur3;
    uint64_t seed = 0x5eed5eed5eed5eedull;

    Status Validate() const;
  };

  explicit SplitBlockBloomFilter(const Params& params);

  /// Wraps externally stored bits (a BitArray::View into an mmap'd image
  /// region) without copying. `params.num_bits` must already be block-
  /// aligned and equal the view's num_bits (slack 0); the registry's
  /// mapped opener validates the on-disk geometry first. Read-only usage.
  SplitBlockBloomFilter(const Params& params, BitArray bits,
                        size_t num_elements);

  /// Inserts `key`: one 128-bit hash pass over the key bytes (the block and
  /// all k sub-word positions derive from its two halves).
  void Add(std::string_view key) { Add(key.data(), key.size()); }
  void Add(const void* data, size_t len);

  /// Membership query; no false negatives. One block read, one subset test.
  bool Contains(std::string_view key) const {
    return Contains(key.data(), key.size());
  }
  bool Contains(const void* data, size_t len) const;

  /// Query under the paper's cost model: the whole block is one memory
  /// access; two hash computations.
  bool ContainsWithStats(std::string_view key, QueryStats* stats) const;

  /// Batched membership query (two-pass prepare/prefetch/resolve groups).
  void ContainsBatch(const std::vector<std::string>& keys,
                     std::vector<uint8_t>* results) const;

  /// Precomputed query state — same shape as BlockedBloomFilter::Probe, so
  /// the engine resolves both through one BlockSubsetTest path.
  struct Probe {
    size_t block_word;              ///< first word of the block
    uint64_t mask[kMaxBlockWords];  ///< bits the key needs set
  };

  /// Computes `key`'s block and probe mask (one hash pass + k shift/ORs);
  /// also issues the block prefetch, so the mask math overlaps the fetch.
  void PrepareProbe(std::string_view key, Probe* probe) const;

  /// Hints the cache to fetch the (single) block `probe` reads.
  void PrefetchProbe(const Probe& probe) const;

  /// Resolves a prepared probe; identical answer to Contains(key).
  bool ResolveProbe(const Probe& probe) const;

  /// Lanes per key in the group-batched protocol (= num_hashes()).
  uint32_t probe_lanes() const { return num_hashes_; }

  /// Writes `key`'s probe_lanes() shift values (base_shift + in-sub-word
  /// position, each < 64) and its block word, and prefetches the block.
  /// The engine concatenates the lanes of a whole group and turns them
  /// into mask bits with ONE simd::MaskFromShifts call.
  void PrepareShiftLanes(std::string_view key, size_t* block_word,
                         uint64_t* shifts) const;

  /// Folds the group kernel's per-lane bit words (bit_words[i] ==
  /// 1 << shifts[i]) back into the block mask and resolves; identical
  /// answer to Contains(key).
  bool ResolveLanes(size_t block_word, const uint64_t* bit_words) const;

  size_t num_bits() const { return bits_.num_bits(); }
  uint32_t num_hashes() const { return num_hashes_; }
  uint32_t block_bits() const { return block_bits_; }
  uint32_t block_words() const { return block_bits_ / 64; }
  uint32_t sub_block_bits() const { return sub_block_bits_; }
  uint32_t num_sub_blocks() const { return block_bits_ / sub_block_bits_; }
  size_t num_blocks() const { return num_blocks_; }
  HashAlgorithm hash_algorithm() const { return family_.algorithm(); }
  uint64_t seed() const { return family_.master_seed(); }
  size_t num_elements() const { return num_elements_; }
  const BitArray& bits() const { return bits_; }

  void Clear();

  /// Set-union via bitwise OR; both filters must share geometry, hash
  /// family, seed, block and sub-block size.
  Status MergeFrom(const SplitBlockBloomFilter& other);

  /// Serializes parameters + bit payload to a versioned byte blob.
  std::string ToBytes() const;

  /// Reconstructs a filter that answers identically to the serialized one.
  static Status FromBytes(std::string_view bytes,
                          std::optional<SplitBlockBloomFilter>* out);

 private:
  /// 6-bit position fields per 64-bit pool word; pool word 0 is h2 itself,
  /// further words are parallel Mix64 derivations (no serial chain).
  static constexpr uint32_t kFieldsPerWord = 10;
  static constexpr uint32_t kMaxRotWords =
      (kMaxBatchHashes + kFieldsPerWord - 1) / kFieldsPerWord;

  /// One hash pass; hands back the block's first word (prefetched) and the
  /// k shift lanes (base_shift + in-sub-word position).
  void DeriveLanes(const void* data, size_t len, size_t* block_word,
                   uint64_t* shifts) const;

  /// DeriveLanes + the scalar mask build (mask[word_of_[i]] |= 1 << shift).
  void DeriveProbe(const void* data, size_t len, size_t* block_word,
                   uint64_t* mask) const;

  /// Fills word_of_/base_shift_/rot_word_/rot_shift_ from the
  /// (key-independent) probe→sub-word round-robin mapping.
  void BuildLayout();

  HashFamily family_;  // one 128-bit pass; positions are fields of h2
  uint32_t num_hashes_;
  uint32_t block_bits_;
  uint32_t sub_block_bits_;
  size_t num_blocks_;
  BitArray bits_;
  size_t num_elements_ = 0;

  /// Probe i's block word and its sub-word's bit offset inside that word;
  /// key-independent because sub_block_bits divides 64.
  uint8_t word_of_[kMaxBatchHashes];
  uint8_t base_shift_[kMaxBatchHashes];
  /// Which position-pool word probe i's 6-bit field lives in, and the
  /// field's shift inside it.
  uint8_t rot_word_[kMaxBatchHashes];
  uint8_t rot_shift_[kMaxBatchHashes];
  uint32_t num_rot_words_ = 1;
};

}  // namespace shbf

#endif  // SHBF_BASELINES_SPLIT_BLOCK_BLOOM_FILTER_H_
