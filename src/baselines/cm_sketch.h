// Count-Min sketch (Cormode & Muthukrishnan, J. Algorithms 2005) — the other
// multiplicity comparator (§2.3, §5.5, Fig 11) and the base for the shifting
// SCM sketch.
//
// d rows ("vectors") of r counters each, one hash function per row. Insert
// increments one counter per row; query reports the minimum — an estimate
// that never underestimates. The optional conservative-update mode (an
// ablation; not in the paper's evaluation) increments only the counters that
// must grow, trading update cost for accuracy.

#ifndef SHBF_BASELINES_CM_SKETCH_H_
#define SHBF_BASELINES_CM_SKETCH_H_

#include <optional>
#include <string>
#include <string_view>

#include "core/packed_counter_array.h"
#include "core/query_stats.h"
#include "core/serde.h"
#include "core/status.h"
#include "hash/hash_family.h"

namespace shbf {

class CmSketch {
 public:
  struct Params {
    uint32_t depth = 0;         ///< d rows
    size_t width = 0;           ///< r counters per row
    uint32_t counter_bits = 6;  ///< matches the paper's evaluation setting
    bool conservative_update = false;
    HashAlgorithm hash_algorithm = HashAlgorithm::kMurmur3;
    uint64_t seed = 0x5eed5eed5eed5eedull;

    Status Validate() const;
  };

  explicit CmSketch(const Params& params);

  /// Adds one occurrence of `key`.
  void Insert(std::string_view key);

  /// Point estimate: min over the d counters. Never underestimates.
  uint64_t QueryCount(std::string_view key) const;
  uint64_t QueryCountWithStats(std::string_view key, QueryStats* stats) const;

  uint32_t depth() const { return depth_; }
  size_t width() const { return width_; }
  size_t memory_bits() const {
    return counters_.num_counters() * counters_.bits_per_counter();
  }
  void Clear() { counters_.Clear(); }

  /// Serializes parameters + counter payload to a versioned byte blob.
  std::string ToBytes() const;

  /// Reconstructs a sketch that answers identically to the serialized one.
  static Status FromBytes(std::string_view bytes,
                          std::optional<CmSketch>* out);

 private:
  size_t CellIndex(uint32_t row, std::string_view key) const {
    return static_cast<size_t>(row) * width_ + family_.Hash(row, key) % width_;
  }

  HashFamily family_;
  uint32_t depth_;
  size_t width_;
  bool conservative_;
  PackedCounterArray counters_;  // row-major d × r
};

}  // namespace shbf

#endif  // SHBF_BASELINES_CM_SKETCH_H_
