// Spectral Bloom filter (Cohen & Matias, SIGMOD 2003) — the state-of-the-art
// multiplicity-query comparator (§2.3, §6.4).
//
// An array of m small counters indexed by k hash functions. Two of the
// paper's three versions are implemented:
//   * kIncrementAll — insertion increments all k counters (a CBF used for
//     counting); supports deletes.
//   * kMinimumIncrease — insertion increments only the counter(s) currently
//     holding the minimum value; lower error, but no deletes or updates.
// A query returns the minimum of the k counters (the "MS" minimal-selection
// estimator): never an underestimate, so multiplicity answers have no false
// negatives, mirroring ShBF_X's guarantee.

#ifndef SHBF_BASELINES_SPECTRAL_BLOOM_FILTER_H_
#define SHBF_BASELINES_SPECTRAL_BLOOM_FILTER_H_

#include <optional>
#include <string>
#include <string_view>

#include "core/packed_counter_array.h"
#include "core/query_stats.h"
#include "core/serde.h"
#include "core/status.h"
#include "hash/hash_family.h"

namespace shbf {

class SpectralBloomFilter {
 public:
  enum class InsertPolicy {
    kIncrementAll = 0,
    kMinimumIncrease = 1,
  };

  struct Params {
    size_t num_counters = 0;    ///< m
    uint32_t num_hashes = 0;    ///< k
    uint32_t counter_bits = 6;  ///< the paper's evaluation uses 6-bit counters
    InsertPolicy policy = InsertPolicy::kIncrementAll;
    HashAlgorithm hash_algorithm = HashAlgorithm::kMurmur3;
    uint64_t seed = 0x5eed5eed5eed5eedull;

    Status Validate() const;
  };

  explicit SpectralBloomFilter(const Params& params);

  /// Adds one occurrence of `key` (per the configured policy).
  void Insert(std::string_view key);

  /// Removes one occurrence. Only valid under kIncrementAll.
  void Delete(std::string_view key);

  /// Estimated multiplicity: min over the k counters. Zero means "not
  /// present". Never underestimates (no false negatives).
  uint64_t QueryCount(std::string_view key) const;
  uint64_t QueryCountWithStats(std::string_view key, QueryStats* stats) const;

  size_t num_counters() const { return counters_.num_counters(); }
  uint32_t num_hashes() const { return family_.num_functions(); }
  InsertPolicy policy() const { return policy_; }
  size_t memory_bits() const {
    return counters_.num_counters() * counters_.bits_per_counter();
  }
  void Clear() { counters_.Clear(); }

  /// Serializes parameters + counter payload to a versioned byte blob.
  std::string ToBytes() const;

  /// Reconstructs a filter that answers identically to the serialized one.
  static Status FromBytes(std::string_view bytes,
                          std::optional<SpectralBloomFilter>* out);

 private:
  HashFamily family_;
  PackedCounterArray counters_;
  InsertPolicy policy_;
};

}  // namespace shbf

#endif  // SHBF_BASELINES_SPECTRAL_BLOOM_FILTER_H_
