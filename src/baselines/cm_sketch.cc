#include "baselines/cm_sketch.h"

#include <algorithm>

namespace shbf {

Status CmSketch::Params::Validate() const {
  if (depth == 0) {
    return Status::InvalidArgument("CmSketch: depth must be positive");
  }
  if (width == 0) {
    return Status::InvalidArgument("CmSketch: width must be positive");
  }
  if (counter_bits < 1 || counter_bits > 32) {
    return Status::InvalidArgument("CmSketch: counter_bits must be in [1,32]");
  }
  return Status::Ok();
}

CmSketch::CmSketch(const Params& params)
    : family_(params.hash_algorithm, params.depth, params.seed),
      depth_(params.depth),
      width_(params.width),
      conservative_(params.conservative_update),
      counters_(static_cast<size_t>(params.depth) * params.width,
                params.counter_bits) {
  CheckOk(params.Validate());
}

void CmSketch::Insert(std::string_view key) {
  if (!conservative_) {
    for (uint32_t row = 0; row < depth_; ++row) {
      counters_.Increment(CellIndex(row, key));
    }
    return;
  }
  // Conservative update: the new estimate must be current_min + 1; only
  // counters below that need to move.
  uint64_t min_value = ~0ull;
  size_t cells[64];
  SHBF_CHECK(depth_ <= 64) << "CmSketch: depth too large";
  for (uint32_t row = 0; row < depth_; ++row) {
    cells[row] = CellIndex(row, key);
    min_value = std::min(min_value, counters_.Get(cells[row]));
  }
  uint64_t target = min_value + 1;
  for (uint32_t row = 0; row < depth_; ++row) {
    uint64_t v = counters_.Get(cells[row]);
    if (v < target && v < counters_.max_value()) {
      counters_.Set(cells[row], std::min(target, counters_.max_value()));
    }
  }
}

uint64_t CmSketch::QueryCount(std::string_view key) const {
  if (depth_ > 64) {
    // Past the gather buffer: the plain early-exit loop.
    uint64_t min_value = ~0ull;
    for (uint32_t row = 0; row < depth_; ++row) {
      min_value = std::min(min_value, counters_.Get(CellIndex(row, key)));
      if (min_value == 0) return 0;
    }
    return min_value;
  }
  // Gather every row's cell, extract all counters in one SIMD pass, then
  // take the min — same answer as the per-row loop.
  size_t cells[64];
  uint64_t values[64];
  for (uint32_t row = 0; row < depth_; ++row) cells[row] = CellIndex(row, key);
  counters_.GetMany(cells, depth_, values);
  uint64_t min_value = values[0];
  for (uint32_t row = 1; row < depth_; ++row) {
    min_value = std::min(min_value, values[row]);
  }
  return min_value;
}

uint64_t CmSketch::QueryCountWithStats(std::string_view key,
                                       QueryStats* stats) const {
  ++stats->queries;
  uint64_t min_value = ~0ull;
  for (uint32_t row = 0; row < depth_; ++row) {
    ++stats->hash_computations;
    ++stats->memory_accesses;
    min_value = std::min(min_value, counters_.Get(CellIndex(row, key)));
    if (min_value == 0) return 0;
  }
  return min_value;
}

std::string CmSketch::ToBytes() const {
  ByteWriter writer;
  serde::WriteHeader(&writer, serde::StructureTag::kCmSketch);
  writer.PutU32(depth_);
  writer.PutU64(width_);
  writer.PutU32(counters_.bits_per_counter());
  writer.PutU8(conservative_ ? 1 : 0);
  writer.PutU8(static_cast<uint8_t>(family_.algorithm()));
  writer.PutU64(family_.master_seed());
  counters_.AppendPayload(&writer);
  return writer.Take();
}

Status CmSketch::FromBytes(std::string_view bytes,
                           std::optional<CmSketch>* out) {
  ByteReader reader(bytes);
  Status header = serde::ReadHeader(&reader, serde::StructureTag::kCmSketch);
  if (!header.ok()) return header;
  uint32_t depth = 0;
  uint64_t width = 0;
  uint32_t counter_bits = 0;
  uint8_t conservative = 0;
  uint8_t alg = 0;
  uint64_t seed = 0;
  if (!reader.GetU32(&depth) || !reader.GetU64(&width) ||
      !reader.GetU32(&counter_bits) || !reader.GetU8(&conservative) ||
      !reader.GetU8(&alg) || !reader.GetU64(&seed)) {
    return Status::InvalidArgument("CmSketch: truncated parameter block");
  }
  if (alg > 3) return Status::InvalidArgument("CmSketch: unknown hash id");
  Params params{.depth = depth,
                .width = width,
                .counter_bits = counter_bits,
                .conservative_update = conservative != 0,
                .hash_algorithm = static_cast<HashAlgorithm>(alg),
                .seed = seed};
  Status valid = params.Validate();
  if (!valid.ok()) return valid;
  out->emplace(params);
  if (!(*out)->counters_.ReadPayload(&reader) || !reader.AtEnd()) {
    out->reset();
    return Status::InvalidArgument("CmSketch: payload size mismatch");
  }
  return Status::Ok();
}

}  // namespace shbf
