#include "baselines/blocked_bloom_filter.h"

#include <algorithm>
#include <cstring>

#include "core/bits.h"
#include "core/rng.h"
#include "core/simd.h"

namespace shbf {

namespace {
bool IsPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Status BlockedBloomFilter::Params::Validate() const {
  if (num_bits == 0) {
    return Status::InvalidArgument(
        "BlockedBloomFilter: num_bits must be positive");
  }
  if (num_hashes == 0) {
    return Status::InvalidArgument(
        "BlockedBloomFilter: num_hashes must be positive");
  }
  if (block_bits < kMinBlockBits || block_bits > kMaxBlockBits ||
      !IsPowerOfTwo(block_bits)) {
    return Status::InvalidArgument(
        "BlockedBloomFilter: block_bits must be a power of two in [64, 512]");
  }
  return Status::Ok();
}

BlockedBloomFilter::BlockedBloomFilter(const Params& params)
    : family_(params.hash_algorithm, 2, params.seed),
      num_hashes_(params.num_hashes),
      block_bits_(params.block_bits),
      num_blocks_(CeilDiv(params.num_bits, size_t{params.block_bits})),
      // Blocks are self-contained: no probe reaches past its block, so no
      // slack bits are needed (guard bytes still protect LoadWindow-style
      // reads by other callers).
      bits_(num_blocks_ * params.block_bits, /*slack_bits=*/0) {
  CheckOk(params.Validate());
}

// Two passes over the key bytes derive the block AND the k in-block
// positions (streamed from a SplitMix64 state seeded by both hashes) — the
// standard blocked-filter recipe (Putze et al.): cache blocking buys one
// memory access per query, single-pass hashing keeps the ALU side from
// dominating instead.
void BlockedBloomFilter::DeriveProbe(const void* data, size_t len,
                                     size_t* block_word,
                                     uint64_t* mask) const {
  const uint64_t h1 = family_.Hash(0, data, len);
  const uint64_t h2 = family_.Hash(1, data, len);
  *block_word = (h1 % num_blocks_) * (block_bits_ / 64);
  const uint32_t words = block_bits_ / 64;
  std::fill(mask, mask + words, 0);
  // Golden-ratio fold decorrelates the position stream from the raw low
  // bits the block selector consumed.
  uint64_t state = h1 ^ (h2 * 0x9e3779b97f4a7c15ull);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    const uint64_t pos = SplitMix64(state) & (block_bits_ - 1);
    mask[pos >> 6] |= 1ull << (pos & 63);
  }
}

void BlockedBloomFilter::Add(const void* data, size_t len) {
  uint64_t mask[kMaxBlockWords];
  size_t block_word;
  DeriveProbe(data, len, &block_word, mask);
  uint8_t* block = bits_.mutable_data() + block_word * 8;
  const uint32_t words = block_bits_ / 64;
  for (uint32_t w = 0; w < words; ++w) {
    uint64_t word;
    std::memcpy(&word, block + w * 8, sizeof(word));
    word |= mask[w];
    std::memcpy(block + w * 8, &word, sizeof(word));
  }
  ++num_elements_;
}

bool BlockedBloomFilter::Contains(const void* data, size_t len) const {
  uint64_t mask[kMaxBlockWords];
  size_t block_word;
  DeriveProbe(data, len, &block_word, mask);
  return simd::BlockSubsetTest(bits_.data() + block_word * 8, mask,
                               block_bits_ / 64);
}

bool BlockedBloomFilter::ContainsWithStats(std::string_view key,
                                           QueryStats* stats) const {
  ++stats->queries;
  // One block = one memory access regardless of k; two key passes derive
  // the block and every in-block probe (the mask is built before the block
  // is read, so there is no early exit on the hash side).
  stats->hash_computations += 2;
  ++stats->memory_accesses;
  return Contains(key.data(), key.size());
}

void BlockedBloomFilter::PrepareProbe(std::string_view key,
                                      Probe* probe) const {
  DeriveProbe(key.data(), key.size(), &probe->block_word, probe->mask);
}

void BlockedBloomFilter::PrefetchProbe(const Probe& probe) const {
  bits_.Prefetch(probe.block_word * 64);
}

bool BlockedBloomFilter::ResolveProbe(const Probe& probe) const {
  return simd::BlockSubsetTest(bits_.data() + probe.block_word * 8,
                               probe.mask, block_bits_ / 64);
}

void BlockedBloomFilter::ContainsBatch(const std::vector<std::string>& keys,
                                       std::vector<uint8_t>* results) const {
  results->resize(keys.size());
  if (keys.empty()) return;
  constexpr size_t kGroup = 16;
  Probe probes[kGroup];
  for (size_t start = 0; start < keys.size(); start += kGroup) {
    const size_t group = std::min(kGroup, keys.size() - start);
    for (size_t g = 0; g < group; ++g) {
      PrepareProbe(keys[start + g], &probes[g]);
      PrefetchProbe(probes[g]);
    }
    for (size_t g = 0; g < group; ++g) {
      (*results)[start + g] = ResolveProbe(probes[g]) ? 1 : 0;
    }
  }
}

void BlockedBloomFilter::Clear() {
  bits_.Clear();
  num_elements_ = 0;
}

Status BlockedBloomFilter::MergeFrom(const BlockedBloomFilter& other) {
  if (family_.algorithm() != other.family_.algorithm() ||
      family_.master_seed() != other.family_.master_seed() ||
      num_hashes_ != other.num_hashes_ || block_bits_ != other.block_bits_) {
    return Status::FailedPrecondition(
        "BlockedBloomFilter::MergeFrom: hash families differ");
  }
  if (!bits_.OrWith(other.bits_)) {
    return Status::FailedPrecondition(
        "BlockedBloomFilter::MergeFrom: geometry differs");
  }
  num_elements_ += other.num_elements_;
  return Status::Ok();
}

std::string BlockedBloomFilter::ToBytes() const {
  ByteWriter writer;
  serde::WriteHeader(&writer, serde::StructureTag::kBlockedBloomFilter);
  writer.PutU64(bits_.num_bits());
  writer.PutU32(num_hashes_);
  writer.PutU32(block_bits_);
  writer.PutU8(static_cast<uint8_t>(family_.algorithm()));
  writer.PutU64(family_.master_seed());
  writer.PutU64(num_elements_);
  bits_.AppendPayload(&writer);
  return writer.Take();
}

Status BlockedBloomFilter::FromBytes(std::string_view bytes,
                                     std::optional<BlockedBloomFilter>* out) {
  ByteReader reader(bytes);
  Status header =
      serde::ReadHeader(&reader, serde::StructureTag::kBlockedBloomFilter);
  if (!header.ok()) return header;
  uint64_t num_bits = 0;
  uint32_t num_hashes = 0;
  uint32_t block_bits = 0;
  uint8_t alg = 0;
  uint64_t seed = 0;
  uint64_t num_elements = 0;
  if (!reader.GetU64(&num_bits) || !reader.GetU32(&num_hashes) ||
      !reader.GetU32(&block_bits) || !reader.GetU8(&alg) ||
      !reader.GetU64(&seed) || !reader.GetU64(&num_elements)) {
    return Status::InvalidArgument(
        "BlockedBloomFilter: truncated parameter block");
  }
  if (alg > 3) {
    return Status::InvalidArgument("BlockedBloomFilter: unknown hash id");
  }
  Params params{.num_bits = num_bits,
                .num_hashes = num_hashes,
                .block_bits = block_bits,
                .hash_algorithm = static_cast<HashAlgorithm>(alg),
                .seed = seed};
  Status valid = params.Validate();
  if (!valid.ok()) return valid;
  if (num_bits % block_bits != 0) {
    return Status::InvalidArgument(
        "BlockedBloomFilter: num_bits not block-aligned");
  }
  out->emplace(params);
  (*out)->num_elements_ = num_elements;
  if (!(*out)->bits_.ReadPayload(&reader) || !reader.AtEnd()) {
    out->reset();
    return Status::InvalidArgument("BlockedBloomFilter: payload mismatch");
  }
  return Status::Ok();
}

}  // namespace shbf
