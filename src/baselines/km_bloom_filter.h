// Kirsch–Mitzenmacher Bloom filter (ESA 2006): simulates k hash functions
// with two, g_i(x) = (h1(x) + i·h2(x)) mod m. Cuts hash computations to 2 at
// the cost of a slightly increased FPR (§2.1). Included as the hash-strategy
// ablation comparator for ShBF_M, which attacks the same cost from a
// different angle (k/2 + 1 truly independent functions).

#ifndef SHBF_BASELINES_KM_BLOOM_FILTER_H_
#define SHBF_BASELINES_KM_BLOOM_FILTER_H_

#include <optional>
#include <string>
#include <string_view>

#include "core/bit_array.h"
#include "core/query_stats.h"
#include "core/serde.h"
#include "core/status.h"
#include "hash/hash_family.h"

namespace shbf {

class KmBloomFilter {
 public:
  struct Params {
    size_t num_bits = 0;      ///< m
    uint32_t num_hashes = 0;  ///< k simulated probes
    HashAlgorithm hash_algorithm = HashAlgorithm::kMurmur3;
    uint64_t seed = 0x5eed5eed5eed5eedull;

    Status Validate() const;
  };

  explicit KmBloomFilter(const Params& params);

  void Add(std::string_view key);
  bool Contains(std::string_view key) const;
  bool ContainsWithStats(std::string_view key, QueryStats* stats) const;

  size_t num_bits() const { return bits_.num_bits(); }
  uint32_t num_hashes() const { return num_hashes_; }
  void Clear() { bits_.Clear(); }

  /// Serializes parameters + bit payload to a versioned byte blob.
  std::string ToBytes() const;

  /// Reconstructs a filter that answers identically to the serialized one.
  static Status FromBytes(std::string_view bytes,
                          std::optional<KmBloomFilter>* out);

 private:
  HashFamily family_;  // exactly two real functions
  uint32_t num_hashes_;
  BitArray bits_;
};

}  // namespace shbf

#endif  // SHBF_BASELINES_KM_BLOOM_FILTER_H_
