#include "baselines/ibf.h"

#include <cmath>

namespace shbf {

Status IndividualBloomFilters::Params::Validate() const {
  if (num_bits_s1 == 0 || num_bits_s2 == 0) {
    return Status::InvalidArgument("iBF: both filter sizes must be positive");
  }
  if (num_hashes == 0) {
    return Status::InvalidArgument("iBF: num_hashes must be positive");
  }
  return Status::Ok();
}

IndividualBloomFilters::Params IndividualBloomFilters::OptimalParams(
    size_t n1, size_t n2, uint32_t num_hashes) {
  SHBF_CHECK(n1 > 0 && n2 > 0 && num_hashes > 0);
  double ln2 = std::log(2.0);
  Params p;
  p.num_bits_s1 = static_cast<size_t>(std::ceil(n1 * num_hashes / ln2));
  p.num_bits_s2 = static_cast<size_t>(std::ceil(n2 * num_hashes / ln2));
  p.num_hashes = num_hashes;
  return p;
}

IndividualBloomFilters::IndividualBloomFilters(const Params& params)
    : bf1_({.num_bits = params.num_bits_s1,
            .num_hashes = params.num_hashes,
            .hash_algorithm = params.hash_algorithm,
            .seed = params.seed}),
      bf2_({.num_bits = params.num_bits_s2,
            .num_hashes = params.num_hashes,
            .hash_algorithm = params.hash_algorithm,
            // Independent filters: decorrelate the two hash families.
            .seed = params.seed ^ 0xa5a5a5a5a5a5a5a5ull}) {
  CheckOk(params.Validate());
}

AssociationOutcome IndividualBloomFilters::Query(std::string_view key) const {
  bool in1 = bf1_.Contains(key);
  bool in2 = bf2_.Contains(key);
  if (in1 && !in2) return AssociationOutcome::kS1Only;
  if (!in1 && in2) return AssociationOutcome::kS2Only;
  if (in1 && in2) return AssociationOutcome::kIntersection;  // possibly FP
  return AssociationOutcome::kUnknown;  // contradicts the e ∈ S1 ∪ S2 promise
}

AssociationOutcome IndividualBloomFilters::QueryWithStats(
    std::string_view key, QueryStats* stats) const {
  ++stats->queries;
  // iBF must evaluate both filters to classify; no early exit across filters.
  QueryStats sub;
  bool in1 = bf1_.ContainsWithStats(key, &sub);
  bool in2 = bf2_.ContainsWithStats(key, &sub);
  stats->memory_accesses += sub.memory_accesses;
  stats->hash_computations += sub.hash_computations;
  if (in1 && !in2) return AssociationOutcome::kS1Only;
  if (!in1 && in2) return AssociationOutcome::kS2Only;
  if (in1 && in2) return AssociationOutcome::kIntersection;
  return AssociationOutcome::kUnknown;
}

}  // namespace shbf
