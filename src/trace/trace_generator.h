// Synthetic backbone-trace generator.
//
// SUBSTITUTION (see DESIGN.md §2.3): the paper evaluates on a proprietary
// 10 Gbps backbone capture — 10 M packets, 8 M distinct 5-tuple flow IDs
// stored as 13-byte strings. We generate the same *shape* synthetically:
// uniformly random distinct 13-byte flow keys, and packet traces whose
// per-flow packet counts follow a configurable Zipf. Since every evaluated
// structure consumes keys only through uniform hash functions (the paper
// validates its hashes for exactly that property), the substitution
// preserves the behaviour the experiments measure.

#ifndef SHBF_TRACE_TRACE_GENERATOR_H_
#define SHBF_TRACE_TRACE_GENERATOR_H_

#include <string>
#include <vector>

#include "core/rng.h"
#include "trace/flow_id.h"

namespace shbf {

class TraceGenerator {
 public:
  explicit TraceGenerator(uint64_t seed) : rng_(seed) {}

  /// `count` DISTINCT 13-byte flow keys (collisions are retried; at the
  /// paper's scale the retry probability is ~2^-60).
  std::vector<std::string> DistinctFlowKeys(size_t count);

  /// `count` distinct random byte-string keys of arbitrary length.
  std::vector<std::string> DistinctKeys(size_t count, size_t key_len);

  /// A packet trace: `num_packets` packets drawn from `num_flows` distinct
  /// flows with Zipf(`zipf_alpha`) flow popularity (0 = uniform). Every flow
  /// appears at least once; the remaining packets follow the distribution.
  /// Returned in randomized arrival order.
  std::vector<std::string> PacketTrace(size_t num_packets, size_t num_flows,
                                       double zipf_alpha);

 private:
  Rng rng_;
};

}  // namespace shbf

#endif  // SHBF_TRACE_TRACE_GENERATOR_H_
