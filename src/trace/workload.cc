#include "trace/workload.h"

#include "core/check.h"
#include "core/rng.h"
#include "trace/trace_generator.h"

namespace shbf {

MembershipWorkload MakeMembershipWorkload(size_t num_members,
                                          size_t num_non_members,
                                          uint64_t seed) {
  TraceGenerator gen(seed);
  // One draw of members + non-members: distinctness across the whole pool
  // guarantees the negative queries are true negatives.
  std::vector<std::string> pool =
      gen.DistinctFlowKeys(num_members + num_non_members);
  MembershipWorkload w;
  w.members.assign(pool.begin(),
                   pool.begin() + static_cast<ptrdiff_t>(num_members));
  w.non_members.assign(pool.begin() + static_cast<ptrdiff_t>(num_members),
                       pool.end());
  return w;
}

AssociationWorkload MakeAssociationWorkload(size_t n1, size_t n2,
                                            size_t n_intersection,
                                            size_t num_queries,
                                            uint64_t seed) {
  SHBF_CHECK(n_intersection <= n1 && n_intersection <= n2);
  SHBF_CHECK(n1 > n_intersection || n2 > n_intersection || n_intersection > 0)
      << "the union must be non-empty";
  TraceGenerator gen(seed);
  size_t n_union = n1 + n2 - n_intersection;
  std::vector<std::string> pool = gen.DistinctFlowKeys(n_union);

  // Layout: [0, n3) intersection, [n3, n1) S1-only, [n1, n_union) S2-only.
  const size_t s1_only_begin = n_intersection;
  const size_t s2_only_begin = n1;

  AssociationWorkload w;
  w.s1.assign(pool.begin(), pool.begin() + static_cast<ptrdiff_t>(n1));
  w.s2.reserve(n2);
  w.s2.insert(w.s2.end(), pool.begin(),
              pool.begin() + static_cast<ptrdiff_t>(n_intersection));
  w.s2.insert(w.s2.end(), pool.begin() + static_cast<ptrdiff_t>(s2_only_begin),
              pool.end());

  // Query stream: uniform over the three parts, uniform within a part
  // (§6.3.1: "the querying elements hit the three parts with the same
  // probability"). Parts that are empty are excluded.
  Rng rng(seed ^ 0x9d2c5680u);
  std::vector<std::pair<AssociationTruth, std::pair<size_t, size_t>>> parts;
  if (n1 > n_intersection) {
    parts.push_back({AssociationTruth::kS1Only, {s1_only_begin, s2_only_begin}});
  }
  if (n_intersection > 0) {
    parts.push_back({AssociationTruth::kIntersection, {0, n_intersection}});
  }
  if (n2 > n_intersection) {
    parts.push_back({AssociationTruth::kS2Only, {s2_only_begin, n_union}});
  }
  SHBF_CHECK(!parts.empty());
  w.queries.reserve(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    const auto& [truth, range] = parts[rng.NextBelow(parts.size())];
    size_t index = range.first + rng.NextBelow(range.second - range.first);
    w.queries.push_back({pool[index], truth});
  }
  return w;
}

std::vector<std::string> MultiplicityWorkload::ToMultiset() const {
  std::vector<std::string> multiset;
  size_t total = 0;
  for (uint32_t c : counts) total += c;
  multiset.reserve(total);
  for (size_t i = 0; i < keys.size(); ++i) {
    for (uint32_t r = 0; r < counts[i]; ++r) multiset.push_back(keys[i]);
  }
  return multiset;
}

MultiplicityWorkload MakeMultiplicityWorkload(size_t num_distinct,
                                              uint32_t max_count,
                                              size_t num_non_members,
                                              uint64_t seed) {
  SHBF_CHECK(max_count >= 1);
  TraceGenerator gen(seed);
  std::vector<std::string> pool =
      gen.DistinctFlowKeys(num_distinct + num_non_members);
  MultiplicityWorkload w;
  w.keys.assign(pool.begin(),
                pool.begin() + static_cast<ptrdiff_t>(num_distinct));
  w.non_members.assign(pool.begin() + static_cast<ptrdiff_t>(num_distinct),
                       pool.end());
  Rng rng(seed ^ 0xb5297a4du);
  w.counts.resize(num_distinct);
  for (size_t i = 0; i < num_distinct; ++i) {
    w.counts[i] = static_cast<uint32_t>(rng.NextBelow(max_count)) + 1;
  }
  return w;
}

ChurnWorkload MakeChurnWorkload(size_t universe_size, size_t num_events,
                                double add_fraction, double remove_fraction,
                                uint64_t seed) {
  SHBF_CHECK(universe_size > 0);
  SHBF_CHECK(add_fraction > 0.0 && remove_fraction >= 0.0 &&
             add_fraction + remove_fraction <= 1.0)
      << "need add > 0, remove >= 0, add + remove <= 1";
  TraceGenerator gen(seed);
  ChurnWorkload w;
  w.keys = gen.DistinctFlowKeys(universe_size);
  w.events.reserve(num_events);
  w.final_counts.assign(universe_size, 0);

  // Indices with final_counts[i] > 0, for O(1) uniform live-key draws;
  // live_slot[i] tracks each index's position in `live` for O(1) removal.
  std::vector<uint32_t> live;
  std::vector<uint32_t> live_slot(universe_size, 0);
  Rng rng(seed ^ 0xc0ffee1dull);

  for (size_t e = 0; e < num_events; ++e) {
    const double draw = rng.NextDouble();
    const auto index = static_cast<uint32_t>(rng.NextBelow(universe_size));
    if (draw < add_fraction) {
      if (w.final_counts[index]++ == 0) {
        live_slot[index] = static_cast<uint32_t>(live.size());
        live.push_back(index);
      }
      w.events.push_back({ChurnWorkload::Op::kAdd, index, true});
    } else if (draw < add_fraction + remove_fraction && !live.empty()) {
      // Remove one occurrence of a uniformly-drawn LIVE key, so replaying
      // filters never see an underflowing delete.
      const uint32_t victim = live[rng.NextBelow(live.size())];
      if (--w.final_counts[victim] == 0) {
        live[live_slot[victim]] = live.back();
        live_slot[live.back()] = live_slot[victim];
        live.pop_back();
      }
      w.events.push_back({ChurnWorkload::Op::kRemove, victim, false});
    } else {
      // Query: half the stream targets live keys (false-negative checks),
      // half the whole universe (false-positive / throughput pressure).
      if (!live.empty() && rng.NextBelow(2) == 0) {
        const uint32_t target = live[rng.NextBelow(live.size())];
        w.events.push_back({ChurnWorkload::Op::kQuery, target, true});
      } else {
        w.events.push_back(
            {ChurnWorkload::Op::kQuery, index, w.final_counts[index] > 0});
      }
    }
  }
  return w;
}

}  // namespace shbf
