#include "trace/zipf.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace shbf {

ZipfGenerator::ZipfGenerator(size_t num_items, double alpha, uint64_t seed)
    : alpha_(alpha), rng_(seed) {
  SHBF_CHECK(num_items > 0);
  SHBF_CHECK(alpha >= 0.0);
  cdf_.resize(num_items);
  double total = 0.0;
  for (size_t r = 0; r < num_items; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfGenerator::Next() {
  double u = rng_.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace shbf
