#include "trace/flow_id.h"

#include <cstdio>

#include "core/check.h"

namespace shbf {

namespace {

void PutU32(std::string& out, uint32_t v) {
  out.push_back(static_cast<char>(v >> 24));
  out.push_back(static_cast<char>(v >> 16));
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v));
}

void PutU16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v));
}

uint32_t GetU32(std::string_view key, size_t at) {
  return (static_cast<uint32_t>(static_cast<uint8_t>(key[at])) << 24) |
         (static_cast<uint32_t>(static_cast<uint8_t>(key[at + 1])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(key[at + 2])) << 8) |
         static_cast<uint32_t>(static_cast<uint8_t>(key[at + 3]));
}

uint16_t GetU16(std::string_view key, size_t at) {
  return static_cast<uint16_t>(
      (static_cast<uint16_t>(static_cast<uint8_t>(key[at])) << 8) |
      static_cast<uint16_t>(static_cast<uint8_t>(key[at + 1])));
}

}  // namespace

std::string FlowId::ToKey() const {
  std::string key;
  key.reserve(kKeyBytes);
  PutU32(key, src_ip);
  PutU16(key, src_port);
  PutU32(key, dst_ip);
  PutU16(key, dst_port);
  key.push_back(static_cast<char>(protocol));
  return key;
}

FlowId FlowId::FromKey(std::string_view key) {
  SHBF_CHECK(key.size() == kKeyBytes)
      << "flow key must be " << kKeyBytes << " bytes, got " << key.size();
  FlowId flow;
  flow.src_ip = GetU32(key, 0);
  flow.src_port = GetU16(key, 4);
  flow.dst_ip = GetU32(key, 6);
  flow.dst_port = GetU16(key, 10);
  flow.protocol = static_cast<uint8_t>(key[12]);
  return flow;
}

std::string FlowId::ToString() const {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u -> %u.%u.%u.%u:%u proto=%u",
                src_ip >> 24, (src_ip >> 16) & 255, (src_ip >> 8) & 255,
                src_ip & 255, src_port, dst_ip >> 24, (dst_ip >> 16) & 255,
                (dst_ip >> 8) & 255, dst_ip & 255, dst_port, protocol);
  return buf;
}

FlowId FlowId::Random(Rng& rng) {
  static constexpr uint8_t kProtocols[] = {6, 17, 1};  // TCP, UDP, ICMP
  FlowId flow;
  flow.src_ip = static_cast<uint32_t>(rng.Next());
  flow.dst_ip = static_cast<uint32_t>(rng.Next());
  flow.src_port = static_cast<uint16_t>(rng.Next());
  flow.dst_port = static_cast<uint16_t>(rng.Next());
  flow.protocol = kProtocols[rng.NextBelow(3)];
  return flow;
}

}  // namespace shbf
