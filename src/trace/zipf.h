// Zipf(α) rank sampler over n items, used to give synthetic traces the
// heavy-tailed flow-size profile of real backbone traffic. α = 0 degenerates
// to the uniform distribution.

#ifndef SHBF_TRACE_ZIPF_H_
#define SHBF_TRACE_ZIPF_H_

#include <cstdint>
#include <vector>

#include "core/rng.h"

namespace shbf {

class ZipfGenerator {
 public:
  /// P(rank = r) ∝ 1 / (r + 1)^alpha for r in [0, num_items).
  ZipfGenerator(size_t num_items, double alpha, uint64_t seed);

  /// Samples a rank in [0, num_items), rank 0 most popular.
  size_t Next();

  size_t num_items() const { return cdf_.size(); }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
  Rng rng_;
};

}  // namespace shbf

#endif  // SHBF_TRACE_ZIPF_H_
