#include "trace/trace_generator.h"

#include <algorithm>

#include "core/chained_hash_table.h"
#include "core/check.h"
#include "trace/zipf.h"

namespace shbf {

std::vector<std::string> TraceGenerator::DistinctFlowKeys(size_t count) {
  std::vector<std::string> keys;
  keys.reserve(count);
  ChainedHashTable seen(count * 2 + 16);
  while (keys.size() < count) {
    std::string key = FlowId::Random(rng_).ToKey();
    if (seen.Insert(key, 0)) keys.push_back(std::move(key));
  }
  return keys;
}

std::vector<std::string> TraceGenerator::DistinctKeys(size_t count,
                                                      size_t key_len) {
  SHBF_CHECK(key_len >= 1);
  std::vector<std::string> keys;
  keys.reserve(count);
  ChainedHashTable seen(count * 2 + 16);
  while (keys.size() < count) {
    std::string key = rng_.NextBytes(key_len);
    if (seen.Insert(key, 0)) keys.push_back(std::move(key));
  }
  return keys;
}

std::vector<std::string> TraceGenerator::PacketTrace(size_t num_packets,
                                                     size_t num_flows,
                                                     double zipf_alpha) {
  SHBF_CHECK(num_packets >= num_flows)
      << "every flow must appear at least once";
  std::vector<std::string> flows = DistinctFlowKeys(num_flows);

  std::vector<std::string> packets;
  packets.reserve(num_packets);
  // One packet per flow guarantees the distinct-flow count...
  for (const std::string& flow : flows) packets.push_back(flow);
  // ...then the popularity distribution fills the rest.
  ZipfGenerator zipf(num_flows, zipf_alpha, rng_.Next());
  for (size_t i = num_flows; i < num_packets; ++i) {
    packets.push_back(flows[zipf.Next()]);
  }
  // Fisher–Yates: interleave arrivals like a real capture.
  for (size_t i = packets.size(); i > 1; --i) {
    std::swap(packets[i - 1], packets[rng_.NextBelow(i)]);
  }
  return packets;
}

}  // namespace shbf
