// Pre-packaged workloads for the three query families, shared by the tests,
// examples and every figure bench. Each mirrors the corresponding setup in
// the paper's §6 (member/non-member query mixes, uniformly-hit set parts,
// bounded multiplicities).

#ifndef SHBF_TRACE_WORKLOAD_H_
#define SHBF_TRACE_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/set_query_types.h"

namespace shbf {

/// Membership experiments (Figs 7–9): n members to insert and a disjoint
/// pool of negatives to measure FPR / query cost on.
struct MembershipWorkload {
  std::vector<std::string> members;
  std::vector<std::string> non_members;
};

MembershipWorkload MakeMembershipWorkload(size_t num_members,
                                          size_t num_non_members,
                                          uint64_t seed);

/// Association experiments (Table 2, Fig 10): two overlapping sets plus a
/// query stream hitting the three parts S1−S2, S1∩S2, S2−S1 with equal
/// probability (§6.3.1), each query labelled with its ground truth.
struct AssociationWorkload {
  std::vector<std::string> s1;  ///< all of S1 (exclusive ∪ intersection)
  std::vector<std::string> s2;  ///< all of S2
  struct Query {
    std::string key;
    AssociationTruth truth;
  };
  std::vector<Query> queries;
};

AssociationWorkload MakeAssociationWorkload(size_t n1, size_t n2,
                                            size_t n_intersection,
                                            size_t num_queries, uint64_t seed);

/// Multiplicity experiments (Fig 11): distinct elements with true counts in
/// [1, max_count] (uniform), plus a disjoint pool of non-members.
struct MultiplicityWorkload {
  std::vector<std::string> keys;
  std::vector<uint32_t> counts;  ///< counts[i] is the multiplicity of keys[i]
  std::vector<std::string> non_members;

  /// Expands to the flat multiset (each key repeated counts[i] times).
  std::vector<std::string> ToMultiset() const;
};

MultiplicityWorkload MakeMultiplicityWorkload(size_t num_distinct,
                                              uint32_t max_count,
                                              size_t num_non_members,
                                              uint64_t seed);

/// Churn experiments (§3.2 updates / bench/churn_throughput): a fixed key
/// universe and a pre-generated interleaved add/remove/query event stream.
/// Invariants the generator maintains so any filter can replay the stream
/// blindly:
///   * removes only ever target a key that is currently live (was added and
///     not yet removed as many times), so counting structures cannot
///     underflow and the no-false-negative contract stays checkable;
///   * queries are split between live keys (must answer 1) and the rest of
///     the universe (may answer 0 or false-positive 1).
struct ChurnWorkload {
  enum class Op : uint8_t { kAdd = 0, kRemove = 1, kQuery = 2 };
  struct Event {
    Op op;
    uint32_t key_index;  ///< into `keys`
    /// For kQuery: whether key_index was live when the event was generated
    /// — a 0 answer for a live key is a false negative.
    bool live = false;
  };
  std::vector<std::string> keys;
  std::vector<Event> events;

  /// Live multiset at the end of the stream: count per key index (0 =
  /// absent). Reference builders use this for epoch-boundary equivalence.
  std::vector<uint32_t> final_counts;
};

/// Generates `num_events` events over a `universe_size`-key universe.
/// `add_fraction` / `remove_fraction` give the probability of add / remove
/// per event (the remainder are queries); removes are skipped while nothing
/// is live. Fractions must satisfy add + remove <= 1 and add > 0.
ChurnWorkload MakeChurnWorkload(size_t universe_size, size_t num_events,
                                double add_fraction, double remove_fraction,
                                uint64_t seed);

}  // namespace shbf

#endif  // SHBF_TRACE_WORKLOAD_H_
