// 5-tuple flow identifiers, matching the paper's trace format (§6.1): each
// captured packet was reduced to a 13-byte string — source IP, source port,
// destination IP, destination port, protocol — and that string is the set
// element. Our synthetic traces use the identical representation so every
// filter hashes keys of the same length and distribution class.

#ifndef SHBF_TRACE_FLOW_ID_H_
#define SHBF_TRACE_FLOW_ID_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "core/rng.h"

namespace shbf {

struct FlowId {
  /// Packed key length: 4 + 2 + 4 + 2 + 1 bytes.
  static constexpr size_t kKeyBytes = 13;

  uint32_t src_ip = 0;
  uint16_t src_port = 0;
  uint32_t dst_ip = 0;
  uint16_t dst_port = 0;
  uint8_t protocol = 0;

  bool operator==(const FlowId&) const = default;

  /// Serializes to the paper's 13-byte string (big-endian fields).
  std::string ToKey() const;

  /// Parses a 13-byte key back into fields (CHECKs the length).
  static FlowId FromKey(std::string_view key);

  /// Human-readable "1.2.3.4:80 -> 5.6.7.8:443 proto=6".
  std::string ToString() const;

  /// Uniformly random flow (IPs and ports uniform; protocol TCP/UDP/ICMP).
  static FlowId Random(Rng& rng);
};

}  // namespace shbf

#endif  // SHBF_TRACE_FLOW_ID_H_
