// SCM — the Shifting Count-Min sketch (paper §5.5).
//
// A CM sketch of depth d and width r becomes d/2 rows of 2r counters; each
// element touches two counters per row: v_i[h_i(e)] and v_i[h_i(e) + o(e)],
// with o(e) = h_{d/2+1}(e) % (w̄_c − 1) + 1. Because §5.5 requires
// w̄_c <= (w − 7) / z for z-bit counters, both counters of a pair sit inside
// one unaligned word load: the shifting framework halves both the hash
// computations (d/2 + 1 vs d) and the memory accesses (d/2 vs d) of a point
// query at equal total memory.

#ifndef SHBF_SHBF_SCM_SKETCH_H_
#define SHBF_SHBF_SCM_SKETCH_H_

#include <optional>
#include <string>
#include <string_view>

#include "core/bits.h"
#include "core/packed_counter_array.h"
#include "core/query_stats.h"
#include "core/serde.h"
#include "core/status.h"
#include "hash/hash_family.h"

namespace shbf {

class ScmSketch {
 public:
  struct Params {
    uint32_t depth = 0;         ///< d of the equivalent CM sketch; even, >= 2
    size_t width = 0;           ///< r of the equivalent CM sketch (per row)
    uint32_t counter_bits = 8;  ///< z; w̄_c = (w − 7) / z must be >= 2
    HashAlgorithm hash_algorithm = HashAlgorithm::kMurmur3;
    uint64_t seed = 0x5eed5eed5eed5eedull;

    Status Validate() const;

    /// w̄_c for these parameters: (w − 7) / counter_bits.
    uint32_t OffsetSpan() const {
      return (kWordBits - 7) / counter_bits;
    }
  };

  explicit ScmSketch(const Params& params);

  /// Adds one occurrence of `key`: two counter increments per row, d total.
  void Insert(std::string_view key);

  /// Point estimate: min over the d counters of `key`. Never underestimates.
  uint64_t QueryCount(std::string_view key) const;
  uint64_t QueryCountWithStats(std::string_view key, QueryStats* stats) const;

  uint32_t rows() const { return rows_; }
  size_t row_width() const { return row_width_; }
  uint32_t offset_span() const { return offset_span_; }
  size_t memory_bits() const {
    return counters_.num_counters() * counters_.bits_per_counter();
  }
  void Clear() { counters_.Clear(); }

  /// Serializes parameters + counter payload to a versioned byte blob.
  std::string ToBytes() const;

  /// Reconstructs a sketch that answers identically to the serialized one.
  static Status FromBytes(std::string_view bytes,
                          std::optional<ScmSketch>* out);

 private:
  uint64_t OffsetOf(std::string_view key) const;

  HashFamily family_;  // d/2 row functions + 1 offset function
  uint32_t rows_;        // d / 2
  size_t row_width_;     // 2r logical columns (plus offset slack per row)
  size_t row_stride_;    // row_width_ + offset slack
  uint32_t offset_span_; // w̄_c
  PackedCounterArray counters_;
};

}  // namespace shbf

#endif  // SHBF_SHBF_SCM_SKETCH_H_
