#include "shbf/shbf_multiplicity.h"

#include <algorithm>
#include <bit>

namespace shbf {

Status ShbfXParams::Validate() const {
  if (num_bits == 0) {
    return Status::InvalidArgument("ShbfX: num_bits must be positive");
  }
  if (num_hashes == 0) {
    return Status::InvalidArgument("ShbfX: num_hashes must be positive");
  }
  if (max_count == 0 || max_count > kMaxSupportedCount) {
    return Status::InvalidArgument(
        "ShbfX: max_count must be in [1, 512]");
  }
  return Status::Ok();
}

ShbfX::ShbfX(const ShbfXParams& params)
    : family_(params.hash_algorithm, params.num_hashes, params.seed),
      num_hashes_(params.num_hashes),
      max_count_(params.max_count),
      // Writes shift by up to c − 1; reads window up to c + 56 bits past m.
      bits_(params.num_bits,
            /*slack_bits=*/params.max_count + BitArray::kWindowBits) {
  CheckOk(params.Validate());
}

void ShbfX::Build(const std::vector<std::string>& multiset) {
  ChainedHashTable counts;
  for (const std::string& key : multiset) counts.AddTo(key, 1);
  counts.ForEach([&](std::string_view key, uint64_t count) {
    SHBF_CHECK(count <= max_count_)
        << "multiplicity " << count << " exceeds max_count " << max_count_;
    InsertWithCount(key, static_cast<uint32_t>(count));
  });
}

void ShbfX::InsertWithCount(std::string_view key, uint32_t count) {
  SHBF_CHECK(count >= 1 && count <= max_count_)
      << "count " << count << " outside [1, " << max_count_ << "]";
  const size_t m = bits_.num_bits();
  const uint32_t offset = count - 1;  // o(e) = c(e) − 1 (§5.1)
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    bits_.SetBit(family_.Hash(i, key) % m + offset);
  }
  ++num_distinct_;
}

uint32_t ShbfX::GatherWindows(size_t base, uint64_t* mask) const {
  uint32_t loads = 0;
  for (uint32_t start = 0; start < max_count_;
       start += BitArray::kWindowBits) {
    uint64_t window = bits_.LoadWindow(base + start);
    ++loads;
    // This load covers candidate offsets [start, start + valid); AND those
    // positions of the mask with the window, leaving all others untouched.
    uint32_t valid =
        std::min<uint32_t>(BitArray::kWindowBits, max_count_ - start);
    uint64_t window_valid = window & ((1ull << valid) - 1);  // valid <= 57
    uint32_t word = start / 64;
    uint32_t shift = start % 64;
    uint64_t covered_low = (shift + valid >= 64)
                               ? (~0ull << shift)
                               : (((1ull << valid) - 1) << shift);
    mask[word] &= (window_valid << shift) | ~covered_low;
    if (shift + valid > 64) {
      uint32_t spill = shift + valid - 64;  // positions in the next word
      uint64_t covered_high = (1ull << spill) - 1;
      mask[word + 1] &= (window_valid >> (64 - shift)) | ~covered_high;
    }
  }
  return loads;
}

std::vector<uint32_t> ShbfX::QueryCandidates(std::string_view key) const {
  const size_t m = bits_.num_bits();
  const uint32_t words = CeilDiv(max_count_, 64);
  uint64_t mask[kMaskWords];
  for (uint32_t w = 0; w < words; ++w) mask[w] = ~0ull;
  // Trim the final word to exactly max_count_ valid positions.
  if (max_count_ % 64 != 0) mask[words - 1] = (1ull << (max_count_ % 64)) - 1;

  for (uint32_t i = 0; i < num_hashes_; ++i) {
    size_t base = family_.Hash(i, key) % m;
    GatherWindows(base, mask);
    bool any = false;
    for (uint32_t w = 0; w < words; ++w) any = any || (mask[w] != 0);
    if (!any) return {};
  }

  std::vector<uint32_t> candidates;
  for (uint32_t w = 0; w < words; ++w) {
    uint64_t bits = mask[w];
    while (bits != 0) {
      candidates.push_back(w * 64 + std::countr_zero(bits) + 1);
      bits &= bits - 1;
    }
  }
  return candidates;
}

namespace {

// Population count across `words` mask words.
inline uint32_t MaskPopcount(const uint64_t* mask, uint32_t words) {
  uint32_t total = 0;
  for (uint32_t w = 0; w < words; ++w) {
    total += static_cast<uint32_t>(std::popcount(mask[w]));
  }
  return total;
}

inline uint32_t MaskLowest(const uint64_t* mask, uint32_t words) {
  for (uint32_t w = 0; w < words; ++w) {
    if (mask[w] != 0) return w * 64 + std::countr_zero(mask[w]) + 1;
  }
  return 0;
}

inline uint32_t MaskHighest(const uint64_t* mask, uint32_t words) {
  for (uint32_t w = words; w-- > 0;) {
    if (mask[w] != 0) return w * 64 + 63 - std::countl_zero(mask[w]) + 1;
  }
  return 0;
}

}  // namespace

uint32_t ShbfX::QueryCount(std::string_view key,
                           MultiplicityReportPolicy policy) const {
  QueryStats ignored;
  return QueryCountWithStats(key, policy, &ignored);
}

template <typename BaseFn>
uint32_t ShbfX::QueryCountImpl(BaseFn&& base_of,
                               MultiplicityReportPolicy policy,
                               QueryStats* stats) const {
  const uint32_t words = CeilDiv(max_count_, 64);
  uint64_t mask[kMaskWords];
  for (uint32_t w = 0; w < words; ++w) mask[w] = ~0ull;
  if (max_count_ % 64 != 0) mask[words - 1] = (1ull << (max_count_ % 64)) - 1;

  ++stats->queries;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    size_t base = base_of(i);
    stats->memory_accesses += GatherWindows(base, mask);
    uint32_t alive = MaskPopcount(mask, words);
    if (alive == 0) return 0;
    // One candidate left: for stored keys the true count always survives
    // every intersection, so the singleton is the answer once it passes the
    // remaining hashes. Verifying it with single-bit probes (one access per
    // remaining hash, instead of a ⌈c/w̄⌉-load gather) is what keeps the
    // per-query access count nearly flat in k (Fig 11(b)). The probes are
    // mandatory: returning the singleton unverified would accept any
    // non-member whose intersection ever narrows to one candidate, which
    // multiplies the FPR by orders of magnitude.
    if (alive == 1) {
      uint32_t candidate = MaskLowest(mask, words);
      for (uint32_t j = i + 1; j < num_hashes_; ++j) {
        ++stats->memory_accesses;
        size_t probe = base_of(j);
        if (!bits_.GetBit(probe + candidate - 1)) return 0;
      }
      return candidate;
    }
  }
  return policy == MultiplicityReportPolicy::kLargest
             ? MaskHighest(mask, words)
             : MaskLowest(mask, words);
}

uint32_t ShbfX::QueryCountWithStats(std::string_view key,
                                    MultiplicityReportPolicy policy,
                                    QueryStats* stats) const {
  const size_t m = bits_.num_bits();
  return QueryCountImpl(
      [&](uint32_t i) {
        ++stats->hash_computations;
        return family_.Hash(i, key) % m;
      },
      policy, stats);
}

void ShbfX::PrepareProbe(std::string_view key, Probe* probe) const {
  const size_t m = bits_.num_bits();
  SHBF_CHECK(num_hashes_ <= kMaxBatchHashes) << "probe path supports k <= 64";
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    probe->bases[i] = family_.Hash(i, key) % m;
  }
}

void ShbfX::PrefetchProbe(const Probe& probe) const {
  // A gather loads ⌈c/w̄⌉ windows starting at the base; the last one reads
  // up to 63 bits past offset c − 1. One prefetch per cache line touched.
  const uint32_t span_bits = max_count_ + 63;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    for (uint32_t off = 0; off < span_bits; off += 512) {
      bits_.Prefetch(probe.bases[i] + off);
    }
  }
}

uint32_t ShbfX::ResolveProbe(const Probe& probe,
                             MultiplicityReportPolicy policy) const {
  QueryStats ignored;
  return QueryCountImpl([&](uint32_t i) { return probe.bases[i]; }, policy,
                        &ignored);
}

void ShbfX::Clear() {
  bits_.Clear();
  num_distinct_ = 0;
}

std::string ShbfX::ToBytes() const {
  ByteWriter writer;
  serde::WriteHeader(&writer, serde::StructureTag::kShbfX);
  writer.PutU64(bits_.num_bits());
  writer.PutU32(num_hashes_);
  writer.PutU32(max_count_);
  writer.PutU8(static_cast<uint8_t>(family_.algorithm()));
  writer.PutU64(family_.master_seed());
  writer.PutU64(num_distinct_);
  bits_.AppendPayload(&writer);
  return writer.Take();
}

Status ShbfX::FromBytes(std::string_view bytes, std::optional<ShbfX>* out) {
  ByteReader reader(bytes);
  Status header = serde::ReadHeader(&reader, serde::StructureTag::kShbfX);
  if (!header.ok()) return header;
  uint64_t num_bits = 0;
  uint32_t num_hashes = 0;
  uint32_t max_count = 0;
  uint8_t alg = 0;
  uint64_t seed = 0;
  uint64_t num_distinct = 0;
  if (!reader.GetU64(&num_bits) || !reader.GetU32(&num_hashes) ||
      !reader.GetU32(&max_count) || !reader.GetU8(&alg) ||
      !reader.GetU64(&seed) || !reader.GetU64(&num_distinct)) {
    return Status::InvalidArgument("ShbfX: truncated parameter block");
  }
  if (alg > 3) return Status::InvalidArgument("ShbfX: unknown hash id");
  ShbfXParams params{.num_bits = num_bits,
                     .num_hashes = num_hashes,
                     .max_count = max_count,
                     .hash_algorithm = static_cast<HashAlgorithm>(alg),
                     .seed = seed};
  Status valid = params.Validate();
  if (!valid.ok()) return valid;
  out->emplace(params);
  (*out)->num_distinct_ = num_distinct;
  if (!(*out)->bits_.ReadPayload(&reader) || !reader.AtEnd()) {
    out->reset();
    return Status::InvalidArgument("ShbfX: payload size mismatch");
  }
  return Status::Ok();
}

// --- CountingShbfX -----------------------------------------------------------

Status CountingShbfX::Params::Validate() const {
  Status s = filter.Validate();
  if (!s.ok()) return s;
  if (counter_bits < 1 || counter_bits > 32) {
    return Status::InvalidArgument(
        "CountingShbfX: counter_bits must be in [1, 32]");
  }
  return Status::Ok();
}

CountingShbfX::CountingShbfX(const Params& params)
    : filter_(params.filter),
      counters_(params.filter.num_bits + params.filter.max_count +
                    BitArray::kWindowBits,
                params.counter_bits),
      mode_(params.mode) {
  CheckOk(params.Validate());
}

uint32_t CountingShbfX::CurrentCount(std::string_view key) const {
  if (mode_ == UpdateMode::kTableBacked) {
    const uint64_t* count = exact_counts_.Find(key);
    return count == nullptr ? 0 : static_cast<uint32_t>(*count);
  }
  // §5.3.1: ask the filter itself; the answer can be a false positive, which
  // is exactly how this mode leaks false negatives.
  return filter_.QueryCount(key, MultiplicityReportPolicy::kLargest);
}

void CountingShbfX::AddCells(std::string_view key, uint32_t count_offset) {
  const size_t m = filter_.bits_.num_bits();
  for (uint32_t i = 0; i < filter_.num_hashes_; ++i) {
    size_t pos = filter_.family_.Hash(i, key) % m + count_offset;
    counters_.Increment(pos);
    filter_.bits_.SetBit(pos);
  }
}

void CountingShbfX::RemoveCells(std::string_view key, uint32_t count_offset) {
  const size_t m = filter_.bits_.num_bits();
  const bool clamp = mode_ == UpdateMode::kFilterQueried;
  for (uint32_t i = 0; i < filter_.num_hashes_; ++i) {
    size_t pos = filter_.family_.Hash(i, key) % m + count_offset;
    if (clamp && counters_.Get(pos) == 0) continue;  // FP-driven over-removal
    counters_.Decrement(pos);
    if (counters_.Get(pos) == 0) filter_.bits_.ClearBit(pos);
  }
}

void CountingShbfX::Insert(std::string_view key) {
  uint32_t z = CurrentCount(key);
  if (mode_ == UpdateMode::kFilterQueried) {
    // The believed count comes from the filter and may be FP-inflated all
    // the way to the ceiling (§5.3.1); clamp rather than abort — this mode
    // trades exactness away by design.
    z = std::min(z, filter_.max_count_ - 1);
  } else {
    SHBF_CHECK(z < filter_.max_count_)
        << "multiplicity would exceed max_count " << filter_.max_count_;
  }
  // §5.3: "delete the z-th multiplicity and insert the (z+1)-th".
  if (z > 0) RemoveCells(key, z - 1);
  AddCells(key, z);
  if (mode_ == UpdateMode::kTableBacked) exact_counts_.AddTo(key, 1);
  if (z == 0) ++filter_.num_distinct_;
}

bool CountingShbfX::Delete(std::string_view key) {
  uint32_t z = CurrentCount(key);
  if (z == 0) return false;
  RemoveCells(key, z - 1);
  if (z >= 2) AddCells(key, z - 2);
  if (mode_ == UpdateMode::kTableBacked) {
    uint64_t* count = exact_counts_.Find(key);
    SHBF_CHECK(count != nullptr);
    if (--*count == 0) exact_counts_.Erase(key);
  }
  if (z == 1) --filter_.num_distinct_;
  return true;
}

uint64_t CountingShbfX::ExactCount(std::string_view key) const {
  SHBF_CHECK(mode_ == UpdateMode::kTableBacked)
      << "exact counts only exist in kTableBacked mode";
  const uint64_t* count = exact_counts_.Find(key);
  return count == nullptr ? 0 : *count;
}

bool CountingShbfX::SynchronizedWithCounters() const {
  for (size_t i = 0; i < counters_.num_counters(); ++i) {
    if ((counters_.Get(i) > 0) != filter_.bits_.GetBit(i)) return false;
  }
  return true;
}

}  // namespace shbf
