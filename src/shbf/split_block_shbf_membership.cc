#include "shbf/split_block_shbf_membership.h"

#include <algorithm>
#include <cstring>

#include "core/rng.h"
#include "core/simd.h"

namespace shbf {

Status SplitBlockShbfM::Params::Validate() const {
  if (num_bits == 0) {
    return Status::InvalidArgument(
        "SplitBlockShbfM: num_bits must be positive");
  }
  if (num_hashes < 2 || num_hashes % 2 != 0 ||
      num_hashes / 2 > kMaxBatchPairs) {
    return Status::InvalidArgument(
        "SplitBlockShbfM: num_hashes must be even in [2, 64] (k/2 pairs)");
  }
  if (block_bits < kMinBlockBits || block_bits > kMaxBlockBits ||
      block_bits % 64 != 0) {
    return Status::InvalidArgument(
        "SplitBlockShbfM: block_bits must be a multiple of 64 in [64, 512]");
  }
  if (sub_block_bits < 16 || sub_block_bits > 64 ||
      !IsPowerOfTwo(uint64_t{sub_block_bits})) {
    // 8-bit sub-words would leave at most 7 base+offset positions — the
    // FPR collapses — so the floor is 16 here (vs 8 for the Bloom layout).
    return Status::InvalidArgument(
        "SplitBlockShbfM: sub_block_bits must be a power of two in [16, 64]");
  }
  if (max_offset_span < 2) {
    return Status::InvalidArgument(
        "SplitBlockShbfM: max_offset_span must be >= 2 so offsets are "
        "nonzero");
  }
  if (max_offset_span >= sub_block_bits) {
    return Status::InvalidArgument(
        "SplitBlockShbfM: max_offset_span must stay below sub_block_bits so "
        "a pair fits inside one sub-word");
  }
  return Status::Ok();
}

SplitBlockShbfM::SplitBlockShbfM(const Params& params)
    : family_(params.hash_algorithm, 2, params.seed),
      num_hashes_(params.num_hashes),
      max_offset_span_(params.max_offset_span),
      block_bits_(params.block_bits),
      sub_block_bits_(params.sub_block_bits),
      num_blocks_(CeilDiv(params.num_bits, size_t{params.block_bits})),
      // Pairs never leave their sub-word, so no slack bits are needed.
      bits_(num_blocks_ * params.block_bits, /*slack_bits=*/0) {
  CheckOk(params.Validate());
  BuildLayout();
}

SplitBlockShbfM::SplitBlockShbfM(const Params& params, BitArray bits,
                                 size_t num_elements)
    : family_(params.hash_algorithm, 2, params.seed),
      num_hashes_(params.num_hashes),
      max_offset_span_(params.max_offset_span),
      block_bits_(params.block_bits),
      sub_block_bits_(params.sub_block_bits),
      num_blocks_(params.num_bits / params.block_bits),
      bits_(std::move(bits)),
      num_elements_(num_elements) {
  CheckOk(params.Validate());
  SHBF_CHECK(params.num_bits % params.block_bits == 0 &&
             bits_.num_bits() == params.num_bits &&
             bits_.total_bits() == params.num_bits)
      << "split_block_shbf_m: adopted bits don't match the spec geometry";
  BuildLayout();
}

void SplitBlockShbfM::BuildLayout() {
  const uint32_t num_sub = block_bits_ / sub_block_bits_;
  const uint32_t pairs = num_hashes_ / 2;
  for (uint32_t i = 0; i < pairs; ++i) {
    const uint32_t sub = i % num_sub;
    const uint32_t first_bit = sub * sub_block_bits_;
    word_of_[i] = static_cast<uint8_t>(first_bit / 64);
    base_shift_[i] = static_cast<uint8_t>(first_bit % 64);
    rot_word_[i] = static_cast<uint8_t>(i / kFieldsPerWord);
    rot_shift_[i] = static_cast<uint8_t>(6 * (i % kFieldsPerWord));
  }
  num_rot_words_ = (pairs + kFieldsPerWord - 1) / kFieldsPerWord;
}

// ONE 128-bit pass over the key bytes derives everything: the block from
// h1's high bits (multiply-shift range reduction), the shared offset from
// a golden-multiplied fold of h1, the per-pair rotations from disjoint
// 6-bit fields of h2 (parallel Mix64 words past 10 pairs). Nothing here
// chains — an earlier derivation walked a serial SplitMix64 stream and
// called MaskFromShifts per key, and that latency chain (plus per-key
// vector dispatch) made the split per-key query measurably SLOWER than
// the blocked one it is meant to beat.
//
// Each pair lives on the sub-word's CIRCLE: its first bit sits at rotation
// r (uniform over all sub_block_bits positions) and its second at
// (r + offset) mod sub_block_bits. Clamping bases to [0, s − span] instead
// — the windowed layout — would pile every first bit into the low third of
// the sub-word, and the resulting skewed fill measurably breaks the 2x FPR
// budget. The block prefetch is issued as soon as the block index exists,
// so the rotation math runs inside the line fetch.
void SplitBlockShbfM::DeriveLanes(const void* data, size_t len,
                                  size_t* block_word,
                                  uint64_t* shifts) const {
  const auto [h1, h2] = family_.HashPair(0, data, len);
  *block_word = FastRange64(h1, num_blocks_) * (block_bits_ / 64);
  bits_.Prefetch(*block_word * 64);
  // The block consumed h1's high bits; the golden multiply re-mixes them
  // before the offset's own high-bit range reduction.
  const uint64_t offset =
      FastRange64(h1 * 0x9e3779b97f4a7c15ull, max_offset_span_ - 1) + 1;
  uint64_t pool[kMaxRotWords];
  pool[0] = h2;
  for (uint32_t j = 1; j < num_rot_words_; ++j) {
    pool[j] = Mix64(h1 + 0x9e3779b97f4a7c15ull * j);
  }
  const uint32_t pairs = num_hashes_ / 2;
  const uint64_t sub_mask = sub_block_bits_ - 1;
  for (uint32_t i = 0; i < pairs; ++i) {
    const uint64_t rotation =
        (pool[rot_word_[i]] >> rot_shift_[i]) & sub_mask;
    shifts[i] = base_shift_[i] + rotation;
    shifts[pairs + i] = base_shift_[i] + ((rotation + offset) & sub_mask);
  }
}

void SplitBlockShbfM::DeriveProbe(const void* data, size_t len,
                                  size_t* block_word, uint64_t* mask) const {
  uint64_t shifts[2 * kMaxBatchPairs];
  DeriveLanes(data, len, block_word, shifts);
  const uint32_t pairs = num_hashes_ / 2;
  const uint32_t words = block_bits_ / 64;
  std::fill(mask, mask + words, 0);
  // Scalar on purpose: the shift/ORs are independent and pipeline fully; a
  // per-key kernel call pays more in dispatch than the vector shift saves.
  // The engine's group path (PrepareShiftLanes) fuses whole-group lane
  // arrays into one MaskFromShifts call instead.
  for (uint32_t i = 0; i < pairs; ++i) {
    mask[word_of_[i]] |= (uint64_t{1} << shifts[i]) |
                         (uint64_t{1} << shifts[pairs + i]);
  }
}

void SplitBlockShbfM::PrepareShiftLanes(std::string_view key,
                                        size_t* block_word,
                                        uint64_t* shifts) const {
  DeriveLanes(key.data(), key.size(), block_word, shifts);
}

bool SplitBlockShbfM::ResolveLanes(size_t block_word,
                                   const uint64_t* bit_words) const {
  uint64_t mask[kMaxBlockWords];
  const uint32_t pairs = num_hashes_ / 2;
  const uint32_t words = block_bits_ / 64;
  std::fill(mask, mask + words, 0);
  for (uint32_t i = 0; i < pairs; ++i) {
    mask[word_of_[i]] |= bit_words[i] | bit_words[pairs + i];
  }
  return simd::BlockSubsetTest(bits_.data() + block_word * 8, mask, words);
}

uint64_t SplitBlockShbfM::OffsetOf(std::string_view key) const {
  const auto [h1, h2] = family_.HashPair(0, key.data(), key.size());
  (void)h2;
  return FastRange64(h1 * 0x9e3779b97f4a7c15ull, max_offset_span_ - 1) + 1;
}

void SplitBlockShbfM::Add(const void* data, size_t len) {
  uint64_t mask[kMaxBlockWords];
  size_t block_word;
  DeriveProbe(data, len, &block_word, mask);
  uint8_t* block = bits_.mutable_data() + block_word * 8;
  const uint32_t words = block_bits_ / 64;
  for (uint32_t w = 0; w < words; ++w) {
    uint64_t word;
    std::memcpy(&word, block + w * 8, sizeof(word));
    word |= mask[w];
    std::memcpy(block + w * 8, &word, sizeof(word));
  }
  ++num_elements_;
}

bool SplitBlockShbfM::Contains(const void* data, size_t len) const {
  uint64_t mask[kMaxBlockWords];
  size_t block_word;
  DeriveProbe(data, len, &block_word, mask);
  return simd::BlockSubsetTest(bits_.data() + block_word * 8, mask,
                               block_bits_ / 64);
}

bool SplitBlockShbfM::ContainsWithStats(std::string_view key,
                                        QueryStats* stats) const {
  ++stats->queries;
  // ONE 128-bit key pass derives block, offset AND every rotation; all
  // pairs resolve against the one resident block, so the whole query is one
  // memory access under the paper's cost model (non-murmur algorithms fall
  // back to two passes, which this model does not charge for).
  stats->hash_computations += 1;
  ++stats->memory_accesses;
  return Contains(key.data(), key.size());
}

void SplitBlockShbfM::PrepareProbe(std::string_view key, Probe* probe) const {
  DeriveProbe(key.data(), key.size(), &probe->block_word, probe->mask);
}

void SplitBlockShbfM::PrefetchProbe(const Probe& probe) const {
  bits_.Prefetch(probe.block_word * 64);
}

bool SplitBlockShbfM::ResolveProbe(const Probe& probe) const {
  return simd::BlockSubsetTest(bits_.data() + probe.block_word * 8,
                               probe.mask, block_bits_ / 64);
}

void SplitBlockShbfM::ContainsBatch(const std::vector<std::string>& keys,
                                    std::vector<uint8_t>* results) const {
  results->resize(keys.size());
  if (keys.empty()) return;
  constexpr size_t kGroup = 16;
  Probe probes[kGroup];
  for (size_t start = 0; start < keys.size(); start += kGroup) {
    const size_t group = std::min(kGroup, keys.size() - start);
    for (size_t g = 0; g < group; ++g) {
      PrepareProbe(keys[start + g], &probes[g]);
      PrefetchProbe(probes[g]);
    }
    for (size_t g = 0; g < group; ++g) {
      (*results)[start + g] = ResolveProbe(probes[g]) ? 1 : 0;
    }
  }
}

void SplitBlockShbfM::Clear() {
  bits_.Clear();
  num_elements_ = 0;
}

Status SplitBlockShbfM::MergeFrom(const SplitBlockShbfM& other) {
  if (family_.algorithm() != other.family_.algorithm() ||
      family_.master_seed() != other.family_.master_seed() ||
      num_hashes_ != other.num_hashes_ ||
      max_offset_span_ != other.max_offset_span_ ||
      block_bits_ != other.block_bits_ ||
      sub_block_bits_ != other.sub_block_bits_) {
    return Status::FailedPrecondition(
        "SplitBlockShbfM::MergeFrom: hash families differ");
  }
  if (!bits_.OrWith(other.bits_)) {
    return Status::FailedPrecondition(
        "SplitBlockShbfM::MergeFrom: geometry differs");
  }
  num_elements_ += other.num_elements_;
  return Status::Ok();
}

std::string SplitBlockShbfM::ToBytes() const {
  ByteWriter writer;
  serde::WriteHeader(&writer, serde::StructureTag::kSplitBlockShbfM);
  writer.PutU64(bits_.num_bits());
  writer.PutU32(num_hashes_);
  writer.PutU32(max_offset_span_);
  writer.PutU32(block_bits_);
  writer.PutU32(sub_block_bits_);
  writer.PutU8(static_cast<uint8_t>(family_.algorithm()));
  writer.PutU64(family_.master_seed());
  writer.PutU64(num_elements_);
  bits_.AppendPayload(&writer);
  return writer.Take();
}

Status SplitBlockShbfM::FromBytes(std::string_view bytes,
                                  std::optional<SplitBlockShbfM>* out) {
  ByteReader reader(bytes);
  Status header =
      serde::ReadHeader(&reader, serde::StructureTag::kSplitBlockShbfM);
  if (!header.ok()) return header;
  uint64_t num_bits = 0;
  uint32_t num_hashes = 0;
  uint32_t max_offset_span = 0;
  uint32_t block_bits = 0;
  uint32_t sub_block_bits = 0;
  uint8_t alg = 0;
  uint64_t seed = 0;
  uint64_t num_elements = 0;
  if (!reader.GetU64(&num_bits) || !reader.GetU32(&num_hashes) ||
      !reader.GetU32(&max_offset_span) || !reader.GetU32(&block_bits) ||
      !reader.GetU32(&sub_block_bits) || !reader.GetU8(&alg) ||
      !reader.GetU64(&seed) || !reader.GetU64(&num_elements)) {
    return Status::InvalidArgument(
        "SplitBlockShbfM: truncated parameter block");
  }
  if (alg > 3) {
    return Status::InvalidArgument("SplitBlockShbfM: unknown hash id");
  }
  Params params{.num_bits = num_bits,
                .num_hashes = num_hashes,
                .block_bits = block_bits,
                .sub_block_bits = sub_block_bits,
                .max_offset_span = max_offset_span,
                .hash_algorithm = static_cast<HashAlgorithm>(alg),
                .seed = seed};
  Status valid = params.Validate();
  if (!valid.ok()) return valid;
  if (num_bits % block_bits != 0) {
    return Status::InvalidArgument(
        "SplitBlockShbfM: num_bits not block-aligned");
  }
  out->emplace(params);
  (*out)->num_elements_ = num_elements;
  if (!(*out)->bits_.ReadPayload(&reader) || !reader.AtEnd()) {
    out->reset();
    return Status::InvalidArgument("SplitBlockShbfM: payload mismatch");
  }
  return Status::Ok();
}

}  // namespace shbf
