// ShBF_M — the Shifting Bloom Filter for membership queries (paper §3).
//
// Instead of k independent bit positions, ShBF_M uses k/2 base positions
// h_1(e)%m, ..., h_{k/2}(e)%m plus ONE shared offset
//     o(e) = h_{k/2+1}(e) % (w̄ − 1) + 1   ∈ [1, w̄ − 1],
// and sets both B[h_i(e)%m] and B[h_i(e)%m + o(e)] for every i. A query
// checks the same k bits, but because o(e) < w̄ ≤ w − 7 both bits of a pair
// sit inside one unaligned word load:
//   * hash computations drop from k to k/2 + 1,
//   * memory accesses drop from k to k/2,
// while the FPR stays within noise of a standard k-hash Bloom filter
// (Eq (1) vs Eq (8); minimum 0.6204^{m/n} vs 0.6185^{m/n}).

#ifndef SHBF_SHBF_SHBF_MEMBERSHIP_H_
#define SHBF_SHBF_SHBF_MEMBERSHIP_H_

#include <optional>
#include <string>
#include <string_view>

#include "core/bit_array.h"
#include "core/bits.h"
#include "core/query_stats.h"
#include "core/serde.h"
#include "core/status.h"
#include "hash/hash_family.h"

namespace shbf {

class ShbfM {
 public:
  struct Params {
    size_t num_bits = 0;      ///< m
    uint32_t num_hashes = 0;  ///< k; must be even (k/2 pairs), >= 2
    /// w̄: offsets lie in [1, max_offset_span − 1]. The default 57 (= w − 7)
    /// guarantees one-access pairs on 64-bit machines and is large enough
    /// that the FPR penalty vs BF is negligible (Fig 3: w̄ > 20 suffices).
    uint32_t max_offset_span = kDefaultMaxOffsetSpan;
    HashAlgorithm hash_algorithm = HashAlgorithm::kMurmur3;
    uint64_t seed = 0x5eed5eed5eed5eedull;

    Status Validate() const;
  };

  explicit ShbfM(const Params& params);

  /// Wraps externally stored bits (a BitArray::View into an mmap'd image
  /// region) without copying: geometry from `params`, storage from `bits`.
  /// The view's num_bits/slack must match the owning layout (slack ==
  /// max_offset_span); the registry's mapped opener validates the on-disk
  /// geometry before constructing. Read-only usage.
  ShbfM(const Params& params, BitArray bits, size_t num_elements);

  /// Inserts `key`: k/2 + 1 hash computations, k bits set.
  void Add(std::string_view key) { Add(key.data(), key.size()); }
  void Add(const void* data, size_t len);

  /// Membership query; no false negatives. k/2 window loads worst case,
  /// early exit on the first failing pair.
  bool Contains(std::string_view key) const {
    return Contains(key.data(), key.size());
  }
  bool Contains(const void* data, size_t len) const;

  /// Query under the paper's cost model: one memory access per PAIR probed
  /// (both bits share a window), one hash per function actually evaluated.
  bool ContainsWithStats(std::string_view key, QueryStats* stats) const;

  /// Batched membership query: computes all probe positions for a group of
  /// keys first, prefetches their cache lines, then tests — overlapping
  /// hash computation with memory latency. `results` is resized to
  /// keys.size(); entry i receives Contains(keys[i]).
  void ContainsBatch(const std::vector<std::string>& keys,
                     std::vector<uint8_t>* results) const;

  /// Largest k/2 the probe/batch paths support (k <= 64).
  static constexpr uint32_t kMaxBatchPairs = 32;

  /// Precomputed query state for one key: every hash evaluated, no filter
  /// memory touched yet. The engine's two-pass batch loop fills a group of
  /// these (PrepareProbe), prefetches their windows (PrefetchProbe), and
  /// only then resolves (ResolveProbe) — by which point the cache lines are
  /// resident or in flight.
  struct Probe {
    uint64_t need;                 ///< bit 0 | bit o(e): the pair pattern
    size_t bases[kMaxBatchPairs];  ///< h_i(e) % m for i < num_pairs()
  };

  /// Computes `key`'s k/2 base positions and pair pattern (hashes only;
  /// no memory access). Requires num_pairs() <= kMaxBatchPairs.
  void PrepareProbe(std::string_view key, Probe* probe) const;

  /// Hints the cache to fetch every window `probe` will load.
  void PrefetchProbe(const Probe& probe) const;

  /// Resolves a prepared probe; identical answer to Contains(key).
  bool ResolveProbe(const Probe& probe) const;

  /// The offset o(key) ∈ [1, max_offset_span − 1]; exposed for tests.
  uint64_t OffsetOf(std::string_view key) const;

  size_t num_bits() const { return bits_.num_bits(); }
  uint32_t num_hashes() const { return num_hashes_; }
  uint32_t num_pairs() const { return num_hashes_ / 2; }
  uint32_t max_offset_span() const { return max_offset_span_; }
  HashAlgorithm hash_algorithm() const { return family_.algorithm(); }
  uint64_t seed() const { return family_.master_seed(); }
  size_t num_elements() const { return num_elements_; }
  const BitArray& bits() const { return bits_; }

  void Clear();

  /// Set-union: ORs `other`'s bit array into this one (Add only ever sets
  /// bits, so the OR answers exactly like inserting both key sets). Both
  /// filters must share geometry, hash family, seed and offset span.
  Status MergeFrom(const ShbfM& other);

  /// Serializes parameters + bit payload to a versioned byte blob.
  std::string ToBytes() const;

  /// Reconstructs a filter that answers identically to the serialized one.
  static Status FromBytes(std::string_view bytes, std::optional<ShbfM>* out);

 private:
  HashFamily family_;  // k/2 base functions + 1 offset function
  uint32_t num_hashes_;
  uint32_t max_offset_span_;
  BitArray bits_;
  size_t num_elements_ = 0;
};

}  // namespace shbf

#endif  // SHBF_SHBF_SHBF_MEMBERSHIP_H_
