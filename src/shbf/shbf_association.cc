#include "shbf/shbf_association.h"

#include <cmath>

namespace shbf {

Status ShbfAParams::Validate() const {
  if (num_bits == 0) {
    return Status::InvalidArgument("ShbfA: num_bits must be positive");
  }
  if (num_hashes == 0) {
    return Status::InvalidArgument("ShbfA: num_hashes must be positive");
  }
  if (max_offset_span < 3 || max_offset_span > BitArray::kWindowBits) {
    return Status::InvalidArgument("ShbfA: max_offset_span must be in [3, 57]");
  }
  if ((max_offset_span - 1) % 2 != 0) {
    return Status::InvalidArgument(
        "ShbfA: max_offset_span must be odd so (w̄−1)/2 is exact");
  }
  return Status::Ok();
}

ShbfAParams ShbfAParams::Optimal(size_t n1, size_t n2, size_t n_intersection,
                                 uint32_t num_hashes) {
  SHBF_CHECK(n1 > 0 && n2 > 0 && num_hashes > 0);
  SHBF_CHECK(n_intersection <= n1 && n_intersection <= n2);
  ShbfAParams p;
  // m = n'·k / ln 2 with n' = |S1 ∪ S2| = n1 + n2 − n3 (Table 2).
  double n_union = static_cast<double>(n1 + n2 - n_intersection);
  p.num_bits = static_cast<size_t>(std::ceil(n_union * num_hashes / std::log(2.0)));
  p.num_hashes = num_hashes;
  return p;
}

ShbfA::ShbfA(const ShbfAParams& params)
    : family_(params.hash_algorithm, params.num_hashes + 2, params.seed),
      num_hashes_(params.num_hashes),
      max_offset_span_(params.max_offset_span),
      half_span_((params.max_offset_span - 1) / 2),
      // o2 can reach w̄ − 1, so shifted writes may land that far past m − 1
      // (the paper appends w̄ − 2 bits; we keep a full span for the window).
      bits_(params.num_bits, /*slack_bits=*/params.max_offset_span) {
  CheckOk(params.Validate());
}

ShbfA::Offsets ShbfA::OffsetsOf(std::string_view key) const {
  uint64_t o1 = family_.Hash(num_hashes_, key) % half_span_ + 1;
  uint64_t o2 = o1 + family_.Hash(num_hashes_ + 1, key) % half_span_ + 1;
  return {o1, o2};
}

void ShbfA::AddWithOffset(std::string_view key, uint64_t offset) {
  const size_t m = bits_.num_bits();
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    bits_.SetBit(family_.Hash(i, key) % m + offset);
  }
}

void ShbfA::Build(const std::vector<std::string>& s1,
                  const std::vector<std::string>& s2) {
  // §4.1: hash tables T1/T2 classify every element into its case.
  ChainedHashTable t1;
  ChainedHashTable t2;
  for (const std::string& e : s1) t1.Insert(e, 0);
  for (const std::string& e : s2) t2.Insert(e, 0);

  // Elements of S1: offset 0 if exclusive, o1 if shared.
  t1.ForEach([&](std::string_view key, uint64_t) {
    uint64_t offset = t2.Contains(key) ? OffsetsOf(key).o1 : 0;
    AddWithOffset(key, offset);
  });
  // Elements of S2 \ S1: offset o2. Shared elements are already stored.
  t2.ForEach([&](std::string_view key, uint64_t) {
    if (!t1.Contains(key)) AddWithOffset(key, OffsetsOf(key).o2);
  });
}

AssociationOutcome ShbfA::Decode(bool s1_only, bool both, bool s2_only) {
  // The seven outcomes of §4.2, in the paper's numbering.
  if (s1_only && !both && !s2_only) return AssociationOutcome::kS1Only;
  if (!s1_only && both && !s2_only) return AssociationOutcome::kIntersection;
  if (!s1_only && !both && s2_only) return AssociationOutcome::kS2Only;
  if (s1_only && both && !s2_only) return AssociationOutcome::kS1UnsureS2;
  if (!s1_only && both && s2_only) return AssociationOutcome::kS2UnsureS1;
  if (s1_only && !both && s2_only) return AssociationOutcome::kExclusiveEither;
  if (s1_only && both && s2_only) return AssociationOutcome::kUnknown;
  return AssociationOutcome::kNotFound;
}

AssociationOutcome ShbfA::Query(std::string_view key) const {
  const size_t m = bits_.num_bits();
  Offsets off = OffsetsOf(key);
  const uint64_t b0 = 1ull;
  const uint64_t b1 = 1ull << off.o1;
  const uint64_t b2 = 1ull << off.o2;
  bool s1_only = true;
  bool both = true;
  bool s2_only = true;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    uint64_t window = bits_.LoadWindow(family_.Hash(i, key) % m);
    s1_only = s1_only && (window & b0);
    both = both && (window & b1);
    s2_only = s2_only && (window & b2);
    if (!s1_only && !both && !s2_only) break;  // every pattern already dead
  }
  return Decode(s1_only, both, s2_only);
}

void ShbfA::PrepareProbe(std::string_view key, Probe* probe) const {
  const size_t m = bits_.num_bits();
  SHBF_CHECK(num_hashes_ <= kMaxBatchHashes) << "probe path supports k <= 64";
  Offsets off = OffsetsOf(key);
  probe->bit_s1 = 1ull;
  probe->bit_both = 1ull << off.o1;
  probe->bit_s2 = 1ull << off.o2;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    probe->bases[i] = family_.Hash(i, key) % m;
  }
}

void ShbfA::PrefetchProbe(const Probe& probe) const {
  for (uint32_t i = 0; i < num_hashes_; ++i) bits_.Prefetch(probe.bases[i]);
}

AssociationOutcome ShbfA::ResolveProbe(const Probe& probe) const {
  bool s1_only = true;
  bool both = true;
  bool s2_only = true;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    uint64_t window = bits_.LoadWindow(probe.bases[i]);
    s1_only = s1_only && (window & probe.bit_s1);
    both = both && (window & probe.bit_both);
    s2_only = s2_only && (window & probe.bit_s2);
    if (!s1_only && !both && !s2_only) break;  // every pattern already dead
  }
  return Decode(s1_only, both, s2_only);
}

AssociationOutcome ShbfA::QueryWithStats(std::string_view key,
                                         QueryStats* stats) const {
  const size_t m = bits_.num_bits();
  ++stats->queries;
  stats->hash_computations += 2;  // o1, o2
  Offsets off = OffsetsOf(key);
  const uint64_t b0 = 1ull;
  const uint64_t b1 = 1ull << off.o1;
  const uint64_t b2 = 1ull << off.o2;
  bool s1_only = true;
  bool both = true;
  bool s2_only = true;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    ++stats->hash_computations;
    ++stats->memory_accesses;  // all three bits share one window
    uint64_t window = bits_.LoadWindow(family_.Hash(i, key) % m);
    s1_only = s1_only && (window & b0);
    both = both && (window & b1);
    s2_only = s2_only && (window & b2);
    if (!s1_only && !both && !s2_only) break;
  }
  return Decode(s1_only, both, s2_only);
}

std::string ShbfA::ToBytes() const {
  ByteWriter writer;
  serde::WriteHeader(&writer, serde::StructureTag::kShbfA);
  writer.PutU64(bits_.num_bits());
  writer.PutU32(num_hashes_);
  writer.PutU32(max_offset_span_);
  writer.PutU8(static_cast<uint8_t>(family_.algorithm()));
  writer.PutU64(family_.master_seed());
  bits_.AppendPayload(&writer);
  return writer.Take();
}

Status ShbfA::FromBytes(std::string_view bytes, std::optional<ShbfA>* out) {
  ByteReader reader(bytes);
  Status header = serde::ReadHeader(&reader, serde::StructureTag::kShbfA);
  if (!header.ok()) return header;
  uint64_t num_bits = 0;
  uint32_t num_hashes = 0;
  uint32_t max_offset_span = 0;
  uint8_t alg = 0;
  uint64_t seed = 0;
  if (!reader.GetU64(&num_bits) || !reader.GetU32(&num_hashes) ||
      !reader.GetU32(&max_offset_span) || !reader.GetU8(&alg) ||
      !reader.GetU64(&seed)) {
    return Status::InvalidArgument("ShbfA: truncated parameter block");
  }
  if (alg > 3) return Status::InvalidArgument("ShbfA: unknown hash id");
  ShbfAParams params{.num_bits = num_bits,
                     .num_hashes = num_hashes,
                     .max_offset_span = max_offset_span,
                     .hash_algorithm = static_cast<HashAlgorithm>(alg),
                     .seed = seed};
  Status valid = params.Validate();
  if (!valid.ok()) return valid;
  out->emplace(params);
  if (!(*out)->bits_.ReadPayload(&reader) || !reader.AtEnd()) {
    out->reset();
    return Status::InvalidArgument("ShbfA: payload size mismatch");
  }
  return Status::Ok();
}

// --- CountingShbfA -----------------------------------------------------------

Status CountingShbfA::Params::Validate() const {
  Status s = filter.Validate();
  if (!s.ok()) return s;
  if (counter_bits < 1 || counter_bits > 32) {
    return Status::InvalidArgument(
        "CountingShbfA: counter_bits must be in [1, 32]");
  }
  return Status::Ok();
}

CountingShbfA::CountingShbfA(const Params& params)
    : filter_(params.filter),
      counters_(params.filter.num_bits + params.filter.max_offset_span,
                params.counter_bits) {
  CheckOk(params.Validate());
}

uint64_t CountingShbfA::CurrentOffset(bool in_s1, bool in_s2,
                                      std::string_view key) const {
  SHBF_DCHECK(in_s1 || in_s2);
  if (in_s1 && in_s2) return filter_.OffsetsOf(key).o1;
  if (in_s1) return 0;
  return filter_.OffsetsOf(key).o2;
}

void CountingShbfA::AddCells(std::string_view key, uint64_t offset) {
  const size_t m = filter_.bits_.num_bits();
  for (uint32_t i = 0; i < filter_.num_hashes_; ++i) {
    size_t pos = filter_.family_.Hash(i, key) % m + offset;
    counters_.Increment(pos);
    filter_.bits_.SetBit(pos);
  }
}

void CountingShbfA::RemoveCells(std::string_view key, uint64_t offset) {
  const size_t m = filter_.bits_.num_bits();
  for (uint32_t i = 0; i < filter_.num_hashes_; ++i) {
    size_t pos = filter_.family_.Hash(i, key) % m + offset;
    counters_.Decrement(pos);
    if (counters_.Get(pos) == 0) filter_.bits_.ClearBit(pos);
  }
}

void CountingShbfA::InsertS1(std::string_view key) {
  if (t1_.Contains(key)) return;  // set semantics
  bool in_s2 = t2_.Contains(key);
  if (in_s2) {
    // S2-only → intersection: migrate o2 → o1.
    RemoveCells(key, filter_.OffsetsOf(key).o2);
    AddCells(key, filter_.OffsetsOf(key).o1);
  } else {
    AddCells(key, 0);
  }
  t1_.Insert(key, 0);
}

void CountingShbfA::InsertS2(std::string_view key) {
  if (t2_.Contains(key)) return;
  bool in_s1 = t1_.Contains(key);
  if (in_s1) {
    // S1-only → intersection: migrate 0 → o1.
    RemoveCells(key, 0);
    AddCells(key, filter_.OffsetsOf(key).o1);
  } else {
    AddCells(key, filter_.OffsetsOf(key).o2);
  }
  t2_.Insert(key, 0);
}

bool CountingShbfA::DeleteS1(std::string_view key) {
  if (!t1_.Contains(key)) return false;
  bool in_s2 = t2_.Contains(key);
  if (in_s2) {
    // intersection → S2-only: migrate o1 → o2.
    RemoveCells(key, filter_.OffsetsOf(key).o1);
    AddCells(key, filter_.OffsetsOf(key).o2);
  } else {
    RemoveCells(key, 0);
  }
  t1_.Erase(key);
  return true;
}

bool CountingShbfA::DeleteS2(std::string_view key) {
  if (!t2_.Contains(key)) return false;
  bool in_s1 = t1_.Contains(key);
  if (in_s1) {
    // intersection → S1-only: migrate o1 → 0.
    RemoveCells(key, filter_.OffsetsOf(key).o1);
    AddCells(key, 0);
  } else {
    RemoveCells(key, filter_.OffsetsOf(key).o2);
  }
  t2_.Erase(key);
  return true;
}

bool CountingShbfA::SynchronizedWithCounters() const {
  for (size_t i = 0; i < counters_.num_counters(); ++i) {
    if ((counters_.Get(i) > 0) != filter_.bits_.GetBit(i)) return false;
  }
  return true;
}

}  // namespace shbf
