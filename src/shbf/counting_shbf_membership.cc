#include "shbf/counting_shbf_membership.h"

namespace shbf {

Status CountingShbfM::Params::Validate() const {
  if (num_bits == 0) {
    return Status::InvalidArgument("CountingShbfM: num_bits must be positive");
  }
  if (num_hashes < 2 || num_hashes % 2 != 0) {
    return Status::InvalidArgument(
        "CountingShbfM: num_hashes must be even and >= 2");
  }
  if (counter_bits < 1 || counter_bits > 32) {
    return Status::InvalidArgument(
        "CountingShbfM: counter_bits must be in [1, 32]");
  }
  if (max_offset_span < 2 || max_offset_span > BitArray::kWindowBits) {
    return Status::InvalidArgument(
        "CountingShbfM: max_offset_span must be in [2, 57]");
  }
  return Status::Ok();
}

CountingShbfM::CountingShbfM(const Params& params)
    : family_(params.hash_algorithm, params.num_hashes / 2 + 1, params.seed),
      num_hashes_(params.num_hashes),
      max_offset_span_(params.max_offset_span),
      bits_(params.num_bits, /*slack_bits=*/params.max_offset_span),
      counters_(params.num_bits + params.max_offset_span,
                params.counter_bits) {
  CheckOk(params.Validate());
}

uint64_t CountingShbfM::OffsetOf(std::string_view key) const {
  return family_.Hash(num_hashes_ / 2, key.data(), key.size()) %
             (max_offset_span_ - 1) +
         1;
}

void CountingShbfM::Insert(std::string_view key) {
  const size_t m = bits_.num_bits();
  const uint32_t pairs = num_hashes_ / 2;
  uint64_t offset = OffsetOf(key);
  for (uint32_t i = 0; i < pairs; ++i) {
    size_t base = family_.Hash(i, key.data(), key.size()) % m;
    for (size_t pos : {base, base + offset}) {
      counters_.Increment(pos);
      if (counters_.Get(pos) >= 1) bits_.SetBit(pos);
    }
  }
}

void CountingShbfM::Delete(std::string_view key) {
  const size_t m = bits_.num_bits();
  const uint32_t pairs = num_hashes_ / 2;
  uint64_t offset = OffsetOf(key);
  for (uint32_t i = 0; i < pairs; ++i) {
    size_t base = family_.Hash(i, key.data(), key.size()) % m;
    for (size_t pos : {base, base + offset}) {
      counters_.Decrement(pos);
      if (counters_.Get(pos) == 0) bits_.ClearBit(pos);
    }
  }
}

bool CountingShbfM::Contains(std::string_view key) const {
  const size_t m = bits_.num_bits();
  const uint32_t pairs = num_hashes_ / 2;
  uint64_t offset = OffsetOf(key);
  const uint64_t need = 1ull | (1ull << offset);
  for (uint32_t i = 0; i < pairs; ++i) {
    size_t base = family_.Hash(i, key.data(), key.size()) % m;
    if ((bits_.LoadWindow(base) & need) != need) return false;
  }
  return true;
}

bool CountingShbfM::ContainsWithStats(std::string_view key,
                                      QueryStats* stats) const {
  const size_t m = bits_.num_bits();
  const uint32_t pairs = num_hashes_ / 2;
  ++stats->queries;
  ++stats->hash_computations;
  uint64_t offset = OffsetOf(key);
  const uint64_t need = 1ull | (1ull << offset);
  for (uint32_t i = 0; i < pairs; ++i) {
    ++stats->hash_computations;
    ++stats->memory_accesses;
    size_t base = family_.Hash(i, key.data(), key.size()) % m;
    if ((bits_.LoadWindow(base) & need) != need) return false;
  }
  return true;
}

bool CountingShbfM::SynchronizedWithCounters() const {
  for (size_t i = 0; i < counters_.num_counters(); ++i) {
    if ((counters_.Get(i) > 0) != bits_.GetBit(i)) return false;
  }
  return true;
}

std::string CountingShbfM::ToBytes() const {
  ByteWriter writer;
  serde::WriteHeader(&writer, serde::StructureTag::kCountingShbfM);
  writer.PutU64(bits_.num_bits());
  writer.PutU32(num_hashes_);
  writer.PutU32(counters_.bits_per_counter());
  writer.PutU32(max_offset_span_);
  writer.PutU8(static_cast<uint8_t>(family_.algorithm()));
  writer.PutU64(family_.master_seed());
  bits_.AppendPayload(&writer);
  counters_.AppendPayload(&writer);
  return writer.Take();
}

Status CountingShbfM::FromBytes(std::string_view bytes,
                                std::optional<CountingShbfM>* out) {
  ByteReader reader(bytes);
  Status header =
      serde::ReadHeader(&reader, serde::StructureTag::kCountingShbfM);
  if (!header.ok()) return header;
  uint64_t num_bits = 0;
  uint32_t num_hashes = 0;
  uint32_t counter_bits = 0;
  uint32_t max_offset_span = 0;
  uint8_t alg = 0;
  uint64_t seed = 0;
  if (!reader.GetU64(&num_bits) || !reader.GetU32(&num_hashes) ||
      !reader.GetU32(&counter_bits) || !reader.GetU32(&max_offset_span) ||
      !reader.GetU8(&alg) || !reader.GetU64(&seed)) {
    return Status::InvalidArgument("CountingShbfM: truncated parameter block");
  }
  if (alg > 3) return Status::InvalidArgument("CountingShbfM: unknown hash id");
  Params params{.num_bits = num_bits,
                .num_hashes = num_hashes,
                .counter_bits = counter_bits,
                .max_offset_span = max_offset_span,
                .hash_algorithm = static_cast<HashAlgorithm>(alg),
                .seed = seed};
  Status valid = params.Validate();
  if (!valid.ok()) return valid;
  out->emplace(params);
  if (!(*out)->bits_.ReadPayload(&reader) ||
      !(*out)->counters_.ReadPayload(&reader) || !reader.AtEnd()) {
    out->reset();
    return Status::InvalidArgument("CountingShbfM: payload size mismatch");
  }
  return Status::Ok();
}

}  // namespace shbf
