#include "shbf/counting_shbf_membership.h"

namespace shbf {

Status CountingShbfM::Params::Validate() const {
  if (num_bits == 0) {
    return Status::InvalidArgument("CountingShbfM: num_bits must be positive");
  }
  if (num_hashes < 2 || num_hashes % 2 != 0) {
    return Status::InvalidArgument(
        "CountingShbfM: num_hashes must be even and >= 2");
  }
  if (counter_bits < 1 || counter_bits > 32) {
    return Status::InvalidArgument(
        "CountingShbfM: counter_bits must be in [1, 32]");
  }
  if (max_offset_span < 2 || max_offset_span > BitArray::kWindowBits) {
    return Status::InvalidArgument(
        "CountingShbfM: max_offset_span must be in [2, 57]");
  }
  return Status::Ok();
}

CountingShbfM::CountingShbfM(const Params& params)
    : family_(params.hash_algorithm, params.num_hashes / 2 + 1, params.seed),
      num_hashes_(params.num_hashes),
      max_offset_span_(params.max_offset_span),
      bits_(params.num_bits, /*slack_bits=*/params.max_offset_span),
      counters_(params.num_bits + params.max_offset_span,
                params.counter_bits) {
  CheckOk(params.Validate());
}

uint64_t CountingShbfM::OffsetOf(std::string_view key) const {
  return family_.Hash(num_hashes_ / 2, key.data(), key.size()) %
             (max_offset_span_ - 1) +
         1;
}

void CountingShbfM::Insert(std::string_view key) {
  const size_t m = bits_.num_bits();
  const uint32_t pairs = num_hashes_ / 2;
  uint64_t offset = OffsetOf(key);
  for (uint32_t i = 0; i < pairs; ++i) {
    size_t base = family_.Hash(i, key.data(), key.size()) % m;
    for (size_t pos : {base, base + offset}) {
      counters_.Increment(pos);
      if (counters_.Get(pos) >= 1) bits_.SetBit(pos);
    }
  }
}

void CountingShbfM::Delete(std::string_view key) {
  const size_t m = bits_.num_bits();
  const uint32_t pairs = num_hashes_ / 2;
  uint64_t offset = OffsetOf(key);
  for (uint32_t i = 0; i < pairs; ++i) {
    size_t base = family_.Hash(i, key.data(), key.size()) % m;
    for (size_t pos : {base, base + offset}) {
      counters_.Decrement(pos);
      if (counters_.Get(pos) == 0) bits_.ClearBit(pos);
    }
  }
}

bool CountingShbfM::Contains(std::string_view key) const {
  const size_t m = bits_.num_bits();
  const uint32_t pairs = num_hashes_ / 2;
  uint64_t offset = OffsetOf(key);
  const uint64_t need = 1ull | (1ull << offset);
  for (uint32_t i = 0; i < pairs; ++i) {
    size_t base = family_.Hash(i, key.data(), key.size()) % m;
    if ((bits_.LoadWindow(base) & need) != need) return false;
  }
  return true;
}

bool CountingShbfM::ContainsWithStats(std::string_view key,
                                      QueryStats* stats) const {
  const size_t m = bits_.num_bits();
  const uint32_t pairs = num_hashes_ / 2;
  ++stats->queries;
  ++stats->hash_computations;
  uint64_t offset = OffsetOf(key);
  const uint64_t need = 1ull | (1ull << offset);
  for (uint32_t i = 0; i < pairs; ++i) {
    ++stats->hash_computations;
    ++stats->memory_accesses;
    size_t base = family_.Hash(i, key.data(), key.size()) % m;
    if ((bits_.LoadWindow(base) & need) != need) return false;
  }
  return true;
}

bool CountingShbfM::SynchronizedWithCounters() const {
  for (size_t i = 0; i < counters_.num_counters(); ++i) {
    if ((counters_.Get(i) > 0) != bits_.GetBit(i)) return false;
  }
  return true;
}

}  // namespace shbf
