// Split-block ShBF_M — shifting pairs with a one-vector-op resolve.
//
// Blocked ShBF_M confines all k/2 (base, base+offset) pairs to one block
// but still resolves them as k/2 separate unaligned window loads (gathered
// and SIMD-tested across keys by the engine). The split-block variant pins
// pair i to sub-word i % num_sub of its block and places the pair on the
// sub-word's CIRCLE: first bit at rotation r(e, i), uniform over all
// sub_block_bits positions, second bit at (r + o(e)) mod sub_block_bits.
// Consequences:
//
//   * the probe becomes the same {block_word, mask[8]} shape as the
//     split-block Bloom filter: pair patterns OR into a whole-block mask,
//     and ONE simd::BlockSubsetTest answers all pairs of a key at once —
//     no per-pair loads, no cross-key gather pass;
//   * the derivation goes wide: one 128-bit hash pass (HashPair), a
//     multiply-shift block reduction (FastRange64), rotations as disjoint
//     6-bit fields of h2 (parallel Mix64 words past 10 pairs) — no serial
//     SplitMix64 chain. Per key the 2·(k/2) mask bits are independent
//     shift/ORs; across a batch the engine fuses every key's shift lanes
//     into ONE simd::MaskFromShifts call (AVX2 `vpsllvq` / NEON `vshlq`)
//     — see PrepareShiftLanes/ResolveLanes;
//   * the circular placement keeps per-bit fill uniform — a windowed
//     layout (bases clamped to [0, s − w̄]) concentrates first bits in the
//     low end of each sub-word and measurably breaks the 2x FPR budget.
//
// Offsets live in [1, max_offset_span − 1] with max_offset_span <
// sub_block_bits (default sub_block_bits/2 = 32), mirroring the blocked
// variant's span. Keys sharing a block collide more than in plain ShBF_M;
// the acceptance gate bounds the penalty at 2x at equal bits/key.

#ifndef SHBF_SHBF_SPLIT_BLOCK_SHBF_MEMBERSHIP_H_
#define SHBF_SHBF_SPLIT_BLOCK_SHBF_MEMBERSHIP_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/bit_array.h"
#include "core/bits.h"
#include "core/query_stats.h"
#include "core/serde.h"
#include "core/status.h"
#include "hash/hash_family.h"

namespace shbf {

class SplitBlockShbfM {
 public:
  static constexpr uint32_t kMinBlockBits = 64;
  static constexpr uint32_t kMaxBlockBits = 512;
  static constexpr uint32_t kMaxBlockWords = kMaxBlockBits / 64;

  /// Largest k/2 the probe/batch paths support (k <= 64).
  static constexpr uint32_t kMaxBatchPairs = 32;

  struct Params {
    size_t num_bits = 0;      ///< m; rounded up to a multiple of block_bits
    uint32_t num_hashes = 0;  ///< k; must be even (k/2 pairs), >= 2
    uint32_t block_bits = 256;     ///< multiple of 64 in [64, 512]
    uint32_t sub_block_bits = 64;  ///< power of two in [16, 64]
    /// w̄: offsets lie in [1, max_offset_span − 1]; must stay below
    /// sub_block_bits so a pair never leaves its sub-word.
    uint32_t max_offset_span = 32;
    HashAlgorithm hash_algorithm = HashAlgorithm::kMurmur3;
    uint64_t seed = 0x5eed5eed5eed5eedull;

    Status Validate() const;
  };

  explicit SplitBlockShbfM(const Params& params);

  /// Wraps externally stored bits (a BitArray::View into an mmap'd image
  /// region) without copying. `params.num_bits` must already be block-
  /// aligned and equal the view's num_bits (slack 0); the registry's
  /// mapped opener validates the on-disk geometry first. Read-only usage.
  SplitBlockShbfM(const Params& params, BitArray bits, size_t num_elements);

  /// Inserts `key`: one 128-bit hash pass over the key bytes (block, offset
  /// and all k/2 rotations derive from its halves), k bits set — all inside
  /// one block.
  void Add(std::string_view key) { Add(key.data(), key.size()); }
  void Add(const void* data, size_t len);

  /// Membership query; no false negatives. One block read, one subset test.
  bool Contains(std::string_view key) const {
    return Contains(key.data(), key.size());
  }
  bool Contains(const void* data, size_t len) const;

  /// Query under the paper's cost model: the whole block is one memory
  /// access; two hash computations.
  bool ContainsWithStats(std::string_view key, QueryStats* stats) const;

  /// Batched membership query (two-pass prepare/prefetch/resolve groups).
  void ContainsBatch(const std::vector<std::string>& keys,
                     std::vector<uint8_t>* results) const;

  /// Precomputed query state — same shape as SplitBlockBloomFilter::Probe
  /// (and BlockedBloomFilter::Probe), so the engine resolves all three
  /// through one BlockSubsetTest path with no gather staging.
  struct Probe {
    size_t block_word;              ///< first word of the block
    uint64_t mask[kMaxBlockWords];  ///< every pair pattern, pre-positioned
  };

  /// Computes `key`'s block and pair-pattern mask (one hash pass + 2·pairs
  /// shift/ORs); also issues the block prefetch, so the mask math overlaps
  /// the fetch.
  void PrepareProbe(std::string_view key, Probe* probe) const;

  /// Hints the cache to fetch the (single) block `probe` reads.
  void PrefetchProbe(const Probe& probe) const;

  /// Resolves a prepared probe; identical answer to Contains(key).
  bool ResolveProbe(const Probe& probe) const;

  /// Lanes per key in the group-batched protocol (= num_hashes(): one lane
  /// per pair bit, first bits in [0, pairs), second bits in [pairs, 2·pairs)).
  uint32_t probe_lanes() const { return num_hashes_; }

  /// Writes `key`'s probe_lanes() shift values (base_shift + rotation, each
  /// < 64) and its block word, and prefetches the block. The engine
  /// concatenates the lanes of a whole group and turns them into mask bits
  /// with ONE simd::MaskFromShifts call.
  void PrepareShiftLanes(std::string_view key, size_t* block_word,
                         uint64_t* shifts) const;

  /// Folds the group kernel's per-lane bit words (bit_words[i] ==
  /// 1 << shifts[i]) back into the block mask and resolves; identical
  /// answer to Contains(key).
  bool ResolveLanes(size_t block_word, const uint64_t* bit_words) const;

  /// The offset o(key) ∈ [1, max_offset_span − 1]; exposed for tests.
  uint64_t OffsetOf(std::string_view key) const;

  size_t num_bits() const { return bits_.num_bits(); }
  uint32_t num_hashes() const { return num_hashes_; }
  uint32_t num_pairs() const { return num_hashes_ / 2; }
  uint32_t max_offset_span() const { return max_offset_span_; }
  uint32_t block_bits() const { return block_bits_; }
  uint32_t block_words() const { return block_bits_ / 64; }
  uint32_t sub_block_bits() const { return sub_block_bits_; }
  uint32_t num_sub_blocks() const { return block_bits_ / sub_block_bits_; }
  size_t num_blocks() const { return num_blocks_; }
  HashAlgorithm hash_algorithm() const { return family_.algorithm(); }
  uint64_t seed() const { return family_.master_seed(); }
  size_t num_elements() const { return num_elements_; }
  const BitArray& bits() const { return bits_; }

  void Clear();

  /// Set-union via bitwise OR; both filters must share geometry, hash
  /// family, seed, offset span, block and sub-block size.
  Status MergeFrom(const SplitBlockShbfM& other);

  /// Serializes parameters + bit payload to a versioned byte blob.
  std::string ToBytes() const;

  /// Reconstructs a filter that answers identically to the serialized one.
  static Status FromBytes(std::string_view bytes,
                          std::optional<SplitBlockShbfM>* out);

 private:
  /// 6-bit rotation fields per 64-bit pool word; pool word 0 is h2 itself,
  /// further words are parallel Mix64 derivations (no serial chain).
  static constexpr uint32_t kFieldsPerWord = 10;
  static constexpr uint32_t kMaxRotWords =
      (kMaxBatchPairs + kFieldsPerWord - 1) / kFieldsPerWord;

  /// One hash pass; hands back the block's first word (prefetched) and the
  /// 2·pairs shift lanes (first bits, then second bits).
  void DeriveLanes(const void* data, size_t len, size_t* block_word,
                   uint64_t* shifts) const;

  /// DeriveLanes + the scalar mask build (mask[word_of_[i]] |= 1 << shift).
  void DeriveProbe(const void* data, size_t len, size_t* block_word,
                   uint64_t* mask) const;

  /// Fills word_of_/base_shift_/rot_word_/rot_shift_ from the
  /// (key-independent) pair→sub-word round-robin mapping.
  void BuildLayout();

  HashFamily family_;  // one 128-bit pass; rotations are fields of h2
  uint32_t num_hashes_;
  uint32_t max_offset_span_;
  uint32_t block_bits_;
  uint32_t sub_block_bits_;
  size_t num_blocks_;
  BitArray bits_;
  size_t num_elements_ = 0;

  /// Pair i's block word and its sub-word's bit offset inside that word;
  /// key-independent because sub_block_bits divides 64.
  uint8_t word_of_[kMaxBatchPairs];
  uint8_t base_shift_[kMaxBatchPairs];
  /// Which rotation-pool word pair i's 6-bit field lives in, and the
  /// field's shift inside it.
  uint8_t rot_word_[kMaxBatchPairs];
  uint8_t rot_shift_[kMaxBatchPairs];
  uint32_t num_rot_words_ = 1;
};

}  // namespace shbf

#endif  // SHBF_SHBF_SPLIT_BLOCK_SHBF_MEMBERSHIP_H_
