#include "shbf/blocked_shbf_membership.h"

#include <algorithm>

#include "core/rng.h"

namespace shbf {

namespace {
bool IsPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Status BlockedShbfM::Params::Validate() const {
  if (num_bits == 0) {
    return Status::InvalidArgument("BlockedShbfM: num_bits must be positive");
  }
  if (num_hashes < 2 || num_hashes % 2 != 0) {
    return Status::InvalidArgument(
        "BlockedShbfM: num_hashes must be even and >= 2 (k/2 pairs)");
  }
  if (max_offset_span < 2) {
    return Status::InvalidArgument(
        "BlockedShbfM: max_offset_span must be >= 2 so offsets are nonzero");
  }
  if (max_offset_span > BitArray::kWindowBits) {
    return Status::InvalidArgument(
        "BlockedShbfM: max_offset_span exceeds the one-access window");
  }
  if (block_bits < kMinBlockBits || block_bits > kMaxBlockBits ||
      !IsPowerOfTwo(block_bits)) {
    return Status::InvalidArgument(
        "BlockedShbfM: block_bits must be a power of two in [128, 512]");
  }
  if (block_bits <= max_offset_span) {
    return Status::InvalidArgument(
        "BlockedShbfM: block_bits must exceed max_offset_span so a pair "
        "fits inside one block");
  }
  return Status::Ok();
}

BlockedShbfM::BlockedShbfM(const Params& params)
    : family_(params.hash_algorithm, 2, params.seed),
      num_hashes_(params.num_hashes),
      max_offset_span_(params.max_offset_span),
      block_bits_(params.block_bits),
      num_blocks_(CeilDiv(params.num_bits, size_t{params.block_bits})),
      // Pairs never leave their block (bases are capped below), so no slack
      // bits are needed beyond the guard bytes.
      bits_(num_blocks_ * params.block_bits, /*slack_bits=*/0) {
  CheckOk(params.Validate());
}

// Everything a query needs is derived from TWO passes over the key bytes:
// the block from h1, the offset from h2, and the k/2 base positions from a
// SplitMix64 stream seeded by both. Plain ShBF_M pays one key pass per
// base; the blocked variant is the throughput play, so it uses the standard
// blocked-filter recipe (Putze et al.) of hashing once and mixing cheaply —
// the hash cost per query is O(|key|), not O(k·|key|).
void BlockedShbfM::Derive(const void* data, size_t len, size_t* block_bit,
                          uint64_t* offset, uint64_t* mix_state) const {
  const uint64_t h1 = family_.Hash(0, data, len);
  *block_bit = (h1 % num_blocks_) * block_bits_;
  // The block index only needs h1, so the block fetch starts before the
  // second key pass — the h2 hash and the base mixing run inside the line
  // fetch latency.
  bits_.Prefetch(*block_bit);
  const uint64_t h2 = family_.Hash(1, data, len);
  *offset = h2 % (max_offset_span_ - 1) + 1;
  // Golden-ratio fold keeps the base stream decorrelated from the raw low
  // bits the block and offset consumed.
  *mix_state = h1 ^ (h2 * 0x9e3779b97f4a7c15ull);
}

uint64_t BlockedShbfM::OffsetOf(std::string_view key) const {
  return family_.Hash(1, key.data(), key.size()) % (max_offset_span_ - 1) + 1;
}

size_t BlockedShbfM::BlockBitOf(const void* data, size_t len) const {
  return (family_.Hash(0, data, len) % num_blocks_) * block_bits_;
}

void BlockedShbfM::Add(const void* data, size_t len) {
  const uint32_t pairs = num_hashes_ / 2;
  // base + offset <= block_bits − 1 must hold for the largest offset, so
  // bases are drawn from [0, block_bits − w̄].
  const uint64_t base_span = block_bits_ - max_offset_span_ + 1;
  size_t block_bit;
  uint64_t offset, state;
  Derive(data, len, &block_bit, &offset, &state);
  for (uint32_t i = 0; i < pairs; ++i) {
    const size_t base = block_bit + SplitMix64(state) % base_span;
    bits_.SetBit(base);
    bits_.SetBit(base + offset);
  }
  ++num_elements_;
}

bool BlockedShbfM::Contains(const void* data, size_t len) const {
  const uint32_t pairs = num_hashes_ / 2;
  const uint64_t base_span = block_bits_ - max_offset_span_ + 1;
  size_t block_bit;
  uint64_t offset, state;
  Derive(data, len, &block_bit, &offset, &state);
  const uint64_t need = 1ull | (1ull << offset);
  for (uint32_t i = 0; i < pairs; ++i) {
    const size_t base = block_bit + SplitMix64(state) % base_span;
    if ((bits_.LoadWindow(base) & need) != need) return false;
  }
  return true;
}

bool BlockedShbfM::ContainsWithStats(std::string_view key,
                                     QueryStats* stats) const {
  ++stats->queries;
  // Two key passes (h1, h2) derive block, offset AND every base; every
  // window lives in the one resident cache line, so the whole query is one
  // memory access under the paper's cost model.
  stats->hash_computations += 2;
  ++stats->memory_accesses;
  const uint32_t pairs = num_hashes_ / 2;
  const uint64_t base_span = block_bits_ - max_offset_span_ + 1;
  size_t block_bit;
  uint64_t offset, state;
  Derive(key.data(), key.size(), &block_bit, &offset, &state);
  const uint64_t need = 1ull | (1ull << offset);
  for (uint32_t i = 0; i < pairs; ++i) {
    const size_t base = block_bit + SplitMix64(state) % base_span;
    if ((bits_.LoadWindow(base) & need) != need) return false;
  }
  return true;
}

void BlockedShbfM::PrepareProbe(std::string_view key, Probe* probe) const {
  const uint32_t pairs = num_hashes_ / 2;
  SHBF_DCHECK(pairs <= kMaxBatchPairs);
  const uint64_t base_span = block_bits_ - max_offset_span_ + 1;
  size_t block_bit;
  uint64_t offset, state;
  Derive(key.data(), key.size(), &block_bit, &offset, &state);
  probe->need = 1ull | (1ull << offset);
  for (uint32_t i = 0; i < pairs; ++i) {
    probe->bases[i] = block_bit + SplitMix64(state) % base_span;
  }
}

void BlockedShbfM::PrefetchProbe(const Probe& probe) const {
  // Every base lives in the same block: one line hint covers them all.
  bits_.Prefetch(probe.bases[0]);
}

bool BlockedShbfM::ResolveProbe(const Probe& probe) const {
  const uint32_t pairs = num_hashes_ / 2;
  for (uint32_t i = 0; i < pairs; ++i) {
    if ((bits_.LoadWindow(probe.bases[i]) & probe.need) != probe.need) {
      return false;
    }
  }
  return true;
}

void BlockedShbfM::ContainsBatch(const std::vector<std::string>& keys,
                                 std::vector<uint8_t>* results) const {
  results->resize(keys.size());
  if (keys.empty()) return;
  constexpr size_t kGroup = 16;
  SHBF_CHECK(num_hashes_ / 2 <= kMaxBatchPairs)
      << "batch path supports k <= 64";
  Probe probes[kGroup];
  for (size_t start = 0; start < keys.size(); start += kGroup) {
    const size_t group = std::min(kGroup, keys.size() - start);
    for (size_t g = 0; g < group; ++g) {
      // Derive prefetched the block between its two hash passes; a second
      // prefetch of the same line would just occupy a prefetch slot.
      PrepareProbe(keys[start + g], &probes[g]);
    }
    for (size_t g = 0; g < group; ++g) {
      (*results)[start + g] = ResolveProbe(probes[g]) ? 1 : 0;
    }
  }
}

void BlockedShbfM::Clear() {
  bits_.Clear();
  num_elements_ = 0;
}

Status BlockedShbfM::MergeFrom(const BlockedShbfM& other) {
  if (family_.algorithm() != other.family_.algorithm() ||
      family_.master_seed() != other.family_.master_seed() ||
      num_hashes_ != other.num_hashes_ ||
      max_offset_span_ != other.max_offset_span_ ||
      block_bits_ != other.block_bits_) {
    return Status::FailedPrecondition(
        "BlockedShbfM::MergeFrom: hash families differ");
  }
  if (!bits_.OrWith(other.bits_)) {
    return Status::FailedPrecondition(
        "BlockedShbfM::MergeFrom: geometry differs");
  }
  num_elements_ += other.num_elements_;
  return Status::Ok();
}

std::string BlockedShbfM::ToBytes() const {
  ByteWriter writer;
  serde::WriteHeader(&writer, serde::StructureTag::kBlockedShbfM);
  writer.PutU64(bits_.num_bits());
  writer.PutU32(num_hashes_);
  writer.PutU32(max_offset_span_);
  writer.PutU32(block_bits_);
  writer.PutU8(static_cast<uint8_t>(family_.algorithm()));
  writer.PutU64(family_.master_seed());
  writer.PutU64(num_elements_);
  bits_.AppendPayload(&writer);
  return writer.Take();
}

Status BlockedShbfM::FromBytes(std::string_view bytes,
                               std::optional<BlockedShbfM>* out) {
  ByteReader reader(bytes);
  Status header = serde::ReadHeader(&reader, serde::StructureTag::kBlockedShbfM);
  if (!header.ok()) return header;
  uint64_t num_bits = 0;
  uint32_t num_hashes = 0;
  uint32_t max_offset_span = 0;
  uint32_t block_bits = 0;
  uint8_t alg = 0;
  uint64_t seed = 0;
  uint64_t num_elements = 0;
  if (!reader.GetU64(&num_bits) || !reader.GetU32(&num_hashes) ||
      !reader.GetU32(&max_offset_span) || !reader.GetU32(&block_bits) ||
      !reader.GetU8(&alg) || !reader.GetU64(&seed) ||
      !reader.GetU64(&num_elements)) {
    return Status::InvalidArgument("BlockedShbfM: truncated parameter block");
  }
  if (alg > 3) return Status::InvalidArgument("BlockedShbfM: unknown hash id");
  Params params{.num_bits = num_bits,
                .num_hashes = num_hashes,
                .block_bits = block_bits,
                .max_offset_span = max_offset_span,
                .hash_algorithm = static_cast<HashAlgorithm>(alg),
                .seed = seed};
  Status valid = params.Validate();
  if (!valid.ok()) return valid;
  if (num_bits % block_bits != 0) {
    return Status::InvalidArgument("BlockedShbfM: num_bits not block-aligned");
  }
  out->emplace(params);
  (*out)->num_elements_ = num_elements;
  if (!(*out)->bits_.ReadPayload(&reader) || !reader.AtEnd()) {
    out->reset();
    return Status::InvalidArgument("BlockedShbfM: payload size mismatch");
  }
  return Status::Ok();
}

}  // namespace shbf
