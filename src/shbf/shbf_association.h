// ShBF_A — the Shifting Bloom Filter for association queries (paper §4).
//
// Given two (possibly overlapping) sets S1 and S2, a single m-bit array
// encodes which side(s) each element of S1 ∪ S2 belongs to, in the offset:
//     e ∈ S1 − S2 : o(e) = 0
//     e ∈ S1 ∩ S2 : o(e) = o1(e) = h_{k+1}(e) % ((w̄−1)/2) + 1   ∈ [1, 28]
//     e ∈ S2 − S1 : o(e) = o2(e) = o1(e) + h_{k+2}(e) % ((w̄−1)/2) + 1
// and the k bits B[h_i(e)%m + o(e)] are set. A query reads, per i, the three
// bits at offsets {0, o1, o2} — all inside one w̄-bit window, i.e. ONE memory
// access per i (k total, vs 2k for iBF), with k + 2 hash computations (vs 2k).
//
// The three AND-flags across i yield the paper's seven outcomes; outcomes
// 1–3 ("clear answers") are never wrong — unlike iBF, a declared
// intersection cannot be a false positive. Probability of a clear answer at
// optimal load is (1 − 0.5^k)², vs iBF's (2/3)(1 − 0.5^k) (Table 2).
//
// CountingShbfA extends this with inserts/deletes, handling the offset
// transitions an element undergoes as it moves between S1−S2, S1∩S2, S2−S1.

#ifndef SHBF_SHBF_SHBF_ASSOCIATION_H_
#define SHBF_SHBF_SHBF_ASSOCIATION_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/bit_array.h"
#include "core/serde.h"
#include "core/bits.h"
#include "core/chained_hash_table.h"
#include "core/packed_counter_array.h"
#include "core/query_stats.h"
#include "core/set_query_types.h"
#include "core/status.h"
#include "hash/hash_family.h"

namespace shbf {

/// Parameters shared by ShbfA and CountingShbfA.
struct ShbfAParams {
  size_t num_bits = 0;      ///< m
  uint32_t num_hashes = 0;  ///< k
  /// w̄; offsets o1 ∈ [1, (w̄−1)/2], o2 ∈ [2, w̄−1]. Default 57 ⇒ one-access
  /// triples on 64-bit machines. Must be odd so (w̄−1)/2 is exact.
  uint32_t max_offset_span = kDefaultMaxOffsetSpan;
  HashAlgorithm hash_algorithm = HashAlgorithm::kMurmur3;
  uint64_t seed = 0x5eed5eed5eed5eedull;

  Status Validate() const;

  /// Table 2 sizing: m = (n1 + n2 − n3)·k / ln 2 where n3 = |S1 ∩ S2|.
  static ShbfAParams Optimal(size_t n1, size_t n2, size_t n_intersection,
                             uint32_t num_hashes);
};

class ShbfA {
 public:
  explicit ShbfA(const ShbfAParams& params);

  /// Bulk construction per §4.1: builds hash tables over s1/s2 internally to
  /// classify each element into the three cases, then writes the bit array.
  /// Duplicate keys within a set are ignored (sets, not multisets).
  void Build(const std::vector<std::string>& s1,
             const std::vector<std::string>& s2);

  /// Association query for `key`; intended for keys in S1 ∪ S2 (§4.2), but
  /// returns kNotFound if no pattern matches (definitely outside the union).
  AssociationOutcome Query(std::string_view key) const;
  AssociationOutcome QueryWithStats(std::string_view key,
                                    QueryStats* stats) const;

  struct Offsets {
    uint64_t o1;
    uint64_t o2;
  };
  /// The candidate offsets of `key` (test hook).
  Offsets OffsetsOf(std::string_view key) const;

  /// Largest k the probe/batch paths support.
  static constexpr uint32_t kMaxBatchHashes = 64;

  /// Precomputed query state for one key (hashes only, no filter memory
  /// touched); see ShbfM::Probe for the two-pass batch protocol.
  struct Probe {
    uint64_t bit_s1;                ///< 1: the S1-only offset pattern
    uint64_t bit_both;              ///< 1 << o1(e)
    uint64_t bit_s2;                ///< 1 << o2(e)
    size_t bases[kMaxBatchHashes];  ///< h_i(e) % m for i < num_hashes()
  };

  /// Computes `key`'s k base positions and three candidate bit patterns.
  /// Requires num_hashes() <= 64.
  void PrepareProbe(std::string_view key, Probe* probe) const;

  /// Hints the cache to fetch every window `probe` will load.
  void PrefetchProbe(const Probe& probe) const;

  /// Resolves a prepared probe; identical answer to Query(key).
  AssociationOutcome ResolveProbe(const Probe& probe) const;

  size_t num_bits() const { return bits_.num_bits(); }
  uint32_t num_hashes() const { return num_hashes_; }
  const BitArray& bits() const { return bits_; }
  void Clear() { bits_.Clear(); }

  /// Serializes parameters + bit payload to a versioned byte blob.
  std::string ToBytes() const;

  /// Reconstructs a filter that answers identically to the serialized one.
  static Status FromBytes(std::string_view bytes, std::optional<ShbfA>* out);

 private:
  friend class CountingShbfA;

  /// Sets the k bits of `key` shifted by `offset`.
  void AddWithOffset(std::string_view key, uint64_t offset);

  /// Decodes the three AND-flags into the seven outcomes (§4.2).
  static AssociationOutcome Decode(bool s1_only, bool both, bool s2_only);

  HashFamily family_;  // k base functions + 2 offset functions
  uint32_t num_hashes_;
  uint32_t max_offset_span_;
  uint32_t half_span_;  // (w̄ − 1) / 2
  BitArray bits_;
};

class CountingShbfA {
 public:
  struct Params {
    ShbfAParams filter;
    uint32_t counter_bits = 4;

    Status Validate() const;
  };

  explicit CountingShbfA(const Params& params);

  /// Adds `key` to S1/S2, migrating its stored offset when it changes case
  /// (e.g. S2-only → intersection). Set semantics: re-inserting is a no-op.
  void InsertS1(std::string_view key);
  void InsertS2(std::string_view key);

  /// Removes `key` from S1/S2, again migrating cases; returns false if the
  /// key is not in that set.
  bool DeleteS1(std::string_view key);
  bool DeleteS2(std::string_view key);

  /// Query against the bit array (same cost profile as ShbfA::Query).
  AssociationOutcome Query(std::string_view key) const {
    return filter_.Query(key);
  }
  AssociationOutcome QueryWithStats(std::string_view key,
                                    QueryStats* stats) const {
    return filter_.QueryWithStats(key, stats);
  }

  /// Exact membership from the internal tables (the paper's T1/T2).
  bool InS1(std::string_view key) const { return t1_.Contains(key); }
  bool InS2(std::string_view key) const { return t2_.Contains(key); }
  size_t size_s1() const { return t1_.size(); }
  size_t size_s2() const { return t2_.size(); }

  /// Enumerates the exact side tables (serde/replication hook): the state of
  /// this structure is a deterministic function of (params, S1, S2).
  void ForEachS1(const std::function<void(std::string_view)>& fn) const {
    t1_.ForEach([&fn](std::string_view key, uint64_t) { fn(key); });
  }
  void ForEachS2(const std::function<void(std::string_view)>& fn) const {
    t2_.ForEach([&fn](std::string_view key, uint64_t) { fn(key); });
  }

  /// True iff the bit array equals the projection of the counters (test hook).
  bool SynchronizedWithCounters() const;

  /// Clears to the empty structure (bits, counters and side tables).
  void Clear() {
    filter_.Clear();
    counters_.Clear();
    t1_.Clear();
    t2_.Clear();
  }

 private:
  /// Offset under which `key` is currently stored, derived from (inS1, inS2).
  uint64_t CurrentOffset(bool in_s1, bool in_s2, std::string_view key) const;

  void AddCells(std::string_view key, uint64_t offset);
  void RemoveCells(std::string_view key, uint64_t offset);

  ShbfA filter_;
  PackedCounterArray counters_;
  ChainedHashTable t1_;
  ChainedHashTable t2_;
};

}  // namespace shbf

#endif  // SHBF_SHBF_SHBF_ASSOCIATION_H_
