// Blocked ShBF_M — the shifting Bloom filter with cache-line-confined pairs.
//
// Plain ShBF_M (shbf_membership.h) already packs each (base, base+offset)
// pair into ONE unaligned word load, but its k/2 pairs still scatter across
// the whole m-bit array: a query touches up to k/2 distinct cache lines.
// The blocked variant adds the Putze-style blocking idea on top of the
// paper's word-pair trick: an extra hash confines ALL of a key's pairs to
// one `block_bits` block (default 512 bits = one 64-byte line, aligned by
// BitArray). Bases are drawn from [0, block_bits − w̄] so base + offset
// never leaves the block — a query is one cache-line fetch regardless of k,
// and the engine's SIMD resolve tests four pair windows (8 probed bits) per
// AVX2 op across a batch group.
//
// FPR: keys sharing a block collide more than in plain ShBF_M (same
// blocked-Bloom tradeoff); the acceptance gate bounds the penalty at 2x at
// equal bits/key.

#ifndef SHBF_SHBF_BLOCKED_SHBF_MEMBERSHIP_H_
#define SHBF_SHBF_BLOCKED_SHBF_MEMBERSHIP_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/bit_array.h"
#include "core/bits.h"
#include "core/query_stats.h"
#include "core/serde.h"
#include "core/status.h"
#include "hash/hash_family.h"

namespace shbf {

class BlockedShbfM {
 public:
  /// block_bits bounds: the base range [0, block_bits − w̄] must be
  /// non-degenerate (block_bits = 64 would leave 8 base positions with the
  /// default span, collapsing the FPR), so at least two words; at most one
  /// cache line — the whole point of blocking.
  static constexpr uint32_t kMinBlockBits = 128;
  static constexpr uint32_t kMaxBlockBits = 512;

  struct Params {
    size_t num_bits = 0;       ///< m; rounded up to a multiple of block_bits
    uint32_t num_hashes = 0;   ///< k; must be even (k/2 pairs), >= 2
    uint32_t block_bits = 512; ///< power-of-two multiple of 64 in [128, 512]
    /// w̄: offsets lie in [1, max_offset_span − 1]; see ShbfM::Params.
    uint32_t max_offset_span = kDefaultMaxOffsetSpan;
    HashAlgorithm hash_algorithm = HashAlgorithm::kMurmur3;
    uint64_t seed = 0x5eed5eed5eed5eedull;

    Status Validate() const;
  };

  explicit BlockedShbfM(const Params& params);

  /// Inserts `key`: two hash passes over the key bytes (block, offset and
  /// all k/2 bases derive from them), k bits set — all inside one block.
  void Add(std::string_view key) { Add(key.data(), key.size()); }
  void Add(const void* data, size_t len);

  /// Membership query; no false negatives. One cache line touched.
  bool Contains(std::string_view key) const {
    return Contains(key.data(), key.size());
  }
  bool Contains(const void* data, size_t len) const;

  /// Query under the paper's cost model: every pair window lives in the one
  /// resident block, so the whole query is one memory access.
  bool ContainsWithStats(std::string_view key, QueryStats* stats) const;

  /// Batched membership query (two-pass prepare/prefetch/resolve groups).
  void ContainsBatch(const std::vector<std::string>& keys,
                     std::vector<uint8_t>* results) const;

  /// Largest k/2 the probe/batch paths support (k <= 64).
  static constexpr uint32_t kMaxBatchPairs = 32;

  /// Precomputed query state, same shape as ShbfM::Probe: the shared pair
  /// pattern plus k/2 absolute base positions (all within one block, so
  /// PrefetchProbe issues a single line hint).
  struct Probe {
    uint64_t need;                 ///< bit 0 | bit o(e): the pair pattern
    size_t bases[kMaxBatchPairs];  ///< absolute bit positions, one block
  };

  /// Computes `key`'s block, bases and pair pattern (hashes only).
  void PrepareProbe(std::string_view key, Probe* probe) const;

  /// Hints the cache to fetch the (single) block `probe` reads.
  void PrefetchProbe(const Probe& probe) const;

  /// Resolves a prepared probe; identical answer to Contains(key).
  bool ResolveProbe(const Probe& probe) const;

  /// The offset o(key) ∈ [1, max_offset_span − 1]; exposed for tests.
  uint64_t OffsetOf(std::string_view key) const;

  size_t num_bits() const { return bits_.num_bits(); }
  uint32_t num_hashes() const { return num_hashes_; }
  uint32_t num_pairs() const { return num_hashes_ / 2; }
  uint32_t max_offset_span() const { return max_offset_span_; }
  uint32_t block_bits() const { return block_bits_; }
  size_t num_blocks() const { return num_blocks_; }
  size_t num_elements() const { return num_elements_; }
  const BitArray& bits() const { return bits_; }

  void Clear();

  /// Set-union via bitwise OR; both filters must share geometry, hash
  /// family, seed, offset span and block size.
  Status MergeFrom(const BlockedShbfM& other);

  /// Serializes parameters + bit payload to a versioned byte blob.
  std::string ToBytes() const;

  /// Reconstructs a filter that answers identically to the serialized one.
  static Status FromBytes(std::string_view bytes,
                          std::optional<BlockedShbfM>* out);

 private:
  /// First bit of `key`'s block (h1 selects the block).
  size_t BlockBitOf(const void* data, size_t len) const;

  /// Runs the two key passes and hands back the block's first bit, the
  /// pair offset, and the seeded SplitMix64 state the bases stream from.
  void Derive(const void* data, size_t len, size_t* block_bit,
              uint64_t* offset, uint64_t* mix_state) const;

  HashFamily family_;  // two functions; bases derive via SplitMix64
  uint32_t num_hashes_;
  uint32_t max_offset_span_;
  uint32_t block_bits_;
  size_t num_blocks_;
  BitArray bits_;
  size_t num_elements_ = 0;
};

}  // namespace shbf

#endif  // SHBF_SHBF_BLOCKED_SHBF_MEMBERSHIP_H_
