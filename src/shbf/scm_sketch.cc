#include "shbf/scm_sketch.h"

#include <algorithm>

namespace shbf {

Status ScmSketch::Params::Validate() const {
  if (depth < 2 || depth % 2 != 0) {
    return Status::InvalidArgument("ScmSketch: depth must be even and >= 2");
  }
  if (width == 0) {
    return Status::InvalidArgument("ScmSketch: width must be positive");
  }
  if (counter_bits < 1 || counter_bits > 28) {
    return Status::InvalidArgument("ScmSketch: counter_bits must be in [1,28]");
  }
  if (OffsetSpan() < 2) {
    return Status::InvalidArgument(
        "ScmSketch: counters too wide for one-access pairs; "
        "(w - 7) / counter_bits must be >= 2 (§5.5)");
  }
  return Status::Ok();
}

ScmSketch::ScmSketch(const Params& params)
    : family_(params.hash_algorithm, params.depth / 2 + 1, params.seed),
      rows_(params.depth / 2),
      row_width_(2 * params.width),
      row_stride_(2 * params.width + params.OffsetSpan()),
      offset_span_(params.OffsetSpan()),
      counters_(static_cast<size_t>(params.depth / 2) *
                    (2 * params.width + params.OffsetSpan()),
                params.counter_bits) {
  CheckOk(params.Validate());
}

uint64_t ScmSketch::OffsetOf(std::string_view key) const {
  return family_.Hash(rows_, key) % (offset_span_ - 1) + 1;
}

void ScmSketch::Insert(std::string_view key) {
  uint64_t offset = OffsetOf(key);
  for (uint32_t row = 0; row < rows_; ++row) {
    size_t col = family_.Hash(row, key) % row_width_;
    size_t cell = row * row_stride_ + col;
    counters_.Increment(cell);
    counters_.Increment(cell + offset);
  }
}

uint64_t ScmSketch::QueryCount(std::string_view key) const {
  uint64_t offset = OffsetOf(key);
  if (2 * rows_ > 64) {
    // Past the gather buffer: the plain early-exit loop.
    uint64_t min_value = ~0ull;
    for (uint32_t row = 0; row < rows_; ++row) {
      size_t col = family_.Hash(row, key) % row_width_;
      size_t cell = row * row_stride_ + col;
      min_value = std::min({min_value, counters_.Get(cell),
                            counters_.Get(cell + offset)});
      if (min_value == 0) return 0;
    }
    return min_value;
  }
  // Gather both counters of every pair, extract them in one SIMD pass,
  // then take the min — same answer as the per-row loop.
  size_t cells[64];
  uint64_t values[64];
  for (uint32_t row = 0; row < rows_; ++row) {
    size_t col = family_.Hash(row, key) % row_width_;
    size_t cell = row * row_stride_ + col;
    cells[2 * row] = cell;
    cells[2 * row + 1] = cell + offset;
  }
  counters_.GetMany(cells, 2 * rows_, values);
  uint64_t min_value = values[0];
  for (uint32_t i = 1; i < 2 * rows_; ++i) {
    min_value = std::min(min_value, values[i]);
  }
  return min_value;
}

uint64_t ScmSketch::QueryCountWithStats(std::string_view key,
                                        QueryStats* stats) const {
  ++stats->queries;
  ++stats->hash_computations;  // the offset function
  uint64_t offset = OffsetOf(key);
  uint64_t min_value = ~0ull;
  for (uint32_t row = 0; row < rows_; ++row) {
    ++stats->hash_computations;
    ++stats->memory_accesses;  // the pair shares one word window (§5.5)
    size_t col = family_.Hash(row, key) % row_width_;
    size_t cell = row * row_stride_ + col;
    min_value = std::min({min_value, counters_.Get(cell),
                          counters_.Get(cell + offset)});
    if (min_value == 0) return 0;
  }
  return min_value;
}

std::string ScmSketch::ToBytes() const {
  ByteWriter writer;
  serde::WriteHeader(&writer, serde::StructureTag::kScmSketch);
  writer.PutU32(rows_ * 2);           // d of the equivalent CM sketch
  writer.PutU64(row_width_ / 2);      // r of the equivalent CM sketch
  writer.PutU32(counters_.bits_per_counter());
  writer.PutU8(static_cast<uint8_t>(family_.algorithm()));
  writer.PutU64(family_.master_seed());
  counters_.AppendPayload(&writer);
  return writer.Take();
}

Status ScmSketch::FromBytes(std::string_view bytes,
                            std::optional<ScmSketch>* out) {
  ByteReader reader(bytes);
  Status header = serde::ReadHeader(&reader, serde::StructureTag::kScmSketch);
  if (!header.ok()) return header;
  uint32_t depth = 0;
  uint64_t width = 0;
  uint32_t counter_bits = 0;
  uint8_t alg = 0;
  uint64_t seed = 0;
  if (!reader.GetU32(&depth) || !reader.GetU64(&width) ||
      !reader.GetU32(&counter_bits) || !reader.GetU8(&alg) ||
      !reader.GetU64(&seed)) {
    return Status::InvalidArgument("ScmSketch: truncated parameter block");
  }
  if (alg > 3) return Status::InvalidArgument("ScmSketch: unknown hash id");
  Params params{.depth = depth,
                .width = width,
                .counter_bits = counter_bits,
                .hash_algorithm = static_cast<HashAlgorithm>(alg),
                .seed = seed};
  Status valid = params.Validate();
  if (!valid.ok()) return valid;
  out->emplace(params);
  if (!(*out)->counters_.ReadPayload(&reader) || !reader.AtEnd()) {
    out->reset();
    return Status::InvalidArgument("ScmSketch: payload size mismatch");
  }
  return Status::Ok();
}

}  // namespace shbf
