#include "shbf/generalized_shbf.h"

namespace shbf {

Status GeneralizedShbfM::Params::Validate() const {
  if (num_bits == 0) {
    return Status::InvalidArgument("GeneralizedShbfM: num_bits must be > 0");
  }
  if (num_shifts < 1) {
    return Status::InvalidArgument("GeneralizedShbfM: num_shifts must be >= 1");
  }
  if (num_hashes == 0 || num_hashes % (num_shifts + 1) != 0) {
    return Status::InvalidArgument(
        "GeneralizedShbfM: num_hashes must be a positive multiple of t + 1");
  }
  if (max_offset_span < 2 || max_offset_span > BitArray::kWindowBits) {
    return Status::InvalidArgument(
        "GeneralizedShbfM: max_offset_span must be in [2, 57]");
  }
  if ((max_offset_span - 1) % num_shifts != 0) {
    return Status::InvalidArgument(
        "GeneralizedShbfM: (max_offset_span - 1) must be divisible by t for "
        "equal partitions");
  }
  if ((max_offset_span - 1) / num_shifts < 1) {
    return Status::InvalidArgument(
        "GeneralizedShbfM: partitions would be empty");
  }
  return Status::Ok();
}

GeneralizedShbfM::GeneralizedShbfM(const Params& params)
    : family_(params.hash_algorithm,
              params.num_hashes / (params.num_shifts + 1) + params.num_shifts,
              params.seed),
      num_hashes_(params.num_hashes),
      num_shifts_(params.num_shifts),
      max_offset_span_(params.max_offset_span),
      partition_width_((params.max_offset_span - 1) / params.num_shifts),
      bits_(params.num_bits, /*slack_bits=*/params.max_offset_span) {
  CheckOk(params.Validate());
}

std::vector<uint64_t> GeneralizedShbfM::OffsetsOf(std::string_view key) const {
  const uint32_t groups = num_groups();
  std::vector<uint64_t> offsets(num_shifts_);
  for (uint32_t j = 0; j < num_shifts_; ++j) {
    uint64_t within = family_.Hash(groups + j, key) % partition_width_ + 1;
    offsets[j] = static_cast<uint64_t>(j) * partition_width_ + within;
  }
  return offsets;
}

uint64_t GeneralizedShbfM::NeedMask(std::string_view key) const {
  const uint32_t groups = num_groups();
  uint64_t mask = 1ull;  // the base bit
  for (uint32_t j = 0; j < num_shifts_; ++j) {
    uint64_t within = family_.Hash(groups + j, key) % partition_width_ + 1;
    mask |= 1ull << (static_cast<uint64_t>(j) * partition_width_ + within);
  }
  return mask;
}

void GeneralizedShbfM::Add(std::string_view key) {
  const size_t m = bits_.num_bits();
  const uint32_t groups = num_groups();
  uint64_t mask = NeedMask(key);
  for (uint32_t i = 0; i < groups; ++i) {
    size_t base = family_.Hash(i, key) % m;
    uint64_t remaining = mask;
    while (remaining != 0) {
      uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(remaining));
      bits_.SetBit(base + bit);
      remaining &= remaining - 1;
    }
  }
}

bool GeneralizedShbfM::Contains(std::string_view key) const {
  const size_t m = bits_.num_bits();
  const uint32_t groups = num_groups();
  uint64_t mask = NeedMask(key);
  for (uint32_t i = 0; i < groups; ++i) {
    size_t base = family_.Hash(i, key) % m;
    if ((bits_.LoadWindow(base) & mask) != mask) return false;
  }
  return true;
}

bool GeneralizedShbfM::ContainsWithStats(std::string_view key,
                                         QueryStats* stats) const {
  const size_t m = bits_.num_bits();
  const uint32_t groups = num_groups();
  ++stats->queries;
  stats->hash_computations += num_shifts_;  // the offset functions
  uint64_t mask = NeedMask(key);
  for (uint32_t i = 0; i < groups; ++i) {
    ++stats->hash_computations;
    ++stats->memory_accesses;
    size_t base = family_.Hash(i, key) % m;
    if ((bits_.LoadWindow(base) & mask) != mask) return false;
  }
  return true;
}

}  // namespace shbf
