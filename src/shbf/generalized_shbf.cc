#include "shbf/generalized_shbf.h"

namespace shbf {

Status GeneralizedShbfM::Params::Validate() const {
  if (num_bits == 0) {
    return Status::InvalidArgument("GeneralizedShbfM: num_bits must be > 0");
  }
  if (num_shifts < 1) {
    return Status::InvalidArgument("GeneralizedShbfM: num_shifts must be >= 1");
  }
  if (num_hashes == 0 || num_hashes % (num_shifts + 1) != 0) {
    return Status::InvalidArgument(
        "GeneralizedShbfM: num_hashes must be a positive multiple of t + 1");
  }
  if (max_offset_span < 2 || max_offset_span > BitArray::kWindowBits) {
    return Status::InvalidArgument(
        "GeneralizedShbfM: max_offset_span must be in [2, 57]");
  }
  if ((max_offset_span - 1) % num_shifts != 0) {
    return Status::InvalidArgument(
        "GeneralizedShbfM: (max_offset_span - 1) must be divisible by t for "
        "equal partitions");
  }
  if ((max_offset_span - 1) / num_shifts < 1) {
    return Status::InvalidArgument(
        "GeneralizedShbfM: partitions would be empty");
  }
  return Status::Ok();
}

GeneralizedShbfM::GeneralizedShbfM(const Params& params)
    : family_(params.hash_algorithm,
              params.num_hashes / (params.num_shifts + 1) + params.num_shifts,
              params.seed),
      num_hashes_(params.num_hashes),
      num_shifts_(params.num_shifts),
      max_offset_span_(params.max_offset_span),
      partition_width_((params.max_offset_span - 1) / params.num_shifts),
      bits_(params.num_bits, /*slack_bits=*/params.max_offset_span) {
  CheckOk(params.Validate());
}

std::vector<uint64_t> GeneralizedShbfM::OffsetsOf(std::string_view key) const {
  const uint32_t groups = num_groups();
  std::vector<uint64_t> offsets(num_shifts_);
  for (uint32_t j = 0; j < num_shifts_; ++j) {
    uint64_t within = family_.Hash(groups + j, key) % partition_width_ + 1;
    offsets[j] = static_cast<uint64_t>(j) * partition_width_ + within;
  }
  return offsets;
}

uint64_t GeneralizedShbfM::NeedMask(std::string_view key) const {
  const uint32_t groups = num_groups();
  uint64_t mask = 1ull;  // the base bit
  for (uint32_t j = 0; j < num_shifts_; ++j) {
    uint64_t within = family_.Hash(groups + j, key) % partition_width_ + 1;
    mask |= 1ull << (static_cast<uint64_t>(j) * partition_width_ + within);
  }
  return mask;
}

void GeneralizedShbfM::Add(std::string_view key) {
  const size_t m = bits_.num_bits();
  const uint32_t groups = num_groups();
  uint64_t mask = NeedMask(key);
  for (uint32_t i = 0; i < groups; ++i) {
    size_t base = family_.Hash(i, key) % m;
    uint64_t remaining = mask;
    while (remaining != 0) {
      uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(remaining));
      bits_.SetBit(base + bit);
      remaining &= remaining - 1;
    }
  }
}

bool GeneralizedShbfM::Contains(std::string_view key) const {
  const size_t m = bits_.num_bits();
  const uint32_t groups = num_groups();
  uint64_t mask = NeedMask(key);
  for (uint32_t i = 0; i < groups; ++i) {
    size_t base = family_.Hash(i, key) % m;
    if ((bits_.LoadWindow(base) & mask) != mask) return false;
  }
  return true;
}

bool GeneralizedShbfM::ContainsWithStats(std::string_view key,
                                         QueryStats* stats) const {
  const size_t m = bits_.num_bits();
  const uint32_t groups = num_groups();
  ++stats->queries;
  stats->hash_computations += num_shifts_;  // the offset functions
  uint64_t mask = NeedMask(key);
  for (uint32_t i = 0; i < groups; ++i) {
    ++stats->hash_computations;
    ++stats->memory_accesses;
    size_t base = family_.Hash(i, key) % m;
    if ((bits_.LoadWindow(base) & mask) != mask) return false;
  }
  return true;
}

std::string GeneralizedShbfM::ToBytes() const {
  ByteWriter writer;
  serde::WriteHeader(&writer, serde::StructureTag::kGeneralizedShbfM);
  writer.PutU64(bits_.num_bits());
  writer.PutU32(num_hashes_);
  writer.PutU32(num_shifts_);
  writer.PutU32(max_offset_span_);
  writer.PutU8(static_cast<uint8_t>(family_.algorithm()));
  writer.PutU64(family_.master_seed());
  bits_.AppendPayload(&writer);
  return writer.Take();
}

Status GeneralizedShbfM::FromBytes(std::string_view bytes,
                                   std::optional<GeneralizedShbfM>* out) {
  ByteReader reader(bytes);
  Status header =
      serde::ReadHeader(&reader, serde::StructureTag::kGeneralizedShbfM);
  if (!header.ok()) return header;
  uint64_t num_bits = 0;
  uint32_t num_hashes = 0;
  uint32_t num_shifts = 0;
  uint32_t max_offset_span = 0;
  uint8_t alg = 0;
  uint64_t seed = 0;
  if (!reader.GetU64(&num_bits) || !reader.GetU32(&num_hashes) ||
      !reader.GetU32(&num_shifts) || !reader.GetU32(&max_offset_span) ||
      !reader.GetU8(&alg) || !reader.GetU64(&seed)) {
    return Status::InvalidArgument(
        "GeneralizedShbfM: truncated parameter block");
  }
  if (alg > 3) {
    return Status::InvalidArgument("GeneralizedShbfM: unknown hash id");
  }
  Params params{.num_bits = num_bits,
                .num_hashes = num_hashes,
                .num_shifts = num_shifts,
                .max_offset_span = max_offset_span,
                .hash_algorithm = static_cast<HashAlgorithm>(alg),
                .seed = seed};
  Status valid = params.Validate();
  if (!valid.ok()) return valid;
  out->emplace(params);
  if (!(*out)->bits_.ReadPayload(&reader) || !reader.AtEnd()) {
    out->reset();
    return Status::InvalidArgument("GeneralizedShbfM: payload size mismatch");
  }
  return Status::Ok();
}

}  // namespace shbf
