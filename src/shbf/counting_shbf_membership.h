// CShBF_M — counting twin of ShBF_M (paper §3.3).
//
// Mirrors the paper's two-tier architecture: a bit array B ("SRAM") answers
// queries at ShBF_M speed, while a counter array C ("DRAM") absorbs inserts
// and deletes. The two are kept in sync on every 0↔1 counter transition, so
// B is always exactly the bitwise projection of C.

#ifndef SHBF_SHBF_COUNTING_SHBF_MEMBERSHIP_H_
#define SHBF_SHBF_COUNTING_SHBF_MEMBERSHIP_H_

#include <optional>
#include <string>
#include <string_view>

#include "core/bit_array.h"
#include "core/bits.h"
#include "core/packed_counter_array.h"
#include "core/query_stats.h"
#include "core/serde.h"
#include "core/status.h"
#include "hash/hash_family.h"

namespace shbf {

class CountingShbfM {
 public:
  struct Params {
    size_t num_bits = 0;       ///< m (counters and bits share this geometry)
    uint32_t num_hashes = 0;   ///< k; even, >= 2
    uint32_t counter_bits = 4; ///< §3.3: 4 bits per counter suffice
    uint32_t max_offset_span = kDefaultMaxOffsetSpan;
    HashAlgorithm hash_algorithm = HashAlgorithm::kMurmur3;
    uint64_t seed = 0x5eed5eed5eed5eedull;

    Status Validate() const;
  };

  /// §3.3's update-side window constraint: with z-bit counters, choosing
  /// w̄ <= (w − 7)/z makes both pair COUNTERS land in one unaligned word
  /// load, so an update also costs k/2 memory accesses. The default span
  /// (57) optimizes the query side instead; pass this value as
  /// max_offset_span to optimize the update side. Returns floor(57/z),
  /// at least 2 (z <= 28).
  static uint32_t OneAccessUpdateOffsetSpan(uint32_t counter_bits) {
    uint32_t span = (kWordBits - 7) / counter_bits;
    return span < 2 ? 2 : span;
  }

  explicit CountingShbfM(const Params& params);

  /// Increments the k pair counters; sets the mirrored bits on 0→1.
  void Insert(std::string_view key);

  /// Decrements the k pair counters; clears the mirrored bits on 1→0.
  /// Deleting a never-inserted key is a caller bug (CHECK on underflow).
  void Delete(std::string_view key);

  /// Queries the bit array B — identical cost profile to ShbfM::Contains.
  bool Contains(std::string_view key) const;
  bool ContainsWithStats(std::string_view key, QueryStats* stats) const;

  size_t num_bits() const { return bits_.num_bits(); }
  uint32_t num_hashes() const { return num_hashes_; }
  const BitArray& bits() const { return bits_; }
  const PackedCounterArray& counters() const { return counters_; }

  /// True iff B equals the bitwise projection of C (test hook).
  bool SynchronizedWithCounters() const;

  /// Clears to the empty filter (bits and counters).
  void Clear() {
    bits_.Clear();
    counters_.Clear();
  }

  /// Serializes parameters + bit and counter payloads to a byte blob.
  std::string ToBytes() const;

  /// Reconstructs a filter that answers identically to the serialized one.
  static Status FromBytes(std::string_view bytes,
                          std::optional<CountingShbfM>* out);

 private:
  uint64_t OffsetOf(std::string_view key) const;

  HashFamily family_;
  uint32_t num_hashes_;
  uint32_t max_offset_span_;
  BitArray bits_;
  PackedCounterArray counters_;
};

}  // namespace shbf

#endif  // SHBF_SHBF_COUNTING_SHBF_MEMBERSHIP_H_
