// Generalized ShBF_M with t shifting operations (paper §3.6–3.7).
//
// ShBF_M is the t = 1 case of a family: use k/(t+1) independent base hashes
// and t offset functions o_1(e), ..., o_t(e), and for every base position set
// the t + 1 bits {h_i, h_i + o_1, ..., h_i + o_t}. Following the paper's
// partitioned analysis, offset o_j is confined to the j-th slice of the
// window: o_j ∈ ((j−1)·(w̄−1)/t, j·(w̄−1)/t], so the t shifted bits land in
// disjoint ranges. Hash computations drop to k/(t+1) + t and memory accesses
// to k/(t+1) per query, at the cost of the FPR drift quantified by
// Eq (11)/(12) (implemented in analysis/generalized_theory.h).

#ifndef SHBF_SHBF_GENERALIZED_SHBF_H_
#define SHBF_SHBF_GENERALIZED_SHBF_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/bit_array.h"
#include "core/bits.h"
#include "core/query_stats.h"
#include "core/serde.h"
#include "core/status.h"
#include "hash/hash_family.h"

namespace shbf {

class GeneralizedShbfM {
 public:
  struct Params {
    size_t num_bits = 0;      ///< m
    uint32_t num_hashes = 0;  ///< k total bits per element
    uint32_t num_shifts = 1;  ///< t; k must be divisible by t + 1
    /// w̄; (w̄ − 1) must be divisible by t so the partitions are equal.
    /// With the default 57: t ∈ {1, 2, 4, 7, 8, 14, 28, 56}.
    uint32_t max_offset_span = kDefaultMaxOffsetSpan;
    HashAlgorithm hash_algorithm = HashAlgorithm::kMurmur3;
    uint64_t seed = 0x5eed5eed5eed5eedull;

    Status Validate() const;
  };

  explicit GeneralizedShbfM(const Params& params);

  void Add(std::string_view key);

  /// Membership query; no false negatives. k/(t+1) window loads worst case.
  bool Contains(std::string_view key) const;
  bool ContainsWithStats(std::string_view key, QueryStats* stats) const;

  /// The t offsets for `key` (test hook). offsets[j] lies in partition j.
  std::vector<uint64_t> OffsetsOf(std::string_view key) const;

  size_t num_bits() const { return bits_.num_bits(); }
  uint32_t num_hashes() const { return num_hashes_; }
  uint32_t num_shifts() const { return num_shifts_; }
  uint32_t num_groups() const { return num_hashes_ / (num_shifts_ + 1); }
  void Clear() { bits_.Clear(); }

  /// Serializes parameters + bit payload to a versioned byte blob.
  std::string ToBytes() const;

  /// Reconstructs a filter that answers identically to the serialized one.
  static Status FromBytes(std::string_view bytes,
                          std::optional<GeneralizedShbfM>* out);

 private:
  /// Builds the (t+1)-bit window mask {bit 0} ∪ {bit o_j}.
  uint64_t NeedMask(std::string_view key) const;

  HashFamily family_;  // k/(t+1) base functions, then t offset functions
  uint32_t num_hashes_;
  uint32_t num_shifts_;
  uint32_t max_offset_span_;
  uint32_t partition_width_;  // (w̄ − 1) / t
  BitArray bits_;
};

}  // namespace shbf

#endif  // SHBF_SHBF_GENERALIZED_SHBF_H_
