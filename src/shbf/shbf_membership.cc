#include "shbf/shbf_membership.h"

#include <algorithm>
#include <vector>

namespace shbf {

Status ShbfM::Params::Validate() const {
  if (num_bits == 0) {
    return Status::InvalidArgument("ShbfM: num_bits must be positive");
  }
  if (num_hashes < 2 || num_hashes % 2 != 0) {
    return Status::InvalidArgument(
        "ShbfM: num_hashes must be even and >= 2 (k/2 base-offset pairs)");
  }
  if (max_offset_span < 2) {
    return Status::InvalidArgument(
        "ShbfM: max_offset_span must be >= 2 so offsets are nonzero");
  }
  if (max_offset_span > BitArray::kWindowBits) {
    return Status::InvalidArgument(
        "ShbfM: max_offset_span exceeds the one-access window (w - 7 bits); "
        "pairs would need two memory accesses");
  }
  return Status::Ok();
}

ShbfM::ShbfM(const Params& params)
    : family_(params.hash_algorithm, params.num_hashes / 2 + 1, params.seed),
      num_hashes_(params.num_hashes),
      max_offset_span_(params.max_offset_span),
      // Shifted writes may land up to w̄ − 1 bits past m − 1.
      bits_(params.num_bits, /*slack_bits=*/params.max_offset_span) {
  CheckOk(params.Validate());
}

ShbfM::ShbfM(const Params& params, BitArray bits, size_t num_elements)
    : family_(params.hash_algorithm, params.num_hashes / 2 + 1, params.seed),
      num_hashes_(params.num_hashes),
      max_offset_span_(params.max_offset_span),
      bits_(std::move(bits)),
      num_elements_(num_elements) {
  CheckOk(params.Validate());
  SHBF_CHECK(bits_.num_bits() == params.num_bits &&
             bits_.total_bits() == params.num_bits + params.max_offset_span)
      << "shbf_m: adopted bits don't match the spec geometry";
}

uint64_t ShbfM::OffsetOf(std::string_view key) const {
  // o(e) = h_{k/2+1}(e) % (w̄ − 1) + 1, never zero (§3.1: o = 0 would merge
  // the pair into one bit and raise the FPR).
  return family_.Hash(num_hashes_ / 2, key.data(), key.size()) %
             (max_offset_span_ - 1) +
         1;
}

void ShbfM::Add(const void* data, size_t len) {
  const size_t m = bits_.num_bits();
  const uint32_t pairs = num_hashes_ / 2;
  uint64_t offset =
      family_.Hash(pairs, data, len) % (max_offset_span_ - 1) + 1;
  for (uint32_t i = 0; i < pairs; ++i) {
    size_t base = family_.Hash(i, data, len) % m;
    bits_.SetBit(base);
    bits_.SetBit(base + offset);
  }
  ++num_elements_;
}

bool ShbfM::Contains(const void* data, size_t len) const {
  const size_t m = bits_.num_bits();
  const uint32_t pairs = num_hashes_ / 2;
  uint64_t offset =
      family_.Hash(pairs, data, len) % (max_offset_span_ - 1) + 1;
  const uint64_t need = 1ull | (1ull << offset);
  for (uint32_t i = 0; i < pairs; ++i) {
    size_t base = family_.Hash(i, data, len) % m;
    if ((bits_.LoadWindow(base) & need) != need) return false;
  }
  return true;
}

bool ShbfM::ContainsWithStats(std::string_view key, QueryStats* stats) const {
  const size_t m = bits_.num_bits();
  const uint32_t pairs = num_hashes_ / 2;
  ++stats->queries;
  ++stats->hash_computations;  // the offset hash
  uint64_t offset =
      family_.Hash(pairs, key.data(), key.size()) % (max_offset_span_ - 1) + 1;
  const uint64_t need = 1ull | (1ull << offset);
  for (uint32_t i = 0; i < pairs; ++i) {
    ++stats->hash_computations;
    ++stats->memory_accesses;  // one unaligned load covers the pair
    size_t base = family_.Hash(i, key.data(), key.size()) % m;
    if ((bits_.LoadWindow(base) & need) != need) return false;
  }
  return true;
}

void ShbfM::Clear() {
  bits_.Clear();
  num_elements_ = 0;
}

Status ShbfM::MergeFrom(const ShbfM& other) {
  if (family_.algorithm() != other.family_.algorithm() ||
      family_.master_seed() != other.family_.master_seed() ||
      num_hashes_ != other.num_hashes_ ||
      max_offset_span_ != other.max_offset_span_) {
    return Status::FailedPrecondition(
        "ShbfM::MergeFrom: hash families differ");
  }
  if (!bits_.OrWith(other.bits_)) {
    return Status::FailedPrecondition("ShbfM::MergeFrom: geometry differs");
  }
  num_elements_ += other.num_elements_;
  return Status::Ok();
}

void ShbfM::PrepareProbe(std::string_view key, Probe* probe) const {
  const size_t m = bits_.num_bits();
  const uint32_t pairs = num_hashes_ / 2;
  SHBF_DCHECK(pairs <= kMaxBatchPairs);
  uint64_t offset =
      family_.Hash(pairs, key.data(), key.size()) % (max_offset_span_ - 1) + 1;
  probe->need = 1ull | (1ull << offset);
  for (uint32_t i = 0; i < pairs; ++i) {
    probe->bases[i] = family_.Hash(i, key.data(), key.size()) % m;
  }
}

void ShbfM::PrefetchProbe(const Probe& probe) const {
  const uint32_t pairs = num_hashes_ / 2;
  for (uint32_t i = 0; i < pairs; ++i) bits_.Prefetch(probe.bases[i]);
}

bool ShbfM::ResolveProbe(const Probe& probe) const {
  const uint32_t pairs = num_hashes_ / 2;
  for (uint32_t i = 0; i < pairs; ++i) {
    if ((bits_.LoadWindow(probe.bases[i]) & probe.need) != probe.need) {
      return false;
    }
  }
  return true;
}

void ShbfM::ContainsBatch(const std::vector<std::string>& keys,
                          std::vector<uint8_t>* results) const {
  results->resize(keys.size());
  if (keys.empty()) return;
  constexpr size_t kGroup = 16;
  SHBF_CHECK(num_hashes_ / 2 <= kMaxBatchPairs) << "batch path supports k <= 64";

  Probe probes[kGroup];
  for (size_t start = 0; start < keys.size(); start += kGroup) {
    size_t group = std::min(kGroup, keys.size() - start);
    // Phase 1: hash everything and prefetch every window's cache line.
    for (size_t g = 0; g < group; ++g) {
      PrepareProbe(keys[start + g], &probes[g]);
      PrefetchProbe(probes[g]);
    }
    // Phase 2: test (windows are now resident or in flight).
    for (size_t g = 0; g < group; ++g) {
      (*results)[start + g] = ResolveProbe(probes[g]) ? 1 : 0;
    }
  }
}

std::string ShbfM::ToBytes() const {
  ByteWriter writer;
  serde::WriteHeader(&writer, serde::StructureTag::kShbfM);
  writer.PutU64(bits_.num_bits());
  writer.PutU32(num_hashes_);
  writer.PutU32(max_offset_span_);
  writer.PutU8(static_cast<uint8_t>(family_.algorithm()));
  writer.PutU64(family_.master_seed());
  writer.PutU64(num_elements_);
  bits_.AppendPayload(&writer);
  return writer.Take();
}

Status ShbfM::FromBytes(std::string_view bytes, std::optional<ShbfM>* out) {
  ByteReader reader(bytes);
  Status header = serde::ReadHeader(&reader, serde::StructureTag::kShbfM);
  if (!header.ok()) return header;
  uint64_t num_bits = 0;
  uint32_t num_hashes = 0;
  uint32_t max_offset_span = 0;
  uint8_t alg = 0;
  uint64_t seed = 0;
  uint64_t num_elements = 0;
  if (!reader.GetU64(&num_bits) || !reader.GetU32(&num_hashes) ||
      !reader.GetU32(&max_offset_span) || !reader.GetU8(&alg) ||
      !reader.GetU64(&seed) || !reader.GetU64(&num_elements)) {
    return Status::InvalidArgument("ShbfM: truncated parameter block");
  }
  if (alg > 3) return Status::InvalidArgument("ShbfM: unknown hash id");
  Params params{.num_bits = num_bits,
                .num_hashes = num_hashes,
                .max_offset_span = max_offset_span,
                .hash_algorithm = static_cast<HashAlgorithm>(alg),
                .seed = seed};
  Status valid = params.Validate();
  if (!valid.ok()) return valid;
  out->emplace(params);
  (*out)->num_elements_ = num_elements;
  if (!(*out)->bits_.ReadPayload(&reader) || !reader.AtEnd()) {
    out->reset();
    return Status::InvalidArgument("ShbfM: payload size mismatch");
  }
  return Status::Ok();
}

}  // namespace shbf
