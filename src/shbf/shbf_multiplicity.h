// ShBF_X — the Shifting Bloom Filter for multiplicity queries (paper §5).
//
// For a multi-set, the auxiliary information is an element's count c(e); the
// offset function is simply o(e) = c(e) − 1, so the k bits
// B[h_i(e)%m + c(e) − 1] are set — k bits per *element*, regardless of its
// multiplicity (a CBF/spectral filter spends counters; ShBF_X spends none).
//
// A query scans, per hash, the c-bit window starting at the base position
// (⌈c/w̄⌉ unaligned loads) and intersects the "all k bits set at j − 1"
// candidates across hashes. The true count always survives, so:
//   * the candidate list always contains the true multiplicity (no FNs),
//   * reporting the LARGEST candidate never underestimates (§5.2),
//   * intersection lets the scan terminate as soon as ≤ 1 candidate remains,
//     which is what makes Fig 11(b)'s access counts flatten for large k
//     (see DESIGN.md §4 item 5 for the inference).
//
// CountingShbfX adds the §5.3 update paths: a counter array keeps B
// clearable, and multiplicity moves are delete-old-offset / insert-new-offset.
// In kFilterQueried mode the current count is read from B itself and false
// negatives can leak in (§5.3.1); in kTableBacked mode an exact hash table
// supplies it and the structure stays FN-free (§5.3.2).

#ifndef SHBF_SHBF_SHBF_MULTIPLICITY_H_
#define SHBF_SHBF_SHBF_MULTIPLICITY_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/bit_array.h"
#include "core/bits.h"
#include "core/serde.h"
#include "core/chained_hash_table.h"
#include "core/packed_counter_array.h"
#include "core/query_stats.h"
#include "core/set_query_types.h"
#include "core/status.h"
#include "hash/hash_family.h"

namespace shbf {

/// Parameters shared by ShbfX and CountingShbfX.
struct ShbfXParams {
  size_t num_bits = 0;      ///< m
  uint32_t num_hashes = 0;  ///< k
  uint32_t max_count = 0;   ///< c: the largest representable multiplicity
  HashAlgorithm hash_algorithm = HashAlgorithm::kMurmur3;
  uint64_t seed = 0x5eed5eed5eed5eedull;

  /// Candidate masks use fixed stack storage; c is capped accordingly.
  static constexpr uint32_t kMaxSupportedCount = 512;

  Status Validate() const;
};

class ShbfX {
 public:
  explicit ShbfX(const ShbfXParams& params);

  /// Bulk construction: tallies the multiset in an internal collision-chain
  /// hash table (§5.1), then stores each distinct element once with its
  /// final count. Counts above max_count are a caller bug (CHECK).
  void Build(const std::vector<std::string>& multiset);

  /// Stores `key` with multiplicity `count` ∈ [1, max_count] directly.
  /// Each distinct key must be inserted at most once (§5.4: "ShBF_X only
  /// sets k bits regardless of how many times e appears").
  void InsertWithCount(std::string_view key, uint32_t count);

  /// All candidate multiplicities, ascending. Contains the true count of any
  /// stored key (no false negatives); may contain extra (false) candidates.
  /// Empty means "definitely not in the multi-set".
  std::vector<uint32_t> QueryCandidates(std::string_view key) const;

  /// Single-answer query: 0 = not present; otherwise the candidate chosen by
  /// `policy`. The scan stops early once at most one candidate survives.
  uint32_t QueryCount(std::string_view key,
                      MultiplicityReportPolicy policy =
                          MultiplicityReportPolicy::kLargest) const;
  uint32_t QueryCountWithStats(std::string_view key,
                               MultiplicityReportPolicy policy,
                               QueryStats* stats) const;

  /// Largest k the probe/batch paths support.
  static constexpr uint32_t kMaxBatchHashes = 64;

  /// Precomputed query state for one key (hashes only, no filter memory
  /// touched); see ShbfM::Probe for the two-pass batch protocol.
  struct Probe {
    size_t bases[kMaxBatchHashes];  ///< h_i(e) % m for i < num_hashes()
  };

  /// Computes `key`'s k base positions. Requires num_hashes() <= 64.
  void PrepareProbe(std::string_view key, Probe* probe) const;

  /// Hints the cache to fetch every line the candidate-window gathers of a
  /// prepared probe may touch.
  void PrefetchProbe(const Probe& probe) const;

  /// Resolves a prepared probe; identical answer to QueryCount(key, policy).
  uint32_t ResolveProbe(const Probe& probe,
                        MultiplicityReportPolicy policy =
                            MultiplicityReportPolicy::kLargest) const;

  size_t num_bits() const { return bits_.num_bits(); }
  uint32_t num_hashes() const { return num_hashes_; }
  uint32_t max_count() const { return max_count_; }
  size_t num_distinct() const { return num_distinct_; }
  const BitArray& bits() const { return bits_; }
  void Clear();

  /// Serializes parameters + bit payload to a versioned byte blob.
  std::string ToBytes() const;

  /// Reconstructs a filter that answers identically to the serialized one.
  static Status FromBytes(std::string_view bytes, std::optional<ShbfX>* out);

 private:
  friend class CountingShbfX;

  static constexpr uint32_t kMaskWords =
      ShbfXParams::kMaxSupportedCount / 64 + 1;

  /// Intersects the window bits of hash i into `mask` (mask words cover
  /// count offsets 0..c−1). Returns the number of window loads performed.
  uint32_t GatherWindows(size_t base, uint64_t* mask) const;

  /// Shared body of QueryCountWithStats and ResolveProbe: `base_of(i)`
  /// supplies h_i(e) % m — hashed lazily in the scalar path (so early exits
  /// skip hash work) and read from the precomputed probe in the batch path.
  template <typename BaseFn>
  uint32_t QueryCountImpl(BaseFn&& base_of, MultiplicityReportPolicy policy,
                          QueryStats* stats) const;

  HashFamily family_;
  uint32_t num_hashes_;
  uint32_t max_count_;
  BitArray bits_;
  size_t num_distinct_ = 0;
};

class CountingShbfX {
 public:
  enum class UpdateMode {
    /// §5.3.1: reads the current multiplicity from the filter itself; false
    /// positives during that read can convert into false negatives.
    kFilterQueried = 0,
    /// §5.3.2: an exact hash table (off-chip in the paper's architecture)
    /// supplies the current multiplicity; no false negatives, more memory.
    kTableBacked = 1,
  };

  struct Params {
    ShbfXParams filter;
    uint32_t counter_bits = 8;
    UpdateMode mode = UpdateMode::kTableBacked;

    Status Validate() const;
  };

  explicit CountingShbfX(const Params& params);

  /// Adds one occurrence of `key` (multiplicity z → z + 1). CHECK-fails past
  /// max_count.
  void Insert(std::string_view key);

  /// Removes one occurrence (z → z − 1); returns false if the structure
  /// believes the key is absent.
  bool Delete(std::string_view key);

  /// Queries the bit array (same semantics as ShbfX).
  uint32_t QueryCount(std::string_view key,
                      MultiplicityReportPolicy policy =
                          MultiplicityReportPolicy::kLargest) const {
    return filter_.QueryCount(key, policy);
  }
  std::vector<uint32_t> QueryCandidates(std::string_view key) const {
    return filter_.QueryCandidates(key);
  }

  /// Exact count from the backing table (kTableBacked only).
  uint64_t ExactCount(std::string_view key) const;

  /// Enumerates (key, exact count) pairs from the backing table
  /// (serde/replication hook; kTableBacked mode only).
  void ForEachExactCount(
      const std::function<void(std::string_view, uint64_t)>& fn) const {
    exact_counts_.ForEach(fn);
  }

  UpdateMode mode() const { return mode_; }
  bool SynchronizedWithCounters() const;

  /// Clears to the empty structure (filter, counters and exact table).
  void Clear() {
    filter_.Clear();
    counters_.Clear();
    exact_counts_.Clear();
  }

 private:
  /// The structure's belief about `key`'s current multiplicity.
  uint32_t CurrentCount(std::string_view key) const;

  void AddCells(std::string_view key, uint32_t count_offset);

  /// Decrements the k cells at `count_offset`. In kFilterQueried mode the
  /// removal may target cells this key never incremented (a false-positive
  /// read of the current count, §5.3.1), so zero cells are skipped instead
  /// of CHECKed — this is precisely how that mode corrupts state.
  void RemoveCells(std::string_view key, uint32_t count_offset);

  ShbfX filter_;
  PackedCounterArray counters_;
  UpdateMode mode_;
  ChainedHashTable exact_counts_;  // used in kTableBacked mode
};

}  // namespace shbf

#endif  // SHBF_SHBF_SHBF_MULTIPLICITY_H_
