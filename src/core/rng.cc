#include "core/rng.h"

#include "core/check.h"

namespace shbf {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // xoshiro must not be seeded with an all-zero state; SplitMix64 expansion
  // guarantees that with probability 1 − 2^-256 and mixes weak user seeds.
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  SHBF_DCHECK(bound > 0);
  // Lemire's method: 128-bit multiply, reject the biased low region.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 high bits → [0, 1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

std::string Rng::NextBytes(size_t len) {
  std::string out(len, '\0');
  size_t i = 0;
  while (i + 8 <= len) {
    uint64_t v = Next();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<char>(v >> (8 * b));
  }
  if (i < len) {
    uint64_t v = Next();
    while (i < len) {
      out[i++] = static_cast<char>(v);
      v >>= 8;
    }
  }
  return out;
}

}  // namespace shbf
