#include "core/bit_array.h"

#include <bit>

namespace shbf {

namespace {
// Guard bytes after the last writable bit so LoadWindow() at the final bit
// position still reads in-bounds memory.
constexpr size_t kGuardBytes = 8;
}  // namespace

BitArray::BitArray(size_t num_bits, size_t slack_bits)
    : num_bits_(num_bits), total_bits_(num_bits + slack_bits) {
  SHBF_CHECK(num_bits > 0) << "BitArray needs at least one bit";
  bytes_.assign(CeilDiv(total_bits_, 8) + kGuardBytes, 0);
}

void BitArray::Clear() {
  std::fill(bytes_.begin(), bytes_.end(), 0);
}

bool BitArray::OrWith(const BitArray& other) {
  if (num_bits_ != other.num_bits_ || total_bits_ != other.total_bits_ ||
      bytes_.size() != other.bytes_.size()) {
    return false;
  }
  for (size_t i = 0; i < bytes_.size(); ++i) bytes_[i] |= other.bytes_[i];
  return true;
}

size_t BitArray::CountOnes() const {
  size_t ones = 0;
  for (uint8_t b : bytes_) ones += std::popcount(b);
  return ones;
}

void BitArray::AppendPayload(ByteWriter* writer) const {
  writer->PutBytes(bytes_.data(), PayloadBytes());
}

bool BitArray::ReadPayload(ByteReader* reader) {
  return reader->GetBytes(bytes_.data(), PayloadBytes());
}

}  // namespace shbf
