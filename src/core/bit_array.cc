#include "core/bit_array.h"

#include <bit>

namespace shbf {

namespace {
// Guard bytes after the last writable bit so LoadWindow() at the final bit
// position still reads in-bounds memory.
constexpr size_t kGuardBytes = 8;
// Block-confined probing wants a block to be one cache line, which needs
// the byte 0 of the array to sit on a line boundary.
constexpr size_t kAlignment = 64;

uint8_t* AlignCursor(uint8_t* base) {
  const auto addr = reinterpret_cast<uintptr_t>(base);
  const uintptr_t aligned = (addr + kAlignment - 1) & ~uintptr_t{kAlignment - 1};
  return base + (aligned - addr);
}
}  // namespace

BitArray::BitArray(size_t num_bits, size_t slack_bits)
    : num_bits_(num_bits), total_bits_(num_bits + slack_bits) {
  SHBF_CHECK(num_bits > 0) << "BitArray needs at least one bit";
  size_bytes_ = CeilDiv(total_bits_, 8) + kGuardBytes;
  storage_.assign(size_bytes_ + kAlignment - 1, 0);
  data_ = AlignCursor(storage_.data());
}

BitArray BitArray::View(const uint8_t* data, size_t num_bits,
                        size_t slack_bits) {
  SHBF_CHECK(data != nullptr && num_bits > 0);
  SHBF_CHECK((reinterpret_cast<uintptr_t>(data) & (kAlignment - 1)) == 0)
      << "mapped BitArray views require 64-byte-aligned storage";
  BitArray view;
  view.num_bits_ = num_bits;
  view.total_bits_ = num_bits + slack_bits;
  view.size_bytes_ = CeilDiv(view.total_bits_, 8) + kGuardBytes;
  // Read-only contract: every mutator checks is_view_ before touching data_.
  view.data_ = const_cast<uint8_t*>(data);
  view.is_view_ = true;
  return view;
}

// Copying a view materializes an owning twin — the copy outlives the mapping.
BitArray::BitArray(const BitArray& other)
    : num_bits_(other.num_bits_),
      total_bits_(other.total_bits_),
      size_bytes_(other.size_bytes_),
      storage_(size_bytes_ + kAlignment - 1, 0) {
  data_ = AlignCursor(storage_.data());
  std::memcpy(data_, other.data_, size_bytes_);
}

BitArray& BitArray::operator=(const BitArray& other) {
  if (this == &other) return *this;
  num_bits_ = other.num_bits_;
  total_bits_ = other.total_bits_;
  size_bytes_ = other.size_bytes_;
  storage_.assign(size_bytes_ + kAlignment - 1, 0);
  data_ = AlignCursor(storage_.data());
  std::memcpy(data_, other.data_, size_bytes_);
  is_view_ = false;
  return *this;
}

// std::vector's heap buffer is stable across moves, so the source's aligned
// cursor stays valid for the destination (and a view's borrowed pointer
// moves along with its is_view_ flag).
BitArray::BitArray(BitArray&& other) noexcept
    : num_bits_(other.num_bits_),
      total_bits_(other.total_bits_),
      size_bytes_(other.size_bytes_),
      storage_(std::move(other.storage_)),
      data_(other.data_),
      is_view_(other.is_view_) {
  other.data_ = nullptr;
  other.is_view_ = false;
}

BitArray& BitArray::operator=(BitArray&& other) noexcept {
  if (this == &other) return *this;
  num_bits_ = other.num_bits_;
  total_bits_ = other.total_bits_;
  size_bytes_ = other.size_bytes_;
  storage_ = std::move(other.storage_);
  data_ = other.data_;
  is_view_ = other.is_view_;
  other.data_ = nullptr;
  other.is_view_ = false;
  return *this;
}

void BitArray::Clear() {
  SHBF_CHECK(!is_view_) << "Clear on a mapped BitArray view";
  std::memset(data_, 0, size_bytes_);
}

bool BitArray::OrWith(const BitArray& other) {
  SHBF_CHECK(!is_view_) << "OrWith into a mapped BitArray view";
  if (num_bits_ != other.num_bits_ || total_bits_ != other.total_bits_ ||
      size_bytes_ != other.size_bytes_) {
    return false;
  }
  for (size_t i = 0; i < size_bytes_; ++i) data_[i] |= other.data_[i];
  return true;
}

size_t BitArray::CountOnes() const {
  size_t ones = 0;
  for (size_t i = 0; i < size_bytes_; ++i) ones += std::popcount(data_[i]);
  return ones;
}

void BitArray::AppendPayload(ByteWriter* writer) const {
  writer->PutBytes(data_, PayloadBytes());
}

bool BitArray::ReadPayload(ByteReader* reader) {
  SHBF_CHECK(!is_view_) << "ReadPayload into a mapped BitArray view";
  return reader->GetBytes(data_, PayloadBytes());
}

}  // namespace shbf
