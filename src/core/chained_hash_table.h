// Separate-chaining hash table from string keys to 64-bit values.
//
// The paper's ShBF_X stores each element's exact count "in a hash table
// [using] the simplest collision handling method called collision chain"
// (§5.1), and ShBF_A builds hash tables T1/T2 over the two input sets during
// construction (§4.1). This is that substrate, built from scratch: power-of-
// two bucket array, singly-linked chains, doubling resize at load factor 1.

#ifndef SHBF_CORE_CHAINED_HASH_TABLE_H_
#define SHBF_CORE_CHAINED_HASH_TABLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace shbf {

class ChainedHashTable {
 public:
  explicit ChainedHashTable(size_t initial_buckets = 16);
  ~ChainedHashTable();

  ChainedHashTable(const ChainedHashTable&) = delete;
  ChainedHashTable& operator=(const ChainedHashTable&) = delete;
  ChainedHashTable(ChainedHashTable&& other) noexcept;
  ChainedHashTable& operator=(ChainedHashTable&& other) noexcept;

  /// Inserts `key` with `value` if absent; returns false (and leaves the
  /// existing value untouched) if the key is already present.
  bool Insert(std::string_view key, uint64_t value);

  /// Inserts or overwrites.
  void Upsert(std::string_view key, uint64_t value);

  /// Returns a pointer to the value for `key`, or nullptr if absent. The
  /// pointer is invalidated by any mutating call.
  uint64_t* Find(std::string_view key);
  const uint64_t* Find(std::string_view key) const;

  /// True iff `key` is present.
  bool Contains(std::string_view key) const { return Find(key) != nullptr; }

  /// Adds `delta` to the value of `key`, inserting it at 0 first if absent.
  /// Returns the new value.
  uint64_t AddTo(std::string_view key, uint64_t delta);

  /// Removes `key`; returns false if it was absent.
  bool Erase(std::string_view key);

  /// Calls fn(key, value) for every entry, in unspecified order.
  void ForEach(
      const std::function<void(std::string_view, uint64_t)>& fn) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t bucket_count() const { return buckets_.size(); }

  /// Removes every entry; the bucket array keeps its current size.
  void Clear() { FreeAll(); }

  /// Length of the longest chain — exposes the "collision chain" behaviour.
  size_t MaxChainLength() const;

 private:
  struct Node {
    std::string key;
    uint64_t value;
    Node* next;
  };

  static uint64_t HashKey(std::string_view key);
  void Rehash(size_t new_buckets);
  Node** FindSlot(std::string_view key);
  void FreeAll();

  std::vector<Node*> buckets_;
  size_t size_ = 0;
};

}  // namespace shbf

#endif  // SHBF_CORE_CHAINED_HASH_TABLE_H_
