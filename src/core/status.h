// RocksDB-style Status for fallible, non-hot-path operations (parameter
// validation, construction, file I/O in the bench utilities).

#ifndef SHBF_CORE_STATUS_H_
#define SHBF_CORE_STATUS_H_

#include <string>
#include <utility>

#include "core/check.h"

namespace shbf {

/// Outcome of a fallible operation. Cheap to copy when OK.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kOutOfRange,
    kNotFound,
    kAlreadyExists,
    kResourceExhausted,
    kFailedPrecondition,
    kInternal,
  };

  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" string.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Aborts if `s` is not OK. Use where a failure indicates a programming error.
inline void CheckOk(const Status& s) {
  SHBF_CHECK(s.ok()) << s.ToString();
}

}  // namespace shbf

#endif  // SHBF_CORE_STATUS_H_
