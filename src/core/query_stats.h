// Instrumentation counters for the paper's cost model.
//
// The evaluation (Figs 8, 10(b), 11(b)) reports *memory accesses per query*
// under the paper's cost model: one unaligned word-window load = one access,
// one isolated bit/counter probe = one access, with early termination exactly
// as each query algorithm specifies. Filters expose `...WithStats` query
// overloads that bump these counters; the fast paths take no stats pointer
// and compile to the same code minus the accounting.

#ifndef SHBF_CORE_QUERY_STATS_H_
#define SHBF_CORE_QUERY_STATS_H_

#include <cstdint>

namespace shbf {

/// Per-query (or accumulated) cost counters.
struct QueryStats {
  /// Word-window or single-cell reads performed.
  uint64_t memory_accesses = 0;
  /// Hash function evaluations performed.
  uint64_t hash_computations = 0;
  /// Number of queries accumulated into this object.
  uint64_t queries = 0;

  void Reset() { *this = QueryStats(); }

  double AvgMemoryAccesses() const {
    return queries == 0 ? 0.0 : static_cast<double>(memory_accesses) / queries;
  }
  double AvgHashComputations() const {
    return queries == 0 ? 0.0
                        : static_cast<double>(hash_computations) / queries;
  }

  QueryStats& operator+=(const QueryStats& other) {
    memory_accesses += other.memory_accesses;
    hash_computations += other.hash_computations;
    queries += other.queries;
    return *this;
  }
};

}  // namespace shbf

#endif  // SHBF_CORE_QUERY_STATS_H_
