// Vector probe kernels with runtime dispatch (scalar / NEON / AVX2 /
// AVX-512).
//
// Four primitives cover the hot loops of the batched query engine and the
// packed counter substrate:
//
//   MaskTestMany      lane i: (words[i] & needs[i]) == needs[i]
//                     — the ShBF pair test across a whole probe group. Each
//                     64-bit lane carries one window whose `need` pattern
//                     holds two bits (base | base+offset), so one AVX2 op
//                     resolves 4 windows = 8 probed bits (NEON: 2 = 4).
//   BlockSubsetTest   (block & mask) == mask over a whole cache-line block
//                     — the blocked-Bloom resolve, 256 bits per AVX2 op
//                     (one 512-bit op on AVX-512F parts).
//   MaskFromShifts    lane i: pattern << shifts[i] — fused mask
//                     construction for the split-block layouts, where every
//                     probe owns its own sub-word: one AVX2 `vpsllvq`
//                     (NEON `vshlq`) turns 4 (2) probe positions into 4 (2)
//                     finished mask words with no scatter conflicts.
//   ExtractFieldMany  lane i: ((lo[i] >> s[i]) | (hi[i] << (64 − s[i])))
//                     & field_mask — packed-counter extraction across a
//                     gather of counters, straddle word included.
//
// The AVX2/AVX-512 bodies are compiled per-function (`target("avx2")`,
// `target("avx512f")`), so no global -mavx2 flag is needed and the binary
// stays runnable on pre-AVX2 parts; simd::ActiveLevel()
// (core/cpu_features.h) picks the widest path at runtime and
// SHBF_FORCE_SCALAR / ForceScalar(true) demote every kernel to the scalar
// reference, which the vector bodies must match bit for bit
// (tests/simd_kernel_test.cc sweeps random inputs under both settings).
// Kernels without a 512-bit body dispatch kAvx512 to their AVX2 one.

#ifndef SHBF_CORE_SIMD_H_
#define SHBF_CORE_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "core/cpu_features.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SHBF_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define SHBF_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace shbf {
namespace simd {

// ------------------------------------------------------------------------
// Scalar reference implementations (the semantic ground truth)
// ------------------------------------------------------------------------

inline void MaskTestManyScalar(const uint64_t* words, const uint64_t* needs,
                               size_t n, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = (words[i] & needs[i]) == needs[i] ? 1 : 0;
  }
}

inline bool BlockSubsetTestScalar(const uint8_t* block, const uint64_t* mask,
                                  size_t num_words) {
  for (size_t w = 0; w < num_words; ++w) {
    uint64_t word;
    __builtin_memcpy(&word, block + w * 8, sizeof(word));
    if ((word & mask[w]) != mask[w]) return false;
  }
  return true;
}

inline void MaskFromShiftsScalar(const uint64_t* shifts, uint64_t pattern,
                                 size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = pattern << shifts[i];
  }
}

inline void ExtractFieldManyScalar(const uint64_t* lo, const uint64_t* hi,
                                   const uint64_t* shifts, uint64_t field_mask,
                                   size_t n, uint64_t* out) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t s = shifts[i];
    uint64_t value = lo[i] >> s;
    // The straddle word contributes nothing when s == 0 (and << 64 would be
    // UB), so guard it here; the AVX2 shift instructions yield 0 for counts
    // >= 64 and need no guard.
    if (s != 0) value |= hi[i] << (64 - s);
    out[i] = value & field_mask;
  }
}

// ------------------------------------------------------------------------
// AVX2 bodies (per-function target attribute; callable after a runtime
// AVX2 check only)
// ------------------------------------------------------------------------

#if SHBF_SIMD_X86

__attribute__((target("avx2"))) inline void MaskTestManyAvx2(
    const uint64_t* words, const uint64_t* needs, size_t n, uint8_t* out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i w = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(words + i));
    const __m256i need = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(needs + i));
    const __m256i eq = _mm256_cmpeq_epi64(_mm256_and_si256(w, need), need);
    // One sign bit per 64-bit lane: bit j of `hits` is lane j's verdict.
    const int hits = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
    out[i + 0] = hits & 1;
    out[i + 1] = (hits >> 1) & 1;
    out[i + 2] = (hits >> 2) & 1;
    out[i + 3] = (hits >> 3) & 1;
  }
  MaskTestManyScalar(words + i, needs + i, n - i, out + i);
}

__attribute__((target("avx2"))) inline bool BlockSubsetTestAvx2(
    const uint8_t* block, const uint64_t* mask, size_t num_words) {
  size_t w = 0;
  for (; w + 4 <= num_words; w += 4) {
    const __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(block + w * 8));
    const __m256i m = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(mask + w));
    // testc: 1 iff (~b & m) == 0, i.e. every mask bit is set in the block.
    if (!_mm256_testc_si256(b, m)) return false;
  }
  return BlockSubsetTestScalar(block + w * 8, mask + w, num_words - w);
}

__attribute__((target("avx2"))) inline void MaskFromShiftsAvx2(
    const uint64_t* shifts, uint64_t pattern, size_t n, uint64_t* out) {
  const __m256i p = _mm256_set1_epi64x(static_cast<long long>(pattern));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i s = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(shifts + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_sllv_epi64(p, s));
  }
  MaskFromShiftsScalar(shifts + i, pattern, n - i, out + i);
}

// ---- AVX-512F bodies (one 512-bit op per cache-line block; dispatched
// only when __builtin_cpu_supports("avx512f") said yes) ----

__attribute__((target("avx512f"))) inline bool BlockSubsetTestAvx512(
    const uint8_t* block, const uint64_t* mask, size_t num_words) {
  size_t w = 0;
  for (; w + 8 <= num_words; w += 8) {
    const __m512i b = _mm512_loadu_si512(block + w * 8);
    const __m512i m = _mm512_loadu_si512(mask + w);
    // Any lane where (b & m) != m has a missing probe bit.
    if (_mm512_cmpneq_epi64_mask(_mm512_and_si512(b, m), m) != 0) {
      return false;
    }
  }
  return BlockSubsetTestScalar(block + w * 8, mask + w, num_words - w);
}

__attribute__((target("avx512f"))) inline void MaskFromShiftsAvx512(
    const uint64_t* shifts, uint64_t pattern, size_t n, uint64_t* out) {
  const __m512i p = _mm512_set1_epi64(static_cast<long long>(pattern));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i s = _mm512_loadu_si512(shifts + i);
    _mm512_storeu_si512(out + i, _mm512_sllv_epi64(p, s));
  }
  MaskFromShiftsScalar(shifts + i, pattern, n - i, out + i);
}

__attribute__((target("avx2"))) inline void ExtractFieldManyAvx2(
    const uint64_t* lo, const uint64_t* hi, const uint64_t* shifts,
    uint64_t field_mask, size_t n, uint64_t* out) {
  const __m256i mask = _mm256_set1_epi64x(static_cast<long long>(field_mask));
  const __m256i sixty_four = _mm256_set1_epi64x(64);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i lo_v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(lo + i));
    const __m256i hi_v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(hi + i));
    const __m256i s = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(shifts + i));
    // srlv/sllv produce 0 for shift counts >= 64, so the s == 0 lane gets
    // hi << 64 == 0 — exactly the scalar guard, without a branch.
    const __m256i value = _mm256_or_si256(
        _mm256_srlv_epi64(lo_v, s),
        _mm256_sllv_epi64(hi_v, _mm256_sub_epi64(sixty_four, s)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_and_si256(value, mask));
  }
  ExtractFieldManyScalar(lo + i, hi + i, shifts + i, field_mask, n - i,
                         out + i);
}

#endif  // SHBF_SIMD_X86

// ------------------------------------------------------------------------
// NEON bodies (baseline on AArch64, no target attribute needed)
// ------------------------------------------------------------------------

#if SHBF_SIMD_NEON

inline void MaskTestManyNeon(const uint64_t* words, const uint64_t* needs,
                             size_t n, uint8_t* out) {
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t w = vld1q_u64(words + i);
    const uint64x2_t need = vld1q_u64(needs + i);
    const uint64x2_t eq = vceqq_u64(vandq_u64(w, need), need);
    out[i + 0] = vgetq_lane_u64(eq, 0) != 0;
    out[i + 1] = vgetq_lane_u64(eq, 1) != 0;
  }
  MaskTestManyScalar(words + i, needs + i, n - i, out + i);
}

inline void MaskFromShiftsNeon(const uint64_t* shifts, uint64_t pattern,
                               size_t n, uint64_t* out) {
  const uint64x2_t p = vdupq_n_u64(pattern);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // vshlq_u64 left-shifts by the signed per-lane count; shifts are < 64
    // (the kernel's contract), so no lane wraps to a right shift.
    const int64x2_t s = vreinterpretq_s64_u64(vld1q_u64(shifts + i));
    vst1q_u64(out + i, vshlq_u64(p, s));
  }
  MaskFromShiftsScalar(shifts + i, pattern, n - i, out + i);
}

inline bool BlockSubsetTestNeon(const uint8_t* block, const uint64_t* mask,
                                size_t num_words) {
  size_t w = 0;
  for (; w + 2 <= num_words; w += 2) {
    const uint64x2_t b = vreinterpretq_u64_u8(vld1q_u8(block + w * 8));
    const uint64x2_t m = vld1q_u64(mask + w);
    // (~b & m) must be zero in both lanes for the subset test to pass.
    const uint64x2_t missing = vbicq_u64(m, b);
    if ((vgetq_lane_u64(missing, 0) | vgetq_lane_u64(missing, 1)) != 0) {
      return false;
    }
  }
  return BlockSubsetTestScalar(block + w * 8, mask + w, num_words - w);
}

#endif  // SHBF_SIMD_NEON

// ------------------------------------------------------------------------
// Dispatched entry points
// ------------------------------------------------------------------------

/// out[i] = (words[i] & needs[i]) == needs[i], for i < n.
inline void MaskTestMany(const uint64_t* words, const uint64_t* needs,
                         size_t n, uint8_t* out) {
  switch (ActiveLevel()) {
#if SHBF_SIMD_X86
    case Level::kAvx512:  // no 512-bit body; the AVX2 one is the widest
    case Level::kAvx2:
      MaskTestManyAvx2(words, needs, n, out);
      return;
#endif
#if SHBF_SIMD_NEON
    case Level::kNeon:
      MaskTestManyNeon(words, needs, n, out);
      return;
#endif
    default:
      MaskTestManyScalar(words, needs, n, out);
  }
}

/// True iff every bit of `mask` is set in `block`, over `num_words` words
/// starting at byte `block` (little-endian word slicing, as BitArray lays
/// bits out).
inline bool BlockSubsetTest(const uint8_t* block, const uint64_t* mask,
                            size_t num_words) {
  switch (ActiveLevel()) {
#if SHBF_SIMD_X86
    case Level::kAvx512:
      // A 512-bit block is one op; narrower blocks test faster at 256 bits.
      return num_words >= 8 ? BlockSubsetTestAvx512(block, mask, num_words)
                            : BlockSubsetTestAvx2(block, mask, num_words);
    case Level::kAvx2:
      return BlockSubsetTestAvx2(block, mask, num_words);
#endif
#if SHBF_SIMD_NEON
    case Level::kNeon:
      return BlockSubsetTestNeon(block, mask, num_words);
#endif
    default:
      return BlockSubsetTestScalar(block, mask, num_words);
  }
}

/// out[i] = ((lo[i] >> shifts[i]) | straddle from hi[i]) & field_mask —
/// the packed-counter read (PackedCounterArray::Get) across a gather.
/// Requires shifts[i] < 64. NEON has no per-lane variable 64-bit shift that
/// zeroes out-of-range counts, so AArch64 uses the scalar body.
inline void ExtractFieldMany(const uint64_t* lo, const uint64_t* hi,
                             const uint64_t* shifts, uint64_t field_mask,
                             size_t n, uint64_t* out) {
  switch (ActiveLevel()) {
#if SHBF_SIMD_X86
    case Level::kAvx512:  // no 512-bit body; the AVX2 one is the widest
    case Level::kAvx2:
      ExtractFieldManyAvx2(lo, hi, shifts, field_mask, n, out);
      return;
#endif
    default:
      ExtractFieldManyScalar(lo, hi, shifts, field_mask, n, out);
  }
}

/// out[i] = pattern << shifts[i], for i < n. Requires shifts[i] < 64 and
/// that every set bit of `pattern` stays in-word after the shift — the
/// split-block mask build, where probe i's position inside its own sub-word
/// becomes a finished mask word in one variable-shift op.
inline void MaskFromShifts(const uint64_t* shifts, uint64_t pattern,
                           size_t n, uint64_t* out) {
  switch (ActiveLevel()) {
#if SHBF_SIMD_X86
    case Level::kAvx512:
      MaskFromShiftsAvx512(shifts, pattern, n, out);
      return;
    case Level::kAvx2:
      MaskFromShiftsAvx2(shifts, pattern, n, out);
      return;
#endif
#if SHBF_SIMD_NEON
    case Level::kNeon:
      MaskFromShiftsNeon(shifts, pattern, n, out);
      return;
#endif
    default:
      MaskFromShiftsScalar(shifts, pattern, n, out);
  }
}

}  // namespace simd
}  // namespace shbf

#endif  // SHBF_CORE_SIMD_H_
