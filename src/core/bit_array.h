// Bit array with unaligned 64-bit windowed loads.
//
// This is the storage substrate for every filter in the library and the
// mechanism behind the paper's central trick: because modern CPUs can load
// 8 bytes starting at *any byte*, the bits at positions `pos` and
// `pos + o` with `o <= 56` always fit in one such load (§3.1 of the paper:
// with word size w, choosing the offset span w̄ <= w − 7 guarantees this).
//
// The array over-allocates `slack_bits` beyond the logical size plus eight
// guard bytes, so windows starting anywhere inside the logical array never
// read out of bounds and shifted writes never wrap (the paper appends w̄ − 2
// bits for the same reason, §4.1).
//
// Storage is 64-byte aligned: the blocked variants (blocked_bloom,
// blocked_shbf_m) confine each key's probes to one block-sized span, and
// alignment makes a 512-bit block exactly one cache line instead of a
// straddle of two.

#ifndef SHBF_CORE_BIT_ARRAY_H_
#define SHBF_CORE_BIT_ARRAY_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/bits.h"
#include "core/check.h"
#include "core/serde.h"

namespace shbf {

class BitArray {
 public:
  /// Number of bits guaranteed valid in the value returned by LoadWindow():
  /// a load may start at any bit, so up to 7 of the 64 loaded bits are spent
  /// on byte alignment.
  static constexpr uint32_t kWindowBits = kWordBits - 7;  // 57

  /// Creates an all-zero array of `num_bits` logical bits plus `slack_bits`
  /// writable overflow bits (for shifted positions beyond the logical end).
  explicit BitArray(size_t num_bits,
                    size_t slack_bits = kDefaultMaxOffsetSpan);

  /// Non-owning read-only view over externally managed bits (an mmap'd
  /// filter image region). `data` must be 64-byte aligned, hold the same
  /// PayloadBytes() the owning layout would, stay readable for
  /// PayloadBytes() + 8 guard bytes (LoadWindow reads past the last bit),
  /// and outlive the view. Mutators (SetBit, Clear, OrWith, ReadPayload,
  /// mutable_data) CHECK-fail on a view; copying a view materializes an
  /// owning deep copy.
  static BitArray View(const uint8_t* data, size_t num_bits,
                       size_t slack_bits);

  /// True when this array borrows its bits (built by View()).
  bool is_view() const { return is_view_; }

  // data_ points into storage_, so the compiler-generated copy would alias
  // the source's buffer; re-anchor the cursor on every copy/move.
  BitArray(const BitArray& other);
  BitArray& operator=(const BitArray& other);
  BitArray(BitArray&& other) noexcept;
  BitArray& operator=(BitArray&& other) noexcept;

  /// Logical size m (hash values are reduced modulo this).
  size_t num_bits() const { return num_bits_; }

  /// Total writable bits: num_bits() + slack.
  size_t total_bits() const { return total_bits_; }

  /// Allocated footprint in bytes (includes guard bytes).
  size_t allocated_bytes() const { return size_bytes_; }

  /// Sets the bit at `pos` (pos < total_bits()).
  void SetBit(size_t pos) {
    SHBF_DCHECK(pos < total_bits_);
    SHBF_DCHECK(!is_view_);
    data_[pos >> 3] |= static_cast<uint8_t>(1u << (pos & 7));
  }

  /// Clears the bit at `pos`.
  void ClearBit(size_t pos) {
    SHBF_DCHECK(pos < total_bits_);
    SHBF_DCHECK(!is_view_);
    data_[pos >> 3] &= static_cast<uint8_t>(~(1u << (pos & 7)));
  }

  /// Reads the bit at `pos`.
  bool GetBit(size_t pos) const {
    SHBF_DCHECK(pos < total_bits_);
    return (data_[pos >> 3] >> (pos & 7)) & 1u;
  }

  /// One unaligned 8-byte load; returns a word whose bit i equals
  /// GetBit(pos + i) for 0 <= i < kWindowBits. This is the paper's
  /// "one memory access fetches base and shifted bit(s)" primitive.
  uint64_t LoadWindow(size_t pos) const {
    SHBF_DCHECK(pos < total_bits_);
    uint64_t word;
    std::memcpy(&word, data_ + (pos >> 3), sizeof(word));
    return word >> (pos & 7);
  }

  /// Hints the cache to fetch the line holding `pos` (used by the batch
  /// query paths to overlap hashing with memory latency).
  void Prefetch(size_t pos) const {
    __builtin_prefetch(data_ + (pos >> 3), /*rw=*/0, /*locality=*/1);
  }

  /// 64-byte-aligned raw storage (guard bytes included) — the blocked
  /// variants hand whole blocks of it to the SIMD subset-test kernel.
  const uint8_t* data() const { return data_; }
  uint8_t* mutable_data() {
    SHBF_CHECK(!is_view_) << "mutable access to a mapped BitArray view";
    return data_;
  }

  /// Zeroes every bit.
  void Clear();

  /// Bitwise-ORs `other`'s bits into this array. Returns false (and changes
  /// nothing) unless the two arrays have identical geometry — set-union of
  /// two filters is only meaningful bit-for-bit.
  bool OrWith(const BitArray& other);

  /// Number of set bits in [0, total_bits()).
  size_t CountOnes() const;

  /// Fraction of set bits over the logical size; the paper's (1 − p′).
  double FillRatio() const {
    return num_bits_ == 0
               ? 0.0
               : static_cast<double>(CountOnes()) / static_cast<double>(num_bits_);
  }

  /// Appends the raw payload (⌈total_bits/8⌉ bytes, guard excluded).
  void AppendPayload(ByteWriter* writer) const;

  /// Overwrites the payload from `reader`; the array's geometry must already
  /// match the writer's. Returns false on truncated input.
  bool ReadPayload(ByteReader* reader);

  /// Payload size in bytes for the serialized form.
  size_t PayloadBytes() const { return CeilDiv(total_bits_, 8); }

 private:
  /// View() uses this to adopt foreign storage; everything else goes
  /// through the allocating constructor.
  BitArray() = default;

  size_t num_bits_ = 0;
  size_t total_bits_ = 0;
  size_t size_bytes_ = 0;        ///< payload + guard (what data_ spans)
  std::vector<uint8_t> storage_; ///< size_bytes_ + alignment headroom; empty for views
  uint8_t* data_ = nullptr;      ///< 64-byte-aligned cursor into storage_, or the viewed buffer
  bool is_view_ = false;         ///< borrowed read-only bits (mmap region)
};

}  // namespace shbf

#endif  // SHBF_CORE_BIT_ARRAY_H_
