// Lightweight CHECK macros (RocksDB/Abseil style, no exceptions on hot paths).
//
// SHBF_CHECK(cond) aborts with a message if `cond` is false, in every build
// type. SHBF_DCHECK(cond) does the same but compiles out in NDEBUG builds;
// use it on hot paths. Both stream extra context:
//
//   SHBF_CHECK(params.num_bits > 0) << "num_bits must be positive";

#ifndef SHBF_CORE_CHECK_H_
#define SHBF_CORE_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace shbf {
namespace internal {

// Collects the streamed message and aborts on destruction.
class CheckFailure {
 public:
  CheckFailure(const char* cond, const char* file, int line) {
    stream_ << "CHECK failed: " << cond << " at " << file << ":" << line << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Swallows the streamed message when the check passes. Binds both the bare
// temporary and the lvalue reference returned by operator<< chains.
struct CheckVoidify {
  void operator&(const CheckFailure&) {}
};

}  // namespace internal
}  // namespace shbf

#define SHBF_CHECK(cond)                                    \
  (cond) ? (void)0                                          \
         : ::shbf::internal::CheckVoidify() &               \
               ::shbf::internal::CheckFailure(#cond, __FILE__, __LINE__)

#ifdef NDEBUG
#define SHBF_DCHECK(cond) SHBF_CHECK(true)
#else
#define SHBF_DCHECK(cond) SHBF_CHECK(cond)
#endif

#endif  // SHBF_CORE_CHECK_H_
