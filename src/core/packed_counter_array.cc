#include "core/packed_counter_array.h"

#include <algorithm>

#include "core/simd.h"

namespace shbf {

PackedCounterArray::PackedCounterArray(size_t num_counters,
                                       uint32_t bits_per_counter)
    : num_counters_(num_counters), bits_per_counter_(bits_per_counter) {
  SHBF_CHECK(num_counters > 0) << "need at least one counter";
  SHBF_CHECK(bits_per_counter >= 1 && bits_per_counter <= 32)
      << "bits_per_counter must be in [1, 32], got " << bits_per_counter;
  max_value_ = (bits_per_counter == 64)
                   ? ~0ull
                   : ((1ull << bits_per_counter) - 1);
  size_t total_bits = num_counters * static_cast<size_t>(bits_per_counter);
  // One extra word so counters straddling the final word boundary can be
  // read/written with the two-word fast path.
  num_words_ = CeilDiv(total_bits, 64) + 1;
  storage_.assign(num_words_, 0);
  words_data_ = storage_.data();
}

PackedCounterArray PackedCounterArray::View(const uint64_t* words,
                                            size_t num_counters,
                                            uint32_t bits_per_counter,
                                            uint64_t saturation_events) {
  SHBF_CHECK(words != nullptr && num_counters > 0);
  SHBF_CHECK(bits_per_counter >= 1 && bits_per_counter <= 32);
  PackedCounterArray view;
  view.num_counters_ = num_counters;
  view.bits_per_counter_ = bits_per_counter;
  view.max_value_ = (1ull << bits_per_counter) - 1;
  view.saturation_events_ = saturation_events;
  view.num_words_ =
      CeilDiv(num_counters * static_cast<size_t>(bits_per_counter), 64) + 1;
  view.words_data_ = words;
  view.is_view_ = true;
  return view;
}

PackedCounterArray::PackedCounterArray(const PackedCounterArray& other)
    : num_counters_(other.num_counters_),
      bits_per_counter_(other.bits_per_counter_),
      max_value_(other.max_value_),
      saturation_events_(other.saturation_events_),
      storage_(other.words_data_, other.words_data_ + other.num_words_),
      num_words_(other.num_words_) {
  words_data_ = storage_.data();
}

PackedCounterArray& PackedCounterArray::operator=(
    const PackedCounterArray& other) {
  if (this == &other) return *this;
  num_counters_ = other.num_counters_;
  bits_per_counter_ = other.bits_per_counter_;
  max_value_ = other.max_value_;
  saturation_events_ = other.saturation_events_;
  storage_.assign(other.words_data_, other.words_data_ + other.num_words_);
  num_words_ = other.num_words_;
  words_data_ = storage_.data();
  is_view_ = false;
  return *this;
}

PackedCounterArray::PackedCounterArray(PackedCounterArray&& other) noexcept
    : num_counters_(other.num_counters_),
      bits_per_counter_(other.bits_per_counter_),
      max_value_(other.max_value_),
      saturation_events_(other.saturation_events_),
      storage_(std::move(other.storage_)),
      words_data_(other.words_data_),
      num_words_(other.num_words_),
      is_view_(other.is_view_) {
  // The vector's heap buffer is stable across moves (and a view's borrowed
  // pointer moves along unchanged).
  other.words_data_ = nullptr;
  other.is_view_ = false;
}

PackedCounterArray& PackedCounterArray::operator=(
    PackedCounterArray&& other) noexcept {
  if (this == &other) return *this;
  num_counters_ = other.num_counters_;
  bits_per_counter_ = other.bits_per_counter_;
  max_value_ = other.max_value_;
  saturation_events_ = other.saturation_events_;
  storage_ = std::move(other.storage_);
  words_data_ = other.words_data_;
  num_words_ = other.num_words_;
  is_view_ = other.is_view_;
  other.words_data_ = nullptr;
  other.is_view_ = false;
  return *this;
}

uint64_t PackedCounterArray::Get(size_t i) const {
  SHBF_DCHECK(i < num_counters_);
  size_t bit = i * bits_per_counter_;
  size_t word = bit >> 6;
  uint32_t shift = bit & 63;
  uint64_t value = words_data_[word] >> shift;
  if (shift + bits_per_counter_ > 64) {
    value |= words_data_[word + 1] << (64 - shift);
  }
  return value & max_value_;
}

void PackedCounterArray::GetMany(const size_t* indices, size_t n,
                                 uint64_t* out) const {
  // The straddle word (words_[word + 1]) is always addressable thanks to the
  // constructor's extra word, so the gather needs no bounds branch. When the
  // counter does not straddle, the kernel's hi contribution lands above bit
  // z and the field mask removes it — same answer as Get, branch-free.
  constexpr size_t kChunk = 64;
  uint64_t lo[kChunk];
  uint64_t hi[kChunk];
  uint64_t shifts[kChunk];
  for (size_t start = 0; start < n; start += kChunk) {
    const size_t m = std::min(kChunk, n - start);
    for (size_t j = 0; j < m; ++j) {
      const size_t i = indices[start + j];
      SHBF_DCHECK(i < num_counters_);
      const size_t bit = i * bits_per_counter_;
      const size_t word = bit >> 6;
      lo[j] = words_data_[word];
      hi[j] = words_data_[word + 1];
      shifts[j] = bit & 63;
    }
    simd::ExtractFieldMany(lo, hi, shifts, max_value_, m, out + start);
  }
}

void PackedCounterArray::Set(size_t i, uint64_t value) {
  SHBF_DCHECK(i < num_counters_);
  SHBF_DCHECK(value <= max_value_);
  uint64_t* words = mutable_words();
  size_t bit = i * bits_per_counter_;
  size_t word = bit >> 6;
  uint32_t shift = bit & 63;
  words[word] &= ~(max_value_ << shift);
  words[word] |= value << shift;
  if (shift + bits_per_counter_ > 64) {
    uint32_t spill = 64 - shift;
    words[word + 1] &= ~(max_value_ >> spill);
    words[word + 1] |= value >> spill;
  }
}

bool PackedCounterArray::Increment(size_t i) {
  uint64_t v = Get(i);
  if (v >= max_value_) {
    ++saturation_events_;
    return false;
  }
  Set(i, v + 1);
  if (v + 1 == max_value_) {
    ++saturation_events_;
    return false;
  }
  return true;
}

void PackedCounterArray::Decrement(size_t i) {
  uint64_t v = Get(i);
  if (v == max_value_) return;  // stuck counter: deletes must not disturb it
  SHBF_CHECK(v > 0) << "counter underflow at index " << i;
  Set(i, v - 1);
}

void PackedCounterArray::Clear() {
  SHBF_CHECK(!is_view_) << "Clear on a mapped counter view";
  std::fill(storage_.begin(), storage_.end(), 0);
  saturation_events_ = 0;
}

void PackedCounterArray::AppendPayload(ByteWriter* writer) const {
  writer->PutU64(saturation_events_);
  for (size_t i = 0; i < num_words_; ++i) writer->PutU64(words_data_[i]);
}

bool PackedCounterArray::ReadPayload(ByteReader* reader) {
  SHBF_CHECK(!is_view_) << "ReadPayload into a mapped counter view";
  if (!reader->GetU64(&saturation_events_)) return false;
  for (uint64_t& word : storage_) {
    if (!reader->GetU64(&word)) return false;
  }
  return true;
}

size_t PackedCounterArray::CountZero() const {
  size_t zeros = 0;
  for (size_t i = 0; i < num_counters_; ++i) {
    if (Get(i) == 0) ++zeros;
  }
  return zeros;
}

}  // namespace shbf
