#include "core/packed_counter_array.h"

#include <algorithm>

#include "core/simd.h"

namespace shbf {

PackedCounterArray::PackedCounterArray(size_t num_counters,
                                       uint32_t bits_per_counter)
    : num_counters_(num_counters), bits_per_counter_(bits_per_counter) {
  SHBF_CHECK(num_counters > 0) << "need at least one counter";
  SHBF_CHECK(bits_per_counter >= 1 && bits_per_counter <= 32)
      << "bits_per_counter must be in [1, 32], got " << bits_per_counter;
  max_value_ = (bits_per_counter == 64)
                   ? ~0ull
                   : ((1ull << bits_per_counter) - 1);
  size_t total_bits = num_counters * static_cast<size_t>(bits_per_counter);
  // One extra word so counters straddling the final word boundary can be
  // read/written with the two-word fast path.
  words_.assign(CeilDiv(total_bits, 64) + 1, 0);
}

uint64_t PackedCounterArray::Get(size_t i) const {
  SHBF_DCHECK(i < num_counters_);
  size_t bit = i * bits_per_counter_;
  size_t word = bit >> 6;
  uint32_t shift = bit & 63;
  uint64_t value = words_[word] >> shift;
  if (shift + bits_per_counter_ > 64) {
    value |= words_[word + 1] << (64 - shift);
  }
  return value & max_value_;
}

void PackedCounterArray::GetMany(const size_t* indices, size_t n,
                                 uint64_t* out) const {
  // The straddle word (words_[word + 1]) is always addressable thanks to the
  // constructor's extra word, so the gather needs no bounds branch. When the
  // counter does not straddle, the kernel's hi contribution lands above bit
  // z and the field mask removes it — same answer as Get, branch-free.
  constexpr size_t kChunk = 64;
  uint64_t lo[kChunk];
  uint64_t hi[kChunk];
  uint64_t shifts[kChunk];
  for (size_t start = 0; start < n; start += kChunk) {
    const size_t m = std::min(kChunk, n - start);
    for (size_t j = 0; j < m; ++j) {
      const size_t i = indices[start + j];
      SHBF_DCHECK(i < num_counters_);
      const size_t bit = i * bits_per_counter_;
      const size_t word = bit >> 6;
      lo[j] = words_[word];
      hi[j] = words_[word + 1];
      shifts[j] = bit & 63;
    }
    simd::ExtractFieldMany(lo, hi, shifts, max_value_, m, out + start);
  }
}

void PackedCounterArray::Set(size_t i, uint64_t value) {
  SHBF_DCHECK(i < num_counters_);
  SHBF_DCHECK(value <= max_value_);
  size_t bit = i * bits_per_counter_;
  size_t word = bit >> 6;
  uint32_t shift = bit & 63;
  words_[word] &= ~(max_value_ << shift);
  words_[word] |= value << shift;
  if (shift + bits_per_counter_ > 64) {
    uint32_t spill = 64 - shift;
    words_[word + 1] &= ~(max_value_ >> spill);
    words_[word + 1] |= value >> spill;
  }
}

bool PackedCounterArray::Increment(size_t i) {
  uint64_t v = Get(i);
  if (v >= max_value_) {
    ++saturation_events_;
    return false;
  }
  Set(i, v + 1);
  if (v + 1 == max_value_) {
    ++saturation_events_;
    return false;
  }
  return true;
}

void PackedCounterArray::Decrement(size_t i) {
  uint64_t v = Get(i);
  if (v == max_value_) return;  // stuck counter: deletes must not disturb it
  SHBF_CHECK(v > 0) << "counter underflow at index " << i;
  Set(i, v - 1);
}

void PackedCounterArray::Clear() {
  std::fill(words_.begin(), words_.end(), 0);
  saturation_events_ = 0;
}

void PackedCounterArray::AppendPayload(ByteWriter* writer) const {
  writer->PutU64(saturation_events_);
  for (uint64_t word : words_) writer->PutU64(word);
}

bool PackedCounterArray::ReadPayload(ByteReader* reader) {
  if (!reader->GetU64(&saturation_events_)) return false;
  for (uint64_t& word : words_) {
    if (!reader->GetU64(&word)) return false;
  }
  return true;
}

size_t PackedCounterArray::CountZero() const {
  size_t zeros = 0;
  for (size_t i = 0; i < num_counters_; ++i) {
    if (Get(i) == 0) ++zeros;
  }
  return zeros;
}

}  // namespace shbf
