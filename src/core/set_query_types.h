// Shared vocabulary types for the three set-query families the paper studies:
// membership, association and multiplicity queries (§1.1).

#ifndef SHBF_CORE_SET_QUERY_TYPES_H_
#define SHBF_CORE_SET_QUERY_TYPES_H_

#include <cstdint>

namespace shbf {

/// The seven possible answers of an association query on (S1, S2) for an
/// element known to lie in S1 ∪ S2 (§4.2). Outcomes 1–3 are "clear": they
/// carry complete information and are never wrong. Outcomes 4–6 are partial;
/// outcome 7 carries no information beyond the promise e ∈ S1 ∪ S2.
enum class AssociationOutcome : uint8_t {
  /// None of the three bit patterns matched: definitely e ∉ S1 ∪ S2. Cannot
  /// occur for elements honouring the query contract (no false negatives),
  /// but real callers may query arbitrary elements.
  kNotFound = 0,
  kS1Only = 1,          // e ∈ S1 − S2
  kIntersection = 2,    // e ∈ S1 ∩ S2
  kS2Only = 3,          // e ∈ S2 − S1
  kS1UnsureS2 = 4,      // e ∈ S1, membership in S2 unknown
  kS2UnsureS1 = 5,      // e ∈ S2, membership in S1 unknown
  kExclusiveEither = 6, // e ∈ (S1 − S2) ∪ (S2 − S1)
  kUnknown = 7,         // e ∈ S1 ∪ S2 (no new information)
};

/// Short stable name for reports ("S1-only", "S1-unsure-S2", ...).
constexpr const char* AssociationOutcomeName(AssociationOutcome o) {
  switch (o) {
    case AssociationOutcome::kNotFound:        return "not-found";
    case AssociationOutcome::kS1Only:          return "S1-only";
    case AssociationOutcome::kIntersection:    return "intersection";
    case AssociationOutcome::kS2Only:          return "S2-only";
    case AssociationOutcome::kS1UnsureS2:      return "S1-unsure-S2";
    case AssociationOutcome::kS2UnsureS1:      return "S2-unsure-S1";
    case AssociationOutcome::kExclusiveEither: return "exclusive-either";
    case AssociationOutcome::kUnknown:         return "unknown";
  }
  return "invalid";
}

/// True for the fully-informative, never-wrong outcomes 1–3.
constexpr bool IsClearAnswer(AssociationOutcome o) {
  return o == AssociationOutcome::kS1Only ||
         o == AssociationOutcome::kIntersection ||
         o == AssociationOutcome::kS2Only;
}

/// Ground-truth partition of S1 ∪ S2 used by workloads and tests.
enum class AssociationTruth : uint8_t {
  kS1Only = 1,
  kIntersection = 2,
  kS2Only = 3,
};

/// True iff `outcome` is consistent with `truth` (clear outcomes must match
/// exactly; partial outcomes must cover the truth).
constexpr bool OutcomeConsistentWithTruth(AssociationOutcome outcome,
                                          AssociationTruth truth) {
  switch (outcome) {
    case AssociationOutcome::kS1Only:
      return truth == AssociationTruth::kS1Only;
    case AssociationOutcome::kIntersection:
      return truth == AssociationTruth::kIntersection;
    case AssociationOutcome::kS2Only:
      return truth == AssociationTruth::kS2Only;
    case AssociationOutcome::kS1UnsureS2:
      return truth == AssociationTruth::kS1Only ||
             truth == AssociationTruth::kIntersection;
    case AssociationOutcome::kS2UnsureS1:
      return truth == AssociationTruth::kS2Only ||
             truth == AssociationTruth::kIntersection;
    case AssociationOutcome::kExclusiveEither:
      return truth == AssociationTruth::kS1Only ||
             truth == AssociationTruth::kS2Only;
    case AssociationOutcome::kUnknown:
      return true;
    case AssociationOutcome::kNotFound:
      return false;  // contradicts e ∈ S1 ∪ S2
  }
  return false;
}

/// How a multiplicity query condenses its candidate list into one answer
/// (§5.2; see DESIGN.md on the paper's Eq (28) ambiguity).
enum class MultiplicityReportPolicy : uint8_t {
  /// Largest candidate: never underestimates (the paper's stated policy —
  /// "we report the largest candidate ... to avoid false negatives").
  kLargest = 0,
  /// Smallest candidate: the policy whose correctness rate matches Eq (28).
  kSmallest = 1,
};

}  // namespace shbf

#endif  // SHBF_CORE_SET_QUERY_TYPES_H_
