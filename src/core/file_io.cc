#include "core/file_io.h"

#include <fstream>
#include <sstream>

namespace shbf {

Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return Status::Ok();
}

Status WriteStringToFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) return Status::Internal("cannot write " + path);
  return Status::Ok();
}

}  // namespace shbf
