#include "core/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace shbf {

namespace {

std::string Errno(const std::string& what, const std::string& path, int err) {
  return what + " " + path + ": " + std::strerror(err);
}

/// ENOSPC-class errno values surface as kResourceExhausted so callers (and
/// operators reading server logs) can tell a full disk from a code bug.
Status WriteError(const std::string& what, const std::string& path, int err) {
  const std::string message = Errno(what, path, err);
  if (err == ENOSPC || err == EDQUOT || err == EFBIG) {
    return Status::ResourceExhausted(message);
  }
  return Status::Internal(message);
}

}  // namespace

Status ReadFileToString(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::NotFound(Errno("cannot open", path, errno));
  std::string bytes;
  struct stat st;
  if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
    bytes.reserve(static_cast<size_t>(st.st_size));
  }
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return Status::Internal(Errno("cannot read", path, err));
    }
    bytes.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  *out = std::move(bytes);
  return Status::Ok();
}

Status WriteStringToFile(const std::string& path, const std::string& bytes) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return WriteError("cannot create", path, errno);
  // Loop over partial writes: a short write with no errno (size-capped file,
  // almost-full disk) is still a failure once the remainder won't go.
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return WriteError("short write to", path, err);
    }
    if (n == 0) {
      ::close(fd);
      return WriteError("short write to", path, ENOSPC);
    }
    written += static_cast<size_t>(n);
  }
  // fsync before the verdict: an OK means the bytes reached the device, not
  // just the page cache — a snapshot that "succeeded" must survive a crash.
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    return WriteError("cannot fsync", path, err);
  }
  if (::close(fd) != 0) {
    return WriteError("cannot close", path, errno);
  }
  return Status::Ok();
}

Status SyncDirectory(const std::string& dir_path) {
  const std::string dir = dir_path.empty() ? "." : dir_path;
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Status::NotFound(Errno("cannot open directory", dir, errno));
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(Errno("cannot fsync directory", dir, err));
  }
  ::close(fd);
  return Status::Ok();
}

std::string DirectoryOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace shbf
