// Deterministic pseudo-random generators for workloads and seeds.
//
// Built from scratch (SplitMix64 for seeding, xoshiro256** for the stream)
// so results are bit-identical across platforms and standard libraries —
// every experiment in the bench harness prints its seed and is replayable.

#ifndef SHBF_CORE_RNG_H_
#define SHBF_CORE_RNG_H_

#include <cstdint>
#include <string>

namespace shbf {

/// SplitMix64 step: returns the next value and advances `state`. Used to
/// expand one user seed into independent sub-seeds.
uint64_t SplitMix64(uint64_t& state);

/// The stateless SplitMix64 finalizer: a full-avalanche 64→64 bit mix.
/// Unlike SplitMix64 there is no serial state chain — callers derive
/// independent words in parallel as Mix64(x + i * constant), which is what
/// the split-block probe derivation does on its hot path.
constexpr uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed);

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ull; }

  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform integer in [0, bound). bound > 0. Uses Lemire's multiply-shift
  /// rejection method (unbiased).
  uint64_t NextBelow(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Fills `out` with `len` random bytes and returns it as a string.
  std::string NextBytes(size_t len);

 private:
  uint64_t s_[4];
};

}  // namespace shbf

#endif  // SHBF_CORE_RNG_H_
